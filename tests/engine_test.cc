#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/overlog/engine.h"

namespace boom {
namespace {

EngineOptions MakeEngine(const std::string& addr = "node0") {
  EngineOptions opts;
  opts.address = addr;
  opts.seed = 7;
  return opts;
}

std::set<Tuple> RowSet(const Engine& e, const std::string& table) {
  const Table* t = e.catalog().Find(table);
  EXPECT_NE(t, nullptr);
  std::set<Tuple> out;
  t->ForEach([&out](const Tuple& row) { out.insert(row); });
  return out;
}

TEST(EngineTest, FactsAndSeedDerivation) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table a(X);
    table b(X);
    a(1); a(2);
    b(X) :- a(X);
  )").ok());
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "b"), (std::set<Tuple>{Tuple{Value(1)}, Tuple{Value(2)}}));
}

TEST(EngineTest, TransitiveClosure) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program tc;
    table link(X, Y);
    table reach(X, Y);
    link(1, 2); link(2, 3); link(3, 4);
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
  )").ok());
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "reach").size(), 6u);  // all ordered pairs along the chain
  EXPECT_TRUE(RowSet(e, "reach").count(Tuple{Value(1), Value(4)}) > 0);
}

TEST(EngineTest, IncrementalDeltasAcrossTicks) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program tc;
    table link(X, Y);
    table reach(X, Y);
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("link", Tuple{Value(1), Value(2)}).ok());
  e.Tick(1);
  EXPECT_EQ(RowSet(e, "reach").size(), 1u);
  ASSERT_TRUE(e.Enqueue("link", Tuple{Value(2), Value(3)}).ok());
  e.Tick(2);
  // New link must join against previously derived reach: 1->2, 2->3, 1->3.
  EXPECT_EQ(RowSet(e, "reach").size(), 3u);
}

TEST(EngineTest, NegationStratified) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table a(X);
    table b(X);
    table onlya(X);
    a(1); a(2); b(2);
    onlya(X) :- a(X), notin b(X);
  )").ok());
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "onlya"), (std::set<Tuple>{Tuple{Value(1)}}));
}

TEST(EngineTest, CountAggregate) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table chunk(C, F);
    table cnt(F, N) keys(0);
    chunk(10, 1); chunk(11, 1); chunk(12, 2);
    cnt(F, count<C>) :- chunk(C, F);
  )").ok());
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "cnt"),
            (std::set<Tuple>{Tuple{Value(1), Value(2)}, Tuple{Value(2), Value(1)}}));
}

TEST(EngineTest, AggregateUpdatesWhenInputsChange) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table chunk(C, F);
    table cnt(F, N) keys(0);
    cnt(F, count<C>) :- chunk(C, F);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("chunk", Tuple{Value(10), Value(1)}).ok());
  e.Tick(1);
  EXPECT_EQ(RowSet(e, "cnt"), (std::set<Tuple>{Tuple{Value(1), Value(1)}}));
  ASSERT_TRUE(e.Enqueue("chunk", Tuple{Value(11), Value(1)}).ok());
  e.Tick(2);
  EXPECT_EQ(RowSet(e, "cnt"), (std::set<Tuple>{Tuple{Value(1), Value(2)}}));
}

TEST(EngineTest, MinMaxSumAvg) {
  Engine e2(MakeEngine());
  ASSERT_TRUE(e2.InstallSource(R"(
    program t;
    table load(Dn, L);
    table stats(K, Mn, Mx, Sm, Av) keys(0);
    load("d1", 4); load("d2", 2); load("d3", 6);
    stats(1, min<L>, max<L>, sum<L>, avg<L>) :- load(Dn, L);
  )").ok());
  e2.Tick(0);
  std::set<Tuple> rows = RowSet(e2, "stats");
  ASSERT_EQ(rows.size(), 1u);
  const Tuple& row = *rows.begin();
  EXPECT_EQ(row[1], Value(2));
  EXPECT_EQ(row[2], Value(6));
  EXPECT_EQ(row[3], Value(12));
  EXPECT_EQ(row[4], Value(4.0));
}

TEST(EngineTest, BottomKPicksSmallestPairs) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table load(Dn, L);
    table best(K, List) keys(0);
    load("d1", 5); load("d2", 1); load("d3", 3); load("d4", 9);
    best(1, bottomk<2, Pair>) :- load(Dn, L), Pair := [L, Dn];
  )").ok());
  e.Tick(0);
  std::set<Tuple> rows = RowSet(e, "best");
  ASSERT_EQ(rows.size(), 1u);
  const Value& list = (*rows.begin())[1];
  ASSERT_TRUE(list.is_list());
  ASSERT_EQ(list.as_list().size(), 2u);
  EXPECT_EQ(list.as_list()[0].as_list()[1], Value("d2"));
  EXPECT_EQ(list.as_list()[1].as_list()[1], Value("d3"));
}

TEST(EngineTest, DeleteRuleRemovesAtTickEnd) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table file(F);
    event rm(F);
    file(1); file(2);
    delete file(F) :- rm(F), file(F);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("rm", Tuple{Value(1)}).ok());
  e.Tick(1);
  EXPECT_EQ(RowSet(e, "file"), (std::set<Tuple>{Tuple{Value(2)}}));
}

TEST(EngineTest, EventsClearedAfterTick) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event req(X);
    table log(X);
    log(X) :- req(X);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("req", Tuple{Value(5)}).ok());
  e.Tick(1);
  EXPECT_EQ(e.catalog().Get("req").size(), 0u);
  EXPECT_EQ(RowSet(e, "log"), (std::set<Tuple>{Tuple{Value(5)}}));
  // The event must not re-fire on later ticks.
  e.Tick(2);
  EXPECT_EQ(RowSet(e, "log").size(), 1u);
}

TEST(EngineTest, EventChainingWithinTick) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event a(X);
    event b(X);
    table out(X);
    b(X + 1) :- a(X);
    out(X) :- b(X);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("a", Tuple{Value(1)}).ok());
  e.Tick(1);
  EXPECT_EQ(RowSet(e, "out"), (std::set<Tuple>{Tuple{Value(2)}}));
}

TEST(EngineTest, RemoteDerivationGoesToOutbox) {
  Engine e(MakeEngine("n1"));
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event ping(Addr, From);
    event pong(Addr, From);
    pong(@From, Me) :- ping(@Me, From);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("ping", Tuple{Value("n1"), Value("n2")}).ok());
  Engine::TickResult r = e.Tick(1);
  ASSERT_EQ(r.sends.size(), 1u);
  EXPECT_EQ(r.sends[0].dest, "n2");
  EXPECT_EQ(r.sends[0].table, "pong");
  EXPECT_EQ(r.sends[0].tuple, (Tuple{Value("n2"), Value("n1")}));
}

TEST(EngineTest, LocalDestinationStaysLocal) {
  Engine e(MakeEngine("n1"));
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event ping(Addr, From);
    table got(Addr, From);
    got(@Me, From) :- ping(@Me, From);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("ping", Tuple{Value("n1"), Value("n2")}).ok());
  Engine::TickResult r = e.Tick(1);
  EXPECT_TRUE(r.sends.empty());
  EXPECT_EQ(RowSet(e, "got").size(), 1u);
}

TEST(EngineTest, TimerFiresPeriodically) {
  Engine e(MakeEngine("n1"));
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    timer tick(100);
    table count(K, N) keys(0);
    table fired(T) keys(0);
    fired(T) :- tick(N), T := f_now();
  )").ok());
  EXPECT_DOUBLE_EQ(e.NextTimerDeadline(), 100.0);
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "fired").size(), 0u);
  e.Tick(100);
  EXPECT_EQ(RowSet(e, "fired").size(), 1u);
  e.Tick(350);  // catches up: fires at 200 and 300 (both apply at this tick)
  std::set<Tuple> rows = RowSet(e, "fired");
  EXPECT_TRUE(rows.count(Tuple{Value(350.0)}) > 0);
}

TEST(EngineTest, WatchCallbackFires) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table a(X);
    table b(X);
    b(X * 10) :- a(X);
  )").ok());
  std::vector<Tuple> seen;
  e.AddWatch("b", [&seen](const std::string&, const Tuple& t, bool inserted) {
    if (inserted) {
      seen.push_back(t);
    }
  });
  ASSERT_TRUE(e.Enqueue("a", Tuple{Value(3)}).ok());
  e.Tick(0);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], (Tuple{Value(30)}));
}

TEST(EngineTest, PrimaryKeyUpdateThroughRules) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event set(K, V);
    table kv(K, V) keys(0);
    kv(K, V) :- set(K, V);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("set", Tuple{Value(1), Value("a")}).ok());
  e.Tick(1);
  ASSERT_TRUE(e.Enqueue("set", Tuple{Value(1), Value("b")}).ok());
  e.Tick(2);
  EXPECT_EQ(RowSet(e, "kv"), (std::set<Tuple>{Tuple{Value(1), Value("b")}}));
}

TEST(EngineTest, RecursivePathConstruction) {
  // The BOOM-FS fqpath idiom: recursive path construction from parent pointers.
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program fs;
    table file(FileId, ParentId, Name, IsDir) keys(0);
    table fqpath(Path, FileId);
    file(0, -1, "", true);
    file(1, 0, "usr", true);
    file(2, 1, "data", true);
    file(3, 2, "f.txt", false);
    fqpath("/", 0) :- file(0, -1, _, _);
    fqpath(P, F) :- file(F, Par, Name, _), F != 0, fqpath(PPath, Par),
                    P := path_join(PPath, Name);
  )").ok());
  e.Tick(0);
  std::set<Tuple> rows = RowSet(e, "fqpath");
  EXPECT_TRUE(rows.count(Tuple{Value("/"), Value(0)}) > 0);
  EXPECT_TRUE(rows.count(Tuple{Value("/usr"), Value(1)}) > 0);
  EXPECT_TRUE(rows.count(Tuple{Value("/usr/data/f.txt"), Value(3)}) > 0);
}

TEST(EngineTest, RuntimeErrorDropsBindingAndReports) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table a(X);
    table out(Y);
    a(0); a(2);
    out(Y) :- a(X), Y := 10 / X;
  )").ok());
  Engine::TickResult r = e.Tick(0);
  EXPECT_FALSE(r.errors.empty());
  EXPECT_EQ(RowSet(e, "out"), (std::set<Tuple>{Tuple{Value(5)}}));
}

TEST(EngineTest, EnqueueValidatesTableAndArity) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource("program t; table a(X, Y);").ok());
  EXPECT_FALSE(e.Enqueue("nope", Tuple{Value(1)}).ok());
  EXPECT_FALSE(e.Enqueue("a", Tuple{Value(1)}).ok());
  EXPECT_TRUE(e.Enqueue("a", Tuple{Value(1), Value(2)}).ok());
}

TEST(EngineTest, MultipleProgramsShareTables) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program p1;
    table shared(X);
    shared(1);
  )").ok());
  ASSERT_TRUE(e.InstallSource(R"(
    program p2;
    table derived(X);
    derived(X + 1) :- shared(X);
  )").ok());
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "derived"), (std::set<Tuple>{Tuple{Value(2)}}));
}

TEST(EngineTest, InstallErrorRollsBack) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource("program p1; table a(X);").ok());
  // Unsafe rule: must fail and leave the engine usable.
  EXPECT_FALSE(e.InstallSource("program p2; table b(X, Y); b(X, Y) :- a(X);").ok());
  ASSERT_TRUE(e.Enqueue("a", Tuple{Value(1)}).ok());
  Engine::TickResult r = e.Tick(0);
  EXPECT_TRUE(r.errors.empty());
}

TEST(EngineTest, SelfJoinsWork) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table edge(X, Y);
    table triangle(A, B, C);
    edge(1, 2); edge(2, 3); edge(3, 1);
    triangle(A, B, C) :- edge(A, B), edge(B, C), edge(C, A);
  )").ok());
  e.Tick(0);
  EXPECT_EQ(RowSet(e, "triangle").size(), 3u);  // three rotations
}

TEST(EngineTest, FMeBuiltin) {
  Engine e(MakeEngine("node42"));
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event go(X);
    table me(Addr);
    me(A) :- go(_), A := f_me();
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("go", Tuple{Value(1)}).ok());
  e.Tick(1);
  EXPECT_EQ(RowSet(e, "me"), (std::set<Tuple>{Tuple{Value("node42")}}));
}


TEST(EngineTest, NextRuleDefersOneTimestep) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event go(X);
    table stored(X);
    stored(X)@next :- go(X);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("go", Tuple{Value(1)}).ok());
  e.Tick(1);
  // Not yet visible: the derivation applies at the next timestep.
  EXPECT_EQ(RowSet(e, "stored").size(), 0u);
  EXPECT_TRUE(e.HasQueuedInput());
  e.Tick(1);  // same virtual time, next logical timestep
  EXPECT_EQ(RowSet(e, "stored"), (std::set<Tuple>{Tuple{Value(1)}}));
}

TEST(EngineTest, NextEnablesStateUpdateThroughNegation) {
  // Register key K only if not already registered -- unstratifiable without @next.
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    event reg(K, V);
    table kv(K, V) keys(0);
    event accepted(K, V);
    event rejected(K);
    accepted(K, V) :- reg(K, V), notin kv(K, _);
    rejected(K) :- reg(K, _), kv(K, _);
    kv(K, V)@next :- accepted(K, V);
  )").ok());
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("reg", Tuple{Value(1), Value("a")}).ok());
  e.Tick(1);
  e.Tick(1);
  EXPECT_EQ(RowSet(e, "kv"), (std::set<Tuple>{Tuple{Value(1), Value("a")}}));
  // Second registration of the same key is rejected.
  std::vector<Tuple> rejections;
  e.AddWatch("rejected", [&rejections](const std::string&, const Tuple& t, bool ins) {
    if (ins) rejections.push_back(t);
  });
  ASSERT_TRUE(e.Enqueue("reg", Tuple{Value(1), Value("b")}).ok());
  e.Tick(2);
  EXPECT_EQ(RowSet(e, "kv"), (std::set<Tuple>{Tuple{Value(1), Value("a")}}));
  ASSERT_EQ(rejections.size(), 1u);
}

TEST(EngineTest, UniqueIdsAreFreshAndNodeScoped) {
  Engine e1(MakeEngine("n1"));
  Engine e2(MakeEngine("n2"));
  const char* src = R"(
    program t;
    event go(X);
    table ids(Id);
    ids(Id) :- go(_), Id := f_unique_id();
  )";
  ASSERT_TRUE(e1.InstallSource(src).ok());
  ASSERT_TRUE(e2.InstallSource(src).ok());
  e1.Tick(0);
  e2.Tick(0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(e1.Enqueue("go", Tuple{Value(i)}).ok());
    ASSERT_TRUE(e2.Enqueue("go", Tuple{Value(i)}).ok());
    e1.Tick(i + 1);
    e2.Tick(i + 1);
  }
  std::set<Tuple> ids1 = RowSet(e1, "ids");
  std::set<Tuple> ids2 = RowSet(e2, "ids");
  EXPECT_EQ(ids1.size(), 5u);
  EXPECT_EQ(ids2.size(), 5u);
  for (const Tuple& t : ids1) {
    EXPECT_EQ(ids2.count(t), 0u) << "id collision across nodes";
  }
}


TEST(EngineTest, TtlTablesExpireUnlessRefreshed) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table lease(Node, Info) keys(0) ttl(1000);
  )").ok());
  std::vector<Tuple> expirations;
  e.AddWatch("lease", [&expirations](const std::string&, const Tuple& t, bool inserted) {
    if (!inserted) {
      expirations.push_back(t);
    }
  });
  e.Tick(0);
  ASSERT_TRUE(e.Enqueue("lease", Tuple{Value("n1"), Value("a")}).ok());
  ASSERT_TRUE(e.Enqueue("lease", Tuple{Value("n2"), Value("b")}).ok());
  e.Tick(100);
  EXPECT_EQ(e.catalog().Get("lease").size(), 2u);
  // Refresh only n1 before the ttl elapses.
  ASSERT_TRUE(e.Enqueue("lease", Tuple{Value("n1"), Value("a")}).ok());
  e.Tick(900);
  // At t=1200 n2's lease (stamped 100) is past ttl; n1 (refreshed at 900) survives.
  e.Tick(1200);
  EXPECT_EQ(e.catalog().Get("lease").size(), 1u);
  EXPECT_NE(e.catalog().Get("lease").LookupByKey(Tuple{Value("n1")}), nullptr);
  ASSERT_EQ(expirations.size(), 1u);
  EXPECT_EQ(expirations[0][0], Value("n2"));
  // And n1 expires once its refresh lapses.
  e.Tick(2000);
  EXPECT_EQ(e.catalog().Get("lease").size(), 0u);
}

TEST(EngineTest, TtlRoundTripsThroughToString) {
  Engine e(MakeEngine());
  ASSERT_TRUE(e.InstallSource(R"(
    program t;
    table lease(Node) keys(0) ttl(500);
  )").ok());
  const std::string text = e.programs()[0].ToString();
  EXPECT_NE(text.find("ttl(500"), std::string::npos);
  Engine e2(MakeEngine("other"));
  EXPECT_TRUE(e2.InstallSource(text).ok());
  EXPECT_DOUBLE_EQ(e2.catalog().Get("lease").def().ttl_ms, 500.0);
}

TEST(EngineTest, TtlOnEventRejected) {
  Engine e(MakeEngine());
  EXPECT_FALSE(e.InstallSource("program t; event x(A) ttl(100);").ok());
}

// Dirty-rule scheduling is a pure optimization: fixpoint rounds that skip rules whose driver
// tables received no deltas must reach the exact same fixpoint as exhaustively scanning every
// rule. Runs the olg/shortest_paths.olg program (recursive join + min aggregate) on two
// engines — one with the optimization disabled — and compares every table tuple-for-tuple,
// both at the seeded fixpoint and after incremental edge insertions.
TEST(EngineTest, DirtySchedulingMatchesExhaustive) {
  // Keep in sync with olg/shortest_paths.olg (inlined because unit tests cannot assume the
  // source tree's path at runtime).
  const char* kShortestPaths = R"(
    program shortest_paths;

    table link(From, To, Cost);
    table path_cost(From, To, Cost);
    table shortest(From, To, Cost) keys(0, 1);

    link("a", "b", 1);
    link("b", "c", 2);
    link("a", "c", 5);
    link("c", "d", 1);
    link("b", "d", 9);

    p1 path_cost(F, T, C) :- link(F, T, C);
    p2 path_cost(F, T, C) :- link(F, N, C1), path_cost(N, T, C2), C := C1 + C2;

    s1 shortest(F, T, min<C>) :- path_cost(F, T, C);
  )";

  Engine dirty(MakeEngine());
  EngineOptions exhaustive_opts = MakeEngine();
  exhaustive_opts.disable_dirty_rule_scheduling = true;
  Engine exhaustive(exhaustive_opts);

  ASSERT_TRUE(dirty.InstallSource(kShortestPaths).ok());
  ASSERT_TRUE(exhaustive.InstallSource(kShortestPaths).ok());

  auto expect_same_fixpoint = [&](const std::string& when) {
    std::vector<std::string> names = dirty.catalog().TableNames();
    ASSERT_EQ(names, exhaustive.catalog().TableNames()) << when;
    for (const std::string& name : names) {
      EXPECT_EQ(RowSet(dirty, name), RowSet(exhaustive, name)) << when << ": table " << name;
    }
  };

  dirty.Tick(0);
  exhaustive.Tick(0);
  expect_same_fixpoint("after seed tick");
  // Sanity: the program actually derived the known shortest costs (a->d via b,c = 4).
  EXPECT_TRUE(RowSet(dirty, "shortest").count(Tuple{Value("a"), Value("d"), Value(4)}) > 0);

  // Incremental deltas: each new edge must propagate identically under both schedulers,
  // including the min-aggregate improving an existing shortest cost (a->c drops 3 -> 1).
  const Tuple new_edges[] = {
      Tuple{Value("d"), Value("e"), Value(2)},
      Tuple{Value("a"), Value("c"), Value(1)},
  };
  double now = 1;
  for (const Tuple& edge : new_edges) {
    ASSERT_TRUE(dirty.Enqueue("link", edge).ok());
    ASSERT_TRUE(exhaustive.Enqueue("link", edge).ok());
    dirty.Tick(now);
    exhaustive.Tick(now);
    now += 1;
    expect_same_fixpoint("after inserting " + edge.ToString());
  }
  // With d->e (2) and the cheaper a->c (1): a->e goes a-c-d-e = 1 + 1 + 2.
  EXPECT_TRUE(RowSet(dirty, "shortest").count(Tuple{Value("a"), Value("e"), Value(4)}) > 0);
  EXPECT_TRUE(RowSet(dirty, "shortest").count(Tuple{Value("a"), Value("c"), Value(1)}) > 0);
}

}  // namespace
}  // namespace boom
