// Seed-determinism regression tests: the whole point of the simulation-first architecture
// is that a seed IS the test case. Same seed + same schedule must reproduce the same run
// down to the byte — traces, checker outcomes, explorer reports. Any nondeterminism
// (wall-clock leakage, container iteration order, heap addresses in output) breaks failing
// seeds as bug reports, so this suite runs everything twice and diffs.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/chaos/explorer.h"
#include "src/chaos/fault_schedule.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"

namespace boom {
namespace {

// One full chaos run (with trace recording) of `scenario_name` at `seed`.
ChaosRunResult TracedRun(const std::string& scenario_name, uint64_t seed) {
  std::unique_ptr<ChaosScenario> scenario = MakeScenario(scenario_name);
  FaultSchedule schedule = GenerateFaultSchedule(seed, scenario->FaultProfile());
  ChaosRunOptions options;
  options.record_trace = true;
  return RunChaosOnce(*scenario, seed, schedule, options);
}

class TraceDeterminism : public ::testing::TestWithParam<std::string> {};

// Same seed twice => byte-identical fault/network traces and identical outcomes.
TEST_P(TraceDeterminism, SameSeedSameTrace) {
  const std::string scenario = GetParam();
  for (uint64_t seed : {uint64_t{3}, uint64_t{11}}) {
    ChaosRunResult a = TracedRun(scenario, seed);
    ChaosRunResult b = TracedRun(scenario, seed);
    ASSERT_FALSE(a.trace.empty()) << scenario << " seed " << seed << ": no trace recorded";
    EXPECT_EQ(a.trace, b.trace) << scenario << " seed " << seed << ": traces diverged";
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.end_ms, b.end_ms);
  }
}

// Different seeds must actually produce different schedules/traces — otherwise the sweep
// is re-running one case N times and the determinism above is vacuous.
TEST_P(TraceDeterminism, DifferentSeedsDiffer) {
  const std::string scenario = GetParam();
  ChaosRunResult a = TracedRun(scenario, 3);
  ChaosRunResult b = TracedRun(scenario, 4);
  EXPECT_NE(a.trace, b.trace) << scenario << ": seeds 3 and 4 produced identical traces";
}

INSTANTIATE_TEST_SUITE_P(Scenarios, TraceDeterminism,
                         ::testing::ValuesIn(ScenarioNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// Schedule generation is a pure function of (seed, profile).
TEST(ChaosDeterminism, ScheduleGenerationIsPure) {
  std::unique_ptr<ChaosScenario> scenario = MakeScenario("boomfs");
  FaultGenOptions profile = scenario->FaultProfile();
  FaultSchedule a = GenerateFaultSchedule(42, profile);
  FaultSchedule b = GenerateFaultSchedule(42, profile);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_FALSE(a.events.empty());
}

// The explorer's full report text — the CLI's stdout — is byte-stable across invocations,
// including the failure/shrink sections produced by a bug variant.
TEST(ChaosDeterminism, ExplorerReportIsByteStable) {
  ExplorerOptions options;
  options.scenario = "boommr";
  options.seeds = 5;
  options.verbose = true;
  ExplorerReport a = ExploreSeeds(options);
  ExplorerReport b = ExploreSeeds(options);
  EXPECT_EQ(a.text, b.text);

  ExplorerOptions buggy;
  buggy.scenario = "paxos";
  buggy.bug = "quorum1";
  buggy.seeds = 2;
  ExplorerReport c = ExploreSeeds(buggy);
  ExplorerReport d = ExploreSeeds(buggy);
  ASSERT_GT(c.failures, 0);
  EXPECT_EQ(c.text, d.text);
}

}  // namespace
}  // namespace boom
