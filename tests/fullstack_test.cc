// Full-stack integration: the complete BOOM Analytics story in one test — input stored in
// BOOM-FS (declarative NameNode), processed by a real wordcount scheduled by BOOM-MR
// (declarative JobTracker), output written back to BOOM-FS and read out — plus a variant
// where the HA (Paxos-replicated) NameNode loses its primary mid-workload.

#include <gtest/gtest.h>

#include <sstream>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/ha.h"
#include "src/boommr/boommr.h"

namespace boom {
namespace {

constexpr char kCorpus[] =
    "to be or not to be that is the question "
    "whether tis nobler in the mind to suffer "
    "the slings and arrows of outrageous fortune";

JobSpec WordCountJob(MrHandles& mr, const std::string& text, size_t split_bytes) {
  JobSpec spec;
  spec.job_id = mr.client->NextJobId();
  spec.client = mr.client->address();
  std::istringstream words(text);
  std::string word;
  std::string split;
  while (words >> word) {
    split += word + " ";
    if (split.size() >= split_bytes) {
      spec.map_inputs.push_back(split);
      split.clear();
    }
  }
  if (!split.empty()) {
    spec.map_inputs.push_back(split);
  }
  spec.num_maps = static_cast<int>(spec.map_inputs.size());
  spec.num_reduces = 2;
  spec.map_fn = [](const std::string& input, std::vector<KvPair>* out) {
    std::istringstream is(input);
    std::string w;
    while (is >> w) {
      out->emplace_back(w, "1");
    }
  };
  spec.reduce_fn = [](const std::string& key, const std::vector<std::string>& values) {
    return key + " " + std::to_string(values.size()) + "\n";
  };
  spec.duration_ms = [](const TaskRef&, const std::string&) { return 120.0; };
  return spec;
}

int CountOf(const std::string& output, const std::string& word) {
  std::istringstream is(output);
  std::string w;
  int n;
  while (is >> w >> n) {
    if (w == word) {
      return n;
    }
  }
  return -1;
}

TEST(FullStackTest, FsToMapReduceToFsRoundTrip) {
  Cluster cluster(8181);

  FsSetupOptions fs_opts;
  fs_opts.kind = FsKind::kBoomFs;
  fs_opts.num_datanodes = 3;
  fs_opts.chunk_size = 48;
  FsHandles fs_handles = SetupFs(cluster, fs_opts);
  SyncFs fs(cluster, fs_handles.client);
  cluster.RunUntil(1200);

  // 1. Input through the declarative NameNode.
  ASSERT_TRUE(fs.Mkdir("/in"));
  ASSERT_TRUE(fs.Mkdir("/out"));
  ASSERT_TRUE(fs.WriteFile("/in/corpus", kCorpus));
  std::string stored;
  ASSERT_TRUE(fs.ReadFile("/in/corpus", &stored));
  ASSERT_EQ(stored, kCorpus);

  // 2. Wordcount scheduled by the declarative JobTracker.
  MrSetupOptions mr_opts;
  mr_opts.kind = MrKind::kBoomMr;
  mr_opts.num_trackers = 3;
  MrHandles mr = SetupMr(cluster, mr_opts);
  JobSpec spec = WordCountJob(mr, stored, fs_opts.chunk_size);
  int64_t job_id = spec.job_id;
  double finish = RunJobSync(cluster, mr, std::move(spec));
  ASSERT_GT(finish, 0);

  // 3. Output written back into BOOM-FS and verified after a round trip.
  std::string output = mr.data_plane->JobOutput(job_id);
  ASSERT_TRUE(fs.WriteFile("/out/wordcount", output));
  std::string read_back;
  ASSERT_TRUE(fs.ReadFile("/out/wordcount", &read_back));
  EXPECT_EQ(read_back, output);
  EXPECT_EQ(CountOf(read_back, "to"), 3);
  EXPECT_EQ(CountOf(read_back, "the"), 3);
  EXPECT_EQ(CountOf(read_back, "be"), 2);
  EXPECT_EQ(CountOf(read_back, "question"), 1);
}

TEST(FullStackTest, MapReduceWhileHaNameNodeFailsOver) {
  Cluster cluster(2727);

  HaFsOptions ha_opts;
  ha_opts.num_replicas = 3;
  ha_opts.num_datanodes = 3;
  ha_opts.chunk_size = 48;
  HaFsHandles ha = SetupHaFs(cluster, ha_opts);
  SyncFs fs(cluster, ha.client, /*timeout_ms=*/240000);
  cluster.RunUntil(3000);

  ASSERT_TRUE(fs.Mkdir("/data"));
  ASSERT_TRUE(fs.WriteFile("/data/corpus", kCorpus));
  std::string stored;
  ASSERT_TRUE(fs.ReadFile("/data/corpus", &stored));

  MrSetupOptions mr_opts;
  mr_opts.kind = MrKind::kBoomMr;
  mr_opts.num_trackers = 3;
  MrHandles mr = SetupMr(cluster, mr_opts);
  JobSpec spec = WordCountJob(mr, stored, ha_opts.chunk_size);
  spec.duration_ms = [](const TaskRef&, const std::string&) { return 2000.0; };
  int64_t job_id = spec.job_id;

  double finish = -1;
  mr.client->Submit(cluster, std::move(spec), [&finish](double t) { finish = t; });
  // Kill the FS primary while the job runs.
  cluster.RunUntil(cluster.now() + 1500);
  cluster.KillNode(ha.replicas[0]);
  cluster.RunUntil(cluster.now() + 120000);
  ASSERT_GT(finish, 0) << "job did not finish";

  // The surviving NameNodes still serve: write the result and read it back.
  std::string output = mr.data_plane->JobOutput(job_id);
  ASSERT_FALSE(output.empty());
  ASSERT_TRUE(fs.WriteFile("/data/wordcount", output));
  std::string read_back;
  ASSERT_TRUE(fs.ReadFile("/data/wordcount", &read_back));
  EXPECT_EQ(read_back, output);
  EXPECT_EQ(CountOf(read_back, "to"), 3);
}

}  // namespace
}  // namespace boom
