// Scheduler-policy tests for the multi-tenant BOOM-MR JobTracker: the fair-share and
// capacity policy programs are frozen as goldens (tests/golden/jt_fairshare.olg and
// jt_capacity.olg), the paper's one-module-swap claim is checked structurally across all
// four policies, and a 2-tenant mixed job set must complete under every policy.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/boommr/boommr.h"
#include "src/boommr/jt_program.h"
#include "src/overlog/parser.h"
#include "src/sim/cluster.h"

namespace boom {
namespace {

std::string ReadGolden(const std::string& name) {
  std::string path = std::string(BOOM_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- frozen policy program texts -------------------------------------------------------

// The composed fair-share program is byte-identical to the frozen golden, and the golden
// is self-contained, parseable Overlog (olglint checks it separately at ctest level).
TEST(SchedulerPolicy, FairShareGoldenIsExactProgramText) {
  JtProgramOptions opts;
  opts.policy = MrPolicy::kFairShare;
  Program program = BoomMrJtProgram(opts);
  EXPECT_EQ(program.ToString(), ReadGolden("jt_fairshare.olg"));

  Result<Program> reparsed = ParseProgram(ReadGolden("jt_fairshare.olg"));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().rules.size(), program.rules.size());
}

TEST(SchedulerPolicy, CapacityGoldenIsExactProgramText) {
  JtProgramOptions opts;
  opts.policy = MrPolicy::kCapacity;
  opts.tenant_capacities = {{"jt_client", 4}, {"jt_client_t1", 2}};
  Program program = BoomMrJtProgram(opts);
  EXPECT_EQ(program.ToString(), ReadGolden("jt_capacity.olg"));

  Result<Program> reparsed = ParseProgram(ReadGolden("jt_capacity.olg"));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  // The tenant quotas ride along as capacity facts, not baked-in rule edits.
  size_t capacity_facts = 0;
  for (const Fact& fact : reparsed.value().facts) {
    if (fact.table == "capacity") {
      ++capacity_facts;
    }
  }
  EXPECT_EQ(capacity_facts, 2u);
}

// --- the one-module-swap claim, across all four policies -------------------------------

// Structure of every policy program: a shared core (jt_core + jt_exec rules, identical
// text in every composition) plus that policy's own rules. FIFO/fair-share/capacity rules
// are pairwise disjoint; LATE is FIFO plus the speculation module. This is the paper's
// "scheduling policy is data" claim stated over the ASTs rather than by inspection.
TEST(SchedulerPolicy, EveryPolicyIsOneModuleSwap) {
  auto build = [](MrPolicy policy) {
    JtProgramOptions opts;
    opts.policy = policy;
    return BoomMrJtProgram(opts);
  };
  Program fifo = build(MrPolicy::kFifo);
  Program late = build(MrPolicy::kLate);
  Program fair = build(MrPolicy::kFairShare);
  Program cap = build(MrPolicy::kCapacity);

  auto rule_texts = [](const Program& p) {
    std::map<std::string, std::string> out;
    for (const Rule& rule : p.rules) {
      out[rule.name] = rule.ToString();
    }
    return out;
  };
  auto fifo_rules = rule_texts(fifo);
  auto late_rules = rule_texts(late);
  auto fair_rules = rule_texts(fair);
  auto cap_rules = rule_texts(cap);

  // The shared core: rule names present under all of fifo/fair/capacity (their policy
  // modules are disjoint, so the intersection is exactly jt_core + jt_exec).
  std::set<std::string> core;
  for (const auto& [name, text] : fifo_rules) {
    if (fair_rules.count(name) && cap_rules.count(name)) {
      core.insert(name);
    }
  }
  ASSERT_GT(core.size(), 5u) << "shared core unexpectedly small";

  // Core rules are byte-identical in every composition — swapping policy touches nothing
  // else.
  for (const auto* rules : {&late_rules, &fair_rules, &cap_rules}) {
    for (const std::string& name : core) {
      ASSERT_TRUE(rules->count(name)) << "core rule " << name << " missing";
      EXPECT_EQ(rules->at(name), fifo_rules.at(name)) << "core rule " << name << " edited";
    }
  }

  // Each policy's own rules: nonempty, and pairwise disjoint across fifo/fair/capacity.
  auto extras = [&core](const std::map<std::string, std::string>& rules) {
    std::set<std::string> out;
    for (const auto& [name, text] : rules) {
      if (!core.count(name)) {
        out.insert(name);
      }
    }
    return out;
  };
  std::set<std::string> fifo_extra = extras(fifo_rules);
  std::set<std::string> fair_extra = extras(fair_rules);
  std::set<std::string> cap_extra = extras(cap_rules);
  EXPECT_FALSE(fifo_extra.empty());
  EXPECT_FALSE(fair_extra.empty());
  EXPECT_FALSE(cap_extra.empty());
  for (const std::string& name : fifo_extra) {
    EXPECT_FALSE(fair_extra.count(name)) << name;
    EXPECT_FALSE(cap_extra.count(name)) << name;
  }
  for (const std::string& name : fair_extra) {
    EXPECT_FALSE(cap_extra.count(name)) << name;
  }

  // LATE = FIFO + the speculation module: every FIFO rule survives verbatim.
  for (const auto& [name, text] : fifo_rules) {
    ASSERT_TRUE(late_rules.count(name)) << "LATE dropped FIFO rule " << name;
    EXPECT_EQ(late_rules.at(name), text) << "LATE edited FIFO rule " << name;
  }
  EXPECT_GT(late_rules.size(), fifo_rules.size());
}

// --- the 4-policy completion matrix ----------------------------------------------------

// Every policy must run the same mixed two-tenant job set to completion — swapping the
// policy module changes who goes first, never whether work finishes.
TEST(SchedulerPolicy, AllPoliciesCompleteMixedTenantJobs) {
  for (MrPolicy policy : {MrPolicy::kFifo, MrPolicy::kLate, MrPolicy::kFairShare,
                          MrPolicy::kCapacity}) {
    SCOPED_TRACE(MrPolicyName(policy));
    Cluster cluster(1234);
    MrSetupOptions opts;
    opts.policy = policy;
    opts.num_trackers = 4;
    opts.map_slots = 2;
    opts.reduce_slots = 1;
    opts.num_tenants = 2;
    if (policy == MrPolicy::kCapacity) {
      opts.tenant_capacities = {{0, 4}, {1, 2}};
    }
    MrHandles handles = SetupMr(cluster, opts);
    ASSERT_EQ(handles.tenant_clients.size(), 2u);

    // Three jobs per tenant, interleaved submissions, enough tasks to contend for the 12
    // map slots.
    int outstanding = 0;
    std::vector<int64_t> job_ids;
    for (int round = 0; round < 3; ++round) {
      for (int tenant = 0; tenant < 2; ++tenant) {
        MrClient* client = handles.tenant_clients[static_cast<size_t>(tenant)];
        JobSpec spec;
        spec.job_id = client->NextJobId();
        spec.client = client->address();
        spec.num_maps = 6;
        spec.num_reduces = 2;
        spec.duration_ms = [](const TaskRef& task, const std::string&) {
          return 150.0 + ((task.job_id * 13 + task.task_id * 7) % 4) * 50.0;
        };
        job_ids.push_back(spec.job_id);
        ++outstanding;
        client->Submit(cluster, std::move(spec), [&outstanding](double) { --outstanding; });
      }
    }
    double deadline = cluster.now() + 120000;
    while (outstanding > 0 && cluster.now() < deadline) {
      cluster.RunUntil(cluster.now() + 100.0);
    }
    EXPECT_EQ(outstanding, 0) << "jobs unfinished under " << MrPolicyName(policy);

    // The data plane recorded a submit and a completion for every job, and the job ids
    // confirm both tenants' blocks were exercised.
    const MrMetrics& metrics = handles.data_plane->metrics();
    std::set<int> tenants_seen;
    for (int64_t job : job_ids) {
      EXPECT_TRUE(metrics.job_submit_ms.count(job)) << "job " << job;
      EXPECT_TRUE(metrics.job_done_ms.count(job)) << "job " << job;
      tenants_seen.insert(static_cast<int>(job / 1000000));
    }
    EXPECT_EQ(tenants_seen.size(), 2u);
  }
}

}  // namespace
}  // namespace boom
