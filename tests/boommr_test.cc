// Integration tests for the MapReduce layer, parameterized over both JobTracker
// implementations (BOOM-MR Overlog vs Hadoop baseline).

#include <gtest/gtest.h>

#include <sstream>

#include "src/boommr/boommr.h"
#include "src/sim/stats.h"

namespace boom {
namespace {

JobSpec SimpleSimJob(MrHandles& handles, int maps, int reduces, double duration) {
  JobSpec spec;
  spec.job_id = handles.client->NextJobId();
  spec.client = handles.client->address();
  spec.num_maps = maps;
  spec.num_reduces = reduces;
  spec.duration_ms = [duration](const TaskRef&, const std::string&) { return duration; };
  return spec;
}

class MrTest : public ::testing::TestWithParam<MrKind> {
 protected:
  MrTest() : cluster_(777) {}

  MrHandles Setup(MrSetupOptions opts) {
    opts.kind = GetParam();
    return SetupMr(cluster_, opts);
  }

  Cluster cluster_;
};

TEST_P(MrTest, SingleMapOnlyJobCompletes) {
  MrSetupOptions opts;
  opts.num_trackers = 2;
  MrHandles handles = Setup(opts);
  double finish = RunJobSync(cluster_, handles, SimpleSimJob(handles, 4, 0, 100));
  EXPECT_GT(finish, 0);
}

TEST_P(MrTest, MapReduceJobCompletes) {
  MrSetupOptions opts;
  opts.num_trackers = 4;
  MrHandles handles = Setup(opts);
  double finish = RunJobSync(cluster_, handles, SimpleSimJob(handles, 8, 3, 150));
  ASSERT_GT(finish, 0);
  // All tasks ran exactly once under FIFO (no speculation).
  const MrMetrics& metrics = handles.data_plane->metrics();
  EXPECT_EQ(metrics.attempts.size(), 11u);
}

TEST_P(MrTest, ReduceBarrierHolds) {
  MrSetupOptions opts;
  opts.num_trackers = 4;
  MrHandles handles = Setup(opts);
  double finish = RunJobSync(cluster_, handles, SimpleSimJob(handles, 6, 2, 200));
  ASSERT_GT(finish, 0);
  const MrMetrics& metrics = handles.data_plane->metrics();
  double last_map_end = 0;
  double first_reduce_start = 1e18;
  for (const AttemptRecord& a : metrics.attempts) {
    if (a.is_map) {
      last_map_end = std::max(last_map_end, a.end_ms);
    } else {
      first_reduce_start = std::min(first_reduce_start, a.start_ms);
    }
  }
  EXPECT_GE(first_reduce_start, last_map_end);
}

TEST_P(MrTest, SlotsRespected) {
  MrSetupOptions opts;
  opts.num_trackers = 2;
  opts.map_slots = 1;
  MrHandles handles = Setup(opts);
  double finish = RunJobSync(cluster_, handles, SimpleSimJob(handles, 8, 0, 100));
  ASSERT_GT(finish, 0);
  // 8 x 100ms maps on 2 single-slot trackers: at least 4 sequential rounds.
  EXPECT_GE(finish, 400);
  // Verify no tracker ever overlapped two maps: reconstruct concurrency from records.
  const MrMetrics& metrics = handles.data_plane->metrics();
  for (const AttemptRecord& a : metrics.attempts) {
    int overlap = 0;
    for (const AttemptRecord& b : metrics.attempts) {
      if (b.tracker == a.tracker && b.start_ms < a.end_ms && a.start_ms < b.end_ms) {
        ++overlap;
      }
    }
    EXPECT_LE(overlap, 1) << "tracker " << a.tracker << " overlapped attempts";
  }
}

TEST_P(MrTest, TwoJobsFifoOrder) {
  MrSetupOptions opts;
  opts.num_trackers = 2;
  opts.map_slots = 1;
  opts.reduce_slots = 1;
  MrHandles handles = Setup(opts);
  JobSpec job1 = SimpleSimJob(handles, 6, 0, 200);
  JobSpec job2 = SimpleSimJob(handles, 6, 0, 200);
  int64_t id1 = job1.job_id;
  int64_t id2 = job2.job_id;
  double done1 = -1, done2 = -1;
  handles.client->Submit(cluster_, std::move(job1), [&done1](double t) { done1 = t; });
  cluster_.RunUntil(50);  // job1 strictly earlier
  handles.client->Submit(cluster_, std::move(job2), [&done2](double t) { done2 = t; });
  cluster_.RunUntil(30000);
  ASSERT_GT(done1, 0);
  ASSERT_GT(done2, 0);
  EXPECT_LT(done1, done2);  // FIFO: the earlier job finishes first
  const MrMetrics& metrics = handles.data_plane->metrics();
  // Earliest attempts must belong to job1.
  double earliest_job2_start = 1e18;
  double latest_job1_start = 0;
  for (const AttemptRecord& a : metrics.attempts) {
    if (a.job_id == id1) {
      latest_job1_start = std::max(latest_job1_start, a.start_ms);
    }
    if (a.job_id == id2) {
      earliest_job2_start = std::min(earliest_job2_start, a.start_ms);
    }
  }
  EXPECT_LE(latest_job1_start, earliest_job2_start + 1e-9);
}

TEST_P(MrTest, RealWordCountProducesCorrectCounts) {
  MrSetupOptions opts;
  opts.num_trackers = 3;
  MrHandles handles = Setup(opts);

  JobSpec spec = SimpleSimJob(handles, 3, 2, 50);
  spec.map_inputs = {"the cat sat on the mat", "the dog ate the cat", "mat and dog and cat"};
  spec.map_fn = [](const std::string& input, std::vector<KvPair>* out) {
    std::istringstream is(input);
    std::string word;
    while (is >> word) {
      out->emplace_back(word, "1");
    }
  };
  spec.reduce_fn = [](const std::string& key, const std::vector<std::string>& values) {
    return key + "\t" + std::to_string(values.size()) + "\n";
  };
  int64_t job_id = spec.job_id;
  double finish = RunJobSync(cluster_, handles, std::move(spec));
  ASSERT_GT(finish, 0);

  std::string output = handles.data_plane->JobOutput(job_id);
  auto count_of = [&output](const std::string& word) {
    size_t pos = output.find(word + "\t");
    EXPECT_NE(pos, std::string::npos) << word << " missing from:\n" << output;
    if (pos == std::string::npos) {
      return -1;
    }
    return std::stoi(output.substr(pos + word.size() + 1));
  };
  EXPECT_EQ(count_of("the"), 4);
  EXPECT_EQ(count_of("cat"), 3);
  EXPECT_EQ(count_of("dog"), 2);
  EXPECT_EQ(count_of("and"), 2);
  EXPECT_EQ(count_of("mat"), 2);
}

TEST_P(MrTest, LateSpeculationBeatsFifoWithStragglers) {
  // One very slow tracker; LATE should re-execute its tasks elsewhere and finish much
  // earlier than FIFO.
  auto run = [](MrKind kind, MrPolicy policy) {
    Cluster cluster(4242);
    MrSetupOptions opts;
    opts.kind = kind;
    opts.policy = policy;
    opts.num_trackers = 6;
    opts.map_slots = 1;
    opts.reduce_slots = 1;
    opts.tracker_slowdowns = {10.0};  // tracker 0 is a 10x straggler
    MrHandles handles = SetupMr(cluster, opts);
    JobSpec spec;
    spec.job_id = handles.client->NextJobId();
    spec.client = handles.client->address();
    spec.num_maps = 12;
    spec.num_reduces = 0;
    spec.duration_ms = [](const TaskRef&, const std::string&) { return 500.0; };
    return RunJobSync(cluster, handles, std::move(spec), 600000);
  };
  double fifo = run(GetParam(), MrPolicy::kFifo);
  double late = run(GetParam(), MrPolicy::kLate);
  ASSERT_GT(fifo, 0);
  ASSERT_GT(late, 0);
  // The straggler stretches FIFO to ~5000ms; LATE should cut the tail substantially.
  EXPECT_LT(late, fifo * 0.7) << "FIFO=" << fifo << " LATE=" << late;
}


TEST_P(MrTest, TaskTrackerDeathRequeuesItsTasks) {
  MrSetupOptions opts;
  opts.num_trackers = 4;
  opts.map_slots = 1;
  opts.reduce_slots = 1;
  MrHandles handles = Setup(opts);
  JobSpec spec = SimpleSimJob(handles, 12, 2, 2000);
  int64_t job_id = spec.job_id;
  double finish = -1;
  handles.client->Submit(cluster_, std::move(spec), [&finish](double t) { finish = t; });
  // Let the job get rolling, then kill one tracker mid-flight.
  cluster_.RunUntil(3000);
  cluster_.KillNode(handles.trackers[0]);
  cluster_.RunUntil(180000);
  ASSERT_GT(finish, 0) << "job hung after tracker death";
  // Every map and reduce task completed exactly once (winners), none on the dead tracker
  // after its death.
  const MrMetrics& metrics = handles.data_plane->metrics();
  std::set<std::pair<int64_t, bool>> winners;
  for (const AttemptRecord& a : metrics.attempts) {
    if (a.job_id == job_id && a.won) {
      winners.insert({a.task_id, a.is_map});
    }
  }
  EXPECT_EQ(winners.size(), 14u);
}

TEST_P(MrTest, ManyConcurrentJobsAllComplete) {
  MrSetupOptions opts;
  opts.num_trackers = 6;
  MrHandles handles = Setup(opts);
  int done = 0;
  for (int j = 0; j < 5; ++j) {
    JobSpec spec = SimpleSimJob(handles, 8, 2, 300 + 100 * j);
    handles.client->Submit(cluster_, std::move(spec), [&done](double) { ++done; });
  }
  cluster_.RunUntil(120000);
  EXPECT_EQ(done, 5);
}

TEST_P(MrTest, ZeroMapJobCompletesImmediately) {
  MrSetupOptions opts;
  opts.num_trackers = 2;
  MrHandles handles = Setup(opts);
  double finish = RunJobSync(cluster_, handles, SimpleSimJob(handles, 0, 0, 100));
  EXPECT_GT(finish, 0);
}

INSTANTIATE_TEST_SUITE_P(BothJobTrackers, MrTest,
                         ::testing::Values(MrKind::kBoomMr, MrKind::kHadoopBaseline),
                         [](const ::testing::TestParamInfo<MrKind>& info) {
                           return info.param == MrKind::kBoomMr ? "BoomMr" : "Hadoop";
                         });

}  // namespace
}  // namespace boom
