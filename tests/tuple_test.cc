// Tests for the copy-on-write Tuple rep: cached-hash invalidation, storage sharing, and the
// TupleView probe-key path (tuple.h). Basic equality/order/projection semantics are covered
// in value_test.cc; this file exercises the performance machinery.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/overlog/tuple.h"
#include "src/overlog/value.h"

namespace boom {
namespace {

TEST(TupleRepTest, HashIsLazyAndCached) {
  Tuple t{Value(1), Value("a")};
  EXPECT_FALSE(t.hash_cached());
  size_t h = t.hash();
  EXPECT_TRUE(t.hash_cached());
  EXPECT_EQ(t.hash(), h);  // stable on repeat
}

TEST(TupleRepTest, SetInvalidatesCachedHash) {
  Tuple t{Value(1), Value(2)};
  size_t before = t.hash();
  ASSERT_TRUE(t.hash_cached());
  t.set(1, Value(99));
  EXPECT_FALSE(t.hash_cached());
  size_t after = t.hash();
  EXPECT_NE(before, after);
  EXPECT_EQ(after, Tuple({Value(1), Value(99)}).hash());
}

TEST(TupleRepTest, CopyIsSharedUntilMutation) {
  Tuple a{Value(1), Value("x")};
  Tuple b = a;
  EXPECT_TRUE(a.shares_storage_with(b));
  // Mutating b clones its storage; a keeps the original values.
  b.set(0, Value(2));
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(a[0], Value(1));
  EXPECT_EQ(b[0], Value(2));
  EXPECT_EQ(a[1], b[1]);
}

TEST(TupleRepTest, SetOnUniquelyOwnedTupleMutatesInPlace) {
  Tuple t{Value(1), Value(2)};
  const Value* before = t.data();
  t.set(0, Value(7));
  EXPECT_EQ(t.data(), before);  // no clone when the rep is unshared
  EXPECT_EQ(t[0], Value(7));
}

TEST(TupleRepTest, CachedHashSharedAcrossCopies) {
  Tuple a{Value("k"), Value(3)};
  Tuple b = a;
  EXPECT_FALSE(b.hash_cached());
  a.hash();  // computing through one handle populates the shared cache
  EXPECT_TRUE(b.hash_cached());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(TupleRepTest, EmptyTupleHasStableHash) {
  Tuple empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.hash_cached());
  EXPECT_EQ(empty.hash(), Tuple().hash());
  EXPECT_EQ(empty, Tuple());
}

TEST(TupleRepTest, EqualTuplesHashEqualAcrossConstructors) {
  std::vector<Value> vals = {Value(1), Value("a"), Value(2.5)};
  Tuple from_vector(vals);
  Tuple from_init{Value(1), Value("a"), Value(2.5)};
  Tuple from_range(vals.data(), vals.size());
  EXPECT_EQ(from_vector, from_init);
  EXPECT_EQ(from_vector, from_range);
  EXPECT_EQ(from_vector.hash(), from_init.hash());
  EXPECT_EQ(from_vector.hash(), from_range.hash());
}

TEST(TupleRepTest, TupleViewHashMatchesTuple) {
  std::vector<Value> vals = {Value("node"), Value(42), Value(3.5)};
  Tuple t(vals.data(), vals.size());
  TupleView view = TupleView::Of(vals.data(), vals.size());
  EXPECT_EQ(view.hash, t.hash());
  EXPECT_TRUE(TupleEq{}(view, t));
  EXPECT_TRUE(TupleEq{}(t, view));
}

TEST(TupleRepTest, TupleViewProbesTupleKeyedMap) {
  std::unordered_map<Tuple, int, TupleHash, TupleEq> map;
  map[Tuple{Value("a"), Value(1)}] = 10;
  map[Tuple{Value("b"), Value(2)}] = 20;

  std::vector<Value> probe = {Value("b"), Value(2)};
  auto it = map.find(TupleView::Of(probe.data(), probe.size()));
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 20);

  std::vector<Value> miss = {Value("b"), Value(3)};
  EXPECT_EQ(map.find(TupleView::Of(miss.data(), miss.size())), map.end());
}

TEST(TupleRepTest, IdentityProjectionSharesStorage) {
  Tuple t{Value(1), Value(2), Value(3)};
  Tuple same = t.Project({0, 1, 2});
  EXPECT_TRUE(same.shares_storage_with(t));

  Tuple reordered = t.Project({2, 0});
  EXPECT_FALSE(reordered.shares_storage_with(t));
  EXPECT_EQ(reordered, Tuple({Value(3), Value(1)}));
}

TEST(TupleRepTest, MutationAfterIdentityProjectionDoesNotAliasKey) {
  // A table key produced by an identity projection shares storage with the row; mutating the
  // row afterwards must not rewrite the key (CoW clone on set).
  Tuple row{Value("k"), Value(1)};
  Tuple key = row.Project({0, 1});
  ASSERT_TRUE(key.shares_storage_with(row));
  row.set(1, Value(2));
  EXPECT_EQ(key, Tuple({Value("k"), Value(1)}));
  EXPECT_EQ(row, Tuple({Value("k"), Value(2)}));
}

TEST(TupleRepTest, HashValueRangeMatchesTupleSeed) {
  std::vector<Value> vals = {Value(5), Value("x")};
  EXPECT_EQ(HashValueRange(vals.data(), vals.size()), Tuple(vals.data(), vals.size()).hash());
  EXPECT_EQ(HashValueRange(nullptr, 0), Tuple().hash());
}

TEST(TupleRepTest, MoveLeavesSourceEmpty) {
  Tuple a{Value(1), Value(2)};
  Tuple b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move) — testing moved-from state
  a = b;                    // reassignment after move works
  EXPECT_TRUE(a.shares_storage_with(b));
}

TEST(TupleRepTest, SelfAssignmentIsSafe) {
  Tuple t{Value("self"), Value(1)};
  Tuple& alias = t;
  t = alias;
  EXPECT_EQ(t, Tuple({Value("self"), Value(1)}));
}

}  // namespace
}  // namespace boom
