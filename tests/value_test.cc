#include <gtest/gtest.h>

#include "src/overlog/tuple.h"
#include "src/overlog/value.h"

namespace boom {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value().is_nil());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(ValueList{Value(1)}).is_list());
}

TEST(ValueTest, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value(1.5));
  EXPECT_EQ(Value(1).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(99), Value("a"));
  EXPECT_LT(Value("z"), Value(ValueList{}));
}

TEST(ValueTest, StringOrder) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, ListOrderLexicographic) {
  Value a(ValueList{Value(1), Value(2)});
  Value b(ValueList{Value(1), Value(3)});
  Value c(ValueList{Value(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value(ValueList{Value(1), Value(2)}));
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_FALSE(Value(ValueList{}).Truthy());
  EXPECT_TRUE(Value(1).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(ValueList{Value(1), Value("a")}).ToString(), "[1, \"a\"]");
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  Tuple c{Value(1), Value("y")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
}

TEST(TupleTest, Project) {
  Tuple t{Value(1), Value(2), Value(3)};
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(3));
  EXPECT_EQ(p[1], Value(1));
}

TEST(TupleTest, LexicographicOrder) {
  Tuple a{Value(1), Value(2)};
  Tuple b{Value(1), Value(3)};
  Tuple c{Value(1)};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(c < a);
  EXPECT_FALSE(a < a);
}

TEST(TupleTest, ToStringQuotesStrings) {
  Tuple t{Value(1), Value("a b")};
  EXPECT_EQ(t.ToString(), "(1, \"a b\")");
}

}  // namespace
}  // namespace boom
