#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/overlog/tuple.h"
#include "src/overlog/value.h"

namespace boom {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value().is_nil());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(ValueList{Value(1)}).is_list());
}

TEST(ValueTest, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value(1.5));
  EXPECT_EQ(Value(1).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(99), Value("a"));
  EXPECT_LT(Value("z"), Value(ValueList{}));
}

TEST(ValueTest, StringOrder) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, ListOrderLexicographic) {
  Value a(ValueList{Value(1), Value(2)});
  Value b(ValueList{Value(1), Value(3)});
  Value c(ValueList{Value(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value(ValueList{Value(1), Value(2)}));
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_FALSE(Value(ValueList{}).Truthy());
  EXPECT_TRUE(Value(1).Truthy());
  EXPECT_TRUE(Value("x").Truthy());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(ValueList{Value(1), Value("a")}).ToString(), "[1, \"a\"]");
}

// --- String interner (value.h: InternString / Value::interned) ---

TEST(InternerTest, EqualStringsShareOneInternedObject) {
  Value a("interner-round-trip");
  Value b(std::string("interner-round-trip"));
  ASSERT_NE(a.interned(), nullptr);
  EXPECT_EQ(a.interned(), b.interned());  // pointer identity, not just equality
  EXPECT_EQ(a.as_string(), "interner-round-trip");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(InternerTest, DistinctStringsGetDistinctObjects) {
  Value a("interner-a");
  Value b("interner-b");
  EXPECT_NE(a.interned(), b.interned());
  EXPECT_NE(a, b);
}

TEST(InternerTest, CopiesShareTheHandle) {
  Value a("interner-copy");
  Value b = a;
  EXPECT_EQ(a.interned(), b.interned());
}

TEST(InternerTest, HandleCachesStdStringHash) {
  Value v("interner-hash");
  ASSERT_NE(v.interned(), nullptr);
  EXPECT_EQ(v.interned()->hash, std::hash<std::string>{}("interner-hash"));
  EXPECT_EQ(v.interned()->text, "interner-hash");
}

TEST(InternerTest, OrderingMatchesStdString) {
  // Interning must not change the observable total order: string Values compare exactly like
  // the std::strings they hold, independent of interning order.
  std::vector<std::string> words = {"", "a", "aa", "ab", "b", "ba", "z", "zz"};
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = 0; j < words.size(); ++j) {
      EXPECT_EQ(Value(words[i]) < Value(words[j]), words[i] < words[j])
          << words[i] << " vs " << words[j];
      EXPECT_EQ(Value(words[i]) == Value(words[j]), words[i] == words[j]);
    }
  }
}

TEST(InternerTest, CrossKindOrderUnchangedByInterning) {
  // KindRank order: nil < bool < numeric < string < list.
  Value s("m");
  EXPECT_LT(Value(), s);
  EXPECT_LT(Value(true), s);
  EXPECT_LT(Value(int64_t{1} << 60), s);
  EXPECT_LT(Value(1e300), s);
  EXPECT_LT(s, Value(ValueList{}));
}

TEST(InternerTest, InternedStringCountTracksLiveStrings) {
  size_t before = InternedStringCount();
  {
    // A never-before-seen string grows the table by one; ten equal Values still add one.
    std::vector<Value> vals;
    for (int i = 0; i < 10; ++i) {
      vals.emplace_back("interner-count-unique-string");
    }
    EXPECT_EQ(InternedStringCount(), before + 1);
  }
  // After the Values die the entry may stay pinned by the thread-local intern cache (up to
  // 256 recent strings per thread), so the count does not necessarily drop — but it must
  // never exceed one entry for the string.
  EXPECT_LE(InternedStringCount(), before + 1);
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  Tuple c{Value(1), Value("y")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
}

TEST(TupleTest, Project) {
  Tuple t{Value(1), Value(2), Value(3)};
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(3));
  EXPECT_EQ(p[1], Value(1));
}

TEST(TupleTest, LexicographicOrder) {
  Tuple a{Value(1), Value(2)};
  Tuple b{Value(1), Value(3)};
  Tuple c{Value(1)};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(c < a);
  EXPECT_FALSE(a < a);
}

TEST(TupleTest, ToStringQuotesStrings) {
  Tuple t{Value(1), Value("a b")};
  EXPECT_EQ(t.ToString(), "(1, \"a b\")");
}

}  // namespace
}  // namespace boom
