// Integration tests for the file-system layer, parameterized over both NameNode
// implementations: every behaviour must hold for BOOM-FS (Overlog) and the HDFS baseline.

#include <gtest/gtest.h>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/protocol.h"

namespace boom {
namespace {

class FsTest : public ::testing::TestWithParam<FsKind> {
 protected:
  FsTest() : cluster_(12345) {
    FsSetupOptions opts;
    opts.kind = GetParam();
    opts.num_datanodes = 4;
    opts.replication_factor = 3;
    opts.chunk_size = 16;  // small chunks force multi-chunk files in tests
    handles_ = SetupFs(cluster_, opts);
    fs_ = std::make_unique<SyncFs>(cluster_, handles_.client);
    // Let DataNodes register with the NameNode.
    cluster_.RunUntil(1000);
  }

  Cluster cluster_;
  FsHandles handles_;
  std::unique_ptr<SyncFs> fs_;
};

TEST_P(FsTest, MkdirAndExists) {
  EXPECT_FALSE(fs_->Exists("/tmp"));
  EXPECT_TRUE(fs_->Mkdir("/tmp"));
  EXPECT_TRUE(fs_->Exists("/tmp"));
  EXPECT_TRUE(fs_->Exists("/"));
}

TEST_P(FsTest, MkdirFailsWithoutParent) {
  EXPECT_FALSE(fs_->Mkdir("/a/b/c"));
  EXPECT_TRUE(fs_->Mkdir("/a"));
  EXPECT_TRUE(fs_->Mkdir("/a/b"));
  EXPECT_TRUE(fs_->Mkdir("/a/b/c"));
  EXPECT_TRUE(fs_->Exists("/a/b/c"));
}

TEST_P(FsTest, MkdirFailsIfExists) {
  EXPECT_TRUE(fs_->Mkdir("/dup"));
  EXPECT_FALSE(fs_->Mkdir("/dup"));
}

TEST_P(FsTest, CreateRequiresParentDir) {
  EXPECT_FALSE(fs_->CreateFile("/nodir/f"));
  EXPECT_TRUE(fs_->Mkdir("/nodir"));
  EXPECT_TRUE(fs_->CreateFile("/nodir/f"));
  EXPECT_FALSE(fs_->CreateFile("/nodir/f"));  // already exists
}

TEST_P(FsTest, LsListsChildren) {
  ASSERT_TRUE(fs_->Mkdir("/d"));
  ASSERT_TRUE(fs_->CreateFile("/d/one"));
  ASSERT_TRUE(fs_->CreateFile("/d/two"));
  ASSERT_TRUE(fs_->Mkdir("/d/sub"));
  std::vector<std::string> names;
  ASSERT_TRUE(fs_->Ls("/d", &names));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"one", "sub", "two"}));
}

TEST_P(FsTest, LsEmptyDirAndMissingDir) {
  ASSERT_TRUE(fs_->Mkdir("/empty"));
  std::vector<std::string> names{"sentinel"};
  ASSERT_TRUE(fs_->Ls("/empty", &names));
  EXPECT_TRUE(names.empty());
  EXPECT_FALSE(fs_->Ls("/missing", &names));
}

TEST_P(FsTest, RmFileAndEmptyDirOnly) {
  ASSERT_TRUE(fs_->Mkdir("/rmdir"));
  ASSERT_TRUE(fs_->CreateFile("/rmdir/f"));
  EXPECT_FALSE(fs_->Rm("/rmdir"));  // non-empty
  EXPECT_TRUE(fs_->Rm("/rmdir/f"));
  EXPECT_FALSE(fs_->Exists("/rmdir/f"));
  EXPECT_TRUE(fs_->Rm("/rmdir"));
  EXPECT_FALSE(fs_->Exists("/rmdir"));
  EXPECT_FALSE(fs_->Rm("/rmdir"));  // already gone
  EXPECT_FALSE(fs_->Rm("/"));       // root is protected
}

TEST_P(FsTest, WriteAndReadBack) {
  ASSERT_TRUE(fs_->Mkdir("/data"));
  const std::string payload = "The quick brown fox jumps over the lazy dog. 0123456789";
  ASSERT_TRUE(fs_->WriteFile("/data/f.txt", payload));
  std::string read_back;
  ASSERT_TRUE(fs_->ReadFile("/data/f.txt", &read_back));
  EXPECT_EQ(read_back, payload);
}

TEST_P(FsTest, MultiChunkFileRoundTrips) {
  ASSERT_TRUE(fs_->Mkdir("/big"));
  std::string payload;
  for (int i = 0; i < 100; ++i) {
    payload += "chunk piece " + std::to_string(i) + ";";
  }
  ASSERT_TRUE(fs_->WriteFile("/big/blob", payload));
  // chunk_size=16 forces many chunks.
  Value chunks;
  ASSERT_TRUE(fs_->Op(kCmdChunks, "/big/blob", &chunks));
  EXPECT_GT(chunks.as_list().size(), 10u);
  std::string read_back;
  ASSERT_TRUE(fs_->ReadFile("/big/blob", &read_back));
  EXPECT_EQ(read_back, payload);
}

TEST_P(FsTest, ReadMissingFileFails) {
  std::string data;
  EXPECT_FALSE(fs_->ReadFile("/nope", &data));
}

TEST_P(FsTest, ChunksAreReplicated) {
  ASSERT_TRUE(fs_->Mkdir("/r"));
  ASSERT_TRUE(fs_->WriteFile("/r/f", "0123456789abcdef"));  // exactly one chunk
  Value chunks;
  ASSERT_TRUE(fs_->Op(kCmdChunks, "/r/f", &chunks));
  ASSERT_EQ(chunks.as_list().size(), 1u);
  int64_t chunk = chunks.as_list()[0].as_int();
  // All three replicas eventually report the chunk.
  cluster_.RunUntil(cluster_.now() + 3000);
  bool done = false;
  Value locs;
  handles_.client->Locations(cluster_, chunk, [&done, &locs](bool ok, const Value& p) {
    ASSERT_TRUE(ok);
    locs = p;
    done = true;
  });
  cluster_.RunUntil(cluster_.now() + 1000);
  ASSERT_TRUE(done);
  EXPECT_EQ(locs.as_list().size(), 3u);
}

TEST_P(FsTest, ReReplicationAfterDataNodeFailure) {
  ASSERT_TRUE(fs_->Mkdir("/ha"));
  ASSERT_TRUE(fs_->WriteFile("/ha/f", "payload-that-matters"));
  Value chunks;
  ASSERT_TRUE(fs_->Op(kCmdChunks, "/ha/f", &chunks));
  ASSERT_EQ(chunks.as_list().size(), 2u);  // 20 bytes / 16-byte chunks
  cluster_.RunUntil(cluster_.now() + 3000);

  // Kill one datanode that holds the first chunk.
  int64_t chunk = chunks.as_list()[0].as_int();
  bool done = false;
  Value locs;
  handles_.client->Locations(cluster_, chunk, [&](bool ok, const Value& p) {
    ASSERT_TRUE(ok);
    locs = p;
    done = true;
  });
  cluster_.RunUntil(cluster_.now() + 1000);
  ASSERT_TRUE(done);
  ASSERT_GE(locs.as_list().size(), 3u);
  cluster_.KillNode(locs.as_list()[0].as_string());

  // Failure detector + re-replication restores the replication factor on live nodes.
  cluster_.RunUntil(cluster_.now() + 15000);
  done = false;
  Value locs2;
  handles_.client->Locations(cluster_, chunk, [&](bool ok, const Value& p) {
    ASSERT_TRUE(ok);
    locs2 = p;
    done = true;
  });
  cluster_.RunUntil(cluster_.now() + 1000);
  ASSERT_TRUE(done);
  size_t live = 0;
  for (const Value& dn : locs2.as_list()) {
    if (cluster_.IsAlive(dn.as_string())) {
      ++live;
    }
  }
  EXPECT_GE(live, 3u);
  // The data is still readable.
  std::string data;
  ASSERT_TRUE(fs_->ReadFile("/ha/f", &data));
  EXPECT_EQ(data, "payload-that-matters");
}

TEST_P(FsTest, DeepDirectoryTree) {
  std::string path;
  for (int depth = 0; depth < 12; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs_->Mkdir(path)) << path;
  }
  EXPECT_TRUE(fs_->Exists(path));
  ASSERT_TRUE(fs_->CreateFile(path + "/leaf"));
  EXPECT_TRUE(fs_->Exists(path + "/leaf"));
}

TEST_P(FsTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/many"));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs_->CreateFile("/many/f" + std::to_string(i)));
  }
  std::vector<std::string> names;
  ASSERT_TRUE(fs_->Ls("/many", &names));
  EXPECT_EQ(names.size(), 50u);
}

TEST_P(FsTest, RecreateAfterRm) {
  ASSERT_TRUE(fs_->Mkdir("/cycle"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fs_->WriteFile("/cycle/f", "gen" + std::to_string(i)));
    std::string data;
    ASSERT_TRUE(fs_->ReadFile("/cycle/f", &data));
    EXPECT_EQ(data, "gen" + std::to_string(i));
    ASSERT_TRUE(fs_->Rm("/cycle/f"));
  }
}


TEST_P(FsTest, RmGarbageCollectsChunksOnDataNodes) {
  ASSERT_TRUE(fs_->Mkdir("/gc"));
  std::string payload(200, 'x');
  ASSERT_TRUE(fs_->WriteFile("/gc/big", payload));
  cluster_.RunUntil(cluster_.now() + 3000);  // replication settles

  auto stored_bytes = [this] {
    size_t total = 0;
    for (const std::string& dn : handles_.datanodes) {
      total += static_cast<DataNode*>(cluster_.actor(dn))->stored_bytes();
    }
    return total;
  };
  EXPECT_GE(stored_bytes(), payload.size());  // at least one full copy stored

  ASSERT_TRUE(fs_->Rm("/gc/big"));
  cluster_.RunUntil(cluster_.now() + 3000);  // GC commands propagate
  EXPECT_EQ(stored_bytes(), 0u) << "chunks leaked on datanodes after rm";
}

INSTANTIATE_TEST_SUITE_P(BothFileSystems, FsTest,
                         ::testing::Values(FsKind::kBoomFs, FsKind::kHdfsBaseline),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           return info.param == FsKind::kBoomFs ? "BoomFs" : "HdfsBaseline";
                         });

// Data-plane robustness tests that need custom cluster shapes (so not the FsTest fixture).
class FsRobustnessTest : public ::testing::TestWithParam<FsKind> {
 protected:
  // Fetches a chunk's locations synchronously; fails the test on error.
  static std::vector<std::string> LocationsOf(Cluster& cluster, FsClient* client,
                                              int64_t chunk) {
    bool done = false;
    Value locs;
    client->Locations(cluster, chunk, [&](bool ok, const Value& p) {
      EXPECT_TRUE(ok) << "locations of chunk " << chunk;
      locs = p;
      done = true;
    });
    cluster.RunUntil(cluster.now() + 1000);
    EXPECT_TRUE(done);
    std::vector<std::string> out;
    if (locs.is_list()) {
      for (const Value& dn : locs.as_list()) {
        out.push_back(dn.as_string());
      }
    }
    return out;
  }
};

// A write whose pipeline contains a freshly crashed DataNode still completes (the client
// falls back to fanning out individual chunk writes after the pipeline ack times out), and
// the cluster converges back to full replication from incremental chunk reports alone —
// full block reports are disabled, so recovery cannot lean on them.
TEST_P(FsRobustnessTest, PipelineWriteSurvivesMidPipelineCrash) {
  Cluster cluster(777);
  FsSetupOptions opts;
  opts.kind = GetParam();
  opts.num_datanodes = 3;  // replication 3 of 3: every pipeline is all three DataNodes
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  opts.full_report_every = 0;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);
  cluster.RunUntil(1000);

  ASSERT_TRUE(fs.Mkdir("/p"));
  // Kill the middle pipeline member right before the write: the NameNode has not noticed
  // yet, so the pipeline it hands out includes the corpse.
  cluster.KillNode(handles.datanodes[1]);
  const std::string payload = "pipeline payload that spans several 16-byte chunks!";
  ASSERT_TRUE(fs.WriteFile("/p/f", payload));

  cluster.RestartNode(handles.datanodes[1], /*fresh_state=*/false);
  cluster.RunUntil(cluster.now() + 15000);  // failure detector + re-replication

  Value chunks;
  ASSERT_TRUE(fs.Op(kCmdChunks, "/p/f", &chunks));
  ASSERT_GE(chunks.as_list().size(), 3u);
  for (const Value& c : chunks.as_list()) {
    std::vector<std::string> locs = LocationsOf(cluster, handles.client, c.as_int());
    size_t live = 0;
    for (const std::string& dn : locs) {
      if (cluster.IsAlive(dn)) {
        ++live;
      }
    }
    EXPECT_EQ(live, 3u) << "chunk " << c.as_int() << " not fully re-replicated";
  }
  std::string got;
  ASSERT_TRUE(fs.ReadFile("/p/f", &got));
  EXPECT_EQ(got, payload);
}

// With exactly one corrupt replica per chunk the read still returns the exact bytes: the
// serving DataNode catches the checksum mismatch, quarantines the replica, and the client
// fails over to a healthy copy. Re-replication then heals back to full strength.
TEST_P(FsRobustnessTest, ReadWithOneCorruptReplicaPerChunk) {
  Cluster cluster(4242);
  FsSetupOptions opts;
  opts.kind = GetParam();
  opts.num_datanodes = 4;
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);
  cluster.RunUntil(1000);

  ASSERT_TRUE(fs.Mkdir("/c"));
  std::string payload;
  for (int i = 0; i < 8; ++i) {
    payload += "block " + std::to_string(i) + " data;";
  }
  ASSERT_TRUE(fs.WriteFile("/c/f", payload));
  cluster.RunUntil(cluster.now() + 3000);  // replication settles

  // Corrupt the replica the client will try first (the first listed location) of every
  // chunk, so the read must hit the rot and fail over.
  Value chunks;
  ASSERT_TRUE(fs.Op(kCmdChunks, "/c/f", &chunks));
  ASSERT_GT(chunks.as_list().size(), 1u);
  std::vector<std::pair<std::string, int64_t>> corrupted;
  for (const Value& c : chunks.as_list()) {
    int64_t chunk = c.as_int();
    std::vector<std::string> locs = LocationsOf(cluster, handles.client, chunk);
    ASSERT_GE(locs.size(), 3u);
    auto* node = dynamic_cast<DataNode*>(cluster.actor(locs[0]));
    ASSERT_NE(node, nullptr);
    ASSERT_TRUE(node->CorruptStoredChunk(chunk));
    corrupted.push_back({locs[0], chunk});
  }

  std::string got;
  ASSERT_TRUE(fs.ReadFile("/c/f", &got));
  EXPECT_EQ(got, payload);
  for (const auto& [dn, chunk] : corrupted) {
    EXPECT_TRUE(dynamic_cast<DataNode*>(cluster.actor(dn))->IsQuarantined(chunk))
        << dn << " served chunk " << chunk << " without quarantining it";
  }

  // dn_corrupt retracted the bad locations; re-replication restores them from good copies.
  cluster.RunUntil(cluster.now() + 15000);
  std::string again;
  ASSERT_TRUE(fs.ReadFile("/c/f", &again));
  EXPECT_EQ(again, payload);
}

INSTANTIATE_TEST_SUITE_P(BothFileSystems, FsRobustnessTest,
                         ::testing::Values(FsKind::kBoomFs, FsKind::kHdfsBaseline),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           return info.param == FsKind::kBoomFs ? "BoomFs" : "HdfsBaseline";
                         });

}  // namespace
}  // namespace boom
