#include <gtest/gtest.h>

#include <random>

#include "src/overlog/catalog.h"
#include "src/overlog/table.h"

namespace boom {
namespace {

TableDef KeyedDef() {
  TableDef def;
  def.name = "file";
  def.columns = {"FileId", "ParentId", "Name"};
  def.key_columns = {0};
  return def;
}

TableDef SetDef() {
  TableDef def;
  def.name = "link";
  def.columns = {"From", "To"};
  return def;
}

TEST(TableTest, InsertAndLookupByKey) {
  Table t(KeyedDef());
  EXPECT_EQ(t.Insert(Tuple{Value(1), Value(0), Value("a")}), Table::InsertOutcome::kInserted);
  const Tuple* row = t.LookupByKey(Tuple{Value(1)});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[2], Value("a"));
}

TEST(TableTest, PrimaryKeyReplaces) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_EQ(t.Insert(Tuple{Value(1), Value(0), Value("b")}), Table::InsertOutcome::kReplaced);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ((*t.LookupByKey(Tuple{Value(1)}))[2], Value("b"));
}

TEST(TableTest, DuplicateInsertUnchanged) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_EQ(t.Insert(Tuple{Value(1), Value(0), Value("a")}), Table::InsertOutcome::kUnchanged);
}

TEST(TableTest, SetSemanticsWhenNoKeys) {
  Table t(SetDef());
  t.Insert(Tuple{Value(1), Value(2)});
  t.Insert(Tuple{Value(1), Value(3)});
  EXPECT_EQ(t.Insert(Tuple{Value(1), Value(2)}), Table::InsertOutcome::kUnchanged);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TableTest, EraseExactTupleOnly) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_FALSE(t.Erase(Tuple{Value(1), Value(0), Value("zzz")}));
  EXPECT_TRUE(t.Erase(Tuple{Value(1), Value(0), Value("a")}));
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, EraseByKey) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_TRUE(t.EraseByKey(Tuple{Value(1)}));
  EXPECT_FALSE(t.EraseByKey(Tuple{Value(1)}));
}

TEST(TableTest, ProbeSecondaryIndex) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  t.Insert(Tuple{Value(2), Value(0), Value("b")});
  t.Insert(Tuple{Value(3), Value(9), Value("c")});
  const auto& rows = t.Probe({1}, Tuple{Value(0)});
  EXPECT_EQ(rows.size(), 2u);
  const auto& none = t.Probe({1}, Tuple{Value(42)});
  EXPECT_TRUE(none.empty());
}

TEST(TableTest, ProbeIndexRefreshesAfterMutation) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_EQ(t.Probe({1}, Tuple{Value(0)}).size(), 1u);
  t.Insert(Tuple{Value(2), Value(0), Value("b")});
  EXPECT_EQ(t.Probe({1}, Tuple{Value(0)}).size(), 2u);
  t.EraseByKey(Tuple{Value(1)});
  EXPECT_EQ(t.Probe({1}, Tuple{Value(0)}).size(), 1u);
}

TEST(TableTest, ProbeGenerationAdvancesOnMutation) {
  Table t(KeyedDef());
  uint64_t g0 = t.probe_generation();
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  uint64_t g1 = t.probe_generation();
  EXPECT_NE(g0, g1);
  t.AssertProbeFresh(g1);  // no mutation since capture: fine
  // Unchanged re-insert of the identical row is a no-op and must NOT invalidate probes.
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_EQ(t.probe_generation(), g1);
  t.AssertProbeFresh(g1);
}

TEST(TableDeathTest, StaleProbeAfterEraseAborts) {
  // Probe results are pointers into the table; using them after an erase is a use-after-free
  // in the making. AssertProbeFresh turns that into a deterministic abort.
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  t.Insert(Tuple{Value(2), Value(0), Value("b")});
  const auto& rows = t.Probe({1}, Tuple{Value(0)});
  ASSERT_EQ(rows.size(), 2u);
  uint64_t gen = t.probe_generation();
  t.EraseByKey(Tuple{Value(1)});
  EXPECT_DEATH(t.AssertProbeFresh(gen), "stale Table::Probe result");
}

TEST(TableDeathTest, StaleProbeAfterReplaceAborts) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  uint64_t gen = t.probe_generation();
  t.Insert(Tuple{Value(1), Value(0), Value("b")});  // key replace mutates the row
  EXPECT_DEATH(t.AssertProbeFresh(gen), "stale Table::Probe result");
}

TEST(TableTest, EmptyProbeColsReturnsAllRows) {
  Table t(SetDef());
  t.Insert(Tuple{Value(1), Value(2)});
  t.Insert(Tuple{Value(3), Value(4)});
  EXPECT_EQ(t.Probe({}, Tuple{}).size(), 2u);
}

TEST(TableTest, ContainsChecksFullRow) {
  Table t(KeyedDef());
  t.Insert(Tuple{Value(1), Value(0), Value("a")});
  EXPECT_TRUE(t.Contains(Tuple{Value(1), Value(0), Value("a")}));
  EXPECT_FALSE(t.Contains(Tuple{Value(1), Value(0), Value("x")}));
}


// Regression sweep for incremental index maintenance: interleaved inserts, replacements,
// erases, and probes must always match a brute-force scan.
class IndexMaintenanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexMaintenanceProperty, ProbeAlwaysMatchesScan) {
  std::mt19937_64 gen(GetParam());
  std::uniform_int_distribution<int> key(0, 40);
  std::uniform_int_distribution<int> group(0, 5);
  std::uniform_int_distribution<int> op(0, 9);

  Table t(KeyedDef());  // file(FileId keys(0), ParentId, Name)
  for (int step = 0; step < 500; ++step) {
    int action = op(gen);
    if (action < 6) {
      // Insert or replace.
      t.Insert(Tuple{Value(key(gen)), Value(group(gen)),
                     Value("n" + std::to_string(step))});
    } else if (action < 8) {
      t.EraseByKey(Tuple{Value(key(gen))});
    } else {
      // Probe on the non-key column and cross-check against a full scan.
      int g = group(gen);
      const auto& via_index = t.Probe({1}, Tuple{Value(g)});
      size_t scan_count = 0;
      t.ForEach([&scan_count, g](const Tuple& row) {
        if (row[1] == Value(g)) {
          ++scan_count;
        }
      });
      ASSERT_EQ(via_index.size(), scan_count) << "step " << step << " group " << g;
      for (const Tuple* row : via_index) {
        ASSERT_EQ((*row)[1], Value(g));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexMaintenanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

TEST(TableTest, ProbeSurvivesRehash) {
  // Growing the unordered_map must not invalidate cached index pointers between probes.
  Table t(KeyedDef());
  t.Insert(Tuple{Value(0), Value(0), Value("x")});
  EXPECT_EQ(t.Probe({1}, Tuple{Value(0)}).size(), 1u);
  for (int i = 1; i < 2000; ++i) {
    t.Insert(Tuple{Value(i), Value(i % 7), Value("x")});
  }
  const auto& rows = t.Probe({1}, Tuple{Value(0)});
  size_t expected = 0;
  t.ForEach([&expected](const Tuple& row) {
    if (row[1] == Value(0)) {
      ++expected;
    }
  });
  EXPECT_EQ(rows.size(), expected);
  for (const Tuple* row : rows) {
    EXPECT_EQ((*row)[1], Value(0));  // pointers still valid
  }
}

TEST(CatalogTest, DeclareAndFind) {
  Catalog c;
  ASSERT_TRUE(c.Declare(KeyedDef()).ok());
  EXPECT_TRUE(c.Has("file"));
  EXPECT_NE(c.Find("file"), nullptr);
  EXPECT_EQ(c.Find("nope"), nullptr);
}

TEST(CatalogTest, IdenticalRedeclareIsNoop) {
  Catalog c;
  ASSERT_TRUE(c.Declare(KeyedDef()).ok());
  EXPECT_TRUE(c.Declare(KeyedDef()).ok());
}

TEST(CatalogTest, ConflictingRedeclareFails) {
  Catalog c;
  ASSERT_TRUE(c.Declare(KeyedDef()).ok());
  TableDef other = KeyedDef();
  other.columns.push_back("Extra");
  EXPECT_FALSE(c.Declare(other).ok());
}

TEST(CatalogTest, ClearEventsOnlyClearsEvents) {
  Catalog c;
  TableDef ev;
  ev.name = "req";
  ev.columns = {"X"};
  ev.kind = TableKind::kEvent;
  ASSERT_TRUE(c.Declare(ev).ok());
  ASSERT_TRUE(c.Declare(KeyedDef()).ok());
  c.Get("req").Insert(Tuple{Value(1)});
  c.Get("file").Insert(Tuple{Value(1), Value(0), Value("a")});
  c.ClearEvents();
  EXPECT_EQ(c.Get("req").size(), 0u);
  EXPECT_EQ(c.Get("file").size(), 1u);
}

}  // namespace
}  // namespace boom
