#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"

namespace boom {
namespace {

// A native actor that records the messages it receives.
class Recorder : public Actor {
 public:
  explicit Recorder(std::string address) : Actor(std::move(address)) {}
  void OnMessage(const Message& msg, Cluster& cluster) override {
    received.push_back(msg);
    times.push_back(cluster.now());
  }
  std::vector<Message> received;
  std::vector<double> times;
};

// An actor that echoes every message back to its sender.
class Echo : public Actor {
 public:
  explicit Echo(std::string address) : Actor(std::move(address)) {}
  void OnMessage(const Message& msg, Cluster& cluster) override {
    cluster.Send(address(), msg.from, "echo", msg.tuple);
  }
};

TEST(ClusterTest, ScheduledEventsRunInOrder) {
  Cluster c(1);
  std::vector<int> order;
  c.ScheduleAt(10, [&order] { order.push_back(2); });
  c.ScheduleAt(5, [&order] { order.push_back(1); });
  c.ScheduleAt(10, [&order] { order.push_back(3); });  // FIFO at equal times
  c.RunUntil(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(c.now(), 20);
}

TEST(ClusterTest, ActorToActorMessage) {
  Cluster c(1);
  auto recorder = std::make_unique<Recorder>("sink");
  Recorder* sink = recorder.get();
  c.AddActor(std::move(recorder));
  c.AddActor(std::make_unique<Echo>("echo"));
  c.ScheduleAt(0, [&c] { c.Send("sink", "echo", "hello", Tuple{Value(1)}); });
  c.RunUntil(100);
  ASSERT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(sink->received[0].table, "echo");
  EXPECT_GT(sink->times[0], 0);  // two network hops of latency
}

TEST(ClusterTest, DeterministicUnderSameSeed) {
  auto run = [](uint64_t seed) {
    Cluster c(seed);
    auto recorder = std::make_unique<Recorder>("sink");
    Recorder* sink = recorder.get();
    c.AddActor(std::move(recorder));
    c.AddActor(std::make_unique<Echo>("echo"));
    for (int i = 0; i < 10; ++i) {
      c.ScheduleAt(i, [&c, i] { c.Send("sink", "echo", "m", Tuple{Value(i)}); });
    }
    c.RunUntil(1000);
    return sink->times;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(ClusterTest, KilledNodeDropsMessages) {
  Cluster c(1);
  auto recorder = std::make_unique<Recorder>("sink");
  Recorder* sink = recorder.get();
  c.AddActor(std::move(recorder));
  c.AddActor(std::make_unique<Echo>("echo"));
  c.ScheduleAt(0, [&c] { c.Send("echo", "sink", "m", Tuple{Value(1)}); });
  c.ScheduleAt(10, [&c] {
    c.KillNode("sink");
    c.Send("echo", "sink", "m", Tuple{Value(2)});
  });
  c.RunUntil(100);
  EXPECT_EQ(sink->received.size(), 1u);
  EXPECT_EQ(c.net_stats().dropped_dead, 1u);
}

TEST(ClusterTest, RestartRevivesActor) {
  Cluster c(1);
  auto recorder = std::make_unique<Recorder>("sink");
  Recorder* sink = recorder.get();
  c.AddActor(std::move(recorder));
  c.AddActor(std::make_unique<Echo>("echo"));
  c.ScheduleAt(10, [&c] { c.KillNode("sink"); });
  c.ScheduleAt(20, [&c] { c.RestartNode("sink"); });
  c.ScheduleAt(30, [&c] { c.Send("echo", "sink", "m", Tuple{Value(1)}); });
  c.RunUntil(100);
  EXPECT_EQ(sink->received.size(), 1u);
}

TEST(ClusterTest, BlockedLinkDropsBothDirections) {
  Cluster c(1);
  auto recorder = std::make_unique<Recorder>("sink");
  Recorder* sink = recorder.get();
  c.AddActor(std::move(recorder));
  c.AddActor(std::make_unique<Echo>("echo"));
  c.BlockLink("echo", "sink");
  c.ScheduleAt(0, [&c] { c.Send("echo", "sink", "m", Tuple{Value(1)}); });
  c.ScheduleAt(1, [&c] { c.Send("sink", "echo", "m", Tuple{Value(2)}); });
  c.RunUntil(100);
  EXPECT_EQ(sink->received.size(), 0u);
  EXPECT_EQ(c.net_stats().dropped_partition, 2u);
  c.UnblockLink("sink", "echo");
  c.Send("echo", "sink", "m", Tuple{Value(3)});
  c.RunUntil(200);
  EXPECT_EQ(sink->received.size(), 1u);
}

TEST(ClusterTest, OverlogNodesExchangeMessages) {
  Cluster c(7);
  c.AddOverlogNode("n1", [](Engine& e) {
    Status s = e.InstallSource(R"(
      program pingpong;
      event ping(Addr, From);
      event pong(Addr, From);
      table got_pong(From);
      pong(@From, Me) :- ping(@Me, From);
      got_pong(F) :- pong(_, F);
    )");
    ASSERT_TRUE(s.ok()) << s.ToString();
  });
  c.AddOverlogNode("n2", [](Engine& e) {
    Status s = e.InstallSource(R"(
      program pingpong;
      event ping(Addr, From);
      event pong(Addr, From);
      table got_pong(From);
      pong(@From, Me) :- ping(@Me, From);
      got_pong(F) :- pong(_, F);
    )");
    ASSERT_TRUE(s.ok()) << s.ToString();
  });
  c.ScheduleAt(0, [&c] {
    c.Send("n2", "n1", "ping", Tuple{Value("n1"), Value("n2")});
  });
  c.RunUntil(100);
  const Table& got = c.engine("n2")->catalog().Get("got_pong");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got.Contains(Tuple{Value("n1")}));
}

TEST(ClusterTest, OverlogTimerDrivesTicks) {
  Cluster c(7);
  c.AddOverlogNode("n1", [](Engine& e) {
    Status s = e.InstallSource(R"(
      program t;
      timer hb(50);
      table beats(T) keys(0);
      table beat_count(K, N) keys(0);
      beats(T) :- hb(_), T := f_now();
      beat_count(1, count<T>) :- beats(T);
    )");
    ASSERT_TRUE(s.ok()) << s.ToString();
  });
  c.RunUntil(500);
  const Table& beats = c.engine("n1")->catalog().Get("beats");
  // Timer fires at 50, 100, ..., 500 => 10 distinct timestamps.
  EXPECT_EQ(beats.size(), 10u);
}

TEST(ClusterTest, FreshRestartWipesOverlogState) {
  auto init = [](Engine& e) {
    Status s = e.InstallSource(R"(
      program t;
      table log(X);
    )");
    ASSERT_TRUE(s.ok()) << s.ToString();
  };
  Cluster c(7);
  c.AddOverlogNode("n1", init);
  c.ScheduleAt(0, [&c] { c.Send("n1", "n1", "log", Tuple{Value(1)}); });
  c.RunUntil(10);
  EXPECT_EQ(c.engine("n1")->catalog().Get("log").size(), 1u);
  c.KillNode("n1");
  c.RestartNode("n1", /*fresh_state=*/true);
  EXPECT_EQ(c.engine("n1")->catalog().Get("log").size(), 0u);
}

TEST(ClusterTest, ServiceTimeSerializesRequests) {
  Cluster c(1);
  c.set_latency(LatencyModel{0, 0});
  auto recorder = std::make_unique<Recorder>("server");
  Recorder* server = recorder.get();
  c.AddActor(std::move(recorder));
  c.AddActor(std::make_unique<Echo>("client"));
  c.SetServiceTime("server", [](const Message&) { return 10.0; });
  c.ScheduleAt(0, [&c] {
    for (int i = 0; i < 5; ++i) {
      c.Send("client", "server", "req", Tuple{Value(i)});
    }
  });
  c.RunUntil(1000);
  ASSERT_EQ(server->times.size(), 5u);
  // Serial 10ms service: completions at 10, 20, 30, 40, 50.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(server->times[i], 10.0 * static_cast<double>(i + 1));
  }
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    double x = a.Uniform(2, 3);
    EXPECT_EQ(x, b.Uniform(2, 3));
    EXPECT_GE(x, 2);
    EXPECT_LT(x, 3);
  }
}

TEST(RngTest, SampleDistinct) {
  Rng r(5);
  std::vector<size_t> s = r.Sample(10, 4);
  ASSERT_EQ(s.size(), 4u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  EXPECT_EQ(r.Sample(3, 10).size(), 3u);
}

TEST(RngTest, LogNormalMedianRoughlyCorrect) {
  Rng r(5);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(r.LogNormal(100, 0.5));
  }
  double med = Percentile(xs, 50);
  EXPECT_NEAR(med, 100, 10);
}

TEST(StatsTest, Percentiles) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 10);
  EXPECT_NEAR(Percentile(xs, 50), 5.5, 1e-9);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
}

TEST(StatsTest, CdfMonotone) {
  auto cdf = Cdf({3, 1, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
  EXPECT_LT(cdf[0].second, cdf[1].second);
}

TEST(StatsTest, Summarize) {
  Summary s = Summarize({1, 2, 3, 4});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 4);
}

}  // namespace
}  // namespace boom
