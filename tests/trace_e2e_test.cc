// End-to-end causal tracing through the simulator: one BOOM-FS client write must yield a
// single trace whose spans cover the client, the NameNode, and every DataNode in the
// replication pipeline, causally linked — and two runs of the same seed must produce
// byte-identical trace text.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/boomfs/boomfs.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_query.h"

namespace boom {
namespace {

struct TracedWrite {
  Tracer tracer{0};
  std::string namenode;
  std::string client;  // address only; the cluster (and its actors) die with the ctor
  std::vector<std::string> datanodes;
  bool write_ok = false;
  bool read_ok = false;

  explicit TracedWrite(uint64_t seed) : tracer(seed) {
    Cluster cluster(seed);
    cluster.set_tracer(&tracer);
    FsSetupOptions opts;
    FsHandles handles = SetupFs(cluster, opts);
    namenode = handles.namenode;
    client = handles.client->address();
    datanodes = handles.datanodes;
    cluster.RunUntil(2000);  // heartbeats registered, safe mode exited
    SyncFs fs(cluster, handles.client);
    std::string payload(10 * 1024, 'x');  // one chunk -> one full pipeline
    write_ok = fs.WriteFile("/traced", payload);
    std::string back;
    read_ok = fs.ReadFile("/traced", &back) && back == payload;
    cluster.RunUntil(cluster.now() + 1000);  // drain pipeline acks and reports
  }
};

const SpanRecord* FindRoot(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& s : spans) {
    if (s.parent_id == 0 && s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

TEST(TraceE2E, SingleWriteTraceCoversClientNameNodeAndPipeline) {
  TracedWrite run(11);
  ASSERT_TRUE(run.write_ok);

  const SpanRecord* root = FindRoot(run.tracer.spans(), "fs.write");
  ASSERT_NE(root, nullptr);

  // Collect the write trace and check causal linkage: every span's parent is either the
  // synthetic root (0) or another span of the same trace.
  std::set<uint64_t> ids;
  std::set<std::string> dn_write_nodes;
  bool saw_nn = false;
  for (const SpanRecord& s : run.tracer.spans()) {
    if (s.trace_id != root->trace_id) {
      continue;
    }
    ids.insert(s.span_id);
    if (s.node == run.namenode) {
      saw_nn = true;
    }
    if (s.name == "dn_write") {
      dn_write_nodes.insert(s.node);
    }
  }
  for (const SpanRecord& s : run.tracer.spans()) {
    if (s.trace_id == root->trace_id && s.parent_id != 0) {
      EXPECT_TRUE(ids.count(s.parent_id)) << "orphan span " << s.name << "@" << s.node;
    }
  }

  EXPECT_EQ(root->node, run.client);
  EXPECT_TRUE(saw_nn) << "no NameNode span in the write trace";
  // Replication factor 3: the pipeline must touch every DataNode.
  for (const std::string& dn : run.datanodes) {
    EXPECT_TRUE(dn_write_nodes.count(dn)) << "no dn_write span on " << dn;
  }

  // The critical path starts at the client root and reaches a DataNode.
  std::vector<const SpanRecord*> path = CriticalPath(run.tracer.spans(), root->trace_id);
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path.front()->name, "fs.write");
}

TEST(TraceE2E, ReadTraceIsSeparateFromWriteTrace) {
  TracedWrite run(12);
  ASSERT_TRUE(run.read_ok);
  const SpanRecord* write_root = FindRoot(run.tracer.spans(), "fs.write");
  const SpanRecord* read_root = FindRoot(run.tracer.spans(), "fs.read");
  ASSERT_NE(write_root, nullptr);
  ASSERT_NE(read_root, nullptr);
  EXPECT_NE(write_root->trace_id, read_root->trace_id);
}

TEST(TraceE2E, SameSeedSameTraceText) {
  TracedWrite a(33), b(33), c(34);
  EXPECT_EQ(a.tracer.ToText(), b.tracer.ToText());
  EXPECT_NE(a.tracer.ToText(), c.tracer.ToText());
}

TEST(TraceE2E, AttachingTracerDoesNotPerturbMetricsOrOutcome) {
  // A traced and an untraced run of the same seed must agree on everything observable:
  // the tracer never samples the cluster Rng and never schedules events.
  MetricsRegistry& registry = MetricsRegistry::Global();

  auto run = [&registry](bool traced, uint64_t seed) {
    registry.Reset();
    Cluster cluster(seed);
    Tracer tracer(seed);
    if (traced) {
      cluster.set_tracer(&tracer);
    }
    FsSetupOptions opts;
    FsHandles handles = SetupFs(cluster, opts);
    cluster.RunUntil(2000);
    SyncFs fs(cluster, handles.client);
    EXPECT_TRUE(fs.WriteFile("/same", std::string(4096, 'y')));
    cluster.RunUntil(cluster.now() + 1000);
    return registry.ToText() + "|end=" + std::to_string(cluster.now());
  };
  EXPECT_EQ(run(false, 21), run(true, 21));
}

TEST(TraceE2E, WriteIncrementsClientMetrics) {
  MetricsRegistry::Global().Reset();
  TracedWrite run(44);
  ASSERT_TRUE(run.write_ok);
  EXPECT_GE(MetricsRegistry::Global().counter("fs.client.write_ok").value(), 1u);
  EXPECT_GE(MetricsRegistry::Global().counter("fs.client.ns_request").value(), 1u);
  EXPECT_GE(MetricsRegistry::Global().histogram("fs.client.write_ms").count(), 1u);
  EXPECT_GE(MetricsRegistry::Global().counter("fs.nn.ns_request").value(), 1u);
  EXPECT_GE(MetricsRegistry::Global().counter("fs.dn.chunk_store").value(), 3u);
}

}  // namespace
}  // namespace boom
