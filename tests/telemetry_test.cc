// Unit tests for src/telemetry: the metrics registry, the span tracer, and the trace
// query/rendering helpers. End-to-end tracing through the simulator is in
// trace_e2e_test.cc.

#include <gtest/gtest.h>

#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_query.h"

namespace boom {
namespace {

TEST(Metrics, CounterGaugeHistogram) {
  MetricsRegistry registry;
  registry.counter("test.hits").Add();
  registry.counter("test.hits").Add(4);
  EXPECT_EQ(registry.counter("test.hits").value(), 5u);

  registry.gauge("test.depth").Set(7.5);
  EXPECT_DOUBLE_EQ(registry.gauge("test.depth").value(), 7.5);

  Histogram& h = registry.histogram("test.lat_ms");
  for (int i = 1; i <= 100; ++i) {
    h.Observe(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Approximate quantiles: within the containing decade bucket.
  EXPECT_GT(h.Quantile(0.5), 20.0);
  EXPECT_LT(h.Quantile(0.5), 100.0);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.5));
}

TEST(Metrics, HandleIsStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same.name");
  Counter& b = registry.counter("same.name");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, SnapshotElidesZeroActivity) {
  MetricsRegistry registry;
  registry.counter("used").Add();
  registry.counter("unused");  // registered but never incremented
  std::vector<MetricRow> rows = registry.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "used");
  EXPECT_DOUBLE_EQ(rows[0].value, 1.0);
}

TEST(Metrics, TextAndJsonExport) {
  MetricsRegistry registry;
  registry.counter("fs.ops").Add(3);
  registry.histogram("fs.lat_ms").Observe(2.0);
  std::string text = registry.ToText();
  EXPECT_NE(text.find("fs.ops"), std::string::npos);
  EXPECT_NE(text.find("fs.lat_ms"), std::string::npos);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"fs.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"fs.lat_ms\""), std::string::npos);
}

TEST(Metrics, ResetZeroesEverything) {
  MetricsRegistry registry;
  registry.counter("c").Add(9);
  registry.histogram("h").Observe(1.0);
  registry.Reset();
  EXPECT_EQ(registry.counter("c").value(), 0u);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(Tracer, IdsAreSeedDeterministic) {
  Tracer a(42), b(42), c(43);
  SpanContext ra = a.StartSpan("op", "n0", 0);
  SpanContext rb = b.StartSpan("op", "n0", 0);
  SpanContext rc = c.StartSpan("op", "n0", 0);
  EXPECT_EQ(ra.trace_id, rb.trace_id);
  EXPECT_EQ(ra.span_id, rb.span_id);
  EXPECT_NE(ra.span_id, rc.span_id);
}

TEST(Tracer, ChildInheritsTraceAndRecordsParent) {
  Tracer t(1);
  SpanContext root = t.StartSpan("root", "n0", 0);
  SpanContext child = t.StartSpan("child", "n1", 1, root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[1].parent_id, root.span_id);
  // An invalid parent mints a fresh trace.
  SpanContext other = t.StartSpan("other", "n2", 2);
  EXPECT_NE(other.trace_id, root.trace_id);
}

TEST(Tracer, EndSpanIsIdempotent) {
  Tracer t(1);
  SpanContext ctx = t.StartSpan("op", "n0", 0);
  t.EndSpan(ctx, 5);
  t.EndSpan(ctx, 9);  // a duplicated delivery must not stretch the span
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_TRUE(t.spans()[0].ended);
  EXPECT_DOUBLE_EQ(t.spans()[0].end_ms, 5.0);
}

TEST(Tracer, CapCountsDroppedSpans) {
  Tracer t(1, /*max_spans=*/2);
  t.StartSpan("a", "n", 0);
  t.StartSpan("b", "n", 0);
  t.StartSpan("c", "n", 0);
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(Tracer, TextExportIsDeterministic) {
  auto run = [] {
    Tracer t(7);
    SpanContext root = t.StartSpan("fs.write", "client", 10);
    SpanContext hop = t.StartSpan("ns_request", "nn", 10, root);
    t.AddAttr(hop, "path", "/a");
    t.EndSpan(hop, 12);
    t.EndSpan(root, 15);
    return t.ToText();
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("fs.write@client"), std::string::npos);
  EXPECT_NE(first.find("path=/a"), std::string::npos);
}

// Two traces: a root with two children (one ending later), and a separate later root.
struct QueryFixture {
  Tracer t{5};
  SpanContext root, fast, slow, leaf, other;

  QueryFixture() {
    root = t.StartSpan("write", "client", 0);
    fast = t.StartSpan("fast", "n1", 1, root);
    slow = t.StartSpan("slow", "n2", 1, root);
    leaf = t.StartSpan("leaf", "n3", 4, slow);
    t.EndSpan(fast, 2);
    t.EndSpan(leaf, 9);
    t.EndSpan(slow, 10);
    t.EndSpan(root, 10);
    other = t.StartSpan("read", "client", 20);
    t.EndSpan(other, 21);
  }
};

TEST(TraceQuery, SummariesOrderedByStart) {
  QueryFixture f;
  std::vector<TraceSummary> summaries = SummarizeTraces(f.t.spans());
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].root_name, "write");
  EXPECT_EQ(summaries[0].span_count, 4u);
  EXPECT_DOUBLE_EQ(summaries[0].end_ms, 10.0);
  EXPECT_EQ(summaries[1].root_name, "read");
}

TEST(TraceQuery, CriticalPathFollowsLatestChild) {
  QueryFixture f;
  std::vector<const SpanRecord*> path = CriticalPath(f.t.spans(), f.root.trace_id);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0]->name, "write");
  EXPECT_EQ(path[1]->name, "slow");  // ends at 10, beats "fast" at 2
  EXPECT_EQ(path[2]->name, "leaf");
}

TEST(TraceQuery, TreeRenderAndTruncation) {
  QueryFixture f;
  std::string tree = RenderTraceTree(f.t.spans(), f.root.trace_id);
  EXPECT_NE(tree.find("write@client"), std::string::npos);
  EXPECT_NE(tree.find("leaf@n3"), std::string::npos);
  std::string cut = RenderTraceTree(f.t.spans(), f.root.trace_id, "", /*max_lines=*/2);
  EXPECT_NE(cut.find("more spans"), std::string::npos);
}

TEST(TraceQuery, TimelineGroupsRoots) {
  QueryFixture f;
  std::string timeline = RenderTimeline(f.t.spans());
  EXPECT_NE(timeline.find("write x1"), std::string::npos);
  EXPECT_NE(timeline.find("read x1"), std::string::npos);
}

}  // namespace
}  // namespace boom
