// Parallel execution determinism tests: the multi-core paths (cluster tick batching,
// intra-fixpoint rule parallelism, atomic tuple refcounts, the sharded interner) must be
// bit-identical to serial execution. A parallel run that differs from serial by one byte
// of trace or one derivation is a bug, full stop — reproducibility-from-seed is the
// architecture's core invariant and speed never gets to trade against it.
//
// This suite is also the TSan workload: scripts/check.sh rebuilds with
// -DBOOM_SANITIZE=thread and runs the `parallel` label, so every shared-state fast path
// exercised here is raced under the sanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/chaos/fault_schedule.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/overlog/engine.h"
#include "src/sim/cluster.h"

namespace boom {
namespace {

// ---------------------------------------------------------------------------
// Chaos traces: byte-identical at any thread count
// ---------------------------------------------------------------------------

ChaosRunResult TracedRun(const std::string& scenario_name, uint64_t seed,
                         size_t worker_threads) {
  std::unique_ptr<ChaosScenario> scenario = MakeScenario(scenario_name);
  FaultSchedule schedule = GenerateFaultSchedule(seed, scenario->FaultProfile());
  ChaosRunOptions options;
  options.record_trace = true;
  options.worker_threads = worker_threads;
  return RunChaosOnce(*scenario, seed, schedule, options);
}

class ParallelTraceDeterminism : public ::testing::TestWithParam<std::string> {};

// Same seed, threads in {1, 2, 4} => byte-identical fault/network traces and identical
// outcomes. This is the hard gate on the cluster dispatcher: everything that samples the
// Rng, assigns event seqs, or formats trace lines must replay in event order.
TEST_P(ParallelTraceDeterminism, TraceByteIdenticalAcrossThreadCounts) {
  const std::string scenario = GetParam();
  for (uint64_t seed : {uint64_t{3}, uint64_t{11}}) {
    ChaosRunResult serial = TracedRun(scenario, seed, 1);
    ASSERT_FALSE(serial.trace.empty())
        << scenario << " seed " << seed << ": no trace recorded";
    for (size_t threads : {size_t{2}, size_t{4}}) {
      ChaosRunResult parallel = TracedRun(scenario, seed, threads);
      EXPECT_EQ(serial.trace, parallel.trace)
          << scenario << " seed " << seed << ": trace diverged at " << threads
          << " threads";
      EXPECT_EQ(serial.passed, parallel.passed);
      EXPECT_EQ(serial.violations, parallel.violations);
      EXPECT_EQ(serial.end_ms, parallel.end_ms);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ParallelTraceDeterminism,
                         ::testing::ValuesIn(ScenarioNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Engine fixpoints: parallel rule evaluation matches serial, observable by observable
// ---------------------------------------------------------------------------

struct EngineWorkload {
  std::string name;
  std::vector<std::string> sources;
  std::vector<std::string> watch_tables;
  // ticks[t] = tuples enqueued before the tick at virtual time t+1.
  std::vector<std::vector<std::pair<std::string, Tuple>>> ticks;
};

// Every engine-visible output of a run, minus wall-clock times (inherently noisy even
// between two serial runs).
struct RunSummary {
  std::vector<std::string> tables;
  std::vector<std::string> sends;      // in send order
  std::vector<std::string> errors;     // in record order
  std::vector<std::string> watch_log;  // in firing order
  uint64_t derivations = 0;
  uint64_t parallel_batches = 0;
  std::string profile;  // evals/tuples/max per rule, sorted by key

  bool SameObservables(const RunSummary& other) const {
    return tables == other.tables && sends == other.sends && errors == other.errors &&
           watch_log == other.watch_log && derivations == other.derivations &&
           profile == other.profile;
  }
};

RunSummary RunEngineWorkload(const EngineWorkload& w, size_t threads,
                             bool disable_parallel = false) {
  EngineOptions opts;
  opts.address = "n";
  opts.seed = 7;
  opts.worker_threads = threads;
  opts.disable_parallel_fixpoint = disable_parallel;
  Engine engine(opts);
  RunSummary out;
  for (const std::string& src : w.sources) {
    Status s = engine.InstallSource(src);
    EXPECT_TRUE(s.ok()) << w.name << ": " << s.ToString();
  }
  for (const std::string& table : w.watch_tables) {
    engine.AddWatch(table, [&out](const std::string& t, const Tuple& row, bool inserted) {
      out.watch_log.push_back((inserted ? "+" : "-") + t + row.ToString());
    });
  }
  engine.EnableProfiling();
  Engine::TickResult r = engine.Tick(0);
  out.derivations += r.derivations;
  auto absorb = [&out](const Engine::TickResult& result) {
    for (const Engine::Send& send : result.sends) {
      out.sends.push_back(send.dest + "/" + send.table + send.tuple.ToString());
    }
    for (const std::string& err : result.errors) {
      out.errors.push_back(err);
    }
  };
  absorb(r);
  double now = 1;
  for (const auto& tick : w.ticks) {
    for (const auto& [table, tuple] : tick) {
      Status s = engine.Enqueue(table, tuple);
      EXPECT_TRUE(s.ok()) << w.name << ": " << s.ToString();
    }
    r = engine.Tick(now);
    out.derivations += r.derivations;
    absorb(r);
    // Drain deferred @next tuples at the same virtual time, as a host loop would.
    while (engine.HasQueuedInput()) {
      r = engine.Tick(now);
      out.derivations += r.derivations;
      absorb(r);
    }
    now += 1;
  }
  for (const std::string& name : engine.catalog().TableNames()) {
    std::vector<Tuple> rows = engine.catalog().Get(name).Rows();
    std::sort(rows.begin(), rows.end());
    for (const Tuple& row : rows) {
      out.tables.push_back(name + row.ToString());
    }
  }
  for (const auto& [key, p] : engine.rule_profiles()) {
    out.profile += key + " evals=" + std::to_string(p.evals) +
                   " tuples=" + std::to_string(p.tuples) +
                   " max=" + std::to_string(p.max_tuples_per_tick) + "\n";
  }
  out.parallel_batches = engine.stats().parallel_batches;
  return out;
}

std::vector<EngineWorkload> GoldenWorkloads() {
  std::vector<EngineWorkload> workloads;

  // Recursive fixpoint: r1/r2 conflict on reach, so batches stay serial — the batcher
  // must recognize the read-after-write hazard and fall back without changing anything.
  {
    EngineWorkload w;
    w.name = "transitive_closure";
    w.sources.push_back(R"(
      program tc;
      table link(X, Y);
      table reach(X, Y);
      r1 reach(X, Y) :- link(X, Y);
      r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
    )");
    std::vector<std::pair<std::string, Tuple>> tick;
    for (int i = 0; i < 24; ++i) {
      tick.emplace_back("link", Tuple{Value("n" + std::to_string(i)),
                                      Value("n" + std::to_string(i + 1))});
    }
    w.ticks.push_back(tick);
    w.watch_tables = {"reach"};
    workloads.push_back(std::move(w));
  }

  // Independent rule families: the batcher's bread and butter — wide conflict-free
  // batches, every family evaluated on a worker, applied in program order.
  {
    EngineWorkload w;
    w.name = "independent_families";
    std::string src = "program fam;\n";
    for (int f = 0; f < 12; ++f) {
      std::string n = std::to_string(f);
      src += "table in" + n + "(K, V) keys(0);\n";
      src += "table out" + n + "(K, V) keys(0);\n";
      src += "c" + n + " out" + n + "(K, V) :- in" + n + "(K, V);\n";
    }
    w.sources.push_back(src);
    for (int t = 0; t < 6; ++t) {
      std::vector<std::pair<std::string, Tuple>> tick;
      for (int f = 0; f < 12; ++f) {
        tick.emplace_back("in" + std::to_string(f),
                          Tuple{Value("k" + std::to_string(t % 3)),
                                Value("v" + std::to_string(t) + "_" + std::to_string(f))});
      }
      w.ticks.push_back(tick);
    }
    w.watch_tables = {"out0", "out7"};
    workloads.push_back(std::move(w));
  }

  // Impure builtins interleaved with pure families: f_randint/f_unique_id rules are
  // pinned to the engine thread in program order, so the Rng and id streams — and with
  // them the derived values — must be byte-identical to serial.
  {
    EngineWorkload w;
    w.name = "impure_mix";
    w.sources.push_back(R"(
      program mix;
      table ain(K) keys(0);
      table aout(K, R) keys(0);
      table bin(K) keys(0);
      table bout(K, V) keys(0);
      table cin(K) keys(0);
      table cout(K, I) keys(0);
      ra aout(K, R) :- ain(K), R := f_randint(1000000);
      rb bout(K, V) :- bin(K), V := K + 1;
      rc cout(K, I) :- cin(K), I := f_unique_id();
    )");
    for (int t = 0; t < 5; ++t) {
      std::vector<std::pair<std::string, Tuple>> tick;
      tick.emplace_back("ain", Tuple{Value(int64_t{t})});
      tick.emplace_back("bin", Tuple{Value(int64_t{t})});
      tick.emplace_back("cin", Tuple{Value(int64_t{t})});
      w.ticks.push_back(tick);
    }
    workloads.push_back(std::move(w));
  }

  // Deletes, @next deferral, negation, and an aggregate rollup — the non-insert head
  // kinds, whose effects are deferred (tick end / next tick) and so are write-free for
  // conflict purposes.
  {
    EngineWorkload w;
    w.name = "deletes_next_agg";
    w.sources.push_back(R"(
      program dna;
      table reg(K, V) keys(0);
      table tomb(K) keys(0);
      table alive(K) keys(0);
      table total(G, N) keys(0);
      d1 delete reg(K, V) :- tomb(K), reg(K, V);
      n1 alive(K)@next :- reg(K, V);
      g1 total(1, count<K>) :- reg(K, V);
    )");
    for (int t = 0; t < 4; ++t) {
      std::vector<std::pair<std::string, Tuple>> tick;
      tick.emplace_back("reg", Tuple{Value("k" + std::to_string(t)), Value(int64_t{t})});
      tick.emplace_back("reg",
                        Tuple{Value("p" + std::to_string(t)), Value(int64_t{t + 10})});
      if (t == 2) {
        tick.emplace_back("tomb", Tuple{Value("k0")});
        tick.emplace_back("tomb", Tuple{Value("p1")});
      }
      w.ticks.push_back(tick);
    }
    w.watch_tables = {"reg", "alive"};
    workloads.push_back(std::move(w));
  }

  // Remote heads from several independent rules: send order (and within-tick send dedup)
  // is part of the observable contract — the cluster schedules deliveries in that order.
  {
    EngineWorkload w;
    w.name = "remote_sends";
    std::string src = "program remote;\n";
    for (int f = 0; f < 6; ++f) {
      std::string n = std::to_string(f);
      src += "table route" + n + "(Dst, K) keys(0, 1);\n";
      src += "table ship" + n + "(Dst, K) keys(0, 1);\n";
      src += "s" + n + " ship" + n + "(@Dst, K) :- route" + n + "(Dst, K);\n";
    }
    w.sources.push_back(src);
    for (int t = 0; t < 3; ++t) {
      std::vector<std::pair<std::string, Tuple>> tick;
      for (int f = 0; f < 6; ++f) {
        tick.emplace_back("route" + std::to_string(f),
                          Tuple{Value("peer" + std::to_string(f % 2)),
                                Value(int64_t{t})});
        // Duplicate route rows exercise the within-tick send dedup.
        tick.emplace_back("route" + std::to_string(f),
                          Tuple{Value("peer" + std::to_string(f % 2)), Value(int64_t{0})});
      }
      w.ticks.push_back(tick);
    }
    workloads.push_back(std::move(w));
  }

  // Runtime errors (division by zero) from several independent families: worker-private
  // error buffers must merge in program order and respect the serial cap.
  {
    EngineWorkload w;
    w.name = "error_merge";
    std::string src = "program err;\n";
    for (int f = 0; f < 4; ++f) {
      std::string n = std::to_string(f);
      src += "table ein" + n + "(K) keys(0);\n";
      src += "table eout" + n + "(K, Y) keys(0);\n";
      src += "e" + n + " eout" + n + "(K, Y) :- ein" + n + "(K), Y := 10 / (K - K);\n";
    }
    w.sources.push_back(src);
    for (int t = 0; t < 2; ++t) {
      std::vector<std::pair<std::string, Tuple>> tick;
      for (int f = 0; f < 4; ++f) {
        tick.emplace_back("ein" + std::to_string(f), Tuple{Value(int64_t{t})});
      }
      w.ticks.push_back(tick);
    }
    workloads.push_back(std::move(w));
  }

  return workloads;
}

TEST(ParallelFixpoint, MatchesSerialOnGoldenPrograms) {
  for (const EngineWorkload& w : GoldenWorkloads()) {
    RunSummary serial = RunEngineWorkload(w, 1);
    EXPECT_EQ(serial.parallel_batches, 0u) << w.name;
    for (size_t threads : {size_t{2}, size_t{4}}) {
      RunSummary parallel = RunEngineWorkload(w, threads);
      EXPECT_TRUE(serial.SameObservables(parallel))
          << w.name << " diverged at " << threads << " threads:\n  serial tables="
          << serial.tables.size() << " sends=" << serial.sends.size()
          << " derivations=" << serial.derivations << "\n  parallel tables="
          << parallel.tables.size() << " sends=" << parallel.sends.size()
          << " derivations=" << parallel.derivations;
    }
    // The ablation switch must also be a no-op on observables.
    RunSummary ablated = RunEngineWorkload(w, 4, /*disable_parallel=*/true);
    EXPECT_TRUE(serial.SameObservables(ablated)) << w.name << " ablation diverged";
    EXPECT_EQ(ablated.parallel_batches, 0u) << w.name;
  }
}

// The parallel engine must actually take the batched path on batchable programs —
// otherwise MatchesSerial is vacuously comparing serial to serial.
TEST(ParallelFixpoint, BatchesActuallyDispatch) {
  for (const EngineWorkload& w : GoldenWorkloads()) {
    if (w.name != "independent_families") {
      continue;
    }
    RunSummary parallel = RunEngineWorkload(w, 4);
    EXPECT_GT(parallel.parallel_batches, 0u)
        << "independent families never formed a parallel batch";
  }
}

// ---------------------------------------------------------------------------
// Cluster-level batching on a plain (non-chaos) cluster
// ---------------------------------------------------------------------------

// A 4-node cluster where every node ticks at the same virtual times. Parallel dispatch
// must batch those ticks (counter check), and traces + final states must match serial.
TEST(ParallelCluster, BatchedTicksMatchSerial) {
  auto run = [](size_t threads, std::vector<std::string>* trace) {
    ClusterOptions copts;
    copts.worker_threads = threads;
    Cluster cluster(17, copts);
    cluster.set_trace([trace](const std::string& line) { trace->push_back(line); });
    for (int i = 0; i < 4; ++i) {
      std::string me = "node" + std::to_string(i);
      std::string peer = "node" + std::to_string((i + 1) % 4);
      cluster.AddOverlogNode(me, [me, peer](Engine& e) {
        Status s = e.InstallSource(
            "program ring;\n"
            "table beat(N) keys(0);\n"
            "table seen(From, N) keys(0, 1);\n"
            "timer tock(250);\n"
            "t1 beat(N) :- tock(_), N := f_now();\n"
            "t2 seen(@Peer, Me) :- beat(_), Me := f_me(), Peer := \"" + peer + "\";\n");
        EXPECT_TRUE(s.ok()) << s.ToString();
      });
    }
    cluster.RunUntil(2000);
    std::string state;
    for (int i = 0; i < 4; ++i) {
      Engine* e = cluster.engine("node" + std::to_string(i));
      std::vector<Tuple> rows = e->catalog().Get("seen").Rows();
      std::sort(rows.begin(), rows.end());
      for (const Tuple& row : rows) {
        state += "node" + std::to_string(i) + ":" + row.ToString() + "\n";
      }
    }
    return std::make_pair(state, cluster.parallel_tick_batches());
  };
  std::vector<std::string> trace1;
  auto [state1, batches1] = run(1, &trace1);
  EXPECT_EQ(batches1, 0u);
  EXPECT_FALSE(state1.empty());
  for (size_t threads : {size_t{2}, size_t{4}}) {
    std::vector<std::string> traceN;
    auto [stateN, batchesN] = run(threads, &traceN);
    EXPECT_EQ(state1, stateN) << threads << " threads";
    EXPECT_EQ(trace1, traceN) << threads << " threads";
    EXPECT_GT(batchesN, 0u) << threads
                            << " threads: same-time ticks never formed a batch";
  }
}

// ---------------------------------------------------------------------------
// Atomic refcounts and the sharded interner under real thread churn
// ---------------------------------------------------------------------------

// Copy-on-write tuples shared across pool threads: concurrent copies, hash computations,
// set() clones, and destruction. Correctness here is "no lost updates, no double frees,
// values intact"; under TSan it is also "no data races on the refcount or hash cache".
TEST(ParallelRefcount, SharedTupleStress) {
  Tuple::EnableConcurrentMode();
  ThreadPool pool(3);
  std::vector<Tuple> shared;
  for (int i = 0; i < 64; ++i) {
    shared.push_back(Tuple{Value(int64_t{i}), Value("payload" + std::to_string(i)),
                           Value(static_cast<double>(i))});
  }
  std::atomic<uint64_t> hash_sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.RunBatch(16, [&](size_t k) {
      uint64_t local = 0;
      for (int rep = 0; rep < 200; ++rep) {
        const Tuple& src = shared[(k * 31 + static_cast<size_t>(rep)) % shared.size()];
        Tuple copy = src;                    // shared-rep refcount bump
        local += copy.hash();                // racing hash-cache fills
        Tuple mine = copy;
        mine.set(0, Value(int64_t{static_cast<int64_t>(k)}));  // CoW clone
        ASSERT_EQ(mine[0].as_int(), static_cast<int64_t>(k));
        ASSERT_EQ(copy[0].as_int(),
                  static_cast<int64_t>((k * 31 + static_cast<size_t>(rep)) %
                                       shared.size()));
      }
      hash_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  // Source tuples survived every concurrent copy/clone/destroy cycle intact.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(shared[static_cast<size_t>(i)][0].as_int(), i);
    EXPECT_EQ(shared[static_cast<size_t>(i)][1].as_string(),
              "payload" + std::to_string(i));
  }
  EXPECT_NE(hash_sum.load(), 0u);
}

// Engine migration across pool threads pins interned strings in per-thread caches; the
// invalidate + broadcast-flush protocol must release them all, restoring serial retention.
TEST(ParallelInterner, CacheMigrationReleasesPins) {
  ThreadPool pool(3);
  // Flush everything this test binary interned so far, so the baseline is clean.
  InvalidateInternCaches();
  pool.Broadcast([] { FlushInternCacheForCurrentThread(); });
  FlushInternCacheForCurrentThread();
  const size_t baseline = InternedStringCount();
  // Each worker interns a distinct set of strings and drops the returned pointers; the
  // thread-local caches are now the only thing keeping them alive.
  pool.Broadcast([] {
    static std::atomic<int> next{0};
    int me = next.fetch_add(1);
    for (int i = 0; i < 100; ++i) {
      InternString("migr_w" + std::to_string(me) + "_" + std::to_string(i));
    }
  });
  EXPECT_GT(InternedStringCount(), baseline)
      << "worker caches should pin recently interned strings";
  InvalidateInternCaches();
  pool.Broadcast([] { FlushInternCacheForCurrentThread(); });
  FlushInternCacheForCurrentThread();
  EXPECT_LE(InternedStringCount(), baseline)
      << "invalidate+flush left stale pins on pool threads";
}

// Concurrent interning of overlapping strings across threads: one canonical pointer per
// string, shard mutexes doing their job (a TSan workload above all).
TEST(ParallelInterner, ConcurrentInternIsCanonical) {
  ThreadPool pool(3);
  std::vector<InternedStringPtr> canonical(32);
  for (size_t i = 0; i < canonical.size(); ++i) {
    canonical[i] = InternString("shared_intern_" + std::to_string(i));
  }
  pool.RunBatch(16, [&](size_t k) {
    for (int rep = 0; rep < 100; ++rep) {
      size_t i = (k + static_cast<size_t>(rep)) % canonical.size();
      InternedStringPtr p = InternString("shared_intern_" + std::to_string(i));
      ASSERT_EQ(p.get(), canonical[i].get());
    }
  });
}

}  // namespace
}  // namespace boom
