// Evaluator-level tests: expression evaluation under bindings, and property-style sweeps of
// the semi-naive engine against a brute-force Datalog oracle on random graphs.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/overlog/engine.h"
#include "src/overlog/eval.h"

namespace boom {
namespace {

// --- EvalExpr directly ---

class EvalExprTest : public ::testing::Test {
 protected:
  EvalExprTest() : reg_(BuiltinRegistry::Standard()) {
    slot_of_["X"] = 0;
    slot_of_["Y"] = 1;
    slots_ = {Value(4), Value("ab")};
  }

  Result<Value> Eval(const Expr& e) { return EvalExpr(e, slots_, slot_of_, reg_, ctx_); }

  BuiltinRegistry reg_;
  EvalContext ctx_;
  std::unordered_map<std::string, int> slot_of_;
  std::vector<Value> slots_;
};

TEST_F(EvalExprTest, Constants) {
  EXPECT_EQ(*Eval(Expr::Const(Value(7))), Value(7));
}

TEST_F(EvalExprTest, Variables) {
  EXPECT_EQ(*Eval(Expr::Var("X")), Value(4));
  EXPECT_EQ(*Eval(Expr::Var("Y")), Value("ab"));
}

TEST_F(EvalExprTest, UnboundVariableIsError) {
  EXPECT_FALSE(Eval(Expr::Var("Z")).ok());
}

TEST_F(EvalExprTest, NestedCalls) {
  // (X + 1) * 2 == 10
  Expr e = Expr::Call("==", {Expr::Call("*", {Expr::Call("+", {Expr::Var("X"),
                                                               Expr::Const(Value(1))}),
                                              Expr::Const(Value(2))}),
                             Expr::Const(Value(10))});
  EXPECT_EQ(*Eval(e), Value(true));
}

TEST_F(EvalExprTest, ErrorPropagatesFromInnerCall) {
  Expr e = Expr::Call("+", {Expr::Call("/", {Expr::Const(Value(1)), Expr::Const(Value(0))}),
                            Expr::Const(Value(1))});
  EXPECT_FALSE(Eval(e).ok());
}

// --- property sweep: semi-naive engine vs brute-force closure oracle ---

struct GraphParam {
  int nodes;
  int edges;
  uint64_t seed;
};

class ClosureProperty : public ::testing::TestWithParam<GraphParam> {};

std::set<std::pair<int, int>> BruteForceClosure(const std::set<std::pair<int, int>>& edges,
                                                int nodes) {
  std::vector<std::vector<bool>> reach(static_cast<size_t>(nodes),
                                       std::vector<bool>(static_cast<size_t>(nodes)));
  for (auto [a, b] : edges) {
    reach[static_cast<size_t>(a)][static_cast<size_t>(b)] = true;
  }
  for (int k = 0; k < nodes; ++k) {
    for (int i = 0; i < nodes; ++i) {
      if (!reach[static_cast<size_t>(i)][static_cast<size_t>(k)]) {
        continue;
      }
      for (int j = 0; j < nodes; ++j) {
        reach[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            reach[static_cast<size_t>(i)][static_cast<size_t>(j)] ||
            reach[static_cast<size_t>(k)][static_cast<size_t>(j)];
      }
    }
  }
  std::set<std::pair<int, int>> out;
  for (int i = 0; i < nodes; ++i) {
    for (int j = 0; j < nodes; ++j) {
      if (reach[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
        out.insert({i, j});
      }
    }
  }
  return out;
}

TEST_P(ClosureProperty, MatchesBruteForceUnderIncrementalInsertion) {
  const GraphParam param = GetParam();
  std::mt19937_64 gen(param.seed);
  std::uniform_int_distribution<int> pick(0, param.nodes - 1);

  std::set<std::pair<int, int>> edges;
  while (static_cast<int>(edges.size()) < param.edges) {
    edges.insert({pick(gen), pick(gen)});
  }

  EngineOptions opts;
  opts.address = "n";
  opts.seed = param.seed;
  Engine engine(opts);
  ASSERT_TRUE(engine.InstallSource(R"(
    program tc;
    table link(X, Y);
    table reach(X, Y);
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
  )").ok());
  engine.Tick(0);

  // Feed edges one tick at a time — exercises the incremental delta path, not just the
  // seed-time bulk evaluation.
  double now = 1;
  for (auto [a, b] : edges) {
    ASSERT_TRUE(engine.Enqueue("link", Tuple{Value(a), Value(b)}).ok());
    Engine::TickResult r = engine.Tick(now++);
    ASSERT_TRUE(r.errors.empty());
  }

  std::set<std::pair<int, int>> expected = BruteForceClosure(edges, param.nodes);
  std::set<std::pair<int, int>> actual;
  engine.catalog().Get("reach").ForEach([&actual](const Tuple& row) {
    actual.insert({static_cast<int>(row[0].as_int()), static_cast<int>(row[1].as_int())});
  });
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ClosureProperty,
                         ::testing::Values(GraphParam{5, 8, 1}, GraphParam{8, 20, 2},
                                           GraphParam{10, 40, 3}, GraphParam{12, 30, 4},
                                           GraphParam{6, 36, 5},  // dense
                                           GraphParam{15, 25, 6}),
                         [](const ::testing::TestParamInfo<GraphParam>& info) {
                           return "N" + std::to_string(info.param.nodes) + "E" +
                                  std::to_string(info.param.edges) + "S" +
                                  std::to_string(info.param.seed);
                         });

// Aggregates recomputed incrementally must agree with a from-scratch recomputation on a
// random update stream.
class AggProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggProperty, IncrementalCountSumMatchScratch) {
  std::mt19937_64 gen(GetParam());
  std::uniform_int_distribution<int> group(0, 4);
  std::uniform_int_distribution<int> val(1, 100);

  EngineOptions opts;
  opts.address = "n";
  Engine engine(opts);
  // `obs` is insert-only set-semantics => eligible for incremental maintenance.
  ASSERT_TRUE(engine.InstallSource(R"(
    program agg;
    table obs(Id, G, V);
    table rollup(G, N, Total, Mn, Mx) keys(0);
    rollup(G, count<Id>, sum<V>, min<V>, max<V>) :- obs(Id, G, V);
  )").ok());
  engine.Tick(0);

  std::map<int, std::vector<int>> oracle;
  double now = 1;
  for (int i = 0; i < 200; ++i) {
    int g = group(gen);
    int v = val(gen);
    oracle[g].push_back(v);
    ASSERT_TRUE(engine.Enqueue("obs", Tuple{Value(i), Value(g), Value(v)}).ok());
    engine.Tick(now++);
  }

  const Table& rollup = engine.catalog().Get("rollup");
  ASSERT_EQ(rollup.size(), oracle.size());
  for (const auto& [g, vals] : oracle) {
    const Tuple* row = rollup.LookupByKey(Tuple{Value(g)});
    ASSERT_NE(row, nullptr) << "group " << g;
    int64_t sum = 0;
    int mn = 1000, mx = -1;
    for (int v : vals) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ((*row)[1], Value(static_cast<int64_t>(vals.size()))) << "count g=" << g;
    EXPECT_EQ((*row)[2], Value(sum)) << "sum g=" << g;
    EXPECT_EQ((*row)[3], Value(mn)) << "min g=" << g;
    EXPECT_EQ((*row)[4], Value(mx)) << "max g=" << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggProperty, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace boom
