// Tests for the Overlog multi-Paxos program and the HA BOOM-FS built on it.

#include <gtest/gtest.h>

#include <set>

#include "src/boomfs/ha.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"

namespace boom {
namespace {

// Stands up N paxos replicas (paxos program only) named px0..pxN-1.
std::vector<std::string> SetupPaxos(Cluster& cluster, int n) {
  std::vector<std::string> peers;
  for (int i = 0; i < n; ++i) {
    peers.push_back("px" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    PaxosProgramOptions opts;
    opts.peers = peers;
    opts.my_index = i;
    Program program = PaxosProgram(opts);
    cluster.AddOverlogNode(peers[static_cast<size_t>(i)], [program](Engine& engine) {
      Status s = engine.Install(program);
      ASSERT_TRUE(s.ok()) << s.ToString();
    });
  }
  return peers;
}

Value LeaderOf(Cluster& cluster, const std::string& node) {
  const Table* t = cluster.engine(node)->catalog().Find("leader");
  if (t == nullptr) {
    return Value();
  }
  const Tuple* row = t->LookupByKey(Tuple{Value(1)});
  return row == nullptr ? Value() : (*row)[1];
}

// Decided log of a replica as slot -> command.
std::map<int64_t, Value> DecidedLog(Cluster& cluster, const std::string& node) {
  std::map<int64_t, Value> out;
  const Table& t = cluster.engine(node)->catalog().Get("decided");
  t.ForEach([&out](const Tuple& row) { out[row[0].as_int()] = row[1]; });
  return out;
}

void SubmitCommand(Cluster& cluster, const std::string& to, const Value& cmd) {
  cluster.Send(to, to, "px_request", Tuple{Value(to), cmd});
}

TEST(PaxosTest, ElectsLowestLivePeer) {
  Cluster cluster(99);
  std::vector<std::string> peers = SetupPaxos(cluster, 3);
  cluster.RunUntil(2000);
  for (const std::string& p : peers) {
    EXPECT_EQ(LeaderOf(cluster, p), Value("px0")) << p;
  }
}

TEST(PaxosTest, SingleCommandDecidedEverywhere) {
  Cluster cluster(99);
  std::vector<std::string> peers = SetupPaxos(cluster, 3);
  cluster.RunUntil(2000);
  SubmitCommand(cluster, "px0", Value("cmd-a"));
  cluster.RunUntil(4000);
  for (const std::string& p : peers) {
    std::map<int64_t, Value> log = DecidedLog(cluster, p);
    ASSERT_EQ(log.size(), 1u) << p;
    EXPECT_EQ(log[0], Value("cmd-a")) << p;
  }
}

TEST(PaxosTest, CommandsGetDistinctConsecutiveSlots) {
  Cluster cluster(99);
  std::vector<std::string> peers = SetupPaxos(cluster, 3);
  cluster.RunUntil(2000);
  for (int i = 0; i < 10; ++i) {
    SubmitCommand(cluster, "px0", Value("cmd-" + std::to_string(i)));
  }
  cluster.RunUntil(8000);
  std::map<int64_t, Value> log = DecidedLog(cluster, "px0");
  ASSERT_EQ(log.size(), 10u);
  std::set<std::string> cmds;
  for (int64_t s = 0; s < 10; ++s) {
    ASSERT_TRUE(log.count(s)) << "gap at slot " << s;
    cmds.insert(log[s].as_string());
  }
  EXPECT_EQ(cmds.size(), 10u);  // all distinct commands decided
  // Replicas agree on every slot (Paxos safety).
  for (const std::string& p : peers) {
    EXPECT_EQ(DecidedLog(cluster, p), log) << p;
  }
}

TEST(PaxosTest, RetriedCommandDeduplicated) {
  Cluster cluster(99);
  SetupPaxos(cluster, 3);
  cluster.RunUntil(2000);
  SubmitCommand(cluster, "px0", Value("same-cmd"));
  SubmitCommand(cluster, "px0", Value("same-cmd"));
  cluster.RunUntil(1000 + cluster.now());
  SubmitCommand(cluster, "px0", Value("same-cmd"));
  cluster.RunUntil(3000 + cluster.now());
  std::map<int64_t, Value> log = DecidedLog(cluster, "px0");
  EXPECT_EQ(log.size(), 1u);  // hash-keyed queue dedupes identical commands
}

TEST(PaxosTest, AppliesInSlotOrder) {
  Cluster cluster(99);
  SetupPaxos(cluster, 3);
  std::vector<int64_t> applied_slots;
  cluster.engine("px1")->AddWatch(
      "apply_cmd", [&applied_slots](const std::string&, const Tuple& t, bool inserted) {
        if (inserted) {
          applied_slots.push_back(t[0].as_int());
        }
      });
  cluster.RunUntil(2000);
  for (int i = 0; i < 6; ++i) {
    SubmitCommand(cluster, "px0", Value("c" + std::to_string(i)));
  }
  cluster.RunUntil(8000);
  ASSERT_EQ(applied_slots.size(), 6u);
  for (size_t i = 0; i < applied_slots.size(); ++i) {
    EXPECT_EQ(applied_slots[i], static_cast<int64_t>(i));
  }
}

TEST(PaxosTest, FailoverElectsNextReplicaAndContinues) {
  Cluster cluster(99);
  std::vector<std::string> peers = SetupPaxos(cluster, 3);
  cluster.RunUntil(2000);
  SubmitCommand(cluster, "px0", Value("before-crash"));
  cluster.RunUntil(4000);
  ASSERT_EQ(DecidedLog(cluster, "px1").size(), 1u);

  cluster.KillNode("px0");
  cluster.RunUntil(8000);  // election timeout + new leader phase 1
  EXPECT_EQ(LeaderOf(cluster, "px1"), Value("px1"));
  EXPECT_EQ(LeaderOf(cluster, "px2"), Value("px1"));

  SubmitCommand(cluster, "px1", Value("after-crash"));
  cluster.RunUntil(12000);
  std::map<int64_t, Value> log1 = DecidedLog(cluster, "px1");
  std::map<int64_t, Value> log2 = DecidedLog(cluster, "px2");
  EXPECT_EQ(log1, log2);
  ASSERT_EQ(log1.size(), 2u);
  EXPECT_EQ(log1[0], Value("before-crash"));  // old decision survives the failover
  EXPECT_EQ(log1[1], Value("after-crash"));
}

TEST(PaxosTest, MinorityPartitionCannotDecide) {
  Cluster cluster(99);
  std::vector<std::string> peers = SetupPaxos(cluster, 3);
  cluster.RunUntil(2000);
  // Isolate px0 (the leader) from both other replicas.
  cluster.BlockLink("px0", "px1");
  cluster.BlockLink("px0", "px2");
  cluster.RunUntil(4000);
  SubmitCommand(cluster, "px0", Value("minority-cmd"));
  cluster.RunUntil(8000);
  // px0 alone cannot reach quorum; the majority side elects px1 and has no such command.
  EXPECT_TRUE(DecidedLog(cluster, "px0").empty());
  EXPECT_EQ(LeaderOf(cluster, "px1"), Value("px1"));
  // The majority can still decide its own commands.
  SubmitCommand(cluster, "px1", Value("majority-cmd"));
  cluster.RunUntil(12000);
  std::map<int64_t, Value> log = DecidedLog(cluster, "px1");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.begin()->second, Value("majority-cmd"));
}

TEST(PaxosTest, FiveReplicasToleratesTwoFailures) {
  Cluster cluster(99);
  std::vector<std::string> peers = SetupPaxos(cluster, 5);
  cluster.RunUntil(2000);
  cluster.KillNode("px0");
  cluster.KillNode("px3");
  cluster.RunUntil(6000);
  EXPECT_EQ(LeaderOf(cluster, "px1"), Value("px1"));
  SubmitCommand(cluster, "px1", Value("survives"));
  cluster.RunUntil(10000);
  for (const std::string& p : {"px1", "px2", "px4"}) {
    std::map<int64_t, Value> log = DecidedLog(cluster, p);
    ASSERT_EQ(log.size(), 1u) << p;
    EXPECT_EQ(log.begin()->second, Value("survives"));
  }
}

// --- HA BOOM-FS on top of Paxos ---

class HaFsTest : public ::testing::Test {
 protected:
  HaFsTest() : cluster_(2024) {
    HaFsOptions opts;
    opts.num_replicas = 3;
    opts.num_datanodes = 4;
    opts.chunk_size = 32;
    handles_ = SetupHaFs(cluster_, opts);
    fs_ = std::make_unique<SyncFs>(cluster_, handles_.client, /*timeout_ms=*/120000);
    cluster_.RunUntil(3000);  // elect a leader, register datanodes
  }

  Cluster cluster_;
  HaFsHandles handles_;
  std::unique_ptr<SyncFs> fs_;
};

TEST_F(HaFsTest, BasicOpsThroughPaxos) {
  EXPECT_TRUE(fs_->Mkdir("/a"));
  EXPECT_TRUE(fs_->CreateFile("/a/f"));
  EXPECT_TRUE(fs_->Exists("/a/f"));
  EXPECT_FALSE(fs_->Mkdir("/a"));  // duplicate rejected
}

TEST_F(HaFsTest, MetadataReplicatedToAllReplicas) {
  ASSERT_TRUE(fs_->Mkdir("/rep"));
  ASSERT_TRUE(fs_->CreateFile("/rep/f"));
  cluster_.RunUntil(cluster_.now() + 2000);
  for (const std::string& nn : handles_.replicas) {
    const Table& fqpath = cluster_.engine(nn)->catalog().Get("fqpath");
    bool found = false;
    fqpath.ForEach([&found](const Tuple& row) {
      if (row[0] == Value("/rep/f")) {
        found = true;
      }
    });
    EXPECT_TRUE(found) << nn;
  }
}

TEST_F(HaFsTest, ReplicasMintIdenticalFileIds) {
  ASSERT_TRUE(fs_->Mkdir("/ids"));
  ASSERT_TRUE(fs_->CreateFile("/ids/f1"));
  ASSERT_TRUE(fs_->CreateFile("/ids/f2"));
  cluster_.RunUntil(cluster_.now() + 2000);
  std::set<std::set<Tuple>> variants;
  for (const std::string& nn : handles_.replicas) {
    std::set<Tuple> rows;
    cluster_.engine(nn)->catalog().Get("file").ForEach(
        [&rows](const Tuple& row) { rows.insert(row); });
    variants.insert(std::move(rows));
  }
  EXPECT_EQ(variants.size(), 1u) << "file tables diverged across replicas";
}

TEST_F(HaFsTest, SurvivesPrimaryFailure) {
  ASSERT_TRUE(fs_->Mkdir("/ha"));
  ASSERT_TRUE(fs_->WriteFile("/ha/f", "written-before-failover"));

  cluster_.KillNode(handles_.replicas[0]);
  cluster_.RunUntil(cluster_.now() + 4000);  // re-election

  // Old data still readable; new writes still possible.
  std::string data;
  ASSERT_TRUE(fs_->ReadFile("/ha/f", &data));
  EXPECT_EQ(data, "written-before-failover");
  EXPECT_TRUE(fs_->Mkdir("/ha/after"));
  EXPECT_TRUE(fs_->Exists("/ha/after"));
}

TEST_F(HaFsTest, SurvivesTwoSequentialFailures) {
  ASSERT_TRUE(fs_->Mkdir("/d1"));
  cluster_.KillNode(handles_.replicas[0]);
  cluster_.RunUntil(cluster_.now() + 4000);
  EXPECT_TRUE(fs_->Mkdir("/d2"));
  // With 2/3 replicas alive we still have quorum; kill another and quorum is lost, but
  // first verify /d2 exists on the survivors.
  for (size_t i = 1; i < handles_.replicas.size(); ++i) {
    const Table& fqpath = cluster_.engine(handles_.replicas[i])->catalog().Get("fqpath");
    bool found = false;
    fqpath.ForEach([&found](const Tuple& row) {
      if (row[0] == Value("/d2")) {
        found = true;
      }
    });
    EXPECT_TRUE(found) << handles_.replicas[i];
  }
}

}  // namespace
}  // namespace boom
