// Tests for the federated metadata plane (src/boomfs/federation.h): partition-map
// routing with stale-epoch recovery, per-group chunk-id disjointness, the cross-partition
// rename protocol, online partition rebalance, group-failover isolation, the federation
// chaos sweep, and the pinned program-text goldens.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/boomfs/boomfs.h"
#include "src/boomfs/federation.h"
#include "src/boomfs/partition.h"
#include "src/boomfs/protocol.h"
#include "src/chaos/explorer.h"
#include "src/workload/fs_load.h"

namespace boom {
namespace {

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(BOOM_GOLDEN_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing golden " << name;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The composed program texts are frozen byte-for-byte (regenerate with
// olglint --dump nn_federation|partition_map after an intentional change).
TEST(FederationGoldenTest, ProgramTextsPinned) {
  EXPECT_EQ(NnFederationProgram().ToString(), ReadGolden("nn_federation.olg"));
  EXPECT_EQ(PartitionMapProgram().ToString(), ReadGolden("partition_map.olg"));
}

// Reads one column of a table on a node into a set (empty when node/table missing).
std::set<int64_t> ReadIntColumn(Cluster& cluster, const std::string& node,
                                const std::string& table, size_t col) {
  std::set<int64_t> out;
  Engine* engine = cluster.engine(node);
  if (engine == nullptr) {
    return out;
  }
  const Table* t = engine->catalog().Find(table);
  if (t == nullptr) {
    return out;
  }
  t->ForEach([&out, col](const Tuple& row) { out.insert(row[col].as_int()); });
  return out;
}

std::set<std::string> ReadStringColumn(Cluster& cluster, const std::string& node,
                                       const std::string& table, size_t col) {
  std::set<std::string> out;
  Engine* engine = cluster.engine(node);
  if (engine == nullptr) {
    return out;
  }
  const Table* t = engine->catalog().Find(table);
  if (t == nullptr) {
    return out;
  }
  t->ForEach([&out, col](const Tuple& row) { out.insert(row[col].as_string()); });
  return out;
}

// Two working dirs whose partitions live in DIFFERENT groups (so renames between them
// exercise the cross-partition two-phase protocol across group boundaries).
std::pair<std::string, std::string> CrossGroupDirs(const FederatedFsHandles& handles) {
  for (int a = 0; a < 64; ++a) {
    int64_t pa = RoutingPid("/d" + std::to_string(a), handles.num_partitions);
    for (int b = a + 1; b < 64; ++b) {
      int64_t pb = RoutingPid("/d" + std::to_string(b), handles.num_partitions);
      if (handles.pid_group[static_cast<size_t>(pa)] !=
          handles.pid_group[static_cast<size_t>(pb)]) {
        return {"/d" + std::to_string(a), "/d" + std::to_string(b)};
      }
    }
  }
  ADD_FAILURE() << "no cross-group dir pair in /d0../d63";
  return {"/d0", "/d1"};
}

TEST(FederatedFsTest, BasicOpsRouteAcrossGroups) {
  Cluster cluster(4242);
  FederatedFsOptions opts;
  opts.chunk_size = 32;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  cluster.RunUntil(1500);
  SyncFs fs(cluster, handles.clients[0]);

  // Spread namespace work over enough dirs to hit partitions owned by both groups.
  std::set<int> groups_hit;
  for (int d = 0; d < 6; ++d) {
    std::string dir = "/d" + std::to_string(d);
    ASSERT_TRUE(fs.Mkdir(dir)) << dir;
    int64_t pid = RoutingPid(dir, handles.num_partitions);
    groups_hit.insert(handles.pid_group[static_cast<size_t>(pid)]);
    std::string path = dir + "/f";
    ASSERT_TRUE(fs.WriteFile(path, "payload-" + dir));
  }
  EXPECT_EQ(groups_hit.size(), 2u) << "namespace did not span both groups";
  for (int d = 0; d < 6; ++d) {
    std::string dir = "/d" + std::to_string(d);
    std::string data;
    ASSERT_TRUE(fs.ReadFile(dir + "/f", &data));
    EXPECT_EQ(data, "payload-" + dir);
    std::vector<std::string> names;
    ASSERT_TRUE(fs.Ls(dir, &names));
    EXPECT_EQ(names.size(), 1u);
  }
  ASSERT_TRUE(fs.Rm("/d0/f"));
  EXPECT_FALSE(fs.Exists("/d0/f"));
}

// Satellite regression: every group mints chunk ids in its own salted space, so a shared
// DataNode pool can never see the same id from two groups.
TEST(FederatedFsTest, ChunkIdsDisjointAcrossGroups) {
  Cluster cluster(515);
  FederatedFsOptions opts;
  opts.chunk_size = 16;  // multi-chunk files
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  cluster.RunUntil(1500);
  SyncFs fs(cluster, handles.clients[0]);
  for (int d = 0; d < 6; ++d) {
    std::string dir = "/d" + std::to_string(d);
    ASSERT_TRUE(fs.Mkdir(dir));
    ASSERT_TRUE(fs.WriteFile(dir + "/f", std::string(50, 'a' + static_cast<char>(d))));
  }
  std::vector<std::set<int64_t>> per_group;
  for (const auto& group : handles.groups) {
    std::string leader = GroupLeader(cluster, group);
    ASSERT_FALSE(leader.empty());
    per_group.push_back(ReadIntColumn(cluster, leader, "fchunk", 0));
    EXPECT_FALSE(per_group.back().empty());
  }
  for (int64_t chunk : per_group[0]) {
    EXPECT_FALSE(per_group[1].count(chunk)) << "chunk id " << chunk << " in both groups";
  }
}

// Satellite regression for the pre-federation deployment: SetupPartitionedFs runs N
// NameNodes over ONE shared DataNode pool, so colliding chunk ids would silently
// cross-wire file contents. Per-partition id salts keep the spaces disjoint — the
// round-trip catches a collision for both NameNode kinds (a collision overwrites the
// earlier chunk's bytes on the shared DataNodes).
TEST(PartitionChunkIdTest, ChunkIdsDisjointAcrossPartitions) {
  for (FsKind kind : {FsKind::kBoomFs, FsKind::kHdfsBaseline}) {
    Cluster cluster(616);
    PartitionedFsOptions opts;
    opts.kind = kind;
    opts.num_partitions = 4;
    opts.chunk_size = 16;
    PartitionedFsHandles handles = SetupPartitionedFs(cluster, opts);
    cluster.RunUntil(1500);
    SyncFs fs(cluster, handles.clients[0]);
    std::vector<std::pair<std::string, std::string>> written;
    for (int d = 0; d < 8; ++d) {
      std::string dir = "/d" + std::to_string(d);
      ASSERT_TRUE(fs.Mkdir(dir)) << FsKindName(kind) << " " << dir;
      std::string data(40 + d, 'a' + static_cast<char>(d));
      ASSERT_TRUE(fs.WriteFile(dir + "/f", data)) << FsKindName(kind) << " " << dir;
      written.emplace_back(dir + "/f", data);
    }
    for (const auto& [path, expect] : written) {
      std::string data;
      ASSERT_TRUE(fs.ReadFile(path, &data)) << FsKindName(kind) << " " << path;
      EXPECT_EQ(data, expect) << FsKindName(kind) << " " << path
                              << " (chunk-id collision cross-wired contents?)";
    }
    if (kind == FsKind::kBoomFs) {
      // Direct check on the Overlog engines: partition id spaces never intersect.
      std::vector<std::set<int64_t>> per_part;
      for (const std::string& nn : handles.partitions) {
        per_part.push_back(ReadIntColumn(cluster, nn, "fchunk", 0));
      }
      for (size_t a = 0; a < per_part.size(); ++a) {
        for (size_t b = a + 1; b < per_part.size(); ++b) {
          for (int64_t chunk : per_part[a]) {
            EXPECT_FALSE(per_part[b].count(chunk))
                << "chunk " << chunk << " minted by partitions " << a << " and " << b;
          }
        }
      }
    }
  }
}

TEST(FederatedFsTest, CrossPartitionRenameMovesFileAndTombstonesSource) {
  Cluster cluster(717);
  FederatedFsOptions opts;
  opts.chunk_size = 16;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  cluster.RunUntil(1500);
  SyncFs fs(cluster, handles.clients[0]);

  auto [src_dir, dst_dir] = CrossGroupDirs(handles);
  ASSERT_TRUE(fs.Mkdir(src_dir));
  ASSERT_TRUE(fs.Mkdir(dst_dir));
  std::string src = src_dir + "/x";
  std::string dst = dst_dir + "/y";
  std::string payload(60, 'z');
  ASSERT_TRUE(fs.WriteFile(src, payload));
  ASSERT_TRUE(fs.Rename(src, dst));

  EXPECT_FALSE(fs.Exists(src));
  std::string data;
  ASSERT_TRUE(fs.ReadFile(dst, &data));
  EXPECT_EQ(data, payload);

  // The source group dropped the entry and left a tombstone.
  int64_t src_pid = RoutingPid(src_dir, handles.num_partitions);
  std::string src_leader = GroupLeader(
      cluster, handles.groups[static_cast<size_t>(
                   handles.pid_group[static_cast<size_t>(src_pid)])]);
  ASSERT_FALSE(src_leader.empty());
  EXPECT_FALSE(ReadStringColumn(cluster, src_leader, "fqpath", 0).count(src));
  EXPECT_TRUE(ReadStringColumn(cluster, src_leader, "xr_tomb", 0).count(src));
}

TEST(FederatedFsTest, RebalanceMigratesPartitionAndClientsReRoute) {
  Cluster cluster(818);
  FederatedFsOptions opts;
  opts.chunk_size = 16;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  cluster.RunUntil(1500);
  SyncFs fs(cluster, handles.clients[0]);

  // A working dir on partition 0, populated before the split.
  std::string dir;
  for (int d = 0; d < 64 && dir.empty(); ++d) {
    std::string cand = "/d" + std::to_string(d);
    if (RoutingPid(cand, handles.num_partitions) == 0) {
      dir = cand;
    }
  }
  ASSERT_FALSE(dir.empty());
  ASSERT_TRUE(fs.Mkdir(dir));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs.WriteFile(dir + "/f" + std::to_string(i),
                             "blob-" + std::to_string(i) + std::string(30, '.')));
  }

  int source = handles.pid_group[0];
  int dest = 1 - source;
  int64_t pmap_epoch_before =
      *ReadIntColumn(cluster, handles.pmap, "pm_epoch", 1).begin();
  ASSERT_TRUE(RebalancePartitionSync(cluster, handles, /*pid=*/0, dest));
  EXPECT_EQ(handles.pid_group[0], dest);
  int64_t pmap_epoch_after =
      *ReadIntColumn(cluster, handles.pmap, "pm_epoch", 1).begin();
  EXPECT_GT(pmap_epoch_after, pmap_epoch_before);

  // The clients' cached map is now stale; ops succeed anyway via the stale-epoch bounce.
  for (int i = 0; i < 4; ++i) {
    std::string data;
    ASSERT_TRUE(fs.ReadFile(dir + "/f" + std::to_string(i), &data)) << i;
    EXPECT_EQ(data, "blob-" + std::to_string(i) + std::string(30, '.'));
  }
  ASSERT_TRUE(fs.WriteFile(dir + "/new", "post-split"));

  // Migrated entries live at the destination and are gone from the source.
  std::string dest_leader =
      GroupLeader(cluster, handles.groups[static_cast<size_t>(dest)]);
  std::string src_leader =
      GroupLeader(cluster, handles.groups[static_cast<size_t>(source)]);
  ASSERT_FALSE(dest_leader.empty());
  ASSERT_FALSE(src_leader.empty());
  auto dest_paths = ReadStringColumn(cluster, dest_leader, "fqpath", 0);
  auto src_paths = ReadStringColumn(cluster, src_leader, "fqpath", 0);
  for (int i = 0; i < 4; ++i) {
    std::string path = dir + "/f" + std::to_string(i);
    EXPECT_TRUE(dest_paths.count(path)) << path;
    EXPECT_FALSE(src_paths.count(path)) << path;
  }
}

// A leader kill inside one group must degrade only that group's tenants: the others keep
// >= 0.9x their pre-fault goodput (the acceptance bar for the fig_scaleout experiment).
// One leader-kill run over the shared trace; returns per-tenant goodput during the 1.5s
// election gap after (the would-be) kill time. Paired with an identical no-kill run: the
// same seed gives the same trace, so the fault is the only difference between the two.
std::vector<double> LeaderKillRun(bool kill, std::vector<int>* tenant_group) {
  Cluster cluster(13579);
  constexpr int kTenants = 4;
  FederatedFsOptions opts;
  opts.num_clients = kTenants;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  for (const std::string& replica : handles.AllReplicas()) {
    cluster.SetServiceTime(replica, [](const Message& m) {
      return m.table == kFedRequest ? 1.0 : 0.0;
    });
  }
  cluster.RunUntil(1500);

  FsLoadOptions load;
  load.seed = 7;
  load.horizon_ms = 16000;
  load.mean_interarrival_ms = 5.0;  // well under capacity: failures come from the fault
  load.zipf_s = 0.01;  // near-uniform clients: every tenant gets a steady stream
  load.num_tenants = kTenants;
  load.tenant_weights.assign(kTenants, 1.0 / kTenants);
  for (int t = 0; t < kTenants; ++t) {
    load.tenant_dirs.push_back("/d" + std::to_string(t));
  }
  FsLoadWorkload workload(cluster, load,
                          std::vector<FsClient*>(handles.clients.begin(),
                                                 handles.clients.end()));
  const double t0 = 1500;
  const double kill_at = t0 + 8000;
  cluster.RunUntil(kill_at);
  if (kill) {
    std::string leader = GroupLeader(cluster, handles.groups[0]);
    BOOM_CHECK(!leader.empty());
    cluster.KillNode(leader);
  }
  cluster.RunUntil(t0 + 16000 + 2000);

  std::vector<double> goodput;
  tenant_group->clear();
  for (int t = 0; t < kTenants; ++t) {
    int64_t pid = RoutingPid("/d" + std::to_string(t), handles.num_partitions);
    tenant_group->push_back(handles.pid_group[static_cast<size_t>(pid)]);
    goodput.push_back(workload.TenantGoodputBetween(t, kill_at, kill_at + 1500));
  }
  return goodput;
}

TEST(FederatedFsTest, LeaderKillDegradesOnlyThatGroupsTenants) {
  std::vector<int> tenant_group;
  std::vector<double> base = LeaderKillRun(false, &tenant_group);
  std::vector<double> faulted = LeaderKillRun(true, &tenant_group);
  bool saw_other_group = false;
  for (size_t t = 0; t < base.size(); ++t) {
    if (tenant_group[t] != 0 && base[t] > 0) {
      saw_other_group = true;
      EXPECT_GE(faulted[t], 0.9 * base[t])
          << "tenant " << t << " (group " << tenant_group[t]
          << ") collapsed after another group's leader died";
    }
  }
  EXPECT_TRUE(saw_other_group);
}

// 1000+ actors in one deployment: 4 groups x 3 replicas + pmap + 32 DataNodes +
// 960 clients + admin = 1006. The plane must come up and serve nearly every op.
TEST(FederatedFsTest, ThousandActorDeploymentServes) {
  Cluster cluster(999);
  FederatedFsOptions opts;
  opts.num_groups = 4;
  opts.num_partitions = 16;
  opts.num_datanodes = 32;
  opts.num_clients = 960;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  ASSERT_EQ(handles.clients.size(), 960u);
  cluster.RunUntil(2000);

  int ok = 0;
  constexpr int kOps = 200;
  int done = 0;
  auto issue = [&cluster, &ok, &done, &handles](int i, const std::string& path, auto op) {
    FsClient* client = handles.clients[static_cast<size_t>(i * 7 % 960)];
    (client->*op)(cluster, path, [&ok, &done](bool r, const Value&) {
      ok += r ? 1 : 0;
      ++done;
    });
  };
  auto drain = [&cluster, &done](int target) {
    double deadline = cluster.now() + 60000;
    while (done < target && cluster.now() < deadline) {
      cluster.RunUntil(cluster.now() + 50);
    }
  };
  // Parent directories first, driven to completion — the creates below depend on them.
  for (int i = 0; i < 16; ++i) {
    issue(i, "/d" + std::to_string(i % 16), &FsClient::Mkdir);
  }
  drain(16);
  ASSERT_EQ(done, 16);
  for (int i = 16; i < kOps; ++i) {
    std::string dir = "/d" + std::to_string(i % 16);
    issue(i, dir + "/f" + std::to_string(i), &FsClient::CreateFile);
  }
  drain(kOps);
  EXPECT_EQ(done, kOps);
  EXPECT_GE(ok, kOps * 95 / 100) << ok << "/" << kOps << " ops succeeded";
}

// The 25-seed federation chaos sweep: replica crashes and partitions during churn plus a
// mid-run partition migration; the epoch and namespace invariants must stay clean.
TEST(FederationChaosTest, SweepIsCleanAcross25Seeds) {
  ExplorerOptions options;
  options.scenario = "federation";
  options.seeds = 25;
  options.seed0 = 1;
  options.horizon_ms = 12000;
  options.settle_ms = 9000;
  options.timeline = false;
  ExplorerReport report = ExploreSeeds(options);
  EXPECT_EQ(report.failures, 0) << report.text;
}

// The split-rename bug variant (xr_commit forgets to delete the source) must be caught
// and ddmin-shrunk to a tiny schedule — the workload alone reproduces it, so the shrunk
// reproducer needs few (often zero) fault events.
TEST(FederationChaosTest, SplitRenameBugCaughtAndShrunk) {
  ExplorerOptions options;
  options.scenario = "federation";
  options.bug = "split-rename";
  options.seeds = 2;
  options.seed0 = 1;
  options.horizon_ms = 12000;
  options.settle_ms = 9000;
  options.timeline = false;
  ExplorerReport report = ExploreSeeds(options);
  EXPECT_GT(report.failures, 0) << report.text;
  for (const SeedOutcome& outcome : report.outcomes) {
    if (!outcome.passed) {
      EXPECT_LE(outcome.shrunk.events.size(), 3u)
          << "seed " << outcome.seed << " shrunk to:\n" << outcome.shrunk.ToString();
    }
  }
}

}  // namespace
}  // namespace boom
