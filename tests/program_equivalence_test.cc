// Refactor-equivalence tests: every embedded Overlog program is now composed from modules
// on a ProgramBuilder, replacing the original string-concatenation generators. The exact
// texts those generators produced are frozen in tests/golden/*.olg; each test here runs the
// same deterministic workload against (a) the frozen pre-refactor text and (b) the
// module-built program, and requires the resulting fixpoints to match table-for-table.
//
// This is the strongest guarantee the refactor can give: not "the new text looks the same"
// but "an engine ends in the same state". Rule order is part of the contract (the dirty-rule
// scheduler keys on program order), so these tests would also catch a composition that
// reshuffles rules in an observable way.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/boomfs/boomfs.h"
#include "src/boomfs/ha.h"
#include "src/boomfs/nn_program.h"
#include "src/boommr/boommr.h"
#include "src/chord/chord_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"

namespace boom {
namespace {

std::string ReadGolden(const std::string& name) {
  std::string path = std::string(BOOM_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Parses a self-contained golden program text (all relations declared in the file).
Program ParseGolden(const std::string& name) {
  Result<Program> program = ParseProgram(ReadGolden(name));
  EXPECT_TRUE(program.ok()) << name << ": " << program.status().ToString();
  return std::move(program).value();
}

// Full engine state: every table's rows, as sorted strings. Event tables are empty between
// ticks, so this is exactly the persistent fixpoint.
std::map<std::string, std::multiset<std::string>> Snapshot(const Engine& engine) {
  std::map<std::string, std::multiset<std::string>> out;
  for (const std::string& name : engine.catalog().TableNames()) {
    std::multiset<std::string>& rows = out[name];
    engine.catalog().Get(name).ForEach(
        [&rows](const Tuple& row) { rows.insert(row.ToString()); });
  }
  return out;
}

void ExpectSameState(const Engine& golden, const Engine& built, const std::string& label) {
  auto a = Snapshot(golden);
  auto b = Snapshot(built);
  ASSERT_EQ(a.size(), b.size()) << label << ": different table sets";
  for (const auto& [table, rows] : a) {
    ASSERT_TRUE(b.count(table)) << label << ": table " << table << " missing on built side";
    EXPECT_EQ(rows, b[table]) << label << ": table " << table << " diverged";
  }
}

// --- BOOM-FS NameNode ------------------------------------------------------------------

// Runs a fixed metadata+data workload (including a DataNode crash, to exercise the failure
// detector and re-replication) and returns the cluster, for NN-state comparison.
struct FsRun {
  Cluster cluster;
  FsHandles handles;

  explicit FsRun(const FsSetupOptions& options) : cluster(4242) {
    handles = SetupFs(cluster, options);
    SyncFs fs(cluster, handles.client);
    cluster.RunUntil(1000);
    EXPECT_TRUE(fs.Mkdir("/a"));
    EXPECT_TRUE(fs.Mkdir("/a/b"));
    EXPECT_TRUE(fs.CreateFile("/a/f1"));
    EXPECT_TRUE(fs.WriteFile("/a/b/w1", "equivalence-test-payload-equivalence-test"));
    EXPECT_FALSE(fs.Mkdir("/a"));  // duplicate rejected
    std::string data;
    EXPECT_TRUE(fs.ReadFile("/a/b/w1", &data));
    EXPECT_EQ(data, "equivalence-test-payload-equivalence-test");
    cluster.KillNode(handles.datanodes[0]);  // drive hb-timeout + re-replication rules
    cluster.RunUntil(cluster.now() + 4000);
    EXPECT_TRUE(fs.Rm("/a/f1"));
    EXPECT_FALSE(fs.Exists("/a/f1"));
    std::vector<std::string> names;
    EXPECT_TRUE(fs.Ls("/a", &names));
    cluster.RunUntil(cluster.now() + 2000);
  }
};

TEST(ProgramEquivalence, BoomFsNnDefault) {
  FsSetupOptions golden_opts;
  golden_opts.nn_program_override = ParseGolden("boomfs_nn_default.olg");
  FsRun golden(golden_opts);
  FsRun built(FsSetupOptions{});
  ExpectSameState(*golden.cluster.engine("nn"), *built.cluster.engine("nn"),
                  "boomfs_nn_default");
}

TEST(ProgramEquivalence, BoomFsNnChaosTuning) {
  // The chaos scenario's NN tuning (tighter failure detector) — a distinct parameter
  // binding of the same modules, frozen separately.
  FsSetupOptions golden_opts;
  golden_opts.heartbeat_timeout_ms = 1200;
  golden_opts.nn_program_override = ParseGolden("boomfs_nn_chaos.olg");
  FsRun golden(golden_opts);

  NnProgramOptions prog;
  prog.replication_factor = 3;
  prog.heartbeat_timeout_ms = 1200;
  prog.failure_check_period_ms = 400;
  FsSetupOptions built_opts;
  built_opts.heartbeat_timeout_ms = 1200;
  built_opts.nn_program_override = BoomFsNnProgram(prog);
  FsRun built(built_opts);
  ExpectSameState(*golden.cluster.engine("nn"), *built.cluster.engine("nn"),
                  "boomfs_nn_chaos");
}

// --- BOOM-MR JobTracker ----------------------------------------------------------------

struct MrRun {
  Cluster cluster;
  MrHandles handles;
  double finish_ms = -1;

  explicit MrRun(const MrSetupOptions& options) : cluster(7777) {
    MrSetupOptions opts = options;
    opts.num_trackers = 4;
    // A straggler tracker so the LATE policy actually speculates.
    opts.tracker_slowdowns = {1.0, 1.0, 1.0, 6.0};
    handles = SetupMr(cluster, opts);
    JobSpec spec;
    spec.job_id = handles.client->NextJobId();
    spec.client = handles.client->address();
    spec.num_maps = 6;
    spec.num_reduces = 2;
    spec.duration_ms = [](const TaskRef& task, const std::string&) {
      return 200.0 + ((task.job_id * 31 + task.task_id * 17) % 5) * 40.0;
    };
    finish_ms = RunJobSync(cluster, handles, std::move(spec));
    EXPECT_GT(finish_ms, 0);
    cluster.RunUntil(cluster.now() + 2000);
  }
};

TEST(ProgramEquivalence, BoomMrJtFifo) {
  MrSetupOptions golden_opts;
  golden_opts.jt_program_override = ParseGolden("jt_fifo.olg");
  MrRun golden(golden_opts);
  MrRun built(MrSetupOptions{});
  EXPECT_EQ(golden.finish_ms, built.finish_ms);
  ExpectSameState(*golden.cluster.engine("jt"), *built.cluster.engine("jt"), "jt_fifo");
}

TEST(ProgramEquivalence, BoomMrJtLate) {
  MrSetupOptions golden_opts;
  golden_opts.policy = MrPolicy::kLate;
  golden_opts.jt_program_override = ParseGolden("jt_late.olg");
  MrRun golden(golden_opts);
  MrSetupOptions built_opts;
  built_opts.policy = MrPolicy::kLate;
  MrRun built(built_opts);
  EXPECT_EQ(golden.finish_ms, built.finish_ms);
  ExpectSameState(*golden.cluster.engine("jt"), *built.cluster.engine("jt"), "jt_late");
}

// The paper's headline modularity claim, now structural: LATE vs FIFO differs by exactly
// one module Add(). The composed programs must agree on everything except the LATE rules.
TEST(ProgramEquivalence, LatePolicyIsOneModuleSwap) {
  JtProgramOptions fifo_opts;
  JtProgramOptions late_opts;
  late_opts.policy = MrPolicy::kLate;
  Program fifo = BoomMrJtProgram(fifo_opts);
  Program late = BoomMrJtProgram(late_opts);
  std::set<std::string> fifo_rules;
  for (const Rule& rule : fifo.rules) {
    fifo_rules.insert(rule.name);
  }
  size_t extra = 0;
  for (const Rule& rule : late.rules) {
    if (!fifo_rules.count(rule.name)) {
      ++extra;
    }
  }
  EXPECT_GT(extra, 0u) << "LATE added no rules";
  EXPECT_EQ(late.rules.size(), fifo.rules.size() + extra)
      << "LATE removed or renamed FIFO rules";
}

// --- Paxos -----------------------------------------------------------------------------

// Three replicas, a command stream, a leader crash, and a failover — then every replica's
// state (promises, accepts, decided log, applied commands) must match its golden twin.
struct PaxosRun {
  Cluster cluster;
  std::vector<std::string> peers = {"px0", "px1", "px2"};

  explicit PaxosRun(bool use_golden) : cluster(99) {
    for (int i = 0; i < 3; ++i) {
      Program program;
      if (use_golden) {
        program = ParseGolden("paxos_px" + std::to_string(i) + ".olg");
      } else {
        PaxosProgramOptions opts;
        opts.peers = peers;
        opts.my_index = i;
        program = PaxosProgram(opts);
      }
      cluster.AddOverlogNode(peers[static_cast<size_t>(i)], [program](Engine& engine) {
        Status status = engine.Install(program);
        ASSERT_TRUE(status.ok()) << status.ToString();
      });
    }
    cluster.RunUntil(2000);
    for (int k = 0; k < 5; ++k) {
      cluster.Send("px0", "px0", "px_request",
                   Tuple{Value("px0"), Value("cmd-" + std::to_string(k))});
    }
    cluster.RunUntil(6000);
    cluster.KillNode("px0");
    cluster.RunUntil(10000);
    cluster.Send("px1", "px1", "px_request", Tuple{Value("px1"), Value("after-failover")});
    cluster.RunUntil(14000);
  }
};

TEST(ProgramEquivalence, Paxos) {
  PaxosRun golden(/*use_golden=*/true);
  PaxosRun built(/*use_golden=*/false);
  for (const std::string& p : golden.peers) {
    ExpectSameState(*golden.cluster.engine(p), *built.cluster.engine(p), "paxos " + p);
  }
  // Sanity: the run exercised the protocol (commands actually decided on the survivors).
  const Table& decided = built.cluster.engine("px1")->catalog().Get("decided");
  size_t n = 0;
  decided.ForEach([&n](const Tuple&) { ++n; });
  EXPECT_EQ(n, 6u);
}

// --- Chord -----------------------------------------------------------------------------

struct ChordRun {
  Cluster cluster;
  std::vector<std::string> addresses = {"c0", "c1", "c2"};

  explicit ChordRun(bool use_golden) : cluster(321) {
    for (const std::string& address : addresses) {
      Program program;
      if (use_golden) {
        program = ParseGolden("chord_" + address + ".olg");
      } else {
        ChordOptions opts;
        opts.bootstrap = "c0";
        program = ChordProgram(address, opts);
      }
      cluster.AddOverlogNode(address, [program](Engine& engine) {
        Status status = engine.Install(program);
        ASSERT_TRUE(status.ok()) << status.ToString();
      });
    }
    cluster.RunUntil(8000);  // join + stabilize
  }
};

TEST(ProgramEquivalence, Chord) {
  ChordRun golden(/*use_golden=*/true);
  ChordRun built(/*use_golden=*/false);
  for (const std::string& address : golden.addresses) {
    ExpectSameState(*golden.cluster.engine(address), *built.cluster.engine(address),
                    "chord " + address);
    EXPECT_FALSE(SuccessorOf(built.cluster, address).empty()) << address;
  }
}

// --- HA bridge (three-program stack on one engine) -------------------------------------

// The bridge only makes sense stacked on Paxos + BOOM-FS. Install the full golden stack on
// one engine and the full module-built stack on another, drive identical inputs through
// bare ticks, and compare both final state and every send the engines emitted. (Liveness
// of the full HA deployment is paxos_test's job; equivalence is the point here.)
EngineOptions BareEngine(const std::string& address) {
  EngineOptions opts;
  opts.address = address;
  opts.seed = 5;
  return opts;
}

void MustOk(const Status& status) { BOOM_CHECK(status.ok()) << status.ToString(); }

struct StackRun {
  Engine engine;
  std::vector<std::string> sends;

  explicit StackRun(bool use_golden) : engine(BareEngine("nn0")) {
    if (use_golden) {
      MustOk(engine.Install(ParseGolden("paxos_nn0.olg")));
      MustOk(engine.Install(ParseGolden("boomfs_nn_default.olg")));
      MustOk(engine.InstallSource(ReadGolden("ha_bridge.olg")));
    } else {
      PaxosProgramOptions paxos_opts;
      paxos_opts.peers = {"nn0", "nn1", "nn2"};
      paxos_opts.my_index = 0;
      MustOk(engine.Install(PaxosProgram(paxos_opts)));
      MustOk(engine.Install(BoomFsNnProgram()));
      MustOk(engine.Install(HaBridgeProgram()));
    }
    // nn0 never hears from nn1/nn2, elects itself, and proposes; every outbound message is
    // recorded so protocol behavior (not just resting state) is compared.
    for (double t = 0; t <= 3000; t += 100) {
      if (t == 1500) {
        MustOk(engine.Enqueue("ha_request",
                              Tuple{Value("nn0"), Value(int64_t{1}), Value("client"),
                                    Value("mkdir"), Value("/ha-dir"), Value("")}));
      }
      Engine::TickResult result = engine.Tick(t);
      EXPECT_TRUE(result.errors.empty()) << result.errors.front();
      for (const Engine::Send& send : result.sends) {
        sends.push_back(send.dest + " " + send.table + " " + send.tuple.ToString());
      }
    }
  }
};

TEST(ProgramEquivalence, HaBridgeStack) {
  StackRun golden(/*use_golden=*/true);
  StackRun built(/*use_golden=*/false);
  EXPECT_EQ(golden.sends, built.sends);
  ExpectSameState(golden.engine, built.engine, "ha_stack");
  EXPECT_FALSE(built.sends.empty()) << "stack produced no protocol traffic";
}

// --- Monitor invariants ----------------------------------------------------------------

// Installs the BOOM-FS invariant rules on top of the NameNode program and feeds a fixed
// over-/under-replicated chunk population. Golden side replicates the pre-refactor install
// path: plain InstallSource of the frozen text over a pre-declared violation table.
struct InvariantRun {
  Engine engine;
  std::vector<std::string> violations;

  explicit InvariantRun(bool use_golden) : engine(BareEngine("nn")) {
    MustOk(engine.Install(BoomFsNnProgram()));
    if (use_golden) {
      TableDef def;
      def.name = "invariant_violation";
      def.columns = {"Name", "Detail"};
      MustOk(engine.catalog().Declare(def));
      MustOk(engine.InstallSource(ReadGolden("inv_boomfs_rep3_under.olg")));
      engine.AddWatch("invariant_violation",
                      [this](const std::string&, const Tuple& t, bool inserted) {
                        if (inserted) {
                          violations.push_back(t.ToString());
                        }
                      });
    } else {
      MustOk(InstallInvariants(engine, BoomFsInvariantProgram(3, true), &violations));
    }
    // A 4-replica chunk (over), a 1-replica chunk (under), a 3-replica chunk (fine), an
    // inode with a nonexistent parent, and a duplicate path for one file id.
    MustOk(engine.Enqueue("file", Tuple{Value(1), Value(0), Value("f"), Value(false)}));
    MustOk(engine.Enqueue("file", Tuple{Value(5), Value(77), Value("orphan"), Value(false)}));
    MustOk(engine.Enqueue("fqpath", Tuple{Value("/alias"), Value(1)}));
    for (int c = 1; c <= 3; ++c) {
      MustOk(engine.Enqueue("fchunk", Tuple{Value(c * 10), Value(1)}));
    }
    int reps = 0;
    for (int c = 1; c <= 3; ++c) {
      int want = c == 1 ? 4 : (c == 2 ? 1 : 3);
      for (int r = 0; r < want; ++r) {
        MustOk(engine.Enqueue("hb_chunk",
                              Tuple{Value("dn" + std::to_string(reps++)), Value(c * 10)}));
      }
    }
    for (double t = 0; t <= 500; t += 100) {
      engine.Tick(t);
    }
  }
};

TEST(ProgramEquivalence, BoomFsInvariants) {
  InvariantRun golden(/*use_golden=*/true);
  InvariantRun built(/*use_golden=*/false);
  EXPECT_EQ(golden.violations, built.violations);
  ExpectSameState(golden.engine, built.engine, "boomfs_invariants");
  // The fixture must actually trip rules on both sides: over-replication, dangling path,
  // and under-replication.
  EXPECT_GE(built.violations.size(), 3u);
}

TEST(ProgramEquivalence, RuleHogInvariants) {
  auto run = [](bool use_golden) {
    auto result = std::make_pair(std::vector<std::string>{}, std::string{});
    Engine engine(BareEngine("jt"));
    std::vector<std::string>& violations = result.first;
    if (use_golden) {
      TableDef def;
      def.name = "invariant_violation";
      def.columns = {"Name", "Detail"};
      MustOk(engine.catalog().Declare(def));
      MustOk(engine.InstallSource(ReadGolden("inv_rulehog_5000.olg")));
      engine.AddWatch("invariant_violation",
                      [&violations](const std::string&, const Tuple& t, bool inserted) {
                        if (inserted) {
                          violations.push_back(t.ToString());
                        }
                      });
    } else {
      MustOk(InstallInvariants(engine, RuleHogInvariantProgram(5000), &violations));
    }
    // Profile rows injected directly: WallUs from real profiling is wall-clock and would
    // make the comparison nondeterministic.
    MustOk(engine.Enqueue("perf_rule",
                          Tuple{Value("p"), Value("hog"), Value(int64_t{9}),
                                Value(int64_t{9000}), Value(int64_t{9000}), Value(1.0)}));
    MustOk(engine.Enqueue("perf_rule",
                          Tuple{Value("p"), Value("ok"), Value(int64_t{9}),
                                Value(int64_t{10}), Value(int64_t{10}), Value(1.0)}));
    engine.Tick(0);
    engine.Tick(100);
    for (const auto& [table, rows] : Snapshot(engine)) {
      result.second += table + "\n";
      for (const std::string& row : rows) {
        result.second += "  " + row + "\n";
      }
    }
    return result;
  };
  auto golden = run(/*use_golden=*/true);
  auto built = run(/*use_golden=*/false);
  EXPECT_EQ(golden.first, built.first);
  EXPECT_EQ(golden.second, built.second);
  ASSERT_EQ(built.first.size(), 1u);  // only the hog trips
  EXPECT_NE(built.first[0].find("hog"), std::string::npos);
}

}  // namespace
}  // namespace boom
