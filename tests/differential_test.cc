// Differential test: the Overlog BOOM-FS NameNode vs the imperative hdfs_baseline NameNode.
// Both implement the same metadata protocol, so a random op stream replayed against both
// must yield identical per-op results — success/failure for mkdir/create/rm, the same
// existence answers, and the same directory listings (compared as sorted sets; listing
// order is not part of the protocol). This is the paper's "same semantics, 10x less code"
// claim turned into an executable check: any divergence is a bug in one of the two.
//
// The protocol has no rename op, so the generator covers mkdir/create/write/rm/exists/ls.
// Chunk placement differs between the two (different allocation policies), so data-plane
// comparisons stop at read-back equality of what each wrote.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/sim/random.h"

namespace boom {
namespace {

// One side of the comparison: a cluster running one NameNode flavour plus a sync client.
struct Side {
  explicit Side(FsKind kind, uint64_t seed) : cluster(seed) {
    FsSetupOptions opts;
    opts.kind = kind;
    opts.num_datanodes = 4;
    opts.replication_factor = 2;
    opts.chunk_size = 32;
    handles = SetupFs(cluster, opts);
    fs = std::make_unique<SyncFs>(cluster, handles.client);
    cluster.RunUntil(1500);
  }

  Cluster cluster;
  FsHandles handles;
  std::unique_ptr<SyncFs> fs;
};

std::vector<std::string> SortedLs(Side& side, const std::string& path, bool* ok) {
  std::vector<std::string> names;
  *ok = side.fs->Ls(path, &names);
  std::sort(names.begin(), names.end());
  return names;
}

class FsDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsDifferential, RandomOpsMatchBaseline) {
  const uint64_t seed = GetParam();
  Side boom_side(FsKind::kBoomFs, seed);
  Side base_side(FsKind::kHdfsBaseline, seed);

  // The op stream uses its own generator so both sides see the identical sequence
  // regardless of what either cluster does with its internal randomness.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 7);

  // Paths the generator draws from: a mix it has created, will create, and ones that are
  // deliberately bogus, so both the success and failure branches of every op get exercised.
  std::vector<std::string> dirs = {"/"};
  std::vector<std::string> files;
  int next_id = 0;
  int ok_ops = 0;  // successful mutating ops — guards against a vacuously-agreeing run

  auto random_dir = [&] { return dirs[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(dirs.size()) - 1))]; };
  auto join = [](const std::string& dir, const std::string& leaf) {
    return dir == "/" ? "/" + leaf : dir + "/" + leaf;
  };

  for (int op = 0; op < 120; ++op) {
    double r = rng.Uniform(0, 1);
    if (r < 0.18) {
      // mkdir: usually a new name, sometimes a duplicate or a path under a missing parent.
      std::string path;
      double kind = rng.Uniform(0, 1);
      if (kind < 0.7 || dirs.size() < 2) {
        path = join(random_dir(), "d" + std::to_string(next_id++));
      } else if (kind < 0.85) {
        path = random_dir() == "/" ? "/dup" : random_dir();  // likely-existing
      } else {
        path = "/missing" + std::to_string(op) + "/child";  // parent does not exist
      }
      bool a = boom_side.fs->Mkdir(path);
      bool b = base_side.fs->Mkdir(path);
      ASSERT_EQ(a, b) << "op " << op << ": mkdir " << path;
      if (a) {
        ++ok_ops;
        if (std::find(dirs.begin(), dirs.end(), path) == dirs.end()) {
          dirs.push_back(path);
        }
      }
    } else if (r < 0.40) {
      // create: new file, duplicate file, or name colliding with a directory.
      std::string path;
      double kind = rng.Uniform(0, 1);
      if (kind < 0.7 || files.empty()) {
        path = join(random_dir(), "f" + std::to_string(next_id++));
      } else if (kind < 0.85) {
        path = files[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(files.size()) - 1))];
      } else {
        path = random_dir();
      }
      bool a = boom_side.fs->CreateFile(path);
      bool b = base_side.fs->CreateFile(path);
      ASSERT_EQ(a, b) << "op " << op << ": create " << path;
      if (a) {
        ++ok_ops;
        if (std::find(files.begin(), files.end(), path) == files.end()) {
          files.push_back(path);
        }
      }
    } else if (r < 0.55 && !files.empty()) {
      // write + read back on each side independently (placement differs across sides).
      const std::string& path = files[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(files.size()) - 1))];
      std::string data;
      for (int i = 0; i < 3; ++i) {
        data += path + "#" + std::to_string(op) + "|";
      }
      bool a = boom_side.fs->WriteFile(path, data);
      bool b = base_side.fs->WriteFile(path, data);
      ASSERT_EQ(a, b) << "op " << op << ": write " << path;
      if (a) {
        ++ok_ops;
        std::string back_a, back_b;
        ASSERT_TRUE(boom_side.fs->ReadFile(path, &back_a)) << "op " << op << " " << path;
        ASSERT_TRUE(base_side.fs->ReadFile(path, &back_b)) << "op " << op << " " << path;
        EXPECT_EQ(back_a, data);
        EXPECT_EQ(back_b, data);
      }
    } else if (r < 0.70) {
      // rm: an existing file, an existing (possibly non-empty) directory, or a bogus path.
      std::string path;
      double kind = rng.Uniform(0, 1);
      if (kind < 0.5 && !files.empty()) {
        size_t idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(files.size()) - 1));
        path = files[idx];
      } else if (kind < 0.8 && dirs.size() > 1) {
        path = dirs[static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(dirs.size()) - 1))];
      } else {
        path = "/no-such-" + std::to_string(op);
      }
      bool a = boom_side.fs->Rm(path);
      bool b = base_side.fs->Rm(path);
      ASSERT_EQ(a, b) << "op " << op << ": rm " << path;
      if (a) {
        ++ok_ops;
        files.erase(std::remove(files.begin(), files.end(), path), files.end());
        // A removed directory takes its whole subtree's names out of play.
        auto under = [&path](const std::string& p) {
          return p == path || p.rfind(path + "/", 0) == 0;
        };
        dirs.erase(std::remove_if(dirs.begin() + 1, dirs.end(), under), dirs.end());
        files.erase(std::remove_if(files.begin(), files.end(), under), files.end());
      }
    } else if (r < 0.85) {
      // exists: half known names, half bogus.
      std::string path = rng.Uniform(0, 1) < 0.5 && !files.empty()
                             ? files[static_cast<size_t>(rng.UniformInt(
                                   0, static_cast<int64_t>(files.size()) - 1))]
                             : "/phantom" + std::to_string(op);
      EXPECT_EQ(boom_side.fs->Exists(path), base_side.fs->Exists(path))
          << "op " << op << ": exists " << path;
    } else {
      // ls: an existing directory, or a bogus one (both sides must fail identically).
      bool bogus = rng.Uniform(0, 1) < 0.25;
      std::string path = bogus ? "/void" + std::to_string(op) : random_dir();
      bool ok_a = false, ok_b = false;
      std::vector<std::string> names_a = SortedLs(boom_side, path, &ok_a);
      std::vector<std::string> names_b = SortedLs(base_side, path, &ok_b);
      ASSERT_EQ(ok_a, ok_b) << "op " << op << ": ls " << path;
      EXPECT_EQ(names_a, names_b) << "op " << op << ": ls " << path;
    }
  }

  EXPECT_GT(ok_ops, 30) << "op stream barely exercised the namespace";

  // Final sweep: every directory either side could still know about lists identically.
  for (const std::string& dir : dirs) {
    bool ok_a = false, ok_b = false;
    std::vector<std::string> names_a = SortedLs(boom_side, dir, &ok_a);
    std::vector<std::string> names_b = SortedLs(base_side, dir, &ok_b);
    ASSERT_EQ(ok_a, ok_b) << "final ls " << dir;
    EXPECT_EQ(names_a, names_b) << "final ls " << dir;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsDifferential,
                         ::testing::Values(1, 2, 3, 17, 99),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace boom
