// Overload-robustness tier (ctest -L overload, runs in the fast inner loop): the
// SLO-aware admission gateway, client retry budgets, rename + tombstone GC on both
// NameNode twins, the MR submission bound, the open-loop FS-metadata workload, and the
// metastable-failure chaos scenario (admission recovers; the retry-storm bug variant is
// caught by the goodput invariant and shrunk to a minimal schedule).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/client.h"
#include "src/boomfs/nn_program.h"
#include "src/boomfs/protocol.h"
#include "src/boommr/boommr.h"
#include "src/boommr/jt_program.h"
#include "src/chaos/explorer.h"
#include "src/chaos/invariants.h"
#include "src/chaos/scenario.h"
#include "src/hdfs_baseline/namenode.h"
#include "src/overlog/engine.h"
#include "src/sim/cluster.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo.h"
#include "src/workload/arrivals.h"
#include "src/workload/fs_load.h"

namespace boom {
namespace {

uint64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().counter(name).value();
}

std::string ReadGolden(const std::string& name) {
  std::string path = std::string(BOOM_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Rows currently in an Overlog node's table; empty when the node/table is missing.
size_t TableSize(Cluster& cluster, const std::string& node, const std::string& table) {
  Engine* engine = cluster.engine(node);
  if (engine == nullptr) {
    return 0;
  }
  const Table* t = engine->catalog().Find(table);
  if (t == nullptr) {
    return 0;
  }
  size_t n = 0;
  t->ForEach([&n](const Tuple&) { ++n; });
  return n;
}

// --- rename: both twins ----------------------------------------------------------------

class RenameTwinTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(RenameTwinTest, RenameMovesFilesAndRejectsBadTargets) {
  Cluster cluster(1);
  FsSetupOptions opts;
  opts.kind = GetParam();
  opts.with_rename = true;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client);

  ASSERT_TRUE(fs.Mkdir("/a"));
  ASSERT_TRUE(fs.Mkdir("/b"));
  ASSERT_TRUE(fs.CreateFile("/a/f"));

  EXPECT_TRUE(fs.Rename("/a/f", "/b/g"));
  EXPECT_TRUE(fs.Exists("/b/g"));
  EXPECT_FALSE(fs.Exists("/a/f"));

  EXPECT_FALSE(fs.Rename("/a/f", "/b/h")) << "source no longer exists";
  ASSERT_TRUE(fs.CreateFile("/a/f2"));
  EXPECT_FALSE(fs.Rename("/a/f2", "/missing/x")) << "destination parent must exist";
  ASSERT_TRUE(fs.CreateFile("/b/taken"));
  EXPECT_FALSE(fs.Rename("/a/f2", "/b/taken")) << "destination name must be free";
  EXPECT_TRUE(fs.Exists("/a/f2")) << "failed rename must not move the source";
}

// Renaming a file keeps its chunks: written bytes must be readable at the new path.
TEST_P(RenameTwinTest, RenameKeepsChunkOwnership) {
  Cluster cluster(2);
  FsSetupOptions opts;
  opts.kind = GetParam();
  opts.with_rename = true;
  opts.chunk_size = 16;  // force a multi-chunk file
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client);

  std::string data = "rename keeps every chunk of this file intact";
  ASSERT_TRUE(fs.WriteFile("/orig", data));
  ASSERT_TRUE(fs.Rename("/orig", "/moved"));
  std::string got;
  ASSERT_TRUE(fs.ReadFile("/moved", &got));
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(BothTwins, RenameTwinTest,
                         ::testing::Values(FsKind::kBoomFs, FsKind::kHdfsBaseline),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           return info.param == FsKind::kBoomFs ? "BoomFs" : "HdfsBaseline";
                         });

// --- tombstone GC under churn: both twins ----------------------------------------------

class TombstoneGcTwinTest : public ::testing::TestWithParam<FsKind> {};

// Long-horizon churn: create/write/rm in a loop. Without GC every rm leaves a dead-chunk
// tombstone forever; with GC the tombstone set must return to (near) zero once the churn
// stops and the retention window passes — bounded growth, not monotone growth.
TEST_P(TombstoneGcTwinTest, ChurnLeavesBoundedTombstones) {
  Cluster cluster(3);
  FsSetupOptions opts;
  opts.kind = GetParam();
  opts.with_gc = true;
  opts.gc_check_period_ms = 500;
  opts.gc_tombstone_ms = 2000;
  opts.chunk_size = 16;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client);

  constexpr int kChurnRounds = 25;
  for (int i = 0; i < kChurnRounds; ++i) {
    std::string path = "/churn" + std::to_string(i);
    ASSERT_TRUE(fs.WriteFile(path, "churned bytes " + std::to_string(i)));
    ASSERT_TRUE(fs.Rm(path));
  }

  auto tombstones = [&]() -> size_t {
    if (GetParam() == FsKind::kHdfsBaseline) {
      auto* nn = dynamic_cast<HdfsNameNode*>(cluster.actor(handles.namenode));
      return nn == nullptr ? 0 : nn->dead_chunk_count();
    }
    return TableSize(cluster, handles.namenode, "dead_chunk");
  };

  // Mid-churn the set is bounded by what was deleted (no resurrection-driven growth)...
  EXPECT_LE(tombstones(), static_cast<size_t>(kChurnRounds * 4));
  // ...and after the retention window plus a couple of GC sweeps it drains to zero.
  cluster.RunUntil(cluster.now() + opts.gc_tombstone_ms + 4 * opts.gc_check_period_ms);
  EXPECT_EQ(tombstones(), 0u) << FsKindName(GetParam())
                              << " kept tombstones past the retention window";
}

INSTANTIATE_TEST_SUITE_P(BothTwins, TombstoneGcTwinTest,
                         ::testing::Values(FsKind::kBoomFs, FsKind::kHdfsBaseline),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           return info.param == FsKind::kBoomFs ? "BoomFs" : "HdfsBaseline";
                         });

// --- admission gateway -----------------------------------------------------------------

struct GatewayRig {
  explicit GatewayRig(Cluster& cluster, GatewayOptions gw_opts,
                      FsClientOptions client_extra = {},
                      double load_probe_period_ms = 100) {
    FsSetupOptions fs;
    fs.with_rename = true;
    handles = SetupFs(cluster, fs);
    GatewaySetupOptions gw;
    gw.address = "nn_gw";
    gw.load_probe_period_ms = load_probe_period_ms;
    gw.gateway = std::move(gw_opts);
    gw.gateway.namenode = handles.namenode;
    gw.gateway.client_tenants = {{"c0", 0}};
    AddAdmissionGateway(cluster, gw);
    FsClientOptions copts = std::move(client_extra);
    copts.namenode = "nn_gw";
    copts.request_table = kNsIngress;
    auto owned = std::make_unique<FsClient>("c0", std::move(copts));
    client = owned.get();
    cluster.AddActor(std::move(owned));
  }

  FsHandles handles;
  FsClient* client = nullptr;
};

TEST(AdmissionGatewayTest, QuotaShedsWritesButServesReads) {
  MetricsRegistry::Global().Reset();
  Cluster cluster(4);
  GatewayOptions gw;
  gw.tenant_quota = 2;
  gw.window_ms = 1000000;  // one window for the whole test: the quota never resets
  gw.retry_after_ms = 250;
  GatewayRig rig(cluster, gw);

  int ok_count = 0;
  std::vector<Value> shed_payloads;
  for (int i = 0; i < 5; ++i) {
    // Spaced out so each request sees the accounting of the previous one (adm_win_w
    // lands @next: same-tick submissions are judged against a stale count by design).
    cluster.ScheduleAt(6000 + i * 50, [&cluster, &rig, &ok_count, &shed_payloads, i] {
      rig.client->Mkdir(cluster, "/d" + std::to_string(i),
                        [&ok_count, &shed_payloads](bool ok, const Value& payload) {
                          if (ok) {
                            ++ok_count;
                          } else if (IsOverloadedPayload(payload)) {
                            shed_payloads.push_back(payload);
                          }
                        });
    });
  }
  cluster.RunUntil(8000);

  EXPECT_EQ(ok_count, 2) << "quota admits exactly tenant_quota writes per window";
  ASSERT_EQ(shed_payloads.size(), 3u);
  for (const Value& p : shed_payloads) {
    EXPECT_EQ(OverloadRetryAfterMs(p), 250) << "shed responses carry the retry-after hint";
  }
  EXPECT_EQ(CounterValue("fs.gw.shed"), 3u);
  EXPECT_EQ(CounterValue("slo.tenant0.shed"), 3u);

  // Reads are monotone and bypass the quota: still served with the budget spent.
  bool read_ok = false;
  cluster.ScheduleAt(8000, [&cluster, &rig, &read_ok] {
    rig.client->Exists(cluster, "/d0", [&read_ok](bool ok, const Value&) { read_ok = ok; });
  });
  cluster.RunUntil(9000);
  EXPECT_TRUE(read_ok);
}

TEST(AdmissionGatewayTest, BrownoutEntersOnBacklogAndExitsWithHysteresis) {
  MetricsRegistry::Global().Reset();
  Cluster cluster(5);
  GatewayOptions gw;
  gw.tenant_quota = 1000000;
  gw.queue_bound_ms = 400;
  // Probe off: this test injects svc_load samples by hand (the real probe would report
  // the unloaded NameNode's zero backlog every 100ms and instantly exit the brownout).
  GatewayRig rig(cluster, gw, {}, /*load_probe_period_ms=*/0);

  auto mkdir_result = [&cluster, &rig](double at, const std::string& path, bool* ok,
                                       bool* shed) {
    cluster.ScheduleAt(at, [&cluster, &rig, path, ok, shed] {
      rig.client->Mkdir(cluster, path, [ok, shed](bool got_ok, const Value& payload) {
        *ok = got_ok;
        *shed = IsOverloadedPayload(payload);
      });
    });
  };

  bool ok1 = false, shed1 = false, ok2 = false, shed2 = false, ok3 = false, shed3 = false;
  mkdir_result(6000, "/before", &ok1, &shed1);
  // Backlog above the bound -> brownout enters; writes shed, reads still served.
  cluster.ScheduleAt(6500, [&cluster] {
    cluster.DeliverLocal("nn_gw", kSvcLoad, Tuple{Value("nn_gw"), Value(900.0)});
  });
  mkdir_result(7000, "/during", &ok2, &shed2);
  bool read_ok = false;
  cluster.ScheduleAt(7100, [&cluster, &rig, &read_ok] {
    rig.client->Exists(cluster, "/before",
                       [&read_ok](bool ok, const Value&) { read_ok = ok; });
  });
  // Hysteresis: backlog just below the bound is NOT enough to exit (exit needs < half).
  cluster.ScheduleAt(7500, [&cluster] {
    cluster.DeliverLocal("nn_gw", kSvcLoad, Tuple{Value("nn_gw"), Value(300.0)});
  });
  bool ok_hyst = false, shed_hyst = false;
  mkdir_result(7800, "/still_browned", &ok_hyst, &shed_hyst);
  // Backlog drained below half the bound -> brownout exits; writes flow again.
  cluster.ScheduleAt(8200, [&cluster] {
    cluster.DeliverLocal("nn_gw", kSvcLoad, Tuple{Value("nn_gw"), Value(50.0)});
  });
  mkdir_result(8700, "/after", &ok3, &shed3);
  cluster.RunUntil(10000);

  EXPECT_TRUE(ok1);
  EXPECT_TRUE(shed2) << "write during brownout must be shed";
  EXPECT_FALSE(ok2);
  EXPECT_TRUE(read_ok) << "reads are served while browned out";
  EXPECT_TRUE(shed_hyst) << "backlog between half and full bound must stay browned out";
  EXPECT_TRUE(ok3) << "write after brownout exit must be admitted";
  EXPECT_GE(CounterValue("fs.gw.brownout_enter"), 1u);
  EXPECT_GE(CounterValue("fs.gw.brownout_exit"), 1u);
}

// The PR-2 escalation-ladder fix: a pipeline write shed mid-flight retries with the
// server's delay instead of escalating to fan-out / chunk abandonment.
TEST(AdmissionGatewayTest, ShedPipelineWriteRetriesWithoutEscalating) {
  MetricsRegistry::Global().Reset();
  Cluster cluster(6);
  GatewayOptions gw;
  gw.tenant_quota = 2;    // create + first addchunk fit; the second addchunk is shed
  gw.window_ms = 400;     // the next window re-admits the retried addchunk
  gw.retry_after_ms = 250;
  FsClientOptions copts;
  copts.chunk_size = 16;
  copts.retry_budget_cap = 8;
  copts.retry_budget_refill = 0.5;
  copts.honor_retry_after = true;
  GatewayRig rig(cluster, gw, copts);

  bool done = false, ok = false;
  std::string data = "three chunks of payload, shed mid-write!";
  cluster.ScheduleAt(6000, [&cluster, &rig, &done, &ok, data] {
    rig.client->WriteFile(cluster, "/w", data, [&done, &ok](bool got_ok) {
      done = true;
      ok = got_ok;
    });
  });
  cluster.RunUntil(20000);

  ASSERT_TRUE(done);
  EXPECT_TRUE(ok) << "shed write must eventually land once the quota window rolls";
  EXPECT_GE(CounterValue("fs.client.write_overload_retry"), 1u);
  EXPECT_EQ(CounterValue("fs.client.write_fanout"), 0u)
      << "overload must not trigger the crash-recovery fan-out";
  EXPECT_EQ(CounterValue("fs.client.chunk_abandon"), 0u)
      << "overload must not trigger chunk abandonment";

  std::string got;
  SyncFs fs(cluster, rig.client);
  ASSERT_TRUE(fs.ReadFile("/w", &got));
  EXPECT_EQ(got, data);
}

// --- client retry budget ---------------------------------------------------------------

TEST(RetryBudgetTest, TokensSpendAndRefillClamped) {
  FsClientOptions opts;
  opts.retry_budget_cap = 2;
  opts.retry_budget_refill = 0.5;
  FsClient client("budget_c", opts);

  EXPECT_TRUE(client.TrySpendRetryToken());
  EXPECT_TRUE(client.TrySpendRetryToken());
  EXPECT_FALSE(client.TrySpendRetryToken()) << "cap spent: retries must stop";
  client.CreditSuccess();
  EXPECT_FALSE(client.TrySpendRetryToken()) << "half a token is not a retry";
  client.CreditSuccess();
  EXPECT_TRUE(client.TrySpendRetryToken()) << "successes refill the budget";
  for (int i = 0; i < 100; ++i) {
    client.CreditSuccess();
  }
  EXPECT_DOUBLE_EQ(client.retry_tokens(), 2.0) << "refill clamps at the cap";
}

TEST(RetryBudgetTest, CapZeroDisablesTheBudget) {
  FsClientOptions opts;
  opts.retry_budget_cap = 0;
  FsClient client("nobudget_c", opts);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(client.TrySpendRetryToken());
  }
}

// --- MR submission admission -----------------------------------------------------------

TEST(MrAdmissionTest, RejectedJobsResubmitUnderFreshIdsAndAllComplete) {
  MetricsRegistry::Global().Reset();
  Cluster cluster(7);
  MrSetupOptions opts;
  opts.kind = MrKind::kBoomMr;
  opts.num_trackers = 3;
  opts.with_admission = true;
  opts.jam_queue_bound = 1;  // one running job at a time: a burst of 3 must queue client-side
  opts.jam_retry_ms = 400;
  MrHandles handles = SetupMr(cluster, opts);

  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    // Staggered past the JT's per-tick accounting (ja1 recounts "running" jobs at the
    // fixpoint after a submission lands): back-to-back same-tick submissions would all be
    // judged against the stale count and admitted.
    cluster.ScheduleAt(1000 + i * 300, [&cluster, &handles, &completed] {
      JobSpec spec;
      spec.job_id = handles.client->NextJobId();
      spec.client = handles.client->address();
      spec.num_maps = 2;
      spec.num_reduces = 1;
      spec.duration_ms = [](const TaskRef&, const std::string&) { return 120.0; };
      handles.client->Submit(cluster, std::move(spec),
                             [&completed](double) { ++completed; });
    });
  }
  cluster.RunUntil(30000);

  EXPECT_EQ(completed, 3) << "every logical job must complete despite rejections";
  EXPECT_EQ(handles.data_plane->metrics().job_done_ms.size(), 3u)
      << "resubmission must not duplicate job executions";
  EXPECT_GE(CounterValue("mr.jt.jam_deny"), 1u) << "the bound must actually have fired";
  EXPECT_GE(CounterValue("mr.client.job_resubmit"), 1u);
}

// --- open-loop FS-metadata workload ----------------------------------------------------

FsLoadOptions SmallLoadOptions(uint64_t seed) {
  FsLoadOptions opts;
  opts.seed = seed;
  opts.horizon_ms = 6000;
  opts.mean_interarrival_ms = 10;
  opts.service_ms_per_request = 0.5;
  return opts;
}

TEST(FsLoadWorkloadTest, ReportAndGoodputAreDeterministicPerSeed) {
  FsLoadReport reports[2];
  std::vector<uint64_t> windows[2];
  for (int run = 0; run < 2; ++run) {
    MetricsRegistry::Global().Reset();
    Cluster cluster(99);
    FsLoadWorkload workload(cluster, SmallLoadOptions(11));
    cluster.RunUntil(9000);
    reports[run] = workload.report();
    windows[run] = workload.goodput_windows();
  }
  EXPECT_GT(reports[0].arrivals, 100u);
  EXPECT_GT(reports[0].succeeded, 100u);
  EXPECT_EQ(reports[0].arrivals, reports[1].arrivals);
  EXPECT_EQ(reports[0].issued, reports[1].issued);
  EXPECT_EQ(reports[0].succeeded, reports[1].succeeded);
  EXPECT_EQ(reports[0].failed, reports[1].failed);
  EXPECT_EQ(reports[0].retries, reports[1].retries);
  EXPECT_EQ(windows[0], windows[1]) << "goodput series must be seed-deterministic";

  MetricsRegistry::Global().Reset();
  Cluster cluster(99);
  FsLoadWorkload other(cluster, SmallLoadOptions(12));
  cluster.RunUntil(9000);
  EXPECT_NE(other.report().arrivals, reports[0].arrivals)
      << "different seeds should offer different traces";
}

TEST(FsLoadWorkloadTest, BurstFactorOneKeepsTheArrivalTraceByteIdentical) {
  ArrivalOptions base;
  base.seed = 21;
  base.horizon_ms = 5000;
  base.mean_interarrival_ms = 5;
  ArrivalOptions with_burst = base;
  with_burst.burst_factor = 1.0;  // a no-op burst window must not perturb the trace
  with_burst.burst_start_ms = 1000;
  with_burst.burst_end_ms = 3000;
  ArrivalGenerator a(base);
  ArrivalGenerator b(with_burst);
  EXPECT_EQ(FormatArrivalTrace(a), FormatArrivalTrace(b));

  ArrivalOptions hot = base;
  hot.burst_factor = 3.0;
  hot.burst_start_ms = 1000;
  hot.burst_end_ms = 3000;
  ArrivalGenerator c(hot);
  EXPECT_GT(c.generated() + 1, 0u);  // silence unused warning paths
  uint64_t base_n = 0, hot_n = 0;
  OpenLoopArrival arrival;
  ArrivalGenerator a2(base);
  while (a2.Next(&arrival)) {
    ++base_n;
  }
  while (c.Next(&arrival)) {
    ++hot_n;
  }
  EXPECT_GT(hot_n, base_n + base_n / 2) << "a 3x burst over 40% of the horizon should "
                                           "materially raise the arrival count";
}

TEST(FsLoadWorkloadTest, SloReportCarriesShedRejectedRetryCounters) {
  MetricsRegistry::Global().Reset();
  Cluster cluster(8);
  FsLoadOptions opts = SmallLoadOptions(31);
  opts.with_admission = true;
  opts.gateway.tenant_quota = 1;  // near-everything sheds: exercise the whole counter path
  opts.gateway.window_ms = 1000;
  opts.retry_budget_cap = 4;
  FsLoadWorkload workload(cluster, opts);
  cluster.RunUntil(9000);

  EXPECT_GT(workload.report().shed, 0u);
  EXPECT_GT(workload.report().retries, 0u);

  SloReport slo = BuildSloReport(MetricsRegistry::Global());
  ASSERT_GE(slo.tenants.size(), 1u);
  uint64_t total_shed = 0, total_rejected = 0, total_retries = 0;
  for (const TenantSlo& t : slo.tenants) {
    total_shed += t.shed;
    total_rejected += t.rejected;
    total_retries += t.retries;
  }
  EXPECT_GT(total_shed, 0u) << "gateway-side shed counters must reach the SLO report";
  EXPECT_GT(total_rejected, 0u) << "client-side rejection counters must reach the report";
  EXPECT_GT(total_retries, 0u);
  EXPECT_NE(slo.ToJson().find("\"shed\""), std::string::npos);
  EXPECT_NE(slo.ToText().find("shed="), std::string::npos);
}

// --- goodput-recovery invariant --------------------------------------------------------

TEST(GoodputRecoveryCheckerTest, FlagsCollapseAndVacuousBaseline) {
  Cluster cluster(1);
  auto check = [&cluster](double pre, double post, bool final_check) {
    GoodputRecoveryChecker checker(
        [pre, post](double t0, double) { return t0 < 5000 ? pre : post; },
        /*pre_t0_ms=*/0, /*pre_t1_ms=*/5000, /*post_t0_ms=*/10000, /*post_t1_ms=*/15000,
        /*min_ratio=*/0.9);
    std::vector<std::string> out;
    checker.Check(cluster, final_check, &out);
    return out;
  };

  EXPECT_TRUE(check(100, 95, true).empty()) << "recovered goodput must pass";
  EXPECT_FALSE(check(100, 50, true).empty()) << "collapsed goodput must be flagged";
  EXPECT_FALSE(check(0, 0, true).empty()) << "a zero baseline is never a vacuous pass";
  EXPECT_TRUE(check(100, 0, false).empty()) << "recovery is a final-only check";
}

// --- frozen admission program texts ----------------------------------------------------
//
// The composed admission programs are byte-identical to the goldens (regenerable with
// `olglint --dump nn_admission|jt_admission`); olglint keeps both diagnostic-clean at
// ctest level. A drift here means the admission semantics changed without the golden.

TEST(AdmissionGoldenTest, GatewayProgramMatchesGolden) {
  Program program = BoomFsGatewayProgram();
  EXPECT_EQ(program.ToString(), ReadGolden("nn_admission.olg"));
}

TEST(AdmissionGoldenTest, JtAdmissionProgramMatchesGolden) {
  JtProgramOptions opts;
  opts.policy = MrPolicy::kFifo;
  opts.with_admission = true;
  Program program = BoomMrJtProgram(opts);
  EXPECT_EQ(program.ToString(), ReadGolden("jt_admission.olg"));
}

// --- the chaos scenario ----------------------------------------------------------------

TEST(OverloadScenarioTest, RegisteredWithRetryStormBugVariant) {
  std::vector<std::string> names = ScenarioNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "overload"), names.end());
  EXPECT_NE(MakeScenario("overload"), nullptr);
  ScenarioOptions bug;
  bug.bug = "retry-storm";
  EXPECT_NE(MakeScenario("overload", bug), nullptr);
  ScenarioOptions typo;
  typo.bug = "retry-strom";
  EXPECT_EQ(MakeScenario("overload", typo), nullptr) << "unknown bugs must be rejected";
  EXPECT_EQ(ScenarioBugNames("overload"), std::vector<std::string>{"retry-storm"});
}

// Admission + retry budgets: the burst (and any gray window the seed adds) clears and
// goodput recovers — the sweep must be green.
TEST(OverloadScenarioTest, AdmissionRecoversGoodputAcrossSeeds) {
  MetricsRegistry::Global().Reset();
  ExplorerOptions opts;
  opts.scenario = "overload";
  opts.seeds = 2;
  opts.shrink = false;
  opts.timeline = false;
  ExplorerReport report = ExploreSeeds(opts);
  EXPECT_EQ(report.failures, 0) << report.text;
}

// The retry storm: no shedding, no budget, no retry-after — the explorer must catch the
// sustained collapse and ddmin must shrink the fault schedule away entirely (the
// workload's own burst is the whole trigger).
TEST(OverloadScenarioTest, RetryStormIsCaughtAndShrunkToMinimalSchedule) {
  MetricsRegistry::Global().Reset();
  ExplorerOptions opts;
  opts.scenario = "overload";
  opts.bug = "retry-storm";
  opts.seeds = 1;
  opts.seed0 = 3;  // this seed's schedule carries a gray window for the shrinker to drop
  opts.timeline = false;
  ExplorerReport report = ExploreSeeds(opts);
  ASSERT_EQ(report.failures, 1) << report.text;
  const SeedOutcome& outcome = report.outcomes[0];
  ASSERT_FALSE(outcome.violations.empty());
  EXPECT_NE(outcome.violations[0].find("goodput stayed collapsed"), std::string::npos)
      << outcome.violations[0];
  EXPECT_TRUE(outcome.shrunk.events.empty())
      << "the workload alone reproduces the storm; every fault event must shrink away";
}

}  // namespace
}  // namespace boom
