// Tests for the partitioned NameNode (paper rev F3) and the monitoring metaprogramming
// rewrites (rev F4).

#include <gtest/gtest.h>

#include <set>

#include "src/boomfs/partition.h"
#include "src/boomfs/nn_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

// --- partitioned namespace ---

class PartitionTest : public ::testing::TestWithParam<int> {
 protected:
  PartitionTest() : cluster_(31337) {
    PartitionedFsOptions opts;
    opts.num_partitions = GetParam();
    opts.num_datanodes = 4;
    opts.chunk_size = 32;
    handles_ = SetupPartitionedFs(cluster_, opts);
    fs_ = std::make_unique<SyncFs>(cluster_, handles_.clients[0]);
    cluster_.RunUntil(1500);
  }

  // Directory creation in partitioned mode: dual-homed (canonical entry at the parent's
  // partition plus a child-serving copy at the directory's own partition) — the old
  // every-partition MkdirAll broadcast is gone.
  bool MkdirSync(const std::string& path) {
    bool done = false;
    bool ok = false;
    handles_.clients[0]->Mkdir(cluster_, path, [&done, &ok](bool r, const Value&) {
      ok = r;
      done = true;
    });
    double deadline = cluster_.now() + 30000;
    while (!done && cluster_.now() < deadline) {
      cluster_.RunUntil(cluster_.now() + 1.0);
    }
    return done && ok;
  }

  Cluster cluster_;
  PartitionedFsHandles handles_;
  std::unique_ptr<SyncFs> fs_;
};

TEST_P(PartitionTest, FilesSpreadAcrossPartitionsAndRoundTrip) {
  ASSERT_TRUE(MkdirSync("/data"));
  ASSERT_TRUE(MkdirSync("/logs"));
  ASSERT_TRUE(MkdirSync("/home"));
  for (int i = 0; i < 6; ++i) {
    std::string dir = (i % 3 == 0) ? "/data" : (i % 3 == 1 ? "/logs" : "/home");
    std::string path = dir + "/f" + std::to_string(i);
    ASSERT_TRUE(fs_->WriteFile(path, "contents-" + std::to_string(i))) << path;
  }
  for (int i = 0; i < 6; ++i) {
    std::string dir = (i % 3 == 0) ? "/data" : (i % 3 == 1 ? "/logs" : "/home");
    std::string data;
    ASSERT_TRUE(fs_->ReadFile(dir + "/f" + std::to_string(i), &data));
    EXPECT_EQ(data, "contents-" + std::to_string(i));
  }
}

TEST_P(PartitionTest, LsSeesAllChildrenOfADirectory) {
  ASSERT_TRUE(MkdirSync("/d"));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs_->CreateFile("/d/f" + std::to_string(i)));
  }
  std::vector<std::string> names;
  ASSERT_TRUE(fs_->Ls("/d", &names));
  EXPECT_EQ(names.size(), 8u);
}

TEST_P(PartitionTest, ExistsAndRmRouteCorrectly) {
  ASSERT_TRUE(MkdirSync("/x"));
  ASSERT_TRUE(fs_->CreateFile("/x/f"));
  EXPECT_TRUE(fs_->Exists("/x/f"));
  EXPECT_TRUE(fs_->Rm("/x/f"));
  EXPECT_FALSE(fs_->Exists("/x/f"));
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(PartitionRoutingTest, DeterministicAndDirnameBased) {
  std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(RouteByPath(parts, "create", "/d/f1"), RouteByPath(parts, "exists", "/d/f2"));
  EXPECT_EQ(RouteByPath(parts, "ls", "/d"), RouteByPath(parts, "create", "/d/f1"));
  EXPECT_EQ(RouteByPath({"only"}, "create", "/any"), "only");
}

// --- monitoring metaprogramming ---

TEST(MonitorTest, TracingProgramRecordsInsertions) {
  EngineOptions eopts;
  eopts.address = "n";
  Engine engine(eopts);
  ASSERT_TRUE(engine.InstallSource(R"(
    program app;
    event req(X);
    table kv(K, V) keys(0);
    kv(K, V) :- req(K), V := K * 10;
  )").ok());

  Result<Program> parsed = ParseProgram(R"(
    program app;
    event req(X);
    table kv(K, V) keys(0);
  )");
  ASSERT_TRUE(parsed.ok());
  Program tracing = MakeTracingProgram(*parsed);
  ASSERT_TRUE(engine.Install(tracing).ok()) << "tracing program install failed";

  engine.Tick(0);
  ASSERT_TRUE(engine.Enqueue("req", Tuple{Value(1)}).ok());
  engine.Tick(5);
  ASSERT_TRUE(engine.Enqueue("req", Tuple{Value(2)}).ok());
  engine.Tick(9);

  const Table& trace_kv = engine.catalog().Get("trace_kv");
  EXPECT_EQ(trace_kv.size(), 2u);
  const Table& trace_req = engine.catalog().Get("trace_req");
  EXPECT_EQ(trace_req.size(), 2u);
  // Count rollup.
  const Tuple* cnt = engine.catalog().Get("trace_cnt_kv").LookupByKey(Tuple{Value(1)});
  ASSERT_NE(cnt, nullptr);
  EXPECT_EQ((*cnt)[1], Value(2));
}

TEST(MonitorTest, TracingSelectsRequestedTablesOnly) {
  Result<Program> parsed = ParseProgram(R"(
    program app;
    table a(X);
    table b(X);
  )");
  ASSERT_TRUE(parsed.ok());
  TracingOptions opts;
  opts.tables = {"b"};
  Program tracing = MakeTracingProgram(*parsed, opts);
  std::set<std::string> names;
  for (const TableDef& def : tracing.tables) {
    names.insert(def.name);
  }
  EXPECT_TRUE(names.count("trace_b"));
  EXPECT_FALSE(names.count("trace_a"));
}

TEST(MonitorTest, InvariantViolationDetected) {
  EngineOptions eopts;
  eopts.address = "n";
  Engine engine(eopts);
  // A tiny program with a planted bug: inserting an orphan inode.
  ASSERT_TRUE(engine.InstallSource(R"(
    program fsmini;
    table file(FileId, ParentId, FName, IsDir) keys(0);
    table fqpath(Path, FileId);
    table fchunk(ChunkId, FileId) keys(0);
    table hb_chunk(Dn, ChunkId);
    file(0, -1, "", true);
  )").ok());
  std::vector<std::string> violations;
  ASSERT_TRUE(InstallInvariants(engine, BoomFsInvariantProgram(3), &violations).ok());
  engine.Tick(0);
  EXPECT_TRUE(violations.empty());
  // Orphan: parent 999 does not exist.
  ASSERT_TRUE(engine.Enqueue("file", Tuple{Value(7), Value(999), Value("x"), Value(false)})
                  .ok());
  engine.Tick(1);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("orphan_inode"), std::string::npos);
}

TEST(MonitorTest, CleanBoomFsRaisesNoViolations) {
  EngineOptions eopts;
  eopts.address = "nn";
  Engine engine(eopts);
  ASSERT_TRUE(engine.Install(BoomFsNnProgram()).ok());
  std::vector<std::string> violations;
  ASSERT_TRUE(InstallInvariants(engine, BoomFsInvariantProgram(3), &violations).ok());
  engine.Tick(0);
  // Drive a few namespace ops directly.
  auto request = [&engine](int64_t id, const std::string& cmd, const std::string& path) {
    ASSERT_TRUE(engine
                    .Enqueue("ns_request",
                             Tuple{Value("nn"), Value(id), Value("cl"), Value(cmd),
                                   Value(path), Value()})
                    .ok());
  };
  request(1, "mkdir", "/a");
  engine.Tick(1);
  engine.Tick(1);
  request(2, "mkdir", "/a/b");
  engine.Tick(2);
  engine.Tick(2);
  request(3, "create", "/a/b/f");
  engine.Tick(3);
  engine.Tick(3);
  EXPECT_TRUE(violations.empty()) << violations[0];
  // Sanity: metadata actually exists.
  bool found = false;
  engine.catalog().Get("fqpath").ForEach([&found](const Tuple& row) {
    if (row[0] == Value("/a/b/f")) {
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace boom
