// Tests for the open-loop workload generator library (src/workload): seed determinism of
// the arrival trace, Zipf rank-frequency sanity, the diurnal rate integral, tenant-mix
// convergence, and the O(batch) open-loop driver delivering arrivals at exact times.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/open_loop.h"
#include "src/sim/random.h"
#include "src/workload/arrivals.h"
#include "src/workload/skew.h"

namespace boom {
namespace {

// --- determinism -----------------------------------------------------------------------

// The contract the whole experiment stack leans on: the same options produce a
// byte-identical arrival trace, so a seed names the entire offered load.
TEST(ArrivalsTest, TraceIsByteIdenticalPerSeed) {
  ArrivalOptions options;
  options.seed = 42;
  options.horizon_ms = 5000;
  options.mean_interarrival_ms = 20;
  options.num_clients = 1000000;
  options.tenant_weights = {0.6, 0.3, 0.1};

  ArrivalGenerator a(options);
  ArrivalGenerator b(options);
  std::string trace_a = FormatArrivalTrace(a);
  std::string trace_b = FormatArrivalTrace(b);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);

  ArrivalOptions other = options;
  other.seed = 43;
  ArrivalGenerator c(other);
  EXPECT_NE(trace_a, FormatArrivalTrace(c)) << "different seeds produced the same trace";
}

TEST(ArrivalsTest, TimesAreNondecreasingAndBounded) {
  ArrivalOptions options;
  options.seed = 7;
  options.horizon_ms = 8000;
  options.mean_interarrival_ms = 10;
  ArrivalGenerator gen(options);
  OpenLoopArrival arrival;
  double last = 0;
  while (gen.Next(&arrival)) {
    EXPECT_GE(arrival.time_ms, last);
    EXPECT_LT(arrival.time_ms, options.horizon_ms);
    last = arrival.time_ms;
  }
  EXPECT_GT(gen.generated(), 100u);
}

// --- Zipf ------------------------------------------------------------------------------

// Rejection-inversion must actually produce Zipf frequencies: low ranks dominate, the
// empirical frequency of the head ranks tracks the analytic probability, and every draw
// stays in [1, n] even for a population in the millions.
TEST(SkewTest, ZipfRankFrequencySanity) {
  const uint64_t n = 1000000;
  const double s = 1.1;
  ZipfSampler zipf(n, s);
  Rng rng(99);
  const int kDraws = 200000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t rank = zipf.Sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, n);
    if (rank <= 8) {
      ++counts[rank];
    }
  }
  // Head ranks are sorted by frequency (allow adjacent noise only beyond rank 4: rank k
  // beats rank k+2 always).
  for (uint64_t k = 1; k + 2 <= 8; ++k) {
    EXPECT_GT(counts[k], counts[k + 2]) << "rank " << k << " vs " << k + 2;
  }
  // Rank 1's share matches the analytic Zipf probability within 10% relative error.
  double expect = zipf.Probability(1);
  double got = static_cast<double>(counts[1]) / kDraws;
  EXPECT_NEAR(got, expect, 0.1 * expect);
  // The analytic pmf is a distribution: head + tail bound sums to ~1.
  double head = 0;
  for (uint64_t k = 1; k <= 1000; ++k) {
    head += zipf.Probability(k);
  }
  EXPECT_GT(head, 0.5);
  EXPECT_LT(head, 1.0);
}

TEST(SkewTest, HotspotSamplerConcentrates) {
  HotspotSampler hot(100000, 10, 0.9);
  Rng rng(5);
  int in_hot = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (hot.Sample(rng) < 10) {
      ++in_hot;
    }
  }
  double frac = static_cast<double>(in_hot) / kDraws;
  EXPECT_NEAR(frac, 0.9, 0.02);
}

// --- diurnal modulation ----------------------------------------------------------------

// Thinning preserves the mean: over whole periods the diurnal factor integrates to 1, so
// the arrival count matches horizon / mean_interarrival; and the peak half-period must
// carry measurably more traffic than the trough half.
TEST(ArrivalsTest, DiurnalIntegralAndShape) {
  ArrivalOptions options;
  options.seed = 11;
  options.horizon_ms = 40000;  // two full periods
  options.mean_interarrival_ms = 5;
  options.diurnal_amplitude = 0.8;
  options.diurnal_period_ms = 20000;
  ArrivalGenerator gen(options);

  uint64_t total = 0;
  uint64_t peak_half = 0;    // sin > 0: first half of each period
  uint64_t trough_half = 0;  // sin < 0: second half
  OpenLoopArrival arrival;
  while (gen.Next(&arrival)) {
    ++total;
    double phase = std::fmod(arrival.time_ms, options.diurnal_period_ms);
    if (phase < options.diurnal_period_ms / 2) {
      ++peak_half;
    } else {
      ++trough_half;
    }
  }
  double expected = options.horizon_ms / options.mean_interarrival_ms;  // 8000
  EXPECT_NEAR(static_cast<double>(total), expected, 0.05 * expected);
  // With amplitude 0.8, the halves carry (1 + 2*0.8/pi) vs (1 - 2*0.8/pi) of the base
  // rate: a ~3x ratio. Require a conservative 2x.
  EXPECT_GT(peak_half, 2 * trough_half);

  // The analytic factor matches the curve the generator thins against.
  EXPECT_NEAR(DiurnalFactor(options, options.diurnal_period_ms / 4), 1.8, 1e-9);
  EXPECT_NEAR(DiurnalFactor(options, 3 * options.diurnal_period_ms / 4), 0.2, 1e-9);
}

// --- tenant mix ------------------------------------------------------------------------

TEST(ArrivalsTest, TenantMixConvergesToWeights) {
  ArrivalOptions options;
  options.seed = 3;
  options.horizon_ms = 60000;
  options.mean_interarrival_ms = 5;
  // Flatten the skew for this test: under s=1.1 the single head client carries ~9% of all
  // traffic, so whichever tenant it hashes to is permanently over-weight. Convergence to
  // the weights is a statement about the population, testable only when no client
  // dominates.
  options.zipf_s = 0.5;
  options.tenant_weights = {0.6, 0.3, 0.1};
  ArrivalGenerator gen(options);
  std::vector<uint64_t> per_tenant(3, 0);
  uint64_t total = 0;
  OpenLoopArrival arrival;
  std::map<uint64_t, int> client_tenant;
  while (gen.Next(&arrival)) {
    ASSERT_GE(arrival.tenant, 0);
    ASSERT_LT(arrival.tenant, 3);
    ++per_tenant[static_cast<size_t>(arrival.tenant)];
    ++total;
    // A client's tenant is a stable function of its id.
    auto it = client_tenant.find(arrival.client_id);
    if (it != client_tenant.end()) {
      EXPECT_EQ(it->second, arrival.tenant) << "client " << arrival.client_id;
    } else {
      client_tenant[arrival.client_id] = arrival.tenant;
    }
  }
  ASSERT_GT(total, 5000u);
  for (size_t t = 0; t < 3; ++t) {
    double frac = static_cast<double>(per_tenant[t]) / static_cast<double>(total);
    EXPECT_NEAR(frac, options.tenant_weights[t], 0.08) << "tenant " << t;
  }
}

// --- the open-loop driver --------------------------------------------------------------

// Every generated arrival is delivered exactly once, at exactly its generated virtual
// time, regardless of batch size — the driver's one-in-flight-event batching is pure
// plumbing, invisible to the workload.
TEST(OpenLoopTest, DriverDeliversEveryArrivalAtItsTime) {
  ArrivalOptions options;
  options.seed = 21;
  options.horizon_ms = 10000;
  options.mean_interarrival_ms = 25;
  ArrivalGenerator reference(options);
  std::vector<OpenLoopArrival> expected;
  OpenLoopArrival arrival;
  while (reference.Next(&arrival)) {
    expected.push_back(arrival);
  }
  ASSERT_GT(expected.size(), 100u);

  for (int batch : {1, 64}) {
    Cluster cluster(1);
    ArrivalGenerator gen(options);
    std::vector<OpenLoopArrival> delivered;
    OpenLoopOptions loop;
    loop.batch = batch;
    DriveOpenLoop(
        cluster, [&gen](OpenLoopArrival* out) { return gen.Next(out); },
        [&cluster, &delivered](const OpenLoopArrival& a) {
          EXPECT_DOUBLE_EQ(cluster.now(), a.time_ms);
          delivered.push_back(a);
        },
        loop);
    cluster.RunUntil(options.horizon_ms + 1000);
    ASSERT_EQ(delivered.size(), expected.size()) << "batch=" << batch;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(delivered[i].client_id, expected[i].client_id);
      EXPECT_DOUBLE_EQ(delivered[i].time_ms, expected[i].time_ms);
    }
  }
}

}  // namespace
}  // namespace boom
