// Unit tests for Module / ProgramBuilder: typed parameter binding (the replacement for
// $TOKEN string substitution), module merging with cross-module conflict detection, extern
// satisfaction, and the Build()-time analyzer gate.

#include <gtest/gtest.h>

#include <string>

#include "src/overlog/engine.h"
#include "src/overlog/module.h"

namespace boom {
namespace {

// A small parameterized module, shaped like the real ones: an int threshold and a double
// timer period flowing into the text as lowercase identifiers.
Module ThresholdModule() {
  Module m;
  m.name = "threshold";
  m.source = R"olg(
    table sample(Id, N) keys(0);
    table alarm(Id) keys(0);
    timer sweep(sweep_ms);
    a1 alarm(Id) :- sweep(_), sample(Id, N), N > cap;
    watch alarm;
  )olg";
  m.params = {ModuleParam::Required("cap", ValueKind::kInt),
              ModuleParam::Optional("sweep_ms", Value(100.0))};
  return m;
}

TEST(ModuleTest, ParamsBindIntoProgramText) {
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(ThresholdModule(), {{"cap", 7}}).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->name, "demo");
  ASSERT_EQ(program->rules.size(), 1u);
  // The bound constant is folded into the rule body — no trace of the parameter name.
  EXPECT_NE(program->rules[0].ToString().find("7"), std::string::npos);
  EXPECT_EQ(program->ToString().find("cap"), std::string::npos);
  ASSERT_EQ(program->timers.size(), 1u);
  EXPECT_EQ(program->timers[0].period_ms, 100.0);  // optional default applied
}

TEST(ModuleTest, OptionalParamOverride) {
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(ThresholdModule(), {{"cap", 7}, {"sweep_ms", 250.0}}).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->timers[0].period_ms, 250.0);
}

TEST(ModuleTest, UnknownBindingRejected) {
  ProgramBuilder builder("demo");
  Status s = builder.Add(ThresholdModule(), {{"cap", 7}, {"typo", 1}});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("typo"), std::string::npos);
  EXPECT_NE(s.message().find("threshold"), std::string::npos);  // names the module
}

TEST(ModuleTest, MissingRequiredRejected) {
  ProgramBuilder builder("demo");
  Status s = builder.Add(ThresholdModule(), {});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cap"), std::string::npos);
}

TEST(ModuleTest, KindMismatchRejected) {
  ProgramBuilder builder("demo");
  Status s = builder.Add(ThresholdModule(), {{"cap", Value("not-a-number")}});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("wants int"), std::string::npos) << s.message();
}

TEST(ModuleTest, IntCoercesToDoubleParamOnly) {
  // Callers write {"sweep_ms", 250} for a double timeout; that must work...
  ProgramBuilder ok_builder("demo");
  EXPECT_TRUE(ok_builder.Add(ThresholdModule(), {{"cap", 7}, {"sweep_ms", 250}}).ok());
  Result<Program> program = ok_builder.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->timers[0].period_ms, 250.0);

  // ...but a double does NOT silently truncate into an int parameter.
  ProgramBuilder bad_builder("demo");
  Status s = bad_builder.Add(ThresholdModule(), {{"cap", 7.5}});
  EXPECT_FALSE(s.ok());
}

TEST(ModuleTest, RuleNameCollisionNamesBothModules) {
  Module first{"mod_one", "table a(X);\nr1 a(X) :- a(X);\nwatch a;", {}};
  Module second{"mod_two", "r1 a(X) :- a(X);", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(first).ok());
  Status s = builder.Add(second);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("mod_one"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("mod_two"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("r1"), std::string::npos) << s.message();
}

TEST(ModuleTest, TimerCollisionAcrossModulesRejected) {
  Module first{"mod_one", "timer tk(100);\ntable s(X);\nr1 s(X) :- tk(X);\nwatch s;", {}};
  Module second{"mod_two", "timer tk(200);\nr2 s(X) :- tk(X);", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(first).ok());
  Status s = builder.Add(second);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("tk"), std::string::npos);
}

TEST(ModuleTest, IdenticalRedeclarationCollapses) {
  Module first{"mod_one", "table shared(A, B) keys(0);\nr1 shared(A, B) :- shared(A, B);",
               {}};
  Module second{"mod_two",
                "table shared(A, B) keys(0);\nr2 shared(B, A) :- shared(A, B);\nwatch shared;",
                {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(first).ok());
  ASSERT_TRUE(builder.Add(second).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  size_t count = 0;
  for (const TableDef& def : program->tables) {
    count += def.name == "shared" ? 1 : 0;
  }
  EXPECT_EQ(count, 1u);
}

TEST(ModuleTest, ConflictingRedeclarationRejected) {
  Module first{"mod_one", "table shared(A, B) keys(0);", {}};
  Module second{"mod_two", "table shared(A, B, C) keys(0);", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(first).ok());
  Status s = builder.Add(second);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("shared"), std::string::npos);
}

TEST(ModuleTest, ExternSatisfiedByLaterDeclaration) {
  Module borrower{"borrower",
                  "extern table owned(A, B) keys(0);\ntable view(A);\n"
                  "v1 view(A) :- owned(A, _);\nwatch view;",
                  {}};
  Module owner{"owner", "table owned(A, B) keys(0);\no1 owned(A, B) :- owned(A, B);", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(borrower).ok());
  ASSERT_TRUE(builder.Add(owner).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // The pending extern was satisfied: only the real declaration survives.
  EXPECT_TRUE(program->externs.empty());
  size_t count = 0;
  for (const TableDef& def : program->tables) {
    count += def.name == "owned" ? 1 : 0;
  }
  EXPECT_EQ(count, 1u);
}

TEST(ModuleTest, ExternSatisfiedByEarlierDeclaration) {
  Module owner{"owner", "table owned(A, B) keys(0);\no1 owned(A, B) :- owned(A, B);", {}};
  Module borrower{"borrower",
                  "extern table owned(A, B) keys(0);\ntable view(A);\n"
                  "v1 view(A) :- owned(A, _);\nwatch view;",
                  {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(owner).ok());
  ASSERT_TRUE(builder.Add(borrower).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->externs.empty());
}

TEST(ModuleTest, ExternSchemaConflictRejected) {
  Module borrower{"borrower", "extern table owned(A, B) keys(0);", {}};
  Module owner{"owner", "table owned(A, B, C) keys(0);", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(borrower).ok());
  Status s = builder.Add(owner);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("owned"), std::string::npos);
}

TEST(ModuleTest, UnsatisfiedExternSurvivesToInstallTime) {
  // An extern nothing in the builder satisfies lands in Program::externs; the engine then
  // verifies (or creates) it at install, which is how cross-program stacks compose.
  Module borrower{"borrower",
                  "extern table owned(A, B) keys(0);\ntable view(A);\n"
                  "v1 view(A) :- owned(A, _);\nwatch view;",
                  {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(borrower).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->externs.size(), 1u);
  EXPECT_EQ(program->externs[0].name, "owned");

  // Install on an engine that already has a CONFLICTING owned -> install must fail.
  Engine engine(EngineOptions{});
  TableDef conflicting;
  conflicting.name = "owned";
  conflicting.columns = {"A"};
  ASSERT_TRUE(engine.catalog().Declare(conflicting).ok());
  EXPECT_FALSE(engine.Install(*program).ok());

  // On a fresh engine the extern creates the table and install succeeds.
  Engine fresh(EngineOptions{});
  EXPECT_TRUE(fresh.Install(*program).ok());
  EXPECT_TRUE(fresh.catalog().Has("owned"));
}

TEST(ModuleTest, AddProgramTextAdoptsFirstName) {
  ProgramBuilder builder("");
  ASSERT_TRUE(builder
                  .AddProgramText("program from_file;\ntable t(A);\nt(1);\nwatch t;",
                                  "file1.olg")
                  .ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->name, "from_file");
}

TEST(ModuleTest, AddProgramTextParseErrorNamesLabel) {
  ProgramBuilder builder("");
  Status s = builder.AddProgramText("program broken;\ntable t(A", "file1.olg");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("file1.olg"), std::string::npos) << s.message();
}

TEST(ModuleTest, BuildFailsWithFullReport) {
  Module broken{"broken",
                "table a(X);\ntable sink(X, Y);\nevent orphan(E);\n"
                "r1 sink(X, Nope) :- a(X);\nwatch sink;",
                {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(broken).ok());
  AnalyzerReport report;
  Result<Program> program = builder.Build(&report);
  ASSERT_FALSE(program.ok());
  EXPECT_GE(report.num_errors(), 2u) << report.ToString();  // unbound head + no producer
  // The error message carries the whole report, not just the first problem.
  EXPECT_NE(program.status().message().find("unbound-head-var"), std::string::npos);
  EXPECT_NE(program.status().message().find("no-producer"), std::string::npos);
}

TEST(ModuleTest, HostCouplingStampedIntoProgram) {
  Module m{"m",
           "event from_host(A);\ntable to_host(A);\nh1 to_host(A) :- from_host(A);", {}};
  ProgramBuilder builder("demo");
  builder.WithExternalInputs({"from_host"});
  builder.WithExternalOutputs({"to_host"});
  ASSERT_TRUE(builder.Add(m).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // The contract rides with the Program, so the engine's advisory analyzer sees the same
  // context the strict pass did and reports no warnings either.
  ASSERT_EQ(program->external_inputs.size(), 1u);
  EXPECT_EQ(program->external_inputs[0], "from_host");
  ASSERT_EQ(program->external_outputs.size(), 1u);
  EXPECT_EQ(program->external_outputs[0], "to_host");

  Engine engine(EngineOptions{});
  ASSERT_TRUE(engine.Install(*program).ok());
  ASSERT_EQ(engine.analyzer_reports().size(), 1u);
  EXPECT_EQ(engine.analyzer_reports()[0].diagnostics.size(), 0u)
      << engine.analyzer_reports()[0].ToString();
}

TEST(ModuleTest, AddFactAndWatch) {
  Module m{"m", "table t(A) keys(0);\nr1 t(A) :- t(A);", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(m).ok());
  builder.AddFact("t", Tuple{Value(1)});
  builder.AddFact("t", Tuple{Value(2)});
  builder.AddWatch("t");
  builder.AddWatch("t");  // deduped
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->facts.size(), 2u);
  EXPECT_EQ(program->watches.size(), 1u);
}

TEST(ModuleTest, FactForUndeclaredTableFailsBuild) {
  ProgramBuilder builder("demo");
  builder.AddFact("nowhere", Tuple{Value(1)});
  Result<Program> program = builder.Build();
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("nowhere"), std::string::npos);
}

// Module composition preserves rule order exactly (addition order): tick-level evaluation
// order is observable via the dirty-rule scheduler, so this is part of the contract.
TEST(ModuleTest, RuleOrderIsModuleAdditionOrder) {
  Module first{"mod_one", "table a(X) keys(0);\nr1 a(X) :- a(X);\nr2 a(X) :- a(X), X > 0;",
               {}};
  Module second{"mod_two", "r3 a(X) :- a(X), X < 0;\nwatch a;", {}};
  ProgramBuilder builder("demo");
  ASSERT_TRUE(builder.Add(first).ok());
  ASSERT_TRUE(builder.Add(second).ok());
  Result<Program> program = builder.Build();
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->rules.size(), 3u);
  EXPECT_EQ(program->rules[0].name, "r1");
  EXPECT_EQ(program->rules[1].name, "r2");
  EXPECT_EQ(program->rules[2].name, "r3");
}

}  // namespace
}  // namespace boom
