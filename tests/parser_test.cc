#include <gtest/gtest.h>

#include "src/overlog/parser.h"

namespace boom {
namespace {

Program MustParse(std::string_view src, ParserOptions opts = {}) {
  Result<Program> p = ParseProgram(src, opts);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(ParserTest, TableAndEventDecls) {
  Program p = MustParse(R"(
    program test;
    table file(FileId, ParentId, Name, IsDir) keys(0);
    event request(Addr, ReqId);
  )");
  ASSERT_EQ(p.tables.size(), 2u);
  EXPECT_EQ(p.tables[0].name, "file");
  EXPECT_EQ(p.tables[0].arity(), 4u);
  EXPECT_EQ(p.tables[0].key_columns, (std::vector<size_t>{0}));
  EXPECT_EQ(p.tables[1].kind, TableKind::kEvent);
}

TEST(ParserTest, KeyIndexOutOfRangeRejected) {
  Result<Program> p = ParseProgram("program t; table x(A) keys(3);");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, EventKeysRejected) {
  Result<Program> p = ParseProgram("program t; event x(A) keys(0);");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, SimpleRule) {
  Program p = MustParse(R"(
    program test;
    table link(From, To);
    table reach(From, To);
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
  )");
  ASSERT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.rules[0].name, "r1");
  EXPECT_EQ(p.rules[1].body.size(), 2u);
}

TEST(ParserTest, UnlabeledRuleGetsName) {
  Program p = MustParse(R"(
    program test;
    table a(X);
    table b(X);
    b(X) :- a(X);
  )");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_FALSE(p.rules[0].name.empty());
}

// Duplicate rule names are a hard parse error: profiling, tracing, and the dirty-rule
// scheduler all key rules by (program, name), so last-writer-wins would misattribute.
TEST(ParserTest, DuplicateRuleNameRejected) {
  Result<Program> p = ParseProgram(R"(
    program test;
    table a(X);
    table b(X);
    r1 b(X) :- a(X);
    r1 b(X) :- a(X), X > 0;
  )");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("duplicate rule name 'r1'"), std::string::npos)
      << p.status().message();
  // The error pinpoints both definitions.
  EXPECT_NE(p.status().message().find("first defined at line"), std::string::npos);
}

TEST(ParserTest, Facts) {
  Program p = MustParse(R"(
    program test;
    table file(Id, Parent, Name);
    file(0, -1, "root");
    file(1, 0, "tmp");
  )");
  ASSERT_EQ(p.facts.size(), 2u);
  EXPECT_EQ(p.facts[0].tuple[1], Value(-1));
  EXPECT_EQ(p.facts[1].tuple[2], Value("tmp"));
}

TEST(ParserTest, NonConstFactRejected) {
  Result<Program> p = ParseProgram("program t; table a(X); a(Y);");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, DeleteRule) {
  Program p = MustParse(R"(
    program test;
    table file(Id);
    event rm(Id);
    delete file(F) :- rm(F), file(F);
  )");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_TRUE(p.rules[0].is_delete);
}

TEST(ParserTest, LabeledDeleteRule) {
  Program p = MustParse(R"(
    program test;
    table file(Id);
    event rm(Id);
    d1 delete file(F) :- rm(F), file(F);
  )");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_TRUE(p.rules[0].is_delete);
  EXPECT_EQ(p.rules[0].name, "d1");
}

TEST(ParserTest, Negation) {
  Program p = MustParse(R"(
    program test;
    table a(X);
    table b(X);
    table c(X);
    c(X) :- a(X), notin b(X);
  )");
  ASSERT_EQ(p.rules[0].body.size(), 2u);
  EXPECT_TRUE(p.rules[0].body[1].atom.negated);
}

TEST(ParserTest, AssignmentsAndConditions) {
  Program p = MustParse(R"(
    program test;
    table a(X);
    table b(X, Y);
    b(X, Y) :- a(X), X > 2, Y := X * 10 + 1;
  )");
  const Rule& r = p.rules[0];
  ASSERT_EQ(r.body.size(), 3u);
  EXPECT_EQ(r.body[1].kind, BodyTerm::Kind::kCondition);
  EXPECT_EQ(r.body[2].kind, BodyTerm::Kind::kAssign);
  EXPECT_EQ(r.body[2].assign.var, "Y");
}

TEST(ParserTest, Aggregates) {
  Program p = MustParse(R"(
    program test;
    table chunk(C, F);
    table cnt(F, N) keys(0);
    cnt(F, count<C>) :- chunk(C, F);
  )");
  const HeadArg& agg = p.rules[0].head.args[1];
  EXPECT_EQ(agg.agg, AggKind::kCount);
}

TEST(ParserTest, BottomK) {
  Program p = MustParse(R"(
    program test;
    table load(Dn, N);
    table best(K, L) keys(0);
    best(1, bottomk<3, Pair>) :- load(Dn, N), Pair := [N, Dn];
  )");
  const HeadArg& agg = p.rules[0].head.args[1];
  EXPECT_EQ(agg.agg, AggKind::kBottomK);
  EXPECT_EQ(agg.k, 3);
}

TEST(ParserTest, LocationSpecifiers) {
  Program p = MustParse(R"(
    program test;
    table ping(Addr, From);
    table pong(Addr, From);
    r1 pong(@From, Me) :- ping(@Me, From);
  )");
  EXPECT_TRUE(p.rules[0].head.has_location);
  EXPECT_TRUE(p.rules[0].body[0].atom.has_location);
}

TEST(ParserTest, LocationOnNonFirstArgRejected) {
  Result<Program> p = ParseProgram(R"(
    program test;
    table ping(Addr, From);
    table pong(Addr, From);
    pong(X, @Y) :- ping(X, Y);
  )");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, TimerDeclaresEventTable) {
  Program p = MustParse(R"(
    program test;
    timer hb(250);
    table seen(Node);
    seen(N) :- hb(N);
  )");
  ASSERT_EQ(p.timers.size(), 1u);
  EXPECT_DOUBLE_EQ(p.timers[0].period_ms, 250.0);
  ASSERT_EQ(p.tables.size(), 2u);
  EXPECT_EQ(p.tables[0].kind, TableKind::kEvent);
}

TEST(ParserTest, WatchDecl) {
  Program p = MustParse(R"(
    program test;
    table a(X);
    watch a;
    watch(a);
  )");
  EXPECT_EQ(p.watches.size(), 2u);
}

TEST(ParserTest, ConstSubstitution) {
  Program p = MustParse(R"(
    program test;
    const root_id = -1;
    table file(Id, Parent);
    table roots(Id);
    roots(F) :- file(F, root_id);
  )");
  const Expr& arg = p.rules[0].body[0].atom.args[1];
  ASSERT_TRUE(arg.is_const());
  EXPECT_EQ(arg.constant, Value(-1));
}

TEST(ParserTest, ExternalConsts) {
  ParserOptions opts;
  opts.consts["master"] = Value("nn1");
  Program p = MustParse(R"(
    program test;
    table t(Addr);
    t(master);
  )", opts);
  EXPECT_EQ(p.facts[0].tuple[0], Value("nn1"));
}

TEST(ParserTest, KnownTablesFromOptions) {
  ParserOptions opts;
  opts.known_tables.insert("external");
  Program p = MustParse(R"(
    program test;
    table t(X);
    t(X) :- external(X);
  )", opts);
  EXPECT_EQ(p.rules[0].body[0].atom.table, "external");
}

TEST(ParserTest, UnknownLowercaseIdentifierIsError) {
  Result<Program> p = ParseProgram(R"(
    program test;
    table t(X);
    t(X) :- mystery(X);
  )");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, CommentsIgnored) {
  Program p = MustParse(R"(
    program test;
    // line comment
    table a(X);  /* block
                    comment */
    a(1);
  )");
  EXPECT_EQ(p.facts.size(), 1u);
}

TEST(ParserTest, WildcardsBecomeDistinctVars) {
  Program p = MustParse(R"(
    program test;
    table a(X, Y, Z);
    table b(X);
    b(X) :- a(X, _, _);
  )");
  const Atom& atom = p.rules[0].body[0].atom;
  ASSERT_TRUE(atom.args[1].is_var());
  ASSERT_TRUE(atom.args[2].is_var());
  EXPECT_NE(atom.args[1].var, atom.args[2].var);
}

TEST(ParserTest, StringEscapes) {
  Program p = MustParse(R"(
    program test;
    table a(S);
    a("line\n\"quoted\"");
  )");
  EXPECT_EQ(p.facts[0].tuple[0], Value("line\n\"quoted\""));
}

TEST(ParserTest, ListLiteralsFoldToConst) {
  Program p = MustParse(R"(
    program test;
    table a(L);
    a([1, 2, "x"]);
  )");
  ASSERT_TRUE(p.facts[0].tuple[0].is_list());
  EXPECT_EQ(p.facts[0].tuple[0].as_list().size(), 3u);
}

TEST(ParserTest, OperatorPrecedence) {
  Program p = MustParse(R"(
    program test;
    table a(X);
    table b(X);
    b(Y) :- a(X), Y := 1 + X * 2;
  )");
  const Expr& e = p.rules[0].body[1].assign.expr;
  ASSERT_EQ(e.fn, "+");
  EXPECT_EQ(e.args[1].fn, "*");
}


TEST(ParserTest, TtlDeclaration) {
  Program p = MustParse(R"(
    program test;
    table lease(Node, T) keys(0) ttl(1500);
    table forever(Node);
  )");
  EXPECT_DOUBLE_EQ(p.tables[0].ttl_ms, 1500.0);
  EXPECT_DOUBLE_EQ(p.tables[1].ttl_ms, 0.0);
}

TEST(ParserTest, NonPositiveTtlRejected) {
  EXPECT_FALSE(ParseProgram("program t; table x(A) ttl(0);").ok());
}

TEST(ParserTest, NextHeadParsed) {
  Program p = MustParse(R"(
    program test;
    event go(X);
    table s(X);
    s(X)@next :- go(X);
  )");
  EXPECT_TRUE(p.rules[0].is_next);
  // And it survives a print/reparse round trip.
  Program p2 = MustParse(p.ToString());
  EXPECT_TRUE(p2.rules[0].is_next);
}

TEST(ParserTest, FactWithNextRejected) {
  EXPECT_FALSE(ParseProgram("program t; table a(X); a(1)@next;").ok());
}

TEST(ParserTest, ProgramToStringRoundTrips) {
  const char* src = R"(
    program round;
    table link(From, To);
    table reach(From, To);
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z), X != Z;
  )";
  Program p1 = MustParse(src);
  Program p2 = MustParse(p1.ToString());
  EXPECT_EQ(p2.rules.size(), p1.rules.size());
  EXPECT_EQ(p2.tables.size(), p1.tables.size());
  EXPECT_EQ(p1.ToString(), p2.ToString());
}

}  // namespace
}  // namespace boom
