#include <gtest/gtest.h>

#include "src/base/status.h"
#include "src/base/strings.h"

namespace boom {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitSkipEmpty) {
  EXPECT_EQ(StrSplitSkipEmpty("/a//b/", '/'), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(StrSplitSkipEmpty("///", '/').empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/user/data", "/user"));
  EXPECT_FALSE(StartsWith("/us", "/user"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, Fnv1a64Stable) {
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), Fnv1a64("a"));
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(PathTest, Join) {
  EXPECT_EQ(PathJoin("/", "a"), "/a");
  EXPECT_EQ(PathJoin("/a", "b"), "/a/b");
  EXPECT_EQ(PathJoin("", "b"), "b");
}

TEST(PathTest, Dirname) {
  EXPECT_EQ(PathDirname("/a/b/c"), "/a/b");
  EXPECT_EQ(PathDirname("/a"), "/");
  EXPECT_EQ(PathDirname("/"), "/");
}

TEST(PathTest, Basename) {
  EXPECT_EQ(PathBasename("/a/b/c"), "c");
  EXPECT_EQ(PathBasename("/"), "");
  EXPECT_EQ(PathBasename("name"), "name");
}

TEST(PathTest, Components) {
  EXPECT_EQ(PathComponents("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(PathComponents("/").empty());
}

}  // namespace
}  // namespace boom
