#include <gtest/gtest.h>

#include "src/overlog/parser.h"
#include "src/overlog/planner.h"

namespace boom {
namespace {

// Parses a program, declares its tables into a catalog, and compiles its rules.
Result<CompiledProgram> Compile(std::string_view src) {
  Result<Program> p = ParseProgram(src);
  if (!p.ok()) {
    return p.status();
  }
  static Catalog* catalog = nullptr;
  // Each call gets a fresh catalog.
  delete catalog;
  catalog = new Catalog();
  for (const TableDef& def : p->tables) {
    Status s = catalog->Declare(def);
    if (!s.ok()) {
      return s;
    }
  }
  std::vector<std::string> programs(p->rules.size(), p->name);
  return CompileRules(p->rules, programs, *catalog);
}

CompiledProgram MustCompile(std::string_view src) {
  Result<CompiledProgram> c = Compile(src);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return std::move(c).value();
}

TEST(PlannerTest, VariantPerPositiveAtom) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table link(X, Y);
    table reach(X, Y);
    reach(X, Z) :- link(X, Y), reach(Y, Z);
  )");
  ASSERT_EQ(c.rules.size(), 1u);
  EXPECT_EQ(c.rules[0].variants.size(), 2u);
  EXPECT_EQ(c.rules[0].variants[0].driver_table, "link");
  EXPECT_EQ(c.rules[0].variants[1].driver_table, "reach");
}

TEST(PlannerTest, UndeclaredBodyTableRejected) {
  ParserOptions opts;
  opts.known_tables.insert("ghost");
  Result<Program> p = ParseProgram("program t; table a(X); a(X) :- ghost(X);", opts);
  ASSERT_TRUE(p.ok());
  Catalog catalog;
  for (const TableDef& def : p->tables) {
    ASSERT_TRUE(catalog.Declare(def).ok());
  }
  Result<CompiledProgram> c = CompileRules(p->rules, {p->name}, catalog);
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, ArityMismatchRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    table a(X, Y);
    table b(X);
    b(X) :- a(X);
  )");
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, UnsafeHeadRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    table a(X);
    table b(X, Y);
    b(X, Y) :- a(X);
  )");
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, UnboundNegationRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    table a(X);
    table b(X);
    table c(X);
    c(X) :- notin b(X), a(X);
  )");
  // Orderable: a(X) binds X, then notin b(X) runs. Should compile.
  EXPECT_TRUE(c.ok()) << c.status().ToString();
}

TEST(PlannerTest, NegationOnlyBodyRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    table b(X);
    table c(X);
    c(X) :- notin b(X);
  )");
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, StratifiesNegationBelowHead) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table a(X);
    table b(X);
    table diff(X);
    diff(X) :- a(X), notin b(X);
  )");
  EXPECT_EQ(c.rules[0].stratum, 1);
  EXPECT_EQ(c.num_strata, 2);
}

TEST(PlannerTest, RecursionThroughNegationRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    table a(X);
    table p(X);
    table q(X);
    p(X) :- a(X), notin q(X);
    q(X) :- a(X), notin p(X);
  )");
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, AggregateGetsHigherStratum) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table chunk(C, F);
    table cnt(F, N) keys(0);
    table big(F);
    cnt(F, count<C>) :- chunk(C, F);
    big(F) :- cnt(F, N), N > 3;
  )");
  ASSERT_EQ(c.rules.size(), 2u);
  EXPECT_TRUE(c.rules[0].has_agg);
  EXPECT_LT(0, c.rules[0].stratum);
  EXPECT_LE(c.rules[0].stratum, c.rules[1].stratum);
}

TEST(PlannerTest, RecursionThroughAggregateRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    table x(A, B);
    x(A, count<B>) :- x(B, A);
  )");
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, MonotoneRecursionAllowed) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table link(X, Y);
    table reach(X, Y);
    reach(X, Y) :- link(X, Y);
    reach(X, Z) :- link(X, Y), reach(Y, Z);
  )");
  EXPECT_EQ(c.num_strata, 1);
}

TEST(PlannerTest, DeleteFromEventRejected) {
  Result<CompiledProgram> c = Compile(R"(
    program t;
    event e(X);
    table a(X);
    delete e(X) :- a(X);
  )");
  EXPECT_FALSE(c.ok());
}

TEST(PlannerTest, ConditionOrderedAfterBinding) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table a(X);
    table b(Y);
    table out(X, Y);
    out(X, Y) :- a(X), b(Y), X < Y;
  )");
  const CompiledVariant& v = c.rules[0].variants[0];
  // The condition must come after the second atom binds Y.
  ASSERT_EQ(v.steps.size(), 2u);
  EXPECT_EQ(v.steps[0].kind, BodyTerm::Kind::kAtom);
  EXPECT_EQ(v.steps[1].kind, BodyTerm::Kind::kCondition);
}

TEST(PlannerTest, AssignmentChainOrdered) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table a(X);
    table out(X);
    out(Z) :- Z := Y + 1, Y := X * 2, a(X);
  )");
  const CompiledVariant& v = c.rules[0].variants[0];
  ASSERT_EQ(v.steps.size(), 2u);
  EXPECT_EQ(v.steps[0].kind, BodyTerm::Kind::kAssign);
  EXPECT_EQ(v.steps[1].kind, BodyTerm::Kind::kAssign);
}

TEST(PlannerTest, RebindingAssignmentBecomesEqualityCheck) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table a(X);
    table out(X);
    out(X) :- a(X), X := 5;
  )");
  const CompiledVariant& v = c.rules[0].variants[0];
  ASSERT_EQ(v.steps.size(), 1u);
  EXPECT_EQ(v.steps[0].kind, BodyTerm::Kind::kCondition);
  EXPECT_EQ(v.steps[0].condition.fn, "==");
}

TEST(PlannerTest, ProbeColsUseBoundPositions) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table edge(X, Y);
    table twohop(X, Z);
    twohop(X, Z) :- edge(X, Y), edge(Y, Z);
  )");
  const CompiledVariant& v = c.rules[0].variants[0];
  ASSERT_EQ(v.steps.size(), 1u);
  // Second edge atom probes on column 0 (Y bound by the driver).
  EXPECT_EQ(v.steps[0].atom.probe_cols, (std::vector<size_t>{0}));
}


TEST(PlannerTest, IncrementalAggEligibility) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table obs(Id, G, V);
    table rollup(G, N) keys(0);
    table keyed_src(Id, V) keys(0);
    table keyed_roll(K, N) keys(0);
    event ev(X);
    table ev_cnt(K, N) keys(0);
    r1 rollup(G, count<Id>) :- obs(Id, G, _);
    r2 keyed_roll(1, count<Id>) :- keyed_src(Id, _);
    r3 ev_cnt(1, count<X>) :- ev(X);
  )");
  // r1: single-atom over an insert-only set-semantics table -> incremental.
  EXPECT_TRUE(c.rules[0].incremental_agg);
  // r2: driver has a proper primary key (rows can be replaced) -> not incremental.
  EXPECT_FALSE(c.rules[1].incremental_agg);
  // r3: driver is an event table (cleared per tick) -> not incremental.
  EXPECT_FALSE(c.rules[2].incremental_agg);
}

TEST(PlannerTest, DeleteRuleDisqualifiesIncrementalAgg) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table obs(Id, G);
    table rollup(G, N) keys(0);
    event purge(Id);
    r1 rollup(G, count<Id>) :- obs(Id, G);
    d1 delete obs(Id, G) :- purge(Id), obs(Id, G);
  )");
  EXPECT_FALSE(c.rules[0].incremental_agg) << "deletable input must force full recompute";
}

TEST(PlannerTest, DriverlessRuleFlagged) {
  CompiledProgram c = MustCompile(R"(
    program t;
    table out(X);
    out(X) :- X := 1 + 2;
  )");
  EXPECT_TRUE(c.rules[0].driverless);
  EXPECT_TRUE(c.rules[0].variants.empty());
}

}  // namespace
}  // namespace boom
