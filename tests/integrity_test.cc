// Data-plane integrity tests (ctest label: integrity): checksummed chunk stores with
// last-writer-wins rewrite semantics, terminal client failure against dead NameNodes,
// chunk abandonment, and NameNode safe mode for both implementations.

#include <gtest/gtest.h>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/protocol.h"

namespace boom {
namespace {

// A dn_write that re-sends an existing chunk id with different bytes replaces the stored
// copy (last writer wins). The client's pipeline recovery legitimately re-sends chunk ids
// after a partial write; silently keeping the stale bytes (the old emplace behaviour)
// would serve data the writer never acknowledged.
TEST(DataNodeIntegrityTest, RewriteIsLastWriterWins) {
  Cluster cluster(101);
  FsSetupOptions opts;
  opts.kind = FsKind::kBoomFs;
  opts.num_datanodes = 3;
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);
  cluster.RunUntil(1000);

  ASSERT_TRUE(fs.Mkdir("/d"));
  const std::string original = "ORIGINAL-CONTENT";  // exactly one chunk
  ASSERT_TRUE(fs.WriteFile("/d/f", original));
  Value chunks;
  ASSERT_TRUE(fs.Op(kCmdChunks, "/d/f", &chunks));
  ASSERT_EQ(chunks.as_list().size(), 1u);
  int64_t chunk = chunks.as_list()[0].as_int();
  cluster.RunUntil(cluster.now() + 2000);  // replication settles on all three DataNodes

  const std::string rewrite = "REWRITTEN-BYTES!";
  for (const std::string& dn : handles.datanodes) {
    cluster.Send(dn, dn, kDnWrite,
                 Tuple{Value(dn), Value(chunk), Value(rewrite),
                       Value(ChunkChecksum(rewrite)), Value(ValueList{}),
                       Value(std::string()), Value(int64_t{0})});
  }
  cluster.RunUntil(cluster.now() + 500);

  for (const std::string& dn : handles.datanodes) {
    EXPECT_TRUE(dynamic_cast<DataNode*>(cluster.actor(dn))->HasChunk(chunk)) << dn;
  }
  std::string got;
  ASSERT_TRUE(fs.ReadFile("/d/f", &got));
  EXPECT_EQ(got, rewrite);
}

// With every NameNode dead, namespace requests and composite reads terminate with
// cb(false) after bounded (virtual) time — including request_timeout_ms = 0, which used to
// mean "wait forever" and now selects the default timeout.
TEST(ClientRetryTest, DeadNameNodeSurfacesTerminalFailure) {
  Cluster cluster(202);
  FsSetupOptions opts;
  opts.kind = FsKind::kBoomFs;
  opts.num_datanodes = 3;
  opts.chunk_size = 16;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);

  FsClientOptions retry_opts;
  retry_opts.namenode = handles.namenode;
  retry_opts.request_timeout_ms = 0;  // = default timeout, never "wait forever"
  retry_opts.max_retries = 2;
  auto retry_client = std::make_unique<FsClient>("retry_client", retry_opts);
  FsClient* retry = retry_client.get();
  cluster.AddActor(std::move(retry_client));

  cluster.RunUntil(1000);
  ASSERT_TRUE(fs.Mkdir("/d"));
  ASSERT_TRUE(fs.WriteFile("/d/f", "bytes that exist"));
  cluster.KillNode(handles.namenode);

  double start = cluster.now();
  bool done1 = false, ok1 = true;
  handles.client->Mkdir(cluster, "/x", [&](bool ok, const Value&) {
    ok1 = ok;
    done1 = true;
  });
  bool done2 = false, ok2 = true;
  retry->Mkdir(cluster, "/y", [&](bool ok, const Value&) {
    ok2 = ok;
    done2 = true;
  });
  bool done3 = false, ok3 = true;
  handles.client->ReadFile(cluster, "/d/f", [&](bool ok, const std::string&) {
    ok3 = ok;
    done3 = true;
  });
  cluster.RunUntil(start + 30000);
  EXPECT_TRUE(done1);
  EXPECT_FALSE(ok1);
  EXPECT_TRUE(done2) << "retries against a dead NameNode never terminated";
  EXPECT_FALSE(ok2);
  EXPECT_TRUE(done3) << "composite read against a dead NameNode never terminated";
  EXPECT_FALSE(ok3);
}

// Abandon detaches a chunk from its file and garbage-collects the replicas, for both
// NameNode implementations (the client uses it to discard a half-written chunk before
// requesting a fresh pipeline).
class AbandonTest : public ::testing::TestWithParam<FsKind> {};

TEST_P(AbandonTest, AbandonDetachesAndGarbageCollectsChunk) {
  Cluster cluster(505);
  FsSetupOptions opts;
  opts.kind = GetParam();
  opts.num_datanodes = 4;
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);
  cluster.RunUntil(1000);

  ASSERT_TRUE(fs.Mkdir("/a"));
  ASSERT_TRUE(fs.WriteFile("/a/f", "twenty bytes exactly"));  // two chunks
  cluster.RunUntil(cluster.now() + 2000);
  Value chunks;
  ASSERT_TRUE(fs.Op(kCmdChunks, "/a/f", &chunks));
  ASSERT_EQ(chunks.as_list().size(), 2u);
  int64_t victim = chunks.as_list()[0].as_int();

  cluster.Send(handles.client->address(), handles.namenode, "ns_request",
               Tuple{Value(handles.namenode), Value(int64_t{990001}),
                     Value(handles.client->address()), Value(kCmdAbandon), Value("/a/f"),
                     Value(victim)});
  cluster.RunUntil(cluster.now() + 3000);

  Value after;
  ASSERT_TRUE(fs.Op(kCmdChunks, "/a/f", &after));
  ASSERT_EQ(after.as_list().size(), 1u);
  EXPECT_NE(after.as_list()[0].as_int(), victim);
  for (const std::string& dn : handles.datanodes) {
    EXPECT_FALSE(dynamic_cast<DataNode*>(cluster.actor(dn))->HasChunk(victim))
        << dn << " still stores the abandoned chunk";
  }
}

INSTANTIATE_TEST_SUITE_P(BothFileSystems, AbandonTest,
                         ::testing::Values(FsKind::kBoomFs, FsKind::kHdfsBaseline),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           return info.param == FsKind::kBoomFs ? "BoomFs" : "HdfsBaseline";
                         });

// Overlog safe mode: with an owned-but-unreported chunk the NameNode answers namespace
// reads but refuses locations; a single chunk report (>= 60% of 1 chunk) flips it out of
// safe mode long before the timeout.
TEST(SafeModeTest, OverlogNameNodeDefersLocationsUntilReports) {
  Cluster cluster(303);
  NnProgramOptions prog;  // defaults: check 200ms, frac 60%, timeout 5000ms, grace 400ms
  Program program = BoomFsNnProgram(prog);
  // Seed a namespace that owns one chunk, as if restored from a replicated log.
  program.facts.push_back({"file", Tuple{Value(7), Value(0), Value("f"), Value(false)}});
  program.facts.push_back({"fchunk", Tuple{Value(42), Value(7)}});
  cluster.AddOverlogNode("nn", [program](Engine& engine) {
    Status status = engine.Install(program);
    ASSERT_TRUE(status.ok()) << status.ToString();
  });
  FsClientOptions copts;
  copts.namenode = "nn";
  auto client = std::make_unique<FsClient>("client", copts);
  FsClient* c = client.get();
  cluster.AddActor(std::move(client));

  cluster.RunUntil(600);  // past the empty-namespace grace; chunk 42 is unreported
  bool done = false, ok = true;
  Value payload;
  c->Locations(cluster, 42, [&](bool o, const Value& p) {
    ok = o;
    payload = p;
    done = true;
  });
  cluster.RunUntil(cluster.now() + 300);
  ASSERT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(payload.as_string(), "safe mode");

  // Namespace reads are never gated.
  bool edone = false, eok = false;
  c->Exists(cluster, "/f", [&](bool o, const Value& p) {
    eok = o && p.Truthy();
    edone = true;
  });
  cluster.RunUntil(cluster.now() + 300);
  ASSERT_TRUE(edone);
  EXPECT_TRUE(eok);

  // One report covers 100% of the expected chunks: safe mode exits on the next check.
  cluster.Send("nn", "nn", "dn_heartbeat", Tuple{Value("nn"), Value("dnX")});
  cluster.Send("nn", "nn", "dn_chunk_report", Tuple{Value("nn"), Value("dnX"), Value(42)});
  cluster.RunUntil(cluster.now() + 500);  // well under the 5000ms timeout
  done = false;
  ok = false;
  c->Locations(cluster, 42, [&](bool o, const Value& p) {
    ok = o;
    payload = p;
    done = true;
  });
  cluster.RunUntil(cluster.now() + 300);
  ASSERT_TRUE(done);
  ASSERT_TRUE(ok) << payload.ToString();
  ASSERT_TRUE(payload.is_list());
  ASSERT_EQ(payload.as_list().size(), 1u);
  EXPECT_EQ(payload.as_list()[0].as_string(), "dnX");
}

// HDFS baseline: a restarted NameNode keeps its namespace but re-enters safe mode until
// the DataNodes' full reports rebuild the location table — then serves again, well before
// the unconditional timeout.
TEST(SafeModeTest, HdfsNameNodeRestartDefersUntilReports) {
  Cluster cluster(404);
  FsSetupOptions opts;
  opts.kind = FsKind::kHdfsBaseline;
  opts.num_datanodes = 4;
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  opts.heartbeat_period_ms = 300;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);
  cluster.RunUntil(1000);

  const std::string payload = "safe mode payload!";
  ASSERT_TRUE(fs.Mkdir("/s"));
  ASSERT_TRUE(fs.WriteFile("/s/f", payload));
  cluster.RunUntil(cluster.now() + 2000);
  Value chunks;
  ASSERT_TRUE(fs.Op(kCmdChunks, "/s/f", &chunks));
  ASSERT_EQ(chunks.as_list().size(), 2u);
  int64_t chunk = chunks.as_list()[0].as_int();

  auto* nn = dynamic_cast<HdfsNameNode*>(cluster.actor(handles.namenode));
  ASSERT_NE(nn, nullptr);
  EXPECT_FALSE(nn->in_safe_mode());
  cluster.KillNode(handles.namenode);
  cluster.RunUntil(cluster.now() + 500);
  cluster.RestartNode(handles.namenode, /*fresh_state=*/false);
  double restarted = cluster.now();
  cluster.RunUntil(restarted + 50);
  EXPECT_TRUE(nn->in_safe_mode());

  // Namespace survives the restart and is served during safe mode; locations are not.
  ASSERT_TRUE(fs.Exists("/s/f"));
  bool done = false, ok = true;
  Value response;
  handles.client->Locations(cluster, chunk, [&](bool o, const Value& p) {
    ok = o;
    response = p;
    done = true;
  });
  cluster.RunUntil(cluster.now() + 300);
  ASSERT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(response.as_string(), "safe mode");

  // Full reports (every 4th heartbeat) cover both chunks well before the 5000ms timeout.
  cluster.RunUntil(restarted + 3000);
  EXPECT_FALSE(nn->in_safe_mode());
  std::string got;
  ASSERT_TRUE(fs.ReadFile("/s/f", &got));
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace boom
