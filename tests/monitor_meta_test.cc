// Monitor metaprogramming helpers: the tracing rewrite (with count rollups), the
// invariant installer and its violation sink, the BOOM-FS invariant rules on induced
// under-replication, and the rule-hog invariant over the engine's published per-rule
// profile (perf_rule / perf_fixpoint queryable from Overlog).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/module.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

EngineOptions TestEngineOptions() {
  EngineOptions opts;
  opts.address = "n";
  return opts;
}

TEST(MakeTracingProgram, RecordsInsertionsWithCountRollups) {
  const char* src = R"olg(
program pairs;
table y(A, B) keys(0);
y(1, 2);
y(3, 4);
)olg";
  Engine engine(TestEngineOptions());
  ASSERT_TRUE(engine.InstallSource(src).ok());
  Result<Program> parsed = ParseProgram(src);
  ASSERT_TRUE(parsed.ok());
  TracingOptions options;
  options.with_counts = true;
  ASSERT_TRUE(engine.Install(MakeTracingProgram(*parsed, options)).ok());
  engine.Tick(0);

  // trace_y(TraceTime, A, B): one row per inserted fact.
  EXPECT_EQ(engine.catalog().Get("trace_y").size(), 2u);
  // trace_cnt_y(1, count): the rollup sees both.
  std::vector<Tuple> counts = engine.catalog().Get("trace_cnt_y").Rows();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0][1].as_int(), 2);
}

TEST(MakeTracingProgram, TableFilterLimitsRewrite) {
  const char* src = R"olg(
program two;
table a(X) keys(0);
table b(X) keys(0);
a(1);
b(2);
)olg";
  Engine engine(TestEngineOptions());
  ASSERT_TRUE(engine.InstallSource(src).ok());
  Result<Program> parsed = ParseProgram(src);
  ASSERT_TRUE(parsed.ok());
  TracingOptions options;
  options.tables = {"a"};
  ASSERT_TRUE(engine.Install(MakeTracingProgram(*parsed, options)).ok());
  engine.Tick(0);
  EXPECT_EQ(engine.catalog().Get("trace_a").size(), 1u);
  EXPECT_EQ(engine.catalog().Find("trace_b"), nullptr);
}

TEST(InstallInvariants, ViolationsLandInSink) {
  const char* src = R"olg(
program demo;
table x(A) keys(0);
x(1);
x(2);
)olg";
  Engine engine(TestEngineOptions());
  ASSERT_TRUE(engine.InstallSource(src).ok());
  std::vector<std::string> violations;
  ProgramBuilder builder("demo_inv");
  ASSERT_TRUE(builder
                  .AddProgramText(R"olg(
program demo_inv;
extern table x(A) keys(0);
extern table invariant_violation(Name, Detail);
v1 invariant_violation("too_big_x", D) :- x(A), A > 1, D := str_cat("x is ", A);
)olg")
                  .ok());
  Result<Program> inv = builder.Build();
  ASSERT_TRUE(inv.ok()) << inv.status().ToString();
  ASSERT_TRUE(InstallInvariants(engine, *inv, &violations).ok());
  engine.Tick(0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("too_big_x"), std::string::npos);
  EXPECT_NE(violations[0].find("x is 2"), std::string::npos);
}

// A minimal NameNode state slice: one live chunk reported by a single DataNode out of a
// replication factor of 3.
constexpr const char* kUnderReplicatedState = R"olg(
program fakefs;
table file(F, Par, Name, IsDir) keys(0);
table fqpath(Path, F);
table fchunk(ChunkId, FileId) keys(0);
table hb_chunk(Dn, ChunkId);
file(0, 0, "", 1);
fchunk(77, 5);
hb_chunk("dn0", 77);
)olg";

TEST(BoomFsInvariants, UnderReplicationFiresOnlyWhenOptedIn) {
  {
    Engine engine(TestEngineOptions());
    ASSERT_TRUE(engine.InstallSource(kUnderReplicatedState).ok());
    std::vector<std::string> violations;
    ASSERT_TRUE(InstallInvariants(engine, BoomFsInvariantProgram(3), &violations).ok());
    engine.Tick(0);
    EXPECT_TRUE(violations.empty()) << violations[0];
  }
  {
    Engine engine(TestEngineOptions());
    ASSERT_TRUE(engine.InstallSource(kUnderReplicatedState).ok());
    std::vector<std::string> violations;
    ASSERT_TRUE(InstallInvariants(
                    engine,
                    BoomFsInvariantProgram(3, /*include_under_replication=*/true),
                    &violations)
                    .ok());
    engine.Tick(0);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("under_replicated"), std::string::npos);
    EXPECT_NE(violations[0].find("chunk 77 has 1"), std::string::npos);
  }
}

TEST(RuleHogInvariant, FiresOnFatRuleViaPerfTables) {
  const char* src = R"olg(
program hog;
table t(X) keys(0);
table s(X) keys(0);
t(1); t(2); t(3); t(4); t(5); t(6); t(7); t(8);
h1 s(X) :- t(X);
)olg";
  Engine engine(TestEngineOptions());
  ASSERT_TRUE(engine.InstallSource(src).ok());
  ASSERT_TRUE(InstallProfiling(engine).ok());
  ASSERT_TRUE(engine.profiling());
  std::vector<std::string> violations;
  ASSERT_TRUE(InstallInvariants(engine, RuleHogInvariantProgram(5), &violations).ok());

  engine.Tick(0);  // h1 derives 8 tuples in one fixpoint
  ASSERT_TRUE(engine.PublishProfile().ok());
  engine.Tick(1);  // perf_rule rows land; the invariant joins them

  // The profile is queryable from Overlog: the invariant rule fired off perf_rule.
  EXPECT_GT(engine.catalog().Get("perf_rule").size(), 0u);
  EXPECT_GT(engine.catalog().Get("perf_fixpoint").size(), 0u);
  bool found = false;
  for (const std::string& v : violations) {
    if (v.find("rule_hog") != std::string::npos &&
        v.find("hog:h1") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "rule_hog invariant did not fire (violations: "
                     << violations.size() << ")";
}

TEST(RuleHogInvariant, QuietProgramStaysClean) {
  const char* src = R"olg(
program quiet;
table t(X) keys(0);
table s(X) keys(0);
t(1);
h1 s(X) :- t(X);
)olg";
  Engine engine(TestEngineOptions());
  ASSERT_TRUE(engine.InstallSource(src).ok());
  ASSERT_TRUE(InstallProfiling(engine).ok());
  std::vector<std::string> violations;
  ASSERT_TRUE(InstallInvariants(engine, RuleHogInvariantProgram(5), &violations).ok());
  engine.Tick(0);
  ASSERT_TRUE(engine.PublishProfile().ok());
  engine.Tick(1);
  EXPECT_TRUE(violations.empty()) << violations[0];
}

}  // namespace
}  // namespace boom
