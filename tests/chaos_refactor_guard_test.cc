// Chaos regression guard for the module-system refactor: sweeps 10 seeds of the boomfs and
// boommr scenarios twice — once against the frozen pre-refactor program text (installed via
// the scenario's program-override hook) and once against the module-built default — and
// requires byte-identical fault/network traces and identical outcomes.
//
// The fixpoint-equivalence tests (program_equivalence_test.cc) compare resting state under
// a fixed workload; this guard compares *trajectories* under fault injection, where any
// divergence in rule order or derivation timing would shift a message, a timer race, or a
// checker verdict somewhere across the sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "src/chaos/fault_schedule.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

constexpr uint64_t kNumSeeds = 10;

Program ParseGolden(const std::string& name) {
  std::string path = std::string(BOOM_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream text;
  text << in.rdbuf();
  Result<Program> program = ParseProgram(text.str());
  EXPECT_TRUE(program.ok()) << name << ": " << program.status().ToString();
  return std::move(program).value();
}

ChaosRunResult TracedRun(const std::string& scenario_name, uint64_t seed,
                         const ScenarioOptions& scenario_options) {
  std::unique_ptr<ChaosScenario> scenario = MakeScenario(scenario_name, scenario_options);
  FaultSchedule schedule = GenerateFaultSchedule(seed, scenario->FaultProfile());
  ChaosRunOptions options;
  options.record_trace = true;
  return RunChaosOnce(*scenario, seed, schedule, options);
}

void ExpectIdenticalSweep(const std::string& scenario_name,
                          const ScenarioOptions& golden_options) {
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    ChaosRunResult golden = TracedRun(scenario_name, seed, golden_options);
    ChaosRunResult built = TracedRun(scenario_name, seed, ScenarioOptions{});
    ASSERT_FALSE(built.trace.empty()) << scenario_name << " seed " << seed;
    EXPECT_EQ(golden.trace, built.trace)
        << scenario_name << " seed " << seed << ": traces diverged";
    EXPECT_EQ(golden.passed, built.passed) << scenario_name << " seed " << seed;
    EXPECT_EQ(golden.violations, built.violations) << scenario_name << " seed " << seed;
    EXPECT_EQ(golden.end_ms, built.end_ms) << scenario_name << " seed " << seed;
  }
}

TEST(ChaosRefactorGuard, BoomFsTracesMatchPreRefactorProgram) {
  ScenarioOptions golden;
  golden.nn_program_override = ParseGolden("boomfs_nn_chaos.olg");
  ExpectIdenticalSweep("boomfs", golden);
}

TEST(ChaosRefactorGuard, BoomMrTracesMatchPreRefactorProgram) {
  ScenarioOptions golden;
  golden.jt_program_override = ParseGolden("jt_fifo.olg");
  ExpectIdenticalSweep("boommr", golden);
}

}  // namespace
}  // namespace boom
