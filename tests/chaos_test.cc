// Failure-injection ("chaos") tests: repeated and adversarial failures against the HA
// NameNode, message-loss through partitions during Paxos, and DataNode churn under BOOM-FS —
// the behaviours a downstream user relies on but no single-fault test exercises.

#include <gtest/gtest.h>

#include "src/boomfs/ha.h"
#include "src/paxos/paxos_program.h"

namespace boom {
namespace {

// Paxos replicas under a rolling partition schedule must never disagree on a decided slot.
class PaxosSafetySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaxosSafetySweep, NoDisagreementUnderRollingPartitions) {
  Cluster cluster(GetParam());
  std::vector<std::string> peers = {"px0", "px1", "px2"};
  for (int i = 0; i < 3; ++i) {
    PaxosProgramOptions opts;
    opts.peers = peers;
    opts.my_index = i;
    std::string source = PaxosProgram(opts);
    cluster.AddOverlogNode(peers[static_cast<size_t>(i)], [source](Engine& engine) {
      ASSERT_TRUE(engine.InstallSource(source).ok());
    });
  }
  cluster.RunUntil(2000);

  // Interleave commands with partitions that isolate each replica in turn.
  int cmd = 0;
  for (int round = 0; round < 3; ++round) {
    std::string isolated = peers[static_cast<size_t>(round)];
    for (const std::string& other : peers) {
      if (other != isolated) {
        cluster.BlockLink(isolated, other);
      }
    }
    for (int k = 0; k < 3; ++k) {
      // Submit to every replica; only the majority side can decide.
      for (const std::string& p : peers) {
        cluster.Send(p, p, "px_request",
                     Tuple{Value(p), Value("cmd-" + std::to_string(cmd++))});
      }
      cluster.RunUntil(cluster.now() + 1500);
    }
    cluster.ClearBlockedLinks();
    cluster.RunUntil(cluster.now() + 4000);  // heal and re-elect
  }
  cluster.RunUntil(cluster.now() + 10000);

  // Safety: every pair of replicas agrees on the intersection of their logs.
  std::vector<std::map<int64_t, std::string>> logs;
  for (const std::string& p : peers) {
    std::map<int64_t, std::string> log;
    cluster.engine(p)->catalog().Get("decided").ForEach([&log](const Tuple& row) {
      log[row[0].as_int()] = row[1].as_string();
    });
    logs.push_back(std::move(log));
  }
  for (size_t a = 0; a < logs.size(); ++a) {
    for (size_t b = a + 1; b < logs.size(); ++b) {
      for (const auto& [slot, value] : logs[a]) {
        auto it = logs[b].find(slot);
        if (it != logs[b].end()) {
          EXPECT_EQ(it->second, value)
              << "replicas " << a << "/" << b << " disagree on slot " << slot;
        }
      }
    }
  }
  // Liveness: something was decided despite the churn.
  EXPECT_GT(logs[0].size() + logs[1].size() + logs[2].size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosSafetySweep,
                         ::testing::Values(777, 1234, 5678, 9999, 424242),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

// The HA file system keeps serving through a kill->recover->kill-another schedule.
TEST(ChaosTest, HaFsSurvivesLeaderChurn) {
  Cluster cluster(31415);
  HaFsOptions opts;
  opts.num_replicas = 3;
  opts.num_datanodes = 4;
  HaFsHandles handles = SetupHaFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/240000);
  cluster.RunUntil(3000);

  ASSERT_TRUE(fs.Mkdir("/base"));
  int created = 0;
  auto create_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      if (fs.CreateFile("/base/f" + std::to_string(created))) {
        ++created;
      }
    }
  };

  create_some(5);
  cluster.KillNode(handles.replicas[0]);  // primary dies
  cluster.RunUntil(cluster.now() + 4000);
  create_some(5);
  cluster.RestartNode(handles.replicas[0], /*fresh_state=*/true);  // recovers empty
  cluster.RunUntil(cluster.now() + 4000);
  create_some(5);
  cluster.KillNode(handles.replicas[1]);  // current leader dies
  cluster.RunUntil(cluster.now() + 4000);
  create_some(5);

  EXPECT_GE(created, 18) << "too many operations lost across failovers";
  // All created files are visible via ls.
  std::vector<std::string> names;
  ASSERT_TRUE(fs.Ls("/base", &names));
  EXPECT_EQ(names.size(), static_cast<size_t>(created));
}

// BOOM-FS data survives DataNode churn: kill nodes one at a time (waiting for re-replication
// between kills) and the file must remain readable throughout.
TEST(ChaosTest, BoomFsSurvivesDataNodeChurn) {
  Cluster cluster(2718);
  FsSetupOptions opts;
  opts.kind = FsKind::kBoomFs;
  opts.num_datanodes = 6;
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  opts.heartbeat_period_ms = 300;
  opts.heartbeat_timeout_ms = 1200;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client);
  cluster.RunUntil(1500);

  const std::string payload = "chunked payload that must survive datanode churn, honest";
  ASSERT_TRUE(fs.Mkdir("/c"));
  ASSERT_TRUE(fs.WriteFile("/c/data", payload));
  cluster.RunUntil(cluster.now() + 2000);

  // Kill half the datanodes, one at a time, with recovery windows between.
  for (int i = 0; i < 3; ++i) {
    cluster.KillNode(handles.datanodes[static_cast<size_t>(i)]);
    cluster.RunUntil(cluster.now() + 12000);  // detector + re-replication
    std::string read_back;
    ASSERT_TRUE(fs.ReadFile("/c/data", &read_back)) << "after killing dn" << i;
    EXPECT_EQ(read_back, payload) << "after killing dn" << i;
  }
}

}  // namespace
}  // namespace boom
