// Chaos tests: generator-driven fault-schedule sweeps over the Overlog systems, with
// the reusable invariant checkers from src/chaos asserting safety at every quiescent point.
// Each (scenario, seed) pair is an independent ctest case, so a failure names the exact
// deterministic schedule that produced it; reproduce with
//   tools/chaos_explorer --scenario=<name> --seed0=<seed> --seeds=1 --verbose
// A final set of tests injects known-buggy rule variants and checks that the explorer both
// catches them and shrinks the failing schedule to a handful of fault events.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <algorithm>

#include "src/boomfs/ha.h"
#include "src/boommr/boommr.h"
#include "src/chaos/explorer.h"
#include "src/chaos/fault_schedule.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/chaos/shrink.h"

namespace boom {
namespace {

constexpr int kSweepSeeds = 25;

// ---------------------------------------------------------------------------------------
// Generator-driven sweep: 25 seeds x {paxos, boomfs, boommr, tenancy}. Every run generates
// a fault timeline from the seed (crashes, partitions, link degradation, gray failures,
// clock skew, rolling restarts — within each scenario's sound fault model), executes it,
// heals, and asserts the scenario's invariant checkers.
// ---------------------------------------------------------------------------------------

class ChaosSweep : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(ChaosSweep, InvariantsHoldUnderGeneratedFaults) {
  const auto& [scenario_name, seed] = GetParam();
  std::unique_ptr<ChaosScenario> scenario = MakeScenario(scenario_name);
  ASSERT_NE(scenario, nullptr);
  FaultSchedule schedule = GenerateFaultSchedule(seed, scenario->FaultProfile());
  ChaosRunResult result = RunChaosOnce(*scenario, seed, schedule, {});
  EXPECT_TRUE(result.passed) << "seed " << seed << " under schedule:\n"
                             << schedule.ToString();
  for (const std::string& violation : result.violations) {
    ADD_FAILURE() << violation;
  }
}

std::vector<std::tuple<std::string, uint64_t>> SweepParams() {
  std::vector<std::tuple<std::string, uint64_t>> params;
  for (const std::string& name : ScenarioNames()) {
    for (uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
      params.emplace_back(name, seed);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosSweep, ::testing::ValuesIn(SweepParams()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>& info) {
      return std::get<0>(info.param) + "Seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------------------
// Bug-variant validation: the explorer must catch injected rule bugs and shrink the failing
// schedule to a minimal reproduction. These pin the tool's detection power, so a future
// checker regression that silently stops seeing real violations fails loudly here.
// ---------------------------------------------------------------------------------------

// quorum1: the Paxos rules count a single acceptor as a quorum. Any partition or crash that
// splits proposers lets both sides decide, so most seeds fail and shrink to one event.
TEST(ChaosBugVariants, PaxosQuorum1CaughtAndShrunk) {
  ExplorerOptions options;
  options.scenario = "paxos";
  options.bug = "quorum1";
  options.seeds = 3;  // seeds 1..3 all fail for this bug
  ExplorerReport report = ExploreSeeds(options);
  EXPECT_EQ(report.failures, 3) << report.text;
  for (const SeedOutcome& outcome : report.outcomes) {
    EXPECT_FALSE(outcome.passed) << "seed " << outcome.seed;
    EXPECT_LE(outcome.shrunk.events.size(), 5u)
        << "seed " << outcome.seed << " schedule did not shrink:\n"
        << outcome.shrunk.ToString();
  }
}

// amnesia: acceptors restart with fresh state, forgetting promises and accepted values.
// Unsafe only when a quorum of amnesiacs outvotes the remembering minority, so failures are
// rare; seed 76 is a known catch whose shrunk schedule is the textbook 3-event choreography
// (crash both acceptors of the deciding quorum, partition away the survivor).
TEST(ChaosBugVariants, PaxosAmnesiaCaughtAndShrunk) {
  ExplorerOptions options;
  options.scenario = "paxos";
  options.bug = "amnesia";
  options.seed0 = 76;
  options.seeds = 1;
  ExplorerReport report = ExploreSeeds(options);
  ASSERT_EQ(report.failures, 1) << report.text;
  EXPECT_LE(report.outcomes[0].shrunk.events.size(), 5u) << report.text;
}

// resurrect: the NameNode's delete-tombstone rules (rm9/hb3/hb4) are stripped, so chunks of
// removed files are never reclaimed from DataNodes and the orphan invariant fires.
TEST(ChaosBugVariants, BoomFsResurrectCaughtAndShrunk) {
  ExplorerOptions options;
  options.scenario = "boomfs";
  options.bug = "resurrect";
  options.seed0 = 6;
  options.seeds = 2;  // seeds 6..7 both fail for this bug
  ExplorerReport report = ExploreSeeds(options);
  EXPECT_EQ(report.failures, 2) << report.text;
  for (const SeedOutcome& outcome : report.outcomes) {
    EXPECT_FALSE(outcome.passed) << "seed " << outcome.seed;
    EXPECT_LE(outcome.shrunk.events.size(), 5u)
        << "seed " << outcome.seed << " schedule did not shrink:\n"
        << outcome.shrunk.ToString();
  }
}

// serve-corrupt: DataNodes skip checksum verification, so a replica that rotted during a
// corrupt-disk window is served with a freshly recomputed (matching) checksum. Only the
// end-to-end read oracle can see it — and must, shrinking to a minimal disk-fault recipe.
// (Seeds 2..6: corrupt windows land on in-use replicas for 2, 4, and 6; seeds 3 and 5
// draw schedules the correct implementation also tolerates.)
TEST(ChaosBugVariants, BoomFsServeCorruptCaughtAndShrunk) {
  ExplorerOptions options;
  options.scenario = "boomfs";
  options.bug = "serve-corrupt";
  options.seed0 = 2;
  options.seeds = 5;
  ExplorerReport report = ExploreSeeds(options);
  EXPECT_EQ(report.failures, 3) << report.text;
  for (const SeedOutcome& outcome : report.outcomes) {
    bool should_fail = outcome.seed % 2 == 0;
    EXPECT_EQ(outcome.passed, !should_fail) << "seed " << outcome.seed;
    if (!outcome.passed) {
      EXPECT_LE(outcome.shrunk.events.size(), 3u)
          << "seed " << outcome.seed << " schedule did not shrink:\n"
          << outcome.shrunk.ToString();
    }
  }
}

// limplock: the JobTracker's per-attempt timeout rules (x5/x6/x7) are stripped, leaving
// only the dead-tracker detector — which a gray node never trips, because it heartbeats
// on time while running tasks orders of magnitude slow. A severe gray window therefore
// wedges every attempt assigned to the limping tracker forever. The explorer must catch
// it and shrink the repro to (essentially) the single gray-failure event.
TEST(ChaosBugVariants, BoomMrLimplockCaughtAndShrunk) {
  ExplorerOptions options;
  options.scenario = "boommr";
  options.bug = "limplock";
  options.seed0 = 27;  // known catch: a x274 gray window on one tracker
  options.seeds = 1;
  ExplorerReport report = ExploreSeeds(options);
  ASSERT_EQ(report.failures, 1) << report.text;
  EXPECT_LE(report.outcomes[0].shrunk.events.size(), 2u)
      << "limplock repro did not shrink:\n"
      << report.outcomes[0].shrunk.ToString();
  // The minimal repro must actually contain a gray-failure window — the bug is
  // unreachable through crash/partition faults alone.
  bool has_gray = false;
  for (const FaultEvent& event : report.outcomes[0].shrunk.events) {
    has_gray |= event.type == FaultType::kGrayNode;
  }
  EXPECT_TRUE(has_gray) << report.outcomes[0].shrunk.ToString();
}

// The shrinker's result must still reproduce the failure (minimality is best-effort;
// reproduction is a contract).
TEST(ChaosBugVariants, ShrunkScheduleStillFails) {
  std::unique_ptr<ChaosScenario> scenario = MakeScenario("paxos", {.bug = "quorum1"});
  ASSERT_NE(scenario, nullptr);
  FaultSchedule schedule = GenerateFaultSchedule(1, scenario->FaultProfile());
  ChaosRunResult full = RunChaosOnce(*scenario, 1, schedule, {});
  ASSERT_FALSE(full.passed);

  ShrinkResult shrunk = ShrinkSchedule(schedule, [](const FaultSchedule& candidate) {
    std::unique_ptr<ChaosScenario> fresh = MakeScenario("paxos", {.bug = "quorum1"});
    return !RunChaosOnce(*fresh, 1, candidate, {}).passed;
  });
  EXPECT_LT(shrunk.schedule.events.size(), schedule.events.size());

  std::unique_ptr<ChaosScenario> replay = MakeScenario("paxos", {.bug = "quorum1"});
  ChaosRunResult result = RunChaosOnce(*replay, 1, shrunk.schedule, {});
  EXPECT_FALSE(result.passed) << "shrunk schedule no longer reproduces:\n"
                              << shrunk.schedule.ToString();
}

// ---------------------------------------------------------------------------------------
// Gray-failure scheduling oracle: under a limping tracker, LATE's speculative execution
// must beat FIFO's tail latency. This is the behavioral claim behind shipping LATE at all
// (Zaharia et al., OSDI 2008) — a policy swap, observable purely in the p99.
// ---------------------------------------------------------------------------------------

// Runs the same sequential job stream against a cluster whose tracker tt3 limps (x30 —
// slow enough to wreck latency, fast enough that heartbeats stay timely and the attempt
// timeout never fires) and returns the sorted per-job latencies.
std::vector<double> GrayOracleJobLatencies(MrPolicy policy) {
  Cluster cluster(8888);
  MrSetupOptions opts;
  opts.policy = policy;
  opts.num_trackers = 5;
  opts.map_slots = 2;
  opts.reduce_slots = 1;
  MrHandles handles = SetupMr(cluster, opts);

  FaultSchedule schedule;
  FaultEvent gray;
  gray.type = FaultType::kGrayNode;
  gray.start_ms = 500;
  gray.duration_ms = 300000;  // outlasts the whole run: no self-healing
  gray.node = handles.trackers[3];
  gray.slowdown_factor = 30;
  schedule.events.push_back(gray);
  ApplySchedule(cluster, schedule, /*fresh_state=*/false);

  std::vector<double> latencies;
  for (int j = 0; j < 8; ++j) {
    JobSpec spec;
    spec.job_id = handles.client->NextJobId();
    spec.client = handles.client->address();
    spec.num_maps = 8;  // > healthy map slots, so some map lands on the gray tracker
    spec.num_reduces = 2;
    spec.duration_ms = [](const TaskRef& task, const std::string&) {
      return 250.0 + ((task.job_id * 31 + task.task_id * 17) % 5) * 30.0;
    };
    double submitted = cluster.now();
    double finish = RunJobSync(cluster, handles, std::move(spec));
    EXPECT_GT(finish, 0) << MrPolicyName(policy) << " job " << j << " timed out";
    latencies.push_back(finish - submitted);
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

TEST(ChaosTest, GrayFailureLateBeatsFifoTail) {
  std::vector<double> fifo = GrayOracleJobLatencies(MrPolicy::kFifo);
  std::vector<double> late = GrayOracleJobLatencies(MrPolicy::kLate);
  ASSERT_EQ(fifo.size(), 8u);
  ASSERT_EQ(late.size(), 8u);
  // 8 samples: p99 is the max. FIFO waits out every ~250ms task inflated to ~7.5s on the
  // limping tracker; LATE speculates a second attempt on a healthy node and takes the
  // winner. Require at least a 2x tail gap — the measured gap is far larger.
  double fifo_p99 = fifo.back();
  double late_p99 = late.back();
  EXPECT_LT(late_p99 * 2, fifo_p99)
      << "LATE p99 " << late_p99 << " vs FIFO p99 " << fifo_p99;
  // And the gray node must have actually hurt FIFO (sanity that the fault landed).
  EXPECT_GT(fifo_p99, 5000) << "gray failure never touched the FIFO run";
}

// ---------------------------------------------------------------------------------------
// Hand-crafted end-to-end churn scenarios kept from the original suite: they exercise the
// HA (Paxos-replicated) NameNode and re-replication paths the generated sweeps do not.
// ---------------------------------------------------------------------------------------

// The HA file system keeps serving through a kill->recover->kill-another schedule.
TEST(ChaosTest, HaFsSurvivesLeaderChurn) {
  Cluster cluster(31415);
  HaFsOptions opts;
  opts.num_replicas = 3;
  opts.num_datanodes = 4;
  HaFsHandles handles = SetupHaFs(cluster, opts);
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/240000);
  cluster.RunUntil(3000);

  ASSERT_TRUE(fs.Mkdir("/base"));
  int created = 0;
  auto create_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      if (fs.CreateFile("/base/f" + std::to_string(created))) {
        ++created;
      }
    }
  };

  create_some(5);
  cluster.KillNode(handles.replicas[0]);  // primary dies
  cluster.RunUntil(cluster.now() + 4000);
  create_some(5);
  cluster.RestartNode(handles.replicas[0], /*fresh_state=*/true);  // recovers empty
  cluster.RunUntil(cluster.now() + 4000);
  create_some(5);
  cluster.KillNode(handles.replicas[1]);  // current leader dies
  cluster.RunUntil(cluster.now() + 4000);
  create_some(5);

  EXPECT_GE(created, 18) << "too many operations lost across failovers";
  // All created files are visible via ls.
  std::vector<std::string> names;
  ASSERT_TRUE(fs.Ls("/base", &names));
  EXPECT_EQ(names.size(), static_cast<size_t>(created));
}

// BOOM-FS data survives DataNode churn: kill nodes one at a time (waiting for re-replication
// between kills) and the file must remain readable throughout.
TEST(ChaosTest, BoomFsSurvivesDataNodeChurn) {
  Cluster cluster(2718);
  FsSetupOptions opts;
  opts.kind = FsKind::kBoomFs;
  opts.num_datanodes = 6;
  opts.replication_factor = 3;
  opts.chunk_size = 16;
  opts.heartbeat_period_ms = 300;
  opts.heartbeat_timeout_ms = 1200;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client);
  cluster.RunUntil(1500);

  const std::string payload = "chunked payload that must survive datanode churn, honest";
  ASSERT_TRUE(fs.Mkdir("/c"));
  ASSERT_TRUE(fs.WriteFile("/c/data", payload));
  cluster.RunUntil(cluster.now() + 2000);

  // Kill half the datanodes, one at a time, with recovery windows between.
  for (int i = 0; i < 3; ++i) {
    cluster.KillNode(handles.datanodes[static_cast<size_t>(i)]);
    cluster.RunUntil(cluster.now() + 12000);  // detector + re-replication
    std::string read_back;
    ASSERT_TRUE(fs.ReadFile("/c/data", &read_back)) << "after killing dn" << i;
    EXPECT_EQ(read_back, payload) << "after killing dn" << i;
  }
}

}  // namespace
}  // namespace boom
