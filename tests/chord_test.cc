// Chord-in-Overlog tests: ring convergence via stabilization, lookup correctness against a
// sorted-id oracle, and incremental join.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/chord/chord_program.h"

namespace boom {
namespace {

std::vector<std::string> Addresses(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back("chord" + std::to_string(i));
  }
  return out;
}

// Oracle: the owner of `key` is the node with the smallest id >= key (wrapping).
std::string OracleOwner(const std::vector<std::string>& nodes, int64_t key) {
  std::map<int64_t, std::string> ring;
  for (const std::string& n : nodes) {
    ring[ChordId(n)] = n;
  }
  auto it = ring.lower_bound(key);
  if (it == ring.end()) {
    it = ring.begin();  // wrap
  }
  return it->second;
}

// True when successor pointers form the sorted-id ring.
bool RingConverged(Cluster& cluster, const std::vector<std::string>& nodes) {
  std::vector<std::pair<int64_t, std::string>> sorted;
  for (const std::string& n : nodes) {
    sorted.emplace_back(ChordId(n), n);
  }
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const std::string& expected_succ = sorted[(i + 1) % sorted.size()].second;
    if (SuccessorOf(cluster, sorted[i].second) != expected_succ) {
      return false;
    }
  }
  return true;
}

TEST(ChordTest, DistinctIds) {
  std::set<int64_t> ids;
  for (const std::string& a : Addresses(12)) {
    ids.insert(ChordId(a));
  }
  EXPECT_EQ(ids.size(), 12u);  // no collisions among the test addresses
  EXPECT_EQ(ChordId("x"), ChordId("x"));
}

TEST(ChordTest, SingleNodeOwnsEverything) {
  Cluster cluster(5);
  std::vector<std::string> nodes = Addresses(1);
  SetupChordRing(cluster, nodes);
  cluster.RunUntil(1000);
  EXPECT_EQ(SuccessorOf(cluster, nodes[0]), nodes[0]);
  int hops = -1;
  EXPECT_EQ(LookupSync(cluster, nodes[0], 12345, &hops), nodes[0]);
  EXPECT_EQ(hops, 0);
}

TEST(ChordTest, TwoNodesFormARing) {
  Cluster cluster(5);
  std::vector<std::string> nodes = Addresses(2);
  SetupChordRing(cluster, nodes);
  cluster.RunUntil(5000);
  EXPECT_EQ(SuccessorOf(cluster, nodes[0]), nodes[1]);
  EXPECT_EQ(SuccessorOf(cluster, nodes[1]), nodes[0]);
}

class ChordRingSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChordRingSweep, StabilizesAndRoutesCorrectly) {
  const int n = GetParam();
  Cluster cluster(99);
  std::vector<std::string> nodes = Addresses(n);
  SetupChordRing(cluster, nodes);

  // Stabilization needs O(ring length) rounds to converge.
  double deadline = 1000.0 * n + 10000;
  while (cluster.now() < deadline && !RingConverged(cluster, nodes)) {
    cluster.RunUntil(cluster.now() + 500);
  }
  ASSERT_TRUE(RingConverged(cluster, nodes)) << "ring did not converge for n=" << n;

  // Lookups from several vantage points agree with the oracle.
  std::mt19937_64 gen(42);
  for (int i = 0; i < 12; ++i) {
    int64_t key = static_cast<int64_t>(gen() % (1 << 16));
    const std::string& via = nodes[static_cast<size_t>(i) % nodes.size()];
    int hops = -1;
    std::string owner = LookupSync(cluster, via, key, &hops);
    EXPECT_EQ(owner, OracleOwner(nodes, key)) << "key " << key << " via " << via;
    EXPECT_GE(hops, 0);
    EXPECT_LT(hops, n + 1) << "lookup circled the ring more than once";
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ChordRingSweep, ::testing::Values(3, 5, 8, 12),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "N" + std::to_string(info.param);
                         });

TEST(ChordTest, LateJoinerIsAbsorbed) {
  Cluster cluster(7);
  std::vector<std::string> nodes = Addresses(4);
  SetupChordRing(cluster, nodes);
  double deadline = 20000;
  while (cluster.now() < deadline && !RingConverged(cluster, nodes)) {
    cluster.RunUntil(cluster.now() + 500);
  }
  ASSERT_TRUE(RingConverged(cluster, nodes));

  // A fifth node joins the running ring through the bootstrap.
  ChordOptions opts;
  opts.bootstrap = nodes[0];
  std::string late = "chord_late";
  Program source = ChordProgram(late, opts);
  cluster.AddOverlogNode(late, [source](Engine& engine) {
    ASSERT_TRUE(engine.Install(source).ok());
  });
  std::vector<std::string> all = nodes;
  all.push_back(late);
  deadline = cluster.now() + 30000;
  while (cluster.now() < deadline && !RingConverged(cluster, all)) {
    cluster.RunUntil(cluster.now() + 500);
  }
  EXPECT_TRUE(RingConverged(cluster, all)) << "late joiner never absorbed";
  // And it is reachable by lookup.
  int64_t its_id = ChordId(late);
  EXPECT_EQ(LookupSync(cluster, nodes[1], its_id), late);
}

}  // namespace
}  // namespace boom
