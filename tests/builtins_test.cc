#include <gtest/gtest.h>

#include "src/overlog/builtins.h"

namespace boom {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  BuiltinsTest() : reg_(BuiltinRegistry::Standard()) {
    ctx_.now_ms = 123.0;
    ctx_.local_address = "node7";
    ctx_.rng = &rng_;
    ctx_.id_counter = &counter_;
    ctx_.id_salt = 0x42;
  }

  Value Call(const std::string& name, std::vector<Value> args) {
    Result<Value> r = reg_.Call(ctx_, name, args);
    EXPECT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    return r.ok() ? *r : Value();
  }
  Status CallErr(const std::string& name, std::vector<Value> args) {
    return reg_.Call(ctx_, name, args).status();
  }

  BuiltinRegistry reg_;
  EvalContext ctx_;
  std::mt19937_64 rng_{99};
  uint64_t counter_ = 0;
};

TEST_F(BuiltinsTest, Arithmetic) {
  EXPECT_EQ(Call("+", {Value(2), Value(3)}), Value(5));
  EXPECT_EQ(Call("-", {Value(2), Value(3)}), Value(-1));
  EXPECT_EQ(Call("*", {Value(4), Value(3)}), Value(12));
  EXPECT_EQ(Call("/", {Value(7), Value(2)}), Value(3));  // integer division
  EXPECT_EQ(Call("/", {Value(7.0), Value(2)}), Value(3.5));
  EXPECT_EQ(Call("%", {Value(7), Value(3)}), Value(1));
  EXPECT_EQ(Call("%", {Value(-1), Value(3)}), Value(2));  // non-negative modulo
}

TEST_F(BuiltinsTest, ArithmeticErrors) {
  EXPECT_FALSE(CallErr("/", {Value(1), Value(0)}).ok());
  EXPECT_FALSE(CallErr("%", {Value(1), Value(0)}).ok());
  EXPECT_FALSE(CallErr("+", {Value("a"), Value(1)}).ok());
  EXPECT_FALSE(CallErr("+", {Value(1)}).ok());  // arity
}

TEST_F(BuiltinsTest, StringPlusConcatenates) {
  EXPECT_EQ(Call("+", {Value("foo"), Value("bar")}), Value("foobar"));
}

TEST_F(BuiltinsTest, ListPlusConcatenates) {
  Value result = Call("+", {Value(ValueList{Value(1)}), Value(ValueList{Value(2)})});
  ASSERT_TRUE(result.is_list());
  EXPECT_EQ(result.as_list().size(), 2u);
}

TEST_F(BuiltinsTest, Comparisons) {
  EXPECT_EQ(Call("<", {Value(1), Value(2)}), Value(true));
  EXPECT_EQ(Call(">=", {Value(2), Value(2)}), Value(true));
  EXPECT_EQ(Call("==", {Value("x"), Value("x")}), Value(true));
  EXPECT_EQ(Call("!=", {Value(1), Value(1.0)}), Value(false));
}

TEST_F(BuiltinsTest, BooleanOps) {
  EXPECT_EQ(Call("&&", {Value(true), Value(0)}), Value(false));
  EXPECT_EQ(Call("||", {Value(false), Value("nonempty")}), Value(true));
  EXPECT_EQ(Call("!", {Value(false)}), Value(true));
}

TEST_F(BuiltinsTest, If) {
  EXPECT_EQ(Call("if", {Value(true), Value(1), Value(2)}), Value(1));
  EXPECT_EQ(Call("if", {Value(0), Value(1), Value(2)}), Value(2));
}

TEST_F(BuiltinsTest, Strings) {
  EXPECT_EQ(Call("str_cat", {Value("a"), Value(1), Value("b")}), Value("a1b"));
  EXPECT_EQ(Call("str_len", {Value("abc")}), Value(3));
  EXPECT_EQ(Call("to_string", {Value(42)}), Value("42"));
  EXPECT_EQ(Call("to_int", {Value("17")}), Value(17));
  EXPECT_EQ(Call("to_int", {Value(3.9)}), Value(3));
  EXPECT_EQ(Call("starts_with", {Value("/a/b"), Value("/a")}), Value(true));
}

TEST_F(BuiltinsTest, Paths) {
  EXPECT_EQ(Call("path_join", {Value("/a"), Value("b")}), Value("/a/b"));
  EXPECT_EQ(Call("path_join", {Value("/"), Value("b")}), Value("/b"));
  EXPECT_EQ(Call("path_dirname", {Value("/a/b")}), Value("/a"));
  EXPECT_EQ(Call("path_basename", {Value("/a/b")}), Value("b"));
}

TEST_F(BuiltinsTest, HashStableAndNonNegative) {
  Value h1 = Call("hash", {Value("key")});
  Value h2 = Call("hash", {Value("key")});
  EXPECT_EQ(h1, h2);
  EXPECT_GE(h1.as_int(), 0);
  EXPECT_NE(h1, Call("hash", {Value("other")}));
}

TEST_F(BuiltinsTest, MathHelpers) {
  EXPECT_EQ(Call("abs", {Value(-5)}), Value(5));
  EXPECT_EQ(Call("floor", {Value(2.7)}), Value(2));
  EXPECT_EQ(Call("ceil", {Value(2.1)}), Value(3));
  EXPECT_EQ(Call("f_min", {Value(3), Value(7)}), Value(3));
  EXPECT_EQ(Call("f_max", {Value(3), Value(7)}), Value(7));
}

TEST_F(BuiltinsTest, ListOps) {
  Value list = Call("list", {Value(1), Value("a")});
  EXPECT_EQ(Call("list_len", {list}), Value(2));
  EXPECT_EQ(Call("list_get", {list, Value(1)}), Value("a"));
  EXPECT_FALSE(CallErr("list_get", {list, Value(5)}).ok());
  EXPECT_EQ(Call("list_contains", {list, Value(1)}), Value(true));
  EXPECT_EQ(Call("list_contains", {list, Value(9)}), Value(false));
  Value appended = Call("list_append", {list, Value(true)});
  EXPECT_EQ(appended.as_list().size(), 3u);
}

TEST_F(BuiltinsTest, ListProject) {
  Value pairs(ValueList{Value(ValueList{Value(3), Value("dn1")}),
                        Value(ValueList{Value(5), Value("dn2")})});
  Value projected = Call("list_project", {pairs, Value(1)});
  ASSERT_TRUE(projected.is_list());
  ASSERT_EQ(projected.as_list().size(), 2u);
  EXPECT_EQ(projected.as_list()[0], Value("dn1"));
  EXPECT_EQ(projected.as_list()[1], Value("dn2"));
  EXPECT_FALSE(CallErr("list_project", {pairs, Value(7)}).ok());
}

TEST_F(BuiltinsTest, ContextBuiltins) {
  EXPECT_EQ(Call("f_now", {}), Value(123.0));
  EXPECT_EQ(Call("f_me", {}), Value("node7"));
  Value r = Call("f_rand", {});
  EXPECT_GE(r.as_double(), 0.0);
  EXPECT_LT(r.as_double(), 1.0);
  Value ri = Call("f_randint", {Value(10)});
  EXPECT_GE(ri.as_int(), 0);
  EXPECT_LT(ri.as_int(), 10);
  Value id1 = Call("f_unique_id", {});
  Value id2 = Call("f_unique_id", {});
  EXPECT_NE(id1, id2);
}

TEST_F(BuiltinsTest, UnknownFunction) {
  EXPECT_EQ(CallErr("no_such_fn", {}).code(), StatusCode::kNotFound);
}

TEST_F(BuiltinsTest, RegistryExtension) {
  reg_.Register("double_it", 1, [](const EvalContext&, const std::vector<Value>& a) {
    return Result<Value>(Value(a[0].as_int() * 2));
  });
  EXPECT_TRUE(reg_.Has("double_it"));
  EXPECT_EQ(Call("double_it", {Value(21)}), Value(42));
}

}  // namespace
}  // namespace boom
