// Cost-based optimizer tests (ctest label: optimizer).
//
// The optimizer contract has two halves, and this suite pins both:
//
//  1. Profit: with live table stats the planner reorders joins ahead of fat relations,
//     warms the probe indexes it chose, shares identical body prefixes, maintains indexes
//     incrementally across replace/erase, and re-plans deterministically when cardinality
//     drifts.
//  2. Safety: none of that may change what a program computes. Every embedded program
//     family runs its reference workload twice — optimizer off (the classic greedy plans)
//     and on — and the resulting fixpoints must match table-for-table. Chaos runs add the
//     determinism half: an optimizer-on run is a pure function of the seed (byte-identical
//     traces run-to-run), and pass/fail outcomes match the greedy planner seed-for-seed.
//     (Optimizer-on traces are NOT required to equal optimizer-off traces: join order is
//     observable in derivation order, hence in send timing.)

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/boomfs/boomfs.h"
#include "src/boomfs/ha.h"
#include "src/boomfs/nn_program.h"
#include "src/boommr/boommr.h"
#include "src/chaos/fault_schedule.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/chord/chord_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"
#include "src/overlog/planner.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"
#include "src/telemetry/metrics.h"

namespace boom {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> p = ParseProgram(source);
  BOOM_CHECK(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

void MustOk(const Status& status) { BOOM_CHECK(status.ok()) << status.ToString(); }

// --- planner: the cost model actually reorders ------------------------------------------

// Compiles one rule twice — greedy and cost-based with synthetic stats making `small`
// obviously cheaper than `big` — and checks the join orders diverge the way the cost model
// says they should. Greedy ties on bound-arg count and keeps body order (big first).
TEST(OptimizerPlanner, CostModelReordersJoins) {
  Program p = MustParse(R"(
    program t;
    event probe(U);
    table big(U, N);
    table small(U, S) keys(0);
    table out(U, N, S);
    r1 out(U, N, S) :- probe(U), big(U, N), small(U, S), S == 1;
    watch out;
  )");
  Catalog catalog;
  for (const TableDef& def : p.tables) {
    MustOk(catalog.Declare(def));
  }
  std::vector<std::string> programs(p.rules.size(), p.name);

  Result<CompiledProgram> greedy = CompileRules(p.rules, programs, catalog);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ASSERT_EQ(greedy->rules.size(), 1u);
  EXPECT_FALSE(greedy->cost_based);
  EXPECT_EQ(greedy->rules[0].full_variant.steps[0].atom.table, "big");

  PlannerOptions options;
  options.cost_based = true;
  options.stats["big"] = TableStats{10000, {100, 100}, 1.0};
  options.stats["small"] = TableStats{100, {100, 2}, 1.0};
  Result<CompiledProgram> costed = CompileRules(p.rules, programs, catalog, options);
  ASSERT_TRUE(costed.ok()) << costed.status().ToString();
  EXPECT_TRUE(costed->cost_based);
  const CompiledVariant& v = costed->rules[0].full_variant;
  // small(U,S) estimates 100/100 = 1 binding; big(U,N) estimates 10000/100 = 100. Probing
  // small first makes the big probe run once per surviving binding instead of 100 times.
  EXPECT_EQ(v.steps[0].atom.table, "small") << costed->rules[0].name;
  EXPECT_GE(v.est_cost, 0.0);
  EXPECT_LT(v.est_cost, 10000.0);
  // The chosen probes surface as warm-index requests for the engine.
  bool warms_small = false;
  for (const auto& [table, cols] : costed->warm_indexes) {
    warms_small = warms_small || table == "small";
  }
  EXPECT_TRUE(warms_small);
}

TEST(OptimizerPlanner, SharedPrefixDetection) {
  Program p = MustParse(R"(
    program t;
    event go(J);
    table job(J, U) keys(0);
    table task(J, T) keys(0, 1);
    table s1(J, U, T);
    table s2(J, T);
    r1 s1(J, U, T) :- go(J), job(J, U), task(J, T);
    r2 s2(J, T) :- go(J), job(J, U), task(J, T), T != 3;
    watch s1;
    watch s2;
  )");
  Catalog catalog;
  for (const TableDef& def : p.tables) {
    MustOk(catalog.Declare(def));
  }
  std::vector<std::string> programs(p.rules.size(), p.name);

  // Greedy compilation never builds sharing structures (the serial default path must stay
  // byte-identical to the historical evaluator).
  Result<CompiledProgram> greedy = CompileRules(p.rules, programs, catalog);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->shared_prefixes.empty());

  PlannerOptions options;
  options.cost_based = true;
  Result<CompiledProgram> costed = CompileRules(p.rules, programs, catalog, options);
  ASSERT_TRUE(costed.ok()) << costed.status().ToString();
  const SharedPrefixGroup* go_group = nullptr;
  for (const SharedPrefixGroup& g : costed->shared_prefixes) {
    if (g.driver_table == "go") {
      go_group = &g;
    }
  }
  ASSERT_NE(go_group, nullptr) << "no shared prefix driven by go";
  EXPECT_EQ(go_group->members.size(), 2u);
  EXPECT_EQ(go_group->prefix_steps, 2u);  // job + task after the go driver
  EXPECT_EQ(go_group->canon_num_slots, 3);
  // Slot maps translate every canonical slot into a live member slot.
  for (const SharedPrefixMember& m : go_group->members) {
    ASSERT_EQ(m.slot_map.size(), static_cast<size_t>(go_group->canon_num_slots));
    for (int slot : m.slot_map) {
      EXPECT_GE(slot, 0);
      EXPECT_LT(slot, costed->rules[m.rule_index].num_slots);
    }
  }
}

// --- table: incremental index maintenance -----------------------------------------------

TEST(OptimizerTable, IncrementalReplaceEraseAvoidsRebuilds) {
  TableDef def;
  def.name = "t";
  def.columns = {"K", "V"};
  def.key_columns = {0};

  auto churn = [&def](bool incremental) {
    Table table(def);
    table.set_incremental_index_maintenance(incremental);
    for (int k = 0; k < 32; ++k) {
      table.Insert(Tuple{Value(k), Value(k * 10)});
    }
    const std::vector<size_t> by_value{1};
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(50)}).size(), 1u);
    // Replace churn: every even key gets a new payload; cached indexes must follow.
    for (int k = 0; k < 32; k += 2) {
      EXPECT_EQ(table.Insert(Tuple{Value(k), Value(k * 10 + 1)}),
                Table::InsertOutcome::kReplaced);
    }
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(50)}).size(), 1u);   // odd key untouched
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(40)}).size(), 0u);   // old payload gone
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(41)}).size(), 1u);   // new payload indexed
    EXPECT_TRUE(table.EraseByKey(Tuple{Value(5)}));
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(50)}).size(), 0u);
    EXPECT_TRUE(table.Erase(Tuple{Value(7), Value(70)}));
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(70)}).size(), 0u);
    // Fresh inserts after churn still reach the cached index (insert-log catch-up).
    table.Insert(Tuple{Value(100), Value(999)});
    EXPECT_EQ(table.Probe(by_value, Tuple{Value(999)}).size(), 1u);
    EXPECT_EQ(table.size(), 31u);
    return table.index_rebuilds();
  };

  EXPECT_EQ(churn(/*incremental=*/true), 0u)
      << "incremental maintenance paid a full rebuild";
  EXPECT_GE(churn(/*incremental=*/false), 2u)
      << "default path should rebuild after replace/erase (this guards the ablation)";
}

// --- engine: drift re-plan, shared-prefix cache, explain --------------------------------

EngineOptions OptEngine(const std::string& address, bool optimize) {
  EngineOptions opts;
  opts.address = address;
  opts.seed = 5;
  opts.enable_optimizer = optimize;
  return opts;
}

constexpr char kJoinProgram[] = R"(
  program t;
  event probe(U);
  table big(U, N);
  table small(U, S) keys(0);
  table out(U, N, S);
  r1 out(U, N, S) :- probe(U), big(U, N), small(U, S), S == 1;
  watch out;
)";

TEST(OptimizerEngine, DriftTriggersDeterministicReplan) {
  Engine engine(OptEngine("n1", /*optimize=*/true));
  MustOk(engine.InstallSource(kJoinProgram));
  engine.Tick(0);
  // Plan was made against empty tables; load enough rows to cross the drift threshold
  // (replan_min_rows = 64, factor 4).
  for (int i = 0; i < 400; ++i) {
    MustOk(engine.Enqueue("big", Tuple{Value(i % 4), Value(i)}));
  }
  for (int u = 0; u < 4; ++u) {
    MustOk(engine.Enqueue("small", Tuple{Value(u), Value(1)}));
  }
  engine.Tick(1);  // applies the rows (drift check sees pre-insert counts)
  EXPECT_EQ(engine.stats().replans, 0u);
  engine.Tick(2);  // now 0 -> 400 rows is drift: re-plan fires
  EXPECT_EQ(engine.stats().replans, 1u);
  engine.Tick(3);  // counts recorded at re-plan time; no further drift
  EXPECT_EQ(engine.stats().replans, 1u);
  // The re-plan saw big=400 rows (4 distinct keys) vs small=4: the costed order probes
  // small before big.
  std::string plan = engine.ExplainPlan();
  size_t rule_pos = plan.find("t:r1");
  ASSERT_NE(rule_pos, std::string::npos) << plan;
  size_t small_pos = plan.find("small(probe:0)", rule_pos);
  size_t big_pos = plan.find("big(probe:0)", rule_pos);
  ASSERT_NE(small_pos, std::string::npos) << plan;
  ASSERT_NE(big_pos, std::string::npos) << plan;
  EXPECT_LT(small_pos, big_pos) << plan;

  // Same workload, optimizer off: identical join results, no re-plans.
  Engine greedy(OptEngine("n1", /*optimize=*/false));
  MustOk(greedy.InstallSource(kJoinProgram));
  greedy.Tick(0);
  for (int i = 0; i < 400; ++i) {
    MustOk(greedy.Enqueue("big", Tuple{Value(i % 4), Value(i)}));
  }
  for (int u = 0; u < 4; ++u) {
    MustOk(greedy.Enqueue("small", Tuple{Value(u), Value(1)}));
  }
  greedy.Tick(1);
  greedy.Tick(2);
  for (Engine* e : {&engine, &greedy}) {
    for (int u = 0; u < 4; ++u) {
      MustOk(e->Enqueue("probe", Tuple{Value(u)}));
    }
    e->Tick(4);
  }
  EXPECT_EQ(greedy.stats().replans, 0u);
  auto rows = [](const Engine& e) {
    std::multiset<std::string> out;
    e.catalog().Get("out").ForEach([&out](const Tuple& t) { out.insert(t.ToString()); });
    return out;
  };
  EXPECT_EQ(rows(engine), rows(greedy));
  EXPECT_EQ(rows(engine).size(), 400u);
}

TEST(OptimizerEngine, SharedPrefixCacheServesMembers) {
  constexpr char kShared[] = R"(
    program t;
    event go(J);
    table job(J, U) keys(0);
    table task(J, T) keys(0, 1);
    table s1(J, U, T);
    table s2(J, T);
    r1 s1(J, U, T) :- go(J), job(J, U), task(J, T);
    r2 s2(J, T) :- go(J), job(J, U), task(J, T), T != 3;
    watch s1;
    watch s2;
  )";
  auto run = [&](bool optimize) {
    auto engine = std::make_unique<Engine>(OptEngine("n1", optimize));
    MustOk(engine->InstallSource(kShared));
    engine->Tick(0);
    for (int j = 0; j < 8; ++j) {
      MustOk(engine->Enqueue("job", Tuple{Value(j), Value("u" + std::to_string(j % 3))}));
      for (int t = 0; t < 4; ++t) {
        MustOk(engine->Enqueue("task", Tuple{Value(j), Value(t)}));
      }
    }
    engine->Tick(1);
    for (int j = 0; j < 8; ++j) {
      MustOk(engine->Enqueue("go", Tuple{Value(j)}));
    }
    engine->Tick(2);
    return engine;
  };
  auto on = run(true);
  auto off = run(false);
  // The go-driven prefix (go, job, task) is shared by r1 and r2: one canonical evaluation
  // (the fill), one member served from cache, per round that go fires.
  EXPECT_GE(on->stats().shared_prefix_evals, 1u);
  EXPECT_GE(on->stats().shared_prefix_hits, 1u);
  EXPECT_EQ(off->stats().shared_prefix_evals, 0u);
  auto rows = [](const Engine& e, const std::string& name) {
    std::multiset<std::string> out;
    e.catalog().Get(name).ForEach([&out](const Tuple& t) { out.insert(t.ToString()); });
    return out;
  };
  EXPECT_EQ(rows(*on, "s1"), rows(*off, "s1"));
  EXPECT_EQ(rows(*on, "s2"), rows(*off, "s2"));
  EXPECT_EQ(rows(*on, "s1").size(), 32u);
  std::string plan = on->ExplainPlan();
  EXPECT_NE(plan.find("shared prefixes:"), std::string::npos) << plan;
  EXPECT_NE(plan.find("members: r1 r2"), std::string::npos) << plan;
}

TEST(OptimizerEngine, PerfTablePublishesTableStats) {
  Engine engine(OptEngine("n1", /*optimize=*/true));
  MustOk(InstallProfiling(engine));
  MustOk(engine.InstallSource(kJoinProgram));
  engine.Tick(0);
  for (int i = 0; i < 10; ++i) {
    MustOk(engine.Enqueue("big", Tuple{Value(i), Value(i)}));
    MustOk(engine.Enqueue("small", Tuple{Value(i), Value(1)}));
    MustOk(engine.Enqueue("probe", Tuple{Value(i)}));
  }
  engine.Tick(1);
  MustOk(engine.PublishProfile());
  engine.Tick(2);
  const Table& perf = engine.catalog().Get("perf_table");
  std::map<std::string, int64_t> rows_of;
  perf.ForEach([&rows_of](const Tuple& t) {
    rows_of[t[0].as_string()] = t[1].as_int();
  });
  EXPECT_EQ(rows_of["big"], 10);
  EXPECT_EQ(rows_of["small"], 10);
  EXPECT_EQ(rows_of["out"], 10);
  EXPECT_EQ(rows_of["probe"], 0);  // events are empty between ticks

  // The metrics-registry mirror exports the same numbers without a publish tick.
  ExportTableMetrics(engine);
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.gauge("engine.table.big.rows").value(), 10.0);
  EXPECT_GE(registry.gauge("engine.table.small.probes").value(), 1.0);

  // And the index-churn invariant fires from perf_table rows like any Overlog rule.
  std::vector<std::string> violations;
  MustOk(InstallInvariants(engine, IndexChurnInvariantProgram(0), &violations));
  MustOk(engine.Enqueue(
      "perf_table", Tuple{Value("hot"), Value(int64_t{5}), Value(int64_t{100}),
                          Value(int64_t{80}), Value(int64_t{7})}));
  engine.Tick(3);
  ASSERT_EQ(violations.size(), 1u) << (violations.empty() ? "" : violations[0]);
  EXPECT_NE(violations[0].find("hot"), std::string::npos);
}

// --- equivalence: every program family, optimizer off vs on -----------------------------

// Full engine state: every table's rows, as sorted strings (exactly the persistent
// fixpoint; event tables are empty between ticks).
std::map<std::string, std::multiset<std::string>> Snapshot(const Engine& engine) {
  std::map<std::string, std::multiset<std::string>> out;
  for (const std::string& name : engine.catalog().TableNames()) {
    std::multiset<std::string>& rows = out[name];
    engine.catalog().Get(name).ForEach(
        [&rows](const Tuple& row) { rows.insert(row.ToString()); });
  }
  return out;
}

void ExpectSameState(const Engine& off, const Engine& on, const std::string& label) {
  auto a = Snapshot(off);
  auto b = Snapshot(on);
  ASSERT_EQ(a.size(), b.size()) << label << ": different table sets";
  for (const auto& [table, rows] : a) {
    ASSERT_TRUE(b.count(table)) << label << ": table " << table
                                << " missing on optimizer side";
    EXPECT_EQ(rows, b[table]) << label << ": table " << table << " diverged";
  }
}

ClusterOptions OptCluster(bool optimize) {
  ClusterOptions copts;
  copts.enable_engine_optimizer = optimize;
  return copts;
}

// The reference workloads below mirror program_equivalence_test.cc (which compares
// module-built programs against frozen golden texts); here both sides run the module-built
// program and only the planner differs.

struct FsRun {
  Cluster cluster;
  FsHandles handles;

  explicit FsRun(bool optimize) : cluster(4242, OptCluster(optimize)) {
    handles = SetupFs(cluster, FsSetupOptions{});
    SyncFs fs(cluster, handles.client);
    cluster.RunUntil(1000);
    EXPECT_TRUE(fs.Mkdir("/a"));
    EXPECT_TRUE(fs.Mkdir("/a/b"));
    EXPECT_TRUE(fs.CreateFile("/a/f1"));
    EXPECT_TRUE(fs.WriteFile("/a/b/w1", "optimizer-equivalence-payload"));
    EXPECT_FALSE(fs.Mkdir("/a"));
    std::string data;
    EXPECT_TRUE(fs.ReadFile("/a/b/w1", &data));
    EXPECT_EQ(data, "optimizer-equivalence-payload");
    cluster.KillNode(handles.datanodes[0]);  // failure detector + re-replication churn
    cluster.RunUntil(cluster.now() + 4000);
    EXPECT_TRUE(fs.Rm("/a/f1"));
    EXPECT_FALSE(fs.Exists("/a/f1"));
    cluster.RunUntil(cluster.now() + 2000);
  }
};

TEST(OptimizerEquivalence, BoomFsNn) {
  FsRun off(/*optimize=*/false);
  FsRun on(/*optimize=*/true);
  ExpectSameState(*off.cluster.engine("nn"), *on.cluster.engine("nn"), "boomfs_nn");
}

struct MrRun {
  Cluster cluster;
  MrHandles handles;
  double finish_ms = -1;

  MrRun(MrPolicy policy, bool optimize) : cluster(7777, OptCluster(optimize)) {
    MrSetupOptions opts;
    opts.policy = policy;
    opts.num_trackers = 4;
    opts.tracker_slowdowns = {1.0, 1.0, 1.0, 6.0};  // straggler so LATE speculates
    handles = SetupMr(cluster, opts);
    JobSpec spec;
    spec.job_id = handles.client->NextJobId();
    spec.client = handles.client->address();
    spec.num_maps = 6;
    spec.num_reduces = 2;
    spec.duration_ms = [](const TaskRef& task, const std::string&) {
      return 200.0 + ((task.job_id * 31 + task.task_id * 17) % 5) * 40.0;
    };
    finish_ms = RunJobSync(cluster, handles, std::move(spec));
    EXPECT_GT(finish_ms, 0);
    cluster.RunUntil(cluster.now() + 2000);
  }
};

TEST(OptimizerEquivalence, BoomMrJtFifo) {
  MrRun off(MrPolicy::kFifo, /*optimize=*/false);
  MrRun on(MrPolicy::kFifo, /*optimize=*/true);
  EXPECT_EQ(off.finish_ms, on.finish_ms);
  ExpectSameState(*off.cluster.engine("jt"), *on.cluster.engine("jt"), "jt_fifo");
}

TEST(OptimizerEquivalence, BoomMrJtLate) {
  MrRun off(MrPolicy::kLate, /*optimize=*/false);
  MrRun on(MrPolicy::kLate, /*optimize=*/true);
  EXPECT_EQ(off.finish_ms, on.finish_ms);
  ExpectSameState(*off.cluster.engine("jt"), *on.cluster.engine("jt"), "jt_late");
}

struct PaxosRun {
  Cluster cluster;
  std::vector<std::string> peers = {"px0", "px1", "px2"};

  explicit PaxosRun(bool optimize) : cluster(99, OptCluster(optimize)) {
    for (int i = 0; i < 3; ++i) {
      PaxosProgramOptions opts;
      opts.peers = peers;
      opts.my_index = i;
      Program program = PaxosProgram(opts);
      cluster.AddOverlogNode(peers[static_cast<size_t>(i)], [program](Engine& engine) {
        Status status = engine.Install(program);
        ASSERT_TRUE(status.ok()) << status.ToString();
      });
    }
    cluster.RunUntil(2000);
    for (int k = 0; k < 5; ++k) {
      cluster.Send("px0", "px0", "px_request",
                   Tuple{Value("px0"), Value("cmd-" + std::to_string(k))});
    }
    cluster.RunUntil(6000);
    cluster.KillNode("px0");
    cluster.RunUntil(10000);
    cluster.Send("px1", "px1", "px_request", Tuple{Value("px1"), Value("after-failover")});
    cluster.RunUntil(14000);
  }
};

TEST(OptimizerEquivalence, Paxos) {
  PaxosRun off(/*optimize=*/false);
  PaxosRun on(/*optimize=*/true);
  for (const std::string& p : off.peers) {
    ExpectSameState(*off.cluster.engine(p), *on.cluster.engine(p), "paxos " + p);
  }
  const Table& decided = on.cluster.engine("px1")->catalog().Get("decided");
  size_t n = 0;
  decided.ForEach([&n](const Tuple&) { ++n; });
  EXPECT_EQ(n, 6u);
}

struct ChordRun {
  Cluster cluster;
  std::vector<std::string> addresses = {"c0", "c1", "c2"};

  explicit ChordRun(bool optimize) : cluster(321, OptCluster(optimize)) {
    for (const std::string& address : addresses) {
      ChordOptions opts;
      opts.bootstrap = "c0";
      Program program = ChordProgram(address, opts);
      cluster.AddOverlogNode(address, [program](Engine& engine) {
        Status status = engine.Install(program);
        ASSERT_TRUE(status.ok()) << status.ToString();
      });
    }
    cluster.RunUntil(8000);  // join + stabilize
  }
};

TEST(OptimizerEquivalence, Chord) {
  ChordRun off(/*optimize=*/false);
  ChordRun on(/*optimize=*/true);
  for (const std::string& address : off.addresses) {
    ExpectSameState(*off.cluster.engine(address), *on.cluster.engine(address),
                    "chord " + address);
    EXPECT_FALSE(SuccessorOf(on.cluster, address).empty()) << address;
  }
}

// Paxos + BOOM-FS + HA bridge stacked on one bare engine: protocol traffic (every
// outbound send) must match as a multiset — join order legitimately reorders sends within
// a tick, so sequence equality is not required across planners.
struct StackRun {
  Engine engine;
  std::multiset<std::string> sends;

  explicit StackRun(bool optimize) : engine(OptEngine("nn0", optimize)) {
    PaxosProgramOptions paxos_opts;
    paxos_opts.peers = {"nn0", "nn1", "nn2"};
    paxos_opts.my_index = 0;
    MustOk(engine.Install(PaxosProgram(paxos_opts)));
    MustOk(engine.Install(BoomFsNnProgram()));
    MustOk(engine.Install(HaBridgeProgram()));
    for (double t = 0; t <= 3000; t += 100) {
      if (t == 1500) {
        MustOk(engine.Enqueue("ha_request",
                              Tuple{Value("nn0"), Value(int64_t{1}), Value("client"),
                                    Value("mkdir"), Value("/ha-dir"), Value("")}));
      }
      Engine::TickResult result = engine.Tick(t);
      EXPECT_TRUE(result.errors.empty()) << result.errors.front();
      for (const Engine::Send& send : result.sends) {
        sends.insert(send.dest + " " + send.table + " " + send.tuple.ToString());
      }
    }
  }
};

TEST(OptimizerEquivalence, HaBridgeStack) {
  StackRun off(/*optimize=*/false);
  StackRun on(/*optimize=*/true);
  EXPECT_EQ(off.sends, on.sends);
  ExpectSameState(off.engine, on.engine, "ha_stack");
  EXPECT_FALSE(on.sends.empty()) << "stack produced no protocol traffic";
}

// Monitor invariants over the NameNode program: violations fire identically (watch order
// may differ with join order, so compare as multisets).
struct InvariantRun {
  Engine engine;
  std::vector<std::string> violations;

  explicit InvariantRun(bool optimize) : engine(OptEngine("nn", optimize)) {
    MustOk(engine.Install(BoomFsNnProgram()));
    MustOk(InstallInvariants(engine, BoomFsInvariantProgram(3, true), &violations));
    MustOk(engine.Enqueue("file", Tuple{Value(1), Value(0), Value("f"), Value(false)}));
    MustOk(
        engine.Enqueue("file", Tuple{Value(5), Value(77), Value("orphan"), Value(false)}));
    MustOk(engine.Enqueue("fqpath", Tuple{Value("/alias"), Value(1)}));
    for (int c = 1; c <= 3; ++c) {
      MustOk(engine.Enqueue("fchunk", Tuple{Value(c * 10), Value(1)}));
    }
    int reps = 0;
    for (int c = 1; c <= 3; ++c) {
      int want = c == 1 ? 4 : (c == 2 ? 1 : 3);
      for (int r = 0; r < want; ++r) {
        MustOk(engine.Enqueue("hb_chunk",
                              Tuple{Value("dn" + std::to_string(reps++)), Value(c * 10)}));
      }
    }
    for (double t = 0; t <= 500; t += 100) {
      engine.Tick(t);
    }
  }
};

TEST(OptimizerEquivalence, BoomFsInvariants) {
  InvariantRun off(/*optimize=*/false);
  InvariantRun on(/*optimize=*/true);
  std::multiset<std::string> a(off.violations.begin(), off.violations.end());
  std::multiset<std::string> b(on.violations.begin(), on.violations.end());
  EXPECT_EQ(a, b);
  ExpectSameState(off.engine, on.engine, "boomfs_invariants");
  EXPECT_GE(on.violations.size(), 3u);
}

// --- chaos: per-seed determinism and outcome equality -----------------------------------

ChaosRunResult ChaosRun(const std::string& scenario_name, uint64_t seed, bool optimize) {
  std::unique_ptr<ChaosScenario> scenario = MakeScenario(scenario_name);
  FaultSchedule schedule = GenerateFaultSchedule(seed, scenario->FaultProfile());
  ChaosRunOptions options;
  options.record_trace = true;
  options.enable_engine_optimizer = optimize;
  return RunChaosOnce(*scenario, seed, schedule, options);
}

class OptimizerChaos : public ::testing::TestWithParam<std::string> {};

// Ten seeds per scenario: (a) an optimizer-on run is a pure function of the seed — two
// runs produce byte-identical traces and outcomes (re-planning and stats harvesting must
// not leak any order- or clock-dependence); (b) optimizer on/off agree on pass/fail and on
// the violation set (traces may differ: join order is observable in send timing).
TEST_P(OptimizerChaos, SeedDeterminismAndOutcomeEquality) {
  const std::string scenario = GetParam();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    ChaosRunResult on_a = ChaosRun(scenario, seed, /*optimize=*/true);
    ChaosRunResult on_b = ChaosRun(scenario, seed, /*optimize=*/true);
    ASSERT_FALSE(on_a.trace.empty()) << scenario << " seed " << seed;
    EXPECT_EQ(on_a.trace, on_b.trace)
        << scenario << " seed " << seed << ": optimizer-on run is not deterministic";
    EXPECT_EQ(on_a.passed, on_b.passed) << scenario << " seed " << seed;
    EXPECT_EQ(on_a.violations, on_b.violations) << scenario << " seed " << seed;
    EXPECT_EQ(on_a.end_ms, on_b.end_ms) << scenario << " seed " << seed;

    ChaosRunResult off = ChaosRun(scenario, seed, /*optimize=*/false);
    EXPECT_EQ(off.passed, on_a.passed)
        << scenario << " seed " << seed << ": optimizer changed the run outcome";
    std::multiset<std::string> off_v(off.violations.begin(), off.violations.end());
    std::multiset<std::string> on_v(on_a.violations.begin(), on_a.violations.end());
    EXPECT_EQ(off_v, on_v) << scenario << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, OptimizerChaos,
                         ::testing::Values("boomfs", "boommr"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace boom
