// Unit tests for the Overlog static analyzer: one minimal failing program per diagnostic
// code, plus the exemptions (extern declarations, external inputs/outputs, strictness
// toggles) that make the same checks usable both at build time (strict) and install time
// (advisory).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/base/logging.h"
#include "src/overlog/analyzer.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

Program MustParse(const std::string& source, ParserOptions options = {}) {
  Result<Program> p = ParseProgram(source, options);
  BOOM_CHECK(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// Count of diagnostics with `code` (any severity).
size_t CountCode(const AnalyzerReport& report, const std::string& code) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    n += d.code == code ? 1 : 0;
  }
  return n;
}

const Diagnostic* FindCode(const AnalyzerReport& report, const std::string& code) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) {
      return &d;
    }
  }
  return nullptr;
}

TEST(AnalyzerTest, CleanProgramPasses) {
  Program p = MustParse(R"(
    program clean;
    table link(A, B);
    table reach(A, B);
    link("x", "y");
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
    watch reach;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.num_errors(), 0u) << report.ToString();
  EXPECT_EQ(report.num_warnings(), 0u) << report.ToString();
  // The recursive join probes reach on its first column, which the (whole-row) key does
  // not cover — the advisory tier points that out without failing anything.
  ASSERT_EQ(report.diagnostics.size(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics[0].code, "wants-index");
  EXPECT_EQ(report.diagnostics[0].severity, DiagnosticSeverity::kAdvisory);

  AnalyzerOptions quiet;
  quiet.advisories = false;
  EXPECT_EQ(AnalyzeProgram(p, quiet).diagnostics.size(), 0u);
}

// The parser already hard-errors on in-file duplicates and ProgramBuilder on cross-module
// ones, so this diagnostic fires only for AST-built programs — build one.
TEST(AnalyzerTest, DuplicateRule) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table b(X);
    r1 b(X) :- a(X);
    watch b;
  )");
  p.rules.push_back(p.rules[0]);
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(CountCode(report, "duplicate-rule"), 1u) << report.ToString();
  EXPECT_EQ(FindCode(report, "duplicate-rule")->rule, "r1");
}

TEST(AnalyzerTest, DuplicateTimer) {
  Program p = MustParse(R"(
    program t;
    table seen(X);
    timer tick(100);
    r1 seen(X) :- tick(X);
    watch seen;
  )");
  p.timers.push_back(p.timers[0]);
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountCode(report, "duplicate-timer"), 1u) << report.ToString();
}

TEST(AnalyzerTest, RedeclarationConflict) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table sink(X);
    r1 sink(X) :- a(X);
    watch sink;
  )");
  TableDef again;
  again.name = "a";
  again.columns = {"X", "Y"};  // different arity
  p.tables.push_back(again);
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCode(report, "redeclaration-conflict");
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_NE(d->message.find("a"), std::string::npos);
}

TEST(AnalyzerTest, UndeclaredTable) {
  // known_tables lets the parse through; the analyzer (which has no external_tables here)
  // still rejects the reference.
  ParserOptions options;
  options.known_tables = {"mystery"};
  Program p = MustParse(R"(
    program t;
    table sink(X);
    r1 sink(X) :- mystery(X);
    watch sink;
  )",
                        options);
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountCode(report, "undeclared-table"), 1u) << report.ToString();

  // The same program is clean when `mystery` is declared external (another program on the
  // engine owns it) — arity goes unchecked because the schema is unknown here.
  AnalyzerOptions aopts;
  aopts.external_tables = {"mystery"};
  EXPECT_TRUE(AnalyzeProgram(p, aopts).ok());
}

TEST(AnalyzerTest, ArityMismatch) {
  Program p = MustParse(R"(
    program t;
    table pair(A, B);
    table sink(X);
    r1 sink(X) :- pair(X);
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCode(report, "arity-mismatch");
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->rule, "r1");
}

TEST(AnalyzerTest, ArityMismatchInFact) {
  Program p = MustParse(R"(
    program t;
    table pair(A, B);
    watch pair;
  )");
  Fact fact;
  fact.table = "pair";
  fact.tuple = Tuple{Value(1)};
  p.facts.push_back(fact);
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountCode(report, "arity-mismatch"), 1u) << report.ToString();
}

TEST(AnalyzerTest, UnboundHeadVar) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table sink(X, Y);
    r1 sink(X, Orphan) :- a(X);
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCode(report, "unbound-head-var");
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_NE(d->message.find("Orphan"), std::string::npos);
}

TEST(AnalyzerTest, UnsafeNegation) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table b(X);
    table sink(X);
    r1 sink(X) :- a(X), notin b(Unbound);
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountCode(report, "unsafe-negation"), 1u) << report.ToString();

  // Wildcards in negation are fine ("no row with this first column at all").
  Program ok = MustParse(R"(
    program t;
    table a(X);
    table b(X);
    table sink(X);
    r1 sink(X) :- a(X), notin b(_);
    watch sink;
  )");
  EXPECT_TRUE(AnalyzeProgram(ok).ok());
}

TEST(AnalyzerTest, UnboundCondition) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table sink(X);
    r1 sink(X) :- a(X), Nothing > 3;
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountCode(report, "unbound-condition"), 1u) << report.ToString();
}

TEST(AnalyzerTest, UnboundAssignmentInput) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table sink(X, Y);
    r1 sink(X, Y) :- a(X), Y := Missing + 1;
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  // The assignment never becomes schedulable and its target never binds the head.
  EXPECT_GE(CountCode(report, "unbound-condition"), 1u) << report.ToString();
}

TEST(AnalyzerTest, Unstratifiable) {
  Program p = MustParse(R"(
    program t;
    table q(X);
    table p(X);
    r1 p(X) :- q(X), notin p(X);
    watch p;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(CountCode(report, "unstratifiable"), 1u) << report.ToString();

  // The same recursion through @next defers to the tick boundary and is legal — this is
  // exactly how the NameNode's state-update rules are written.
  Program deferred = MustParse(R"(
    program t;
    table q(X);
    table p(X);
    r1 p(X)@next :- q(X), notin p(X);
    watch p;
  )");
  EXPECT_TRUE(AnalyzeProgram(deferred).ok());
}

TEST(AnalyzerTest, NoProducerStrictVsLax) {
  Program p = MustParse(R"(
    program t;
    event ping(Addr);
    table seen(Addr);
    r1 seen(A) :- ping(A);
    watch seen;
  )");
  AnalyzerReport strict = AnalyzeProgram(p);
  EXPECT_FALSE(strict.ok());
  ASSERT_EQ(CountCode(strict, "no-producer"), 1u) << strict.ToString();
  EXPECT_EQ(FindCode(strict, "no-producer")->severity, DiagnosticSeverity::kError);

  // The engine analyzes with strict_events off: the host may Enqueue the event from C++.
  AnalyzerOptions lax;
  lax.strict_events = false;
  AnalyzerReport advisory = AnalyzeProgram(p, lax);
  EXPECT_TRUE(advisory.ok());
  ASSERT_EQ(CountCode(advisory, "no-producer"), 1u);
  EXPECT_EQ(FindCode(advisory, "no-producer")->severity, DiagnosticSeverity::kWarning);

  // Declaring the host coupling removes the diagnostic entirely.
  AnalyzerOptions declared;
  declared.external_inputs = {"ping"};
  EXPECT_EQ(AnalyzeProgram(p, declared).diagnostics.size(), 0u);
}

TEST(AnalyzerTest, ExternEventSatisfiesProducerCheck) {
  Program p = MustParse(R"(
    program t;
    extern event ping(Addr);
    table seen(Addr);
    r1 seen(A) :- ping(A);
    watch seen;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.diagnostics.size(), 0u) << report.ToString();
}

TEST(AnalyzerTest, TimerAndFactAreProducers) {
  Program p = MustParse(R"(
    program t;
    table seen(X);
    event nudge(X);
    nudge(1);
    timer tick(100);
    r1 seen(X) :- tick(X);
    r2 seen(X) :- nudge(X);
    watch seen;
  )");
  EXPECT_TRUE(AnalyzeProgram(p).ok());
}

TEST(AnalyzerTest, UnreadTableWarning) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table dead_end(X);
    a(1);
    r1 dead_end(X) :- a(X);
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_TRUE(report.ok());  // warnings don't fail the build
  ASSERT_EQ(CountCode(report, "unread-table"), 1u) << report.ToString();
  EXPECT_NE(FindCode(report, "unread-table")->message.find("dead_end"), std::string::npos);

  // Silenced by: a watch, a declared external output, or turning the warning tier off.
  Program watched = p;
  watched.watches.push_back("dead_end");
  EXPECT_EQ(AnalyzeProgram(watched).diagnostics.size(), 0u);

  AnalyzerOptions host_read;
  host_read.external_outputs = {"dead_end"};
  EXPECT_EQ(AnalyzeProgram(p, host_read).diagnostics.size(), 0u);

  AnalyzerOptions quiet;
  quiet.warn_unread = false;
  EXPECT_EQ(AnalyzeProgram(p, quiet).diagnostics.size(), 0u);
}

TEST(AnalyzerTest, SendToLocationCountsAsRead) {
  // A head with an @location is a protocol output; the reader is the remote node. The
  // identical rule without the location marker is a genuine dead end.
  const char* kTemplate = R"(
    program t;
    table peer(Addr);
    event report(Addr, X);
    table a(X);
    a(1);
    peer("other");
    r1 report(%sP, X) :- peer(P), a(X);
  )";
  char sent[512];
  char local[512];
  std::snprintf(sent, sizeof(sent), kTemplate, "@");
  std::snprintf(local, sizeof(local), kTemplate, "");
  AnalyzerReport report = AnalyzeProgram(MustParse(sent));
  EXPECT_EQ(CountCode(report, "unread-table"), 0u) << report.ToString();
  AnalyzerReport dead = AnalyzeProgram(MustParse(local));
  EXPECT_EQ(CountCode(dead, "unread-table"), 1u) << dead.ToString();
}

TEST(AnalyzerTest, ReportFormatting) {
  Program p = MustParse(R"(
    program fmt;
    table a(X);
    table sink(X, Y);
    r1 sink(X, Orphan) :- a(X);
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  ASSERT_EQ(report.num_errors(), 1u);
  const Diagnostic& d = report.diagnostics[0];
  std::string line = d.ToString();
  EXPECT_EQ(line.rfind("error[unbound-head-var] fmt:r1", 0), 0u) << line;
  EXPECT_NE(line.find("(line "), std::string::npos) << line;
  EXPECT_NE(report.ToString().find(line), std::string::npos);
}

TEST(AnalyzerTest, ErrorsSortBeforeWarnings) {
  Program p = MustParse(R"(
    program t;
    table a(X);
    table dead_end(X);
    table sink(X, Y);
    a(1);
    r0 dead_end(X) :- a(X);
    r1 sink(X, Orphan) :- a(X);
    watch sink;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  ASSERT_GE(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics.front().severity, DiagnosticSeverity::kError);
  EXPECT_EQ(report.diagnostics.back().severity, DiagnosticSeverity::kWarning);
}

TEST(AnalyzerTest, WantsIndexAdvisory) {
  Program p = MustParse(R"(
    program t;
    table chunk(ChunkId, Node) keys(0);
    event probe(Node);
    table sink(ChunkId);
    r1 sink(C) :- probe(N), chunk(C, N);
    watch sink;
  )");
  AnalyzerOptions lax;
  lax.strict_events = false;
  AnalyzerReport report = AnalyzeProgram(p, lax);
  EXPECT_TRUE(report.ok()) << report.ToString();
  const Diagnostic* d = FindCode(report, "wants-index");
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, DiagnosticSeverity::kAdvisory);
  EXPECT_EQ(d->rule, "r1");
  EXPECT_NE(d->message.find("chunk(_,N)"), std::string::npos) << d->message;
  EXPECT_EQ(d->ToString().rfind("advisory[wants-index]", 0), 0u) << d->ToString();

  // A key-shaped probe needs no secondary index: same join, keyed on the probed column.
  Program keyed = MustParse(R"(
    program t;
    table chunk(ChunkId, Node) keys(1);
    event probe(Node);
    table sink(ChunkId);
    r1 sink(C) :- probe(N), chunk(C, N);
    watch sink;
  )");
  EXPECT_EQ(CountCode(AnalyzeProgram(keyed, lax), "wants-index"), 0u);
}

TEST(AnalyzerTest, SharedPrefixAdvisory) {
  Program p = MustParse(R"(
    program t;
    table job(JobId, User) keys(0);
    table task(JobId, TaskId) keys(0, 1);
    table s1(User, TaskId);
    table s2(TaskId);
    j3 s1(U, T) :- job(J, U), task(J, T);
    j7 s2(T) :- job(J, U), task(J, T), U != "root";
    watch s1;
    watch s2;
  )");
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_TRUE(report.ok()) << report.ToString();
  const Diagnostic* d = FindCode(report, "shared-prefix");
  ASSERT_NE(d, nullptr) << report.ToString();
  EXPECT_EQ(d->severity, DiagnosticSeverity::kAdvisory);
  EXPECT_NE(d->message.find("rules j3/j7 share a 2-atom prefix"), std::string::npos)
      << d->message;
  // Advisories are excluded from the warning count and sort after warnings.
  EXPECT_EQ(report.num_warnings(), 0u);
  EXPECT_EQ(report.num_advisories(), report.diagnostics.size());
}

TEST(AnalyzerTest, AllProblemsReportedAtOnce) {
  ParserOptions options;
  options.known_tables = {"ghost"};
  Program p = MustParse(R"(
    program t;
    table a(X);
    table sink(X, Y);
    event orphan_evt(X);
    r1 sink(X, Nope) :- a(X);
    r2 sink(X, Y) :- ghost(X), Y := X;
    r3 sink(X, Y) :- a(X), Y := Gone + 1;
    watch sink;
  )",
                        options);
  AnalyzerReport report = AnalyzeProgram(p);
  EXPECT_GE(report.num_errors(), 3u) << report.ToString();
  EXPECT_EQ(CountCode(report, "unbound-head-var") > 0, true);
  EXPECT_EQ(CountCode(report, "undeclared-table") > 0, true);
  EXPECT_EQ(CountCode(report, "no-producer") > 0, true);
}

}  // namespace
}  // namespace boom
