#include <gtest/gtest.h>

#include "src/overlog/lexer.h"

namespace boom {
namespace {

std::vector<Token> MustLex(std::string_view src) {
  Result<std::vector<Token>> r = Tokenize(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

std::vector<TokenKind> Kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const Token& t : MustLex(src)) {
    out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto toks = MustLex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEof);
}

TEST(LexerTest, Identifiers) {
  auto toks = MustLex("foo Bar _under f_now x1");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "Bar");
  EXPECT_EQ(toks[2].text, "_under");
  EXPECT_EQ(toks[3].text, "f_now");
  EXPECT_EQ(toks[4].text, "x1");
}

TEST(LexerTest, BareUnderscoreIsWildcard) {
  auto kinds = Kinds("_ _x");
  EXPECT_EQ(kinds[0], TokenKind::kUnderscore);
  EXPECT_EQ(kinds[1], TokenKind::kIdent);
}

TEST(LexerTest, Numbers) {
  auto toks = MustLex("42 3.5 1e3 2.5e-2");
  EXPECT_EQ(toks[0].kind, TokenKind::kInt);
  EXPECT_EQ(toks[0].literal, Value(42));
  EXPECT_EQ(toks[1].kind, TokenKind::kDouble);
  EXPECT_EQ(toks[1].literal, Value(3.5));
  EXPECT_EQ(toks[2].kind, TokenKind::kDouble);
  EXPECT_EQ(toks[2].literal, Value(1000.0));
  EXPECT_EQ(toks[3].kind, TokenKind::kDouble);
  EXPECT_EQ(toks[3].literal, Value(0.025));
}

TEST(LexerTest, Strings) {
  auto toks = MustLex(R"("plain" "with \"esc\"" "tab\tnl\n")");
  EXPECT_EQ(toks[0].literal, Value("plain"));
  EXPECT_EQ(toks[1].literal, Value("with \"esc\""));
  EXPECT_EQ(toks[2].literal, Value("tab\tnl\n"));
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, CompoundOperators) {
  auto kinds = Kinds(":- := == != <= >= < > && ||");
  std::vector<TokenKind> want{TokenKind::kTurnstile, TokenKind::kAssign, TokenKind::kEq,
                              TokenKind::kNe,        TokenKind::kLe,     TokenKind::kGe,
                              TokenKind::kLt,        TokenKind::kGt,     TokenKind::kAnd,
                              TokenKind::kOr,        TokenKind::kEof};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, StrayAmpersandFails) {
  EXPECT_FALSE(Tokenize("a & b").ok());
  EXPECT_FALSE(Tokenize("a | b").ok());
  EXPECT_FALSE(Tokenize("a : b").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto kinds = Kinds("a // to end of line\nb /* block\nspanning */ c");
  std::vector<TokenKind> want{TokenKind::kIdent, TokenKind::kIdent, TokenKind::kIdent,
                              TokenKind::kEof};
  EXPECT_EQ(kinds, want);
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Tokenize("a /* never closed").ok());
}

TEST(LexerTest, LineNumbersTracked) {
  auto toks = MustLex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
}

TEST(LexerTest, FullRuleTokenization) {
  auto toks = MustLex(R"(r1 path(@X, Y, C) :- link(@X, Y, C), C < 10;)");
  // r1 path ( @ X , Y , C ) :- link ( @ X , Y , C ) , C < 10 ; EOF
  EXPECT_EQ(toks.size(), 26u);
  EXPECT_EQ(toks[3].kind, TokenKind::kAt);
  EXPECT_EQ(toks[10].kind, TokenKind::kTurnstile);
  EXPECT_EQ(toks[24].kind, TokenKind::kSemi);
}

}  // namespace
}  // namespace boom
