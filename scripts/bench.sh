#!/usr/bin/env bash
# Tracked-benchmark runner: builds the Release tree, runs the machine-readable benchmark
# workloads, and rewrites BENCH_engine.json (the committed perf trajectory; read
# docs/PERFORMANCE.md before editing workloads).
#
#   scripts/bench.sh                  # refresh "current" + "parallel_scaling" (threads 1,2,4)
#   scripts/bench.sh --threads 1,2,4  # explicit thread counts for the scaling sweep
#
# The file keeps two sections:
#   baseline — numbers recorded before the PR-4 fast-fixpoint work (interned values, CoW
#              tuples, dirty-rule scheduling); preserved verbatim so the speedup stays
#              auditable.
#   current  — refreshed by this script from the benchmarks at HEAD.
#
# scripts/check.sh's bench leg compares a fresh run against the committed "current" section
# (scripts/check_bench.py), so refresh this file whenever engine performance shifts.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

THREADS="1,2,4"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threads)
      THREADS="$2"
      shift 2
      ;;
    *)
      echo "usage: scripts/bench.sh [--threads 1,2,4]" >&2
      exit 2
      ;;
  esac
done

echo "==> Release build (bench targets)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target micro_engine ablation_engine >/dev/null

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "==> micro_engine --json"
./build-release/bench/micro_engine --json > "$tmpdir/micro.json"
echo "==> ablation_engine --json"
./build-release/bench/ablation_engine --json > "$tmpdir/ablation.json"
# Optimizer ablation: each workload twice (enable_optimizer off / on) in one process;
# lands in current.optimizer as {off_ns_per_op, on_ns_per_op, speedup} per workload.
echo "==> micro_engine --json --optimizer"
./build-release/bench/micro_engine --json --optimizer > "$tmpdir/optimizer.json"

# Parallel scaling sweep: the cluster-sharded workloads at each thread count in $THREADS.
# One process per thread count — worker_threads > 1 flips tuple refcounts into their
# sticky atomic mode, which would taint a threads=1 run in the same process. The numbers
# land in the "parallel_scaling" block with the host's core count; on a single-core box
# the sweep measures dispatch + atomic overhead, not speedup (docs/PERFORMANCE.md).
for t in ${THREADS//,/ }; do
  echo "==> micro_engine --json --threads $t"
  ./build-release/bench/micro_engine --json --threads "$t" > "$tmpdir/scaling_$t.json"
done

python3 - "$tmpdir" "$THREADS" <<'PY'
import json
import sys

tmpdir = sys.argv[1]
with open(tmpdir + "/micro.json") as f:
    micro = json.load(f)
with open(tmpdir + "/ablation.json") as f:
    ablation = json.load(f)
with open(tmpdir + "/optimizer.json") as f:
    optimizer = json.load(f)

scaling = {"threads": {}}
for t in sys.argv[2].split(","):
    with open(tmpdir + "/scaling_%s.json" % t) as f:
        run = json.load(f)
    scaling["cores"] = run["cores"]
    scaling["threads"][t] = run["workloads"]

current = {
    "micro_engine": micro["workloads"],
    "ablation_engine": ablation["workloads"],
    "optimizer": optimizer["workloads"],
}

try:
    with open("BENCH_engine.json") as f:
        doc = json.load(f)
except FileNotFoundError:
    doc = {}

if "baseline" not in doc:
    # First run ever: seed the baseline from this run so the file is self-consistent.
    doc["baseline"] = dict(current, note="seeded from first bench.sh run")

doc["schema"] = "boom-bench-v1"
doc["build_type"] = "Release"
doc["units"] = {"ns_per_op": "nanoseconds per workload op", "tuples_per_sec": "ops per second",
                "off_ns_per_op": "ns per op, enable_optimizer=false",
                "on_ns_per_op": "ns per op, enable_optimizer=true",
                "speedup": "off_ns_per_op / on_ns_per_op"}
doc["current"] = current
doc["parallel_scaling"] = scaling

with open("BENCH_engine.json", "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print("wrote BENCH_engine.json")
PY
