#!/usr/bin/env python3
"""Benchmark regression gate for scripts/check.sh.

Compares a fresh `micro_engine --json` run against the committed BENCH_engine.json:

  * every workload key tracked in the committed "current" section must be present in the
    fresh run (a missing key means a workload was dropped or renamed without refreshing
    the tracked file — fail);
  * each fresh ns_per_op must be within --tolerance (default 25%) of the committed number.

Only micro_engine is regression-gated: the ablation configurations deliberately disable
engine mechanisms, so their absolute numbers are informational. The committed file must
still carry both sections with the expected schema.

With --fresh-scaling (a fresh `micro_engine --json --threads 1` run), the threads=1 row
of the committed "parallel_scaling" block is gated the same way. Only threads=1 is ever
gated: multi-thread numbers depend on the host's core count (the committed block records
"cores"), so they are validated for shape and reported, never compared against wall-clock.

Usage: check_bench.py --committed BENCH_engine.json --fresh fresh_micro.json \
                      [--fresh-scaling fresh_scaling_t1.json]
Exit code 0 on pass, 1 on any failure (failures are listed on stderr).
"""

import argparse
import json
import sys


def fail(msg):
    print("bench gate: " + msg, file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--committed", required=True, help="path to BENCH_engine.json")
    parser.add_argument("--fresh", required=True, help="fresh `micro_engine --json` output")
    parser.add_argument("--fresh-scaling", default=None,
                        help="fresh `micro_engine --json --threads 1` output (optional)")
    parser.add_argument("--fresh-optimizer", default=None,
                        help="fresh `micro_engine --json --optimizer` output (optional)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional ns_per_op regression (default 0.25)")
    args = parser.parse_args()

    with open(args.committed) as f:
        committed = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    errors = 0

    # Schema sanity on the committed file.
    if committed.get("schema") != "boom-bench-v1":
        errors += fail("committed file missing schema boom-bench-v1")
    current = committed.get("current", {})
    for section in ("micro_engine", "ablation_engine", "optimizer"):
        if not current.get(section):
            errors += fail(f"committed file missing current.{section}")

    # The optimizer ablation block must carry the full schema for every workload: both
    # sides of the off/on pair are gated when --fresh-optimizer is supplied, so a
    # regression on the greedy baseline cannot hide behind an optimizer win.
    for name, entry in sorted(current.get("optimizer", {}).items()):
        for key in ("off_ns_per_op", "on_ns_per_op", "speedup"):
            if key not in entry:
                errors += fail(f"optimizer workload '{name}' missing key '{key}'")

    committed_micro = current.get("micro_engine", {})
    fresh_micro = fresh.get("workloads", {})

    for name, entry in sorted(committed_micro.items()):
        if name not in fresh_micro:
            errors += fail(f"workload '{name}' missing from fresh run")
            continue
        for key in ("ns_per_op", "tuples_per_sec"):
            if key not in fresh_micro[name]:
                errors += fail(f"workload '{name}' missing key '{key}' in fresh run")
        committed_ns = entry["ns_per_op"]
        fresh_ns = fresh_micro[name].get("ns_per_op", float("inf"))
        limit = committed_ns * (1.0 + args.tolerance)
        status = "ok"
        if fresh_ns > limit:
            errors += fail(
                f"workload '{name}' regressed: {fresh_ns:.1f} ns/op vs committed "
                f"{committed_ns:.1f} (limit {limit:.1f})")
            status = "REGRESSED"
        print(f"  {name:24s} committed {committed_ns:>10.1f}  fresh {fresh_ns:>10.1f}  {status}")

    # Shape check on the committed parallel_scaling block: the sweep must cover 1/2/4
    # threads and record the core count it ran on.
    scaling = committed.get("parallel_scaling")
    if not isinstance(scaling, dict):
        errors += fail("committed file missing parallel_scaling block")
    else:
        if "cores" not in scaling:
            errors += fail("parallel_scaling missing 'cores'")
        for t in ("1", "2", "4"):
            if t not in scaling.get("threads", {}):
                errors += fail(f"parallel_scaling missing threads={t} row")

    if args.fresh_scaling and isinstance(scaling, dict):
        with open(args.fresh_scaling) as f:
            fresh_t1 = json.load(f)
        committed_t1 = scaling.get("threads", {}).get("1", {})
        fresh_t1_workloads = fresh_t1.get("workloads", {})
        for name, entry in sorted(committed_t1.items()):
            if name not in fresh_t1_workloads:
                errors += fail(f"scaling workload '{name}' missing from fresh threads=1 run")
                continue
            committed_ns = entry["ns_per_op"]
            fresh_ns = fresh_t1_workloads[name].get("ns_per_op", float("inf"))
            limit = committed_ns * (1.0 + args.tolerance)
            status = "ok"
            if fresh_ns > limit:
                errors += fail(
                    f"scaling workload '{name}' (threads=1) regressed: {fresh_ns:.1f} "
                    f"ns/op vs committed {committed_ns:.1f} (limit {limit:.1f})")
                status = "REGRESSED"
            print(f"  scaling/{name:16s} committed {committed_ns:>10.1f}  "
                  f"fresh {fresh_ns:>10.1f}  {status}")

    if args.fresh_optimizer:
        with open(args.fresh_optimizer) as f:
            fresh_opt = json.load(f)
        committed_opt = current.get("optimizer", {})
        fresh_opt_workloads = fresh_opt.get("workloads", {})
        for name, entry in sorted(committed_opt.items()):
            if name not in fresh_opt_workloads:
                errors += fail(f"optimizer workload '{name}' missing from fresh run")
                continue
            for key in ("off_ns_per_op", "on_ns_per_op"):
                committed_ns = entry.get(key, float("inf"))
                fresh_ns = fresh_opt_workloads[name].get(key, float("inf"))
                limit = committed_ns * (1.0 + args.tolerance)
                status = "ok"
                if fresh_ns > limit:
                    errors += fail(
                        f"optimizer workload '{name}' {key} regressed: {fresh_ns:.1f} "
                        f"ns/op vs committed {committed_ns:.1f} (limit {limit:.1f})")
                    status = "REGRESSED"
                print(f"  optimizer/{name:14s} {key:13s} committed {committed_ns:>10.1f}  "
                      f"fresh {fresh_ns:>10.1f}  {status}")

    if errors:
        print(f"bench gate: {errors} failure(s)", file=sys.stderr)
        return 1
    print("bench gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
