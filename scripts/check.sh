#!/usr/bin/env bash
# CI entry point: tier-1 build + fast tests, then an ASan smoke of the chaos explorer.
#
#   scripts/check.sh            # everything below
#   SKIP_ASAN=1 scripts/check.sh  # inner loop only (no sanitizer rebuild)
#   SKIP_TSAN=1 scripts/check.sh  # skip the ThreadSanitizer leg
#   SKIP_BENCH=1 scripts/check.sh # skip the Release bench smoke (e.g. loaded CI box)
#
# Tier 1 (must stay green): plain build + every non-chaos test, then the optimizer label
# (cost-based planner units, optimizer-on/off fixpoint equivalence across all program
# families, and the pinned --explain/olglint goldens — see DESIGN.md §13), the telemetry label
# explicitly (metrics/tracing/profiling — see docs/OBSERVABILITY.md), the workload +
# policy labels (open-loop generator determinism and the scheduler-policy matrix — see
# docs/WORKLOADS.md), and the overload label (admission control, retry budgets, and the
# metastable-failure scenario — see docs/CHAOS.md).
# ASan smoke: rebuild with -DBOOM_SANITIZE=address, run the telemetry + workload + policy
# + overload tests under ASan (the tracer/registry hot paths are lock-free atomics worth
# sanitizing; the generator, scheduler, and admission-gateway paths churn tuples hard),
# then a 3-seed boomfs chaos sweep (corruption + slow-disk faults included via the
# scenario's fault profile), so memory errors on the retry/quarantine/re-replication
# paths surface even though the full chaos tier is too slow for every push.
# TSan leg: rebuild with -DBOOM_SANITIZE=thread and run the engine + parallel labels plus
# a 2-seed 4-thread chaos smoke — every shared-state fast path in the parallel fixpoint
# (tuple refcounts, interner shards, worker evaluators, cluster tick batches) raced under
# the sanitizer.
# Bench smoke: Release build of micro_engine, gated against the committed BENCH_engine.json
# (missing workload keys or a >25% ns/op regression fail; scripts/check_bench.py).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> tier-1 build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1 tests (ctest -LE chaos)"
(cd build && ctest -LE chaos --output-on-failure -j "$JOBS")

echo "==> lint (ctest -L lint: olglint over olg/*.olg and all program families)"
(cd build && ctest -L lint --output-on-failure -j "$JOBS")

echo "==> optimizer tests (ctest -L optimizer: cost-based planner, on/off equivalence, CLI goldens)"
(cd build && ctest -L optimizer --output-on-failure -j "$JOBS")

echo "==> telemetry tests (ctest -L telemetry)"
(cd build && ctest -L telemetry --output-on-failure -j "$JOBS")

echo "==> workload + policy tests (ctest -L 'workload|policy')"
(cd build && ctest -L 'workload|policy' --output-on-failure -j "$JOBS")

echo "==> overload tests (ctest -L overload: admission, retry budgets, metastable chaos)"
(cd build && ctest -L overload --output-on-failure -j "$JOBS")

echo "==> scale-out tests (ctest -L scaleout: federated metadata plane, rebalance, 25-seed federation chaos sweep)"
(cd build && ctest -L scaleout --output-on-failure -j "$JOBS")

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "==> ASan build"
  cmake -B build-asan -S . -DBOOM_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" --target chaos_explorer telemetry_test \
    trace_e2e_test monitor_meta_test workload_test scheduler_policy_test overload_test \
    federation_test optimizer_test olglint olgrun

  echo "==> ASan optimizer smoke (ctest -L optimizer)"
  (cd build-asan && ctest -L optimizer --output-on-failure -j "$JOBS")

  echo "==> ASan telemetry smoke (ctest -L telemetry)"
  (cd build-asan && ctest -L telemetry --output-on-failure -j "$JOBS")

  echo "==> ASan workload + policy smoke (ctest -L 'workload|policy')"
  (cd build-asan && ctest -L 'workload|policy' --output-on-failure -j "$JOBS")

  echo "==> ASan overload smoke (ctest -L overload)"
  (cd build-asan && ctest -L overload --output-on-failure -j "$JOBS")

  echo "==> ASan scale-out smoke (ctest -L scaleout)"
  (cd build-asan && ctest -L scaleout --output-on-failure -j "$JOBS")

  echo "==> ASan lint smoke (ctest -L lint)"
  (cd build-asan && ctest -L lint --output-on-failure -j "$JOBS")

  echo "==> ASan chaos smoke (3 seeds x boomfs)"
  ./build-asan/tools/chaos_explorer --scenario=boomfs --seeds=3
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "==> TSan build"
  cmake -B build-tsan -S . -DBOOM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target engine_test sim_test parallel_test \
    chaos_explorer optimizer_test olglint olgrun

  echo "==> TSan optimizer tests (ctest -L optimizer: shared-prefix cache + re-plan under TSan)"
  (cd build-tsan && ctest -L optimizer --output-on-failure -j "$JOBS")

  echo "==> TSan engine + sim tests"
  ./build-tsan/tests/engine_test
  ./build-tsan/tests/sim_test

  echo "==> TSan parallel tests (ctest -L parallel: serial-vs-parallel byte identity)"
  (cd build-tsan && ctest -L parallel --output-on-failure -j "$JOBS")

  echo "==> TSan chaos smoke (2 seeds x boomfs, 4 worker threads)"
  ./build-tsan/tools/chaos_explorer --scenario=boomfs --seeds=2 --threads=4
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  echo "==> Release bench smoke (gate vs BENCH_engine.json)"
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j "$JOBS" --target micro_engine >/dev/null
  fresh="$(mktemp)"
  fresh_scaling="$(mktemp)"
  fresh_optimizer="$(mktemp)"
  ./build-release/bench/micro_engine --json > "$fresh"
  # threads=1 only: the serial baseline of the parallel sweep is host-independent; the
  # multi-thread rows depend on core count and are never wall-clock gated.
  ./build-release/bench/micro_engine --json --threads 1 > "$fresh_scaling"
  ./build-release/bench/micro_engine --json --optimizer > "$fresh_optimizer"
  if ! python3 scripts/check_bench.py --committed BENCH_engine.json --fresh "$fresh" \
      --fresh-scaling "$fresh_scaling" --fresh-optimizer "$fresh_optimizer"; then
    # One retry: these are wall-clock numbers and a loaded box can blow the tolerance
    # without any code change. A regression that reproduces twice is treated as real.
    echo "==> bench gate failed; retrying once"
    sleep 5
    ./build-release/bench/micro_engine --json > "$fresh"
    ./build-release/bench/micro_engine --json --threads 1 > "$fresh_scaling"
    ./build-release/bench/micro_engine --json --optimizer > "$fresh_optimizer"
    python3 scripts/check_bench.py --committed BENCH_engine.json --fresh "$fresh" \
      --fresh-scaling "$fresh_scaling" --fresh-optimizer "$fresh_optimizer"
  fi
  rm -f "$fresh" "$fresh_scaling" "$fresh_optimizer"
fi

echo "==> all checks passed"
