#include "src/monitor/meta.h"

#include <set>

#include "src/base/logging.h"
#include "src/telemetry/metrics.h"

namespace boom {

namespace {

constexpr char kBoomFsInvariantsModule[] = R"olg(
// NameNode relations this program joins against (owned by boomfs_nn on the same engine;
// schemas verified at install). invariant_violation is declared by InstallInvariants.
extern table file(FileId, ParentId, FName, IsDir) keys(0);
extern table fqpath(Path, FileId);
extern table fchunk(ChunkId, FileId) keys(0);
extern table hb_chunk(Dn, ChunkId);
extern table invariant_violation(Name, Detail);

// Every chunk of a live file should be reported by at most rep_factor DataNodes
// (over-replication indicates a placement bug).
table inv_chunk_rep(ChunkId, N) keys(0);
iv1 inv_chunk_rep(Ch, count<Dn>) :- fchunk(Ch, _), hb_chunk(Dn, Ch);
iv2 invariant_violation("over_replicated", D) :- inv_chunk_rep(Ch, N), N > rep_factor,
                                                 D := str_cat("chunk ", Ch, " has ", N);

// The directory tree must be acyclic/rooted: every file's parent must exist (except the
// root itself).
iv3 invariant_violation("orphan_inode", D) :- file(F, Par, _, _), F != 0,
                                              notin file(Par, _, _, _),
                                              D := str_cat("file ", F, " parent ", Par);

// fqpath is a function of FileId: two distinct paths for one file id is a view bug.
iv4 invariant_violation("dup_path", D) :- fqpath(P1, F), fqpath(P2, F), P1 != P2,
                                          P1 < P2, D := str_cat(F, ": ", P1, " vs ", P2);
)olg";

constexpr char kUnderReplicationModule[] = R"olg(
// Opt-in: once the workload quiesces, every live chunk with any replica at all should have
// the full complement. (During a write the pipeline fills gradually, so this fires
// spuriously if installed too early.)
extern table inv_chunk_rep(ChunkId, N) keys(0);
extern table invariant_violation(Name, Detail);
iv5 invariant_violation("under_replicated", D) :- inv_chunk_rep(Ch, N), N < rep_factor,
                                                  D := str_cat("chunk ", Ch, " has ", N);
)olg";

constexpr char kRuleHogModule[] = R"olg(
extern table invariant_violation(Name, Detail);

// Same shapes the engine declares in PublishProfile(); redeclaring identically is a no-op,
// so this program installs whether or not profiling was enabled first.
table perf_rule(Program, Rule, Evals, Tuples, MaxTuplesPerTick, WallUs) keys(0, 1);
table perf_fixpoint(Tick, NowMs, Rounds, Derivs, WallUs) keys(0);

// Joins the profile the engine publishes via PublishProfile(): no single rule may derive
// more than hog_cap tuples in one fixpoint (a hog usually means a missing join key or a
// runaway recursive rule).
rh1 invariant_violation("rule_hog", D) :- perf_rule(P, R, _, _, M, _), M > hog_cap,
                                          D := str_cat(P, ":", R, " peaked at ", M,
                                                       " tuples/fixpoint");
)olg";

constexpr char kIndexChurnModule[] = R"olg(
extern table invariant_violation(Name, Detail);

// Same shape the engine declares in PublishProfile(); redeclaring identically is a no-op.
table perf_table(Name, Rows, Probes, IndexHits, Rebuilds) keys(0);

// Joins the per-table stats the engine publishes via PublishProfile(): no table may have
// rebuilt its secondary indexes more than rebuild_cap times (churned tables probed through
// cached indexes that replace/erase keep invalidating; see the cost-based optimizer's
// incremental index maintenance).
ic1 invariant_violation("index_churn", D) :- perf_table(T, _, _, _, R), R > rebuild_cap,
                                             D := str_cat(T, " rebuilt indexes ", R,
                                                          " times");
)olg";

}  // namespace

Program MakeTracingProgram(const Program& program, const TracingOptions& options) {
  std::set<std::string> wanted(options.tables.begin(), options.tables.end());
  Program out;
  out.name = program.name + "_trace";

  for (const TableDef& def : program.tables) {
    if (!wanted.empty() && wanted.count(def.name) == 0) {
      continue;
    }
    // trace_<name>(TraceTime, <cols...>), set semantics (all columns keyed).
    TableDef trace;
    trace.name = "trace_" + def.name;
    trace.columns.push_back("TraceTime");
    for (const std::string& col : def.columns) {
      trace.columns.push_back(col);
    }
    out.tables.push_back(trace);

    // trace_<name>(T, C0..Cn) :- <name>(C0..Cn), T := f_now();
    Rule rule;
    rule.name = "trace_" + def.name + "_r";
    rule.head.table = trace.name;
    HeadArg time_arg;
    time_arg.expr = Expr::Var("TraceTime");
    rule.head.args.push_back(time_arg);
    Atom body;
    body.table = def.name;
    for (size_t i = 0; i < def.columns.size(); ++i) {
      std::string var = "C" + std::to_string(i);
      body.args.push_back(Expr::Var(var));
      HeadArg arg;
      arg.expr = Expr::Var(var);
      rule.head.args.push_back(arg);
    }
    rule.body.push_back(BodyTerm::MakeAtom(std::move(body)));
    Assignment assign;
    assign.var = "TraceTime";
    assign.expr = Expr::Call("f_now", {});
    rule.body.push_back(BodyTerm::MakeAssign(std::move(assign)));
    out.rules.push_back(std::move(rule));

    if (options.with_counts) {
      // trace_cnt_<name>(1, count<T>) :- trace_<name>(T, ...);
      TableDef cnt;
      cnt.name = "trace_cnt_" + def.name;
      cnt.columns = {"K", "N"};
      cnt.key_columns = {0};
      out.tables.push_back(cnt);

      Rule cnt_rule;
      cnt_rule.name = "trace_cnt_" + def.name + "_r";
      cnt_rule.head.table = cnt.name;
      HeadArg key;
      key.expr = Expr::Const(Value(1));
      cnt_rule.head.args.push_back(key);
      HeadArg agg;
      agg.agg = AggKind::kCount;
      agg.expr = Expr::Var("TraceTime");
      cnt_rule.head.args.push_back(agg);
      Atom cnt_body;
      cnt_body.table = trace.name;
      cnt_body.args.push_back(Expr::Var("TraceTime"));
      for (size_t i = 0; i < def.columns.size(); ++i) {
        cnt_body.args.push_back(Expr::Var("_AnonTrace" + std::to_string(i)));
      }
      cnt_rule.body.push_back(BodyTerm::MakeAtom(std::move(cnt_body)));
      out.rules.push_back(std::move(cnt_rule));
    }
  }
  return out;
}

Status InstallInvariants(Engine& engine, const Program& rules,
                         std::vector<std::string>* sink) {
  if (engine.catalog().Find("invariant_violation") == nullptr) {
    TableDef def;
    def.name = "invariant_violation";
    def.columns = {"Name", "Detail"};
    BOOM_RETURN_IF_ERROR(engine.catalog().Declare(def));
  }
  BOOM_RETURN_IF_ERROR(engine.Install(rules));
  engine.AddWatch("invariant_violation",
                  [sink](const std::string&, const Tuple& tuple, bool inserted) {
                    if (inserted) {
                      sink->push_back(tuple.ToString());
                    }
                  });
  return Status::Ok();
}

const Module& BoomFsInvariantsModule() {
  static const Module* kModule = new Module{
      "boomfs_invariants",
      kBoomFsInvariantsModule,
      {ModuleParam::Required("rep_factor", ValueKind::kInt)},
  };
  return *kModule;
}

const Module& BoomFsUnderReplicationModule() {
  static const Module* kModule = new Module{
      "boomfs_under_replication",
      kUnderReplicationModule,
      {ModuleParam::Required("rep_factor", ValueKind::kInt)},
  };
  return *kModule;
}

Program BoomFsInvariantProgram(int replication_factor, bool include_under_replication) {
  ProgramBuilder builder("boomfs_invariants");
  ParamBindings rep = {{"rep_factor", replication_factor}};
  Status status = builder.Add(BoomFsInvariantsModule(), rep);
  BOOM_CHECK(status.ok()) << status.ToString();
  if (include_under_replication) {
    status = builder.Add(BoomFsUnderReplicationModule(), rep);
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Status InstallProfiling(Engine& engine) {
  engine.EnableProfiling(true);
  TableDef rule_def;
  rule_def.name = "perf_rule";
  rule_def.columns = {"Program", "Rule", "Evals", "Tuples", "MaxTuplesPerTick", "WallUs"};
  rule_def.key_columns = {0, 1};
  BOOM_RETURN_IF_ERROR(engine.catalog().Declare(rule_def));
  TableDef fix_def;
  fix_def.name = "perf_fixpoint";
  fix_def.columns = {"Tick", "NowMs", "Rounds", "Derivs", "WallUs"};
  fix_def.key_columns = {0};
  BOOM_RETURN_IF_ERROR(engine.catalog().Declare(fix_def));
  TableDef table_def;
  table_def.name = "perf_table";
  table_def.columns = {"Name", "Rows", "Probes", "IndexHits", "Rebuilds"};
  table_def.key_columns = {0};
  return engine.catalog().Declare(table_def);
}

const Module& RuleHogInvariantsModule() {
  static const Module* kModule = new Module{
      "rule_hog_invariants",
      kRuleHogModule,
      {ModuleParam::Required("hog_cap", ValueKind::kInt)},
  };
  return *kModule;
}

Program RuleHogInvariantProgram(int64_t max_tuples_per_fixpoint) {
  ProgramBuilder builder("rule_hog_invariants");
  Status status =
      builder.Add(RuleHogInvariantsModule(), {{"hog_cap", max_tuples_per_fixpoint}});
  BOOM_CHECK(status.ok()) << status.ToString();
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

const Module& IndexChurnInvariantsModule() {
  static const Module* kModule = new Module{
      "index_churn_invariants",
      kIndexChurnModule,
      {ModuleParam::Required("rebuild_cap", ValueKind::kInt)},
  };
  return *kModule;
}

Program IndexChurnInvariantProgram(int64_t max_index_rebuilds) {
  ProgramBuilder builder("index_churn_invariants");
  Status status =
      builder.Add(IndexChurnInvariantsModule(), {{"rebuild_cap", max_index_rebuilds}});
  BOOM_CHECK(status.ok()) << status.ToString();
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

void ExportTableMetrics(const Engine& engine) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const std::string& name : engine.catalog().TableNames()) {
    const Table& table = engine.catalog().Get(name);
    const std::string prefix = "engine.table." + name + ".";
    registry.gauge(prefix + "rows").Set(static_cast<double>(table.size()));
    registry.gauge(prefix + "probes").Set(static_cast<double>(table.probes()));
    registry.gauge(prefix + "probe_hits").Set(static_cast<double>(table.probe_hits()));
    registry.gauge(prefix + "index_rebuilds")
        .Set(static_cast<double>(table.index_rebuilds()));
  }
  const Engine::Stats& stats = engine.stats();
  registry.gauge("engine.optimizer.replans").Set(static_cast<double>(stats.replans));
  registry.gauge("engine.optimizer.shared_prefix_evals")
      .Set(static_cast<double>(stats.shared_prefix_evals));
  registry.gauge("engine.optimizer.shared_prefix_hits")
      .Set(static_cast<double>(stats.shared_prefix_hits));
}

}  // namespace boom
