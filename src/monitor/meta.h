// Metaprogramming (paper revision F4 / MR monitoring): Overlog programs are data, so
// monitoring is a program rewrite. Given a parsed Program, these functions return a new
// Program with tracing and counting rules added; invariants are ordinary Overlog rules
// installed next to the program they guard.

#ifndef SRC_MONITOR_META_H_
#define SRC_MONITOR_META_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/ast.h"
#include "src/overlog/engine.h"

namespace boom {

struct TracingOptions {
  // Tables to trace; empty = every table and event in the program.
  std::vector<std::string> tables;
  // Also add a count-rollup table trace_cnt_<name>(K, N) per traced table.
  bool with_counts = true;
};

// Returns a companion program ("<name>_trace") that, when installed on the same engine,
// records every insertion into the selected tables as trace_<name>(Time, cols...) rows.
Program MakeTracingProgram(const Program& program, const TracingOptions& options = {});

// Installs invariant rules (plain Overlog text; violations should derive tuples of
// `invariant_violation(Name, Detail)`), declares the violation table if needed, and wires a
// watch that collects violations into `sink`.
Status InstallInvariants(Engine& engine, std::string_view rules_source,
                         std::vector<std::string>* sink);

// The BOOM-FS invariants from the paper's monitoring discussion: chunk replication bounds
// and response coverage are expressible as rules over the NameNode's own tables.
std::string BoomFsInvariantRules(int replication_factor);

}  // namespace boom

#endif  // SRC_MONITOR_META_H_
