// Metaprogramming (paper revision F4 / MR monitoring): Overlog programs are data, so
// monitoring is a program rewrite. Given a parsed Program, these functions return a new
// Program with tracing and counting rules added; invariants are ordinary Overlog rules
// installed next to the program they guard.

#ifndef SRC_MONITOR_META_H_
#define SRC_MONITOR_META_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/ast.h"
#include "src/overlog/engine.h"
#include "src/overlog/module.h"

namespace boom {

struct TracingOptions {
  // Tables to trace; empty = every table and event in the program.
  std::vector<std::string> tables;
  // Also add a count-rollup table trace_cnt_<name>(K, N) per traced table.
  bool with_counts = true;
};

// Returns a companion program ("<name>_trace") that, when installed on the same engine,
// records every insertion into the selected tables as trace_<name>(Time, cols...) rows.
Program MakeTracingProgram(const Program& program, const TracingOptions& options = {});

// Installs an invariant program (violations should derive tuples of
// `invariant_violation(Name, Detail)`), declares the violation table if needed, and wires a
// watch that collects violations into `sink`.
Status InstallInvariants(Engine& engine, const Program& rules,
                         std::vector<std::string>* sink);

// The BOOM-FS invariant modules: `extern` declarations pin the schemas of the NameNode
// tables they join against, verified when the program lands on the NameNode's engine. Both
// take the typed parameter rep_factor (int).
const Module& BoomFsInvariantsModule();
const Module& BoomFsUnderReplicationModule();

// The BOOM-FS invariants from the paper's monitoring discussion: chunk replication bounds
// and response coverage are expressible as rules over the NameNode's own tables. The
// under-replication check is an opt-in second module because chunks legitimately hold fewer
// than `replication_factor` replicas while a pipeline is still filling; enable it only once
// the workload has quiesced (or after inducing a failure on purpose).
Program BoomFsInvariantProgram(int replication_factor,
                               bool include_under_replication = false);

// Turns on per-rule profiling and declares the perf_rule(Program, Rule, Evals, Tuples,
// MaxTuplesPerTick, WallUs), perf_fixpoint(Tick, NowMs, Rounds, Derivs, WallUs), and
// perf_table(Name, Rows, Probes, IndexHits, Rebuilds) tables up front, so monitor rules
// can join against them before the first Engine::PublishProfile(). Profiles accumulate in
// C++ and only land in the tables when PublishProfile() is called (keeping
// rules-over-perf-tables from feeding back into the profile they observe).
Status InstallProfiling(Engine& engine);

// Invariant over the published profile: no rule may derive more than
// `max_tuples_per_fixpoint` tuples in a single fixpoint (typed parameter hog_cap). Install
// with InstallInvariants after InstallProfiling; fires once Engine::PublishProfile() lands
// perf_rule rows.
const Module& RuleHogInvariantsModule();
Program RuleHogInvariantProgram(int64_t max_tuples_per_fixpoint);

// Invariant over the published per-table stats: no table may suffer more than
// `max_index_rebuilds` full secondary-index rebuilds (typed parameter rebuild_cap). A hot
// rebuild count means a churned table is probed through cached indexes that replace/erase
// keep invalidating — the fix is the optimizer's incremental index maintenance, or a
// declared key matching the probe. Fires once Engine::PublishProfile() lands perf_table
// rows.
const Module& IndexChurnInvariantsModule();
Program IndexChurnInvariantProgram(int64_t max_index_rebuilds);

// Mirrors the live per-table stats (and, when the optimizer is on, its re-plan and
// shared-prefix counters) into the process-wide MetricsRegistry as
// engine.table.<name>.{rows,probes,probe_hits,index_rebuilds} gauges and
// engine.optimizer.{replans,shared_prefix_evals,shared_prefix_hits} gauges, so monitor
// dashboards see the same numbers perf_table publishes without an extra tick.
void ExportTableMetrics(const Engine& engine);

}  // namespace boom

#endif  // SRC_MONITOR_META_H_
