#include "src/telemetry/slo.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace boom {

namespace {

constexpr char kPrefix[] = "slo.tenant";
constexpr char kSuffix[] = ".job_ms";

// Parses "slo.tenant<i>.job_ms" -> i, or -1 if the name is not in the family.
int ParseTenant(const std::string& name) {
  size_t prefix_len = sizeof(kPrefix) - 1;
  size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len || name.compare(0, prefix_len, kPrefix) != 0 ||
      name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return -1;
  }
  std::string digits = name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::atoi(digits.c_str());
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

std::string SloHistogramName(int tenant) {
  return kPrefix + std::to_string(tenant) + kSuffix;
}

std::vector<double> SloLatencyBoundsMs() {
  // 1-2-5 decades, 50ms .. 20min: job latencies under saturation span four orders of
  // magnitude, and p999 lives in the far tail.
  return {50,    100,   200,   500,    1000,   2000,   5000,   10000,
          20000, 50000, 100000, 200000, 500000, 1200000};
}

SloReport BuildSloReport(MetricsRegistry& registry) {
  SloReport report;
  for (const std::string& name : registry.HistogramNames()) {
    int tenant = ParseTenant(name);
    if (tenant < 0) {
      continue;
    }
    Histogram& h = registry.histogram(name);
    TenantSlo slo;
    slo.tenant = tenant;
    slo.count = h.count();
    slo.mean_ms = h.mean();
    slo.p50_ms = h.Quantile(0.50);
    slo.p99_ms = h.Quantile(0.99);
    slo.p999_ms = h.Quantile(0.999);
    std::string base = kPrefix + std::to_string(tenant) + ".";
    // counter() would create the name; only read families the run actually touched.
    for (const std::string& cname : registry.CounterNames()) {
      if (cname == base + "shed") {
        slo.shed = registry.counter(cname).value();
      } else if (cname == base + "rejected") {
        slo.rejected = registry.counter(cname).value();
      } else if (cname == base + "retries") {
        slo.retries = registry.counter(cname).value();
      }
    }
    report.tenants.push_back(slo);
  }
  std::sort(report.tenants.begin(), report.tenants.end(),
            [](const TenantSlo& a, const TenantSlo& b) { return a.tenant < b.tenant; });
  return report;
}

std::string SloReport::ToJson() const {
  std::string out = "{\n  \"tenants\": [";
  bool first = true;
  char buf[256];
  for (const TenantSlo& t : tenants) {
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n    {\"tenant\": %d, \"jobs\": %llu, \"mean_ms\": %s, "
                  "\"p50_ms\": %s, \"p99_ms\": %s, \"p999_ms\": %s, "
                  "\"shed\": %llu, \"rejected\": %llu, \"retries\": %llu}",
                  t.tenant, static_cast<unsigned long long>(t.count),
                  Fmt(t.mean_ms).c_str(), Fmt(t.p50_ms).c_str(), Fmt(t.p99_ms).c_str(),
                  Fmt(t.p999_ms).c_str(), static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.rejected),
                  static_cast<unsigned long long>(t.retries));
    out += buf;
  }
  out += first ? "]\n}" : "\n  ]\n}";
  return out;
}

std::string SloReport::ToText() const {
  std::string out;
  char buf[256];
  for (const TenantSlo& t : tenants) {
    std::snprintf(buf, sizeof(buf),
                  "tenant %d  jobs=%llu mean=%sms p50=%sms p99=%sms p999=%sms"
                  " shed=%llu rejected=%llu retries=%llu\n",
                  t.tenant, static_cast<unsigned long long>(t.count), Fmt(t.mean_ms).c_str(),
                  Fmt(t.p50_ms).c_str(), Fmt(t.p99_ms).c_str(), Fmt(t.p999_ms).c_str(),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.rejected),
                  static_cast<unsigned long long>(t.retries));
    out += buf;
  }
  return out;
}

}  // namespace boom
