#include "src/telemetry/trace_query.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace boom {

namespace {

// Children of each span in creation order (creation order already respects causality:
// a child span is always created after its parent).
std::multimap<uint64_t, const SpanRecord*> ChildIndex(
    const std::vector<SpanRecord>& spans, uint64_t trace_id) {
  std::multimap<uint64_t, const SpanRecord*> children;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace_id && s.parent_id != 0) {
      children.emplace(s.parent_id, &s);
    }
  }
  return children;
}

const SpanRecord* FindRoot(const std::vector<SpanRecord>& spans, uint64_t trace_id) {
  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace_id && s.parent_id == 0) {
      return &s;
    }
  }
  return nullptr;
}

std::string SpanLine(const SpanRecord& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=[%.3f..%.3f] ", s.start_ms, s.end_ms);
  std::string line = buf;
  line += s.name + "@" + s.node;
  for (const auto& [k, v] : s.attrs) {
    line += " " + k + "=" + v;
  }
  return line;
}

}  // namespace

std::vector<TraceSummary> SummarizeTraces(const std::vector<SpanRecord>& spans) {
  std::map<uint64_t, TraceSummary> by_trace;
  for (const SpanRecord& s : spans) {
    TraceSummary& summary = by_trace[s.trace_id];
    if (summary.span_count == 0) {
      summary.trace_id = s.trace_id;
      summary.start_ms = s.start_ms;
      summary.end_ms = s.end_ms;
    }
    ++summary.span_count;
    summary.end_ms = std::max(summary.end_ms, s.end_ms);
    if (s.parent_id == 0) {
      summary.root_name = s.name;
      summary.root_node = s.node;
      summary.start_ms = std::min(summary.start_ms, s.start_ms);
    }
  }
  std::vector<TraceSummary> out;
  out.reserve(by_trace.size());
  for (auto& [id, summary] : by_trace) {
    out.push_back(std::move(summary));
  }
  std::sort(out.begin(), out.end(), [](const TraceSummary& a, const TraceSummary& b) {
    if (a.start_ms != b.start_ms) {
      return a.start_ms < b.start_ms;
    }
    return a.trace_id < b.trace_id;
  });
  return out;
}

std::vector<const SpanRecord*> TraceSpans(const std::vector<SpanRecord>& spans,
                                          uint64_t trace_id) {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace_id) {
      out.push_back(&s);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_ms < b->start_ms;
                   });
  return out;
}

std::vector<const SpanRecord*> CriticalPath(const std::vector<SpanRecord>& spans,
                                            uint64_t trace_id) {
  std::vector<const SpanRecord*> path;
  const SpanRecord* cur = FindRoot(spans, trace_id);
  if (cur == nullptr) {
    return path;
  }
  auto children = ChildIndex(spans, trace_id);
  while (cur != nullptr) {
    path.push_back(cur);
    auto [lo, hi] = children.equal_range(cur->span_id);
    const SpanRecord* next = nullptr;
    for (auto it = lo; it != hi; ++it) {
      if (next == nullptr || it->second->end_ms > next->end_ms) {
        next = it->second;
      }
    }
    cur = next;
  }
  return path;
}

std::string RenderTraceTree(const std::vector<SpanRecord>& spans, uint64_t trace_id,
                            const std::string& indent, size_t max_lines) {
  auto children = ChildIndex(spans, trace_id);
  std::string out;
  size_t lines = 0;
  size_t omitted = 0;
  // Iterative DFS preserving creation order among siblings.
  struct Frame {
    const SpanRecord* span;
    size_t depth;
  };
  std::vector<Frame> stack;
  // Multiple roots are possible when a parent span was dropped at the tracer cap.
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.trace_id == trace_id && s.parent_id == 0) {
      roots.push_back(&s);
    }
  }
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (max_lines > 0 && lines >= max_lines) {
      ++omitted;
    } else {
      out += indent + std::string(frame.depth * 2, ' ') + SpanLine(*frame.span) + "\n";
      ++lines;
    }
    auto [lo, hi] = children.equal_range(frame.span->span_id);
    std::vector<const SpanRecord*> kids;
    for (auto it = lo; it != hi; ++it) {
      kids.push_back(it->second);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1});
    }
  }
  if (omitted > 0) {
    out += indent + "... " + std::to_string(omitted) + " more spans\n";
  }
  return out;
}

std::string RenderTimeline(const std::vector<SpanRecord>& spans, size_t max_detail,
                           const std::string& indent) {
  std::vector<TraceSummary> summaries = SummarizeTraces(spans);
  if (summaries.empty()) {
    return indent + "(no spans recorded)\n";
  }
  // Roll up the root-span names (heartbeats and timer chatter collapse to one line each).
  std::map<std::string, std::pair<size_t, size_t>> by_name;  // name -> {traces, spans}
  for (const TraceSummary& s : summaries) {
    std::string name = s.root_name.empty() ? "(orphan)" : s.root_name;
    auto& [traces, span_count] = by_name[name];
    ++traces;
    span_count += s.span_count;
  }
  std::string out = indent + "trace roots:";
  for (const auto& [name, counts] : by_name) {
    out += " " + name + " x" + std::to_string(counts.first) + " (" +
           std::to_string(counts.second) + " spans)";
  }
  out += "\n";
  // Detail the traces with the most spans — those are the multi-hop operations.
  std::vector<const TraceSummary*> detail;
  for (const TraceSummary& s : summaries) {
    detail.push_back(&s);
  }
  std::stable_sort(detail.begin(), detail.end(),
                   [](const TraceSummary* a, const TraceSummary* b) {
                     return a->span_count > b->span_count;
                   });
  if (detail.size() > max_detail) {
    detail.resize(max_detail);
  }
  std::stable_sort(detail.begin(), detail.end(),
                   [](const TraceSummary* a, const TraceSummary* b) {
                     return a->start_ms < b->start_ms;
                   });
  for (const TraceSummary* s : detail) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "trace t=[%.3f..%.3f] %zu spans:\n", s->start_ms,
                  s->end_ms, s->span_count);
    out += indent + buf;
    out += RenderTraceTree(spans, s->trace_id, indent + "  ", /*max_lines=*/48);
  }
  return out;
}

}  // namespace boom
