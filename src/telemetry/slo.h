// Per-tenant SLO reporting: drains the "slo.tenant<i>.job_ms" latency histograms into a
// p50/p99/p999 attainment report, for the tenancy benchmarks and the sloreport tool.
//
// The workload layer records one observation per completed job into its tenant's histogram
// (wide bounds — saturation experiments produce multi-minute tails that the default 10s
// latency bounds would crush into the overflow bucket). This module only *reads*: any
// subsystem that populates the naming scheme gets SLO reports for free.

#ifndef SRC_TELEMETRY_SLO_H_
#define SRC_TELEMETRY_SLO_H_

#include <string>
#include <vector>

#include "src/telemetry/metrics.h"

namespace boom {

struct TenantSlo {
  int tenant = 0;
  uint64_t count = 0;  // completed jobs observed
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  // Overload accounting, from the "slo.tenant<i>.shed|rejected|retries" counter family
  // (zero when the run had no admission control / retry machinery).
  uint64_t shed = 0;      // requests dropped by the admission gateway
  uint64_t rejected = 0;  // shed responses observed client-side
  uint64_t retries = 0;   // client retries issued (shed + timeout triggered)
};

struct SloReport {
  std::vector<TenantSlo> tenants;  // ascending tenant index

  std::string ToJson() const;
  std::string ToText() const;
};

// Histogram name for tenant `i`: "slo.tenant<i>.job_ms".
std::string SloHistogramName(int tenant);

// Log-spaced bounds from 50ms to 20 minutes — wide enough for saturated tails.
std::vector<double> SloLatencyBoundsMs();

// Scans `registry` for "slo.tenant<i>.job_ms" histograms with activity and builds the
// report. Tenants with zero completed jobs are included only if their histogram exists.
SloReport BuildSloReport(MetricsRegistry& registry);

}  // namespace boom

#endif  // SRC_TELEMETRY_SLO_H_
