#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cstdio>

namespace boom {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = DefaultLatencyBoundsMs();
  }
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.resize(bounds_.size() + 1);
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
}

void Histogram::Observe(double v) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double>::fetch_add is C++20 but not universally lock-free; CAS loop is.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(n);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= target) {
      double lo = i == 0 ? 0 : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : lo * 2;  // overflow bucket: extrapolate
      double frac = (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(name, std::move(bounds)).first;
  }
  return it->second;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<MetricRow> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  for (const auto& [name, c] : counters_) {
    if (c.value() == 0) {
      continue;
    }
    MetricRow row;
    row.name = name;
    row.kind = MetricRow::Kind::kCounter;
    row.value = static_cast<double>(c.value());
    rows.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    if (g.value() == 0) {
      continue;
    }
    MetricRow row;
    row.name = name;
    row.kind = MetricRow::Kind::kGauge;
    row.value = g.value();
    rows.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    if (h.count() == 0) {
      continue;
    }
    MetricRow row;
    row.name = name;
    row.kind = MetricRow::Kind::kHistogram;
    row.count = h.count();
    row.sum = h.sum();
    row.p50 = h.Quantile(0.50);
    row.p95 = h.Quantile(0.95);
    row.p99 = h.Quantile(0.99);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return rows;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  // Integral values print bare (counters, counts); others keep 3 decimals.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToText() const {
  std::vector<MetricRow> rows = Snapshot();
  size_t width = 4;
  for (const MetricRow& row : rows) {
    width = std::max(width, row.name.size());
  }
  std::string out;
  char buf[256];
  for (const MetricRow& row : rows) {
    if (row.kind == MetricRow::Kind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "%-*s  count=%llu sum=%s p50=%s p95=%s p99=%s\n",
                    static_cast<int>(width), row.name.c_str(),
                    static_cast<unsigned long long>(row.count),
                    FormatDouble(row.sum).c_str(), FormatDouble(row.p50).c_str(),
                    FormatDouble(row.p95).c_str(), FormatDouble(row.p99).c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%-*s  %s\n", static_cast<int>(width),
                    row.name.c_str(), FormatDouble(row.value).c_str());
    }
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::vector<MetricRow> rows = Snapshot();
  std::string out = "{";
  bool first = true;
  char buf[256];
  for (const MetricRow& row : rows) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  \"" + row.name + "\": ";
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
      case MetricRow::Kind::kGauge:
        out += "{\"value\": " + FormatDouble(row.value) + "}";
        break;
      case MetricRow::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      "{\"count\": %llu, \"sum\": %s, \"p50\": %s, \"p95\": %s, "
                      "\"p99\": %s}",
                      static_cast<unsigned long long>(row.count),
                      FormatDouble(row.sum).c_str(), FormatDouble(row.p50).c_str(),
                      FormatDouble(row.p95).c_str(), FormatDouble(row.p99).c_str());
        out += buf;
        break;
    }
  }
  out += first ? "}" : "\n}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c.Reset();
  }
  for (auto& [name, g] : gauges_) {
    g.Reset();
  }
  for (auto& [name, h] : histograms_) {
    h.Reset();
  }
}

}  // namespace boom
