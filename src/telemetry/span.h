// Causal tracing: spans record where virtual time goes as one logical operation crosses
// nodes. A span has a trace id (shared by everything causally downstream of one root), a
// span id, and a parent span id; the simulator propagates the active span context through
// message sends and scheduled events, so a BOOM-FS write yields one trace whose spans cover
// the client, the NameNode, and every pipeline DataNode (see docs/OBSERVABILITY.md).
//
// Determinism: span and trace ids are minted by mixing the tracer seed (normally the sim
// seed) with a creation counter — no wall clock, no heap addresses — so two runs of the
// same seeded simulation produce byte-identical traces. All span times are virtual.

#ifndef SRC_TELEMETRY_SPAN_H_
#define SRC_TELEMETRY_SPAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace boom {

struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
};

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;        // operation or message table, e.g. "fs.write", "dn_write"
  std::string node;        // address where the span's work happens
  double start_ms = 0;     // virtual time
  double end_ms = 0;
  bool ended = false;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  // `seed` feeds id minting (pass the simulation seed). `max_spans` bounds memory on long
  // runs; spans past the cap are counted in dropped() instead of recorded.
  explicit Tracer(uint64_t seed, size_t max_spans = 1 << 18);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts a span. An invalid parent mints a fresh trace id (a new root).
  SpanContext StartSpan(std::string name, std::string node, double now_ms,
                        SpanContext parent = {});
  // Idempotent: only the first End sets the end time (a duplicated message delivery must
  // not stretch the original send's span).
  void EndSpan(const SpanContext& ctx, double now_ms);
  void AddAttr(const SpanContext& ctx, std::string key, std::string value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  size_t dropped() const { return dropped_; }

  // One line per span in creation order, fixed-precision times, no wall-clock content —
  // byte-identical across two runs of the same seed.
  std::string ToText() const;
  std::string ToJson() const;

 private:
  uint64_t MintId();
  SpanRecord* Find(const SpanContext& ctx);

  uint64_t seed_;
  uint64_t counter_ = 0;
  size_t max_spans_;
  size_t dropped_ = 0;
  std::vector<SpanRecord> spans_;
  std::unordered_map<uint64_t, size_t> index_;  // span_id -> position in spans_
};

}  // namespace boom

#endif  // SRC_TELEMETRY_SPAN_H_
