// Trace analysis: turn a flat span list into per-trace trees, summaries, critical paths,
// and deterministic text renderings. Shared by tools/boomtrace, the chaos explorer's
// failure timelines, and the telemetry tests.

#ifndef SRC_TELEMETRY_TRACE_QUERY_H_
#define SRC_TELEMETRY_TRACE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/telemetry/span.h"

namespace boom {

struct TraceSummary {
  uint64_t trace_id = 0;
  std::string root_name;
  std::string root_node;
  double start_ms = 0;
  double end_ms = 0;       // max end over the trace's spans
  size_t span_count = 0;
};

// One summary per trace, ordered by (root start time, trace id).
std::vector<TraceSummary> SummarizeTraces(const std::vector<SpanRecord>& spans);

// The trace's spans ordered by (start time, creation order). Children always follow
// parents in creation order, so the result is topologically consistent.
std::vector<const SpanRecord*> TraceSpans(const std::vector<SpanRecord>& spans,
                                          uint64_t trace_id);

// Root-to-leaf chain that determines the trace's end time: from each span, follow the
// child with the latest end time. This is the op's critical path through the cluster.
std::vector<const SpanRecord*> CriticalPath(const std::vector<SpanRecord>& spans,
                                            uint64_t trace_id);

// Indented tree, one line per span: "t=[start..end] name@node (attrs)". Deterministic.
// `max_lines` truncates huge traces with a "... N more spans" marker (0 = unlimited).
std::string RenderTraceTree(const std::vector<SpanRecord>& spans, uint64_t trace_id,
                            const std::string& indent = "", size_t max_lines = 0);

// Compact whole-run timeline for failure reports: root spans grouped by name with counts,
// then full trees for the `max_detail` traces with the most spans. Deterministic.
std::string RenderTimeline(const std::vector<SpanRecord>& spans, size_t max_detail = 3,
                           const std::string& indent = "");

}  // namespace boom

#endif  // SRC_TELEMETRY_TRACE_QUERY_H_
