#include "src/telemetry/span.h"

#include <cstdio>

namespace boom {

Tracer::Tracer(uint64_t seed, size_t max_spans) : seed_(seed), max_spans_(max_spans) {}

uint64_t Tracer::MintId() {
  // splitmix64 over (seed, counter): deterministic, well-spread, never 0 in practice; the
  // 0 guard keeps SpanContext::valid() honest regardless.
  uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * ++counter_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

SpanContext Tracer::StartSpan(std::string name, std::string node, double now_ms,
                              SpanContext parent) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return {};
  }
  SpanRecord record;
  record.span_id = MintId();
  record.trace_id = parent.valid() ? parent.trace_id : MintId();
  record.parent_id = parent.valid() ? parent.span_id : 0;
  record.name = std::move(name);
  record.node = std::move(node);
  record.start_ms = now_ms;
  record.end_ms = now_ms;
  SpanContext ctx{record.trace_id, record.span_id};
  index_[record.span_id] = spans_.size();
  spans_.push_back(std::move(record));
  return ctx;
}

SpanRecord* Tracer::Find(const SpanContext& ctx) {
  if (!ctx.valid()) {
    return nullptr;
  }
  auto it = index_.find(ctx.span_id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

void Tracer::EndSpan(const SpanContext& ctx, double now_ms) {
  SpanRecord* span = Find(ctx);
  if (span == nullptr || span->ended) {
    return;
  }
  span->ended = true;
  span->end_ms = now_ms;
}

void Tracer::AddAttr(const SpanContext& ctx, std::string key, std::string value) {
  SpanRecord* span = Find(ctx);
  if (span != nullptr) {
    span->attrs.emplace_back(std::move(key), std::move(value));
  }
}

std::string Tracer::ToText() const {
  std::string out;
  char buf[128];
  for (const SpanRecord& s : spans_) {
    std::snprintf(buf, sizeof(buf), "%016llx/%016llx<-%016llx [%.3f..%.3f] ",
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id), s.start_ms, s.end_ms);
    out += buf;
    out += s.name + "@" + s.node;
    for (const auto& [k, v] : s.attrs) {
      out += " " + k + "=" + v;
    }
    out += "\n";
  }
  return out;
}

std::string Tracer::ToJson() const {
  std::string out = "[";
  char buf[160];
  bool first = true;
  for (const SpanRecord& s : spans_) {
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\n  {\"trace\": \"%llx\", \"span\": \"%llx\", \"parent\": \"%llx\", "
                  "\"start_ms\": %.3f, \"end_ms\": %.3f, ",
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id), s.start_ms, s.end_ms);
    out += buf;
    out += "\"name\": \"" + s.name + "\", \"node\": \"" + s.node + "\"";
    if (!s.attrs.empty()) {
      out += ", \"attrs\": {";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += "\"" + s.attrs[i].first + "\": \"" + s.attrs[i].second + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "]" : "\n]";
  return out;
}

}  // namespace boom
