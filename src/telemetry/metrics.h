// Metrics: a process-wide registry of named counters, gauges, and fixed-bucket histograms.
//
// The hot path is lock-free: a metric handle is a pointer to stable atomic storage, so
// instrumented code pays one relaxed atomic op per update. Registration (name -> handle
// lookup) takes a mutex; callers are expected to resolve handles once (at construction)
// and reuse them. Snapshots/export walk the registry under the same mutex.
//
// Naming convention (see docs/OBSERVABILITY.md): dot-separated lowercase path,
// `<subsystem>.<component>.<what>`, e.g. "fs.client.ns_request", "paxos.quorum_ms".
// Histograms that record durations end in `_ms` (virtual or wall milliseconds).

#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace boom {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one overflow bucket
// counts the rest. Observe is a bucket search plus two relaxed atomic ops.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  // Approximate quantile (linear interpolation within the containing bucket); q in [0,1].
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> bucket_counts() const;
  void Reset();

  // {1, 2, 5, ...} decades up to 10s — suits both virtual-time and wall-clock millis.
  static std::vector<double> DefaultLatencyBoundsMs();

 private:
  std::vector<double> bounds_;                   // ascending upper bounds
  std::deque<std::atomic<uint64_t>> buckets_;    // bounds_.size() + 1 (overflow last)
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// One exported metric row (see MetricsRegistry::Snapshot).
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  // Counter/gauge payload.
  double value = 0;
  // Histogram payload.
  uint64_t count = 0;
  double sum = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry used by instrumented subsystems.
  static MetricsRegistry& Global();

  // Find-or-create; returned references are stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  // Names of every registered histogram, sorted — lets reporters (e.g. the SLO report)
  // discover metric families like "slo.tenant<i>.job_ms" without a side registry.
  std::vector<std::string> HistogramNames() const;
  // Same for counters (e.g. the "slo.tenant<i>.shed" family).
  std::vector<std::string> CounterNames() const;

  // All metrics with nonzero activity, sorted by name (zero-valued metrics are elided so
  // reports only show what a run actually touched).
  std::vector<MetricRow> Snapshot() const;
  // Aligned text table of Snapshot().
  std::string ToText() const;
  // {"name": {...}, ...} with stable key order.
  std::string ToJson() const;
  // Zeroes every metric (names/handles survive) — benchmarks isolate phases with this.
  void Reset();

 private:
  mutable std::mutex mu_;
  // Node-based containers: references handed out must never move.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace boom

#endif  // SRC_TELEMETRY_METRICS_H_
