#include "src/boommr/jt_program.h"

#include "src/base/logging.h"

namespace boom {

const char* MrPolicyName(MrPolicy policy) {
  switch (policy) {
    case MrPolicy::kFifo:
      return "FIFO";
    case MrPolicy::kLate:
      return "LATE";
    case MrPolicy::kFairShare:
      return "FAIR";
    case MrPolicy::kCapacity:
      return "CAP";
  }
  return "?";
}

namespace {

// Core scheduler state: the four relations, the protocol, job/task intake, and the barrier
// between map and reduce phases. Also declares the `launch` event — the policy interface:
// policy modules derive launch rows, jt_exec consumes them.
constexpr char kCoreModule[] = R"olg(
/////////////////////////////////////////////////////////////////////////////
// The four relations at the heart of BOOM-MR (paper section on MapReduce).
/////////////////////////////////////////////////////////////////////////////
table job(JobId, Client, SubmitTime, NumMaps, NumReduces, Status) keys(0);
table task(JobId, TaskId, Type, Status) keys(0, 1, 2);
table attempt(JobId, TaskId, AttemptId, Tracker, Status, Progress, StartTime, EndTime, Spec) keys(2);
table tasktracker(TT, LastHb) keys(0);

/////////////////////////////////////////////////////////////////////////////
// Protocol events.
/////////////////////////////////////////////////////////////////////////////
event mr_submit(Addr, JobId, Client, NumMaps, NumReduces);
event mr_task(Addr, JobId, TaskId, Type);
event mr_job_done(Addr, JobId, FinishTime);
event tt_hb(Addr, TT, FreeMap, FreeReduce);
event tt_progress(Addr, TT, JobId, TaskId, AttemptId, Progress);
event tt_done(Addr, TT, JobId, TaskId, AttemptId, Type);
event assign(Addr, JobId, TaskId, AttemptId, Type, Spec);

// The policy interface: a scheduling policy derives launch(TT, J, T, Type, Spec) rows.
event launch(TT, JobId, TaskId, Type, Spec);

/////////////////////////////////////////////////////////////////////////////
// Job and task intake.
/////////////////////////////////////////////////////////////////////////////
s1 job(J, C, T, M, R, "running")@next :- mr_submit(_, J, C, M, R), T := f_now();
s2 task(J, T, Ty, "pending")@next :- mr_task(_, J, T, Ty);
s3 tasktracker(TT, T) :- tt_hb(_, TT, _, _), T := f_now();

/////////////////////////////////////////////////////////////////////////////
// Phase barrier: reduces become runnable when every map of the job is done.
/////////////////////////////////////////////////////////////////////////////
table map_done_cnt(JobId, N) keys(0);
table reduce_done_cnt(JobId, N) keys(0);
table maps_done(JobId) keys(0);
b1 map_done_cnt(J, count<T>) :- task(J, T, "map", "done");
b2 reduce_done_cnt(J, count<T>) :- task(J, T, "reduce", "done");
b3 maps_done(J) :- job(J, _, _, M, _, "running"), map_done_cnt(J, N), N == M;
b4 maps_done(J) :- job(J, _, _, 0, _, "running");
)olg";

// FIFO policy: when a tracker advertises a free slot, hand it the pending task of the
// oldest running job. min<> over [SubmitTime, JobId, TaskId] triples gives the FIFO order
// declaratively.
constexpr char kFifoModule[] = R"olg(
// ---- FIFO scheduling policy ----
event best_map(TT, Cand);
event best_reduce(TT, Cand);
f1 best_map(TT, min<Cand>) :- tt_hb(_, TT, FreeM, _), FreeM > 0,
                              task(J, T, "map", "pending"),
                              job(J, _, S, _, _, "running"),
                              Cand := [S, J, T];
f2 best_reduce(TT, min<Cand>) :- tt_hb(_, TT, _, FreeR), FreeR > 0,
                                 task(J, T, "reduce", "pending"),
                                 job(J, _, S, _, _, "running"), maps_done(J),
                                 Cand := [S, J, T];

f3 launch(TT, J, T, "map", false) :- best_map(TT, Cand),
                                     J := list_get(Cand, 1), T := list_get(Cand, 2);
f4 launch(TT, J, T, "reduce", false) :- best_reduce(TT, Cand),
                                        J := list_get(Cand, 1), T := list_get(Cand, 2);
)olg";

// Fair-share policy: a free slot goes to the pending task of the *least-loaded tenant*
// (fewest running attempts across all its jobs), FIFO within the tenant. Tenants with
// running jobs but zero running attempts get an explicit zero row so the min<> sees them —
// a starved tenant always outranks a busy one. The entire Hadoop Fair Scheduler core is
// the candidate key [Load, SubmitTime, JobId, TaskId].
constexpr char kFairShareModule[] = R"olg(
// ---- fair-share scheduling policy ----
table tenant_running(Client, N) keys(0);
table tenant_load(Client, N) keys(0);
event fs_best_map(TT, Cand);
event fs_best_reduce(TT, Cand);

fs0 tenant_running(C, count<A>) :- attempt(J, _, A, _, "running", _, _, _, _),
                                   job(J, C, _, _, _, "running");
fs1 tenant_load(C, N) :- tenant_running(C, N);
fs2 tenant_load(C, 0) :- job(_, C, _, _, _, "running"), notin tenant_running(C, _);

fs3 fs_best_map(TT, min<Cand>) :- tt_hb(_, TT, FreeM, _), FreeM > 0,
                                  task(J, T, "map", "pending"),
                                  job(J, C, S, _, _, "running"),
                                  tenant_load(C, N),
                                  Cand := [N, S, J, T];
fs4 fs_best_reduce(TT, min<Cand>) :- tt_hb(_, TT, _, FreeR), FreeR > 0,
                                     task(J, T, "reduce", "pending"),
                                     job(J, C, S, _, _, "running"), maps_done(J),
                                     tenant_load(C, N),
                                     Cand := [N, S, J, T];

fs5 launch(TT, J, T, "map", false) :- fs_best_map(TT, Cand),
                                      J := list_get(Cand, 2), T := list_get(Cand, 3);
fs6 launch(TT, J, T, "reduce", false) :- fs_best_reduce(TT, Cand),
                                         J := list_get(Cand, 2), T := list_get(Cand, 3);
)olg";

// Capacity policy (Hadoop Capacity Scheduler): each tenant has a guaranteed slot quota
// (`capacity` facts; `cap_default` for tenants without one). Slots first go to tenants
// below their quota (most under-quota wins); once everyone is at quota the policy is
// work-conserving — spare slots go to whoever is least over quota. That is exactly
// min<> over [Running - Quota, SubmitTime, JobId, TaskId].
constexpr char kCapacityModule[] = R"olg(
// ---- capacity scheduling policy ----
table capacity(Client, Slots) keys(0);
table cp_running(Client, N) keys(0);
table cp_load(Client, N) keys(0);
table cp_cap(Client, Slots) keys(0);
event cp_best_map(TT, Cand);
event cp_best_reduce(TT, Cand);

cp0 cp_running(C, count<A>) :- attempt(J, _, A, _, "running", _, _, _, _),
                               job(J, C, _, _, _, "running");
cp1 cp_load(C, N) :- cp_running(C, N);
cp2 cp_load(C, 0) :- job(_, C, _, _, _, "running"), notin cp_running(C, _);
cp3 cp_cap(C, Cap) :- capacity(C, Cap);
cp4 cp_cap(C, D) :- job(_, C, _, _, _, "running"), notin capacity(C, _),
                    D := cap_default;

cp5 cp_best_map(TT, min<Cand>) :- tt_hb(_, TT, FreeM, _), FreeM > 0,
                                  task(J, T, "map", "pending"),
                                  job(J, C, S, _, _, "running"),
                                  cp_load(C, N), cp_cap(C, Cap),
                                  Over := N - Cap,
                                  Cand := [Over, S, J, T];
cp6 cp_best_reduce(TT, min<Cand>) :- tt_hb(_, TT, _, FreeR), FreeR > 0,
                                     task(J, T, "reduce", "pending"),
                                     job(J, C, S, _, _, "running"), maps_done(J),
                                     cp_load(C, N), cp_cap(C, Cap),
                                     Over := N - Cap,
                                     Cand := [Over, S, J, T];

cp7 launch(TT, J, T, "map", false) :- cp_best_map(TT, Cand),
                                      J := list_get(Cand, 2), T := list_get(Cand, 3);
cp8 launch(TT, J, T, "reduce", false) :- cp_best_reduce(TT, Cand),
                                         J := list_get(Cand, 2), T := list_get(Cand, 3);
)olg";

// Launch machinery, progress/completion tracking, job completion, and TaskTracker failure
// handling — shared by every policy.
constexpr char kExecModule[] = R"olg(
/////////////////////////////////////////////////////////////////////////////
// Launch machinery (shared by all policies): mint an attempt id, notify the
// tracker, record the attempt, flip the task to running.
/////////////////////////////////////////////////////////////////////////////
event launch2(TT, JobId, TaskId, Type, Spec, AttemptId);
l1 launch2(TT, J, T, Ty, Sp, Aid) :- launch(TT, J, T, Ty, Sp), Aid := f_unique_id();
l2 assign(@TT, J, T, Aid, Ty, Sp) :- launch2(TT, J, T, Ty, Sp, Aid);
l3 attempt(J, T, Aid, TT, "running", 0.0, Now, 0.0, Sp)@next :-
       launch2(TT, J, T, Ty, Sp, Aid), Now := f_now();
l4 task(J, T, Ty, "running")@next :- launch2(TT, J, T, Ty, false, _);

/////////////////////////////////////////////////////////////////////////////
// Progress and completion reports.
/////////////////////////////////////////////////////////////////////////////
p1 attempt(J, T, Aid, TT, "running", Pr, St, 0.0, Sp)@next :-
       tt_progress(_, _, J, T, Aid, Pr), attempt(J, T, Aid, TT, "running", _, St, _, Sp);
c1 task(J, T, Ty, "done")@next :- tt_done(_, _, J, T, _, Ty), task(J, T, Ty, _);
c2 attempt(J, T, Aid, TT, "done", 1.0, St, En, Sp)@next :-
       tt_done(_, _, J, T, Aid, _), attempt(J, T, Aid, TT, _, _, St, _, Sp),
       En := f_now();

/////////////////////////////////////////////////////////////////////////////
// Job completion: all maps and reduces done.
/////////////////////////////////////////////////////////////////////////////
j1 job(J, C, S, M, R, "done")@next :- job(J, C, S, M, R, "running"),
                                      map_done_cnt(J, DM), DM == M,
                                      reduce_done_cnt(J, DR), DR == R, R > 0;
j2 job(J, C, S, M, 0, "done")@next :- job(J, C, S, M, 0, "running"),
                                      map_done_cnt(J, DM), DM == M, M > 0;
// Degenerate shapes: count aggregates have no row when zero tasks of a type exist.
j4 job(J, C, S, 0, 0, "done")@next :- job(J, C, S, 0, 0, "running");
j5 job(J, C, S, 0, R, "done")@next :- job(J, C, S, 0, R, "running"),
                                      reduce_done_cnt(J, DR), DR == R, R > 0;
j3 mr_job_done(@C, J, T) :- job(J, C, _, _, _, "done"), T := f_now();

/////////////////////////////////////////////////////////////////////////////
// TaskTracker failure handling: a silent tracker is declared dead; its
// running attempts fail and their tasks go back to pending for re-execution.
/////////////////////////////////////////////////////////////////////////////
timer tt_check(tt_check_ms);
event tt_dead(TT);
x1 tt_dead(TT) :- tt_check(_), tasktracker(TT, T), f_now() - T > tt_timeout_ms;
x2 delete tasktracker(TT, T) :- tt_dead(TT), tasktracker(TT, T);
x3 attempt(J, T, A, TT, "failed", Pr, St, En, Sp)@next :-
       tt_dead(TT), attempt(J, T, A, TT, "running", Pr, St, En, Sp);
x4 task(J, T, Ty, "pending")@next :- tt_dead(TT),
                                     attempt(J, T, _, TT, "running", _, _, _, false),
                                     task(J, T, Ty, "running");

// Attempt-level timeout (Hadoop's mapred.task.timeout): an attempt stuck "running" far
// beyond any plausible duration — the assign was lost in flight, or the tracker crashed
// and restarted before the dead-tracker timeout — is failed and its task re-queued. A
// spuriously timed-out attempt that later completes anyway is harmless: the first
// completion wins and duplicates are ignored.
event attempt_stuck(JobId, TaskId, AttemptId, Tracker);
x5 attempt_stuck(J, T, A, TT) :- tt_check(_),
                                 attempt(J, T, A, TT, "running", _, St, _, _),
                                 f_now() - St > att_timeout_ms;
x6 attempt(J, T, A, TT, "failed", Pr, St, En, Sp)@next :-
       attempt_stuck(J, T, A, TT), attempt(J, T, A, TT, "running", Pr, St, En, Sp);
x7 task(J, T, Ty, "pending")@next :- attempt_stuck(J, T, _, TT),
                                     attempt(J, T, _, TT, "running", _, _, _, false),
                                     task(J, T, Ty, "running");
)olg";

// LATE speculative execution. When a tracker has a free slot and there is no pending work,
// re-execute the running attempt with the Longest Approximate Time to End, provided the
// attempt is slow relative to the fleet (rate below slow_frac of the average) and the
// number of in-flight speculative attempts is under spec_cap. This condenses the LATE
// heuristics into five rules — the paper's point about policy being data.
constexpr char kLateModule[] = R"olg(
// ---- LATE speculation policy ----
table spec_attempt(JobId, TaskId, Type) keys(0, 1, 2);
table spec_running_cnt(K, N) keys(0);
table rate_stats(K, AvgRate) keys(0);
event spec_req(TT, Type);
event spec_cand(TT, Type, Cand);
event spec_launch(TT, JobId, TaskId, Type);

sl0 spec_running_cnt(1, count<A>) :- attempt(_, _, A, _, "running", _, _, _, true);
table attempt_rate(AttemptId, Rate) keys(0);
ar1 attempt_rate(A, Rate) :- attempt(_, _, A, _, "running", Pr, St, _, _), Pr > 0.0,
                             Rate := Pr / (f_now() - St + 1.0);
ar2 attempt_rate(A, Rate) :- attempt(_, _, A, _, "done", _, St, En, _),
                             Rate := 1.0 / (En - St + 1.0);
sl1 rate_stats(1, avg<Rate>) :- attempt_rate(_, Rate);

sr1 spec_req(TT, "map") :- tt_hb(_, TT, FreeM, _), FreeM > 0,
                           notin task(_, _, "map", "pending");
sr2 spec_req(TT, "reduce") :- tt_hb(_, TT, _, FreeR), FreeR > 0,
                              notin task(_, _, "reduce", "pending");

sc1 spec_cand(TT, Ty, max<Cand>) :- spec_req(TT, Ty),
                                    attempt(J, T, _, _, "running", Pr, St, _, false),
                                    task(J, T, Ty, "running"),
                                    notin spec_attempt(J, T, Ty),
                                    rate_stats(1, AvgRate),
                                    Pr > 0.0, Pr < 1.0,
                                    Rate := Pr / (f_now() - St + 1.0),
                                    Rate < AvgRate * slow_frac,
                                    TimeLeft := (1.0 - Pr) / (Rate + 0.000001),
                                    Cand := [TimeLeft, J, T];

sp1 spec_launch(TT, J, T, Ty) :- spec_cand(TT, Ty, Cand), spec_running_cnt(1, N),
                                 N < spec_cap,
                                 J := list_get(Cand, 1), T := list_get(Cand, 2);
sp2 spec_launch(TT, J, T, Ty) :- spec_cand(TT, Ty, Cand),
                                 notin attempt(_, _, _, _, "running", _, _, _, true),
                                 J := list_get(Cand, 1), T := list_get(Cand, 2);

sp3 launch(TT, J, T, Ty, true) :- spec_launch(TT, J, T, Ty);
sp4 spec_attempt(J, T, Ty)@next :- spec_launch(_, J, T, Ty);
)olg";

// Admission module: intake moves to mr_ingress / mr_task_ingress; a submission arriving
// while the running-job backlog is at the bound is denied and bounced back to the client
// with a retry-after hint, and its task stream is swallowed. Admitted jobs re-derive the
// core mr_submit / mr_task events locally, so the rest of the program is untouched.
constexpr char kAdmissionModule[] = R"olg(
// ---- admission: bound the running-job backlog, shed with a retry-after hint ----
table jam_backlog(K, N) keys(0);
// Jobs denied in an earlier tick: their task events may still be in flight and must be
// swallowed, not turned into orphan task rows.
table jam_denied(JobId) keys(0);
event mr_ingress(Addr, JobId, Client, NumMaps, NumReduces);
event mr_task_ingress(Addr, JobId, TaskId, Type);
event jam_deny(JobId, Client);
event mr_reject(Addr, JobId, RetryMs);

ja1 jam_backlog(1, count<J>) :- job(J, _, _, _, _, "running");
ja2 jam_deny(J, C) :- mr_ingress(@Me, J, C, _, _), jam_backlog(1, N),
                      N >= jam_queue_bound;
ja3 jam_denied(J)@next :- jam_deny(J, _);
ja4 mr_submit(Me, J, C, M, R) :- mr_ingress(@Me, J, C, M, R), notin jam_deny(J, _);
ja5 mr_task(Me, J, T, Ty) :- mr_task_ingress(@Me, J, T, Ty), notin jam_deny(J, _),
                             notin jam_denied(J);
ja6 mr_reject(@C, J, RMs) :- jam_deny(J, C), RMs := jam_retry_ms;
// A denied job id that comes back and is admitted sheds its tombstone.
ja7 delete jam_denied(J) :- mr_ingress(_, J, _, _, _), jam_denied(J),
                            notin jam_deny(J, _);
)olg";

}  // namespace

const Module& JtCoreModule() {
  static const Module* kModule = new Module{"jt_core", kCoreModule, {}};
  return *kModule;
}

const Module& JtFifoPolicyModule() {
  static const Module* kModule = new Module{"jt_fifo", kFifoModule, {}};
  return *kModule;
}

const Module& JtFairSharePolicyModule() {
  static const Module* kModule = new Module{"jt_fairshare", kFairShareModule, {}};
  return *kModule;
}

const Module& JtCapacityPolicyModule() {
  static const Module* kModule = new Module{
      "jt_capacity",
      kCapacityModule,
      {ModuleParam::Required("cap_default", ValueKind::kInt)},
  };
  return *kModule;
}

const Module& JtExecModule() {
  static const Module* kModule = new Module{
      "jt_exec",
      kExecModule,
      {ModuleParam::Required("tt_check_ms", ValueKind::kDouble),
       ModuleParam::Required("tt_timeout_ms", ValueKind::kDouble),
       ModuleParam::Required("att_timeout_ms", ValueKind::kDouble)},
  };
  return *kModule;
}

const Module& JtAdmissionModule() {
  static const Module* kModule = new Module{
      "jt_admission",
      kAdmissionModule,
      {ModuleParam::Required("jam_queue_bound", ValueKind::kInt),
       ModuleParam::Required("jam_retry_ms", ValueKind::kDouble)},
  };
  return *kModule;
}

const Module& JtLatePolicyModule() {
  static const Module* kModule = new Module{
      "jt_late",
      kLateModule,
      {ModuleParam::Required("spec_cap", ValueKind::kInt),
       ModuleParam::Required("slow_frac", ValueKind::kDouble)},
  };
  return *kModule;
}

Program BoomMrJtProgram(const JtProgramOptions& options) {
  ProgramBuilder builder("boommr_jt");
  if (options.with_admission) {
    // The core intake events now have local producers (ja4/ja5); the network-facing
    // externals are the ingress pair.
    builder.WithExternalInputs(
        {"mr_ingress", "mr_task_ingress", "tt_hb", "tt_progress", "tt_done"});
  } else {
    builder.WithExternalInputs(
        {"mr_submit", "mr_task", "tt_hb", "tt_progress", "tt_done"});
  }
  Status status = builder.Add(JtCoreModule());
  BOOM_CHECK(status.ok()) << status.ToString();
  if (options.with_admission) {
    status = builder.Add(JtAdmissionModule(),
                         {{"jam_queue_bound", options.jam_queue_bound},
                          {"jam_retry_ms", options.jam_retry_ms}});
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  switch (options.policy) {
    case MrPolicy::kFifo:
    case MrPolicy::kLate:
      status = builder.Add(JtFifoPolicyModule());
      break;
    case MrPolicy::kFairShare:
      status = builder.Add(JtFairSharePolicyModule());
      break;
    case MrPolicy::kCapacity:
      status = builder.Add(JtCapacityPolicyModule(),
                           {{"cap_default", options.capacity_default}});
      for (const auto& [client, slots] : options.tenant_capacities) {
        builder.AddFact("capacity", Tuple({Value(client), Value(slots)}));
      }
      break;
  }
  BOOM_CHECK(status.ok()) << status.ToString();
  status = builder.Add(JtExecModule(),
                       {{"tt_check_ms", options.tracker_check_period_ms},
                        {"tt_timeout_ms", options.tracker_timeout_ms},
                        {"att_timeout_ms", options.attempt_timeout_ms}});
  BOOM_CHECK(status.ok()) << status.ToString();
  if (options.policy == MrPolicy::kLate) {
    status = builder.Add(JtLatePolicyModule(),
                         {{"spec_cap", options.speculative_cap},
                          {"slow_frac", options.slow_task_fraction}});
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

}  // namespace boom
