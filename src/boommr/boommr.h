// Cluster assembly for MapReduce: a JobTracker (BOOM-MR Overlog or Hadoop baseline), a pool
// of TaskTrackers, a client, and a shared data plane — plus a synchronous job runner.

#ifndef SRC_BOOMMR_BOOMMR_H_
#define SRC_BOOMMR_BOOMMR_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/boommr/jt_program.h"
#include "src/boommr/mr_client.h"
#include "src/boommr/mr_types.h"
#include "src/boommr/tasktracker.h"
#include "src/sim/cluster.h"

namespace boom {

enum class MrKind {
  kBoomMr,          // Overlog JobTracker
  kHadoopBaseline,  // imperative JobTracker
};

const char* MrKindName(MrKind kind);

struct MrSetupOptions {
  MrKind kind = MrKind::kBoomMr;
  MrPolicy policy = MrPolicy::kFifo;
  std::string jobtracker = "jt";
  int num_trackers = 10;
  int map_slots = 2;
  int reduce_slots = 2;
  double heartbeat_period_ms = 200;
  double progress_period_ms = 500;
  int speculative_cap = 10;
  double slow_task_fraction = 0.5;
  // Straggler injection: per-tracker slowdown factors; index i applies to tracker i
  // (missing entries default to 1.0).
  std::vector<double> tracker_slowdowns;
  // Multi-tenancy: one submission client per tenant. Tenant 0 keeps the historical
  // "<jt>_client" address; tenant i > 0 is "<jt>_client_t<i>". All share the data plane;
  // job-id blocks of 10^6 per tenant keep RegisterJob collision-free.
  int num_tenants = 1;
  // kCapacity quotas, keyed by tenant *index* (resolved to client addresses here).
  std::vector<std::pair<int, int64_t>> tenant_capacities;
  int64_t capacity_default = 2;
  // Admission control (jt_admission module, BOOM-MR only): clients submit via
  // mr_ingress/mr_task_ingress, submissions past the running-job bound are rejected with
  // a retry hint, and rejected clients resubmit under fresh ids within `client` options.
  bool with_admission = false;
  int64_t jam_queue_bound = 8;
  double jam_retry_ms = 500;
  MrClientOptions client;  // applied to every tenant client (via_ingress is forced on
                           // when with_admission is set)
  // Test hook: install this JobTracker program instead of the generated one (used by the
  // refactor-equivalence tests to pin a frozen pre-refactor program text).
  std::optional<Program> jt_program_override;
};

struct MrHandles {
  std::string jobtracker;
  std::vector<std::string> trackers;
  MrClient* client = nullptr;                 // tenant 0's client, owned by the cluster
  std::vector<MrClient*> tenant_clients;      // one per tenant; [0] == client
  std::shared_ptr<MrDataPlane> data_plane;
};

MrHandles SetupMr(Cluster& cluster, const MrSetupOptions& options);

// Submits `spec` and drives the simulation until the job finishes (or timeout). Returns the
// finish time, or a negative value on timeout.
double RunJobSync(Cluster& cluster, MrHandles& handles, JobSpec spec,
                  double timeout_ms = 600000);

}  // namespace boom

#endif  // SRC_BOOMMR_BOOMMR_H_
