// The BOOM-MR JobTracker as an Overlog program — the paper's headline result for MapReduce:
// Hadoop's scheduling core becomes four relations (job, task, attempt, tasktracker) plus a
// handful of rules, and the scheduling *policy* is a swappable rule set. Two policies ship,
// matching the paper: the default FIFO policy and the LATE speculative-execution policy
// (Zaharia et al., OSDI 2008).
//
// The program is composed from modules (see overlog/module.h):
//   jt_core      the four relations, protocol events, intake, and the map/reduce barrier
//   jt_fifo      FIFO policy: free slot -> pending task of the oldest running job
//   jt_fairshare fair-share policy: free slot -> least-loaded tenant's oldest pending task
//   jt_capacity  capacity policy: guaranteed per-tenant slot quotas, work-conserving
//   jt_exec      launch machinery, progress/completion, job completion, failure handling
//   jt_late      LATE policy: speculative re-execution of stragglers (added for kLate)
// The policy boundary is the `launch` event declared by jt_core: a policy module's only
// job is to derive launch(TT, J, T, Type, Spec) rows; jt_exec turns them into attempts.
// Each policy is one Add() swap — the paper's claim that scheduling policy is data.

#ifndef SRC_BOOMMR_JT_PROGRAM_H_
#define SRC_BOOMMR_JT_PROGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/overlog/ast.h"
#include "src/overlog/module.h"

namespace boom {

enum class MrPolicy {
  kFifo,       // no speculation
  kLate,       // FIFO + LATE speculative re-execution of stragglers
  kFairShare,  // slots go to the tenant with the fewest running attempts
  kCapacity,   // per-tenant guaranteed slot quotas, work-conserving beyond the quota
};

const char* MrPolicyName(MrPolicy policy);

struct JtProgramOptions {
  MrPolicy policy = MrPolicy::kFifo;
  // LATE parameters (fractions, as in the paper).
  int speculative_cap = 10;        // max concurrent speculative attempts
  double slow_task_fraction = 0.5;  // attempt is "slow" if rate < fraction * avg rate
  // TaskTracker failure detection: silent trackers lose their running attempts.
  double tracker_check_period_ms = 1000;
  double tracker_timeout_ms = 3000;
  // Per-attempt timeout: a "running" attempt older than this is failed and re-queued
  // (covers assigns lost in flight and trackers that bounced under the tracker timeout).
  double attempt_timeout_ms = 10000;
  // kCapacity: guaranteed slots per tenant (client address -> slots), installed as
  // `capacity` facts. Tenants absent from the list fall back to `capacity_default`.
  std::vector<std::pair<std::string, int64_t>> tenant_capacities;
  int64_t capacity_default = 2;
  // Admission control (jt_admission): bound the running-job backlog. Submissions arriving
  // via mr_ingress while `jam_queue_bound` jobs are running are bounced back with
  // mr_reject(Client, JobId, jam_retry_ms). Off by default — the composed program (and
  // the frozen policy goldens) are byte-identical without it.
  bool with_admission = false;
  int64_t jam_queue_bound = 8;
  double jam_retry_ms = 500;
};

// The JobTracker modules, for composition on a caller-owned ProgramBuilder.
const Module& JtCoreModule();
const Module& JtFifoPolicyModule();
const Module& JtFairSharePolicyModule();
const Module& JtCapacityPolicyModule();
const Module& JtExecModule();
const Module& JtLatePolicyModule();
const Module& JtAdmissionModule();

// Composes the JobTracker program for `options` and runs the analyzer. Aborts on error —
// the modules are compiled in, so failure is a code bug.
Program BoomMrJtProgram(const JtProgramOptions& options = {});

}  // namespace boom

#endif  // SRC_BOOMMR_JT_PROGRAM_H_
