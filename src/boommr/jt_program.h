// The BOOM-MR JobTracker as an Overlog program — the paper's headline result for MapReduce:
// Hadoop's scheduling core becomes four relations (job, task, attempt, tasktracker) plus a
// handful of rules, and the scheduling *policy* is a swappable rule set. Two policies ship,
// matching the paper: the default FIFO policy and the LATE speculative-execution policy
// (Zaharia et al., OSDI 2008).

#ifndef SRC_BOOMMR_JT_PROGRAM_H_
#define SRC_BOOMMR_JT_PROGRAM_H_

#include <string>

namespace boom {

enum class MrPolicy {
  kFifo,  // no speculation
  kLate,  // FIFO + LATE speculative re-execution of stragglers
};

const char* MrPolicyName(MrPolicy policy);

struct JtProgramOptions {
  MrPolicy policy = MrPolicy::kFifo;
  // LATE parameters (fractions, as in the paper).
  int speculative_cap = 10;        // max concurrent speculative attempts
  double slow_task_fraction = 0.5;  // attempt is "slow" if rate < fraction * avg rate
  // TaskTracker failure detection: silent trackers lose their running attempts.
  double tracker_check_period_ms = 1000;
  double tracker_timeout_ms = 3000;
  // Per-attempt timeout: a "running" attempt older than this is failed and re-queued
  // (covers assigns lost in flight and trackers that bounced under the tracker timeout).
  double attempt_timeout_ms = 10000;
};

// Returns the JobTracker Overlog program text.
std::string BoomMrJtProgram(const JtProgramOptions& options = {});

}  // namespace boom

#endif  // SRC_BOOMMR_JT_PROGRAM_H_
