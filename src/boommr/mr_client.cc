#include "src/boommr/mr_client.h"

#include <algorithm>

#include "src/boommr/mr_protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

bool MrClient::TrySpendRetryToken() {
  if (options_.retry_budget_cap <= 0) {
    return true;  // budget disabled
  }
  if (retry_tokens_ < 1) {
    MetricsRegistry::Global().counter("mr.client.retry_budget_exhausted").Add();
    return false;
  }
  retry_tokens_ -= 1;
  return true;
}

void MrClient::Submit(Cluster& cluster, JobSpec spec,
                      std::function<void(double)> done) {
  int64_t job = spec.job_id;
  int num_maps = spec.num_maps;
  int num_reduces = spec.num_reduces;
  if (options_.via_ingress) {
    specs_[job] = spec;  // kept for resubmission on mr_reject
  }
  data_plane_->RegisterJob(std::move(spec));
  data_plane_->metrics().job_submit_ms[job] = cluster.now();
  pending_[job] = std::move(done);
  MetricsRegistry::Global().counter("mr.client.job_submit").Add();
  job_spans_[job] = cluster.StartSpan("mr.job", address());
  cluster.SpanAttr(job_spans_[job], "job", std::to_string(job));
  Cluster::SpanScope scope(cluster, job_spans_[job]);

  const std::string& submit_table = options_.via_ingress ? kMrIngress : kMrSubmit;
  const std::string& task_table = options_.via_ingress ? kMrTaskIngress : kMrTask;
  cluster.Send(address(), jobtracker_, submit_table,
               Tuple{Value(jobtracker_), Value(job), Value(address()), Value(num_maps),
                     Value(num_reduces)});
  for (int t = 0; t < num_maps; ++t) {
    cluster.Send(address(), jobtracker_, task_table,
                 Tuple{Value(jobtracker_), Value(job), Value(t), Value(kTaskMap)});
  }
  for (int t = 0; t < num_reduces; ++t) {
    cluster.Send(address(), jobtracker_, task_table,
                 Tuple{Value(jobtracker_), Value(job), Value(t), Value(kTaskReduce)});
  }
}

void MrClient::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kMrJobDone) {
    // (Client, JobId, FinishTime)
    int64_t job = msg.tuple[1].as_int();
    auto it = pending_.find(job);
    if (it == pending_.end()) {
      return;  // duplicate completion notice
    }
    auto cb = std::move(it->second);
    pending_.erase(it);
    specs_.erase(job);
    resubmits_.erase(job);
    if (options_.retry_budget_cap > 0) {
      retry_tokens_ = std::min(options_.retry_budget_cap,
                               retry_tokens_ + options_.retry_budget_refill);
    }
    data_plane_->metrics().job_done_ms[job] = cluster.now();
    auto span_it = job_spans_.find(job);
    if (span_it != job_spans_.end()) {
      double submit_ms = data_plane_->metrics().job_submit_ms[job];
      MetricsRegistry::Global().histogram("mr.client.job_ms").Observe(cluster.now() -
                                                                      submit_ms);
      cluster.EndSpan(span_it->second);
      job_spans_.erase(span_it);
    }
    cb(cluster.now());
    return;
  }
  if (msg.table == kMrReject) {
    // (Client, JobId, RetryMs): admission bounced the submission. Resubmit under a fresh
    // id after the server's hint, spending a retry token; give up (cb never fires — the
    // caller's own deadline owns that) when the budget or resubmit cap is exhausted.
    int64_t job = msg.tuple[1].as_int();
    auto it = pending_.find(job);
    auto spec_it = specs_.find(job);
    if (it == pending_.end() || spec_it == specs_.end()) {
      return;  // duplicate reject
    }
    MetricsRegistry::Global().counter("mr.client.job_reject").Add();
    auto cb = std::move(it->second);
    JobSpec spec = std::move(spec_it->second);
    int attempts = resubmits_[job];
    pending_.erase(it);
    specs_.erase(spec_it);
    resubmits_.erase(job);
    auto span_it = job_spans_.find(job);
    if (span_it != job_spans_.end()) {
      cluster.SpanAttr(span_it->second, "rejected", "1");
      cluster.EndSpan(span_it->second);
      job_spans_.erase(span_it);
    }
    if (attempts >= options_.max_resubmits || !TrySpendRetryToken()) {
      MetricsRegistry::Global().counter("mr.client.job_reject_give_up").Add();
      return;
    }
    double delay = msg.tuple[2].is_numeric() ? msg.tuple[2].ToDouble() : 0.0;
    cluster.ScheduleAfter(delay, [this, &cluster, spec = std::move(spec),
                                  cb = std::move(cb), attempts]() mutable {
      spec.job_id = NextJobId();
      resubmits_[spec.job_id] = attempts + 1;
      MetricsRegistry::Global().counter("mr.client.job_resubmit").Add();
      Submit(cluster, std::move(spec), std::move(cb));
    });
    return;
  }
}

}  // namespace boom
