#include "src/boommr/mr_client.h"

#include "src/boommr/mr_protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

void MrClient::Submit(Cluster& cluster, JobSpec spec,
                      std::function<void(double)> done) {
  int64_t job = spec.job_id;
  int num_maps = spec.num_maps;
  int num_reduces = spec.num_reduces;
  data_plane_->RegisterJob(std::move(spec));
  data_plane_->metrics().job_submit_ms[job] = cluster.now();
  pending_[job] = std::move(done);
  MetricsRegistry::Global().counter("mr.client.job_submit").Add();
  job_spans_[job] = cluster.StartSpan("mr.job", address());
  cluster.SpanAttr(job_spans_[job], "job", std::to_string(job));
  Cluster::SpanScope scope(cluster, job_spans_[job]);

  cluster.Send(address(), jobtracker_, kMrSubmit,
               Tuple{Value(jobtracker_), Value(job), Value(address()), Value(num_maps),
                     Value(num_reduces)});
  for (int t = 0; t < num_maps; ++t) {
    cluster.Send(address(), jobtracker_, kMrTask,
                 Tuple{Value(jobtracker_), Value(job), Value(t), Value(kTaskMap)});
  }
  for (int t = 0; t < num_reduces; ++t) {
    cluster.Send(address(), jobtracker_, kMrTask,
                 Tuple{Value(jobtracker_), Value(job), Value(t), Value(kTaskReduce)});
  }
}

void MrClient::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kMrJobDone) {
    // (Client, JobId, FinishTime)
    int64_t job = msg.tuple[1].as_int();
    auto it = pending_.find(job);
    if (it == pending_.end()) {
      return;  // duplicate completion notice
    }
    auto cb = std::move(it->second);
    pending_.erase(it);
    data_plane_->metrics().job_done_ms[job] = cluster.now();
    auto span_it = job_spans_.find(job);
    if (span_it != job_spans_.end()) {
      double submit_ms = data_plane_->metrics().job_submit_ms[job];
      MetricsRegistry::Global().histogram("mr.client.job_ms").Observe(cluster.now() -
                                                                      submit_ms);
      cluster.EndSpan(span_it->second);
      job_spans_.erase(span_it);
    }
    cb(cluster.now());
  }
}

}  // namespace boom
