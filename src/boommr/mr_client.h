// MrClient: submits jobs to a JobTracker (either implementation) and awaits completion.

#ifndef SRC_BOOMMR_MR_CLIENT_H_
#define SRC_BOOMMR_MR_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/boommr/mr_types.h"
#include "src/sim/cluster.h"

namespace boom {

struct MrClientOptions {
  // Submit through the JobTracker's admission gateway tables (mr_ingress /
  // mr_task_ingress) instead of the direct mr_submit/mr_task intake. A bounced
  // submission comes back as mr_reject(Client, JobId, RetryMs) and is resubmitted with a
  // FRESH job id after the server's retry hint (a fresh id sidesteps any race between
  // readmission and task events still in flight under the old id).
  bool via_ingress = false;
  // Resubmit budget: token bucket as in FsClientOptions — each resubmit spends a token,
  // each completed job credits retry_budget_refill back. 0 disables the budget.
  double retry_budget_cap = 0;
  double retry_budget_refill = 1;
  int max_resubmits = 8;  // per logical job, across its ids
};

class MrClient : public Actor {
 public:
  // `first_job_id` partitions the id space when several clients share one data plane
  // (multi-tenant setups give tenant i the block [i*10^6, (i+1)*10^6)).
  MrClient(std::string address, std::string jobtracker,
           std::shared_ptr<MrDataPlane> data_plane, int64_t first_job_id = 1)
      : Actor(std::move(address)),
        jobtracker_(std::move(jobtracker)),
        data_plane_(std::move(data_plane)),
        next_job_id_(first_job_id) {}

  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Registers the job in the data plane and streams the submit + task events to the
  // JobTracker. `done` fires when mr_job_done arrives.
  void Submit(Cluster& cluster, JobSpec spec, std::function<void(double finish_ms)> done);

  // Fresh process-unique job id.
  int64_t NextJobId() { return next_job_id_++; }

  void set_options(MrClientOptions options) {
    options_ = std::move(options);
    retry_tokens_ = options_.retry_budget_cap;  // bucket starts full
  }
  double retry_tokens() const { return retry_tokens_; }

 private:
  bool TrySpendRetryToken();

  std::string jobtracker_;
  std::shared_ptr<MrDataPlane> data_plane_;
  MrClientOptions options_;
  std::map<int64_t, std::function<void(double)>> pending_;
  std::map<int64_t, SpanContext> job_spans_;  // "mr.job" root span per job in flight
  // Ingress mode: the spec and resubmit count per job id in flight, so a rejected job can
  // be resubmitted (specs are dropped once the job completes or gives up).
  std::map<int64_t, JobSpec> specs_;
  std::map<int64_t, int> resubmits_;
  double retry_tokens_ = 0;
  int64_t next_job_id_;
};

}  // namespace boom

#endif  // SRC_BOOMMR_MR_CLIENT_H_
