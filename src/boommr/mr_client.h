// MrClient: submits jobs to a JobTracker (either implementation) and awaits completion.

#ifndef SRC_BOOMMR_MR_CLIENT_H_
#define SRC_BOOMMR_MR_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/boommr/mr_types.h"
#include "src/sim/cluster.h"

namespace boom {

class MrClient : public Actor {
 public:
  // `first_job_id` partitions the id space when several clients share one data plane
  // (multi-tenant setups give tenant i the block [i*10^6, (i+1)*10^6)).
  MrClient(std::string address, std::string jobtracker,
           std::shared_ptr<MrDataPlane> data_plane, int64_t first_job_id = 1)
      : Actor(std::move(address)),
        jobtracker_(std::move(jobtracker)),
        data_plane_(std::move(data_plane)),
        next_job_id_(first_job_id) {}

  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Registers the job in the data plane and streams the submit + task events to the
  // JobTracker. `done` fires when mr_job_done arrives.
  void Submit(Cluster& cluster, JobSpec spec, std::function<void(double finish_ms)> done);

  // Fresh process-unique job id.
  int64_t NextJobId() { return next_job_id_++; }

 private:
  std::string jobtracker_;
  std::shared_ptr<MrDataPlane> data_plane_;
  std::map<int64_t, std::function<void(double)>> pending_;
  std::map<int64_t, SpanContext> job_spans_;  // "mr.job" root span per job in flight
  int64_t next_job_id_;
};

}  // namespace boom

#endif  // SRC_BOOMMR_MR_CLIENT_H_
