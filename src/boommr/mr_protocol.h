// MapReduce control-plane protocol, shared by the BOOM-MR (Overlog) JobTracker and the
// Hadoop-baseline (imperative) JobTracker. TaskTrackers and MR clients are agnostic about
// which JobTracker they talk to.
//
// Client -> JobTracker:
//   mr_submit(JT, JobId, Client, NumMaps, NumReduces)
//   mr_task(JT, JobId, TaskId, Type)            Type in {"map", "reduce"}
// JobTracker -> client:
//   mr_job_done(Client, JobId, FinishTime)
// TaskTracker -> JobTracker:
//   tt_hb(JT, TT, FreeMapSlots, FreeReduceSlots)
//   tt_progress(JT, TT, JobId, TaskId, AttemptId, Progress)
//   tt_done(JT, TT, JobId, TaskId, AttemptId, Type)
// JobTracker -> TaskTracker:
//   assign(TT, JobId, TaskId, AttemptId, Type, Speculative)

#ifndef SRC_BOOMMR_MR_PROTOCOL_H_
#define SRC_BOOMMR_MR_PROTOCOL_H_

namespace boom {

inline constexpr char kMrSubmit[] = "mr_submit";
inline constexpr char kMrTask[] = "mr_task";
inline constexpr char kMrJobDone[] = "mr_job_done";
// Admission intake (jt_admission module): same shapes as mr_submit / mr_task. Admitted
// jobs re-derive the core events locally; shed jobs are bounced back to the client with
// mr_reject(Client, JobId, RetryAfterMs).
inline constexpr char kMrIngress[] = "mr_ingress";
inline constexpr char kMrTaskIngress[] = "mr_task_ingress";
inline constexpr char kMrReject[] = "mr_reject";
inline constexpr char kTtHb[] = "tt_hb";
inline constexpr char kTtProgress[] = "tt_progress";
inline constexpr char kTtDone[] = "tt_done";
inline constexpr char kAssign[] = "assign";

inline constexpr char kTaskMap[] = "map";
inline constexpr char kTaskReduce[] = "reduce";

}  // namespace boom

#endif  // SRC_BOOMMR_MR_PROTOCOL_H_
