// Shared MapReduce job machinery: job specifications, the in-process data plane, and the
// metrics sink the benchmarks read.
//
// Scheduling and control flow are strictly message-passing (through either JobTracker); the
// *data* plane — input splits, intermediate shuffle files, task outputs — lives in a shared
// in-process object, mirroring the paper's split where Hadoop's data path stayed in Java.
// Task durations come from a pluggable model so benchmarks can impose lognormal workloads
// and stragglers while examples run real map/reduce functions over real bytes.

#ifndef SRC_BOOMMR_MR_TYPES_H_
#define SRC_BOOMMR_MR_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.h"

namespace boom {

struct TaskRef {
  int64_t job_id = 0;
  int64_t task_id = 0;
  bool is_map = true;
};

using KvPair = std::pair<std::string, std::string>;
// Map: input split bytes -> intermediate key/value pairs.
using MapFn = std::function<void(const std::string& input, std::vector<KvPair>* out)>;
// Reduce: key + all its values -> output line.
using ReduceFn =
    std::function<std::string(const std::string& key, const std::vector<std::string>& values)>;
// Virtual-time duration of a task attempt on a given tracker (before the tracker's own
// slowdown factor is applied).
using DurationFn = std::function<double(const TaskRef& task, const std::string& tracker)>;

struct JobSpec {
  int64_t job_id = 0;
  std::string client;
  int num_maps = 0;
  int num_reduces = 0;
  // Optional real data-plane work (null fns = pure simulation).
  MapFn map_fn;
  ReduceFn reduce_fn;
  std::vector<std::string> map_inputs;  // one split per map task
  // Timing model; when null a small constant is used.
  DurationFn duration_ms;
};

struct AttemptRecord {
  int64_t job_id = 0;
  int64_t task_id = 0;
  int64_t attempt_id = 0;
  std::string tracker;
  bool is_map = true;
  bool speculative = false;
  double start_ms = 0;
  double end_ms = -1;       // -1 while running
  bool won = false;         // this attempt completed first for its task
};

// Metrics sink shared by trackers / clients; benchmarks read it after the run.
struct MrMetrics {
  std::vector<AttemptRecord> attempts;
  std::map<int64_t, double> job_submit_ms;
  std::map<int64_t, double> job_done_ms;
  std::map<std::tuple<int64_t, int64_t, bool>, double>
      task_first_done_ms;  // (job, task, is_map)

  // Completion times (end - job submit) of winning attempts of the given type.
  std::vector<double> TaskCompletionTimes(bool maps) const {
    std::vector<double> out;
    for (const AttemptRecord& a : attempts) {
      if (a.is_map == maps && a.won && a.end_ms >= 0) {
        auto it = job_submit_ms.find(a.job_id);
        if (it != job_submit_ms.end()) {
          out.push_back(a.end_ms - it->second);
        }
      }
    }
    return out;
  }
};

// In-process data plane: job registry, intermediate shuffle partitions, reduce outputs.
class MrDataPlane {
 public:
  void RegisterJob(JobSpec spec) {
    BOOM_CHECK(jobs_.emplace(spec.job_id, std::move(spec)).second) << "duplicate job";
  }
  const JobSpec* FindJob(int64_t job_id) const {
    auto it = jobs_.find(job_id);
    return it == jobs_.end() ? nullptr : &it->second;
  }

  // Map output for one (job, map task, reduce partition).
  void PutIntermediate(int64_t job, int64_t map_task, int64_t partition,
                       std::vector<KvPair> kvs) {
    intermediates_[{job, map_task, partition}] = std::move(kvs);
  }
  // All intermediate pairs destined for one reduce partition.
  std::vector<KvPair> CollectPartition(int64_t job, int64_t partition) const {
    std::vector<KvPair> out;
    for (const auto& [key, kvs] : intermediates_) {
      const auto& [j, m, p] = key;
      if (j == job && p == partition) {
        out.insert(out.end(), kvs.begin(), kvs.end());
      }
    }
    return out;
  }

  void PutOutput(int64_t job, int64_t reduce_task, std::string data) {
    outputs_[{job, reduce_task}] = std::move(data);
  }
  // Concatenated reduce outputs in partition order.
  std::string JobOutput(int64_t job) const {
    std::string out;
    for (const auto& [key, data] : outputs_) {
      if (key.first == job) {
        out += data;
      }
    }
    return out;
  }

  MrMetrics& metrics() { return metrics_; }

 private:
  std::map<int64_t, JobSpec> jobs_;
  std::map<std::tuple<int64_t, int64_t, int64_t>, std::vector<KvPair>> intermediates_;
  std::map<std::pair<int64_t, int64_t>, std::string> outputs_;
  MrMetrics metrics_;
};

}  // namespace boom

#endif  // SRC_BOOMMR_MR_TYPES_H_
