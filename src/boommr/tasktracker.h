// TaskTracker: runs assigned task attempts. Heartbeats advertise free slots; progress
// reports drive the JobTracker's (and LATE's) estimates; completion frees the slot. Real
// map/reduce functions execute at completion time through the shared data plane.

#ifndef SRC_BOOMMR_TASKTRACKER_H_
#define SRC_BOOMMR_TASKTRACKER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/boommr/mr_types.h"
#include "src/sim/cluster.h"

namespace boom {

struct TaskTrackerOptions {
  std::string jobtracker;
  int map_slots = 2;
  int reduce_slots = 2;
  double heartbeat_period_ms = 200;
  double progress_period_ms = 500;
  // Straggler injection: all task durations on this tracker are multiplied by this factor.
  double slowdown = 1.0;
};

class TaskTracker : public Actor {
 public:
  TaskTracker(std::string address, TaskTrackerOptions options,
              std::shared_ptr<MrDataPlane> data_plane)
      : Actor(std::move(address)),
        options_(std::move(options)),
        data_plane_(std::move(data_plane)) {}

  void OnStart(Cluster& cluster) override;
  void OnMessage(const Message& msg, Cluster& cluster) override;

  int running_maps() const { return running_maps_; }
  int running_reduces() const { return running_reduces_; }
  double slowdown() const { return options_.slowdown; }

 private:
  struct RunningAttempt {
    int64_t job_id;
    int64_t task_id;
    int64_t attempt_id;
    bool is_map;
    bool speculative;
    double start_ms;
    double duration_ms;
    size_t metrics_index;
  };

  void HeartbeatLoop(Cluster& cluster);
  void SendHeartbeat(Cluster& cluster);
  void StartAttempt(const Message& msg, Cluster& cluster);
  void LaunchNow(RunningAttempt attempt, Cluster& cluster);
  void ReportProgress(int64_t attempt_id, Cluster& cluster);
  void FinishAttempt(int64_t attempt_id, Cluster& cluster);
  void ExecuteWork(const RunningAttempt& attempt);

  TaskTrackerOptions options_;
  std::shared_ptr<MrDataPlane> data_plane_;
  std::map<int64_t, RunningAttempt> running_;  // by attempt id
  std::deque<RunningAttempt> queued_;          // over-assigned tasks wait for a slot
  int running_maps_ = 0;
  int running_reduces_ = 0;
  uint64_t start_epoch_ = 0;
};

}  // namespace boom

#endif  // SRC_BOOMMR_TASKTRACKER_H_
