#include "src/boommr/tasktracker.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/boommr/mr_protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

void TaskTracker::OnStart(Cluster& cluster) {
  ++start_epoch_;
  // Crash recovery: attempts that were in flight when the process died are re-executed from
  // the recovered task list (their completion timers belonged to the previous epoch). The
  // JobTracker may have re-assigned them elsewhere in the meantime; the metrics layer
  // resolves the race by crowning only the first completion.
  uint64_t epoch = start_epoch_;
  for (auto& [attempt_id, attempt] : running_) {
    attempt.start_ms = cluster.now();
    int64_t id = attempt_id;
    double duration = attempt.duration_ms;
    cluster.ScheduleAfter(duration, [this, &cluster, id, epoch] {
      if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
        return;
      }
      FinishAttempt(id, cluster);
    });
    ReportProgress(attempt_id, cluster);
  }
  SendHeartbeat(cluster);
  HeartbeatLoop(cluster);
}

void TaskTracker::HeartbeatLoop(Cluster& cluster) {
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.heartbeat_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    SendHeartbeat(cluster);
    HeartbeatLoop(cluster);
  });
}

void TaskTracker::SendHeartbeat(Cluster& cluster) {
  int64_t free_map = std::max(0, options_.map_slots - running_maps_);
  int64_t free_reduce = std::max(0, options_.reduce_slots - running_reduces_);
  cluster.Send(address(), options_.jobtracker, kTtHb,
               Tuple{Value(options_.jobtracker), Value(address()), Value(free_map),
                     Value(free_reduce)});
}

void TaskTracker::StartAttempt(const Message& msg, Cluster& cluster) {
  // assign(TT, JobId, TaskId, AttemptId, Type, Spec)
  RunningAttempt attempt;
  attempt.job_id = msg.tuple[1].as_int();
  attempt.task_id = msg.tuple[2].as_int();
  attempt.attempt_id = msg.tuple[3].as_int();
  attempt.is_map = msg.tuple[4].as_string() == kTaskMap;
  attempt.speculative = msg.tuple[5].Truthy();
  attempt.start_ms = cluster.now();

  const JobSpec* job = data_plane_->FindJob(attempt.job_id);
  double base = 100.0;
  if (job != nullptr && job->duration_ms) {
    TaskRef ref{attempt.job_id, attempt.task_id, attempt.is_map};
    base = job->duration_ms(ref, address());
  }
  // Static straggler slowdown composes with any gray-failure slowdown the chaos layer has
  // installed on this node — a limping tracker computes slower, not just reacts slower.
  attempt.duration_ms = base * options_.slowdown * cluster.node_slowdown(address());

  int& running_count = attempt.is_map ? running_maps_ : running_reduces_;
  int slots = attempt.is_map ? options_.map_slots : options_.reduce_slots;
  if (running_count >= slots) {
    MetricsRegistry::Global().counter("mr.tt.attempt_queued").Add();
    queued_.push_back(std::move(attempt));  // over-assignment: wait for a slot
    return;
  }
  LaunchNow(std::move(attempt), cluster);
}

void TaskTracker::LaunchNow(RunningAttempt attempt, Cluster& cluster) {
  int& running_count = attempt.is_map ? running_maps_ : running_reduces_;
  ++running_count;
  attempt.start_ms = cluster.now();
  MetricsRegistry::Global()
      .counter(attempt.speculative ? "mr.tt.attempt_start_spec" : "mr.tt.attempt_start")
      .Add();

  AttemptRecord record;
  record.job_id = attempt.job_id;
  record.task_id = attempt.task_id;
  record.attempt_id = attempt.attempt_id;
  record.tracker = address();
  record.is_map = attempt.is_map;
  record.speculative = attempt.speculative;
  record.start_ms = attempt.start_ms;
  attempt.metrics_index = data_plane_->metrics().attempts.size();
  data_plane_->metrics().attempts.push_back(record);

  int64_t attempt_id = attempt.attempt_id;
  double duration = attempt.duration_ms;
  running_.emplace(attempt_id, std::move(attempt));
  ReportProgress(attempt_id, cluster);
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(duration, [this, &cluster, attempt_id, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    FinishAttempt(attempt_id, cluster);
  });
}

void TaskTracker::ReportProgress(int64_t attempt_id, Cluster& cluster) {
  auto it = running_.find(attempt_id);
  if (it == running_.end()) {
    return;
  }
  const RunningAttempt& attempt = it->second;
  double progress =
      std::min(1.0, (cluster.now() - attempt.start_ms) / std::max(1.0, attempt.duration_ms));
  cluster.Send(address(), options_.jobtracker, kTtProgress,
               Tuple{Value(options_.jobtracker), Value(address()), Value(attempt.job_id),
                     Value(attempt.task_id), Value(attempt_id), Value(progress)});
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.progress_period_ms, [this, &cluster, attempt_id, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    ReportProgress(attempt_id, cluster);
  });
}

void TaskTracker::ExecuteWork(const RunningAttempt& attempt) {
  const JobSpec* job = data_plane_->FindJob(attempt.job_id);
  if (job == nullptr) {
    return;
  }
  if (attempt.is_map) {
    if (!job->map_fn) {
      return;
    }
    std::string input;
    if (attempt.task_id >= 0 &&
        static_cast<size_t>(attempt.task_id) < job->map_inputs.size()) {
      input = job->map_inputs[static_cast<size_t>(attempt.task_id)];
    }
    std::vector<KvPair> kvs;
    job->map_fn(input, &kvs);
    // Partition intermediates by key hash, as Hadoop does.
    std::vector<std::vector<KvPair>> parts(
        static_cast<size_t>(std::max(1, job->num_reduces)));
    for (KvPair& kv : kvs) {
      size_t p = Fnv1a64(kv.first) % parts.size();
      parts[p].push_back(std::move(kv));
    }
    for (size_t p = 0; p < parts.size(); ++p) {
      data_plane_->PutIntermediate(attempt.job_id, attempt.task_id,
                                   static_cast<int64_t>(p), std::move(parts[p]));
    }
    return;
  }
  if (!job->reduce_fn) {
    return;
  }
  std::vector<KvPair> pairs = data_plane_->CollectPartition(attempt.job_id, attempt.task_id);
  std::map<std::string, std::vector<std::string>> grouped;
  for (KvPair& kv : pairs) {
    grouped[kv.first].push_back(std::move(kv.second));
  }
  std::string out;
  for (const auto& [key, values] : grouped) {
    out += job->reduce_fn(key, values);
  }
  data_plane_->PutOutput(attempt.job_id, attempt.task_id, std::move(out));
}

void TaskTracker::FinishAttempt(int64_t attempt_id, Cluster& cluster) {
  auto it = running_.find(attempt_id);
  if (it == running_.end()) {
    return;
  }
  RunningAttempt attempt = std::move(it->second);
  running_.erase(it);

  ExecuteWork(attempt);

  MetricsRegistry::Global().counter("mr.tt.attempt_done").Add();
  MetricsRegistry::Global()
      .histogram("mr.tt.attempt_ms")
      .Observe(cluster.now() - attempt.start_ms);
  MrMetrics& metrics = data_plane_->metrics();
  metrics.attempts[attempt.metrics_index].end_ms = cluster.now();
  auto task_key = std::make_tuple(attempt.job_id, attempt.task_id, attempt.is_map);
  if (metrics.task_first_done_ms.count(task_key) == 0) {
    metrics.task_first_done_ms[task_key] = cluster.now();
    metrics.attempts[attempt.metrics_index].won = true;
  }

  cluster.Send(address(), options_.jobtracker, kTtDone,
               Tuple{Value(options_.jobtracker), Value(address()), Value(attempt.job_id),
                     Value(attempt.task_id), Value(attempt_id),
                     Value(attempt.is_map ? kTaskMap : kTaskReduce)});

  int& running_count = attempt.is_map ? running_maps_ : running_reduces_;
  --running_count;

  // Pull over-assigned work of the freed kind.
  for (auto queued_it = queued_.begin(); queued_it != queued_.end(); ++queued_it) {
    if (queued_it->is_map == attempt.is_map) {
      RunningAttempt next = std::move(*queued_it);
      queued_.erase(queued_it);
      LaunchNow(std::move(next), cluster);
      break;
    }
  }
  SendHeartbeat(cluster);  // advertise the freed slot promptly
}

void TaskTracker::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kAssign) {
    StartAttempt(msg, cluster);
    return;
  }
  BOOM_LOG(Warning) << "TaskTracker " << address() << ": unknown message " << msg.table;
}

}  // namespace boom
