#include "src/boommr/boommr.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/mr_baseline/jobtracker.h"
#include "src/telemetry/metrics.h"

namespace boom {

const char* MrKindName(MrKind kind) {
  switch (kind) {
    case MrKind::kBoomMr:
      return "BOOM-MR";
    case MrKind::kHadoopBaseline:
      return "Hadoop";
  }
  return "?";
}

namespace {

std::string TenantClientAddress(const MrSetupOptions& options, int tenant) {
  std::string addr = options.jobtracker + "_client";
  if (tenant > 0) {
    addr += "_t" + std::to_string(tenant);
  }
  return addr;
}

}  // namespace

MrHandles SetupMr(Cluster& cluster, const MrSetupOptions& options) {
  MrHandles handles;
  handles.jobtracker = options.jobtracker;
  handles.data_plane = std::make_shared<MrDataPlane>();

  if (options.kind == MrKind::kBoomMr) {
    JtProgramOptions prog;
    prog.policy = options.policy;
    prog.speculative_cap = options.speculative_cap;
    prog.slow_task_fraction = options.slow_task_fraction;
    prog.capacity_default = options.capacity_default;
    prog.with_admission = options.with_admission;
    prog.jam_queue_bound = options.jam_queue_bound;
    prog.jam_retry_ms = options.jam_retry_ms;
    for (const auto& [tenant, slots] : options.tenant_capacities) {
      prog.tenant_capacities.emplace_back(TenantClientAddress(options, tenant), slots);
    }
    Program program = options.jt_program_override.has_value()
                          ? *options.jt_program_override
                          : BoomMrJtProgram(prog);
    cluster.AddOverlogNode(options.jobtracker, [program](Engine& engine) {
      Status status = engine.Install(program);
      BOOM_CHECK(status.ok()) << "BOOM-MR JobTracker program failed to install: "
                              << status.ToString();
      // JobTracker-side scheduling metrics from table activity.
      engine.AddWatch("assign", [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("mr.jt.assign").Add();
        }
      });
      engine.AddWatch("spec_attempt", [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("mr.jt.spec_attempt").Add();
        }
      });
      // jam_deny carries distinct job ids, so each shed submission counts once.
      engine.AddWatch("jam_deny", [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("mr.jt.jam_deny").Add();
        }
      });
    });
  } else {
    HadoopJtOptions jt_opts;
    jt_opts.policy = options.policy;
    jt_opts.speculative_cap = options.speculative_cap;
    jt_opts.slow_task_fraction = options.slow_task_fraction;
    cluster.AddActor(std::make_unique<HadoopJobTracker>(options.jobtracker, jt_opts));
  }

  for (int i = 0; i < options.num_trackers; ++i) {
    std::string tt = options.jobtracker + "_tt" + std::to_string(i);
    TaskTrackerOptions tt_opts;
    tt_opts.jobtracker = options.jobtracker;
    tt_opts.map_slots = options.map_slots;
    tt_opts.reduce_slots = options.reduce_slots;
    tt_opts.heartbeat_period_ms = options.heartbeat_period_ms;
    tt_opts.progress_period_ms = options.progress_period_ms;
    if (static_cast<size_t>(i) < options.tracker_slowdowns.size()) {
      tt_opts.slowdown = options.tracker_slowdowns[static_cast<size_t>(i)];
    }
    cluster.AddActor(std::make_unique<TaskTracker>(tt, tt_opts, handles.data_plane));
    handles.trackers.push_back(std::move(tt));
  }

  int tenants = std::max(1, options.num_tenants);
  for (int t = 0; t < tenants; ++t) {
    auto client = std::make_unique<MrClient>(
        TenantClientAddress(options, t), options.jobtracker, handles.data_plane,
        /*first_job_id=*/static_cast<int64_t>(t) * 1000000 + 1);
    MrClientOptions client_opts = options.client;
    client_opts.via_ingress = client_opts.via_ingress || options.with_admission;
    client->set_options(std::move(client_opts));
    handles.tenant_clients.push_back(client.get());
    cluster.AddActor(std::move(client));
  }
  handles.client = handles.tenant_clients.front();
  return handles;
}

double RunJobSync(Cluster& cluster, MrHandles& handles, JobSpec spec, double timeout_ms) {
  double finish = -1;
  bool done = false;
  handles.client->Submit(cluster, std::move(spec), [&finish, &done](double t) {
    finish = t;
    done = true;
  });
  double deadline = cluster.now() + timeout_ms;
  while (!done && cluster.now() < deadline) {
    cluster.RunUntil(cluster.now() + 50.0);
  }
  return done ? finish : -1;
}

}  // namespace boom
