#include "src/workload/arrivals.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/strings.h"

namespace boom {

double DiurnalFactor(const ArrivalOptions& options, double t_ms) {
  if (options.diurnal_amplitude == 0 || options.diurnal_period_ms <= 0) {
    return 1.0;
  }
  double phase = 2.0 * M_PI * t_ms / options.diurnal_period_ms;
  return std::max(0.0, 1.0 + options.diurnal_amplitude * std::sin(phase));
}

double BurstFactor(const ArrivalOptions& options, double t_ms) {
  if (options.burst_factor <= 0 || options.burst_end_ms <= options.burst_start_ms) {
    return 1.0;
  }
  return (t_ms >= options.burst_start_ms && t_ms < options.burst_end_ms)
             ? options.burst_factor
             : 1.0;
}

ArrivalGenerator::ArrivalGenerator(ArrivalOptions options)
    : options_(std::move(options)),
      rng_(options_.seed * 0x9e3779b97f4a7c15ULL + 0x1b873593ULL),
      zipf_(std::max<uint64_t>(1, options_.num_clients), options_.zipf_s) {
  double total = 0;
  for (double w : options_.tenant_weights) {
    total += std::max(0.0, w);
  }
  if (total <= 0) {
    tenant_cdf_ = {1.0};
    return;
  }
  double acc = 0;
  for (double w : options_.tenant_weights) {
    acc += std::max(0.0, w) / total;
    tenant_cdf_.push_back(acc);
  }
  tenant_cdf_.back() = 1.0;
}

int ArrivalGenerator::TenantOf(uint64_t client_id) const {
  if (tenant_cdf_.size() <= 1) {
    return 0;
  }
  // A stable hash of the client id positions it in [0,1); the tenant CDF slices that range
  // by weight. Independent of the client's Zipf rank, so tenants share the hot clients in
  // proportion to their weights rather than partitioning the rank space.
  uint64_t h = Fnv1a64("client/" + std::to_string(client_id));
  double u = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  for (size_t i = 0; i < tenant_cdf_.size(); ++i) {
    if (u < tenant_cdf_[i]) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(tenant_cdf_.size()) - 1;
}

bool ArrivalGenerator::Next(OpenLoopArrival* out) {
  // Poisson thinning (Lewis & Shedler): draw from the peak-rate homogeneous process, keep
  // each point with probability rate(t)/peak. The kept points are exactly the
  // inhomogeneous Poisson process with the diurnal rate — and the draw sequence is fixed
  // by the seed alone, so the trace is deterministic.
  double peak_burst = std::max(1.0, options_.burst_factor);
  double peak_rate_factor = (1.0 + std::max(0.0, options_.diurnal_amplitude)) * peak_burst;
  double mean_at_peak = options_.mean_interarrival_ms / peak_rate_factor;
  while (true) {
    t_ms_ += rng_.Exponential(mean_at_peak);
    if (t_ms_ >= options_.horizon_ms) {
      return false;
    }
    double keep =
        DiurnalFactor(options_, t_ms_) * BurstFactor(options_, t_ms_) / peak_rate_factor;
    if (keep < 1.0 && !rng_.Bernoulli(std::max(0.0, keep))) {
      continue;
    }
    uint64_t rank = zipf_.Sample(rng_);
    out->time_ms = t_ms_;
    out->client_id = rank - 1;  // client 0 is the hottest rank
    out->tenant = TenantOf(out->client_id);
    out->key = rank - 1;
    ++generated_;
    return true;
  }
}

std::string FormatArrivalTrace(ArrivalGenerator& gen, uint64_t max_events) {
  std::string out;
  OpenLoopArrival a;
  char line[128];
  for (uint64_t i = 0; i < max_events && gen.Next(&a); ++i) {
    std::snprintf(line, sizeof(line), "t=%.6f client=%llu tenant=%d key=%llu\n", a.time_ms,
                  static_cast<unsigned long long>(a.client_id), a.tenant,
                  static_cast<unsigned long long>(a.key));
    out += line;
  }
  return out;
}

}  // namespace boom
