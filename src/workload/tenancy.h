// The multi-tenant production-traffic experiment: an open-loop arrival stream (Poisson
// with diurnal modulation, Zipf-skewed over a simulated client population in the millions)
// drives job submissions from several tenants into one BOOM-MR cluster, while a sampler
// records per-tenant slot occupancy for the fairness metrics and completed jobs feed the
// per-tenant SLO histograms ("slo.tenant<i>.job_ms").
//
// Shared by bench/fig_tenancy, tools/sloreport, the "tenancy" chaos scenario, and the
// scheduler-policy tests: they all build a TenancyWorkload, run the cluster, and read the
// report. Everything is deterministic in (options.seed, options) — same seed, same trace,
// same report.

#ifndef SRC_WORKLOAD_TENANCY_H_
#define SRC_WORKLOAD_TENANCY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/boommr/boommr.h"
#include "src/telemetry/metrics.h"
#include "src/workload/arrivals.h"

namespace boom {

struct TenancyOptions {
  // Cluster shape.
  MrKind kind = MrKind::kBoomMr;
  MrPolicy policy = MrPolicy::kFairShare;
  std::string jobtracker = "jt";
  int num_trackers = 5;
  int map_slots = 2;
  int reduce_slots = 1;
  // kCapacity quotas by tenant index; tenants absent fall back to capacity_default.
  std::vector<std::pair<int, int64_t>> tenant_capacities;
  int64_t capacity_default = 2;

  // Traffic. Defaults put offered load moderately above cluster capacity at the diurnal
  // peak, so scheduling policy — not raw capacity — decides who waits.
  uint64_t seed = 1;
  int num_tenants = 3;
  std::vector<double> tenant_weights = {0.6, 0.3, 0.1};
  uint64_t num_clients = 1000000;  // simulated client population (Zipf-ranked)
  double zipf_s = 1.1;
  double horizon_ms = 30000;           // arrivals stop here
  double mean_interarrival_ms = 300;   // cluster-wide, at baseline rate
  double diurnal_amplitude = 0.5;
  double diurnal_period_ms = 20000;

  // Job shape: every arrival is one job; task durations are lognormal, deterministic per
  // (job, task, tracker) so re-executions are stable. At the defaults each job is ~4.4
  // task-seconds arriving every 0.3s — ~15 task-streams against 15 slots, ~22 at the
  // diurnal peak, so the queue builds and the scheduler has real choices to make.
  int maps_per_job = 5;
  int reduces_per_job = 2;
  double map_median_ms = 700;
  double reduce_median_ms = 450;
  double task_sigma = 0.3;

  // Fairness sampler period (virtual ms).
  double sample_period_ms = 250;

  // Observation hook, called at submit time with (job_id, tenant). The chaos scenario
  // uses it to feed the exactly-once / completion checkers' workload log.
  std::function<void(int64_t job_id, int tenant)> on_submit;
};

// Per-run fairness summary (SLO quantiles live in the telemetry registry; see
// telemetry/slo.h for the report built from them).
struct TenancyFairness {
  // Mean running attempts per tenant, averaged over *contended* samples (instants where
  // every tenant had a submitted-but-unfinished job).
  std::vector<double> mean_running;
  uint64_t contended_samples = 0;
  uint64_t total_samples = 0;
  // max/min of mean_running (min clamped to a small epsilon; a starved tenant under FIFO
  // legitimately drives this to a huge value).
  double slot_share_ratio = 1.0;
};

// Builds the MR cluster inside `cluster`, arms the open-loop driver and the fairness
// sampler. Keep the object alive for the whole run (actors call back into it); then run
// the cluster (e.g. cluster.RunUntil(options.horizon_ms + drain)) and read the results.
class TenancyWorkload {
 public:
  TenancyWorkload(Cluster& cluster, TenancyOptions options);

  const MrHandles& handles() const { return handles_; }
  const TenancyOptions& options() const { return options_; }

  uint64_t arrivals() const { return arrivals_; }
  const std::vector<uint64_t>& submitted() const { return submitted_; }
  const std::vector<uint64_t>& completed() const { return completed_; }
  uint64_t total_submitted() const;
  uint64_t total_completed() const;

  // Tenant index of a job id (tenants get blocks of 10^6 ids).
  static int TenantOfJob(int64_t job_id) { return static_cast<int>(job_id / 1000000); }

  TenancyFairness Fairness() const;

 private:
  void OnArrival(const OpenLoopArrival& arrival);
  void SampleLoop();

  Cluster& cluster_;
  TenancyOptions options_;
  MrHandles handles_;
  std::unique_ptr<ArrivalGenerator> generator_;
  std::vector<Histogram*> slo_;  // per-tenant job-latency histograms
  std::vector<uint64_t> submitted_;
  std::vector<uint64_t> completed_;
  std::vector<double> running_sum_;  // per-tenant running attempts over contended samples
  uint64_t contended_samples_ = 0;
  uint64_t total_samples_ = 0;
  uint64_t arrivals_ = 0;
};

}  // namespace boom

#endif  // SRC_WORKLOAD_TENANCY_H_
