// Open-loop arrival processes for the production-traffic experiments.
//
// An ArrivalGenerator is a pull-based stream of (time, client, tenant, key) events drawn
// from a seed-deterministic Poisson process whose rate follows a diurnal curve, with the
// issuing client sampled from a Zipf distribution over a population of millions of
// simulated clients and the tenant assigned by weighted hash of the client id. Nothing is
// materialized per client — the generator is O(1) state regardless of population size —
// so the simulator schedules arrivals in batches (src/sim/open_loop.h) instead of hosting
// per-client actors.
//
// Open-loop means arrival times never depend on the system's responses: a slow scheduler
// faces the same offered load, which is what makes the tail-latency comparisons honest
// (closed-loop clients self-throttle and hide queueing collapse).

#ifndef SRC_WORKLOAD_ARRIVALS_H_
#define SRC_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/open_loop.h"
#include "src/sim/random.h"
#include "src/workload/skew.h"

namespace boom {

struct ArrivalOptions {
  uint64_t seed = 1;
  double horizon_ms = 30000;

  // Base Poisson rate: one arrival every `mean_interarrival_ms` on average, modulated by
  // the diurnal curve below (thinning keeps the process exactly Poisson at every instant).
  double mean_interarrival_ms = 400;

  // rate(t) = base * (1 + amplitude * sin(2*pi*t / period)), clamped at >= 0. Amplitude 0
  // is a flat Poisson process; 1 swings between 0 and double the base rate.
  double diurnal_amplitude = 0.5;
  double diurnal_period_ms = 20000;

  // Client population and key skew. Clients are ranks of a Zipf(s) distribution: client 0
  // is the most active of `num_clients`.
  uint64_t num_clients = 1000000;
  double zipf_s = 1.1;

  // Tenant mix: arrival fractions per tenant. The issuing client's tenant is a weighted
  // hash of its id, so a client's tenant is stable across draws and the per-tenant arrival
  // fraction converges to its weight. Empty = single tenant 0.
  std::vector<double> tenant_weights;

  // Overload burst: multiply the rate by burst_factor inside [burst_start_ms,
  // burst_end_ms) — the metastable-failure trigger. Factor 1 (or an empty window) is
  // byte-identical to no burst: the thinning peak is scaled by an exact *1.0, so every
  // Rng draw and comparison is unchanged.
  double burst_factor = 1.0;
  double burst_start_ms = 0;
  double burst_end_ms = 0;
};

// The instantaneous diurnal rate multiplier at time t (>= 0).
double DiurnalFactor(const ArrivalOptions& options, double t_ms);

// The burst multiplier at time t: burst_factor inside the burst window, 1 outside.
double BurstFactor(const ArrivalOptions& options, double t_ms);

// Pull-based generator: Next() yields arrivals in nondecreasing time order until the
// horizon. Satisfies the OpenLoopSource shape expected by sim/open_loop.h.
class ArrivalGenerator {
 public:
  explicit ArrivalGenerator(ArrivalOptions options);

  // Fills `out` and returns true, or returns false when the horizon is reached.
  bool Next(OpenLoopArrival* out);

  const ArrivalOptions& options() const { return options_; }
  uint64_t generated() const { return generated_; }

 private:
  int TenantOf(uint64_t client_id) const;

  ArrivalOptions options_;
  Rng rng_;
  ZipfSampler zipf_;
  std::vector<double> tenant_cdf_;
  double t_ms_ = 0;
  uint64_t generated_ = 0;
};

// Drains the whole generator into a fixed-precision text trace (one line per arrival).
// Two generators with equal options must produce byte-identical traces — the determinism
// contract tests/workload_test.cc pins.
std::string FormatArrivalTrace(ArrivalGenerator& gen, uint64_t max_events = ~0ull);

}  // namespace boom

#endif  // SRC_WORKLOAD_ARRIVALS_H_
