#include "src/workload/skew.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace boom {

// Rejection-inversion after Hormann & Derflinger, "Rejection-inversion to generate variates
// from monotone discrete distributions" (ACM TOMACS 1996): invert the integral of the
// continuous envelope h(t) = t^-s, then accept/reject against the discrete mass. The
// acceptance rate is bounded below for every (n, s), so Sample is O(1) with no tables.

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(std::max<uint64_t>(1, n)), s_(s) {
  BOOM_CHECK(s > 0) << "Zipf exponent must be positive";
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  // Acceptance shortcut constant from the paper: candidates within this distance of their
  // integer are accepted without evaluating the integral.
  shortcut_ = 2.0 - Hinv(H(2.5) - std::exp(-s_ * std::log(2.0)));
  // Normalizer H_{n,s}: exact partial sum plus an integral tail so million-key populations
  // stay cheap to construct. Only Probability() uses it; Sample() never does.
  const uint64_t exact = std::min<uint64_t>(n_, 10000);
  double sum = 0;
  for (uint64_t k = 1; k <= exact; ++k) {
    sum += std::exp(-s_ * std::log(static_cast<double>(k)));
  }
  if (exact < n_) {
    sum += H(static_cast<double>(n_) + 0.5) - H(static_cast<double>(exact) + 0.5);
  }
  norm_ = sum;
}

double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  if (s_ == 1.0) {
    return log_x;
  }
  // (x^(1-s) - 1) / (1-s), via expm1 for stability near s == 1.
  return std::expm1((1.0 - s_) * log_x) / (1.0 - s_);
}

double ZipfSampler::Hinv(double y) const {
  if (s_ == 1.0) {
    return std::exp(y);
  }
  double t = std::max(-1.0, y * (1.0 - s_));
  return std::exp(std::log1p(t) / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 1;
  }
  while (true) {
    double u = h_n_ + rng.Uniform(0, 1) * (h_x1_ - h_n_);
    double x = Hinv(u);
    uint64_t k = static_cast<uint64_t>(
        std::clamp(x + 0.5, 1.0, static_cast<double>(n_)));
    if (static_cast<double>(k) - x <= shortcut_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::exp(-s_ * std::log(static_cast<double>(k)))) {
      return k;
    }
  }
}

double ZipfSampler::Probability(uint64_t k) const {
  if (k < 1 || k > n_) {
    return 0;
  }
  return std::exp(-s_ * std::log(static_cast<double>(k))) / norm_;
}

HotspotSampler::HotspotSampler(uint64_t n, uint64_t hot_set, double hot_fraction)
    : n_(std::max<uint64_t>(1, n)),
      hot_set_(std::clamp<uint64_t>(hot_set, 1, n_)),
      hot_fraction_(std::clamp(hot_fraction, 0.0, 1.0)) {}

uint64_t HotspotSampler::Sample(Rng& rng) const {
  uint64_t range = rng.Bernoulli(hot_fraction_) ? hot_set_ : n_;
  return static_cast<uint64_t>(rng.UniformInt(0, static_cast<int64_t>(range) - 1));
}

}  // namespace boom
