#include "src/workload/tenancy.h"

#include <algorithm>
#include <map>

#include "src/base/logging.h"
#include "src/telemetry/slo.h"
#include "src/workload/workload.h"

namespace boom {

TenancyWorkload::TenancyWorkload(Cluster& cluster, TenancyOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  int tenants = std::max(1, options_.num_tenants);
  submitted_.assign(static_cast<size_t>(tenants), 0);
  completed_.assign(static_cast<size_t>(tenants), 0);
  running_sum_.assign(static_cast<size_t>(tenants), 0.0);

  MrSetupOptions mr;
  mr.kind = options_.kind;
  mr.policy = options_.policy;
  mr.jobtracker = options_.jobtracker;
  mr.num_trackers = options_.num_trackers;
  mr.map_slots = options_.map_slots;
  mr.reduce_slots = options_.reduce_slots;
  mr.num_tenants = tenants;
  mr.tenant_capacities = options_.tenant_capacities;
  mr.capacity_default = options_.capacity_default;
  handles_ = SetupMr(cluster_, mr);

  for (int t = 0; t < tenants; ++t) {
    slo_.push_back(
        &MetricsRegistry::Global().histogram(SloHistogramName(t), SloLatencyBoundsMs()));
  }

  ArrivalOptions arrivals;
  arrivals.seed = options_.seed;
  arrivals.horizon_ms = options_.horizon_ms;
  arrivals.mean_interarrival_ms = options_.mean_interarrival_ms;
  arrivals.diurnal_amplitude = options_.diurnal_amplitude;
  arrivals.diurnal_period_ms = options_.diurnal_period_ms;
  arrivals.num_clients = options_.num_clients;
  arrivals.zipf_s = options_.zipf_s;
  arrivals.tenant_weights = options_.tenant_weights;
  generator_ = std::make_unique<ArrivalGenerator>(arrivals);

  DriveOpenLoop(
      cluster_, [this](OpenLoopArrival* out) { return generator_->Next(out); },
      [this](const OpenLoopArrival& arrival) { OnArrival(arrival); });
  SampleLoop();
}

void TenancyWorkload::OnArrival(const OpenLoopArrival& arrival) {
  int tenant = std::clamp(arrival.tenant, 0, options_.num_tenants - 1);
  MrClient* client = handles_.tenant_clients[static_cast<size_t>(tenant)];

  JobSpec spec;
  spec.job_id = client->NextJobId();
  spec.client = client->address();
  spec.num_maps = options_.maps_per_job;
  spec.num_reduces = options_.reduces_per_job;
  JobDurationModel model;
  model.map_median_ms = options_.map_median_ms;
  model.reduce_median_ms = options_.reduce_median_ms;
  model.map_sigma = options_.task_sigma;
  model.reduce_sigma = options_.task_sigma;
  // Salt with the issuing client so hot clients re-draw the same durations but distinct
  // clients differ — the trace alone fixes every task duration in the run.
  model.seed = options_.seed * 1000003ULL + arrival.client_id;
  spec.duration_ms = MakeDurationFn(model);

  ++arrivals_;
  ++submitted_[static_cast<size_t>(tenant)];
  if (options_.on_submit) {
    options_.on_submit(spec.job_id, tenant);
  }
  double t0 = cluster_.now();
  Histogram* slo = slo_[static_cast<size_t>(tenant)];
  client->Submit(cluster_, std::move(spec), [this, tenant, t0, slo](double finish) {
    ++completed_[static_cast<size_t>(tenant)];
    slo->Observe(finish - t0);
  });
}

void TenancyWorkload::SampleLoop() {
  cluster_.ScheduleAfter(options_.sample_period_ms, [this] {
    ++total_samples_;
    size_t tenants = submitted_.size();
    std::vector<int> running(tenants, 0);
    std::map<int64_t, int> started_by_job;  // running + first-completed tasks per job
    const MrMetrics& metrics = handles_.data_plane->metrics();
    for (const AttemptRecord& a : metrics.attempts) {
      if (a.end_ms < 0) {
        int t = TenantOfJob(a.job_id);
        if (t >= 0 && static_cast<size_t>(t) < tenants) {
          ++running[static_cast<size_t>(t)];
        }
        ++started_by_job[a.job_id];
      }
    }
    for (const auto& [key, when] : metrics.task_first_done_ms) {
      ++started_by_job[std::get<0>(key)];
    }
    // Contended instant: every tenant has *demand for at least its equal share* of slots
    // (running attempts plus tasks not yet started anywhere). This is the instant the
    // fair-share guarantee speaks to — "a tenant demanding its share receives it". Samples
    // where a tenant's remaining work couldn't fill its share anyway (reduce tail, a job's
    // barrier) measure job structure, not scheduling.
    int tasks_per_job = options_.maps_per_job + options_.reduces_per_job;
    std::vector<int> demand(tenants, 0);
    for (size_t t = 0; t < tenants; ++t) {
      demand[t] = running[t];
    }
    for (const auto& [job, submit_ms] : metrics.job_submit_ms) {
      if (metrics.job_done_ms.count(job) != 0) {
        continue;
      }
      int t = TenantOfJob(job);
      if (t < 0 || static_cast<size_t>(t) >= tenants) {
        continue;
      }
      auto started = started_by_job.find(job);
      int started_n = started == started_by_job.end() ? 0 : started->second;
      demand[static_cast<size_t>(t)] += std::max(0, tasks_per_job - started_n);
    }
    int equal_share = options_.num_trackers * (options_.map_slots + options_.reduce_slots) /
                      std::max<int>(1, static_cast<int>(tenants));
    bool contended = true;
    for (size_t t = 0; t < tenants; ++t) {
      if (demand[t] < equal_share) {
        contended = false;
        break;
      }
    }
    if (contended) {
      ++contended_samples_;
      for (size_t t = 0; t < tenants; ++t) {
        running_sum_[t] += running[t];
      }
    }
    SampleLoop();
  });
}

uint64_t TenancyWorkload::total_submitted() const {
  uint64_t n = 0;
  for (uint64_t s : submitted_) {
    n += s;
  }
  return n;
}

uint64_t TenancyWorkload::total_completed() const {
  uint64_t n = 0;
  for (uint64_t c : completed_) {
    n += c;
  }
  return n;
}

TenancyFairness TenancyWorkload::Fairness() const {
  TenancyFairness out;
  out.contended_samples = contended_samples_;
  out.total_samples = total_samples_;
  double lo = 0, hi = 0;
  for (size_t t = 0; t < running_sum_.size(); ++t) {
    double mean =
        contended_samples_ == 0 ? 0 : running_sum_[t] / static_cast<double>(contended_samples_);
    out.mean_running.push_back(mean);
    hi = t == 0 ? mean : std::max(hi, mean);
    lo = t == 0 ? mean : std::min(lo, mean);
  }
  out.slot_share_ratio = hi / std::max(lo, 0.01);
  return out;
}

}  // namespace boom
