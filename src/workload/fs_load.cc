#include "src/workload/fs_load.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/boomfs/protocol.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo.h"

namespace boom {

namespace {

std::string TenantDir(int tenant) { return "/t" + std::to_string(tenant); }

std::string TenantCounterName(int tenant, const char* what) {
  return "slo.tenant" + std::to_string(tenant) + "." + what;
}

}  // namespace

FsLoadWorkload::FsLoadWorkload(Cluster& cluster, FsLoadOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  int tenants = std::max(1, options_.num_tenants);
  live_.assign(static_cast<size_t>(tenants), {});
  name_seq_.assign(static_cast<size_t>(tenants), 0);

  FsSetupOptions fs;
  fs.kind = options_.kind;
  fs.namenode = options_.namenode;
  fs.num_datanodes = options_.num_datanodes;
  fs.with_rename = true;  // the op mix includes renames
  fs.with_gc = options_.with_gc;
  fs.gc_check_period_ms = options_.gc_check_period_ms;
  fs.gc_tombstone_ms = options_.gc_tombstone_ms;
  handles_ = SetupFs(cluster_, fs);

  // The capacity model: namespace requests queue behind a serial service time, so offered
  // load above 1/service_ms turns into backlog — the overload signal everything else
  // (svc_load, brownout, the goodput checker) keys off.
  if (options_.service_ms_per_request > 0) {
    double per_req = options_.service_ms_per_request;
    cluster_.SetServiceTime(options_.namenode, [per_req](const Message& m) {
      return m.table == kNsRequest ? per_req : 0.0;
    });
  }

  std::string gateway_addr = options_.namenode + "_gw";
  std::vector<std::pair<std::string, int64_t>> client_tenants;
  for (int t = 0; t < tenants; ++t) {
    client_tenants.emplace_back(options_.namenode + "_client_t" + std::to_string(t), t);
  }
  if (options_.with_admission) {
    GatewaySetupOptions gw;
    gw.address = gateway_addr;
    gw.gateway = options_.gateway;
    gw.gateway.namenode = options_.namenode;
    gw.gateway.client_tenants = client_tenants;
    gw.load_probe_period_ms = options_.load_probe_period_ms;
    gw.program_override = options_.gateway_program_override;
    AddAdmissionGateway(cluster_, gw);
  }

  for (int t = 0; t < tenants; ++t) {
    FsClientOptions copts;
    copts.namenode = options_.with_admission ? gateway_addr : options_.namenode;
    copts.request_table = options_.with_admission ? kNsIngress : kNsRequest;
    copts.request_timeout_ms = options_.op_timeout_ms;
    copts.retry_base_ms = options_.retry_base_ms;
    copts.retry_max_ms = options_.retry_max_ms;
    copts.retry_budget_cap = options_.retry_budget_cap;
    copts.retry_budget_refill = options_.retry_budget_refill;
    copts.honor_retry_after = options_.honor_retry_after;
    copts.full_jitter = options_.full_jitter;
    auto client =
        std::make_unique<FsClient>(client_tenants[static_cast<size_t>(t)].first, copts);
    clients_.push_back(client.get());
    cluster_.AddActor(std::move(client));
  }
  StartDriver();
}

FsLoadWorkload::FsLoadWorkload(Cluster& cluster, FsLoadOptions options,
                               std::vector<FsClient*> clients)
    : cluster_(cluster), options_(std::move(options)) {
  BOOM_CHECK(!clients.empty()) << "external-cluster mode needs at least one client";
  int tenants = std::max(1, options_.num_tenants);
  live_.assign(static_cast<size_t>(tenants), {});
  name_seq_.assign(static_cast<size_t>(tenants), 0);
  for (int t = 0; t < tenants; ++t) {
    clients_.push_back(clients[static_cast<size_t>(t) % clients.size()]);
  }
  StartDriver();
}

std::string FsLoadWorkload::TenantRoot(int tenant) const {
  if (options_.tenant_dirs.empty()) {
    return TenantDir(tenant);
  }
  return options_.tenant_dirs[static_cast<size_t>(tenant) % options_.tenant_dirs.size()];
}

void FsLoadWorkload::StartDriver() {
  for (int t = 0; t < std::max(1, options_.num_tenants); ++t) {
    // Pre-register the SLO histogram so zero-traffic tenants still appear in reports.
    MetricsRegistry::Global().histogram(SloHistogramName(t), SloLatencyBoundsMs());
    // Per-tenant root directory; arrivals only start ~mean_interarrival_ms in, so this
    // normally lands first (a create racing it just fails and is retried as fresh work).
    clients_[static_cast<size_t>(t)]->Mkdir(cluster_, TenantRoot(t),
                                            [](bool, const Value&) {});
  }

  ArrivalOptions arrivals;
  arrivals.seed = options_.seed;
  arrivals.horizon_ms = options_.horizon_ms;
  arrivals.mean_interarrival_ms = options_.mean_interarrival_ms;
  arrivals.diurnal_amplitude = options_.diurnal_amplitude;
  arrivals.diurnal_period_ms = options_.diurnal_period_ms;
  arrivals.num_clients = options_.num_clients;
  arrivals.zipf_s = options_.zipf_s;
  arrivals.tenant_weights = options_.tenant_weights;
  arrivals.burst_factor = options_.burst_factor;
  arrivals.burst_start_ms = options_.burst_start_ms;
  arrivals.burst_end_ms = options_.burst_end_ms;
  generator_ = std::make_unique<ArrivalGenerator>(arrivals);

  DriveOpenLoop(
      cluster_, [this](OpenLoopArrival* out) { return generator_->Next(out); },
      [this](const OpenLoopArrival& arrival) { OnArrival(arrival); });
}

void FsLoadWorkload::OnArrival(const OpenLoopArrival& arrival) {
  int tenant = std::clamp(arrival.tenant, 0, options_.num_tenants - 1);
  size_t ti = static_cast<size_t>(tenant);
  ++report_.arrivals;

  // Deterministic op choice per arrival: the key alone repeats (hot clients), so salt
  // with the arrival sequence number.
  uint64_t h = Fnv1a64("fsop/" + std::to_string(report_.arrivals) + "/" +
                       std::to_string(arrival.key));
  uint64_t pct = h % 100;
  std::vector<std::string>& live = live_[ti];

  OpKind kind;
  if (live.empty() || pct < 35) {
    kind = OpKind::kCreate;  // churn mix: creates outpace deletes, live set grows slowly
  } else if (pct < 60) {
    kind = OpKind::kOpen;
  } else if (pct < 75) {
    kind = OpKind::kLs;
  } else if (pct < 85) {
    kind = OpKind::kRename;
  } else {
    kind = OpKind::kDelete;
  }

  std::string path;
  std::string arg;
  switch (kind) {
    case OpKind::kCreate:
      path = TenantRoot(tenant) + "/f" + std::to_string(name_seq_[ti]++);
      break;
    case OpKind::kOpen:
    case OpKind::kDelete:
      path = live[(h >> 8) % live.size()];
      break;
    case OpKind::kLs:
      path = TenantRoot(tenant);
      break;
    case OpKind::kRename:
      path = live[(h >> 8) % live.size()];
      arg = TenantRoot(tenant) + "/f" + std::to_string(name_seq_[ti]++);
      break;
  }
  ++report_.issued;
  IssueOp(tenant, kind, std::move(path), std::move(arg), 0, cluster_.now());
}

void FsLoadWorkload::IssueOp(int tenant, OpKind kind, std::string path, std::string arg,
                             int attempt, double started_ms) {
  FsClient* client = clients_[static_cast<size_t>(tenant)];
  auto cb = [this, tenant, kind, path, arg, attempt, started_ms](bool ok,
                                                                const Value& payload) {
    OnOpDone(tenant, kind, path, arg, attempt, started_ms, ok, payload);
  };
  switch (kind) {
    case OpKind::kCreate:
      client->CreateFile(cluster_, path, std::move(cb));
      break;
    case OpKind::kOpen:
      client->Exists(cluster_, path, std::move(cb));
      break;
    case OpKind::kLs:
      client->Ls(cluster_, path, std::move(cb));
      break;
    case OpKind::kRename:
      client->Rename(cluster_, path, arg, std::move(cb));
      break;
    case OpKind::kDelete:
      client->Rm(cluster_, path, std::move(cb));
      break;
  }
}

void FsLoadWorkload::OnOpDone(int tenant, OpKind kind, std::string path, std::string arg,
                              int attempt, double started_ms, bool ok,
                              const Value& payload) {
  size_t ti = static_cast<size_t>(tenant);
  if (ok) {
    ++report_.succeeded;
    size_t window = static_cast<size_t>(cluster_.now() / options_.goodput_window_ms);
    if (goodput_windows_.size() <= window) {
      goodput_windows_.resize(window + 1, 0);
    }
    ++goodput_windows_[window];
    if (tenant_goodput_windows_.size() <= ti) {
      tenant_goodput_windows_.resize(ti + 1);
    }
    std::vector<uint64_t>& tw = tenant_goodput_windows_[ti];
    if (tw.size() <= window) {
      tw.resize(window + 1, 0);
    }
    ++tw[window];
    MetricsRegistry::Global()
        .histogram(SloHistogramName(tenant), SloLatencyBoundsMs())
        .Observe(cluster_.now() - started_ms);
    std::vector<std::string>& live = live_[ti];
    if (kind == OpKind::kCreate) {
      live.push_back(std::move(path));
    } else if (kind == OpKind::kRename) {
      auto it = std::find(live.begin(), live.end(), path);
      if (it != live.end()) {
        *it = arg;
      } else {
        live.push_back(arg);
      }
    } else if (kind == OpKind::kDelete) {
      auto it = std::find(live.begin(), live.end(), path);
      if (it != live.end()) {
        live.erase(it);
      }
    }
    return;
  }

  bool shed = IsOverloadedPayload(payload);
  bool timed_out = payload.is_string() && payload.as_string() == "timeout";
  if (shed) {
    ++report_.shed;
    MetricsRegistry::Global().counter(TenantCounterName(tenant, "rejected")).Add();
  } else if (timed_out) {
    ++report_.timeouts;
  } else {
    ++report_.failed;  // definitive application error: served work, nothing to retry
    return;
  }

  FsClient* client = clients_[ti];
  if (attempt + 1 >= options_.max_op_retries || !client->TrySpendRetryToken()) {
    ++report_.gave_up;
    return;
  }
  ++report_.retries;
  MetricsRegistry::Global().counter(TenantCounterName(tenant, "retries")).Add();
  double base = options_.retry_base_ms;
  for (int i = 0; i < attempt; ++i) {
    base = std::min(base * 2, options_.retry_max_ms);
  }
  double delay = options_.full_jitter ? cluster_.rng().Uniform(0, base)
                                      : base + cluster_.rng().Uniform(0, base * 0.5);
  if (shed && options_.honor_retry_after) {
    delay = std::max(delay, OverloadRetryAfterMs(payload));
  }
  cluster_.ScheduleAfter(delay, [this, tenant, kind, path = std::move(path),
                                 arg = std::move(arg), attempt, started_ms] {
    IssueOp(tenant, kind, path, arg, attempt + 1, started_ms);
  });
}

namespace {

double WindowedRate(const std::vector<uint64_t>& windows, double window_ms, double t0_ms,
                    double t1_ms) {
  uint64_t total = 0;
  size_t n = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    double start = static_cast<double>(i) * window_ms;
    if (start >= t0_ms && start + window_ms <= t1_ms) {
      total += windows[i];
      ++n;
    }
  }
  if (n == 0) {
    return 0;
  }
  return static_cast<double>(total) / (static_cast<double>(n) * window_ms / 1000.0);
}

}  // namespace

double FsLoadWorkload::GoodputBetween(double t0_ms, double t1_ms) const {
  return WindowedRate(goodput_windows_, options_.goodput_window_ms, t0_ms, t1_ms);
}

double FsLoadWorkload::TenantGoodputBetween(int tenant, double t0_ms, double t1_ms) const {
  size_t ti = static_cast<size_t>(tenant);
  if (ti >= tenant_goodput_windows_.size()) {
    return 0;
  }
  return WindowedRate(tenant_goodput_windows_[ti], options_.goodput_window_ms, t0_ms,
                      t1_ms);
}

}  // namespace boom
