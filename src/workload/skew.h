// Key-skew samplers for the open-loop workload generator.
//
// ZipfSampler draws ranks from a Zipf(s) distribution over {1..n} in O(1) per draw using
// Hormann & Derflinger's rejection-inversion method — no per-rank tables, so populations
// of millions of simulated clients cost nothing to set up. HotspotSampler is the simpler
// production pattern: a fixed fraction of traffic hammers a small hot set.
//
// Both samplers are deterministic given the caller's Rng, so the arrival traces built on
// top of them are reproducible from a single seed.

#ifndef SRC_WORKLOAD_SKEW_H_
#define SRC_WORKLOAD_SKEW_H_

#include <cstdint>

#include "src/sim/random.h"

namespace boom {

// Zipf over ranks 1..n with exponent s > 0 (s != 1 handled exactly; s == 1 works via the
// same generalized-harmonic integrals). Rank 1 is the most popular key.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // One rank in [1, n]; O(1) expected (rejection rate is bounded for all n, s).
  uint64_t Sample(Rng& rng) const;

  // The probability of rank k, for frequency sanity checks: 1 / (k^s * H_{n,s}).
  double Probability(uint64_t k) const;

 private:
  // H(x) = integral of 1/t^s: the antiderivative used by rejection-inversion.
  double H(double x) const;
  double Hinv(double y) const;

  uint64_t n_ = 1;
  double s_ = 1.1;
  double h_x1_ = 0;        // H(1.5) - 1
  double h_n_ = 0;         // H(n + 0.5)
  double shortcut_ = 0;    // accept-without-integral threshold (depends only on s)
  double norm_ = 1;        // generalized harmonic number H_{n,s} (exact sum for small n)
};

// `hot_fraction` of draws hit a uniformly-chosen key in [0, hot_set); the rest are uniform
// over the full population [0, n).
class HotspotSampler {
 public:
  HotspotSampler(uint64_t n, uint64_t hot_set, double hot_fraction);

  uint64_t Sample(Rng& rng) const;

 private:
  uint64_t n_;
  uint64_t hot_set_;
  double hot_fraction_;
};

}  // namespace boom

#endif  // SRC_WORKLOAD_SKEW_H_
