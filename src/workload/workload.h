// Workload models for the evaluation: task-duration distributions (lognormal with a long
// right tail, as observed in production MapReduce clusters), straggler injection, and
// namespace-operation generators.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/boommr/mr_types.h"

namespace boom {

struct JobDurationModel {
  double map_median_ms = 8000;
  double map_sigma = 0.4;
  double reduce_median_ms = 12000;
  double reduce_sigma = 0.3;
  // Fixed per-task metadata overhead (e.g. chunk-location lookups against the FS under
  // test); calibrated by the benchmarks from measured namespace-op latencies.
  double fs_overhead_ms = 0;
  uint64_t seed = 1;
};

// Deterministic per-(job, task, tracker) duration: re-executions on a different tracker
// draw a fresh value, repeated calls for the same placement agree.
inline DurationFn MakeDurationFn(const JobDurationModel& model) {
  return [model](const TaskRef& task, const std::string& tracker) {
    uint64_t h = Fnv1a64(tracker + "/" + std::to_string(task.job_id) + "/" +
                         std::to_string(task.task_id) + (task.is_map ? "m" : "r"));
    std::mt19937_64 gen(h ^ model.seed);
    double median = task.is_map ? model.map_median_ms : model.reduce_median_ms;
    double sigma = task.is_map ? model.map_sigma : model.reduce_sigma;
    std::lognormal_distribution<double> dist(std::log(median), sigma);
    return dist(gen) + model.fs_overhead_ms;
  };
}

// slowdown factors for `n` trackers: `straggler_fraction` of them run `factor`x slower.
inline std::vector<double> StragglerSlowdowns(int n, double straggler_fraction,
                                              double factor, uint64_t seed = 7) {
  std::vector<double> out(static_cast<size_t>(n), 1.0);
  std::mt19937_64 gen(seed);
  int stragglers = static_cast<int>(std::lround(n * straggler_fraction));
  // Choose distinct indices deterministically.
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    idx[static_cast<size_t>(i)] = i;
  }
  std::shuffle(idx.begin(), idx.end(), gen);
  for (int i = 0; i < stragglers && i < n; ++i) {
    out[static_cast<size_t>(idx[static_cast<size_t>(i)])] = factor;
  }
  return out;
}

// A deterministic stream of namespace paths: round-robin files over `dirs` directories.
inline std::string NthFilePath(int i, int dirs = 8) {
  return "/d" + std::to_string(i % dirs) + "/f" + std::to_string(i);
}

}  // namespace boom

#endif  // SRC_WORKLOAD_WORKLOAD_H_
