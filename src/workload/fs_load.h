// Open-loop FS-metadata workload: the production-traffic generator (Poisson arrivals,
// Zipf-skewed clients, weighted tenant mix — src/workload/arrivals.h) pointed at BOOM-FS
// namespace metadata instead of MapReduce submissions. Every arrival becomes one
// per-tenant create/open/ls/rename/delete against the NameNode, optionally through the
// SLO-aware admission gateway (src/boomfs/nn_program.h, BoomFsGatewayProgram).
//
// This is the harness for the overload experiments: the NameNode gets a serial service
// time (Cluster::SetServiceTime), the arrival stream can carry a mid-run burst at a
// multiple of capacity, clients retry shed/timed-out ops under a retry budget with
// full-jitter backoff, and the workload buckets successful ops into fixed goodput windows
// so a run can be judged on "goodput after the burst vs before it" — the
// metastable-failure signature (Bronson et al., HotOS 2021) is goodput that stays
// collapsed after the trigger clears because retries replace the original load.
//
// Deterministic in (seed, options): same trace, same retries, same report.

#ifndef SRC_WORKLOAD_FS_LOAD_H_
#define SRC_WORKLOAD_FS_LOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/workload/arrivals.h"

namespace boom {

struct FsLoadOptions {
  // Cluster shape.
  FsKind kind = FsKind::kBoomFs;
  std::string namenode = "nn";
  int num_datanodes = 3;
  // Serial service time per namespace request at the NameNode (the capacity model:
  // 1/service_ms requests per ms). 0 = infinitely fast server (no overload possible).
  double service_ms_per_request = 1.6;

  // Traffic. Defaults put offered load around 40% of a 1.6ms-service NameNode's
  // capacity, leaving headroom that only a burst can exhaust. Diurnal modulation is off
  // by default so the burst window is the only rate change in the run.
  uint64_t seed = 1;
  double horizon_ms = 30000;
  double mean_interarrival_ms = 4.0;
  double diurnal_amplitude = 0;
  double diurnal_period_ms = 20000;
  uint64_t num_clients = 100000;
  double zipf_s = 1.1;
  int num_tenants = 3;
  std::vector<double> tenant_weights = {0.6, 0.3, 0.1};

  // Overload burst (passed through to ArrivalOptions): rate * burst_factor inside the
  // window. Factor 1 = no burst, byte-identical trace.
  double burst_factor = 1.0;
  double burst_start_ms = 0;
  double burst_end_ms = 0;

  // Admission control: route every client through a BoomFsGatewayProgram node
  // ("<nn>_gw") instead of straight at the NameNode.
  bool with_admission = false;
  GatewayOptions gateway;                // namenode is overwritten with options.namenode
  double load_probe_period_ms = 100;     // svc_load sampling period
  std::optional<Program> gateway_program_override;  // chaos bug hook (retry-storm)

  // NameNode extensions (rename is required by the op mix; GC bounds tombstone churn).
  bool with_gc = true;
  double gc_check_period_ms = 1000;
  double gc_tombstone_ms = 5000;

  // Client-side retry policy for shed / timed-out ops. The budget is what separates the
  // recovering configuration from the metastable one: with cap 0 every failure retries
  // up to max_op_retries with no global bound, and under overload the retry stream
  // itself can exceed capacity.
  int max_op_retries = 4;
  double op_timeout_ms = 1500;
  double retry_base_ms = 100;
  double retry_max_ms = 2000;
  double retry_budget_cap = 0;      // 0 = unbounded (legacy / buggy configuration)
  double retry_budget_refill = 0.2;  // tokens per successful op
  bool honor_retry_after = true;     // sleep at least the server's shed hint
  bool full_jitter = true;

  // Goodput bucketing: successful ops are counted into fixed windows of this width.
  double goodput_window_ms = 1000;

  // Per-tenant root directories. Empty = the default "/t<i>". Sized/cycled per tenant;
  // used by the federated deployments to pin tenants to known partitions (a tenant's whole
  // op stream routes by its root dir, so "which group serves tenant i" is a RoutingPid
  // lookup — what the leader-kill isolation experiments key on).
  std::vector<std::string> tenant_dirs;
};

// Per-run summary (per-tenant SLO latency histograms land in the telemetry registry
// under SloHistogramName(tenant); shed/rejected/retry counters under
// "slo.tenant<i>.shed|rejected|retries").
struct FsLoadReport {
  uint64_t arrivals = 0;
  uint64_t issued = 0;     // ops sent (first attempts)
  uint64_t succeeded = 0;  // definitive ok responses
  uint64_t failed = 0;     // definitive application errors (rare under the live-set model)
  uint64_t shed = 0;       // ["overloaded", ...] responses observed client-side
  uint64_t timeouts = 0;   // terminal request timeouts observed client-side
  uint64_t retries = 0;    // re-issues (both shed and timeout triggered)
  uint64_t gave_up = 0;    // ops dropped after max retries / exhausted budget
};

// Builds the FS cluster (plus gateway when configured) inside `cluster` and arms the
// open-loop driver. Keep the object alive for the whole run; then RunUntil(horizon +
// drain) and read the report / goodput.
class FsLoadWorkload {
 public:
  FsLoadWorkload(Cluster& cluster, FsLoadOptions options);

  // External-cluster mode: drive an already-built deployment (e.g. SetupFederatedFs)
  // instead of building one. Tenant t issues through clients[t % clients.size()]; no
  // NameNode, gateway, or service-time setup happens — only tenant dirs, the arrival
  // stream, and the retry/goodput accounting. Cluster-shape options (kind/namenode/
  // num_datanodes/service_ms_per_request/with_admission) are ignored.
  FsLoadWorkload(Cluster& cluster, FsLoadOptions options, std::vector<FsClient*> clients);

  const FsLoadOptions& options() const { return options_; }
  const FsHandles& handles() const { return handles_; }
  FsClient* tenant_client(int tenant) { return clients_[static_cast<size_t>(tenant)]; }

  const FsLoadReport& report() const { return report_; }

  // Mean successful ops per second over the goodput windows fully inside [t0_ms, t1_ms).
  // Returns 0 when the range covers no complete window.
  double GoodputBetween(double t0_ms, double t1_ms) const;
  const std::vector<uint64_t>& goodput_windows() const { return goodput_windows_; }
  // Same, restricted to one tenant's successes (the isolation experiments compare a
  // faulted group's tenants against the others').
  double TenantGoodputBetween(int tenant, double t0_ms, double t1_ms) const;

 private:
  // One namespace op kind per arrival, weighted toward a create/delete churn mix.
  enum class OpKind { kCreate, kOpen, kLs, kRename, kDelete };

  // Tenant t's root directory (options_.tenant_dirs override, else "/t<i>").
  std::string TenantRoot(int tenant) const;
  // Shared tail of both constructors: tenant dirs, SLO histograms, the arrival stream.
  void StartDriver();
  void OnArrival(const OpenLoopArrival& arrival);
  void IssueOp(int tenant, OpKind kind, std::string path, std::string arg, int attempt,
               double started_ms);
  void OnOpDone(int tenant, OpKind kind, std::string path, std::string arg, int attempt,
                double started_ms, bool ok, const Value& payload);

  Cluster& cluster_;
  FsLoadOptions options_;
  FsHandles handles_;
  std::vector<FsClient*> clients_;             // one per tenant, owned by the cluster
  std::unique_ptr<ArrivalGenerator> generator_;
  // Client-side model of live files per tenant (appended on create-ok, renamed/erased on
  // rename-ok/delete-ok) so most ops act on paths that exist.
  std::vector<std::vector<std::string>> live_;
  std::vector<uint64_t> name_seq_;  // fresh-name counter per tenant
  std::vector<uint64_t> goodput_windows_;
  std::vector<std::vector<uint64_t>> tenant_goodput_windows_;  // [tenant][window]
  FsLoadReport report_;
};

}  // namespace boom

#endif  // SRC_WORKLOAD_FS_LOAD_H_
