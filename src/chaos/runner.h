// The chaos runner: executes one scenario under one fault schedule, asserting every
// invariant checker at periodic quiescent checkpoints, then heals the cluster, lets it
// settle, and runs the final (liveness-inclusive) checks.
//
// The forced HealAll at the horizon is what keeps the shrinker honest: deleting fault
// events from a schedule can only make the run *healthier*, so a shrunk schedule can never
// manufacture a liveness violation that the original did not have.

#ifndef SRC_CHAOS_RUNNER_H_
#define SRC_CHAOS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/fault_schedule.h"
#include "src/chaos/scenario.h"
#include "src/telemetry/span.h"

namespace boom {

struct ChaosRunOptions {
  double horizon_ms = 0;  // 0 = scenario default
  double settle_ms = 0;   // 0 = scenario default
  double check_period_ms = 1000;
  bool record_trace = false;
  // When set, the run's Cluster records causal spans here (client ops, RPC hops, engine
  // ticks). Purely observational: span ids derive from the sim seed, never the sim Rng, so
  // attaching a tracer cannot perturb the schedule.
  Tracer* tracer = nullptr;
  // Cluster worker threads (see ClusterOptions::worker_threads). Any value must reproduce
  // the serial run byte-for-byte — enforced by the `parallel` determinism tests.
  size_t worker_threads = 1;
  // Cost-based optimizer on every hosted engine (see
  // ClusterOptions::enable_engine_optimizer). Fixpoints and pass/fail outcomes match the
  // greedy planner; two optimizer-on runs of one seed are byte-identical — enforced by the
  // `optimizer` determinism tests.
  bool enable_engine_optimizer = false;
};

struct ChaosRunResult {
  bool passed = false;
  // Deduplicated, in discovery order, each prefixed with the reporting checker's name.
  std::vector<std::string> violations;
  double end_ms = 0;                // virtual time when the run finished
  std::vector<std::string> trace;   // cluster fault/network trace (when recorded)
};

// Runs `scenario` (a fresh, never-Setup instance) from `seed` under `schedule`.
ChaosRunResult RunChaosOnce(ChaosScenario& scenario, uint64_t seed,
                            const FaultSchedule& schedule,
                            const ChaosRunOptions& options = {});

}  // namespace boom

#endif  // SRC_CHAOS_RUNNER_H_
