// Reusable invariant checkers for the chaos explorer. Each checker inspects the cluster at
// quiescent checkpoints (and once more, with final=true, after every fault has healed and
// the system has settled) and reports violations as human-readable strings.
//
// The checkers encode the safety contracts of the three systems under test:
//   - Paxos: no two replicas ever disagree on a decided slot, and a decided slot never
//     changes on any single replica (cumulative across checkpoints, so a transient
//     divergence is caught even if a later overwrite re-converges the logs).
//   - BOOM-FS: the NameNode's relational metadata stays a well-formed tree that matches a
//     sequential model built from acknowledged client operations, and after healing no
//     DataNode stores a chunk the namespace does not own.
//   - BOOM-MR: every task of a completed job ran to success on exactly one attempt.

#ifndef SRC_CHAOS_INVARIANTS_H_
#define SRC_CHAOS_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/boomfs/client.h"
#include "src/boommr/mr_types.h"
#include "src/sim/cluster.h"

namespace boom {

class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  virtual std::string name() const = 0;
  // Appends one string per violation to `out`. `final_check` is true only for the last
  // invocation, after HealAll + settle — liveness-flavoured checks belong there.
  virtual void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) = 0;
};

// --- Paxos ---

class PaxosAgreementChecker : public InvariantChecker {
 public:
  explicit PaxosAgreementChecker(std::vector<std::string> peers)
      : peers_(std::move(peers)) {}
  std::string name() const override { return "paxos-agreement"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::vector<std::string> peers_;
  // Cumulative: slot -> (command, first replica seen deciding it).
  std::map<int64_t, std::pair<std::string, std::string>> chosen_;
  // Cumulative per replica: replica -> slot -> command (detects in-place rewrites).
  std::map<std::string, std::map<int64_t, std::string>> seen_;
};

// Liveness (final only): at least one slot was decided somewhere despite the faults.
class PaxosProgressChecker : public InvariantChecker {
 public:
  explicit PaxosProgressChecker(std::vector<std::string> peers)
      : peers_(std::move(peers)) {}
  std::string name() const override { return "paxos-progress"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::vector<std::string> peers_;
};

// --- BOOM-FS ---

// Sequential model oracle maintained by the workload driver. One-directional by design:
// under faults an operation may *apply* without its ack reaching the client, so only
// acknowledged-successful operations carry obligations (they must be durably visible);
// extra namespace entries from un-acked operations are legal.
struct FsModel {
  struct Entry {
    bool is_dir = false;
    double ack_ms = 0;  // virtual time the success ack was observed
  };
  std::map<std::string, Entry> acked;         // live paths the client was promised
  std::map<std::string, double> removed;      // paths whose rm was acked (never reused)
  std::map<std::string, std::string> contents;  // path -> bytes for acked WriteFile
};

class BoomFsInvariantChecker : public InvariantChecker {
 public:
  BoomFsInvariantChecker(std::string namenode, std::vector<std::string> datanodes,
                         FsClient* client, std::shared_ptr<const FsModel> model,
                         int replication_factor = 3)
      : namenode_(std::move(namenode)),
        datanodes_(std::move(datanodes)),
        client_(client),
        model_(std::move(model)),
        replication_factor_(replication_factor) {}
  std::string name() const override { return "boomfs-metadata"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::string namenode_;
  std::vector<std::string> datanodes_;
  FsClient* client_;
  std::shared_ptr<const FsModel> model_;
  int replication_factor_;
  // Acks racing the checkpoint: an op acked within this window may not have materialized
  // into `file` yet (@next lands state one tick later).
  double ack_slack_ms_ = 150;
};

// One ReadFile issued by the chaos workload, with the sequential oracle's expected bytes
// captured at issue time (per-path contents are immutable once acked: the workload never
// overwrites a path, and rm'd paths are never reused).
struct FsReadRecord {
  std::string path;
  std::string expect;
  double issued_ms = 0;
  double done_ms = -1;  // < 0 until the callback fires
  bool ok = false;
  std::string got;
};
using FsReadLog = std::vector<FsReadRecord>;

// Safety at every checkpoint: a ReadFile that completed successfully must have returned
// exactly the oracle's bytes — a replica serving rotted data must either be caught by
// checksums (read fails over) or show up here.
class BoomFsReadIntegrityChecker : public InvariantChecker {
 public:
  explicit BoomFsReadIntegrityChecker(std::shared_ptr<const FsReadLog> reads)
      : reads_(std::move(reads)) {}
  std::string name() const override { return "boomfs-read-integrity"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::shared_ptr<const FsReadLog> reads_;
};

// --- Federated BOOM-FS (src/boomfs/federation.h) ---

// Shared between the federation scenario's workload driver (writer) and the two federation
// checkers (readers). The namespace oracle is one-directional like FsModel: only
// acknowledged operations carry obligations. Faulted outcomes (a timed-out rename, an
// aborted migration) are parked in `uncertain` / `uncertain_pids` and exempt from both the
// lost and the duplicate checks.
struct FedModel {
  int num_partitions = 0;
  std::string pmap;                               // partition-map service address
  std::vector<std::vector<std::string>> groups;   // group -> replica addresses
  std::map<std::string, bool> live;               // acked path -> is_dir
  std::set<std::string> gone;                     // acked removed / renamed-away sources
  std::set<std::string> uncertain;                // unknown-outcome paths (failed ops)
  std::set<int64_t> uncertain_pids;               // partitions with an aborted migration
};

// Epoch safety: the partition-map service is the sole routing authority, so (a) its global
// epoch never regresses (cumulative across checkpoints), (b) no replica's applied epoch or
// per-partition map row ever runs AHEAD of the service's, and (c) once healed (final), the
// service holds exactly one row per partition and every alive replica's fed_owned set
// matches the published membership.
class FedEpochChecker : public InvariantChecker {
 public:
  explicit FedEpochChecker(std::shared_ptr<const FedModel> model)
      : model_(std::move(model)) {}
  std::string name() const override { return "fed-epoch"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::shared_ptr<const FedModel> model_;
  int64_t max_global_epoch_ = 0;  // cumulative: the service's epoch must only ratchet
};

// Namespace integrity across groups (final only): every acked-live path is present in its
// routing owner's namespace (nothing lost by failover, rename, or migration), no acked-live
// FILE appears in more than one group (nothing duplicated — directories are dual-homed by
// design and exempt), and every acked-gone path stays gone at its owner (a commit that
// forgot to tombstone the source shows up here). Reads go through each group's current
// leader; a group that is entirely dead is skipped, as are uncertain paths/partitions.
class FedNamespaceChecker : public InvariantChecker {
 public:
  explicit FedNamespaceChecker(std::shared_ptr<const FedModel> model)
      : model_(std::move(model)) {}
  std::string name() const override { return "fed-namespace"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::shared_ptr<const FedModel> model_;
};

// --- BOOM-MR ---

// Shared between the workload driver (writer) and the checkers (readers).
struct MrWorkloadLog {
  std::vector<int64_t> submitted;                      // job ids, in submit order
  std::map<int64_t, std::pair<int, int>> job_shape;    // job -> (num_maps, num_reduces)
};

class BoomMrExactlyOnceChecker : public InvariantChecker {
 public:
  BoomMrExactlyOnceChecker(std::shared_ptr<MrDataPlane> data_plane,
                           std::shared_ptr<const MrWorkloadLog> log)
      : data_plane_(std::move(data_plane)), log_(std::move(log)) {}
  std::string name() const override { return "boommr-exactly-once"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::shared_ptr<MrDataPlane> data_plane_;
  std::shared_ptr<const MrWorkloadLog> log_;
};

// Fair-share under faults. At *contended* checkpoints — every tenant has demand (running
// attempts plus not-yet-started tasks of unfinished jobs) for at least its equal slot
// share — no tenant may sit at zero running attempts for several consecutive checkpoints
// while another tenant holds more than the equal share. Transient imbalance right after a
// crash or during a gray window is expected; sustained starvation under a fair-share
// policy is a scheduling bug. Tenants are identified by job-id block (10^6 ids each).
class BoomMrFairnessChecker : public InvariantChecker {
 public:
  BoomMrFairnessChecker(std::shared_ptr<MrDataPlane> data_plane, int num_tenants,
                        int tasks_per_job, int total_slots, int max_starved_checks = 4)
      : data_plane_(std::move(data_plane)),
        num_tenants_(num_tenants),
        tasks_per_job_(tasks_per_job),
        total_slots_(total_slots),
        max_starved_checks_(max_starved_checks),
        starved_streak_(static_cast<size_t>(num_tenants), 0) {}
  std::string name() const override { return "boommr-fair-share"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::shared_ptr<MrDataPlane> data_plane_;
  int num_tenants_;
  int tasks_per_job_;
  int total_slots_;
  int max_starved_checks_;
  std::vector<int> starved_streak_;  // consecutive contended checkpoints at 0 slots
};

// --- Overload ---

// Goodput recovery (final only): the metastable-failure invariant. Compares mean
// successful ops/sec over a post-burst window against the pre-burst baseline; a healthy
// admission + retry-budget stack must climb back to >= min_ratio of baseline once the
// trigger (the burst, a gray window) clears. A system stuck in the retry-sustained
// regime stays collapsed and trips this. `goodput` is typically
// FsLoadWorkload::GoodputBetween bound to the scenario's workload.
class GoodputRecoveryChecker : public InvariantChecker {
 public:
  GoodputRecoveryChecker(std::function<double(double, double)> goodput, double pre_t0_ms,
                         double pre_t1_ms, double post_t0_ms, double post_t1_ms,
                         double min_ratio = 0.9)
      : goodput_(std::move(goodput)),
        pre_t0_ms_(pre_t0_ms),
        pre_t1_ms_(pre_t1_ms),
        post_t0_ms_(post_t0_ms),
        post_t1_ms_(post_t1_ms),
        min_ratio_(min_ratio) {}
  std::string name() const override { return "overload-goodput-recovery"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::function<double(double, double)> goodput_;
  double pre_t0_ms_;
  double pre_t1_ms_;
  double post_t0_ms_;
  double post_t1_ms_;
  double min_ratio_;
};

// Liveness (final only): every submitted job completed once the cluster healed.
class BoomMrCompletionChecker : public InvariantChecker {
 public:
  BoomMrCompletionChecker(std::shared_ptr<MrDataPlane> data_plane,
                          std::shared_ptr<const MrWorkloadLog> log)
      : data_plane_(std::move(data_plane)), log_(std::move(log)) {}
  std::string name() const override { return "boommr-completion"; }
  void Check(Cluster& cluster, bool final_check, std::vector<std::string>* out) override;

 private:
  std::shared_ptr<MrDataPlane> data_plane_;
  std::shared_ptr<const MrWorkloadLog> log_;
};

}  // namespace boom

#endif  // SRC_CHAOS_INVARIANTS_H_
