// FaultSchedule: a deterministic timeline of fault windows — crashes (kill + later
// restart), partitions (one group cut off from the rest), and link-degradation windows
// (drop/duplicate/reorder/latency-spike) — generated from a single uint64 seed.
//
// Every window is self-contained (start + duration), so the shrinker can delete whole
// windows and the remaining schedule still heals itself; the chaos runner additionally
// force-heals everything at the horizon so a shrunk schedule that lost its tail cannot
// fake a liveness violation.

#ifndef SRC_CHAOS_FAULT_SCHEDULE_H_
#define SRC_CHAOS_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cluster.h"

namespace boom {

enum class FaultType {
  kCrash,           // KillNode at start, RestartNode at start + duration
  kPartition,       // side_a cut off from every other node
  kLinkDegrade,     // LinkFaults applied to one link for the window
  kDiskCorrupt,     // chunks stored on `node` during the window silently rot at rest
  kSlowDisk,        // `node` adds per-operation disk latency during the window
  kGrayNode,        // gray failure (limplock): `node` alive and heartbeating, but slowed
  kClockSkew,       // `node`'s engine clock offset by skew_ms for the window
  kRollingRestart,  // side_a nodes bounced one at a time, staggered across the window
};

struct FaultEvent {
  FaultType type = FaultType::kCrash;
  double start_ms = 0;
  double duration_ms = 0;
  std::string node;                 // kCrash / kDiskCorrupt / kSlowDisk / kGray / kSkew
  std::vector<std::string> side_a;  // kPartition: the isolated group; kRolling: the group
  std::vector<std::string> side_b;  // kPartition: everyone else (all_nodes - side_a)
  std::string link_a, link_b;       // kLinkDegrade
  LinkFaults faults;                // kLinkDegrade
  double corrupt_prob = 0;          // kDiskCorrupt
  double slow_disk_ms = 0;          // kSlowDisk
  double slowdown_factor = 1;       // kGrayNode: service-time multiplier (> 1)
  double skew_ms = 0;               // kClockSkew: signed clock offset
  double per_node_down_ms = 0;      // kRollingRestart: downtime of each bounce

  std::string ToString() const;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  // One event per line, fixed-precision numbers — identical seeds print identical text.
  std::string ToString() const;
};

// Knobs a scenario uses to describe which faults its protocol model tolerates and where
// they may land. Scenarios that assume reliable FIFO links (TCP) disable drop/reorder.
struct FaultGenOptions {
  double horizon_ms = 20000;

  // Upper bounds per fault type; the per-seed count is sampled in [lo, hi].
  int max_crashes = 3;
  int max_partitions = 2;
  int max_degrades = 3;

  double min_crash_ms = 800;
  double max_crash_ms = 5000;
  double min_partition_ms = 1500;
  double max_partition_ms = 6000;
  double min_degrade_ms = 1500;
  double max_degrade_ms = 8000;

  bool allow_drop = true;
  bool allow_dup = true;
  bool allow_reorder = true;
  bool allow_latency = true;

  // Disk faults (defaults off: only storage scenarios opt in, which also keeps schedules
  // of scenarios that predate these knobs byte-identical for old seeds).
  int max_corruptions = 0;  // kDiskCorrupt windows
  int max_slow_disks = 0;   // kSlowDisk windows
  double min_disk_ms = 1500;
  double max_disk_ms = 6000;
  // Keep corrupt-disk windows clear of partition windows. A chunk written while a
  // partition has degraded it to a single reachable replica must not also rot: durability
  // against corruption is promised only when one intact copy survives to re-replicate
  // from. Seeds whose first draw is already clear keep byte-identical schedules.
  bool corrupt_avoids_partitions = false;

  // Gray failures / clock skew / rolling restarts (defaults off, sampled after the disk
  // faults — same byte-identical-schedule guarantee for scenarios that never opt in).
  int max_grays = 0;              // kGrayNode windows
  double min_gray_factor = 4;     // slowdown sampled log-uniform in [min, max]
  double max_gray_factor = 400;   // the top decade is limplock territory
  int max_clock_skews = 0;        // kClockSkew windows
  double min_skew_ms = 2000;      // |skew| range; sign is a fair coin
  double max_skew_ms = 6000;
  int max_rolling_restarts = 0;   // kRollingRestart windows (whole-group bounces)
  double rolling_down_ms = 1200;  // per-node downtime within a rolling window

  std::vector<std::string> killable;       // crash targets
  std::vector<std::string> partitionable;  // the isolated side is drawn from these
  std::vector<std::string> all_nodes;      // partition: other side = all_nodes - side_a
  std::vector<std::pair<std::string, std::string>> degradable_links;
  std::vector<std::string> corruptible;    // kDiskCorrupt / kSlowDisk targets
  std::vector<std::string> grayable;       // kGrayNode targets
  std::vector<std::string> skewable;       // kClockSkew targets
  std::vector<std::string> rollable;       // kRollingRestart: the group bounced in order
};

// Deterministic: the same (seed, options) always yields the same schedule. The generator
// has its own Rng — it never touches the cluster's stream.
FaultSchedule GenerateFaultSchedule(uint64_t seed, const FaultGenOptions& options);

// Schedules every window's start and end on the cluster's event queue. `fresh_state`
// selects crash-recovery semantics for Overlog nodes (false = durable on-disk state).
void ApplySchedule(Cluster& cluster, const FaultSchedule& schedule, bool fresh_state);

// End-of-run normalization: restart anything dead, unblock all links, clear all faults.
void HealAll(Cluster& cluster, const std::vector<std::string>& nodes, bool fresh_state);

}  // namespace boom

#endif  // SRC_CHAOS_FAULT_SCHEDULE_H_
