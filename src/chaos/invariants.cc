#include "src/chaos/invariants.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/datanode.h"
#include "src/boomfs/federation.h"
#include "src/boomfs/protocol.h"

namespace boom {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

// Reads a table as a vector of tuples; empty when the table (or engine) is missing —
// a freshly restarted replica that has not reinstalled state yet is not a violation.
std::vector<Tuple> ReadTable(Cluster& cluster, const std::string& node,
                             const std::string& table) {
  std::vector<Tuple> rows;
  Engine* engine = cluster.engine(node);
  if (engine == nullptr) {
    return rows;
  }
  const Table* t = engine->catalog().Find(table);
  if (t == nullptr) {
    return rows;
  }
  t->ForEach([&rows](const Tuple& row) { rows.push_back(row); });
  return rows;
}

}  // namespace

// --- Paxos ---

void PaxosAgreementChecker::Check(Cluster& cluster, bool /*final_check*/,
                                  std::vector<std::string>* out) {
  for (const std::string& p : peers_) {
    for (const Tuple& row : ReadTable(cluster, p, "decided")) {
      int64_t slot = row[0].as_int();
      std::string cmd = row[1].ToString();
      auto& mine = seen_[p];
      auto it = mine.find(slot);
      if (it != mine.end()) {
        if (it->second != cmd) {
          out->push_back(p + " rewrote decided slot " + std::to_string(slot) + ": " +
                         it->second + " -> " + cmd);
        }
        continue;  // already cross-checked when first seen
      }
      mine[slot] = cmd;
      auto chosen = chosen_.find(slot);
      if (chosen == chosen_.end()) {
        chosen_[slot] = {cmd, p};
      } else if (chosen->second.first != cmd) {
        out->push_back("slot " + std::to_string(slot) + " diverged: " +
                       chosen->second.second + " decided " + chosen->second.first +
                       " but " + p + " decided " + cmd);
      }
    }
  }
}

void PaxosProgressChecker::Check(Cluster& cluster, bool final_check,
                                 std::vector<std::string>* out) {
  if (!final_check) {
    return;
  }
  for (const std::string& p : peers_) {
    if (!ReadTable(cluster, p, "decided").empty()) {
      return;
    }
  }
  out->push_back("no slot was decided by any replica despite healing");
}

// --- BOOM-FS ---

void BoomFsInvariantChecker::Check(Cluster& cluster, bool final_check,
                                   std::vector<std::string>* out) {
  struct FileRow {
    int64_t parent;
    std::string name;
    bool is_dir;
  };
  std::map<int64_t, FileRow> files;
  std::set<std::pair<int64_t, std::string>> names_seen;
  for (const Tuple& row : ReadTable(cluster, namenode_, "file")) {
    int64_t id = row[0].as_int();
    FileRow fr{row[1].as_int(), row[2].as_string(), row[3].Truthy()};
    if (!files.emplace(id, fr).second) {
      out->push_back("duplicate file id " + std::to_string(id));
      continue;
    }
    if (id == 0) {
      continue;  // the root has no parent
    }
    if (!names_seen.insert({fr.parent, fr.name}).second) {
      out->push_back("two files named '" + fr.name + "' under parent " +
                     std::to_string(fr.parent));
    }
  }

  // Tree shape: every non-root entry hangs off an existing directory and reaches the root.
  for (const auto& [id, fr] : files) {
    if (id == 0) {
      continue;
    }
    auto parent = files.find(fr.parent);
    if (parent == files.end()) {
      out->push_back("file " + std::to_string(id) + " ('" + fr.name +
                     "') has missing parent " + std::to_string(fr.parent));
      continue;
    }
    if (!parent->second.is_dir) {
      out->push_back("file " + std::to_string(id) + " ('" + fr.name +
                     "') nested under non-directory " + std::to_string(fr.parent));
    }
  }

  // Recompute fully-qualified paths from `file` and compare with the fqpath view.
  std::map<int64_t, std::string> paths;
  std::function<const std::string*(int64_t, int)> path_of =
      [&](int64_t id, int depth) -> const std::string* {
    auto done = paths.find(id);
    if (done != paths.end()) {
      return &done->second;
    }
    if (depth > 64) {
      return nullptr;  // cycle
    }
    auto it = files.find(id);
    if (it == files.end()) {
      return nullptr;
    }
    if (id == 0) {
      return &(paths[0] = "/");
    }
    const std::string* parent = path_of(it->second.parent, depth + 1);
    if (parent == nullptr) {
      return nullptr;
    }
    std::string p = (*parent == "/") ? "/" + it->second.name
                                     : *parent + "/" + it->second.name;
    return &(paths[id] = std::move(p));
  };
  std::set<std::pair<std::string, int64_t>> expect_fq;
  for (const auto& [id, fr] : files) {
    const std::string* p = path_of(id, 0);
    if (p == nullptr) {
      out->push_back("file " + std::to_string(id) + " is not reachable from the root");
      continue;
    }
    expect_fq.insert({*p, id});
  }
  std::set<std::pair<std::string, int64_t>> actual_fq;
  for (const Tuple& row : ReadTable(cluster, namenode_, "fqpath")) {
    actual_fq.insert({row[0].as_string(), row[1].as_int()});
  }
  for (const auto& e : expect_fq) {
    if (!actual_fq.count(e)) {
      out->push_back("fqpath missing " + e.first + " -> " + std::to_string(e.second));
    }
  }
  for (const auto& a : actual_fq) {
    if (!expect_fq.count(a)) {
      out->push_back("fqpath has stale entry " + a.first + " -> " +
                     std::to_string(a.second));
    }
  }

  // Chunk ownership: every owned chunk belongs to an existing plain file; every reported
  // location is for a chunk that is either owned or tombstoned (in transit to GC).
  std::set<int64_t> owned;
  for (const Tuple& row : ReadTable(cluster, namenode_, "fchunk")) {
    int64_t chunk = row[0].as_int();
    int64_t file = row[1].as_int();
    owned.insert(chunk);
    auto it = files.find(file);
    if (it == files.end()) {
      out->push_back("chunk " + std::to_string(chunk) + " owned by missing file " +
                     std::to_string(file));
    } else if (it->second.is_dir) {
      out->push_back("chunk " + std::to_string(chunk) + " owned by directory " +
                     std::to_string(file));
    }
  }
  std::set<int64_t> dead;
  for (const Tuple& row : ReadTable(cluster, namenode_, "dead_chunk")) {
    dead.insert(row[0].as_int());
  }
  for (const Tuple& row : ReadTable(cluster, namenode_, "hb_chunk")) {
    int64_t chunk = row[1].as_int();
    if (!owned.count(chunk) && !dead.count(chunk)) {
      out->push_back("orphan location: " + row[0].as_string() + " reports chunk " +
                     std::to_string(chunk) + " that no file owns");
    }
  }

  // Model conformance: every acknowledged operation (older than the ack slack) must be
  // durably visible, and every acknowledged rm must stay gone (paths are never reused).
  double cutoff = cluster.now() - ack_slack_ms_;
  std::map<std::string, int64_t> by_path;
  for (const auto& [path, id] : actual_fq) {
    by_path[path] = id;
  }
  for (const auto& [path, entry] : model_->acked) {
    if (entry.ack_ms > cutoff) {
      continue;
    }
    auto it = by_path.find(path);
    if (it == by_path.end()) {
      out->push_back("acked path " + path + " is missing from the namespace");
      continue;
    }
    auto fr = files.find(it->second);
    if (fr != files.end() && fr->second.is_dir != entry.is_dir) {
      out->push_back("acked path " + path + " changed type");
    }
  }
  for (const auto& [path, ack_ms] : model_->removed) {
    if (ack_ms <= cutoff && by_path.count(path)) {
      out->push_back("acked rm of " + path + " did not stick");
    }
  }

  if (!final_check) {
    return;
  }

  // After heal + settle: every owned chunk must be back at full replication (bounded by
  // the number of live DataNodes) — a crashed replica or a quarantined corrupt copy must
  // have been healed by re-replication, without waiting for anything further.
  size_t live_dns = 0;
  for (const std::string& dn : datanodes_) {
    if (cluster.IsAlive(dn)) {
      ++live_dns;
    }
  }
  size_t expected_rep = std::min<size_t>(static_cast<size_t>(replication_factor_), live_dns);
  std::map<int64_t, size_t> rep_count;
  for (const Tuple& row : ReadTable(cluster, namenode_, "hb_chunk")) {
    ++rep_count[row[1].as_int()];
  }
  for (int64_t chunk : owned) {
    size_t n = rep_count.count(chunk) ? rep_count[chunk] : 0;
    if (n < expected_rep) {
      out->push_back("chunk " + std::to_string(chunk) + " under-replicated after heal (" +
                     std::to_string(n) + "/" + std::to_string(expected_rep) + ")");
    }
  }

  // No DataNode may store a chunk the namespace does not own (dead chunks must have been
  // garbage-collected via the tombstone protocol), and every acknowledged write must read
  // back byte-for-byte.
  for (const std::string& dn : datanodes_) {
    auto* datanode = dynamic_cast<DataNode*>(cluster.actor(dn));
    if (datanode == nullptr) {
      continue;
    }
    for (int64_t chunk : datanode->ChunkIds()) {
      if (!owned.count(chunk)) {
        out->push_back(dn + " still stores deleted chunk " + std::to_string(chunk));
      }
    }
  }
  SyncFs fs(cluster, client_, /*timeout_ms=*/60000);
  for (const auto& [path, data] : model_->contents) {
    std::string got;
    if (!fs.ReadFile(path, &got)) {
      out->push_back("acked file " + path + " is unreadable after heal");
    } else if (got != data) {
      out->push_back("acked file " + path + " read back wrong bytes");
    }
  }
}

void BoomFsReadIntegrityChecker::Check(Cluster& /*cluster*/, bool /*final_check*/,
                                       std::vector<std::string>* out) {
  for (const FsReadRecord& r : *reads_) {
    if (r.done_ms < 0 || !r.ok) {
      continue;  // still in flight, or failed (failure is a liveness concern, not safety)
    }
    if (r.got != r.expect) {
      out->push_back("read of " + r.path + " issued at t=" + Fmt("%.1f", r.issued_ms) +
                     " succeeded with wrong bytes (" + std::to_string(r.got.size()) +
                     "B got vs " + std::to_string(r.expect.size()) + "B expected)");
    }
  }
}

// --- Federated BOOM-FS ---

namespace {

// The service's published map as pid -> (epoch, members); empty when the node is down.
std::map<int64_t, std::pair<int64_t, std::vector<std::string>>> ReadPmapRows(
    Cluster& cluster, const std::string& pmap) {
  std::map<int64_t, std::pair<int64_t, std::vector<std::string>>> rows;
  for (const Tuple& row : ReadTable(cluster, pmap, "partition_map")) {
    std::vector<std::string> members;
    if (row[3].is_list()) {
      for (const Value& m : row[3].as_list()) {
        members.push_back(m.as_string());
      }
    }
    rows[row[0].as_int()] = {row[1].as_int(), std::move(members)};
  }
  return rows;
}

int64_t ReadEpochCell(Cluster& cluster, const std::string& node, const std::string& table) {
  for (const Tuple& row : ReadTable(cluster, node, table)) {
    return row[1].as_int();
  }
  return -1;  // table empty / node down
}

}  // namespace

void FedEpochChecker::Check(Cluster& cluster, bool final_check,
                            std::vector<std::string>* out) {
  int64_t global = ReadEpochCell(cluster, model_->pmap, "pm_epoch");
  if (global < 0) {
    return;  // map service unreadable at this checkpoint: nothing to compare against
  }
  if (global < max_global_epoch_) {
    out->push_back("partition-map global epoch regressed: " + std::to_string(global) +
                   " after " + std::to_string(max_global_epoch_));
  }
  max_global_epoch_ = std::max(max_global_epoch_, global);
  auto pmap_rows = ReadPmapRows(cluster, model_->pmap);
  for (const auto& [pid, row] : pmap_rows) {
    if (row.first > global) {
      out->push_back("partition-map row for pid " + std::to_string(pid) + " carries epoch " +
                     std::to_string(row.first) + " > global epoch " +
                     std::to_string(global));
    }
  }
  for (const auto& group : model_->groups) {
    for (const std::string& replica : group) {
      if (!cluster.IsAlive(replica)) {
        continue;
      }
      int64_t applied = ReadEpochCell(cluster, replica, "fed_epoch");
      if (applied > global) {
        out->push_back(replica + " applied global epoch " + std::to_string(applied) +
                       " ahead of the map service's " + std::to_string(global));
      }
      for (const Tuple& row : ReadTable(cluster, replica, "fed_map")) {
        int64_t pid = row[0].as_int();
        auto it = pmap_rows.find(pid);
        if (it != pmap_rows.end() && row[1].as_int() > it->second.first) {
          out->push_back(replica + " holds fed_map epoch " + std::to_string(row[1].as_int()) +
                         " for pid " + std::to_string(pid) +
                         " ahead of the map service's " +
                         std::to_string(it->second.first));
        }
      }
    }
  }
  if (!final_check) {
    return;
  }
  // Healed: complete map, and ownership everywhere matches the published membership.
  for (int64_t pid = 0; pid < model_->num_partitions; ++pid) {
    if (!pmap_rows.count(pid)) {
      out->push_back("partition-map has no row for pid " + std::to_string(pid) +
                     " after healing");
    }
  }
  for (const auto& group : model_->groups) {
    for (const std::string& replica : group) {
      if (!cluster.IsAlive(replica)) {
        continue;
      }
      std::set<int64_t> owned;
      for (const Tuple& row : ReadTable(cluster, replica, "fed_owned")) {
        owned.insert(row[0].as_int());
      }
      for (const auto& [pid, row] : pmap_rows) {
        bool member = std::find(row.second.begin(), row.second.end(), replica) !=
                      row.second.end();
        if (member && !owned.count(pid)) {
          out->push_back(replica + " is a published member of pid " + std::to_string(pid) +
                         " but does not own it after healing");
        }
        if (!member && owned.count(pid)) {
          out->push_back(replica + " still owns pid " + std::to_string(pid) +
                         " it is no longer a published member of after healing");
        }
      }
    }
  }
}

void FedNamespaceChecker::Check(Cluster& cluster, bool final_check,
                                std::vector<std::string>* out) {
  if (!final_check) {
    return;  // mid-migration states are legal; obligations bind only after healing
  }
  auto pmap_rows = ReadPmapRows(cluster, model_->pmap);
  // pid -> owning group index, resolved by matching the published members against the
  // deployment's group lists (-1 = unresolvable, skip that partition).
  auto owner_group = [&](int64_t pid) {
    auto it = pmap_rows.find(pid);
    if (it == pmap_rows.end() || it->second.second.empty()) {
      return -1;
    }
    const std::string& first = it->second.second.front();
    for (size_t g = 0; g < model_->groups.size(); ++g) {
      const auto& members = model_->groups[g];
      if (std::find(members.begin(), members.end(), first) != members.end()) {
        return static_cast<int>(g);
      }
    }
    return -1;
  };
  // One leader-preferred namespace snapshot per group; a dead group stays unreadable.
  std::vector<bool> readable(model_->groups.size(), false);
  std::vector<std::set<std::string>> paths(model_->groups.size());
  for (size_t g = 0; g < model_->groups.size(); ++g) {
    std::string leader = GroupLeader(cluster, model_->groups[g]);
    if (leader.empty()) {
      continue;
    }
    readable[g] = true;
    for (const Tuple& row : ReadTable(cluster, leader, "fqpath")) {
      paths[g].insert(row[0].as_string());
    }
  }
  auto routing_pid = [this](const std::string& path) {
    return RoutingPid(NsRoutingKey("exists", path), model_->num_partitions);
  };
  for (const auto& [path, is_dir] : model_->live) {
    if (model_->uncertain.count(path)) {
      continue;
    }
    int64_t pid = routing_pid(path);
    if (model_->uncertain_pids.count(pid)) {
      continue;
    }
    int owner = owner_group(pid);
    if (owner >= 0 && readable[static_cast<size_t>(owner)] &&
        !paths[static_cast<size_t>(owner)].count(path)) {
      out->push_back("acked " + std::string(is_dir ? "dir " : "file ") + path +
                     " missing from owner group " + std::to_string(owner) + " (pid " +
                     std::to_string(pid) + ")");
    }
    if (!is_dir) {  // dirs are dual-homed by design; only files must be unique
      int copies = 0;
      for (size_t g = 0; g < model_->groups.size(); ++g) {
        if (readable[g] && paths[g].count(path)) {
          ++copies;
        }
      }
      if (copies > 1) {
        out->push_back("acked file " + path + " present in " + std::to_string(copies) +
                       " groups (duplicated namespace entry)");
      }
    }
  }
  for (const std::string& path : model_->gone) {
    if (model_->uncertain.count(path)) {
      continue;
    }
    int64_t pid = routing_pid(path);
    if (model_->uncertain_pids.count(pid)) {
      continue;
    }
    int owner = owner_group(pid);
    if (owner >= 0 && readable[static_cast<size_t>(owner)] &&
        paths[static_cast<size_t>(owner)].count(path)) {
      out->push_back("removed path " + path + " resurfaced at owner group " +
                     std::to_string(owner) + " (pid " + std::to_string(pid) + ")");
    }
  }
}

// --- BOOM-MR ---

void BoomMrExactlyOnceChecker::Check(Cluster& /*cluster*/, bool /*final_check*/,
                                     std::vector<std::string>* out) {
  const MrMetrics& metrics = data_plane_->metrics();
  // (job, task, is_map) -> winning attempt count.
  std::map<std::tuple<int64_t, int64_t, bool>, int> wins;
  for (const AttemptRecord& a : metrics.attempts) {
    if (a.won) {
      if (a.end_ms < 0) {
        out->push_back("job " + std::to_string(a.job_id) + " task " +
                       std::to_string(a.task_id) + " marked won while still running");
      }
      wins[{a.job_id, a.task_id, a.is_map}]++;
    }
  }
  for (const auto& [key, count] : wins) {
    if (count > 1) {
      const auto& [job, task, is_map] = key;
      out->push_back("job " + std::to_string(job) + (is_map ? " map " : " reduce ") +
                     std::to_string(task) + " succeeded on " + std::to_string(count) +
                     " attempts");
    }
  }
  // Completed jobs must have exactly one success per task (not zero).
  for (const auto& [job, done_ms] : metrics.job_done_ms) {
    auto shape = log_->job_shape.find(job);
    if (shape == log_->job_shape.end()) {
      continue;
    }
    const auto& [num_maps, num_reduces] = shape->second;
    for (int t = 0; t < num_maps; ++t) {
      if (!wins.count({job, t, true})) {
        out->push_back("job " + std::to_string(job) + " completed but map " +
                       std::to_string(t) + " never succeeded");
      }
    }
    for (int t = 0; t < num_reduces; ++t) {
      if (!wins.count({job, t, false})) {
        out->push_back("job " + std::to_string(job) + " completed but reduce " +
                       std::to_string(t) + " never succeeded");
      }
    }
  }
}

void BoomMrFairnessChecker::Check(Cluster& /*cluster*/, bool /*final_check*/,
                                  std::vector<std::string>* out) {
  const MrMetrics& metrics = data_plane_->metrics();
  size_t tenants = static_cast<size_t>(num_tenants_);
  std::vector<int> running(tenants, 0);
  std::map<int64_t, int> started_by_job;  // running + first-completed tasks per job
  for (const AttemptRecord& a : metrics.attempts) {
    if (a.end_ms < 0) {
      int64_t t = a.job_id / 1000000;
      if (t >= 0 && static_cast<size_t>(t) < tenants) {
        ++running[static_cast<size_t>(t)];
      }
      ++started_by_job[a.job_id];
    }
  }
  for (const auto& [key, when] : metrics.task_first_done_ms) {
    ++started_by_job[std::get<0>(key)];
  }
  std::vector<int> demand(running);
  for (const auto& [job, submit_ms] : metrics.job_submit_ms) {
    if (metrics.job_done_ms.count(job) != 0) {
      continue;
    }
    int64_t t = job / 1000000;
    if (t < 0 || static_cast<size_t>(t) >= tenants) {
      continue;
    }
    auto started = started_by_job.find(job);
    int started_n = started == started_by_job.end() ? 0 : started->second;
    demand[static_cast<size_t>(t)] += std::max(0, tasks_per_job_ - started_n);
  }
  int equal_share = total_slots_ / std::max(1, num_tenants_);
  bool contended = true;
  for (size_t t = 0; t < tenants; ++t) {
    if (demand[t] < equal_share) {
      contended = false;
      break;
    }
  }
  int max_running = *std::max_element(running.begin(), running.end());
  for (size_t t = 0; t < tenants; ++t) {
    bool starved = contended && running[t] == 0 && max_running > equal_share;
    starved_streak_[t] = starved ? starved_streak_[t] + 1 : 0;
    if (starved_streak_[t] >= max_starved_checks_) {
      out->push_back("tenant " + std::to_string(t) + " held 0 slots for " +
                     std::to_string(starved_streak_[t]) +
                     " consecutive contended checkpoints while another tenant held " +
                     std::to_string(max_running) + " (equal share " +
                     std::to_string(equal_share) + ")");
      starved_streak_[t] = 0;  // re-arm instead of flooding every later checkpoint
    }
  }
}

void GoodputRecoveryChecker::Check(Cluster& /*cluster*/, bool final_check,
                                   std::vector<std::string>* out) {
  if (!final_check) {
    return;
  }
  double pre = goodput_(pre_t0_ms_, pre_t1_ms_);
  double post = goodput_(post_t0_ms_, post_t1_ms_);
  if (pre <= 0) {
    // Never a pass by vacuity: a run whose baseline produced nothing is itself broken.
    out->push_back("no pre-burst goodput in [" + Fmt("%.0f", pre_t0_ms_) + ", " +
                   Fmt("%.0f", pre_t1_ms_) + ")ms — baseline window saw zero successes");
    return;
  }
  if (post < min_ratio_ * pre) {
    out->push_back("goodput stayed collapsed after the burst cleared: " +
                   Fmt("%.1f", post) + " ops/s in [" + Fmt("%.0f", post_t0_ms_) + ", " +
                   Fmt("%.0f", post_t1_ms_) + ")ms vs " + Fmt("%.1f", pre) +
                   " ops/s baseline (need >= " + Fmt("%.2f", min_ratio_) +
                   "x) — the metastable-failure signature");
  }
}

void BoomMrCompletionChecker::Check(Cluster& /*cluster*/, bool final_check,
                                    std::vector<std::string>* out) {
  if (!final_check) {
    return;
  }
  const MrMetrics& metrics = data_plane_->metrics();
  for (int64_t job : log_->submitted) {
    if (!metrics.job_done_ms.count(job)) {
      out->push_back("job " + std::to_string(job) + " never completed after healing");
    }
  }
}

}  // namespace boom
