// TraceRecorder: captures the cluster's fault/network trace as an ordered list of text
// lines. Because the cluster emits fixed-precision, heap-address-free lines, two runs with
// the same seed and schedule must produce byte-identical traces — which is what the
// determinism regression test asserts, and what makes a recorded failure replayable.

#ifndef SRC_CHAOS_TRACE_H_
#define SRC_CHAOS_TRACE_H_

#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace boom {

class TraceRecorder {
 public:
  // Registers this recorder as the cluster's trace sink. The recorder must outlive the
  // cluster's last event.
  void Attach(Cluster& cluster);

  void Record(std::string line) { lines_.push_back(std::move(line)); }
  const std::vector<std::string>& lines() const { return lines_; }
  size_t size() const { return lines_.size(); }
  void Clear() { lines_.clear(); }

  // All lines joined with '\n' (trailing newline included when non-empty).
  std::string ToString() const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace boom

#endif  // SRC_CHAOS_TRACE_H_
