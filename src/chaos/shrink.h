// Failing-seed shrinker: ddmin-style delta debugging over a fault schedule's event list.
// Given a schedule known to violate an invariant and a predicate that re-runs the scenario,
// it searches for a minimal sub-schedule that still fails. Events are self-contained
// windows, so any subset is itself a well-formed schedule.

#ifndef SRC_CHAOS_SHRINK_H_
#define SRC_CHAOS_SHRINK_H_

#include <functional>

#include "src/chaos/fault_schedule.h"

namespace boom {

struct ShrinkResult {
  FaultSchedule schedule;  // smallest schedule found that still fails
  int runs = 0;            // predicate invocations spent
};

// `still_fails` must be deterministic (same schedule -> same verdict). `max_runs` bounds
// the search; the best schedule found so far is returned when the budget is exhausted.
ShrinkResult ShrinkSchedule(const FaultSchedule& failing,
                            const std::function<bool(const FaultSchedule&)>& still_fails,
                            int max_runs = 64);

}  // namespace boom

#endif  // SRC_CHAOS_SHRINK_H_
