#include "src/chaos/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/logging.h"
#include "src/sim/random.h"

namespace boom {

namespace {

std::string Fmt(const char* fmt, double a, double b = 0) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

std::string FaultEvent::ToString() const {
  std::string out = Fmt("[%.1f +%.1f] ", start_ms, duration_ms);
  switch (type) {
    case FaultType::kCrash:
      out += "crash " + node;
      break;
    case FaultType::kPartition: {
      out += "partition {";
      for (size_t i = 0; i < side_a.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += side_a[i];
      }
      out += "} | rest";
      break;
    }
    case FaultType::kLinkDegrade:
      out += "degrade " + link_a + "<->" + link_b;
      out += Fmt(" drop=%.2f", faults.drop_prob);
      out += Fmt(" dup=%.2f", faults.dup_prob);
      out += Fmt(" reorder=%.2f", faults.reorder_prob);
      out += Fmt(" lat=%.1fms", faults.extra_latency_ms);
      break;
    case FaultType::kDiskCorrupt:
      out += "corrupt-disk " + node + Fmt(" p=%.2f", corrupt_prob);
      break;
    case FaultType::kSlowDisk:
      out += "slow-disk " + node + Fmt(" +%.1fms", slow_disk_ms);
      break;
    case FaultType::kGrayNode:
      out += "gray " + node + Fmt(" x%.1f", slowdown_factor);
      break;
    case FaultType::kClockSkew:
      out += "clock-skew " + node + Fmt(" %+.1fms", skew_ms);
      break;
    case FaultType::kRollingRestart: {
      out += "rolling-restart {";
      for (size_t i = 0; i < side_a.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += side_a[i];
      }
      out += "}" + Fmt(" down=%.1fms", per_node_down_ms);
      break;
    }
  }
  return out;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    out += "  " + ev.ToString() + "\n";
  }
  return out;
}

FaultSchedule GenerateFaultSchedule(uint64_t seed, const FaultGenOptions& o) {
  // Decorrelate from the cluster seed (which scenarios also derive state from).
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  FaultSchedule schedule;

  if (!o.killable.empty() && o.max_crashes > 0) {
    int n = static_cast<int>(rng.UniformInt(1, o.max_crashes));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kCrash;
      ev.node = o.killable[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.killable.size()) - 1))];
      ev.duration_ms = rng.Uniform(o.min_crash_ms, o.max_crash_ms);
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      schedule.events.push_back(std::move(ev));
    }
  }

  if (o.partitionable.size() >= 2 && o.max_partitions > 0) {
    // Partition windows are laid out left-to-right without overlap so a heal never
    // unblocks pairs another active partition still needs.
    int n = static_cast<int>(rng.UniformInt(0, o.max_partitions));
    double cursor = 0;
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kPartition;
      ev.start_ms = cursor + rng.Uniform(500, std::max(600.0, o.horizon_ms / (n + 1)));
      ev.duration_ms = rng.Uniform(o.min_partition_ms, o.max_partition_ms);
      if (ev.start_ms >= o.horizon_ms) {
        break;
      }
      ev.duration_ms = std::min(ev.duration_ms, o.horizon_ms - ev.start_ms);
      int64_t k = rng.UniformInt(1, static_cast<int64_t>(o.partitionable.size()) - 1);
      for (size_t idx : rng.Sample(o.partitionable.size(), static_cast<size_t>(k))) {
        ev.side_a.push_back(o.partitionable[idx]);
      }
      std::sort(ev.side_a.begin(), ev.side_a.end());
      for (const std::string& n : o.all_nodes) {
        if (std::find(ev.side_a.begin(), ev.side_a.end(), n) == ev.side_a.end()) {
          ev.side_b.push_back(n);
        }
      }
      cursor = ev.start_ms + ev.duration_ms + 200;
      schedule.events.push_back(std::move(ev));
    }
  }

  bool any_degrade = o.allow_drop || o.allow_dup || o.allow_reorder || o.allow_latency;
  if (!o.degradable_links.empty() && o.max_degrades > 0 && any_degrade) {
    int n = static_cast<int>(rng.UniformInt(0, o.max_degrades));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kLinkDegrade;
      const auto& link = o.degradable_links[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.degradable_links.size()) - 1))];
      ev.link_a = link.first;
      ev.link_b = link.second;
      ev.duration_ms = rng.Uniform(o.min_degrade_ms, o.max_degrade_ms);
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      // Sample every knob unconditionally so the draw sequence (and thus the rest of the
      // schedule) does not depend on which knobs a scenario allows.
      double drop = rng.Uniform(0.05, 0.35);
      double dup = rng.Uniform(0.0, 0.25);
      double reorder = rng.Uniform(0.0, 0.30);
      double latency = rng.Uniform(0.0, 25.0);
      ev.faults.drop_prob = o.allow_drop ? drop : 0;
      ev.faults.dup_prob = o.allow_dup ? dup : 0;
      ev.faults.reorder_prob = o.allow_reorder ? reorder : 0;
      ev.faults.extra_latency_ms = o.allow_latency ? latency : 0;
      if (!ev.faults.active()) {
        continue;
      }
      schedule.events.push_back(std::move(ev));
    }
  }

  // Disk faults are sampled last and only when enabled, so scenarios that never opt in
  // keep byte-identical schedules for pre-existing seeds.
  if (!o.corruptible.empty() && o.max_corruptions > 0) {
    int n = static_cast<int>(rng.UniformInt(0, o.max_corruptions));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kDiskCorrupt;
      ev.node = o.corruptible[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.corruptible.size()) - 1))];
      ev.corrupt_prob = rng.Uniform(0.5, 1.0);
      ev.duration_ms = rng.Uniform(o.min_disk_ms, o.max_disk_ms);
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      if (o.corrupt_avoids_partitions) {
        bool clear = false;
        for (int tries = 0; tries < 16 && !clear; ++tries) {
          clear = true;
          for (const FaultEvent& other : schedule.events) {
            if (other.type == FaultType::kPartition &&
                ev.start_ms < other.start_ms + other.duration_ms &&
                other.start_ms < ev.start_ms + ev.duration_ms) {
              clear = false;
              ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
              break;
            }
          }
        }
        if (!clear) {
          continue;  // no overlap-free slot found: drop the window
        }
      }
      schedule.events.push_back(std::move(ev));
    }
  }

  if (!o.corruptible.empty() && o.max_slow_disks > 0) {
    int n = static_cast<int>(rng.UniformInt(0, o.max_slow_disks));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kSlowDisk;
      ev.node = o.corruptible[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.corruptible.size()) - 1))];
      ev.slow_disk_ms = rng.Uniform(20, 200);
      ev.duration_ms = rng.Uniform(o.min_disk_ms, o.max_disk_ms);
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      schedule.events.push_back(std::move(ev));
    }
  }

  // Gray / skew / rolling windows come last in the draw order (same reasoning: opting in
  // must not disturb the schedules of seeds generated before these knobs existed).
  if (!o.grayable.empty() && o.max_grays > 0) {
    int n = static_cast<int>(rng.UniformInt(0, o.max_grays));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kGrayNode;
      ev.node = o.grayable[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.grayable.size()) - 1))];
      // Log-uniform: most windows are mild (a busy neighbor), the top decade is limplock —
      // alive, heartbeating, and doing essentially no useful work.
      ev.slowdown_factor = std::exp(
          rng.Uniform(std::log(o.min_gray_factor), std::log(o.max_gray_factor)));
      ev.duration_ms = rng.Uniform(o.min_disk_ms, o.max_disk_ms);
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      schedule.events.push_back(std::move(ev));
    }
  }

  if (!o.skewable.empty() && o.max_clock_skews > 0) {
    int n = static_cast<int>(rng.UniformInt(0, o.max_clock_skews));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kClockSkew;
      ev.node = o.skewable[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(o.skewable.size()) - 1))];
      double magnitude = rng.Uniform(o.min_skew_ms, o.max_skew_ms);
      ev.skew_ms = rng.Bernoulli(0.5) ? magnitude : -magnitude;
      ev.duration_ms = rng.Uniform(1500, 5000);
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      schedule.events.push_back(std::move(ev));
    }
  }

  if (!o.rollable.empty() && o.max_rolling_restarts > 0) {
    int n = static_cast<int>(rng.UniformInt(0, o.max_rolling_restarts));
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      ev.type = FaultType::kRollingRestart;
      ev.side_a = o.rollable;
      ev.per_node_down_ms = o.rolling_down_ms;
      // The window must fit every stagger plus the last node's downtime.
      double min_window =
          o.rolling_down_ms * static_cast<double>(std::max<size_t>(1, ev.side_a.size()));
      ev.duration_ms = rng.Uniform(min_window, std::max(min_window + 1, o.horizon_ms / 2));
      ev.start_ms = rng.Uniform(0, std::max(1.0, o.horizon_ms - ev.duration_ms));
      schedule.events.push_back(std::move(ev));
    }
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start_ms < b.start_ms;
                   });
  return schedule;
}

void ApplySchedule(Cluster& cluster, const FaultSchedule& schedule, bool fresh_state) {
  for (const FaultEvent& ev : schedule.events) {
    double start = std::max(ev.start_ms, cluster.now());
    double end = start + ev.duration_ms;
    switch (ev.type) {
      case FaultType::kCrash: {
        std::string node = ev.node;
        cluster.ScheduleAt(start, [&cluster, node] {
          if (cluster.IsAlive(node)) {
            cluster.KillNode(node);
          }
        });
        cluster.ScheduleAt(end, [&cluster, node, fresh_state] {
          // Overlapping crash windows on one node: only the first due restart revives it.
          if (!cluster.IsAlive(node)) {
            cluster.RestartNode(node, fresh_state);
          }
        });
        break;
      }
      case FaultType::kPartition: {
        std::vector<std::string> inside = ev.side_a;
        std::vector<std::string> outside = ev.side_b;
        cluster.ScheduleAt(start, [&cluster, inside, outside] {
          for (const std::string& a : inside) {
            for (const std::string& b : outside) {
              cluster.BlockLink(a, b);
            }
          }
        });
        cluster.ScheduleAt(end, [&cluster, inside, outside] {
          for (const std::string& a : inside) {
            for (const std::string& b : outside) {
              cluster.UnblockLink(a, b);
            }
          }
        });
        break;
      }
      case FaultType::kLinkDegrade: {
        std::string a = ev.link_a, b = ev.link_b;
        LinkFaults f = ev.faults;
        cluster.ScheduleAt(start, [&cluster, a, b, f] { cluster.SetLinkFaults(a, b, f); });
        cluster.ScheduleAt(end, [&cluster, a, b] { cluster.ClearLinkFaults(a, b); });
        break;
      }
      case FaultType::kDiskCorrupt: {
        // Read-modify-write so a concurrent slow-disk window on the same node survives.
        std::string node = ev.node;
        double p = ev.corrupt_prob;
        cluster.ScheduleAt(start, [&cluster, node, p] {
          DiskFaults f = cluster.disk_faults(node);
          f.corrupt_prob = p;
          cluster.SetDiskFaults(node, f);
        });
        cluster.ScheduleAt(end, [&cluster, node] {
          DiskFaults f = cluster.disk_faults(node);
          f.corrupt_prob = 0;
          cluster.SetDiskFaults(node, f);
        });
        break;
      }
      case FaultType::kSlowDisk: {
        std::string node = ev.node;
        double ms = ev.slow_disk_ms;
        cluster.ScheduleAt(start, [&cluster, node, ms] {
          DiskFaults f = cluster.disk_faults(node);
          f.slow_ms = ms;
          cluster.SetDiskFaults(node, f);
        });
        cluster.ScheduleAt(end, [&cluster, node] {
          DiskFaults f = cluster.disk_faults(node);
          f.slow_ms = 0;
          cluster.SetDiskFaults(node, f);
        });
        break;
      }
      case FaultType::kGrayNode: {
        std::string node = ev.node;
        double factor = ev.slowdown_factor;
        cluster.ScheduleAt(start,
                           [&cluster, node, factor] { cluster.SetNodeSlowdown(node, factor); });
        cluster.ScheduleAt(end, [&cluster, node] { cluster.SetNodeSlowdown(node, 1.0); });
        break;
      }
      case FaultType::kClockSkew: {
        std::string node = ev.node;
        double skew = ev.skew_ms;
        cluster.ScheduleAt(start, [&cluster, node, skew] { cluster.SetClockSkew(node, skew); });
        cluster.ScheduleAt(end, [&cluster, node] { cluster.SetClockSkew(node, 0); });
        break;
      }
      case FaultType::kRollingRestart: {
        // Bounce the group one node at a time: node i goes down at start + i*gap and comes
        // back per_node_down_ms later. gap >= down, so at most one node is down at once —
        // the operational discipline whose violation rolling restarts are meant to catch.
        size_t n = ev.side_a.size();
        double down = ev.per_node_down_ms;
        double gap = n <= 1 ? 0
                            : std::max(down, (ev.duration_ms - down) /
                                                 static_cast<double>(n - 1));
        for (size_t i = 0; i < n; ++i) {
          std::string node = ev.side_a[i];
          double kill_at = start + gap * static_cast<double>(i);
          cluster.ScheduleAt(kill_at, [&cluster, node] {
            if (cluster.IsAlive(node)) {
              cluster.KillNode(node);
            }
          });
          cluster.ScheduleAt(kill_at + down, [&cluster, node, fresh_state] {
            if (!cluster.IsAlive(node)) {
              cluster.RestartNode(node, fresh_state);
            }
          });
        }
        break;
      }
    }
  }
}

void HealAll(Cluster& cluster, const std::vector<std::string>& nodes, bool fresh_state) {
  cluster.ClearBlockedLinks();
  cluster.ClearAllLinkFaults();
  cluster.ClearAllDiskFaults();
  cluster.ClearAllNodeSlowdowns();
  cluster.ClearAllClockSkews();
  for (const std::string& node : nodes) {
    if (cluster.HasNode(node) && !cluster.IsAlive(node)) {
      cluster.RestartNode(node, fresh_state);
    }
  }
}

}  // namespace boom
