#include "src/chaos/trace.h"

namespace boom {

void TraceRecorder::Attach(Cluster& cluster) {
  cluster.set_trace([this](const std::string& line) { Record(line); });
}

std::string TraceRecorder::ToString() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace boom
