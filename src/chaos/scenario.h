// ChaosScenario: one system-under-test wired for the chaos explorer — how to build the
// cluster, which workload to drive, which faults its deployment assumptions tolerate, and
// which invariants must hold. A scenario instance is single-use: make one per run.
//
// Bug variants (ScenarioOptions::bug) deliberately re-introduce a subtle defect so the
// explorer's find-and-shrink loop can be validated end to end:
//   paxos:  "quorum1"  — quorum size 1: a partitioned minority leader can decide alone.
//           "amnesia"  — replicas restart with fresh state, forgetting promises/accepts.
//   boomfs: "resurrect" — drops the dead-chunk tombstone rules: a DataNode that missed an
//           rm re-registers the deleted chunk via its next full report.
//           "serve-corrupt" — DataNodes skip checksum verification on reads, so a replica
//           whose bytes rotted at rest is served (with a recomputed, matching checksum)
//           instead of being quarantined.
//   boommr: "limplock" — strips the per-attempt timeout rules (x5-x7): a gray tracker
//           whose attempts run orders of magnitude slow is never worked around (the
//           dead-tracker detector stays quiet — the node heartbeats on time), so its
//           tasks wedge and jobs never complete.
//   overload: "retry-storm" — strips the admission gateway's shed rules (ady1/ady2) and
//           the client retry budget: a burst past NameNode capacity queues requests past
//           the client timeout, and the unbudgeted retry stream sustains the overload
//           after the burst clears (metastable failure — goodput never recovers).
//   federation: "split-rename" — strips the xr_commit delete rules (xc2/xc3): a committed
//           cross-partition rename acks the client but never removes the source entry, so
//           renamed-away paths resurface and migrated files appear in two groups.

#ifndef SRC_CHAOS_SCENARIO_H_
#define SRC_CHAOS_SCENARIO_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/chaos/fault_schedule.h"
#include "src/chaos/invariants.h"
#include "src/overlog/ast.h"
#include "src/sim/cluster.h"

namespace boom {

struct ScenarioOptions {
  std::string bug;  // empty = correct implementation
  // Test hooks: run the scenario against a caller-supplied control program (e.g. one parsed
  // from a frozen pre-refactor text) instead of the module-built default. Bug variants
  // still apply on top.
  std::optional<Program> nn_program_override{};  // boomfs scenario
  std::optional<Program> jt_program_override{};  // boommr scenario
};

class ChaosScenario {
 public:
  virtual ~ChaosScenario() = default;

  virtual std::string name() const = 0;
  // Builds the system and schedules its workload inside `cluster`. Also populates
  // checkers(). Must be called exactly once.
  virtual void Setup(Cluster& cluster, uint64_t seed) = 0;
  // The fault envelope this system's deployment assumptions tolerate (e.g. Paxos assumes
  // TCP links, so loss/reorder are off; crash windows and partitions are fair game).
  virtual FaultGenOptions FaultProfile() const = 0;
  // Crash-recovery semantics: false = durable state survives a restart.
  virtual bool FreshStateOnRestart() const { return false; }

  virtual double default_horizon_ms() const { return 20000; }
  virtual double default_settle_ms() const { return 15000; }

  const std::vector<std::unique_ptr<InvariantChecker>>& checkers() const {
    return checkers_;
  }

  // The runner fixes the effective horizon before Setup so the workload can bound itself.
  void set_horizon_ms(double h) { horizon_ms_ = h; }
  double horizon_ms() const { return horizon_ms_ > 0 ? horizon_ms_ : default_horizon_ms(); }

 protected:
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  double horizon_ms_ = 0;
};

// Factory for {"paxos", "boomfs", "boommr", "tenancy", "overload"}; returns nullptr for
// unknown names.
std::unique_ptr<ChaosScenario> MakeScenario(const std::string& name,
                                            const ScenarioOptions& options = {});
std::vector<std::string> ScenarioNames();
// Injectable bug variants for one scenario (empty if it has none) — for CLI validation
// and error messages.
std::vector<std::string> ScenarioBugNames(const std::string& scenario);

}  // namespace boom

#endif  // SRC_CHAOS_SCENARIO_H_
