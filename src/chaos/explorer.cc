#include "src/chaos/explorer.h"

#include "src/base/logging.h"
#include "src/chaos/runner.h"
#include "src/chaos/shrink.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_query.h"

namespace boom {

ExplorerReport ExploreSeeds(const ExplorerOptions& options) {
  ExplorerReport report;
  std::string& text = report.text;
  text += "chaos explorer: scenario=" + options.scenario +
          (options.bug.empty() ? "" : " bug=" + options.bug) +
          " seeds=[" + std::to_string(options.seed0) + ", " +
          std::to_string(options.seed0 + static_cast<uint64_t>(options.seeds)) + ")\n";

  ChaosRunOptions run_opts;
  run_opts.horizon_ms = options.horizon_ms;
  run_opts.settle_ms = options.settle_ms;
  run_opts.worker_threads = options.worker_threads;

  ScenarioOptions sopts;
  sopts.bug = options.bug;

  for (int i = 0; i < options.seeds; ++i) {
    uint64_t seed = options.seed0 + static_cast<uint64_t>(i);
    auto scenario = MakeScenario(options.scenario, sopts);
    BOOM_CHECK(scenario != nullptr) << "unknown scenario " << options.scenario;
    if (options.horizon_ms > 0) {
      scenario->set_horizon_ms(options.horizon_ms);
    }

    SeedOutcome outcome;
    outcome.seed = seed;
    outcome.schedule = GenerateFaultSchedule(seed, scenario->FaultProfile());
    ChaosRunResult run = RunChaosOnce(*scenario, seed, outcome.schedule, run_opts);
    outcome.passed = run.passed;
    outcome.violations = run.violations;

    if (run.passed) {
      if (options.verbose) {
        text += "seed " + std::to_string(seed) + ": ok (" +
                std::to_string(outcome.schedule.events.size()) + " fault events)\n";
      }
    } else {
      ++report.failures;
      text += "seed " + std::to_string(seed) + ": FAIL\n";
      for (const std::string& v : run.violations) {
        text += "  violation: " + v + "\n";
      }
      text += " schedule (" + std::to_string(outcome.schedule.events.size()) +
              " events):\n" + outcome.schedule.ToString();
      if (options.shrink) {
        auto still_fails = [&](const FaultSchedule& candidate) {
          auto retry = MakeScenario(options.scenario, sopts);
          if (options.horizon_ms > 0) {
            retry->set_horizon_ms(options.horizon_ms);
          }
          return !RunChaosOnce(*retry, seed, candidate, run_opts).passed;
        };
        ShrinkResult shrunk =
            ShrinkSchedule(outcome.schedule, still_fails, options.max_shrink_runs);
        outcome.shrunk = shrunk.schedule;
        outcome.shrink_runs = shrunk.runs;
        text += " shrunk to " + std::to_string(shrunk.schedule.events.size()) +
                " events (" + std::to_string(shrunk.runs) + " runs):\n" +
                shrunk.schedule.ToString();
        if (options.timeline) {
          // One more run of the minimal reproducer, this time with causal tracing on, so
          // the repro line ships with the span timeline of the failure it reproduces.
          auto replay = MakeScenario(options.scenario, sopts);
          if (options.horizon_ms > 0) {
            replay->set_horizon_ms(options.horizon_ms);
          }
          Tracer tracer(seed);
          ChaosRunOptions trace_opts = run_opts;
          trace_opts.tracer = &tracer;
          RunChaosOnce(*replay, seed, shrunk.schedule, trace_opts);
          text += " causal timeline of shrunk schedule:\n" +
                  RenderTimeline(tracer.spans(), options.timeline_traces, "  ");
        }
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }

  text += "swept " + std::to_string(options.seeds) + " seeds: " +
          std::to_string(report.failures) + " failing, " +
          std::to_string(options.seeds - report.failures) + " passing\n";
  return report;
}

}  // namespace boom
