// The chaos explorer: sweeps N seeds through a scenario, generating a fault schedule per
// seed, running it, and shrinking any failing schedule to a minimal reproducer. The report
// text is fully deterministic (virtual time only, fixed-precision numbers), so two
// invocations with identical flags produce byte-identical output.

#ifndef SRC_CHAOS_EXPLORER_H_
#define SRC_CHAOS_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/fault_schedule.h"
#include "src/chaos/scenario.h"

namespace boom {

struct ExplorerOptions {
  std::string scenario = "paxos";
  std::string bug;          // inject a named bug variant (see scenario.h)
  int seeds = 25;           // number of seeds to sweep
  uint64_t seed0 = 1;       // first seed; the sweep covers [seed0, seed0 + seeds)
  bool shrink = true;       // shrink failing schedules to minimal reproducers
  int max_shrink_runs = 64;
  double horizon_ms = 0;    // 0 = scenario default
  double settle_ms = 0;
  bool verbose = false;     // per-seed lines even for passing seeds
  // Re-run each shrunk schedule with causal tracing attached and print the span timeline
  // next to the repro line (one extra run per failing seed). Deterministic: span ids come
  // from the seed, so the timeline is as byte-stable as the rest of the report.
  bool timeline = true;
  size_t timeline_traces = 2;  // full trees for this many largest traces
  // Cluster worker threads per run (ClusterOptions::worker_threads). Reports must come out
  // byte-identical at any value; this exists to exercise and time the parallel dispatcher.
  size_t worker_threads = 1;
};

struct SeedOutcome {
  uint64_t seed = 0;
  bool passed = false;
  std::vector<std::string> violations;
  FaultSchedule schedule;
  FaultSchedule shrunk;  // only meaningful when !passed and shrinking ran
  int shrink_runs = 0;
};

struct ExplorerReport {
  std::vector<SeedOutcome> outcomes;
  int failures = 0;
  std::string text;  // the full deterministic report
};

// Returns the report; `options.scenario` must name a known scenario (BOOM_CHECK otherwise).
ExplorerReport ExploreSeeds(const ExplorerOptions& options);

}  // namespace boom

#endif  // SRC_CHAOS_EXPLORER_H_
