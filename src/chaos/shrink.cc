#include "src/chaos/shrink.h"

#include <algorithm>
#include <vector>

namespace boom {

namespace {

FaultSchedule Subset(const FaultSchedule& from, const std::vector<size_t>& keep) {
  FaultSchedule out;
  for (size_t i : keep) {
    out.events.push_back(from.events[i]);
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkSchedule(const FaultSchedule& failing,
                            const std::function<bool(const FaultSchedule&)>& still_fails,
                            int max_runs) {
  ShrinkResult result;
  result.schedule = failing;

  // Fast path: does it fail with no faults at all? (A bug that needs no faults shrinks to
  // the empty schedule immediately.)
  if (max_runs > 0) {
    ++result.runs;
    if (still_fails(FaultSchedule{})) {
      result.schedule.events.clear();
      return result;
    }
  }

  std::vector<size_t> current(failing.events.size());
  for (size_t i = 0; i < current.size(); ++i) {
    current[i] = i;
  }

  size_t granularity = 2;
  while (current.size() >= 2 && result.runs < max_runs) {
    size_t n = std::min(granularity, current.size());
    size_t chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    // Try deleting each chunk (ddmin's "complement" step; with n == size this degenerates
    // to removing single events).
    for (size_t start = 0; start < current.size() && result.runs < max_runs;
         start += chunk) {
      std::vector<size_t> candidate;
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) {
          candidate.push_back(current[i]);
        }
      }
      if (candidate.size() == current.size()) {
        continue;
      }
      ++result.runs;
      if (still_fails(Subset(failing, candidate))) {
        current = std::move(candidate);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) {
        break;  // 1-minimal: no single event can be removed
      }
      granularity = std::min(current.size(), granularity * 2);
    }
  }

  // A failing singleton may still remain shrinkable to zero only via the fast path above,
  // so `current` is the answer.
  result.schedule = Subset(failing, current);
  return result;
}

}  // namespace boom
