#include "src/chaos/scenario.h"

#include <algorithm>
#include <memory>
#include <set>

#include "src/base/logging.h"
#include "src/boomfs/boomfs.h"
#include "src/boomfs/client.h"
#include "src/boomfs/datanode.h"
#include "src/boomfs/federation.h"
#include "src/boomfs/nn_program.h"
#include "src/boommr/boommr.h"
#include "src/boommr/jt_program.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/random.h"
#include "src/workload/fs_load.h"
#include "src/workload/tenancy.h"

namespace boom {

namespace {

// Removes one rule from a Program by name. Bug variants operate on the AST (programs are
// data): no re-parsing, and the remaining rules keep their program order.
void StripRule(Program* program, const std::string& name) {
  for (auto it = program->rules.begin(); it != program->rules.end(); ++it) {
    if (it->name == name) {
      program->rules.erase(it);
      return;
    }
  }
  BOOM_CHECK(false) << "rule " << name << " not found";
}

// Overwrites every fact for `table` with `tuple` (used to shrink the quorum fact).
void ReplaceFacts(Program* program, const std::string& table, const Tuple& tuple) {
  bool found = false;
  for (Fact& fact : program->facts) {
    if (fact.table == table) {
      fact.tuple = tuple;
      found = true;
    }
  }
  BOOM_CHECK(found) << "no fact for table " << table;
}

// --- Paxos: three replicas, a steady command stream, agreement + progress checks ---

class PaxosScenario : public ChaosScenario {
 public:
  explicit PaxosScenario(ScenarioOptions options) : options_(std::move(options)) {
    for (int i = 0; i < 3; ++i) {
      peers_.push_back("px" + std::to_string(i));
    }
  }

  std::string name() const override { return "paxos"; }
  bool FreshStateOnRestart() const override { return options_.bug == "amnesia"; }

  void Setup(Cluster& cluster, uint64_t /*seed*/) override {
    for (int i = 0; i < static_cast<int>(peers_.size()); ++i) {
      PaxosProgramOptions opts;
      opts.peers = peers_;
      opts.my_index = i;
      Program program = PaxosProgram(opts);
      if (options_.bug == "quorum1") {
        ReplaceFacts(&program, "quorum", Tuple{Value(1), Value(1)});
      }
      cluster.AddOverlogNode(peers_[static_cast<size_t>(i)], [program](Engine& engine) {
        Status status = engine.Install(program);
        BOOM_CHECK(status.ok()) << status.ToString();
      });
    }
    // Command stream: one batch every 250ms, submitted to every replica (only the majority
    // side can decide; the losing side's queue drains after healing).
    std::vector<std::string> peers = peers_;
    for (int k = 0; 500 + k * 250 < horizon_ms() - 1500; ++k) {
      cluster.ScheduleAt(500 + k * 250, [&cluster, peers, k] {
        for (const std::string& p : peers) {
          cluster.Send(p, p, "px_request",
                       Tuple{Value(p), Value("cmd-" + std::to_string(k))});
        }
      });
    }
    checkers_.push_back(std::make_unique<PaxosAgreementChecker>(peers_));
    checkers_.push_back(std::make_unique<PaxosProgressChecker>(peers_));
  }

  FaultGenOptions FaultProfile() const override {
    FaultGenOptions o;
    o.horizon_ms = horizon_ms();
    o.killable = peers_;
    o.partitionable = peers_;
    o.all_nodes = peers_;
    for (size_t a = 0; a < peers_.size(); ++a) {
      for (size_t b = a + 1; b < peers_.size(); ++b) {
        o.degradable_links.push_back({peers_[a], peers_[b]});
      }
    }
    // The Overlog Paxos rides on TCP in the paper's deployment: links may slow down or
    // duplicate (retransmits), but never lose or reorder a delivered stream. Crashes and
    // partitions are the faults the protocol itself must absorb.
    o.allow_drop = false;
    o.allow_reorder = false;
    o.max_crashes = 2;
    o.min_crash_ms = 800;
    o.max_crash_ms = 4000;
    o.max_partitions = 2;
    o.min_partition_ms = 1500;
    o.max_partition_ms = 5000;
    o.max_degrades = 2;
    o.min_degrade_ms = 1500;
    o.max_degrade_ms = 6000;
    return o;
  }

 private:
  ScenarioOptions options_;
  std::vector<std::string> peers_;
};

// --- BOOM-FS: Overlog NameNode + DataNode churn + random metadata/data workload ---

class BoomFsScenario : public ChaosScenario {
 public:
  explicit BoomFsScenario(ScenarioOptions options) : options_(std::move(options)) {
    for (int i = 0; i < kNumDataNodes; ++i) {
      datanodes_.push_back(nn_ + "_dn" + std::to_string(i));
    }
  }

  std::string name() const override { return "boomfs"; }

  void Setup(Cluster& cluster, uint64_t seed) override {
    NnProgramOptions prog;
    prog.replication_factor = 3;
    prog.heartbeat_timeout_ms = 1200;
    prog.failure_check_period_ms = 400;
    Program program = options_.nn_program_override.has_value()
                          ? *options_.nn_program_override
                          : BoomFsNnProgram(prog);
    if (options_.bug == "resurrect") {
      // Without the tombstone protocol a DataNode that missed the rm-time dn_delete
      // resurrects the chunk's location on its next full report, and never drops the bytes.
      StripRule(&program, "rm9");
      StripRule(&program, "hb3");
      StripRule(&program, "hb4");
    }
    cluster.AddOverlogNode(nn_, [program](Engine& engine) {
      Status status = engine.Install(program);
      BOOM_CHECK(status.ok()) << status.ToString();
    });
    for (const std::string& dn : datanodes_) {
      DataNodeOptions dn_opts;
      dn_opts.namenode = nn_;
      dn_opts.heartbeat_period_ms = 300;
      dn_opts.full_report_every = 4;
      // serve-corrupt: rotted replicas are served with a freshly recomputed checksum, so
      // only the end-to-end read oracle can catch them.
      dn_opts.verify_reads = options_.bug != "serve-corrupt";
      cluster.AddActor(std::make_unique<DataNode>(dn, dn_opts));
    }
    FsClientOptions client_opts;
    client_opts.namenode = nn_;
    client_opts.chunk_size = 24;  // small files still span several chunks
    auto client = std::make_unique<FsClient>(client_, client_opts);
    FsClient* client_ptr = client.get();
    cluster.AddActor(std::move(client));

    auto work = std::make_shared<Work>(seed);
    for (double t = 1500; t < horizon_ms() - 1000; t += 250) {
      cluster.ScheduleAt(t, [&cluster, client_ptr, work] {
        Step(cluster, client_ptr, work);
      });
    }
    checkers_.push_back(std::make_unique<BoomFsInvariantChecker>(
        nn_, datanodes_, client_ptr, work->model, /*replication_factor=*/3));
    checkers_.push_back(std::make_unique<BoomFsReadIntegrityChecker>(work->reads));
  }

  FaultGenOptions FaultProfile() const override {
    FaultGenOptions o;
    o.horizon_ms = horizon_ms();
    // Only the data plane degrades: the client <-> NameNode path models a reliable local
    // connection (namespace requests are not idempotent and have no retry protocol).
    o.killable = datanodes_;
    o.partitionable = datanodes_;
    o.all_nodes = datanodes_;
    o.all_nodes.push_back(nn_);
    o.all_nodes.push_back(client_);
    for (const std::string& dn : datanodes_) {
      o.degradable_links.push_back({nn_, dn});
    }
    o.max_crashes = 3;
    o.min_crash_ms = 800;
    o.max_crash_ms = 4000;
    o.max_partitions = 2;
    o.min_partition_ms = 1500;
    o.max_partition_ms = 5000;
    o.max_degrades = 3;
    o.min_degrade_ms = 1500;
    o.max_degrade_ms = 6000;
    // Storage faults: replicas rot at rest or the disk slows down. Checksums + quarantine
    // + re-replication must absorb these, so they are squarely inside the envelope.
    o.corruptible = datanodes_;
    o.max_corruptions = 2;
    o.max_slow_disks = 2;
    o.corrupt_avoids_partitions = true;
    // Gray DataNodes (alive and heartbeating but slow to serve) and staggered rolling
    // restarts of the DataNode fleet: checksummed read failover and re-replication must
    // ride both out. No clock skew — the NameNode's failure detector is the only clock
    // that matters here and skewing it is indistinguishable from tuning its timeout.
    o.grayable = datanodes_;
    o.max_grays = 1;
    o.rollable = datanodes_;
    o.max_rolling_restarts = 1;
    o.rolling_down_ms = 800;  // quick bounces: replication must not collapse to a single
                              // copy while a partition is also in force (durability needs
                              // one intact replica to re-replicate from)
    return o;
  }

 private:
  static constexpr int kNumDataNodes = 5;

  struct Work {
    explicit Work(uint64_t seed)
        : rng(seed ^ 0xABCDEF0123456789ULL),
          model(std::make_shared<FsModel>()),
          reads(std::make_shared<FsReadLog>()) {}
    Rng rng;
    std::shared_ptr<FsModel> model;
    std::shared_ptr<FsReadLog> reads;
    std::set<std::string> in_flight;  // paths with a pending rm (never double-issue)
    int next_dir = 0;
    int next_file = 0;
  };

  static void Step(Cluster& cluster, FsClient* client, std::shared_ptr<Work> work) {
    auto& m = *work->model;
    std::vector<std::string> dirs = {""};  // "" = the root as a parent prefix
    for (const auto& [path, entry] : m.acked) {
      if (entry.is_dir) {
        dirs.push_back(path);
      }
    }
    auto pick_dir = [&] {
      return dirs[static_cast<size_t>(
          work->rng.UniformInt(0, static_cast<int64_t>(dirs.size()) - 1))];
    };
    double r = work->rng.Uniform(0, 1);
    if (r < 0.2) {
      std::string path = "/d" + std::to_string(work->next_dir++);
      client->Mkdir(cluster, path, [&cluster, work, path](bool ok, const Value&) {
        if (ok) {
          work->model->acked[path] = {true, cluster.now()};
        }
      });
    } else if (r < 0.5) {
      std::string path = pick_dir() + "/f" + std::to_string(work->next_file++);
      client->CreateFile(cluster, path, [&cluster, work, path](bool ok, const Value&) {
        if (ok) {
          work->model->acked[path] = {false, cluster.now()};
        }
      });
    } else if (r < 0.7) {
      std::string path = pick_dir() + "/w" + std::to_string(work->next_file++);
      std::string data;
      while (data.size() < 60) {
        data += path + "|";
      }
      client->WriteFile(cluster, path, data, [&cluster, work, path, data](bool ok) {
        if (ok) {
          work->model->acked[path] = {false, cluster.now()};
          work->model->contents[path] = data;
        }
      });
    } else if (r < 0.85) {
      // Read back an acked write and record it against the oracle bytes captured now
      // (contents are immutable per path: no overwrites, rm'd paths never reused).
      std::vector<std::string> candidates;
      for (const auto& [path, data] : m.contents) {
        if (!work->in_flight.count(path)) {
          candidates.push_back(path);
        }
      }
      if (candidates.empty()) {
        return;
      }
      std::string path = candidates[static_cast<size_t>(
          work->rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
      size_t idx = work->reads->size();
      work->reads->push_back({path, m.contents[path], cluster.now(), -1, false, ""});
      client->ReadFile(cluster, path,
                       [&cluster, work, idx](bool ok, const std::string& data) {
                         FsReadRecord& rec = (*work->reads)[idx];
                         rec.done_ms = cluster.now();
                         rec.ok = ok;
                         rec.got = data;
                       });
    } else {
      std::vector<std::string> victims;
      for (const auto& [path, entry] : m.acked) {
        if (!entry.is_dir && !work->in_flight.count(path)) {
          victims.push_back(path);
        }
      }
      if (victims.empty()) {
        return;
      }
      std::string path = victims[static_cast<size_t>(
          work->rng.UniformInt(0, static_cast<int64_t>(victims.size()) - 1))];
      work->in_flight.insert(path);
      client->Rm(cluster, path, [&cluster, work, path](bool ok, const Value&) {
        work->in_flight.erase(path);
        if (ok) {
          work->model->acked.erase(path);
          work->model->contents.erase(path);
          work->model->removed[path] = cluster.now();
        }
      });
    }
  }

  ScenarioOptions options_;
  std::string nn_ = "nn";
  std::string client_ = "nn_client";
  std::vector<std::string> datanodes_;
};

// --- BOOM-MR: Overlog JobTracker + TaskTracker churn + a stream of jobs ---

class BoomMrScenario : public ChaosScenario {
 public:
  explicit BoomMrScenario(ScenarioOptions options) : options_(std::move(options)) {
    for (int i = 0; i < kNumTrackers; ++i) {
      trackers_.push_back(jt_ + "_tt" + std::to_string(i));
    }
  }

  std::string name() const override { return "boommr"; }
  double default_horizon_ms() const override { return 22000; }
  double default_settle_ms() const override { return 20000; }

  void Setup(Cluster& cluster, uint64_t /*seed*/) override {
    MrSetupOptions opts;
    opts.kind = MrKind::kBoomMr;
    opts.jobtracker = jt_;
    opts.num_trackers = kNumTrackers;
    opts.map_slots = 2;
    opts.reduce_slots = 2;
    if (options_.bug == "limplock") {
      // Strip the per-attempt timeout (x5-x7): the only defense against a gray tracker
      // whose attempts run orders of magnitude slow. The dead-tracker detector (x1-x4)
      // never fires — a limplocked node heartbeats on time — so a stuck attempt is
      // re-queued by nothing and its job never completes.
      Program program = options_.jt_program_override.has_value()
                            ? *options_.jt_program_override
                            : BoomMrJtProgram({});
      StripRule(&program, "x5");
      StripRule(&program, "x6");
      StripRule(&program, "x7");
      opts.jt_program_override = std::move(program);
    } else {
      opts.jt_program_override = options_.jt_program_override;
    }
    MrHandles handles = SetupMr(cluster, opts);
    MrClient* client = handles.client;
    data_plane_ = handles.data_plane;

    auto log = std::make_shared<MrWorkloadLog>();
    for (double t = 1000; t < horizon_ms() - 4000; t += 5000) {
      cluster.ScheduleAt(t, [&cluster, client, log] {
        JobSpec spec;
        spec.job_id = client->NextJobId();
        spec.client = client->address();
        spec.num_maps = 6;
        spec.num_reduces = 3;
        spec.duration_ms = [](const TaskRef& task, const std::string&) {
          return 150.0 + ((task.job_id * 31 + task.task_id * 17) % 5) * 40.0;
        };
        log->submitted.push_back(spec.job_id);
        log->job_shape[spec.job_id] = {spec.num_maps, spec.num_reduces};
        client->Submit(cluster, std::move(spec), [](double) {});
      });
    }
    checkers_.push_back(std::make_unique<BoomMrExactlyOnceChecker>(data_plane_, log));
    checkers_.push_back(std::make_unique<BoomMrCompletionChecker>(data_plane_, log));
  }

  FaultGenOptions FaultProfile() const override {
    FaultGenOptions o;
    o.horizon_ms = horizon_ms();
    o.killable = trackers_;
    o.partitionable = trackers_;
    o.all_nodes = trackers_;
    o.all_nodes.push_back(jt_);
    o.all_nodes.push_back(jt_ + "_client");
    for (const std::string& tt : trackers_) {
      o.degradable_links.push_back({jt_, tt});
    }
    // Control-plane messages (assignments, completions) have no retransmit protocol, so
    // like the real deployment they assume TCP: only latency spikes degrade the links.
    // Partitions outlast the JobTracker's 3s tracker timeout so reassignment fires.
    o.allow_drop = false;
    o.allow_dup = false;
    o.allow_reorder = false;
    o.max_crashes = 3;
    o.min_crash_ms = 1000;
    o.max_crash_ms = 4000;
    o.max_partitions = 2;
    o.min_partition_ms = 4000;
    o.max_partition_ms = 6000;
    o.max_degrades = 2;
    o.min_degrade_ms = 1500;
    o.max_degrade_ms = 6000;
    // Gray failures on trackers (the limplock the attempt timeout exists for), a signed
    // clock-skew window on the JobTracker (its failure detectors must stay safe when
    // f_now() jumps), and one staggered rolling restart of the tracker fleet.
    o.grayable = trackers_;
    o.max_grays = 1;
    o.skewable = {jt_};
    o.max_clock_skews = 1;
    o.rollable = trackers_;
    o.max_rolling_restarts = 1;
    return o;
  }

 private:
  static constexpr int kNumTrackers = 5;

  ScenarioOptions options_;
  std::string jt_ = "jt";
  std::vector<std::string> trackers_;
  std::shared_ptr<MrDataPlane> data_plane_;
};

// --- Tenancy: the multi-tenant open-loop production workload under mild faults ---
//
// Three tenants with skewed traffic shares drive the fair-share JobTracker while one
// tracker crashes and another limps through a mild gray window (factors small enough that
// the attempt timeout never needs to fire). The point is that the *scheduling guarantee*
// must degrade gracefully: jobs still complete exactly once, and no tenant with pending
// demand is starved while another over-consumes.

class TenancyChaosScenario : public ChaosScenario {
 public:
  explicit TenancyChaosScenario(ScenarioOptions options) : options_(std::move(options)) {
    for (int i = 0; i < kNumTrackers; ++i) {
      trackers_.push_back(jt_ + "_tt" + std::to_string(i));
    }
  }

  std::string name() const override { return "tenancy"; }
  double default_horizon_ms() const override { return 20000; }
  double default_settle_ms() const override { return 30000; }

  void Setup(Cluster& cluster, uint64_t seed) override {
    TenancyOptions opts;
    opts.policy = MrPolicy::kFairShare;
    opts.jobtracker = jt_;
    opts.num_trackers = kNumTrackers;
    opts.map_slots = 2;
    opts.reduce_slots = 1;
    opts.seed = seed;
    opts.horizon_ms = horizon_ms() - 5000;   // arrivals stop early so the queue can drain
    opts.mean_interarrival_ms = 450;         // near saturation, not over it: completion is
    opts.num_clients = 100000;               // part of the contract under faults
    auto log = std::make_shared<MrWorkloadLog>();
    int num_maps = opts.maps_per_job;
    int num_reduces = opts.reduces_per_job;
    opts.on_submit = [log, num_maps, num_reduces](int64_t job_id, int /*tenant*/) {
      log->submitted.push_back(job_id);
      log->job_shape[job_id] = {num_maps, num_reduces};
    };
    workload_ = std::make_unique<TenancyWorkload>(cluster, opts);
    std::shared_ptr<MrDataPlane> data_plane = workload_->handles().data_plane;
    checkers_.push_back(std::make_unique<BoomMrExactlyOnceChecker>(data_plane, log));
    checkers_.push_back(std::make_unique<BoomMrCompletionChecker>(data_plane, log));
    checkers_.push_back(std::make_unique<BoomMrFairnessChecker>(
        data_plane, opts.num_tenants, opts.maps_per_job + opts.reduces_per_job,
        kNumTrackers * (opts.map_slots + opts.reduce_slots)));
  }

  FaultGenOptions FaultProfile() const override {
    FaultGenOptions o;
    o.horizon_ms = horizon_ms();
    o.killable = trackers_;
    o.all_nodes = trackers_;
    o.all_nodes.push_back(jt_);
    o.all_nodes.push_back(jt_ + "_client");
    for (int t = 1; t < 3; ++t) {
      o.all_nodes.push_back(jt_ + "_client_t" + std::to_string(t));
    }
    o.allow_drop = false;
    o.allow_dup = false;
    o.allow_reorder = false;
    o.max_crashes = 1;
    o.min_crash_ms = 1000;
    o.max_crash_ms = 3000;
    o.max_partitions = 0;
    o.max_degrades = 0;
    o.grayable = trackers_;
    o.max_grays = 1;
    o.min_gray_factor = 2;  // mild: inflated attempts stay under the attempt timeout
    o.max_gray_factor = 8;
    return o;
  }

 private:
  static constexpr int kNumTrackers = 5;

  ScenarioOptions options_;
  std::string jt_ = "jt";
  std::vector<std::string> trackers_;
  std::unique_ptr<TenancyWorkload> workload_;
};

// --- Overload: open-loop FS-metadata traffic, a mid-run burst past NameNode capacity,
// --- and the admission gateway + retry budgets that must keep the collapse metastable-
// --- free. The only random faults are mild gray windows on the NameNode itself: the
// --- burst is the trigger, the gray window composes with it.
//
// The "retry-storm" bug variant strips the gateway's shed rules (ady1/ady2) and removes
// the client retry budget + retry-after hint: requests queue unboundedly at the
// NameNode, time out, and the unbudgeted retry stream replaces the burst as the
// sustaining load — goodput stays collapsed after the trigger clears, which the
// GoodputRecoveryChecker flags (and the explorer shrinks the fault schedule to show the
// workload alone reproduces it).

class OverloadScenario : public ChaosScenario {
 public:
  explicit OverloadScenario(ScenarioOptions options) : options_(std::move(options)) {
    for (int i = 0; i < kNumDataNodes; ++i) {
      datanodes_.push_back(nn_ + "_dn" + std::to_string(i));
    }
    for (int t = 0; t < kNumTenants; ++t) {
      clients_.push_back(nn_ + "_client_t" + std::to_string(t));
    }
  }

  std::string name() const override { return "overload"; }
  double default_horizon_ms() const override { return 30000; }
  double default_settle_ms() const override { return 10000; }

  void Setup(Cluster& cluster, uint64_t seed) override {
    FsLoadOptions opts;
    opts.namenode = nn_;
    opts.num_datanodes = kNumDataNodes;
    opts.num_tenants = kNumTenants;
    opts.seed = seed;
    opts.horizon_ms = horizon_ms();
    // ~250 ops/s offered against a 625 ops/s NameNode (1.6ms serial service); the burst
    // alone exceeds capacity, everything else has headroom.
    opts.service_ms_per_request = 1.6;
    opts.mean_interarrival_ms = 4.0;
    opts.burst_factor = kBurstFactor;
    opts.burst_start_ms = kBurstStartMs;
    opts.burst_end_ms = kBurstEndMs;
    opts.with_admission = true;
    // Brownout (backlog-triggered read-only degradation) is the mechanism under test;
    // park the per-tenant write quota far above any rate this run can reach.
    opts.gateway.tenant_quota = 1000000;
    opts.gateway.queue_bound_ms = 400;
    opts.gateway.retry_after_ms = 500;
    // The recovering configuration: budgeted retries, full jitter, honored hints.
    opts.retry_budget_cap = 16;
    opts.retry_budget_refill = 0.2;
    opts.honor_retry_after = true;
    opts.full_jitter = true;
    if (options_.bug == "retry-storm") {
      // Gateway becomes a pass-through: same topology, no shedding. Clients lose the
      // budget (cap 0 = unbounded) and ignore retry-after hints — the pre-PR behaviour.
      GatewayOptions gw = opts.gateway;
      gw.namenode = nn_;
      for (int t = 0; t < kNumTenants; ++t) {
        gw.client_tenants.emplace_back(clients_[static_cast<size_t>(t)],
                                       static_cast<int64_t>(t));
      }
      Program program = BoomFsGatewayProgram(gw);
      StripRule(&program, "ady1");
      StripRule(&program, "ady2");
      opts.gateway_program_override = std::move(program);
      opts.retry_budget_cap = 0;
      opts.honor_retry_after = false;
      opts.max_op_retries = 6;
    }
    workload_ = std::make_unique<FsLoadWorkload>(cluster, std::move(opts));
    FsLoadWorkload* w = workload_.get();
    checkers_.push_back(std::make_unique<GoodputRecoveryChecker>(
        [w](double t0, double t1) { return w->GoodputBetween(t0, t1); },
        /*pre_t0_ms=*/4000, /*pre_t1_ms=*/kBurstStartMs,
        /*post_t0_ms=*/kBurstEndMs + 6000, /*post_t1_ms=*/horizon_ms() - 1000,
        /*min_ratio=*/0.9));
  }

  FaultGenOptions FaultProfile() const override {
    FaultGenOptions o;
    o.horizon_ms = horizon_ms();
    o.all_nodes = datanodes_;
    o.all_nodes.push_back(nn_);
    o.all_nodes.push_back(nn_ + "_gw");
    for (const std::string& c : clients_) {
      o.all_nodes.push_back(c);
    }
    // No crashes/partitions/degrades: the overload trigger lives in the workload itself.
    // The random dimension is a mild gray window on the NameNode — capacity dips but
    // stays above the steady offered load, so only its composition with the burst bites.
    o.max_crashes = 0;
    o.max_partitions = 0;
    o.max_degrades = 0;
    o.grayable = {nn_};
    o.max_grays = 1;
    o.min_gray_factor = 1.2;
    o.max_gray_factor = 1.8;
    return o;
  }

 private:
  static constexpr int kNumDataNodes = 3;
  static constexpr int kNumTenants = 3;
  static constexpr double kBurstFactor = 4.0;   // 4x offered = ~1.6x capacity
  static constexpr double kBurstStartMs = 10000;
  static constexpr double kBurstEndMs = 14000;

  ScenarioOptions options_;
  std::string nn_ = "nn";
  std::vector<std::string> datanodes_;
  std::vector<std::string> clients_;
  std::unique_ptr<FsLoadWorkload> workload_;
};

// --- Federation: partitioned + Paxos-replicated NameNode groups under replica churn ---
//
// Two groups of three replicas serve an 8-partition namespace behind the partition-map
// service while clients churn files (create/exists/rename/delete, renames deliberately
// cross-directory so the two-phase xr protocol fires) and, mid-run, partition 0 is
// migrated to the other group (StartRebalance) — the split-during-churn composition. The
// random faults are crashes and partitions of NameNode REPLICAS only: the contract under
// test is that group failover and the migration protocol never lose, duplicate, or
// resurrect an acknowledged namespace entry (FedNamespaceChecker) and that routing epochs
// only ever move forward (FedEpochChecker).
//
// The "split-rename" bug variant strips the xr_commit delete rules (xc2/xc3): a committed
// cross-partition rename acks the client but leaves the source entry behind, so renamed-
// away paths resurface and migrated files end up present in two groups.

class FederationScenario : public ChaosScenario {
 public:
  explicit FederationScenario(ScenarioOptions options) : options_(std::move(options)) {
    for (int g = 0; g < kNumGroups; ++g) {
      for (int r = 0; r < kReplicasPerGroup; ++r) {
        replicas_.push_back(prefix_ + "_g" + std::to_string(g) + "r" + std::to_string(r));
      }
    }
    for (int i = 0; i < kNumDataNodes; ++i) {
      datanodes_.push_back(prefix_ + "_dn" + std::to_string(i));
    }
  }

  std::string name() const override { return "federation"; }

  void Setup(Cluster& cluster, uint64_t seed) override {
    FederatedFsOptions opts;
    opts.num_groups = kNumGroups;
    opts.replicas_per_group = kReplicasPerGroup;
    opts.num_partitions = kNumPartitions;
    opts.prefix = prefix_;
    opts.num_datanodes = kNumDataNodes;
    opts.num_clients = kNumClients;
    if (options_.bug == "split-rename") {
      opts.federation_strip_rules = {"xc2", "xc3"};
    }
    handles_ = SetupFederatedFs(cluster, opts);

    auto model = std::make_shared<FedModel>();
    model->num_partitions = kNumPartitions;
    model->pmap = handles_.pmap;
    model->groups = handles_.groups;
    auto work = std::make_shared<FedWork>(seed, model);

    // Pre-made working directories: twelve roots spread over the eight partitions, so
    // cross-directory renames usually cross partitions (and often cross groups).
    for (int d = 0; d < 12; ++d) {
      std::string dir = "/d" + std::to_string(d);
      cluster.ScheduleAt(700 + d * 40, [this, &cluster, work, dir] {
        FsClient* client = NextClient(work);
        client->Mkdir(cluster, dir, [work, dir](bool ok, const Value&) {
          if (ok) {
            work->model->live[dir] = true;
          } else {
            work->model->uncertain.insert(dir);
          }
        });
      });
    }
    for (double t = 1500; t < horizon_ms() - 1000; t += 250) {
      cluster.ScheduleAt(t, [this, &cluster, work] { Step(cluster, work); });
    }

    // Mid-run migration: partition 0 moves to the other group while the churn continues.
    // An aborted migration (leader churn can exhaust the per-op retries) leaves committed
    // destination entries orphaned from the routed namespace, so its partition's paths
    // stop carrying obligations.
    cluster.ScheduleAt(horizon_ms() * 0.45, [this, &cluster, work] {
      FedRebalanceOptions reb;
      reb.pmap = handles_.pmap;
      int source = handles_.pid_group[0];
      reb.source = handles_.groups[static_cast<size_t>(source)];
      reb.dest = handles_.groups[static_cast<size_t>(1 - source)];
      reb.pid = 0;
      reb.num_partitions = kNumPartitions;
      reb.admin = handles_.admin;
      StartRebalance(cluster, reb, [work](bool ok) {
        if (!ok) {
          work->model->uncertain_pids.insert(0);
        }
      });
    });

    checkers_.push_back(std::make_unique<FedEpochChecker>(model));
    checkers_.push_back(std::make_unique<FedNamespaceChecker>(model));
  }

  FaultGenOptions FaultProfile() const override {
    FaultGenOptions o;
    o.horizon_ms = horizon_ms();
    // Only NameNode replicas fault: the contract is that Paxos failover inside a group and
    // the epoch protocol across groups absorb replica loss. The map service, DataNodes,
    // and clients stay up (faulting the sole routing authority is a different experiment).
    o.killable = replicas_;
    o.partitionable = replicas_;
    o.all_nodes = replicas_;
    o.all_nodes.push_back(prefix_ + "_pmap");
    o.all_nodes.push_back(prefix_ + "_admin");
    for (const std::string& dn : datanodes_) {
      o.all_nodes.push_back(dn);
    }
    for (int i = 0; i < kNumClients; ++i) {
      o.all_nodes.push_back(prefix_ + "_client" + std::to_string(i));
    }
    // The replicated intake assumes TCP links (like the Paxos scenario): crashes and
    // partitions are the faults under test, not message loss.
    o.allow_drop = false;
    o.allow_dup = false;
    o.allow_reorder = false;
    o.max_crashes = 2;
    o.min_crash_ms = 800;
    o.max_crash_ms = 4000;
    o.max_partitions = 1;
    o.min_partition_ms = 1500;
    o.max_partition_ms = 4000;
    o.max_degrades = 0;
    return o;
  }

 private:
  static constexpr int kNumGroups = 2;
  static constexpr int kReplicasPerGroup = 3;
  static constexpr int kNumPartitions = 8;
  static constexpr int kNumDataNodes = 4;
  static constexpr int kNumClients = 2;

  struct FedWork {
    FedWork(uint64_t seed, std::shared_ptr<FedModel> m)
        : rng(seed ^ 0xFEDFEDFED0123ULL), model(std::move(m)) {}
    Rng rng;
    std::shared_ptr<FedModel> model;
    std::set<std::string> busy;  // paths with a pending rename/delete (never double-issue)
    int next_file = 0;
    int next_client = 0;
  };

  FsClient* NextClient(const std::shared_ptr<FedWork>& work) {
    return handles_.clients[static_cast<size_t>(work->next_client++) %
                            handles_.clients.size()];
  }

  void Step(Cluster& cluster, std::shared_ptr<FedWork> work) {
    auto& m = *work->model;
    std::vector<std::string> dirs;
    for (const auto& [path, is_dir] : m.live) {
      if (is_dir && !m.uncertain.count(path)) {
        dirs.push_back(path);
      }
    }
    if (dirs.empty()) {
      return;  // mkdirs still in flight
    }
    auto pick = [&work](const std::vector<std::string>& from) {
      return from[static_cast<size_t>(
          work->rng.UniformInt(0, static_cast<int64_t>(from.size()) - 1))];
    };
    std::vector<std::string> files;
    for (const auto& [path, is_dir] : m.live) {
      if (!is_dir && !m.uncertain.count(path) && !work->busy.count(path)) {
        files.push_back(path);
      }
    }
    FsClient* client = NextClient(work);
    double r = work->rng.Uniform(0, 1);
    if (r < 0.45 || files.empty()) {
      std::string path = pick(dirs) + "/f" + std::to_string(work->next_file++);
      client->CreateFile(cluster, path, [work, path](bool ok, const Value&) {
        if (ok) {
          work->model->live[path] = false;
        } else {
          work->model->uncertain.insert(path);
        }
      });
    } else if (r < 0.6) {
      client->Exists(cluster, pick(files), [](bool, const Value&) {});
    } else if (r < 0.8) {
      // Rename into a different directory: under the dirname routing this is usually a
      // cross-partition move, exercising the xr two-phase protocol under faults.
      std::string src = pick(files);
      std::string dst = pick(dirs) + "/r" + std::to_string(work->next_file++);
      work->busy.insert(src);
      client->Rename(cluster, src, dst, [work, src, dst](bool ok, const Value&) {
        work->busy.erase(src);
        if (ok) {
          work->model->live.erase(src);
          work->model->gone.insert(src);
          work->model->live[dst] = false;
        } else {
          // Unknown outcome: the intent/commit may have applied without the ack landing.
          work->model->uncertain.insert(src);
          work->model->uncertain.insert(dst);
        }
      });
    } else {
      std::string path = pick(files);
      work->busy.insert(path);
      client->Rm(cluster, path, [work, path](bool ok, const Value&) {
        work->busy.erase(path);
        if (ok) {
          work->model->live.erase(path);
          work->model->gone.insert(path);
        } else {
          work->model->uncertain.insert(path);
        }
      });
    }
  }

  ScenarioOptions options_;
  std::string prefix_ = "fed";
  std::vector<std::string> replicas_;
  std::vector<std::string> datanodes_;
  FederatedFsHandles handles_;
};

}  // namespace

namespace {

bool KnownBug(const std::string& scenario, const std::string& bug) {
  if (bug.empty()) {
    return true;
  }
  std::vector<std::string> known = ScenarioBugNames(scenario);
  return std::find(known.begin(), known.end(), bug) != known.end();
}

}  // namespace

std::vector<std::string> ScenarioBugNames(const std::string& scenario) {
  if (scenario == "paxos") {
    return {"quorum1", "amnesia"};
  }
  if (scenario == "boomfs") {
    return {"resurrect", "serve-corrupt"};
  }
  if (scenario == "boommr") {
    return {"limplock"};
  }
  if (scenario == "overload") {
    return {"retry-storm"};
  }
  if (scenario == "federation") {
    return {"split-rename"};
  }
  return {};  // the tenancy scenario has no bug variants
}

std::unique_ptr<ChaosScenario> MakeScenario(const std::string& name,
                                            const ScenarioOptions& options) {
  // Rejecting unknown bug names matters: a typo'd --bug would otherwise sweep the
  // *correct* implementation and report it green under the misspelled bug's banner.
  if (!KnownBug(name, options.bug)) {
    return nullptr;
  }
  if (name == "paxos") {
    return std::make_unique<PaxosScenario>(options);
  }
  if (name == "boomfs") {
    return std::make_unique<BoomFsScenario>(options);
  }
  if (name == "boommr") {
    return std::make_unique<BoomMrScenario>(options);
  }
  if (name == "tenancy") {
    return std::make_unique<TenancyChaosScenario>(options);
  }
  if (name == "overload") {
    return std::make_unique<OverloadScenario>(options);
  }
  if (name == "federation") {
    return std::make_unique<FederationScenario>(options);
  }
  return nullptr;
}

std::vector<std::string> ScenarioNames() {
  return {"paxos", "boomfs", "boommr", "tenancy", "overload", "federation"};
}

}  // namespace boom
