#include "src/chaos/runner.h"

#include <set>

#include "src/chaos/trace.h"

namespace boom {

ChaosRunResult RunChaosOnce(ChaosScenario& scenario, uint64_t seed,
                            const FaultSchedule& schedule,
                            const ChaosRunOptions& options) {
  double horizon =
      options.horizon_ms > 0 ? options.horizon_ms : scenario.default_horizon_ms();
  double settle = options.settle_ms > 0 ? options.settle_ms : scenario.default_settle_ms();
  scenario.set_horizon_ms(horizon);

  ClusterOptions copts;
  copts.worker_threads = options.worker_threads;
  copts.enable_engine_optimizer = options.enable_engine_optimizer;
  Cluster cluster(seed, copts);
  if (options.tracer != nullptr) {
    cluster.set_tracer(options.tracer);
  }
  TraceRecorder recorder;
  if (options.record_trace) {
    recorder.Attach(cluster);
  }
  scenario.Setup(cluster, seed);
  ApplySchedule(cluster, schedule, scenario.FreshStateOnRestart());

  ChaosRunResult result;
  std::set<std::string> seen;
  auto run_checkers = [&](bool final_check) {
    for (const auto& checker : scenario.checkers()) {
      std::vector<std::string> found;
      checker->Check(cluster, final_check, &found);
      for (std::string& v : found) {
        std::string line = "[" + checker->name() + "] " + std::move(v);
        if (seen.insert(line).second) {
          result.violations.push_back(std::move(line));
        }
      }
    }
  };

  for (double t = options.check_period_ms; t < horizon; t += options.check_period_ms) {
    cluster.RunUntil(t);
    run_checkers(/*final_check=*/false);
  }
  cluster.RunUntil(horizon);
  HealAll(cluster, scenario.FaultProfile().all_nodes, scenario.FreshStateOnRestart());
  cluster.RunUntil(horizon + settle);
  run_checkers(/*final_check=*/true);

  result.passed = result.violations.empty();
  result.end_ms = cluster.now();
  if (options.record_trace) {
    result.trace = recorder.lines();
  }
  return result;
}

}  // namespace boom
