#include "src/base/thread_pool.h"

namespace boom {

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Participate(BatchState& state) {
  size_t completed = 0;
  size_t i;
  while ((i = state.next.fetch_add(1, std::memory_order_relaxed)) < state.n) {
    (*state.task)(i);
    ++completed;
  }
  if (completed > 0 &&
      state.done.fetch_add(completed, std::memory_order_acq_rel) + completed == state.n) {
    // Last task of the batch: wake the caller. The lock orders the notify against the
    // caller's predicate check so the wakeup cannot be lost.
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_broadcast = 0;
  std::shared_ptr<BatchState> seen_batch;
  while (true) {
    std::shared_ptr<BatchState> state;
    const std::function<void()>* broadcast = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || broadcast_gen_ != seen_broadcast ||
               (batch_ != seen_batch && batch_ != nullptr);
      });
      if (stop_) {
        return;
      }
      if (broadcast_gen_ != seen_broadcast) {
        seen_broadcast = broadcast_gen_;
        broadcast = broadcast_fn_;
      } else {
        seen_batch = batch_;
        state = batch_;
      }
    }
    if (broadcast != nullptr) {
      (*broadcast)();
      std::lock_guard<std::mutex> lock(mu_);
      if (++broadcast_done_ == threads_.size()) {
        done_cv_.notify_all();
      }
      continue;
    }
    Participate(*state);
  }
}

void ThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) {
    return;
  }
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      task(i);
    }
    return;
  }
  auto state = std::make_shared<BatchState>();
  state->task = &task;
  state->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = state;
  }
  work_cv_.notify_all();
  Participate(*state);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return state->done.load(std::memory_order_acquire) == state->n; });
  batch_ = nullptr;
}

void ThreadPool::Broadcast(const std::function<void()>& fn) {
  if (threads_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    broadcast_fn_ = &fn;
    ++broadcast_gen_;
    broadcast_done_ = 0;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return broadcast_done_ == threads_.size(); });
  broadcast_fn_ = nullptr;
}

}  // namespace boom
