#include "src/base/status.h"

namespace boom {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace boom
