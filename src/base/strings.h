// Small string utilities shared across the codebase.

#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace boom {

// Splits `s` on `sep`, keeping empty fields ("a//b" -> {"a", "", "b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Splits `s` on `sep`, dropping empty fields ("/a//b/" -> {"a", "b"}).
std::vector<std::string> StrSplitSkipEmpty(std::string_view s, char sep);

// Joins `parts` with `sep` between each pair.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// 64-bit FNV-1a hash; stable across platforms, used for partition routing.
uint64_t Fnv1a64(std::string_view s);

// POSIX-style path helpers used by the filesystem layers.
// Joins "/a" + "b" -> "/a/b"; handles the root directory without doubling slashes.
std::string PathJoin(std::string_view dir, std::string_view name);
// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string PathDirname(std::string_view path);
// "/a/b/c" -> "c"; "/" -> "".
std::string PathBasename(std::string_view path);
// Splits "/a/b/c" into {"a", "b", "c"}.
std::vector<std::string> PathComponents(std::string_view path);

}  // namespace boom

#endif  // SRC_BASE_STRINGS_H_
