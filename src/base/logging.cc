#include "src/base/logging.h"

#include <cstdlib>
#include <iostream>

namespace boom {

namespace {

LogLevel g_level = [] {
  if (const char* env = std::getenv("BOOM_LOG_LEVEL")) {
    std::string v(env);
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warning") return LogLevel::kWarning;
    if (v == "error") return LogLevel::kError;
  }
  return LogLevel::kWarning;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace boom
