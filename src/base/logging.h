// Minimal leveled logging. Streams to stderr; level filtered by BOOM_LOG_LEVEL env var or
// SetLogLevel(). Usage: BOOM_LOG(INFO) << "started " << n << " nodes";

#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace boom {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: one log statement; flushes on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Discards the streamed expression without evaluating the stream chain eagerly.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

#define BOOM_LOG(severity)                                                      \
  (::boom::LogLevel::k##severity < ::boom::GetLogLevel())                       \
      ? (void)0                                                                 \
      : ::boom::LogVoidify() &                                                  \
            ::boom::LogMessage(::boom::LogLevel::k##severity, __FILE__, __LINE__).stream()

#define BOOM_CHECK(cond)                                                        \
  (cond) ? (void)0                                                              \
         : ::boom::LogVoidify() &                                               \
               ::boom::LogMessage(::boom::LogLevel::kFatal, __FILE__, __LINE__).stream() \
                   << "Check failed: " #cond " "

// Helper that swallows the stream expression so BOOM_LOG can be used as a statement.
class LogVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace boom

#endif  // SRC_BASE_LOGGING_H_
