#include "src/base/strings.h"

#include <cctype>

namespace boom {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> StrSplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : StrSplit(s, sep)) {
    if (!part.empty()) {
      out.push_back(std::move(part));
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string PathJoin(std::string_view dir, std::string_view name) {
  if (dir.empty()) {
    return std::string(name);
  }
  std::string out(dir);
  if (out.back() != '/') {
    out.push_back('/');
  }
  out.append(name);
  return out;
}

std::string PathDirname(std::string_view path) {
  if (path.empty() || path == "/") {
    return "/";
  }
  size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos) {
    return ".";
  }
  if (pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string PathBasename(std::string_view path) {
  if (path.empty() || path == "/") {
    return "";
  }
  size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos) {
    return std::string(path);
  }
  return std::string(path.substr(pos + 1));
}

std::vector<std::string> PathComponents(std::string_view path) {
  return StrSplitSkipEmpty(path, '/');
}

}  // namespace boom
