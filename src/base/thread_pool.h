// ThreadPool: a fixed-size worker pool for deterministic fork-join parallelism.
//
// The pool runs *batches*: RunBatch(n, task) executes task(0..n-1) across the workers and
// the calling thread, returning only when every index has completed. There is no general
// task queue and no futures — the caller always blocks on the whole batch, which is exactly
// the structure the simulator (per-node engine ticks of one timestamp) and the engine
// (independent rules of one fixpoint round) need: all side effects are merged by the caller
// afterwards, in a deterministic order, so parallel runs are byte-identical to serial ones.
//
// Work distribution is claim-based (an atomic cursor over [0, n)), so batches whose items
// have skewed costs still balance. Indices are claimed in order but may *complete* in any
// order; callers must not depend on completion order.
//
// Broadcast(fn) runs fn exactly once on every worker thread (not the caller) and returns
// when all have run it — used to reset thread_local state (e.g. the string interner's
// per-thread cache) deterministically.

#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace boom {

class ThreadPool {
 public:
  // Spawns `workers` background threads. Total parallelism of a batch is workers + 1 (the
  // calling thread participates). workers == 0 is valid: RunBatch degenerates to a serial
  // loop on the caller.
  explicit ThreadPool(size_t workers);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  size_t workers() const { return threads_.size(); }

  // Runs task(i) for every i in [0, n); returns when all calls have completed. Tasks run
  // concurrently and must only touch disjoint or synchronized state. Must not be called
  // reentrantly (from inside a task) or from two threads at once.
  void RunBatch(size_t n, const std::function<void(size_t)>& task);

  // Runs fn once on each worker thread; returns when every worker has run it. Must not
  // overlap with RunBatch.
  void Broadcast(const std::function<void()>& fn);

 private:
  // State of one batch, shared with the workers. Heap-allocated per batch so a worker that
  // wakes late (after the batch already drained) still sees a consistent, exhausted batch
  // instead of claiming indices from a newer one.
  struct BatchState {
    const std::function<void(size_t)>* task = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  // Claims and runs tasks from `state` until the cursor is exhausted.
  void Participate(BatchState& state);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a batch/broadcast/stop
  std::condition_variable done_cv_;  // the caller waits here for completion
  std::shared_ptr<BatchState> batch_;            // guarded by mu_ (pointer swap)
  const std::function<void()>* broadcast_fn_ = nullptr;  // guarded by mu_
  uint64_t broadcast_gen_ = 0;                   // guarded by mu_
  size_t broadcast_done_ = 0;                    // guarded by mu_
  bool stop_ = false;                            // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace boom

#endif  // SRC_BASE_THREAD_POOL_H_
