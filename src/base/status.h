// Lightweight Status / Result<T> error-handling primitives, in the spirit of absl::Status.
// Fallible APIs in this codebase return Status or Result<T> instead of throwing.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace boom {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kOutOfRange,
  kUnimplemented,
};

// Human-readable name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (no message allocated).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}

// A value or an error. Accessing value() on an error aborts in debug builds;
// callers must check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

// Propagates an error Status from an expression that yields Status.
#define BOOM_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::boom::Status _st = (expr);          \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define BOOM_ASSIGN_OR_RETURN(lhs, expr)  \
  auto BOOM_CONCAT_(_res_, __LINE__) = (expr);        \
  if (!BOOM_CONCAT_(_res_, __LINE__).ok()) {          \
    return BOOM_CONCAT_(_res_, __LINE__).status();    \
  }                                                   \
  lhs = std::move(BOOM_CONCAT_(_res_, __LINE__)).value()

#define BOOM_CONCAT_INNER_(a, b) a##b
#define BOOM_CONCAT_(a, b) BOOM_CONCAT_INNER_(a, b)

}  // namespace boom

#endif  // SRC_BASE_STATUS_H_
