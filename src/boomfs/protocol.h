// Wire protocol shared by BOOM-FS and the HDFS baseline.
//
// The NameNode (either implementation) serves the namespace protocol; DataNodes and clients
// are protocol-agnostic about which NameNode implementation they talk to — this is what lets
// the evaluation mix {BOOM-MR, Hadoop-baseline} x {BOOM-FS, HDFS-baseline}.
//
// Namespace requests:  ns_request(NN, ReqId, Client, Cmd, Path, Arg)
//   Cmd in {"mkdir", "create", "exists", "ls", "rm", "addchunk", "chunks", "locations"};
//   Arg carries the chunk id for "locations", nil otherwise.
// Namespace responses: ns_response(Client, ReqId, Ok, Payload)
//   mkdir/create/rm: payload nil; exists: bool; ls: list of names; addchunk:
//   [ChunkId, [dn...]]; chunks: list of chunk ids; locations: list of datanode addresses.
//
// Data plane (client <-> DataNode, native):
//   dn_write(To, ChunkId, Data, Pipeline, AckTo, ReqId) — store + forward along Pipeline;
//     the final replica acks with dn_write_ack(AckTo, ReqId, ChunkId) (skipped when AckTo="").
//   dn_read(To, ChunkId, Client, ReqId) -> dn_read_data(Client, ReqId, Ok, Data)
//
// DataNode -> NameNode control plane:
//   dn_heartbeat(NN, Dn); dn_chunk_report(NN, Dn, ChunkId)
// NameNode -> DataNode:
//   replicate_cmd(Dn, ChunkId, DestDn); dn_delete(Dn, ChunkId) — drop a GC'd chunk

#ifndef SRC_BOOMFS_PROTOCOL_H_
#define SRC_BOOMFS_PROTOCOL_H_

namespace boom {

// Namespace protocol.
inline constexpr char kNsRequest[] = "ns_request";
inline constexpr char kNsResponse[] = "ns_response";

// Commands.
inline constexpr char kCmdMkdir[] = "mkdir";
inline constexpr char kCmdCreate[] = "create";
inline constexpr char kCmdExists[] = "exists";
inline constexpr char kCmdLs[] = "ls";
inline constexpr char kCmdRm[] = "rm";
inline constexpr char kCmdAddChunk[] = "addchunk";
inline constexpr char kCmdChunks[] = "chunks";
inline constexpr char kCmdLocations[] = "locations";

// Data plane.
inline constexpr char kDnWrite[] = "dn_write";
inline constexpr char kDnWriteAck[] = "dn_write_ack";
inline constexpr char kDnRead[] = "dn_read";
inline constexpr char kDnReadData[] = "dn_read_data";

// Control plane.
inline constexpr char kDnHeartbeat[] = "dn_heartbeat";
inline constexpr char kDnChunkReport[] = "dn_chunk_report";
inline constexpr char kReplicateCmd[] = "replicate_cmd";
inline constexpr char kDnDelete[] = "dn_delete";

}  // namespace boom

#endif  // SRC_BOOMFS_PROTOCOL_H_
