// Wire protocol shared by BOOM-FS and the HDFS baseline.
//
// The NameNode (either implementation) serves the namespace protocol; DataNodes and clients
// are protocol-agnostic about which NameNode implementation they talk to — this is what lets
// the evaluation mix {BOOM-MR, Hadoop-baseline} x {BOOM-FS, HDFS-baseline}.
//
// Namespace requests:  ns_request(NN, ReqId, Client, Cmd, Path, Arg)
//   Cmd in {"mkdir", "create", "exists", "ls", "rm", "addchunk", "chunks", "locations",
//   "abandon"}; Arg carries the chunk id for "locations"/"abandon", nil otherwise.
// Namespace responses: ns_response(Client, ReqId, Ok, Payload)
//   mkdir/create/rm/abandon: payload nil; exists: bool; ls: list of names; addchunk:
//   [ChunkId, [dn...]]; chunks: list of chunk ids; locations: list of datanode addresses.
//
// Data plane (client <-> DataNode, native). Every chunk transfer carries an end-to-end
// checksum over the payload (computed by the original writer and stored alongside the
// bytes), so corruption at rest or in transit is detected at store and at serve time:
//   dn_write(To, ChunkId, Data, Checksum, Pipeline, AckTo, ReqId) — verify + store +
//     forward along Pipeline; the final replica acks with
//     dn_write_ack(AckTo, ReqId, ChunkId) (skipped when AckTo="").
//   dn_read(To, ChunkId, Client, ReqId) -> dn_read_data(Client, ReqId, Ok, Data, Checksum)
//
// DataNode -> NameNode control plane:
//   dn_heartbeat(NN, Dn); dn_chunk_report(NN, Dn, ChunkId)
//   dn_corrupt(NN, Dn, ChunkId) — Dn quarantined a corrupt replica; retract its location
// NameNode -> DataNode:
//   replicate_cmd(Dn, ChunkId, DestDn); dn_delete(Dn, ChunkId) — drop a GC'd chunk

#ifndef SRC_BOOMFS_PROTOCOL_H_
#define SRC_BOOMFS_PROTOCOL_H_

#include <cstdint>
#include <string_view>

#include "src/base/strings.h"
#include "src/overlog/value.h"

namespace boom {

// Namespace protocol.
inline constexpr char kNsRequest[] = "ns_request";
inline constexpr char kNsResponse[] = "ns_response";
// Admission gateway intake: same tuple shape as ns_request, addressed to the gateway node.
// Admitted requests are forwarded as ns_request to the real NameNode; shed requests get an
// ns_response whose payload is ["overloaded", RetryAfterMs] (see below).
inline constexpr char kNsIngress[] = "ns_ingress";
// Load signal fed into the gateway: svc_load(Gw, BacklogMs) — the NameNode's queued
// service backlog sampled via Cluster::ServiceBacklogMs.
inline constexpr char kSvcLoad[] = "svc_load";

// Commands.
inline constexpr char kCmdMkdir[] = "mkdir";
inline constexpr char kCmdCreate[] = "create";
inline constexpr char kCmdExists[] = "exists";
inline constexpr char kCmdLs[] = "ls";
inline constexpr char kCmdRm[] = "rm";
inline constexpr char kCmdAddChunk[] = "addchunk";
inline constexpr char kCmdChunks[] = "chunks";
inline constexpr char kCmdLocations[] = "locations";
// Detach + tombstone a chunk whose every replica write failed (client-side pipeline
// recovery gives up on the allocated id before re-requesting a fresh pipeline).
inline constexpr char kCmdAbandon[] = "abandon";
// Move a file: Path is the source, Arg the destination path (files only; directories keep
// their paths for the lifetime of the namespace).
inline constexpr char kCmdRename[] = "rename";

// Data plane.
inline constexpr char kDnWrite[] = "dn_write";
inline constexpr char kDnWriteAck[] = "dn_write_ack";
inline constexpr char kDnRead[] = "dn_read";
inline constexpr char kDnReadData[] = "dn_read_data";

// Control plane.
inline constexpr char kDnHeartbeat[] = "dn_heartbeat";
inline constexpr char kDnChunkReport[] = "dn_chunk_report";
inline constexpr char kDnCorrupt[] = "dn_corrupt";
inline constexpr char kReplicateCmd[] = "replicate_cmd";
inline constexpr char kDnDelete[] = "dn_delete";

// Chunk payload checksum (FNV-1a 64, carried as a signed int in tuples). Stable across
// platforms so a checksum computed by the writer verifies on any replica.
inline int64_t ChunkChecksum(std::string_view data) {
  return static_cast<int64_t>(Fnv1a64(data));
}

// Overload shedding. A shed request is answered with Ok=false and payload
// ["overloaded", RetryAfterMs]: retryable after the hint, never terminal. Distinguishable
// from every legacy failure payload (those are nil, bools, or lists of names/ids).
inline constexpr char kOverloadedError[] = "overloaded";

inline bool IsOverloadedPayload(const Value& payload) {
  return payload.is_list() && payload.as_list().size() == 2 &&
         payload.as_list()[0].is_string() &&
         payload.as_list()[0].as_string() == kOverloadedError;
}

// The retry-after hint carried by an overloaded payload (0 when absent/malformed).
inline double OverloadRetryAfterMs(const Value& payload) {
  if (!IsOverloadedPayload(payload) || !payload.as_list()[1].is_numeric()) {
    return 0;
  }
  return payload.as_list()[1].ToDouble();
}

}  // namespace boom

#endif  // SRC_BOOMFS_PROTOCOL_H_
