// Wire protocol shared by BOOM-FS and the HDFS baseline.
//
// The NameNode (either implementation) serves the namespace protocol; DataNodes and clients
// are protocol-agnostic about which NameNode implementation they talk to — this is what lets
// the evaluation mix {BOOM-MR, Hadoop-baseline} x {BOOM-FS, HDFS-baseline}.
//
// Namespace requests:  ns_request(NN, ReqId, Client, Cmd, Path, Arg)
//   Cmd in {"mkdir", "create", "exists", "ls", "rm", "addchunk", "chunks", "locations",
//   "abandon"}; Arg carries the chunk id for "locations"/"abandon", nil otherwise.
// Namespace responses: ns_response(Client, ReqId, Ok, Payload)
//   mkdir/create/rm/abandon: payload nil; exists: bool; ls: list of names; addchunk:
//   [ChunkId, [dn...]]; chunks: list of chunk ids; locations: list of datanode addresses.
//
// Data plane (client <-> DataNode, native). Every chunk transfer carries an end-to-end
// checksum over the payload (computed by the original writer and stored alongside the
// bytes), so corruption at rest or in transit is detected at store and at serve time:
//   dn_write(To, ChunkId, Data, Checksum, Pipeline, AckTo, ReqId) — verify + store +
//     forward along Pipeline; the final replica acks with
//     dn_write_ack(AckTo, ReqId, ChunkId) (skipped when AckTo="").
//   dn_read(To, ChunkId, Client, ReqId) -> dn_read_data(Client, ReqId, Ok, Data, Checksum)
//
// DataNode -> NameNode control plane:
//   dn_heartbeat(NN, Dn); dn_chunk_report(NN, Dn, ChunkId)
//   dn_corrupt(NN, Dn, ChunkId) — Dn quarantined a corrupt replica; retract its location
// NameNode -> DataNode:
//   replicate_cmd(Dn, ChunkId, DestDn); dn_delete(Dn, ChunkId) — drop a GC'd chunk

#ifndef SRC_BOOMFS_PROTOCOL_H_
#define SRC_BOOMFS_PROTOCOL_H_

#include <cstdint>
#include <string_view>

#include "src/base/strings.h"
#include "src/overlog/value.h"

namespace boom {

// Namespace protocol.
inline constexpr char kNsRequest[] = "ns_request";
inline constexpr char kNsResponse[] = "ns_response";
// Admission gateway intake: same tuple shape as ns_request, addressed to the gateway node.
// Admitted requests are forwarded as ns_request to the real NameNode; shed requests get an
// ns_response whose payload is ["overloaded", RetryAfterMs] (see below).
inline constexpr char kNsIngress[] = "ns_ingress";
// Load signal fed into the gateway: svc_load(Gw, BacklogMs) — the NameNode's queued
// service backlog sampled via Cluster::ServiceBacklogMs.
inline constexpr char kSvcLoad[] = "svc_load";
// Federated intake (src/boomfs/federation.h): ns_request's shape plus the partition id the
// client routed by and the map epoch its cache held —
//   fed_request(NN, ReqId, Client, Cmd, Path, Arg, Pid, Epoch)
inline constexpr char kFedRequest[] = "fed_request";

// Commands.
inline constexpr char kCmdMkdir[] = "mkdir";
inline constexpr char kCmdCreate[] = "create";
inline constexpr char kCmdExists[] = "exists";
inline constexpr char kCmdLs[] = "ls";
inline constexpr char kCmdRm[] = "rm";
inline constexpr char kCmdAddChunk[] = "addchunk";
inline constexpr char kCmdChunks[] = "chunks";
inline constexpr char kCmdLocations[] = "locations";
// Detach + tombstone a chunk whose every replica write failed (client-side pipeline
// recovery gives up on the allocated id before re-requesting a fresh pipeline).
inline constexpr char kCmdAbandon[] = "abandon";
// Move a file: Path is the source, Arg the destination path (files only; directories keep
// their paths for the lifetime of the namespace).
inline constexpr char kCmdRename[] = "rename";

// Cross-partition rename (federated metadata plane, src/boomfs/federation.h): a
// client-driven two-phase protocol. xr_intent at the source partition validates the file,
// marks it moving, and returns [FileId, chunk ids]; the destination entry is made with an
// ordinary "create"; xr_addchunk adopts each already-allocated chunk id at the
// destination; xr_commit drops the source entry and leaves a tombstone (without chunk GC
// — the destination owns the bytes now). xr_abort releases a source intent and xr_drop
// removes a half-imported destination entry; both are idempotent unwind steps.
inline constexpr char kCmdXrIntent[] = "xr_intent";
inline constexpr char kCmdXrAddChunk[] = "xr_addchunk";
inline constexpr char kCmdXrCommit[] = "xr_commit";
inline constexpr char kCmdXrAbort[] = "xr_abort";
inline constexpr char kCmdXrDrop[] = "xr_drop";
// Partition seal (migration fence): `xr_seal` rides the group's replicated log with the
// partition id in Arg (Path unused). Once applied, every LATER plain namespace command
// for that partition is dropped at log replay — never applied, never acked — so a command
// stuck in a recovering ex-leader's proposer cannot resurface after the partition has
// migrated away (the client's retry lands at the new owner instead). Because the seal is
// itself log-ordered, the migration snapshot taken after it applies is provably complete:
// every acked command precedes the seal in the log. xr_unseal (idempotent) reopens the
// partition, e.g. at the destination group or when a migration aborts.
inline constexpr char kCmdXrSeal[] = "xr_seal";
inline constexpr char kCmdXrUnseal[] = "xr_unseal";

// Data plane.
inline constexpr char kDnWrite[] = "dn_write";
inline constexpr char kDnWriteAck[] = "dn_write_ack";
inline constexpr char kDnRead[] = "dn_read";
inline constexpr char kDnReadData[] = "dn_read_data";

// Control plane.
inline constexpr char kDnHeartbeat[] = "dn_heartbeat";
inline constexpr char kDnChunkReport[] = "dn_chunk_report";
inline constexpr char kDnCorrupt[] = "dn_corrupt";
inline constexpr char kReplicateCmd[] = "replicate_cmd";
inline constexpr char kDnDelete[] = "dn_delete";

// Chunk payload checksum (FNV-1a 64, carried as a signed int in tuples). Stable across
// platforms so a checksum computed by the writer verifies on any replica.
inline int64_t ChunkChecksum(std::string_view data) {
  return static_cast<int64_t>(Fnv1a64(data));
}

// Overload shedding. A shed request is answered with Ok=false and payload
// ["overloaded", RetryAfterMs]: retryable after the hint, never terminal. Distinguishable
// from every legacy failure payload (those are nil, bools, or lists of names/ids).
inline constexpr char kOverloadedError[] = "overloaded";

inline bool IsOverloadedPayload(const Value& payload) {
  return payload.is_list() && payload.as_list().size() == 2 &&
         payload.as_list()[0].is_string() &&
         payload.as_list()[0].as_string() == kOverloadedError;
}

// The retry-after hint carried by an overloaded payload (0 when absent/malformed).
inline double OverloadRetryAfterMs(const Value& payload) {
  if (!IsOverloadedPayload(payload) || !payload.as_list()[1].is_numeric()) {
    return 0;
  }
  return payload.as_list()[1].ToDouble();
}

// Federated routing. Every namespace command routes by one key: "ls" by the listed
// directory itself, everything else by the parent directory of the path. This is the
// contract that makes parent-directory existence a partition-local question — all entries
// of one directory (and the directory's child-serving copy, see FsClient::Mkdir) live on
// the partition of the directory's own path.
inline std::string NsRoutingKey(const std::string& cmd, const std::string& path) {
  if (cmd == kCmdLs) {
    return path.empty() ? "/" : path;
  }
  return path.empty() ? "/" : PathDirname(path);
}

inline int64_t RoutingPid(const std::string& key, int num_partitions) {
  if (num_partitions <= 0) {
    return 0;
  }
  return static_cast<int64_t>(Fnv1a64(key) % static_cast<uint64_t>(num_partitions));
}

// Stale-epoch bounce (federation). A request routed to a group that does not own the
// partition is answered with Ok=false and payload
//   ["stale_epoch", GlobalEpoch, [[Pid, Epoch, Leader, Members], ...]]
// carrying the replica's whole partition map, so one round trip refreshes the client's
// cache. Retryable after applying the map, never terminal.
inline constexpr char kStaleEpochError[] = "stale_epoch";

inline bool IsStaleEpochPayload(const Value& payload) {
  return payload.is_list() && payload.as_list().size() == 3 &&
         payload.as_list()[0].is_string() &&
         payload.as_list()[0].as_string() == kStaleEpochError &&
         payload.as_list()[1].is_numeric() && payload.as_list()[2].is_list();
}

}  // namespace boom

#endif  // SRC_BOOMFS_PROTOCOL_H_
