#include "src/boomfs/datanode.h"

#include "src/base/logging.h"
#include "src/boomfs/protocol.h"

namespace boom {

void DataNode::OnStart(Cluster& cluster) {
  ++start_epoch_;
  SendHeartbeat(cluster, /*full_report=*/true);
  HeartbeatLoop(cluster);
}

void DataNode::HeartbeatLoop(Cluster& cluster) {
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.heartbeat_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;  // superseded by a restart, or we are dead
    }
    ++heartbeats_sent_;
    bool full = options_.full_report_every > 0 &&
                heartbeats_sent_ % options_.full_report_every == 0;
    SendHeartbeat(cluster, full);
    HeartbeatLoop(cluster);
  });
}

void DataNode::ForEachNameNode(const std::function<void(const std::string&)>& fn) const {
  fn(options_.namenode);
  for (const std::string& nn : options_.extra_namenodes) {
    fn(nn);
  }
}

void DataNode::SendHeartbeat(Cluster& cluster, bool full_report) {
  ForEachNameNode([this, &cluster, full_report](const std::string& nn) {
    cluster.Send(address(), nn, kDnHeartbeat, Tuple{Value(nn), Value(address())});
    if (full_report) {
      for (const auto& [chunk_id, data] : chunks_) {
        cluster.Send(address(), nn, kDnChunkReport,
                     Tuple{Value(nn), Value(address()), Value(chunk_id)});
      }
    }
  });
}

void DataNode::StoreChunk(int64_t chunk_id, std::string data, Cluster& cluster) {
  bool fresh = chunks_.emplace(chunk_id, std::move(data)).second;
  if (fresh) {
    // Incremental report so the NameNodes learn the location without waiting for the next
    // full report.
    ForEachNameNode([this, &cluster, chunk_id](const std::string& nn) {
      cluster.Send(address(), nn, kDnChunkReport,
                   Tuple{Value(nn), Value(address()), Value(chunk_id)});
    });
  }
}

void DataNode::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kDnWrite) {
    // (To, ChunkId, Data, Pipeline, AckTo, ReqId)
    int64_t chunk_id = msg.tuple[1].as_int();
    const std::string& data = msg.tuple[2].as_string();
    const ValueList& pipeline = msg.tuple[3].as_list();
    const std::string& ack_to = msg.tuple[4].as_string();
    StoreChunk(chunk_id, data, cluster);
    if (!pipeline.empty()) {
      // Forward along the replication pipeline.
      ValueList rest(pipeline.begin() + 1, pipeline.end());
      const std::string& next = pipeline[0].as_string();
      cluster.Send(address(), next, kDnWrite,
                   Tuple{Value(next), Value(chunk_id), Value(data), Value(std::move(rest)),
                         msg.tuple[4], msg.tuple[5]});
    } else if (!ack_to.empty()) {
      cluster.Send(address(), ack_to, kDnWriteAck,
                   Tuple{Value(ack_to), msg.tuple[5], Value(chunk_id)});
    }
    return;
  }
  if (msg.table == kDnRead) {
    // (To, ChunkId, Client, ReqId)
    int64_t chunk_id = msg.tuple[1].as_int();
    const std::string& client = msg.tuple[2].as_string();
    auto it = chunks_.find(chunk_id);
    bool ok = it != chunks_.end();
    cluster.Send(address(), client, kDnReadData,
                 Tuple{Value(client), msg.tuple[3], Value(ok),
                       Value(ok ? it->second : std::string())});
    return;
  }
  if (msg.table == kDnDelete) {
    // (To, ChunkId) — the NameNode garbage-collected this chunk.
    chunks_.erase(msg.tuple[1].as_int());
    return;
  }
  if (msg.table == kReplicateCmd) {
    // (To, ChunkId, Dest) — copy one of our chunks to Dest, no client ack.
    int64_t chunk_id = msg.tuple[1].as_int();
    const std::string& dest = msg.tuple[2].as_string();
    auto it = chunks_.find(chunk_id);
    if (it == chunks_.end() || dest == address()) {
      return;
    }
    cluster.Send(address(), dest, kDnWrite,
                 Tuple{Value(dest), Value(chunk_id), Value(it->second), Value(ValueList{}),
                       Value(std::string()), Value(int64_t{0})});
    return;
  }
  BOOM_LOG(Warning) << "DataNode " << address() << ": unknown message " << msg.table;
}

size_t DataNode::stored_bytes() const {
  size_t total = 0;
  for (const auto& [id, data] : chunks_) {
    total += data.size();
  }
  return total;
}

}  // namespace boom
