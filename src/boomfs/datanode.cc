#include "src/boomfs/datanode.h"

#include "src/base/logging.h"
#include "src/boomfs/protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

namespace {
Counter& DnCounter(const char* name) { return MetricsRegistry::Global().counter(name); }
}  // namespace

void DataNode::OnStart(Cluster& cluster) {
  ++start_epoch_;
  // Replication copies in flight before a crash are forgotten; the NameNode re-issues
  // replicate_cmd while the chunk stays under-replicated.
  repl_reqs_.clear();
  repl_inflight_.clear();
  SendHeartbeat(cluster, /*full_report=*/true);
  HeartbeatLoop(cluster);
}

void DataNode::HeartbeatLoop(Cluster& cluster) {
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.heartbeat_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;  // superseded by a restart, or we are dead
    }
    ++heartbeats_sent_;
    bool full = options_.full_report_every > 0 &&
                heartbeats_sent_ % options_.full_report_every == 0;
    SendHeartbeat(cluster, full);
    HeartbeatLoop(cluster);
  });
}

void DataNode::ForEachNameNode(const std::function<void(const std::string&)>& fn) const {
  fn(options_.namenode);
  for (const std::string& nn : options_.extra_namenodes) {
    fn(nn);
  }
}

double DataNode::DiskDelayMs(Cluster& cluster) const {
  return cluster.disk_faults(address()).slow_ms;
}

void DataNode::SendHeartbeat(Cluster& cluster, bool full_report) {
  ForEachNameNode([this, &cluster, full_report](const std::string& nn) {
    cluster.Send(address(), nn, kDnHeartbeat, Tuple{Value(nn), Value(address())});
    if (full_report) {
      for (const auto& [chunk_id, stored] : chunks_) {
        cluster.Send(address(), nn, kDnChunkReport,
                     Tuple{Value(nn), Value(address()), Value(chunk_id)});
      }
    }
  });
}

void DataNode::StoreChunk(int64_t chunk_id, std::string data, int64_t checksum,
                          Cluster& cluster) {
  auto it = chunks_.find(chunk_id);
  bool fresh = it == chunks_.end();
  if (!fresh && it->second.checksum != checksum) {
    // Last-writer-wins: a re-write with different bytes replaces the stored copy (the
    // client's pipeline recovery legitimately re-sends a chunk id after a partial write).
    BOOM_LOG(Warning) << "DataNode " << address() << ": chunk " << chunk_id
                      << " overwritten with different bytes (last writer wins)";
  }
  DnCounter(fresh ? "fs.dn.chunk_store" : "fs.dn.chunk_rewrite").Add();
  StoredChunk& slot = chunks_[chunk_id];
  slot.data = std::move(data);
  slot.checksum = checksum;
  quarantined_.erase(chunk_id);  // a fresh verified copy supersedes any quarantine
  // Disk-corruption fault: the bytes rot at rest, after the store-time verification; the
  // stored checksum keeps the writer's value, so serve-time verification catches it.
  DiskFaults disk = cluster.disk_faults(address());
  if (disk.corrupt_prob > 0 && !slot.data.empty() &&
      cluster.rng().Bernoulli(disk.corrupt_prob)) {
    size_t at = static_cast<size_t>(cluster.rng().UniformInt(
        0, static_cast<int64_t>(slot.data.size()) - 1));
    slot.data[at] = static_cast<char>(slot.data[at] ^ 0x20);
  }
  if (fresh) {
    // Incremental report so the NameNodes learn the location without waiting for the next
    // full report.
    ForEachNameNode([this, &cluster, chunk_id](const std::string& nn) {
      cluster.Send(address(), nn, kDnChunkReport,
                   Tuple{Value(nn), Value(address()), Value(chunk_id)});
    });
  }
}

void DataNode::Quarantine(int64_t chunk_id, Cluster& cluster) {
  DnCounter("fs.dn.quarantine").Add();
  BOOM_LOG(Warning) << "DataNode " << address() << ": quarantining corrupt chunk "
                    << chunk_id;
  chunks_.erase(chunk_id);
  quarantined_.insert(chunk_id);
  ForEachNameNode([this, &cluster, chunk_id](const std::string& nn) {
    cluster.Send(address(), nn, kDnCorrupt,
                 Tuple{Value(nn), Value(address()), Value(chunk_id)});
  });
}

void DataNode::SendReplica(int64_t chunk_id, const std::string& dest, int attempt,
                           Cluster& cluster) {
  auto it = chunks_.find(chunk_id);
  if (it == chunks_.end()) {  // deleted (or quarantined) since the copy was requested
    repl_inflight_.erase({chunk_id, dest});
    return;
  }
  // The serve-corrupt bug variant skips source verification and recomputes the checksum
  // over whatever bytes are on disk — modeling a data plane without end-to-end checksums.
  int64_t actual = ChunkChecksum(it->second.data);
  if (options_.verify_reads && actual != it->second.checksum) {
    repl_inflight_.erase({chunk_id, dest});
    Quarantine(chunk_id, cluster);
    return;
  }
  int64_t req = next_repl_req_++;
  repl_reqs_[req] = {chunk_id, dest};
  cluster.Send(address(), dest, kDnWrite,
               Tuple{Value(dest), Value(chunk_id), Value(it->second.data),
                     Value(options_.verify_reads ? it->second.checksum : actual),
                     Value(ValueList{}), Value(address()), Value(req)},
               DiskDelayMs(cluster));
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.replicate_timeout_ms,
                        [this, &cluster, req, chunk_id, dest, attempt, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    auto pending = repl_reqs_.find(req);
    if (pending == repl_reqs_.end()) {
      return;  // acked
    }
    repl_reqs_.erase(pending);
    if (attempt < options_.replicate_max_attempts) {
      SendReplica(chunk_id, dest, attempt + 1, cluster);
    } else {
      repl_inflight_.erase({chunk_id, dest});  // give up; the NameNode will re-command
    }
  });
}

void DataNode::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kDnWrite) {
    // (To, ChunkId, Data, Checksum, Pipeline, AckTo, ReqId)
    int64_t chunk_id = msg.tuple[1].as_int();
    const std::string& data = msg.tuple[2].as_string();
    int64_t checksum = msg.tuple[3].as_int();
    const ValueList& pipeline = msg.tuple[4].as_list();
    const std::string& ack_to = msg.tuple[5].as_string();
    if (ChunkChecksum(data) != checksum) {
      // Mangled in transit: refuse the store (no report, no forward, no ack) — the writer
      // times out and retries.
      DnCounter("fs.dn.write_reject").Add();
      BOOM_LOG(Warning) << "DataNode " << address() << ": rejecting chunk " << chunk_id
                        << " (transfer checksum mismatch)";
      return;
    }
    StoreChunk(chunk_id, data, checksum, cluster);
    if (!pipeline.empty()) {
      // Forward along the replication pipeline.
      ValueList rest(pipeline.begin() + 1, pipeline.end());
      const std::string& next = pipeline[0].as_string();
      cluster.Send(address(), next, kDnWrite,
                   Tuple{Value(next), Value(chunk_id), Value(data), msg.tuple[3],
                         Value(std::move(rest)), msg.tuple[5], msg.tuple[6]},
                   DiskDelayMs(cluster));
    } else if (!ack_to.empty()) {
      cluster.Send(address(), ack_to, kDnWriteAck,
                   Tuple{Value(ack_to), msg.tuple[6], Value(chunk_id)},
                   DiskDelayMs(cluster));
    }
    return;
  }
  if (msg.table == kDnWriteAck) {
    // (Us, ReqId, ChunkId) — a replication copy we sourced reached its destination.
    auto it = repl_reqs_.find(msg.tuple[1].as_int());
    if (it == repl_reqs_.end()) {
      return;  // late ack of a timed-out attempt
    }
    repl_inflight_.erase(it->second);
    repl_reqs_.erase(it);
    return;
  }
  if (msg.table == kDnRead) {
    // (To, ChunkId, Client, ReqId)
    int64_t chunk_id = msg.tuple[1].as_int();
    const std::string& client = msg.tuple[2].as_string();
    DnCounter("fs.dn.read").Add();
    auto it = chunks_.find(chunk_id);
    if (it == chunks_.end()) {
      DnCounter("fs.dn.read_miss").Add();
      cluster.Send(address(), client, kDnReadData,
                   Tuple{Value(client), msg.tuple[3], Value(false), Value(std::string()),
                         Value(int64_t{0})},
                   DiskDelayMs(cluster));
      return;
    }
    int64_t actual = ChunkChecksum(it->second.data);
    if (options_.verify_reads && actual != it->second.checksum) {
      // Rotted at rest: never serve it. Quarantine + report; the client fails over to
      // another replica and the NameNode re-replicates from a healthy one.
      cluster.Send(address(), client, kDnReadData,
                   Tuple{Value(client), msg.tuple[3], Value(false), Value(std::string()),
                         Value(int64_t{0})},
                   DiskDelayMs(cluster));
      Quarantine(chunk_id, cluster);
      return;
    }
    // With verification off (serve-corrupt bug variant) the checksum is recomputed over
    // the on-disk bytes, so a client cannot tell the data rotted.
    cluster.Send(address(), client, kDnReadData,
                 Tuple{Value(client), msg.tuple[3], Value(true), Value(it->second.data),
                       Value(options_.verify_reads ? it->second.checksum : actual)},
                 DiskDelayMs(cluster));
    return;
  }
  if (msg.table == kDnDelete) {
    // (To, ChunkId) — the NameNode garbage-collected this chunk.
    int64_t chunk_id = msg.tuple[1].as_int();
    chunks_.erase(chunk_id);
    quarantined_.erase(chunk_id);
    return;
  }
  if (msg.table == kReplicateCmd) {
    // (To, ChunkId, Dest) — copy one of our chunks to Dest with an acked, retried send.
    int64_t chunk_id = msg.tuple[1].as_int();
    const std::string& dest = msg.tuple[2].as_string();
    if (dest == address() || chunks_.count(chunk_id) == 0) {
      return;
    }
    if (!repl_inflight_.insert({chunk_id, dest}).second) {
      return;  // this exact copy is already in flight (NameNode re-commands periodically)
    }
    DnCounter("fs.dn.replicate").Add();
    SendReplica(chunk_id, dest, /*attempt=*/1, cluster);
    return;
  }
  BOOM_LOG(Warning) << "DataNode " << address() << ": unknown message " << msg.table;
}

size_t DataNode::stored_bytes() const {
  size_t total = 0;
  for (const auto& [id, stored] : chunks_) {
    total += stored.data.size();
  }
  return total;
}

bool DataNode::CorruptStoredChunk(int64_t chunk_id) {
  auto it = chunks_.find(chunk_id);
  if (it == chunks_.end() || it->second.data.empty()) {
    return false;
  }
  it->second.data[0] = static_cast<char>(it->second.data[0] ^ 0x20);
  return true;
}

}  // namespace boom
