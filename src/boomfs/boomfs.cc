#include "src/boomfs/boomfs.h"

#include "src/base/logging.h"
#include "src/boomfs/protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

namespace {

// Recurring svc_load probe for the admission gateway: samples the NameNode's queued work
// (the overload signal) into the gateway every period. An actor rather than a
// self-rescheduling closure so the cluster owns its lifetime.
class GatewayLoadProbe : public Actor {
 public:
  GatewayLoadProbe(std::string address, std::string gateway, std::string namenode,
                   double period_ms)
      : Actor(std::move(address)),
        gateway_(std::move(gateway)),
        namenode_(std::move(namenode)),
        period_ms_(period_ms) {}

  void OnStart(Cluster& cluster) override { Arm(cluster); }
  void OnMessage(const Message&, Cluster&) override {}

 private:
  void Arm(Cluster& cluster) {
    cluster.ScheduleAfter(period_ms_, [this, &cluster] {
      cluster.DeliverLocal(gateway_, kSvcLoad,
                           Tuple{Value(gateway_), Value(cluster.ServiceBacklogMs(namenode_))});
      Arm(cluster);
    });
  }

  std::string gateway_;
  std::string namenode_;
  double period_ms_;
};

}  // namespace

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kBoomFs:
      return "BOOM-FS";
    case FsKind::kHdfsBaseline:
      return "HDFS";
  }
  return "?";
}

void AddNameNode(Cluster& cluster, FsKind kind, const std::string& address,
                 const FsSetupOptions& options) {
  if (kind == FsKind::kBoomFs) {
    NnProgramOptions prog;
    prog.replication_factor = options.replication_factor;
    prog.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
    prog.with_failure_detector = options.with_failure_detector;
    prog.with_safe_mode = options.with_safe_mode;
    prog.safe_mode_check_period_ms = options.safe_mode_check_period_ms;
    prog.safe_mode_report_frac_pct = options.safe_mode_report_frac_pct;
    prog.safe_mode_timeout_ms = options.safe_mode_timeout_ms;
    prog.safe_mode_grace_ms = options.safe_mode_grace_ms;
    prog.with_rename = options.with_rename;
    prog.with_gc = options.with_gc;
    prog.gc_check_period_ms = options.gc_check_period_ms;
    prog.gc_tombstone_ms = options.gc_tombstone_ms;
    Program program = options.nn_program_override.has_value()
                          ? *options.nn_program_override
                          : BoomFsNnProgram(prog);
    cluster.AddOverlogNode(address, [program](Engine& engine) {
      Status status = engine.Install(program);
      BOOM_CHECK(status.ok()) << "BOOM-FS NameNode program failed to install: "
                              << status.ToString();
      // NameNode-side metrics, derived from table activity rather than code paths — the
      // Overlog NameNode has no imperative handlers to instrument.
      engine.AddWatch(kNsRequest, [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("fs.nn.ns_request").Add();
        }
      });
      engine.AddWatch(kReplicateCmd, [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("fs.nn.replicate_cmd").Add();
        }
      });
      // safemode(On) holds one row while safe mode is active: insert = enter, delete = exit.
      engine.AddWatch("safemode", [](const std::string&, const Tuple&, bool inserted) {
        MetricsRegistry::Global()
            .counter(inserted ? "fs.nn.safemode_enter" : "fs.nn.safemode_exit")
            .Add();
      });
    }, options.id_salt);
    return;
  }
  HdfsNameNodeOptions nn_opts;
  nn_opts.replication_factor = options.replication_factor;
  nn_opts.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  nn_opts.with_failure_detector = options.with_failure_detector;
  nn_opts.with_safe_mode = options.with_safe_mode;
  nn_opts.safe_mode_check_period_ms = options.safe_mode_check_period_ms;
  nn_opts.safe_mode_report_frac_pct = options.safe_mode_report_frac_pct;
  nn_opts.safe_mode_timeout_ms = options.safe_mode_timeout_ms;
  nn_opts.safe_mode_grace_ms = options.safe_mode_grace_ms;
  nn_opts.with_rename = options.with_rename;
  nn_opts.with_tombstone_gc = options.with_gc;
  nn_opts.gc_check_period_ms = options.gc_check_period_ms;
  nn_opts.gc_tombstone_ms = options.gc_tombstone_ms;
  nn_opts.id_salt = options.id_salt;
  cluster.AddActor(std::make_unique<HdfsNameNode>(address, nn_opts));
}

void AddAdmissionGateway(Cluster& cluster, const GatewaySetupOptions& options) {
  Program program = options.program_override.has_value()
                        ? *options.program_override
                        : BoomFsGatewayProgram(options.gateway);
  cluster.AddOverlogNode(options.address, [program](Engine& engine) {
    Status status = engine.Install(program);
    BOOM_CHECK(status.ok()) << "admission gateway program failed to install: "
                            << status.ToString();
    // Shed accounting rides the adm_deny event: distinct ReqIds mean every shed request
    // derives its own row (a tenant-only event would collapse same-tick sheds under set
    // semantics and undercount).
    engine.AddWatch("adm_deny", [](const std::string&, const Tuple& t, bool inserted) {
      if (inserted && t.size() >= 3 && t[2].is_numeric()) {
        MetricsRegistry::Global().counter("fs.gw.shed").Add();
        MetricsRegistry::Global()
            .counter("slo.tenant" + std::to_string(t[2].as_int()) + ".shed")
            .Add();
      }
    });
    // brownout(On) holds one row while writes are shed: insert = enter, delete = exit.
    engine.AddWatch("brownout", [](const std::string&, const Tuple&, bool inserted) {
      MetricsRegistry::Global()
          .counter(inserted ? "fs.gw.brownout_enter" : "fs.gw.brownout_exit")
          .Add();
    });
  });
  if (options.load_probe_period_ms > 0) {
    cluster.AddActor(std::make_unique<GatewayLoadProbe>(
        options.address + "_probe", options.address, options.gateway.namenode,
        options.load_probe_period_ms));
  }
}

FsHandles SetupFs(Cluster& cluster, const FsSetupOptions& options) {
  FsHandles handles;
  handles.namenode = options.namenode;
  AddNameNode(cluster, options.kind, options.namenode, options);

  for (int i = 0; i < options.num_datanodes; ++i) {
    std::string dn = options.namenode + "_dn" + std::to_string(i);
    DataNodeOptions dn_opts;
    dn_opts.namenode = options.namenode;
    dn_opts.heartbeat_period_ms = options.heartbeat_period_ms;
    dn_opts.full_report_every = options.full_report_every;
    dn_opts.verify_reads = options.verify_reads;
    cluster.AddActor(std::make_unique<DataNode>(dn, dn_opts));
    handles.datanodes.push_back(std::move(dn));
  }

  FsClientOptions client_opts;
  client_opts.namenode = options.namenode;
  client_opts.chunk_size = options.chunk_size;
  auto client = std::make_unique<FsClient>(options.namenode + "_client", client_opts);
  handles.client = client.get();
  cluster.AddActor(std::move(client));
  return handles;
}

bool SyncFs::Await(const bool* done) {
  double deadline = cluster_.now() + timeout_ms_;
  while (!*done && cluster_.now() < deadline) {
    // Advance in small quanta; each quantum processes all due events.
    cluster_.RunUntil(cluster_.now() + 1.0);
  }
  return *done;
}

bool SyncFs::Op(const std::string& cmd, const std::string& path, Value* payload) {
  bool done = false;
  bool ok = false;
  auto cb = [&done, &ok, payload](bool response_ok, const Value& response_payload) {
    ok = response_ok;
    if (payload != nullptr) {
      *payload = response_payload;
    }
    done = true;
  };
  if (cmd == kCmdMkdir) {
    client_->Mkdir(cluster_, path, cb);
  } else if (cmd == kCmdCreate) {
    client_->CreateFile(cluster_, path, cb);
  } else if (cmd == kCmdExists) {
    client_->Exists(cluster_, path, cb);
  } else if (cmd == kCmdLs) {
    client_->Ls(cluster_, path, cb);
  } else if (cmd == kCmdRm) {
    client_->Rm(cluster_, path, cb);
  } else if (cmd == kCmdChunks) {
    client_->Chunks(cluster_, path, cb);
  } else if (cmd == kCmdAddChunk) {
    client_->AddChunk(cluster_, path, cb);
  } else {
    return false;
  }
  return Await(&done) && ok;
}

bool SyncFs::Mkdir(const std::string& path) { return Op(kCmdMkdir, path, nullptr); }
bool SyncFs::CreateFile(const std::string& path) { return Op(kCmdCreate, path, nullptr); }

bool SyncFs::Exists(const std::string& path) {
  Value payload;
  if (!Op(kCmdExists, path, &payload)) {
    return false;
  }
  return payload.Truthy();
}

bool SyncFs::Ls(const std::string& path, std::vector<std::string>* names) {
  Value payload;
  if (!Op(kCmdLs, path, &payload) || !payload.is_list()) {
    return false;
  }
  names->clear();
  for (const Value& v : payload.as_list()) {
    names->push_back(v.as_string());
  }
  return true;
}

bool SyncFs::Rm(const std::string& path) { return Op(kCmdRm, path, nullptr); }

bool SyncFs::Rename(const std::string& path, const std::string& new_path) {
  bool done = false;
  bool ok = false;
  client_->Rename(cluster_, path, new_path, [&done, &ok](bool response_ok, const Value&) {
    ok = response_ok;
    done = true;
  });
  return Await(&done) && ok;
}

bool SyncFs::WriteFile(const std::string& path, std::string data) {
  bool done = false;
  bool ok = false;
  client_->WriteFile(cluster_, path, std::move(data), [&done, &ok](bool write_ok) {
    ok = write_ok;
    done = true;
  });
  return Await(&done) && ok;
}

bool SyncFs::ReadFile(const std::string& path, std::string* data) {
  bool done = false;
  bool ok = false;
  client_->ReadFile(cluster_, path, [&done, &ok, data](bool read_ok, const std::string& d) {
    ok = read_ok;
    if (read_ok) {
      *data = d;
    }
    done = true;
  });
  return Await(&done) && ok;
}

}  // namespace boom
