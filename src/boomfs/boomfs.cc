#include "src/boomfs/boomfs.h"

#include "src/base/logging.h"
#include "src/boomfs/protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kBoomFs:
      return "BOOM-FS";
    case FsKind::kHdfsBaseline:
      return "HDFS";
  }
  return "?";
}

void AddNameNode(Cluster& cluster, FsKind kind, const std::string& address,
                 const FsSetupOptions& options) {
  if (kind == FsKind::kBoomFs) {
    NnProgramOptions prog;
    prog.replication_factor = options.replication_factor;
    prog.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
    prog.with_failure_detector = options.with_failure_detector;
    prog.with_safe_mode = options.with_safe_mode;
    prog.safe_mode_check_period_ms = options.safe_mode_check_period_ms;
    prog.safe_mode_report_frac_pct = options.safe_mode_report_frac_pct;
    prog.safe_mode_timeout_ms = options.safe_mode_timeout_ms;
    prog.safe_mode_grace_ms = options.safe_mode_grace_ms;
    Program program = options.nn_program_override.has_value()
                          ? *options.nn_program_override
                          : BoomFsNnProgram(prog);
    cluster.AddOverlogNode(address, [program](Engine& engine) {
      Status status = engine.Install(program);
      BOOM_CHECK(status.ok()) << "BOOM-FS NameNode program failed to install: "
                              << status.ToString();
      // NameNode-side metrics, derived from table activity rather than code paths — the
      // Overlog NameNode has no imperative handlers to instrument.
      engine.AddWatch(kNsRequest, [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("fs.nn.ns_request").Add();
        }
      });
      engine.AddWatch(kReplicateCmd, [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("fs.nn.replicate_cmd").Add();
        }
      });
      // safemode(On) holds one row while safe mode is active: insert = enter, delete = exit.
      engine.AddWatch("safemode", [](const std::string&, const Tuple&, bool inserted) {
        MetricsRegistry::Global()
            .counter(inserted ? "fs.nn.safemode_enter" : "fs.nn.safemode_exit")
            .Add();
      });
    });
    return;
  }
  HdfsNameNodeOptions nn_opts;
  nn_opts.replication_factor = options.replication_factor;
  nn_opts.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  nn_opts.with_failure_detector = options.with_failure_detector;
  nn_opts.with_safe_mode = options.with_safe_mode;
  nn_opts.safe_mode_check_period_ms = options.safe_mode_check_period_ms;
  nn_opts.safe_mode_report_frac_pct = options.safe_mode_report_frac_pct;
  nn_opts.safe_mode_timeout_ms = options.safe_mode_timeout_ms;
  nn_opts.safe_mode_grace_ms = options.safe_mode_grace_ms;
  cluster.AddActor(std::make_unique<HdfsNameNode>(address, nn_opts));
}

FsHandles SetupFs(Cluster& cluster, const FsSetupOptions& options) {
  FsHandles handles;
  handles.namenode = options.namenode;
  AddNameNode(cluster, options.kind, options.namenode, options);

  for (int i = 0; i < options.num_datanodes; ++i) {
    std::string dn = options.namenode + "_dn" + std::to_string(i);
    DataNodeOptions dn_opts;
    dn_opts.namenode = options.namenode;
    dn_opts.heartbeat_period_ms = options.heartbeat_period_ms;
    dn_opts.full_report_every = options.full_report_every;
    dn_opts.verify_reads = options.verify_reads;
    cluster.AddActor(std::make_unique<DataNode>(dn, dn_opts));
    handles.datanodes.push_back(std::move(dn));
  }

  FsClientOptions client_opts;
  client_opts.namenode = options.namenode;
  client_opts.chunk_size = options.chunk_size;
  auto client = std::make_unique<FsClient>(options.namenode + "_client", client_opts);
  handles.client = client.get();
  cluster.AddActor(std::move(client));
  return handles;
}

bool SyncFs::Await(const bool* done) {
  double deadline = cluster_.now() + timeout_ms_;
  while (!*done && cluster_.now() < deadline) {
    // Advance in small quanta; each quantum processes all due events.
    cluster_.RunUntil(cluster_.now() + 1.0);
  }
  return *done;
}

bool SyncFs::Op(const std::string& cmd, const std::string& path, Value* payload) {
  bool done = false;
  bool ok = false;
  auto cb = [&done, &ok, payload](bool response_ok, const Value& response_payload) {
    ok = response_ok;
    if (payload != nullptr) {
      *payload = response_payload;
    }
    done = true;
  };
  if (cmd == kCmdMkdir) {
    client_->Mkdir(cluster_, path, cb);
  } else if (cmd == kCmdCreate) {
    client_->CreateFile(cluster_, path, cb);
  } else if (cmd == kCmdExists) {
    client_->Exists(cluster_, path, cb);
  } else if (cmd == kCmdLs) {
    client_->Ls(cluster_, path, cb);
  } else if (cmd == kCmdRm) {
    client_->Rm(cluster_, path, cb);
  } else if (cmd == kCmdChunks) {
    client_->Chunks(cluster_, path, cb);
  } else if (cmd == kCmdAddChunk) {
    client_->AddChunk(cluster_, path, cb);
  } else {
    return false;
  }
  return Await(&done) && ok;
}

bool SyncFs::Mkdir(const std::string& path) { return Op(kCmdMkdir, path, nullptr); }
bool SyncFs::CreateFile(const std::string& path) { return Op(kCmdCreate, path, nullptr); }

bool SyncFs::Exists(const std::string& path) {
  Value payload;
  if (!Op(kCmdExists, path, &payload)) {
    return false;
  }
  return payload.Truthy();
}

bool SyncFs::Ls(const std::string& path, std::vector<std::string>* names) {
  Value payload;
  if (!Op(kCmdLs, path, &payload) || !payload.is_list()) {
    return false;
  }
  names->clear();
  for (const Value& v : payload.as_list()) {
    names->push_back(v.as_string());
  }
  return true;
}

bool SyncFs::Rm(const std::string& path) { return Op(kCmdRm, path, nullptr); }

bool SyncFs::WriteFile(const std::string& path, std::string data) {
  bool done = false;
  bool ok = false;
  client_->WriteFile(cluster_, path, std::move(data), [&done, &ok](bool write_ok) {
    ok = write_ok;
    done = true;
  });
  return Await(&done) && ok;
}

bool SyncFs::ReadFile(const std::string& path, std::string* data) {
  bool done = false;
  bool ok = false;
  client_->ReadFile(cluster_, path, [&done, &ok, data](bool read_ok, const std::string& d) {
    ok = read_ok;
    if (read_ok) {
      *data = d;
    }
    done = true;
  });
  return Await(&done) && ok;
}

}  // namespace boom
