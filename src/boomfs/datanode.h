// DataNode: the imperative data plane of BOOM-FS (chunk storage and transfer stay in native
// code in the paper too; only metadata is declarative).

#ifndef SRC_BOOMFS_DATANODE_H_
#define SRC_BOOMFS_DATANODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace boom {

struct DataNodeOptions {
  std::string namenode;            // control-plane target
  // Additional NameNodes (HA replicas) that also receive heartbeats and chunk reports.
  std::vector<std::string> extra_namenodes;
  double heartbeat_period_ms = 500;
  // Every Nth heartbeat carries a full chunk report (lets a failed-over NameNode rebuild its
  // location table).
  int full_report_every = 4;
};

class DataNode : public Actor {
 public:
  DataNode(std::string address, DataNodeOptions options)
      : Actor(std::move(address)), options_(std::move(options)) {}

  void OnStart(Cluster& cluster) override;
  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Points heartbeats/reports at a different NameNode (used by HA failover glue).
  void set_namenode(const std::string& nn) { options_.namenode = nn; }

  size_t chunk_count() const { return chunks_.size(); }
  bool HasChunk(int64_t chunk_id) const { return chunks_.count(chunk_id) > 0; }
  // Stored chunk ids in ascending order (chaos invariants audit these against the NameNode).
  std::vector<int64_t> ChunkIds() const {
    std::vector<int64_t> ids;
    ids.reserve(chunks_.size());
    for (const auto& [id, data] : chunks_) {
      ids.push_back(id);
    }
    return ids;
  }
  // Total stored bytes (for tests / examples).
  size_t stored_bytes() const;

 private:
  void HeartbeatLoop(Cluster& cluster);
  void SendHeartbeat(Cluster& cluster, bool full_report);
  void StoreChunk(int64_t chunk_id, std::string data, Cluster& cluster);
  void ForEachNameNode(const std::function<void(const std::string&)>& fn) const;

  DataNodeOptions options_;
  std::map<int64_t, std::string> chunks_;
  int heartbeats_sent_ = 0;
  uint64_t start_epoch_ = 0;  // invalidates heartbeat loops from before a restart
};

}  // namespace boom

#endif  // SRC_BOOMFS_DATANODE_H_
