// DataNode: the imperative data plane of BOOM-FS (chunk storage and transfer stay in native
// code in the paper too; only metadata is declarative).
//
// Integrity: every stored chunk keeps the writer's end-to-end checksum next to its bytes.
// The DataNode verifies the payload on store (a mangled transfer is rejected before it can
// be reported as a location) and again on serve; a replica that rotted at rest is
// quarantined — dropped locally and reported to every NameNode via dn_corrupt so the
// metadata plane retracts the location and re-replicates from a healthy copy.

#ifndef SRC_BOOMFS_DATANODE_H_
#define SRC_BOOMFS_DATANODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cluster.h"

namespace boom {

struct DataNodeOptions {
  std::string namenode;            // control-plane target
  // Additional NameNodes (HA replicas) that also receive heartbeats and chunk reports.
  std::vector<std::string> extra_namenodes;
  double heartbeat_period_ms = 500;
  // Every Nth heartbeat carries a full chunk report (lets a failed-over NameNode rebuild its
  // location table). 0 disables full reports: the NameNode sees incremental reports only.
  int full_report_every = 4;
  // Checksum-verify chunks before serving them (reads and replication sources). Disabled
  // only by the chaos "serve-corrupt" bug variant, which models a DataNode without
  // end-to-end checksumming: it serves whatever bytes are on disk as if they were good.
  bool verify_reads = true;
  // Replication copies (replicate_cmd) carry a real request id and are acked by the
  // destination; a copy that gets no ack within the timeout is re-sent.
  double replicate_timeout_ms = 1000;
  int replicate_max_attempts = 3;
};

class DataNode : public Actor {
 public:
  DataNode(std::string address, DataNodeOptions options)
      : Actor(std::move(address)), options_(std::move(options)) {}

  void OnStart(Cluster& cluster) override;
  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Points heartbeats/reports at a different NameNode (used by HA failover glue).
  void set_namenode(const std::string& nn) { options_.namenode = nn; }

  size_t chunk_count() const { return chunks_.size(); }
  bool HasChunk(int64_t chunk_id) const { return chunks_.count(chunk_id) > 0; }
  // Stored chunk ids in ascending order (chaos invariants audit these against the NameNode).
  std::vector<int64_t> ChunkIds() const {
    std::vector<int64_t> ids;
    ids.reserve(chunks_.size());
    for (const auto& [id, stored] : chunks_) {
      ids.push_back(id);
    }
    return ids;
  }
  // Total stored bytes (for tests / examples).
  size_t stored_bytes() const;

  // Test hook: silently flips a byte of a stored chunk without touching its checksum,
  // simulating corruption at rest. Returns false when the chunk is not stored here.
  bool CorruptStoredChunk(int64_t chunk_id);
  bool IsQuarantined(int64_t chunk_id) const { return quarantined_.count(chunk_id) > 0; }
  size_t quarantined_count() const { return quarantined_.size(); }

 private:
  struct StoredChunk {
    std::string data;
    int64_t checksum = 0;  // the writer's checksum, carried end-to-end
  };

  void HeartbeatLoop(Cluster& cluster);
  void SendHeartbeat(Cluster& cluster, bool full_report);
  void StoreChunk(int64_t chunk_id, std::string data, int64_t checksum, Cluster& cluster);
  // Drops a replica that failed its checksum and reports it to every NameNode.
  void Quarantine(int64_t chunk_id, Cluster& cluster);
  // One attempt of an acked replication copy; re-arms itself until acked or exhausted.
  void SendReplica(int64_t chunk_id, const std::string& dest, int attempt, Cluster& cluster);
  void ForEachNameNode(const std::function<void(const std::string&)>& fn) const;
  double DiskDelayMs(Cluster& cluster) const;

  DataNodeOptions options_;
  std::map<int64_t, StoredChunk> chunks_;
  // Chunk ids dropped after a checksum mismatch (cleared when a fresh good copy arrives).
  std::set<int64_t> quarantined_;
  // In-flight acked replication copies: req -> (chunk, dest) and the reverse dedupe set
  // (the NameNode re-issues replicate_cmd every check period while under-replicated).
  std::map<int64_t, std::pair<int64_t, std::string>> repl_reqs_;
  std::set<std::pair<int64_t, std::string>> repl_inflight_;
  int64_t next_repl_req_ = 1;
  int heartbeats_sent_ = 0;
  uint64_t start_epoch_ = 0;  // invalidates heartbeat loops from before a restart
};

}  // namespace boom

#endif  // SRC_BOOMFS_DATANODE_H_
