// Partitioned NameNode (paper revision F3, the scalability experiment): the namespace is
// hash-partitioned across N independent NameNode processes, and clients route each request
// by the hash of the *directory* portion of its path, so a directory and its direct children
// live on the same partition (ls and create/mkdir existence checks stay partition-local).
//
// The paper notes this took "one new table and eight rules" conceptually; here the change is
// purely a client-side routing function plus running N unmodified NameNode programs — the
// NameNode itself needs no modification, which is the same point the paper makes about
// data-centric designs partitioning naturally.

#ifndef SRC_BOOMFS_PARTITION_H_
#define SRC_BOOMFS_PARTITION_H_

#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/sim/cluster.h"

namespace boom {

struct PartitionedFsOptions {
  FsKind kind = FsKind::kBoomFs;
  int num_partitions = 2;
  std::string prefix = "nnp";
  int num_datanodes = 4;        // shared pool; every DataNode reports to every partition
  int replication_factor = 3;
  double heartbeat_period_ms = 500;
  size_t chunk_size = 64 * 1024;
  int num_clients = 1;
};

struct PartitionedFsHandles {
  std::vector<std::string> partitions;
  std::vector<std::string> datanodes;
  std::vector<FsClient*> clients;  // owned by the cluster
};

// Routing rule shared by all clients: partitions[RoutingPid(NsRoutingKey(cmd, path))] —
// ls routes by the listed directory, everything else by hash(dirname(path)); see
// src/boomfs/protocol.h. Directory creation is dual-homed (FsClient::Mkdir makes the
// canonical entry at the parent's partition and a child-serving copy at the directory's
// own partition), so parent-directory existence is partition-local — no every-partition
// directory broadcast.
std::string RouteByPath(const std::vector<std::string>& partitions, const std::string& cmd,
                        const std::string& path);

PartitionedFsHandles SetupPartitionedFs(Cluster& cluster, const PartitionedFsOptions& options);

}  // namespace boom

#endif  // SRC_BOOMFS_PARTITION_H_
