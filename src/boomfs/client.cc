#include "src/boomfs/client.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/boomfs/protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

namespace {
// Handles resolved once; registry names are the contract with docs/OBSERVABILITY.md.
Counter& ClientCounter(const char* name) { return MetricsRegistry::Global().counter(name); }
}  // namespace

// State for a multi-chunk write in flight. next_offset advances only when a chunk is acked,
// so a retry round re-sends exactly the bytes that were never confirmed.
struct WriteJob {
  std::string path;
  std::string data;
  size_t next_offset = 0;
  int round = 0;           // retry rounds consumed by the chunk currently being written
  int overload_round = 0;  // shed ("overloaded") retries, budgeted separately
  std::function<void(bool)> cb;
  SpanContext span;  // "fs.write" root span for the whole composite op
};

// State for a multi-chunk read in flight.
struct ReadJob {
  std::string path;
  ValueList chunk_ids;
  size_t next_chunk = 0;
  int round = 0;  // retry rounds consumed by the chunk currently being read
  std::string assembled;
  FsClient::DataCb cb;
  SpanContext span;  // "fs.read" root span for the whole composite op
};

void FsClient::Request(Cluster& cluster, const std::string& cmd, const std::string& path,
                       Value arg, ResponseCb cb, std::string forced_target) {
  int64_t req = next_req_++;
  PendingReq& pending = pending_[req];
  pending.cmd = cmd;
  pending.path = path;
  pending.arg = std::move(arg);
  pending.cb = std::move(cb);
  pending.forced_target = std::move(forced_target);
  pending.target_index = preferred_target_;
  // The request span joins whatever operation is active (an fs.write, a chaos workload
  // step) and covers the request until its response or terminal timeout.
  pending.span = cluster.StartSpan("ns:" + cmd, address(), cluster.active_span());
  pending.sent_ms = cluster.now();
  Dispatch(cluster, req);
}

void FsClient::Dispatch(Cluster& cluster, int64_t req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingReq& pending = it->second;
  ++requests_sent_;
  ++pending.attempts;
  ClientCounter("fs.client.ns_request").Add();
  if (pending.attempts > 1) {
    ClientCounter("fs.client.ns_failover").Add();
    cluster.SpanAttr(pending.span, "failover", std::to_string(pending.attempts - 1));
  }
  std::string nn;
  if (!pending.forced_target.empty()) {
    nn = pending.forced_target;
  } else if (router_) {
    nn = router_(pending.cmd, pending.path);
  } else if (pending.target_index == 0 || options_.fallbacks.empty()) {
    nn = options_.namenode;
  } else {
    nn = options_.fallbacks[(pending.target_index - 1) % options_.fallbacks.size()];
  }
  {
    // Parent the wire message (and the timeout event) to the request's span.
    Cluster::SpanScope scope(cluster, pending.span);
    cluster.Send(address(), nn, options_.request_table,
                 Tuple{Value(nn), Value(req), Value(address()), Value(pending.cmd),
                       Value(pending.path), pending.arg});
    // Always armed: with every NameNode dead the request surfaces a terminal cb(false,
    // "timeout") instead of leaving the caller waiting forever.
    ArmTimeout(cluster, req, pending.attempts);
  }
}

void FsClient::ArmTimeout(Cluster& cluster, int64_t req, int attempt) {
  cluster.ScheduleAfter(EffectiveRequestTimeout(), [this, &cluster, req, attempt] {
    auto it = pending_.find(req);
    if (it == pending_.end() || it->second.attempts != attempt) {
      return;  // answered, or a later attempt owns the timeout
    }
    ClientCounter("fs.client.ns_timeout").Add();
    if (it->second.attempts <= options_.max_retries) {
      ++it->second.target_index;  // rotate to the next NameNode
      Dispatch(cluster, req);
      return;
    }
    ResponseCb cb = std::move(it->second.cb);
    cluster.SpanAttr(it->second.span, "timeout", "1");
    cluster.EndSpan(it->second.span);
    pending_.erase(it);
    cb(false, Value("timeout"));
  });
}

double FsClient::Backoff(Cluster& cluster, int round) const {
  double base = options_.retry_base_ms;
  for (int i = 1; i < round; ++i) {
    base = std::min(base * 2, options_.retry_max_ms);
  }
  base = std::min(base, options_.retry_max_ms);
  // Exactly one Rng draw either way, so flipping full_jitter never shifts the seeded
  // schedule of anything else in the run.
  if (options_.full_jitter) {
    return cluster.rng().Uniform(0, base);
  }
  return base + cluster.rng().Uniform(0, base * 0.5);
}

bool FsClient::TrySpendRetryToken() {
  if (options_.retry_budget_cap <= 0) {
    return true;  // budget disabled
  }
  if (retry_tokens_ < 1) {
    ClientCounter("fs.client.retry_budget_exhausted").Add();
    return false;
  }
  retry_tokens_ -= 1;
  return true;
}

void FsClient::CreditSuccess() {
  if (options_.retry_budget_cap <= 0) {
    return;
  }
  retry_tokens_ =
      std::min(options_.retry_budget_cap, retry_tokens_ + options_.retry_budget_refill);
}

void FsClient::Mkdir(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdMkdir, path, Value(), std::move(cb));
}

void FsClient::MkdirAll(Cluster& c, const std::string& path,
                        std::vector<std::string> targets, ResponseCb cb) {
  auto remaining = std::make_shared<size_t>(targets.size());
  auto all_ok = std::make_shared<bool>(true);
  auto done_cb = std::make_shared<ResponseCb>(std::move(cb));
  for (const std::string& target : targets) {
    Request(c, kCmdMkdir, path, Value(),
            [remaining, all_ok, done_cb](bool ok, const Value&) {
              *all_ok = *all_ok && ok;
              if (--*remaining == 0) {
                (*done_cb)(*all_ok, Value());
              }
            },
            target);
  }
}
void FsClient::CreateFile(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdCreate, path, Value(), std::move(cb));
}
void FsClient::Exists(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdExists, path, Value(), std::move(cb));
}
void FsClient::Ls(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdLs, path, Value(), std::move(cb));
}
void FsClient::Rm(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdRm, path, Value(), std::move(cb));
}
void FsClient::Rename(Cluster& c, const std::string& path, const std::string& new_path,
                      ResponseCb cb) {
  Request(c, kCmdRename, path, Value(new_path), std::move(cb));
}
void FsClient::AddChunk(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdAddChunk, path, Value(), std::move(cb));
}
void FsClient::Chunks(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdChunks, path, Value(), std::move(cb));
}
void FsClient::Locations(Cluster& c, int64_t chunk_id, ResponseCb cb) {
  Request(c, kCmdLocations, "", Value(chunk_id), std::move(cb));
}

void FsClient::WriteFile(Cluster& cluster, const std::string& path, std::string data,
                         std::function<void(bool)> cb) {
  auto job = std::make_shared<WriteJob>();
  job->path = path;
  job->data = std::move(data);
  // Root span for the composite op; the span ctx and start time are captured by value in
  // the completion wrapper (capturing `job` there would make the shared_ptr cycle and leak).
  job->span = cluster.StartSpan("fs.write", address());
  cluster.SpanAttr(job->span, "path", path);
  double start_ms = cluster.now();
  job->cb = [&cluster, span = job->span, start_ms, user_cb = std::move(cb)](bool ok) {
    ClientCounter(ok ? "fs.client.write_ok" : "fs.client.write_fail").Add();
    MetricsRegistry::Global().histogram("fs.client.write_ms").Observe(cluster.now() -
                                                                      start_ms);
    cluster.SpanAttr(span, "ok", ok ? "1" : "0");
    cluster.EndSpan(span);
    user_cb(ok);
  };
  Cluster::SpanScope scope(cluster, job->span);
  CreateFile(cluster, path, [this, &cluster, job](bool ok, const Value&) {
    if (!ok) {
      job->cb(false);
      return;
    }
    WriteChunks(cluster, job);
  });
}

void FsClient::WriteChunks(Cluster& cluster, std::shared_ptr<WriteJob> job) {
  if (job->next_offset >= job->data.size()) {
    job->cb(true);
    return;
  }
  AddChunk(cluster, job->path, [this, &cluster, job](bool ok, const Value& payload) {
    if (!ok && IsOverloadedPayload(payload)) {
      // Shed by admission control: retryable-with-delay, NOT a transient failure — it
      // must not ride the escalation ladder (fan-out/abandon would only add load to a
      // server that just asked us to back off).
      RetryWriteOverloaded(cluster, job, OverloadRetryAfterMs(payload));
      return;
    }
    if (!ok || !payload.is_list() || payload.as_list().size() != 2) {
      // addchunk can fail transiently (NameNode timeout, safe mode): back off and retry.
      RetryWrite(cluster, job);
      return;
    }
    int64_t chunk_id = payload.as_list()[0].as_int();
    ValueList dns = payload.as_list()[1].as_list();
    if (dns.empty()) {
      RetryWrite(cluster, job);
      return;
    }
    size_t len = std::min(options_.chunk_size, job->data.size() - job->next_offset);
    std::string piece = job->data.substr(job->next_offset, len);
    int64_t checksum = ChunkChecksum(piece);

    auto advance = [this, &cluster, job, len] {
      job->next_offset += len;
      job->round = 0;
      WriteChunks(cluster, job);
    };

    // Attempt 1: replication pipeline through dns; the last replica acks.
    int64_t ack_req = next_req_++;
    pending_acks_[ack_req] = advance;
    ValueList pipeline(dns.begin() + 1, dns.end());
    const std::string& first = dns[0].as_string();
    cluster.Send(address(), first, kDnWrite,
                 Tuple{Value(first), Value(chunk_id), Value(piece), Value(checksum),
                       Value(std::move(pipeline)), Value(address()), Value(ack_req)});
    cluster.ScheduleAfter(
        options_.write_ack_timeout_ms,
        [this, &cluster, job, chunk_id, dns, piece, checksum, advance, ack_req] {
          if (pending_acks_.erase(ack_req) == 0) {
            return;  // pipeline acked in time
          }
          // Attempt 2: a replica mid-pipeline died and swallowed the chain. Write each
          // replica individually; the first ack completes the chunk (the NameNode's
          // re-replication heals any copy that never landed).
          ClientCounter("fs.client.write_fanout").Add();
          int64_t fan_req = next_req_++;
          pending_acks_[fan_req] = advance;
          for (const Value& d : dns) {
            const std::string& dn = d.as_string();
            cluster.Send(address(), dn, kDnWrite,
                         Tuple{Value(dn), Value(chunk_id), Value(piece), Value(checksum),
                               Value(ValueList{}), Value(address()), Value(fan_req)});
          }
          cluster.ScheduleAfter(options_.write_ack_timeout_ms,
                                [this, &cluster, job, chunk_id, fan_req] {
            if (pending_acks_.erase(fan_req) == 0) {
              return;  // some replica acked
            }
            // No replica is reachable: give the allocated id back (otherwise the file
            // keeps a chunk that was never written) and retry with a fresh pipeline.
            AbandonAndRetry(cluster, job, chunk_id);
          });
        });
  });
}

void FsClient::RetryWrite(Cluster& cluster, std::shared_ptr<WriteJob> job) {
  ++job->round;
  ClientCounter("fs.client.write_retry_round").Add();
  if (job->round >= options_.write_max_rounds) {
    job->cb(false);
    return;
  }
  // Re-parent the backoff wakeup to the op span: the retry is part of the op, not of
  // whatever response context triggered it.
  Cluster::SpanScope scope(cluster, job->span);
  cluster.ScheduleAfter(Backoff(cluster, job->round),
                        [this, &cluster, job] { WriteChunks(cluster, job); });
}

void FsClient::RetryWriteOverloaded(Cluster& cluster, std::shared_ptr<WriteJob> job,
                                    double retry_after_ms) {
  ++job->overload_round;
  ClientCounter("fs.client.write_overload_retry").Add();
  int max_rounds = options_.overload_max_rounds > 0 ? options_.overload_max_rounds
                                                    : options_.write_max_rounds;
  if (job->overload_round >= max_rounds || !TrySpendRetryToken()) {
    ClientCounter("fs.client.write_overload_give_up").Add();
    job->cb(false);
    return;
  }
  double delay = Backoff(cluster, job->overload_round);
  if (options_.honor_retry_after) {
    delay = std::max(delay, retry_after_ms);
  }
  Cluster::SpanScope scope(cluster, job->span);
  cluster.ScheduleAfter(delay, [this, &cluster, job] { WriteChunks(cluster, job); });
}

void FsClient::AbandonAndRetry(Cluster& cluster, std::shared_ptr<WriteJob> job,
                               int64_t chunk_id) {
  ClientCounter("fs.client.chunk_abandon").Add();
  // Abandon is idempotent on the NameNode; retry the write whether or not it succeeded
  // (on a timeout the chunk stays attached, but a re-read would still see its bytes once
  // some replica write lands — the retry ladder bounds the damage).
  Request(cluster, kCmdAbandon, job->path, Value(chunk_id),
          [this, &cluster, job](bool, const Value&) { RetryWrite(cluster, job); });
}

void FsClient::ReadFile(Cluster& cluster, const std::string& path, DataCb cb) {
  auto job = std::make_shared<ReadJob>();
  job->path = path;
  job->span = cluster.StartSpan("fs.read", address());
  cluster.SpanAttr(job->span, "path", path);
  double start_ms = cluster.now();
  job->cb = [&cluster, span = job->span, start_ms, user_cb = std::move(cb)](
                bool ok, const std::string& data) {
    ClientCounter(ok ? "fs.client.read_ok" : "fs.client.read_fail").Add();
    MetricsRegistry::Global().histogram("fs.client.read_ms").Observe(cluster.now() -
                                                                     start_ms);
    cluster.SpanAttr(span, "ok", ok ? "1" : "0");
    cluster.EndSpan(span);
    user_cb(ok, data);
  };
  Cluster::SpanScope scope(cluster, job->span);
  Chunks(cluster, path, [this, &cluster, job](bool ok, const Value& payload) {
    if (!ok || !payload.is_list()) {
      job->cb(false, "");
      return;
    }
    job->chunk_ids = payload.as_list();
    ReadChunks(cluster, job);
  });
}

void FsClient::ReadChunks(Cluster& cluster, std::shared_ptr<ReadJob> job) {
  if (job->next_chunk >= job->chunk_ids.size()) {
    job->cb(true, job->assembled);
    return;
  }
  int64_t chunk_id = job->chunk_ids[job->next_chunk].as_int();
  Locations(cluster, chunk_id, [this, &cluster, job, chunk_id](bool ok, const Value& locs) {
    if (!ok || !locs.is_list() || locs.as_list().empty()) {
      // No locations right now (NameNode in safe mode, every replica quarantined
      // mid-heal, or the request timed out): back off and re-fetch.
      RetryRead(cluster, job);
      return;
    }
    TryRead(cluster, job, chunk_id, locs.as_list(), 0);
  });
}

void FsClient::TryRead(Cluster& cluster, std::shared_ptr<ReadJob> job, int64_t chunk_id,
                       ValueList locs, size_t index) {
  if (index >= locs.size()) {
    RetryRead(cluster, job);  // every replica in this round failed
    return;
  }
  const std::string dn = locs[index].as_string();
  int64_t read_req = next_req_++;
  pending_reads_[read_req] = [this, &cluster, job, chunk_id, locs, index](
                                 bool ok, std::string data, int64_t checksum) {
    if (!ok || ChunkChecksum(data) != checksum) {
      // Replica missing, quarantined, or the payload fails its own checksum: next replica.
      ClientCounter(ok ? "fs.client.read_checksum_reject" : "fs.client.read_replica_miss")
          .Add();
      TryRead(cluster, job, chunk_id, locs, index + 1);
      return;
    }
    job->assembled += data;
    ++job->next_chunk;
    job->round = 0;
    ReadChunks(cluster, job);
  };
  cluster.Send(address(), dn, kDnRead,
               Tuple{Value(dn), Value(chunk_id), Value(address()), Value(read_req)});
  cluster.ScheduleAfter(options_.dn_read_timeout_ms,
                        [this, &cluster, job, chunk_id, locs, index, read_req] {
    if (pending_reads_.erase(read_req) == 0) {
      return;  // answered in time
    }
    ClientCounter("fs.client.read_replica_timeout").Add();
    TryRead(cluster, job, chunk_id, locs, index + 1);
  });
}

void FsClient::RetryRead(Cluster& cluster, std::shared_ptr<ReadJob> job) {
  ++job->round;
  ClientCounter("fs.client.read_retry_round").Add();
  if (job->round >= options_.read_max_rounds) {
    job->cb(false, "");
    return;
  }
  Cluster::SpanScope scope(cluster, job->span);
  cluster.ScheduleAfter(Backoff(cluster, job->round),
                        [this, &cluster, job] { ReadChunks(cluster, job); });
}

void FsClient::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kNsResponse) {
    // (Client, ReqId, Ok, Payload)
    int64_t req = msg.tuple[1].as_int();
    auto it = pending_.find(req);
    if (it == pending_.end()) {
      return;  // duplicate/late response (possible during failover)
    }
    ResponseCb cb = std::move(it->second.cb);
    preferred_target_ = it->second.target_index;  // this target answered: stick to it
    MetricsRegistry::Global()
        .histogram("fs.client.ns_ms")
        .Observe(cluster.now() - it->second.sent_ms);
    cluster.EndSpan(it->second.span);
    pending_.erase(it);
    if (msg.tuple[2].Truthy()) {
      CreditSuccess();
    }
    cb(msg.tuple[2].Truthy(), msg.tuple[3]);
    return;
  }
  if (msg.table == kDnWriteAck) {
    // (Client, ReqId, ChunkId)
    int64_t req = msg.tuple[1].as_int();
    auto it = pending_acks_.find(req);
    if (it == pending_acks_.end()) {
      return;
    }
    auto cb = std::move(it->second);
    pending_acks_.erase(it);
    cb();
    return;
  }
  if (msg.table == kDnReadData) {
    // (Client, ReqId, Ok, Data, Checksum)
    int64_t req = msg.tuple[1].as_int();
    auto it = pending_reads_.find(req);
    if (it == pending_reads_.end()) {
      return;
    }
    auto cb = std::move(it->second);
    pending_reads_.erase(it);
    cb(msg.tuple[2].Truthy(), msg.tuple[3].as_string(), msg.tuple[4].as_int());
    return;
  }
  BOOM_LOG(Warning) << "FsClient " << address() << ": unknown message " << msg.table;
}

}  // namespace boom
