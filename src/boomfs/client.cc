#include "src/boomfs/client.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/boomfs/protocol.h"
#include "src/telemetry/metrics.h"

namespace boom {

namespace {
// Handles resolved once; registry names are the contract with docs/OBSERVABILITY.md.
Counter& ClientCounter(const char* name) { return MetricsRegistry::Global().counter(name); }

// "/a/b/c" -> {"/a", "/a/b", "/a/b/c"}; "/" and "" have no prefixes.
std::vector<std::string> PathPrefixes(const std::string& path) {
  std::vector<std::string> out;
  size_t pos = 1;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) {
      slash = path.size();
    }
    if (slash > pos) {
      out.push_back(path.substr(0, slash));
    }
    pos = slash + 1;
  }
  return out;
}
}  // namespace

bool FedMapCache::ApplyRow(int64_t pid, int64_t epoch, const std::string& leader,
                           std::vector<std::string> members) {
  auto it = rows.find(pid);
  if (it != rows.end() && epoch <= it->second.epoch) {
    return false;  // stale or already-applied row: routing never rolls back
  }
  FedGroupEntry& row = rows[pid];
  row.epoch = epoch;
  row.leader = leader;
  row.members = std::move(members);
  return true;
}

int FedMapCache::ApplyStalePayload(const Value& payload) {
  if (!IsStaleEpochPayload(payload)) {
    return 0;
  }
  const ValueList& outer = payload.as_list();
  global_epoch = std::max(global_epoch, outer[1].as_int());
  int applied = 0;
  for (const Value& row : outer[2].as_list()) {
    if (!row.is_list() || row.as_list().size() != 4) {
      continue;
    }
    const ValueList& r = row.as_list();
    if (!r[0].is_numeric() || !r[1].is_numeric() || !r[2].is_string() || !r[3].is_list()) {
      continue;
    }
    std::vector<std::string> members;
    for (const Value& m : r[3].as_list()) {
      if (m.is_string()) {
        members.push_back(m.as_string());
      }
    }
    if (ApplyRow(r[0].as_int(), r[1].as_int(), r[2].as_string(), std::move(members))) {
      ++applied;
    }
  }
  return applied;
}

// State for a multi-chunk write in flight. next_offset advances only when a chunk is acked,
// so a retry round re-sends exactly the bytes that were never confirmed.
struct WriteJob {
  std::string path;
  std::string data;
  size_t next_offset = 0;
  int round = 0;           // retry rounds consumed by the chunk currently being written
  int overload_round = 0;  // shed ("overloaded") retries, budgeted separately
  std::function<void(bool)> cb;
  SpanContext span;  // "fs.write" root span for the whole composite op
};

// State for a multi-chunk read in flight.
struct ReadJob {
  std::string path;
  ValueList chunk_ids;
  size_t next_chunk = 0;
  int round = 0;  // retry rounds consumed by the chunk currently being read
  std::string assembled;
  FsClient::DataCb cb;
  SpanContext span;  // "fs.read" root span for the whole composite op
};

// State for a cross-partition rename in flight (federated routing): the chunk ids
// returned by xr_intent, adopted one at a time at the destination partition.
struct FedRenameJob {
  std::string src;
  std::string dst;
  ValueList chunks;
  size_t next_chunk = 0;
  FsClient::ResponseCb cb;
};

void FsClient::Request(Cluster& cluster, const std::string& cmd, const std::string& path,
                       Value arg, ResponseCb cb, std::string forced_target,
                       std::string table, std::string route_key) {
  int64_t req = next_req_++;
  PendingReq& pending = pending_[req];
  pending.cmd = cmd;
  pending.path = path;
  pending.arg = std::move(arg);
  pending.cb = std::move(cb);
  pending.forced_target = std::move(forced_target);
  pending.table = std::move(table);
  pending.route_key = std::move(route_key);
  pending.target_index = preferred_target_;
  // The request span joins whatever operation is active (an fs.write, a chaos workload
  // step) and covers the request until its response or terminal timeout.
  pending.span = cluster.StartSpan("ns:" + cmd, address(), cluster.active_span());
  pending.sent_ms = cluster.now();
  Dispatch(cluster, req);
}

void FsClient::Dispatch(Cluster& cluster, int64_t req) {
  auto it = pending_.find(req);
  if (it == pending_.end()) {
    return;
  }
  PendingReq& pending = it->second;
  ++requests_sent_;
  ++pending.attempts;
  ClientCounter("fs.client.ns_request").Add();
  if (pending.attempts > 1) {
    ClientCounter("fs.client.ns_failover").Add();
    cluster.SpanAttr(pending.span, "failover", std::to_string(pending.attempts - 1));
  }
  std::string nn;
  if (!pending.forced_target.empty()) {
    nn = pending.forced_target;
  } else if (router_) {
    // A route_key override routes like "ls <key>" (by the key itself, not its parent).
    nn = pending.route_key.empty() ? router_(pending.cmd, pending.path)
                                   : router_(kCmdLs, pending.route_key);
  } else if (fed_cache_ && fed_num_partitions_ > 0) {
    const std::string key = pending.route_key.empty()
                                ? NsRoutingKey(pending.cmd, pending.path)
                                : pending.route_key;
    auto entry = fed_cache_->rows.find(RoutingPid(key, fed_num_partitions_));
    if (entry != fed_cache_->rows.end() && !entry->second.members.empty()) {
      // First attempt to the cached leader; failover rotates through the group (any
      // member forwards to the live leader via the HA bridge).
      if (pending.attempts == 1 && !entry->second.leader.empty()) {
        nn = entry->second.leader;
      } else {
        const std::vector<std::string>& members = entry->second.members;
        nn = members[static_cast<size_t>(pending.attempts) % members.size()];
      }
    } else {
      nn = options_.namenode;
    }
  } else if (pending.target_index == 0 || options_.fallbacks.empty()) {
    nn = options_.namenode;
  } else {
    nn = options_.fallbacks[(pending.target_index - 1) % options_.fallbacks.size()];
  }
  {
    // Parent the wire message (and the timeout event) to the request's span.
    Cluster::SpanScope scope(cluster, pending.span);
    const std::string& table =
        pending.table.empty() ? options_.request_table : pending.table;
    std::vector<Value> wire{Value(nn),          Value(req),           Value(address()),
                            Value(pending.cmd), Value(pending.path),  pending.arg};
    if (fed_cache_ && table == kFedRequest) {
      // fed_request carries (Pid, CachedEpoch) so the serving group can gate on
      // ownership and answer stale routing with the fresh map.
      const std::string key = pending.route_key.empty()
                                  ? NsRoutingKey(pending.cmd, pending.path)
                                  : pending.route_key;
      wire.push_back(Value(RoutingPid(key, fed_num_partitions_)));
      wire.push_back(Value(fed_cache_->global_epoch));
    }
    cluster.Send(address(), nn, table, Tuple(std::move(wire)));
    // Always armed: with every NameNode dead the request surfaces a terminal cb(false,
    // "timeout") instead of leaving the caller waiting forever.
    ArmTimeout(cluster, req, pending.attempts);
  }
}

void FsClient::ArmTimeout(Cluster& cluster, int64_t req, int attempt) {
  cluster.ScheduleAfter(EffectiveRequestTimeout(), [this, &cluster, req, attempt] {
    auto it = pending_.find(req);
    if (it == pending_.end() || it->second.attempts != attempt) {
      return;  // answered, or a later attempt owns the timeout
    }
    ClientCounter("fs.client.ns_timeout").Add();
    if (it->second.attempts <= options_.max_retries) {
      ++it->second.target_index;  // rotate to the next NameNode
      Dispatch(cluster, req);
      return;
    }
    ResponseCb cb = std::move(it->second.cb);
    cluster.SpanAttr(it->second.span, "timeout", "1");
    cluster.EndSpan(it->second.span);
    pending_.erase(it);
    cb(false, Value("timeout"));
  });
}

double FsClient::Backoff(Cluster& cluster, int round) const {
  double base = options_.retry_base_ms;
  for (int i = 1; i < round; ++i) {
    base = std::min(base * 2, options_.retry_max_ms);
  }
  base = std::min(base, options_.retry_max_ms);
  // Exactly one Rng draw either way, so flipping full_jitter never shifts the seeded
  // schedule of anything else in the run.
  if (options_.full_jitter) {
    return cluster.rng().Uniform(0, base);
  }
  return base + cluster.rng().Uniform(0, base * 0.5);
}

bool FsClient::TrySpendRetryToken() {
  if (options_.retry_budget_cap <= 0) {
    return true;  // budget disabled
  }
  if (retry_tokens_ < 1) {
    ClientCounter("fs.client.retry_budget_exhausted").Add();
    return false;
  }
  retry_tokens_ -= 1;
  return true;
}

void FsClient::CreditSuccess() {
  if (options_.retry_budget_cap <= 0) {
    return;
  }
  retry_tokens_ =
      std::min(options_.retry_budget_cap, retry_tokens_ + options_.retry_budget_refill);
}

void FsClient::Mkdir(Cluster& c, const std::string& path, ResponseCb cb) {
  bool dual = false;
  if (!path.empty() && path != "/") {
    if (fed_cache_ && fed_num_partitions_ > 1) {
      dual = RoutingPid(NsRoutingKey(kCmdMkdir, path), fed_num_partitions_) !=
             RoutingPid(path, fed_num_partitions_);
    } else if (router_) {
      dual = router_(kCmdMkdir, path) != router_(kCmdLs, path);
    }
  }
  if (!dual) {
    Request(c, kCmdMkdir, path, Value(), std::move(cb));
    return;
  }
  // Dual-homed directory: the canonical entry lands at the parent's partition (where the
  // directory is listed); a child-serving copy — with any missing ancestor scaffolding —
  // lands at the directory's own partition (where its entries and their routing live).
  // This keeps parent-directory existence a partition-local question; the old
  // every-partition MkdirAll fan-out is gone.
  auto remaining = std::make_shared<int>(2);
  auto all_ok = std::make_shared<bool>(true);
  auto done_cb = std::make_shared<ResponseCb>(std::move(cb));
  ResponseCb join = [remaining, all_ok, done_cb](bool ok, const Value&) {
    *all_ok = *all_ok && ok;
    if (--*remaining == 0) {
      (*done_cb)(*all_ok, Value());
    }
  };
  MkdirLeg(c, path, "", join);
  auto prefixes = std::make_shared<std::vector<std::string>>(PathPrefixes(path));
  MkdirScaffold(c, prefixes, 0, path, std::make_shared<ResponseCb>(join));
}

void FsClient::MkdirLeg(Cluster& c, const std::string& path, const std::string& route_key,
                        ResponseCb cb) {
  auto done = std::make_shared<ResponseCb>(std::move(cb));
  Request(c, kCmdMkdir, path, Value(),
          [this, &c, path, route_key, done](bool ok, const Value& pay) {
            if (ok) {
              (*done)(true, pay);
              return;
            }
            // "mkdir failed" covers both already-exists and missing-parent; an Exists
            // probe on the same route disambiguates, so repeated legs stay idempotent.
            Request(c, kCmdExists, path, Value(),
                    [done](bool ok2, const Value& present) {
                      (*done)(ok2 && present.Truthy(), Value());
                    },
                    "", "", route_key);
          },
          "", "", route_key);
}

void FsClient::MkdirScaffold(Cluster& c, std::shared_ptr<std::vector<std::string>> prefixes,
                             size_t index, std::string route_key,
                             std::shared_ptr<ResponseCb> done) {
  if (index >= prefixes->size()) {
    (*done)(true, Value());
    return;
  }
  MkdirLeg(c, (*prefixes)[index], route_key,
           [this, &c, prefixes, index, route_key, done](bool ok, const Value&) {
             if (!ok) {
               (*done)(false, Value());
               return;
             }
             MkdirScaffold(c, prefixes, index + 1, route_key, done);
           });
}

void FsClient::MkdirP(Cluster& c, const std::string& path, ResponseCb cb) {
  auto prefixes = std::make_shared<std::vector<std::string>>(PathPrefixes(path));
  MkdirPStep(c, prefixes, 0, std::make_shared<ResponseCb>(std::move(cb)));
}

void FsClient::MkdirPStep(Cluster& c, std::shared_ptr<std::vector<std::string>> prefixes,
                          size_t index, std::shared_ptr<ResponseCb> done) {
  if (index >= prefixes->size()) {
    (*done)(true, Value());
    return;
  }
  Mkdir(c, (*prefixes)[index], [this, &c, prefixes, index, done](bool ok, const Value&) {
    if (!ok) {
      (*done)(false, Value());
      return;
    }
    MkdirPStep(c, prefixes, index + 1, done);
  });
}
void FsClient::CreateFile(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdCreate, path, Value(), std::move(cb));
}
void FsClient::Exists(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdExists, path, Value(), std::move(cb));
}
void FsClient::Ls(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdLs, path, Value(), std::move(cb));
}
void FsClient::Rm(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdRm, path, Value(), std::move(cb));
}
void FsClient::Rename(Cluster& c, const std::string& path, const std::string& new_path,
                      ResponseCb cb) {
  if (fed_cache_ && fed_num_partitions_ > 1 &&
      RoutingPid(NsRoutingKey(kCmdRename, path), fed_num_partitions_) !=
          RoutingPid(NsRoutingKey(kCmdRename, new_path), fed_num_partitions_)) {
    FedRename(c, path, new_path, std::move(cb));
    return;
  }
  Request(c, kCmdRename, path, Value(new_path), std::move(cb));
}

void FsClient::FedRename(Cluster& cluster, const std::string& path,
                         const std::string& new_path, ResponseCb cb) {
  ClientCounter("fs.client.xr_rename").Add();
  auto job = std::make_shared<FedRenameJob>();
  job->src = path;
  job->dst = new_path;
  job->cb = std::move(cb);
  // Phase 1: mark the source moving; the answer carries [FileId, chunk ids].
  Request(cluster, kCmdXrIntent, path, Value(),
          [this, &cluster, job](bool ok, const Value& pay) {
            if (!ok) {
              // Nothing changed at either partition (a timeout stays a timeout: the
              // intent may or may not have been marked — the caller treats it as
              // uncertain, like any timed-out mutation).
              job->cb(false, pay);
              return;
            }
            if (!pay.is_list() || pay.as_list().size() != 2 ||
                !pay.as_list()[1].is_list()) {
              FedRenameUnwind(cluster, job, Value("rename failed"));
              return;
            }
            job->chunks = pay.as_list()[1].as_list();
            // Phase 2: ordinary create at the destination partition, then adopt the
            // source's already-allocated chunk ids one by one.
            Request(cluster, kCmdCreate, job->dst, Value(),
                    [this, &cluster, job](bool ok2, const Value& pay2) {
                      if (!ok2) {
                        FedRenameUnwind(cluster, job, pay2);
                        return;
                      }
                      FedRenameAdopt(cluster, job);
                    });
          });
}

void FsClient::FedRenameAdopt(Cluster& cluster, std::shared_ptr<FedRenameJob> job) {
  if (job->next_chunk >= job->chunks.size()) {
    // Phase 3: commit tombstones the source entry; the destination owns the chunks now.
    Request(cluster, kCmdXrCommit, job->src, Value(),
            [job](bool ok, const Value& pay) { job->cb(ok, ok ? Value() : pay); });
    return;
  }
  Value chunk = job->chunks[job->next_chunk];
  Request(cluster, kCmdXrAddChunk, job->dst, std::move(chunk),
          [this, &cluster, job](bool ok, const Value& pay) {
            if (!ok) {
              FedRenameUnwind(cluster, job, pay);
              return;
            }
            ++job->next_chunk;
            FedRenameAdopt(cluster, job);
          });
}

void FsClient::FedRenameUnwind(Cluster& cluster, std::shared_ptr<FedRenameJob> job,
                               const Value& failure) {
  ClientCounter("fs.client.xr_unwind").Add();
  // Best-effort unwind: drop the half-imported destination entry WITHOUT chunk GC
  // (xr_drop — the source still references the adopted chunks), then release the source
  // intent (xr_abort). Both are idempotent; the caller sees the original failure.
  Value fail = failure;
  Request(cluster, kCmdXrDrop, job->dst, Value(),
          [this, &cluster, job, fail](bool, const Value&) {
            Request(cluster, kCmdXrAbort, job->src, Value(),
                    [job, fail](bool, const Value&) { job->cb(false, fail); });
          });
}
void FsClient::AddChunk(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdAddChunk, path, Value(), std::move(cb));
}
void FsClient::Chunks(Cluster& c, const std::string& path, ResponseCb cb) {
  Request(c, kCmdChunks, path, Value(), std::move(cb));
}
void FsClient::Locations(Cluster& c, int64_t chunk_id, ResponseCb cb) {
  Request(c, kCmdLocations, "", Value(chunk_id), std::move(cb));
}

void FsClient::RawOp(Cluster& c, const std::string& cmd, const std::string& path, Value arg,
                     ResponseCb cb, const std::string& target, const std::string& table) {
  Request(c, cmd, path, std::move(arg), std::move(cb), target, table);
}

void FsClient::WriteFile(Cluster& cluster, const std::string& path, std::string data,
                         std::function<void(bool)> cb) {
  auto job = std::make_shared<WriteJob>();
  job->path = path;
  job->data = std::move(data);
  // Root span for the composite op; the span ctx and start time are captured by value in
  // the completion wrapper (capturing `job` there would make the shared_ptr cycle and leak).
  job->span = cluster.StartSpan("fs.write", address());
  cluster.SpanAttr(job->span, "path", path);
  double start_ms = cluster.now();
  job->cb = [&cluster, span = job->span, start_ms, user_cb = std::move(cb)](bool ok) {
    ClientCounter(ok ? "fs.client.write_ok" : "fs.client.write_fail").Add();
    MetricsRegistry::Global().histogram("fs.client.write_ms").Observe(cluster.now() -
                                                                      start_ms);
    cluster.SpanAttr(span, "ok", ok ? "1" : "0");
    cluster.EndSpan(span);
    user_cb(ok);
  };
  Cluster::SpanScope scope(cluster, job->span);
  CreateFile(cluster, path, [this, &cluster, job](bool ok, const Value&) {
    if (!ok) {
      job->cb(false);
      return;
    }
    WriteChunks(cluster, job);
  });
}

void FsClient::WriteChunks(Cluster& cluster, std::shared_ptr<WriteJob> job) {
  if (job->next_offset >= job->data.size()) {
    job->cb(true);
    return;
  }
  AddChunk(cluster, job->path, [this, &cluster, job](bool ok, const Value& payload) {
    if (!ok && IsOverloadedPayload(payload)) {
      // Shed by admission control: retryable-with-delay, NOT a transient failure — it
      // must not ride the escalation ladder (fan-out/abandon would only add load to a
      // server that just asked us to back off).
      RetryWriteOverloaded(cluster, job, OverloadRetryAfterMs(payload));
      return;
    }
    if (!ok || !payload.is_list() || payload.as_list().size() != 2) {
      // addchunk can fail transiently (NameNode timeout, safe mode): back off and retry.
      RetryWrite(cluster, job);
      return;
    }
    int64_t chunk_id = payload.as_list()[0].as_int();
    ValueList dns = payload.as_list()[1].as_list();
    if (dns.empty()) {
      RetryWrite(cluster, job);
      return;
    }
    size_t len = std::min(options_.chunk_size, job->data.size() - job->next_offset);
    std::string piece = job->data.substr(job->next_offset, len);
    int64_t checksum = ChunkChecksum(piece);

    auto advance = [this, &cluster, job, len] {
      job->next_offset += len;
      job->round = 0;
      WriteChunks(cluster, job);
    };

    // Attempt 1: replication pipeline through dns; the last replica acks.
    int64_t ack_req = next_req_++;
    pending_acks_[ack_req] = advance;
    ValueList pipeline(dns.begin() + 1, dns.end());
    const std::string& first = dns[0].as_string();
    cluster.Send(address(), first, kDnWrite,
                 Tuple{Value(first), Value(chunk_id), Value(piece), Value(checksum),
                       Value(std::move(pipeline)), Value(address()), Value(ack_req)});
    cluster.ScheduleAfter(
        options_.write_ack_timeout_ms,
        [this, &cluster, job, chunk_id, dns, piece, checksum, advance, ack_req] {
          if (pending_acks_.erase(ack_req) == 0) {
            return;  // pipeline acked in time
          }
          // Attempt 2: a replica mid-pipeline died and swallowed the chain. Write each
          // replica individually; the first ack completes the chunk (the NameNode's
          // re-replication heals any copy that never landed).
          ClientCounter("fs.client.write_fanout").Add();
          int64_t fan_req = next_req_++;
          pending_acks_[fan_req] = advance;
          for (const Value& d : dns) {
            const std::string& dn = d.as_string();
            cluster.Send(address(), dn, kDnWrite,
                         Tuple{Value(dn), Value(chunk_id), Value(piece), Value(checksum),
                               Value(ValueList{}), Value(address()), Value(fan_req)});
          }
          cluster.ScheduleAfter(options_.write_ack_timeout_ms,
                                [this, &cluster, job, chunk_id, fan_req] {
            if (pending_acks_.erase(fan_req) == 0) {
              return;  // some replica acked
            }
            // No replica is reachable: give the allocated id back (otherwise the file
            // keeps a chunk that was never written) and retry with a fresh pipeline.
            AbandonAndRetry(cluster, job, chunk_id);
          });
        });
  });
}

void FsClient::RetryWrite(Cluster& cluster, std::shared_ptr<WriteJob> job) {
  ++job->round;
  ClientCounter("fs.client.write_retry_round").Add();
  if (job->round >= options_.write_max_rounds) {
    job->cb(false);
    return;
  }
  // Re-parent the backoff wakeup to the op span: the retry is part of the op, not of
  // whatever response context triggered it.
  Cluster::SpanScope scope(cluster, job->span);
  cluster.ScheduleAfter(Backoff(cluster, job->round),
                        [this, &cluster, job] { WriteChunks(cluster, job); });
}

void FsClient::RetryWriteOverloaded(Cluster& cluster, std::shared_ptr<WriteJob> job,
                                    double retry_after_ms) {
  ++job->overload_round;
  ClientCounter("fs.client.write_overload_retry").Add();
  int max_rounds = options_.overload_max_rounds > 0 ? options_.overload_max_rounds
                                                    : options_.write_max_rounds;
  if (job->overload_round >= max_rounds || !TrySpendRetryToken()) {
    ClientCounter("fs.client.write_overload_give_up").Add();
    job->cb(false);
    return;
  }
  double delay = Backoff(cluster, job->overload_round);
  if (options_.honor_retry_after) {
    delay = std::max(delay, retry_after_ms);
  }
  Cluster::SpanScope scope(cluster, job->span);
  cluster.ScheduleAfter(delay, [this, &cluster, job] { WriteChunks(cluster, job); });
}

void FsClient::AbandonAndRetry(Cluster& cluster, std::shared_ptr<WriteJob> job,
                               int64_t chunk_id) {
  ClientCounter("fs.client.chunk_abandon").Add();
  // Abandon is idempotent on the NameNode; retry the write whether or not it succeeded
  // (on a timeout the chunk stays attached, but a re-read would still see its bytes once
  // some replica write lands — the retry ladder bounds the damage).
  Request(cluster, kCmdAbandon, job->path, Value(chunk_id),
          [this, &cluster, job](bool, const Value&) { RetryWrite(cluster, job); });
}

void FsClient::ReadFile(Cluster& cluster, const std::string& path, DataCb cb) {
  auto job = std::make_shared<ReadJob>();
  job->path = path;
  job->span = cluster.StartSpan("fs.read", address());
  cluster.SpanAttr(job->span, "path", path);
  double start_ms = cluster.now();
  job->cb = [&cluster, span = job->span, start_ms, user_cb = std::move(cb)](
                bool ok, const std::string& data) {
    ClientCounter(ok ? "fs.client.read_ok" : "fs.client.read_fail").Add();
    MetricsRegistry::Global().histogram("fs.client.read_ms").Observe(cluster.now() -
                                                                     start_ms);
    cluster.SpanAttr(span, "ok", ok ? "1" : "0");
    cluster.EndSpan(span);
    user_cb(ok, data);
  };
  Cluster::SpanScope scope(cluster, job->span);
  Chunks(cluster, path, [this, &cluster, job](bool ok, const Value& payload) {
    if (!ok || !payload.is_list()) {
      job->cb(false, "");
      return;
    }
    job->chunk_ids = payload.as_list();
    ReadChunks(cluster, job);
  });
}

void FsClient::ReadChunks(Cluster& cluster, std::shared_ptr<ReadJob> job) {
  if (job->next_chunk >= job->chunk_ids.size()) {
    job->cb(true, job->assembled);
    return;
  }
  int64_t chunk_id = job->chunk_ids[job->next_chunk].as_int();
  Locations(cluster, chunk_id, [this, &cluster, job, chunk_id](bool ok, const Value& locs) {
    if (!ok || !locs.is_list() || locs.as_list().empty()) {
      // No locations right now (NameNode in safe mode, every replica quarantined
      // mid-heal, or the request timed out): back off and re-fetch.
      RetryRead(cluster, job);
      return;
    }
    TryRead(cluster, job, chunk_id, locs.as_list(), 0);
  });
}

void FsClient::TryRead(Cluster& cluster, std::shared_ptr<ReadJob> job, int64_t chunk_id,
                       ValueList locs, size_t index) {
  if (index >= locs.size()) {
    RetryRead(cluster, job);  // every replica in this round failed
    return;
  }
  const std::string dn = locs[index].as_string();
  int64_t read_req = next_req_++;
  pending_reads_[read_req] = [this, &cluster, job, chunk_id, locs, index](
                                 bool ok, std::string data, int64_t checksum) {
    if (!ok || ChunkChecksum(data) != checksum) {
      // Replica missing, quarantined, or the payload fails its own checksum: next replica.
      ClientCounter(ok ? "fs.client.read_checksum_reject" : "fs.client.read_replica_miss")
          .Add();
      TryRead(cluster, job, chunk_id, locs, index + 1);
      return;
    }
    job->assembled += data;
    ++job->next_chunk;
    job->round = 0;
    ReadChunks(cluster, job);
  };
  cluster.Send(address(), dn, kDnRead,
               Tuple{Value(dn), Value(chunk_id), Value(address()), Value(read_req)});
  cluster.ScheduleAfter(options_.dn_read_timeout_ms,
                        [this, &cluster, job, chunk_id, locs, index, read_req] {
    if (pending_reads_.erase(read_req) == 0) {
      return;  // answered in time
    }
    ClientCounter("fs.client.read_replica_timeout").Add();
    TryRead(cluster, job, chunk_id, locs, index + 1);
  });
}

void FsClient::RetryRead(Cluster& cluster, std::shared_ptr<ReadJob> job) {
  ++job->round;
  ClientCounter("fs.client.read_retry_round").Add();
  if (job->round >= options_.read_max_rounds) {
    job->cb(false, "");
    return;
  }
  Cluster::SpanScope scope(cluster, job->span);
  cluster.ScheduleAfter(Backoff(cluster, job->round),
                        [this, &cluster, job] { ReadChunks(cluster, job); });
}

void FsClient::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kNsResponse) {
    // (Client, ReqId, Ok, Payload)
    int64_t req = msg.tuple[1].as_int();
    auto it = pending_.find(req);
    if (it == pending_.end()) {
      return;  // duplicate/late response (possible during failover)
    }
    if (fed_cache_ && !msg.tuple[2].Truthy()) {
      const Value& payload = msg.tuple[3];
      if (IsStaleEpochPayload(payload)) {
        // Routed to a group that does not own the partition: apply the carried map and
        // re-dispatch immediately under the fresh routing.
        ClientCounter("fs.client.fed_stale_epoch").Add();
        fed_cache_->ApplyStalePayload(payload);
        if (it->second.attempts <= options_.max_retries) {
          Dispatch(cluster, req);
          return;
        }
      } else if (IsOverloadedPayload(payload) && options_.honor_retry_after &&
                 it->second.attempts <= options_.max_retries) {
        // Partition frozen mid-migration (or a shed intake): retry after the server's
        // hint. The attempt guard mirrors ArmTimeout's — whichever fires first wins.
        ClientCounter("fs.client.fed_frozen_retry").Add();
        int attempt = it->second.attempts;
        double delay = std::max(OverloadRetryAfterMs(payload), 1.0);
        cluster.ScheduleAfter(delay, [this, &cluster, req, attempt] {
          auto it2 = pending_.find(req);
          if (it2 == pending_.end() || it2->second.attempts != attempt) {
            return;
          }
          Dispatch(cluster, req);
        });
        return;
      }
    }
    ResponseCb cb = std::move(it->second.cb);
    preferred_target_ = it->second.target_index;  // this target answered: stick to it
    MetricsRegistry::Global()
        .histogram("fs.client.ns_ms")
        .Observe(cluster.now() - it->second.sent_ms);
    cluster.EndSpan(it->second.span);
    pending_.erase(it);
    if (msg.tuple[2].Truthy()) {
      CreditSuccess();
    }
    cb(msg.tuple[2].Truthy(), msg.tuple[3]);
    return;
  }
  if (msg.table == kDnWriteAck) {
    // (Client, ReqId, ChunkId)
    int64_t req = msg.tuple[1].as_int();
    auto it = pending_acks_.find(req);
    if (it == pending_acks_.end()) {
      return;
    }
    auto cb = std::move(it->second);
    pending_acks_.erase(it);
    cb();
    return;
  }
  if (msg.table == kDnReadData) {
    // (Client, ReqId, Ok, Data, Checksum)
    int64_t req = msg.tuple[1].as_int();
    auto it = pending_reads_.find(req);
    if (it == pending_reads_.end()) {
      return;
    }
    auto cb = std::move(it->second);
    pending_reads_.erase(it);
    cb(msg.tuple[2].Truthy(), msg.tuple[3].as_string(), msg.tuple[4].as_int());
    return;
  }
  BOOM_LOG(Warning) << "FsClient " << address() << ": unknown message " << msg.table;
}

}  // namespace boom
