// Federated BOOM-FS metadata plane (the paper's F2 x F3 composition): the namespace is
// hash-partitioned across N NameNode *groups*, each group Paxos-replicated via the HA
// bridge, fronted by a partition-map service.
//
// Layers, bottom-up, on each replica engine: paxos.olg + boomfs_nn.olg + ha_bridge +
// the nn_federation module below. nn_federation owns the intake gate: a fed_request for an
// owned, unfrozen partition enters the HA bridge (ha_request -> Paxos -> replayed
// ns_request); a request for a partition the group does not own bounces with a stale-epoch
// response carrying the replica's whole partition map (clients cache it and re-route); a
// frozen partition (mid-migration) sheds with a retryable ["overloaded", hint] answer.
//
// The partition-map service is one Overlog node running the partition_map module: the sole
// authority for pid -> group assignment. Assignments carry explicit, strictly-increasing
// epochs; the service broadcasts every accepted assignment (and an anti-entropy
// rebroadcast on a timer) to all replicas as fed_map_update, which the replicas apply
// through the same strict-epoch guard. Routing therefore never rolls back anywhere.
//
// Cross-partition rename is a client-driven two-phase protocol (xr_intent at the source,
// create + xr_addchunk at the destination, xr_commit tombstoning the source; xr_drop /
// xr_abort unwind) — see src/boomfs/protocol.h and FsClient::Rename.
//
// Online rebalance (StartRebalance): freeze the partition, copy its directory subtrees to
// the destination group (scaffold dirs, then per-file xr intent/commit), publish the new
// assignment with a bumped epoch, unfreeze. Chaos invariant checkers
// (src/chaos/invariants.h: FedNamespaceChecker / FedEpochChecker) watch for lost or
// duplicated namespace entries and epoch regressions throughout.

#ifndef SRC_BOOMFS_FEDERATION_H_
#define SRC_BOOMFS_FEDERATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/client.h"
#include "src/overlog/module.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"

namespace boom {

// --- programs ---

// One row of the initial (or published) partition map.
struct FedMapRow {
  int64_t pid = 0;
  int64_t epoch = 0;
  std::string leader;
  std::vector<std::string> members;
};

const Module& NnFederationModule();
const Module& PartitionMapModule();

// Per-replica federation layer. `initial_map` seeds fed_map facts; `owned_pids` seeds
// fed_owned (the pids whose member lists include this replica). Both empty for the
// lint/golden build.
struct NnFederationProgramOptions {
  double freeze_retry_ms = 50;  // retry-after hint on frozen-partition sheds
  std::vector<FedMapRow> initial_map;
  std::vector<int64_t> owned_pids;
};
Program NnFederationProgram(const NnFederationProgramOptions& options = {});

// The partition-map service program. `nodes` seeds pm_node (the broadcast set — every
// replica of every group); `initial_map` seeds partition_map. Both empty for lint/golden.
struct PartitionMapProgramOptions {
  double rebroadcast_ms = 1000;  // anti-entropy rebroadcast period
  std::vector<FedMapRow> initial_map;
  std::vector<std::string> nodes;
};
Program PartitionMapProgram(const PartitionMapProgramOptions& options = {});

// --- deployment ---

// Default proposer drain tick for metadata-plane groups. The Paxos proposer assigns one
// command per px_tick, so the tick rate is a hard ceiling on a group's namespace
// throughput: the stock 10ms tick would cap every group at 100 ops/s regardless of how
// fast the engine serves fed_requests.
inline constexpr double kFedProposerTickMs = 1.0;

struct FederatedFsOptions {
  int num_groups = 2;
  int replicas_per_group = 3;
  int num_partitions = 8;
  std::string prefix = "fed";  // replicas are <prefix>_g<G>r<R>, the map node <prefix>_pmap
  int num_datanodes = 4;
  int replication_factor = 3;
  double heartbeat_period_ms = 500;
  double heartbeat_timeout_ms = 2000;
  size_t chunk_size = 64 * 1024;
  double client_timeout_ms = 400;  // per-attempt timeout before rotating group members
  int client_retries = 20;
  int num_clients = 1;
  double pm_rebroadcast_ms = 1000;
  double freeze_retry_ms = 50;
  // peers/my_index filled in per group; the fast drain tick keeps consensus off the
  // critical path (see kFedProposerTickMs).
  PaxosProgramOptions paxos = [] {
    PaxosProgramOptions p;
    p.tick_period_ms = kFedProposerTickMs;
    return p;
  }();
  // Chaos hook: rule names stripped from every replica's federation program (bug
  // variants, e.g. the split-rename commit that forgets to delete the source).
  std::vector<std::string> federation_strip_rules;
};

struct FederatedFsHandles {
  std::vector<std::vector<std::string>> groups;  // group -> replica addresses
  std::string pmap;
  std::vector<std::string> datanodes;
  std::vector<FsClient*> clients;        // fed-routed; owned by the cluster
  FsClient* admin = nullptr;             // raw-op client (rebalancer/tests); cluster-owned
  std::shared_ptr<FedMapCache> cache;    // routing cache shared by all fed clients
  std::vector<int> pid_group;            // initial pid -> group assignment
  int num_partitions = 0;

  // All replica addresses of every group, flattened (group-major).
  std::vector<std::string> AllReplicas() const;
};

// Builds the full federated deployment: N groups of Paxos-replicated NameNode engines
// (per-group f_unique_id salts, so groups can never mint colliding chunk ids), one
// partition-map node, a shared DataNode pool heartbeating to every replica, and
// `num_clients` federated clients sharing one map cache seeded with the epoch-0 map.
FederatedFsHandles SetupFederatedFs(Cluster& cluster, const FederatedFsOptions& options);

// The group's current Paxos leader, read from the `leader` table of the first alive
// member ("" when the whole group is down; falls back to the first alive member while an
// election is still converging).
std::string GroupLeader(Cluster& cluster, const std::vector<std::string>& members);

// --- online rebalance ---

struct FedRebalanceOptions {
  std::string pmap;
  std::vector<std::string> source;  // current owner group's replicas
  std::vector<std::string> dest;    // new owner group's replicas
  int64_t pid = 0;
  int num_partitions = 0;
  FsClient* admin = nullptr;  // issues the migration ops (RawOp over ha_request)
  double settle_ms = 300;     // freeze -> snapshot delay (in-flight commands drain)
  int op_retries = 8;         // per-op attempts before the migration aborts
  double retry_ms = 150;      // delay between per-op attempts
};

// Asynchronously migrates partition `pid` from `source` to `dest`: freeze -> settle ->
// snapshot the source namespace -> scaffold ancestor dirs + copy subtree dirs at the
// destination -> move each file via the xr two-phase protocol -> publish the new
// assignment (epoch+1) -> unfreeze -> done(true). Any op exhausting its retries aborts
// the migration (unfreeze, map unchanged) and reports done(false); entries already
// committed to the destination are then orphaned from the routed namespace — callers that
// track per-path state (the chaos scenario) mark the partition's paths uncertain.
void StartRebalance(Cluster& cluster, const FedRebalanceOptions& options,
                    std::function<void(bool ok)> done);

// Synchronous wrapper for tests/benches: drives the cluster in RunUntil quanta until the
// migration completes (true) or `timeout_ms` of virtual time passes (false). Not callable
// from inside an event callback (RunUntil is not reentrant).
bool RebalancePartitionSync(Cluster& cluster, FederatedFsHandles& handles, int64_t pid,
                            int dest_group, double timeout_ms = 60000);

}  // namespace boom

#endif  // SRC_BOOMFS_FEDERATION_H_
