// FsClient: asynchronous file-system client. Works against either NameNode implementation
// (BOOM-FS Overlog or the HDFS baseline) since both speak the same protocol.
//
// Primitive ops map 1:1 onto namespace requests; WriteFile/ReadFile are composite: they
// drive the addchunk -> DataNode-pipeline -> ack, and chunks -> locations -> dn_read chains.
//
// Robustness: namespace requests always carry a timeout (a dead NameNode surfaces as
// cb(false) instead of a hang). Reads verify the end-to-end checksum and rotate through
// every known replica, re-fetching locations with bounded exponential backoff when a round
// is exhausted. Writes recover a mid-pipeline DataNode crash: the pipeline attempt is
// followed by a fan-out of individual replica writes (one ack suffices; re-replication
// heals the rest), and only then is the allocated chunk abandoned and re-requested.

#ifndef SRC_BOOMFS_CLIENT_H_
#define SRC_BOOMFS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace boom {

struct FsClientOptions {
  std::string namenode;
  size_t chunk_size = 64 * 1024;   // bytes per chunk on WriteFile
  double request_timeout_ms = 0;   // 0 = default (1500ms); requests never wait forever
  // Failover: on timeout the request is retried (same request id) against the next target in
  // {namenode} U fallbacks, round-robin, up to max_retries times.
  std::vector<std::string> fallbacks;
  int max_retries = 0;
  // Table requests are sent as; HA mode uses "ha_request" to route through Paxos.
  std::string request_table = "ns_request";
  // Data-plane retry policy. A chunk read that gets no (valid) reply within
  // dn_read_timeout_ms fails over to the next replica; when every location in a round is
  // exhausted the client re-fetches locations after a backoff, up to read_max_rounds rounds.
  double dn_read_timeout_ms = 400;
  int read_max_rounds = 4;
  // A pipeline write that gets no ack within write_ack_timeout_ms falls back to writing
  // each replica individually; if that also times out the chunk is abandoned and a fresh
  // pipeline requested, up to write_max_rounds rounds.
  double write_ack_timeout_ms = 600;
  int write_max_rounds = 4;
  // Exponential backoff between retry rounds: min(retry_base_ms * 2^(round-1),
  // retry_max_ms) plus up to 50% seeded jitter (drawn from the cluster Rng, so retries in
  // a chaos run stay reproducible and fault-free runs draw nothing).
  double retry_base_ms = 100;
  double retry_max_ms = 2000;
  // Retry budget: a token bucket capping how many retries the client may issue in excess
  // of its successes. Starts full at retry_budget_cap tokens; each budgeted retry spends
  // one, each success credits retry_budget_refill back (clamped to the cap). 0 disables
  // the budget (legacy behavior: every retry ladder runs to its round limit). Under a
  // metastable overload the budget is what breaks the retry amplification loop.
  double retry_budget_cap = 0;
  double retry_budget_refill = 0.1;
  // When the NameNode (or its admission gateway) sheds a request with a retryable
  // ["overloaded", RetryAfterMs] payload, wait at least RetryAfterMs before retrying.
  bool honor_retry_after = true;
  // Full-jitter backoff (Uniform(0, base)) instead of the legacy base + Uniform(0, base/2).
  // Full jitter decorrelates a thundering herd of shed clients; both draw exactly once
  // from the cluster Rng per backoff, so enabling it does not perturb unrelated schedules.
  bool full_jitter = false;
  // Retry rounds allowed for shed ("overloaded") writes, counted separately from the
  // transient-failure ladder. 0 = use write_max_rounds.
  int overload_max_rounds = 0;
};

// Client-side cache of the federated partition map (src/boomfs/federation.h). One cache is
// shared by every client of a deployment: any client's stale-epoch bounce refreshes routing
// for all of them. Rows only move forward — a row is applied iff its epoch is strictly
// newer than the cached row's — so reordered or replayed bounces cannot roll routing back.
struct FedGroupEntry {
  int64_t epoch = 0;
  std::string leader;
  std::vector<std::string> members;
};

struct FedMapCache {
  int64_t global_epoch = 0;
  std::map<int64_t, FedGroupEntry> rows;  // pid -> owning group

  // Applies one map row; returns true iff it was newer than the cached row.
  bool ApplyRow(int64_t pid, int64_t epoch, const std::string& leader,
                std::vector<std::string> members);
  // Applies a ["stale_epoch", GlobalEpoch, rows] payload; returns rows applied.
  int ApplyStalePayload(const Value& payload);
};

class FsClient : public Actor {
 public:
  using ResponseCb = std::function<void(bool ok, const Value& payload)>;
  using DataCb = std::function<void(bool ok, const std::string& data)>;

  FsClient(std::string address, FsClientOptions options)
      : Actor(std::move(address)),
        options_(std::move(options)),
        retry_tokens_(options_.retry_budget_cap) {}

  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Routes requests per (command, path) — used by the partitioned NameNode; overrides
  // options_.namenode.
  using RouterFn = std::function<std::string(const std::string& cmd, const std::string& path)>;
  void SetRouter(RouterFn router) { router_ = std::move(router); }
  void set_namenode(const std::string& nn) { options_.namenode = nn; }
  const std::string& namenode() const { return options_.namenode; }

  // Federated routing (src/boomfs/federation.h): requests route by
  // RoutingPid(NsRoutingKey(cmd, path), num_partitions) through the shared map cache —
  // first attempt to the cached leader, later attempts rotating through the group members.
  // Requests carry (Pid, CachedEpoch) as two extra columns (the fed_request shape); a
  // stale-epoch bounce applies the carried map and re-dispatches, and an
  // ["overloaded", RetryAfterMs] answer (a partition frozen mid-migration) retries after
  // the hint. Mutually exclusive with SetRouter.
  void SetFedRouting(std::shared_ptr<FedMapCache> cache, int num_partitions) {
    fed_cache_ = std::move(cache);
    fed_num_partitions_ = num_partitions;
  }
  const std::shared_ptr<FedMapCache>& fed_cache() const { return fed_cache_; }

  // --- primitive namespace operations ---
  // Mkdir under partitioned/federated routing is dual-homed: the canonical entry is made
  // at the partition of the directory's parent (where the directory is listed), and a
  // child-serving copy — plus any missing ancestor scaffolding — at the partition of the
  // directory's own path (where its entries live). Parent-directory existence is thereby
  // partition-local: no every-partition fan-out. Both legs tolerate already-exists races.
  void Mkdir(Cluster& cluster, const std::string& path, ResponseCb cb);
  void CreateFile(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Exists(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Ls(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Rm(Cluster& cluster, const std::string& path, ResponseCb cb);
  // Rename routes same-partition moves as one replicated command; under federated routing
  // a source and destination on different partitions run the client-driven two-phase
  // cross-partition protocol (xr_intent -> create+xr_addchunk -> xr_commit, with
  // xr_drop/xr_abort unwinding a failed attempt). A cb(false, "timeout") outcome leaves
  // the namespace state uncertain; any other failure is state-preserving.
  void Rename(Cluster& cluster, const std::string& path, const std::string& new_path,
              ResponseCb cb);
  void AddChunk(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Chunks(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Locations(Cluster& cluster, int64_t chunk_id, ResponseCb cb);
  // Creates every prefix of `path` in order (each a dual-homed Mkdir); cb(true) iff every
  // prefix exists afterwards.
  void MkdirP(Cluster& cluster, const std::string& path, ResponseCb cb);
  // Escape hatch for tooling (the partition rebalancer, tests): one namespace request with
  // an explicit target and request table (empty table = the client's configured table).
  // Bypasses routing entirely; a nonempty table also skips the fed_request column append.
  void RawOp(Cluster& cluster, const std::string& cmd, const std::string& path, Value arg,
             ResponseCb cb, const std::string& target, const std::string& table);

  // --- composite data operations ---
  // Creates `path` and writes `data` as a sequence of chunks through DataNode pipelines.
  void WriteFile(Cluster& cluster, const std::string& path, std::string data,
                 std::function<void(bool ok)> cb);
  // Reads all chunks of `path` and returns the concatenated bytes.
  void ReadFile(Cluster& cluster, const std::string& path, DataCb cb);

  // Number of namespace requests issued (for throughput accounting).
  uint64_t requests_sent() const { return requests_sent_; }

  // --- retry budget (shared with workloads that drive their own retries) ---
  // Spends one token if the budget allows another retry (always true when disabled).
  bool TrySpendRetryToken();
  // Credits the budget for a success (no-op when disabled).
  void CreditSuccess();
  double retry_tokens() const { return retry_tokens_; }

 private:
  void Request(Cluster& cluster, const std::string& cmd, const std::string& path, Value arg,
               ResponseCb cb, std::string forced_target = "", std::string table = "",
               std::string route_key = "");
  // One dual-homed Mkdir leg: mkdir routed by `route_key` ("" = canonical), falling back
  // to an Exists probe on failure so already-exists races report success.
  void MkdirLeg(Cluster& cluster, const std::string& path, const std::string& route_key,
                ResponseCb cb);
  // Sequential ancestor scaffolding at one partition: mkdir every prefix of `path`,
  // all routed by `route_key`.
  void MkdirScaffold(Cluster& cluster, std::shared_ptr<std::vector<std::string>> prefixes,
                     size_t index, std::string route_key, std::shared_ptr<ResponseCb> done);
  void MkdirPStep(Cluster& cluster, std::shared_ptr<std::vector<std::string>> prefixes,
                  size_t index, std::shared_ptr<ResponseCb> done);
  // Cross-partition rename chain (see Rename).
  void FedRename(Cluster& cluster, const std::string& path, const std::string& new_path,
                 ResponseCb cb);
  void FedRenameAdopt(Cluster& cluster, std::shared_ptr<struct FedRenameJob> job);
  void FedRenameUnwind(Cluster& cluster, std::shared_ptr<struct FedRenameJob> job,
                       const Value& failure);
  void WriteChunks(Cluster& cluster, std::shared_ptr<struct WriteJob> job);
  // Retry ladder steps for one chunk write / read (see FsClientOptions comments).
  void RetryWrite(Cluster& cluster, std::shared_ptr<struct WriteJob> job);
  // Shed-write path: `kOverloaded` is retryable-with-delay, not an escalation trigger —
  // the retry honors the server's retry-after hint and draws on the retry budget.
  void RetryWriteOverloaded(Cluster& cluster, std::shared_ptr<struct WriteJob> job,
                            double retry_after_ms);
  void AbandonAndRetry(Cluster& cluster, std::shared_ptr<struct WriteJob> job,
                       int64_t chunk_id);
  void ReadChunks(Cluster& cluster, std::shared_ptr<struct ReadJob> job);
  void TryRead(Cluster& cluster, std::shared_ptr<struct ReadJob> job, int64_t chunk_id,
               ValueList locs, size_t index);
  void RetryRead(Cluster& cluster, std::shared_ptr<struct ReadJob> job);
  double Backoff(Cluster& cluster, int round) const;
  double EffectiveRequestTimeout() const {
    return options_.request_timeout_ms > 0 ? options_.request_timeout_ms : 1500;
  }

  struct PendingReq {
    std::string cmd;
    std::string path;
    Value arg;
    ResponseCb cb;
    int attempts = 0;
    size_t target_index = 0;   // into {namenode} U fallbacks
    std::string forced_target;  // when nonempty, overrides routing entirely
    std::string table;      // per-request table override ("" = options_.request_table)
    std::string route_key;  // routing-key override ("" = NsRoutingKey(cmd, path))
    SpanContext span;          // "ns:<cmd>" span covering request through response/timeout
    double sent_ms = 0;
  };
  void Dispatch(Cluster& cluster, int64_t req);
  void ArmTimeout(Cluster& cluster, int64_t req, int attempt);

  FsClientOptions options_;
  RouterFn router_;
  std::shared_ptr<FedMapCache> fed_cache_;  // nonnull = federated routing active
  int fed_num_partitions_ = 0;
  // Sticky failover: index into {namenode} U fallbacks that last answered; new requests
  // start there instead of re-probing a dead primary.
  size_t preferred_target_ = 0;
  int64_t next_req_ = 1;
  std::map<int64_t, PendingReq> pending_;
  std::map<int64_t, std::function<void(bool, std::string, int64_t)>> pending_reads_;
  std::map<int64_t, std::function<void()>> pending_acks_;
  uint64_t requests_sent_ = 0;
  double retry_tokens_ = 0;  // remaining retry budget (meaningful iff cap > 0)
};

}  // namespace boom

#endif  // SRC_BOOMFS_CLIENT_H_
