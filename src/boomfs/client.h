// FsClient: asynchronous file-system client. Works against either NameNode implementation
// (BOOM-FS Overlog or the HDFS baseline) since both speak the same protocol.
//
// Primitive ops map 1:1 onto namespace requests; WriteFile/ReadFile are composite: they
// drive the addchunk -> DataNode-pipeline -> ack, and chunks -> locations -> dn_read chains.

#ifndef SRC_BOOMFS_CLIENT_H_
#define SRC_BOOMFS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/sim/cluster.h"

namespace boom {

struct FsClientOptions {
  std::string namenode;
  size_t chunk_size = 64 * 1024;   // bytes per chunk on WriteFile
  double request_timeout_ms = 0;   // 0 = wait forever
  // Failover: on timeout the request is retried (same request id) against the next target in
  // {namenode} U fallbacks, round-robin, up to max_retries times.
  std::vector<std::string> fallbacks;
  int max_retries = 0;
  // Table requests are sent as; HA mode uses "ha_request" to route through Paxos.
  std::string request_table = "ns_request";
};

class FsClient : public Actor {
 public:
  using ResponseCb = std::function<void(bool ok, const Value& payload)>;
  using DataCb = std::function<void(bool ok, const std::string& data)>;

  FsClient(std::string address, FsClientOptions options)
      : Actor(std::move(address)), options_(std::move(options)) {}

  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Routes requests per (command, path) — used by the partitioned NameNode; overrides
  // options_.namenode.
  using RouterFn = std::function<std::string(const std::string& cmd, const std::string& path)>;
  void SetRouter(RouterFn router) { router_ = std::move(router); }
  void set_namenode(const std::string& nn) { options_.namenode = nn; }
  const std::string& namenode() const { return options_.namenode; }

  // --- primitive namespace operations ---
  void Mkdir(Cluster& cluster, const std::string& path, ResponseCb cb);
  void CreateFile(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Exists(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Ls(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Rm(Cluster& cluster, const std::string& path, ResponseCb cb);
  void AddChunk(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Chunks(Cluster& cluster, const std::string& path, ResponseCb cb);
  void Locations(Cluster& cluster, int64_t chunk_id, ResponseCb cb);
  // Issues mkdir to every listed NameNode (partitioned mode replicates the directory
  // skeleton); cb(true) iff all succeed.
  void MkdirAll(Cluster& cluster, const std::string& path,
                std::vector<std::string> targets, ResponseCb cb);

  // --- composite data operations ---
  // Creates `path` and writes `data` as a sequence of chunks through DataNode pipelines.
  void WriteFile(Cluster& cluster, const std::string& path, std::string data,
                 std::function<void(bool ok)> cb);
  // Reads all chunks of `path` and returns the concatenated bytes.
  void ReadFile(Cluster& cluster, const std::string& path, DataCb cb);

  // Number of namespace requests issued (for throughput accounting).
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  void Request(Cluster& cluster, const std::string& cmd, const std::string& path, Value arg,
               ResponseCb cb, std::string forced_target = "");
  void WriteChunks(Cluster& cluster, std::shared_ptr<struct WriteJob> job);
  void ReadChunks(Cluster& cluster, std::shared_ptr<struct ReadJob> job);

  struct PendingReq {
    std::string cmd;
    std::string path;
    Value arg;
    ResponseCb cb;
    int attempts = 0;
    size_t target_index = 0;   // into {namenode} U fallbacks
    std::string forced_target;  // when nonempty, overrides routing entirely
  };
  void Dispatch(Cluster& cluster, int64_t req);
  void ArmTimeout(Cluster& cluster, int64_t req, int attempt);

  FsClientOptions options_;
  RouterFn router_;
  // Sticky failover: index into {namenode} U fallbacks that last answered; new requests
  // start there instead of re-probing a dead primary.
  size_t preferred_target_ = 0;
  int64_t next_req_ = 1;
  std::map<int64_t, PendingReq> pending_;
  std::map<int64_t, std::function<void(bool, std::string)>> pending_reads_;
  std::map<int64_t, std::function<void()>> pending_acks_;
  uint64_t requests_sent_ = 0;
};

}  // namespace boom

#endif  // SRC_BOOMFS_CLIENT_H_
