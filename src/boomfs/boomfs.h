// Cluster assembly helpers: stand up a file system (BOOM-FS or the HDFS baseline) with N
// DataNodes plus a client, and a synchronous facade that drives the simulation until each
// operation completes (used by tests, examples, and benchmarks).

#ifndef SRC_BOOMFS_BOOMFS_H_
#define SRC_BOOMFS_BOOMFS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/boomfs/client.h"
#include "src/boomfs/datanode.h"
#include "src/boomfs/nn_program.h"
#include "src/hdfs_baseline/namenode.h"
#include "src/sim/cluster.h"

namespace boom {

enum class FsKind {
  kBoomFs,       // Overlog NameNode
  kHdfsBaseline  // imperative NameNode
};

const char* FsKindName(FsKind kind);

struct FsSetupOptions {
  FsKind kind = FsKind::kBoomFs;
  std::string namenode = "nn";
  int num_datanodes = 3;
  int replication_factor = 3;
  double heartbeat_period_ms = 500;
  double heartbeat_timeout_ms = 2000;
  bool with_failure_detector = true;
  size_t chunk_size = 64 * 1024;
  // DataNode data-plane knobs (see DataNodeOptions).
  int full_report_every = 4;
  bool verify_reads = true;
  // NameNode safe mode (see NnProgramOptions / HdfsNameNodeOptions).
  bool with_safe_mode = true;
  double safe_mode_check_period_ms = 200;
  int safe_mode_report_frac_pct = 60;
  double safe_mode_timeout_ms = 5000;
  double safe_mode_grace_ms = 400;
  // Rename support and tombstone GC (see NnProgramOptions / HdfsNameNodeOptions). Both
  // kinds honor these, keeping the twins behaviorally matched.
  bool with_rename = false;
  bool with_gc = false;
  double gc_check_period_ms = 1000;
  double gc_tombstone_ms = 10000;
  // Test hook: install this NameNode program instead of the generated one (used by the
  // refactor-equivalence tests to pin a frozen pre-refactor program text).
  std::optional<Program> nn_program_override;
  // Unique-id salt for the minted file/chunk ids (Overlog f_unique_id salt; the HDFS
  // baseline mints ids in the same salted format). Deployments running several NameNodes
  // over one shared DataNode pool (partitioned/federated) MUST give each a distinct salt,
  // or two NameNodes can mint the same chunk id and cross-wire chunk reports.
  std::optional<uint64_t> id_salt;
};

struct FsHandles {
  std::string namenode;
  std::vector<std::string> datanodes;
  FsClient* client = nullptr;  // owned by the cluster
};

// Adds a NameNode, DataNodes ("dn0".."dnN-1" prefixed with the NN name), and one client
// ("client") to the cluster.
FsHandles SetupFs(Cluster& cluster, const FsSetupOptions& options);

// Installs only the NameNode of the given kind at `address` (DataNodes/clients separate).
void AddNameNode(Cluster& cluster, FsKind kind, const std::string& address,
                 const FsSetupOptions& options);

// Admission-gateway deployment: a separate Overlog node running BoomFsGatewayProgram in
// front of the NameNode. Clients send ns_ingress to the gateway (request_table =
// "ns_ingress", namenode = the gateway address); admitted requests are forwarded as
// ns_request to the NameNode, which answers the client directly; shed requests get a
// retryable ["overloaded", RetryAfterMs] response straight from the gateway.
struct GatewaySetupOptions {
  std::string address = "gw";
  GatewayOptions gateway;
  // Period of the svc_load probe feeding the NameNode's measured service backlog into the
  // gateway's brownout rules. 0 disables the probe.
  double load_probe_period_ms = 100;
  // Test hook (chaos bug variants): install this program instead of the generated one.
  std::optional<Program> program_override;
};

// Adds the gateway node, wires shed/brownout counters (fs.gw.shed, slo.tenant<i>.shed,
// fs.gw.brownout_enter/exit), and starts the svc_load probe.
void AddAdmissionGateway(Cluster& cluster, const GatewaySetupOptions& options);

// Synchronous facade over FsClient: each call drives the simulation until the response
// arrives (or `timeout_ms` of virtual time passes).
class SyncFs {
 public:
  SyncFs(Cluster& cluster, FsClient* client, double timeout_ms = 60000)
      : cluster_(cluster), client_(client), timeout_ms_(timeout_ms) {}

  bool Mkdir(const std::string& path);
  bool CreateFile(const std::string& path);
  bool Exists(const std::string& path);
  // Returns true and fills `names` on success.
  bool Ls(const std::string& path, std::vector<std::string>* names);
  bool Rm(const std::string& path);
  bool Rename(const std::string& path, const std::string& new_path);
  bool WriteFile(const std::string& path, std::string data);
  bool ReadFile(const std::string& path, std::string* data);
  // Raw namespace op; returns ok and fills payload.
  bool Op(const std::string& cmd, const std::string& path, Value* payload);

  FsClient* client() { return client_; }

 private:
  // Runs the cluster until *done; returns false on timeout.
  bool Await(const bool* done);

  Cluster& cluster_;
  FsClient* client_;
  double timeout_ms_;
};

}  // namespace boom

#endif  // SRC_BOOMFS_BOOMFS_H_
