#include "src/boomfs/ha.h"

#include "src/base/logging.h"
#include "src/boomfs/datanode.h"
#include "src/boomfs/nn_program.h"
#include "src/telemetry/metrics.h"

namespace boom {

namespace {

constexpr char kBridgeModule[] = R"olg(
// Relations borrowed from the Paxos and BOOM-FS programs on the same engine. `extern`
// records the expected schema; the engine verifies it at install time.
extern table leader(K, Addr) keys(0);
extern event px_request(Addr, Cmd);
extern event apply_cmd(Slot, Cmd);
extern event ns_request(Addr, ReqId, Client, Cmd, Path, Arg);

// Client-facing request event; same shape as ns_request but routed through Paxos.
event ha_request(Addr, ReqId, Client, Cmd, Path, Arg);
table seen_req(Client, ReqId) keys(0, 1);

// Leader: propose the command (unless this exact client request was already applied —
// dedupes client retries across failovers).
h1 px_request(@Me, C) :- ha_request(@Me, R, Cl, Cm, P, A), leader(1, L), Me := f_me(),
                         L == Me, notin seen_req(Cl, R), C := [R, Cl, Cm, P, A];

// Non-leader: forward to the current leader.
h2 ha_request(@L, R, Cl, Cm, P, A) :- ha_request(@Me, R, Cl, Cm, P, A), leader(1, L),
                                      L != f_me();

// Every replica replays decided commands into its local BOOM-FS program.
h3 seen_req(Cl, R)@next :- apply_cmd(_, C), R := list_get(C, 0), Cl := list_get(C, 1);
h4 ns_request(@Me, R, Cl, Cm, P, A) :- apply_cmd(_, C), Me := f_me(),
                                       R := list_get(C, 0), Cl := list_get(C, 1),
                                       Cm := list_get(C, 2), P := list_get(C, 3),
                                       A := list_get(C, 4);
)olg";

// The federated variant of the bridge: identical intake (h1-h3), but the replay of a
// PLAIN namespace command is fenced by the partition seal (fed_sealed, owned by the
// nn_federation program on the same engine; installing the bridge first auto-creates the
// table and the owner's identical declaration collapses into it).
//
// Why fence at replay and not just at intake: a command admitted at intake before the
// seal — or stuck in a crashed ex-leader's proposer and re-proposed when it recovers and
// wins its election back — lands in the log AFTER the seal. Replaying it would mutate a
// namespace whose ownership already migrated away (a duplicated entry at the old group: a
// zombie write). Dropping it at replay means it is never applied and never acked, so the
// client's retry converges at the new owner. Intake-side shedding (fr3 in nn_federation)
// remains the fast path; this gate is the correctness backstop.
//
// The routing key recomputed in h4 is bit-for-bit the client's NsRoutingKey/RoutingPid
// (src/boomfs/protocol.h): "ls" routes by the listed directory itself, everything else by
// the parent directory; route_pid is the same full-64-bit FNV-1a mod partition count.
constexpr char kFencedBridgeModule[] = R"olg(
// Relations borrowed from the Paxos, BOOM-FS, and federation programs on the same engine.
// `extern` records the expected schema; the engine verifies it at install time.
extern table leader(K, Addr) keys(0);
extern event px_request(Addr, Cmd);
extern event apply_cmd(Slot, Cmd);
extern event ns_request(Addr, ReqId, Client, Cmd, Path, Arg);
extern table fed_sealed(Pid) keys(0);

// Client-facing request event; same shape as ns_request but routed through Paxos.
event ha_request(Addr, ReqId, Client, Cmd, Path, Arg);
table seen_req(Client, ReqId) keys(0, 1);

// Leader: propose the command (unless this exact client request was already applied —
// dedupes client retries across failovers).
h1 px_request(@Me, C) :- ha_request(@Me, R, Cl, Cm, P, A), leader(1, L), Me := f_me(),
                         L == Me, notin seen_req(Cl, R), C := [R, Cl, Cm, P, A];

// Non-leader: forward to the current leader.
h2 ha_request(@L, R, Cl, Cm, P, A) :- ha_request(@Me, R, Cl, Cm, P, A), leader(1, L),
                                      L != f_me();

// Every replica replays decided commands into its local BOOM-FS program — but a plain
// namespace command whose routing partition is sealed is dropped (never applied, never
// acked): once `xr_seal Pid` is in the log, no later plain command can mutate Pid here.
h3 seen_req(Cl, R)@next :- apply_cmd(_, C), R := list_get(C, 0), Cl := list_get(C, 1);
h4 ns_request(@Me, R, Cl, Cm, P, A) :- apply_cmd(_, C), Me := f_me(),
                                       R := list_get(C, 0), Cl := list_get(C, 1),
                                       Cm := list_get(C, 2), P := list_get(C, 3),
                                       A := list_get(C, 4),
                                       Fed := starts_with(Cm, "xr_"), Fed == false,
                                       K := if(P == "", "/",
                                               if(Cm == "ls", P, path_dirname(P))),
                                       Pid := route_pid(K, num_partitions),
                                       notin fed_sealed(Pid);

// The migration/2PC plane (xr_*-prefixed commands, including xr_seal/xr_unseal
// themselves) is exempt: it must keep operating on a sealed partition.
h5 ns_request(@Me, R, Cl, Cm, P, A) :- apply_cmd(_, C), Me := f_me(),
                                       R := list_get(C, 0), Cl := list_get(C, 1),
                                       Cm := list_get(C, 2), P := list_get(C, 3),
                                       A := list_get(C, 4),
                                       Fed := starts_with(Cm, "xr_"), Fed == true;
)olg";

}  // namespace

const Module& HaBridgeModule() {
  static const Module* kModule = new Module{"ha_bridge", kBridgeModule, {}};
  return *kModule;
}

const Module& FencedHaBridgeModule() {
  static const Module* kModule =
      new Module{"ha_bridge_fenced",
                 kFencedBridgeModule,
                 {ModuleParam::Required("num_partitions", ValueKind::kInt)}};
  return *kModule;
}

Program HaBridgeProgram(const HaBridgeOptions& options) {
  ProgramBuilder builder(options.fed_fence ? "ha_bridge_fenced" : "ha_bridge");
  // ha_request arrives from clients (and from peer replicas forwarding to the leader).
  builder.WithExternalInputs({"ha_request"});
  Status status;
  if (options.fed_fence) {
    BOOM_CHECK(options.num_partitions > 0) << "fenced bridge needs the partition count";
    status = builder.Add(FencedHaBridgeModule(),
                         {{"num_partitions",
                           Value(static_cast<int64_t>(options.num_partitions))}});
  } else {
    status = builder.Add(HaBridgeModule());
  }
  BOOM_CHECK(status.ok()) << status.ToString();
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

HaFsHandles SetupHaFs(Cluster& cluster, const HaFsOptions& options) {
  HaFsHandles handles;
  for (int i = 0; i < options.num_replicas; ++i) {
    handles.replicas.push_back(options.prefix + std::to_string(i));
  }

  NnProgramOptions nn_prog;
  nn_prog.replication_factor = options.replication_factor;
  nn_prog.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  Program fs_program = BoomFsNnProgram(nn_prog);
  Program bridge_program = HaBridgeProgram();

  for (int i = 0; i < options.num_replicas; ++i) {
    PaxosProgramOptions paxos = options.paxos;
    paxos.peers = handles.replicas;
    paxos.my_index = i;
    Program paxos_program = PaxosProgram(paxos);
    auto init = [paxos_program, fs_program, bridge_program](Engine& engine) {
      Status s = engine.Install(paxos_program);
      BOOM_CHECK(s.ok()) << "paxos install: " << s.ToString();
      s = engine.Install(fs_program);
      BOOM_CHECK(s.ok()) << "boomfs install: " << s.ToString();
      s = engine.Install(bridge_program);
      BOOM_CHECK(s.ok()) << "ha bridge install: " << s.ToString();
      // Consensus metrics from table activity: proposals, decisions, ballot churn, and
      // propose->decide quorum latency (virtual ms, matched per slot on this replica).
      Engine* e = &engine;
      auto propose_ms = std::make_shared<std::map<int64_t, double>>();
      engine.AddWatch("proposal", [e, propose_ms](const std::string&, const Tuple& t,
                                                  bool inserted) {
        if (inserted && !t.empty() && t[0].is_int()) {
          MetricsRegistry::Global().counter("paxos.proposal").Add();
          propose_ms->emplace(t[0].as_int(), e->now());
        }
      });
      engine.AddWatch("decided", [e, propose_ms](const std::string&, const Tuple& t,
                                                 bool inserted) {
        if (!inserted || t.empty() || !t[0].is_int()) {
          return;
        }
        MetricsRegistry::Global().counter("paxos.decided").Add();
        auto it = propose_ms->find(t[0].as_int());
        if (it != propose_ms->end()) {
          MetricsRegistry::Global().histogram("paxos.quorum_ms").Observe(e->now() -
                                                                         it->second);
          propose_ms->erase(it);
        }
      });
      engine.AddWatch("my_ballot", [](const std::string&, const Tuple&, bool inserted) {
        if (inserted) {
          MetricsRegistry::Global().counter("paxos.ballot_advance").Add();
        }
      });
    };
    // Shared salt: replicas replaying the same log mint identical file/chunk ids.
    cluster.AddOverlogNode(handles.replicas[static_cast<size_t>(i)], init,
                           /*id_salt=*/0xB00);
  }

  for (int i = 0; i < options.num_datanodes; ++i) {
    std::string dn = options.prefix + "_dn" + std::to_string(i);
    DataNodeOptions dn_opts;
    dn_opts.namenode = handles.replicas[0];
    dn_opts.extra_namenodes.assign(handles.replicas.begin() + 1, handles.replicas.end());
    dn_opts.heartbeat_period_ms = options.heartbeat_period_ms;
    cluster.AddActor(std::make_unique<DataNode>(dn, dn_opts));
    handles.datanodes.push_back(std::move(dn));
  }

  FsClientOptions client_opts;
  client_opts.namenode = handles.replicas[0];
  client_opts.fallbacks.assign(handles.replicas.begin() + 1, handles.replicas.end());
  client_opts.chunk_size = options.chunk_size;
  client_opts.request_timeout_ms = options.client_timeout_ms;
  client_opts.max_retries = options.client_retries;
  client_opts.request_table = "ha_request";
  auto client = std::make_unique<FsClient>(options.prefix + "_client", client_opts);
  handles.client = client.get();
  cluster.AddActor(std::move(client));
  return handles;
}

}  // namespace boom
