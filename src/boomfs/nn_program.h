// The BOOM-FS NameNode as an Overlog program (the paper's core artifact for BOOM-FS).
//
// All file-system *metadata* lives in Overlog tables on the NameNode — the directory tree
// (`file`), the fully-qualified path index (`fqpath`, a recursive view), chunk ownership
// (`fchunk`), and DataNode liveness/locations (`datanode`, `hb_chunk`). Every namespace
// operation is a handful of rules over those tables; chunk placement is a bottomk aggregate
// over DataNode load; failure detection and re-replication are a timer plus six rules.
//
// The program is composed from three modules on a ProgramBuilder (see overlog/module.h):
//   nn_namespace         the core metadata + client protocol (paper revision F1)
//   nn_failure_detector  liveness + re-replication (the availability revision)
//   nn_safe_mode         deferred location serving after a (re)start
// with typed parameters (rep_factor, hb_timeout_ms, ...) instead of string substitution.
//
// Robustness extensions (all still declarative):
//   - dn_corrupt retracts the (chunk, datanode) location of a quarantined replica, so reads
//     stop landing on it and the re-replication rules heal the count.
//   - "abandon" detaches + tombstones a chunk whose write never completed.
//   - Safe mode: after a (re)start the NameNode answers namespace reads but defers
//     locations / re-replication until enough chunk reports arrive (or a timeout passes).

#ifndef SRC_BOOMFS_NN_PROGRAM_H_
#define SRC_BOOMFS_NN_PROGRAM_H_

#include "src/overlog/ast.h"
#include "src/overlog/module.h"

namespace boom {

struct NnProgramOptions {
  int replication_factor = 3;
  double heartbeat_timeout_ms = 2000;
  double failure_check_period_ms = 500;
  // When false, the failure-detector / re-replication rules are omitted (the paper's initial
  // BOOM-FS revision F1 vs the availability revision).
  bool with_failure_detector = true;
  // Safe mode: start with location serving and re-replication deferred; exit once
  // safe_mode_report_frac_pct percent of owned chunks have a reported location, the
  // namespace has stayed empty for safe_mode_grace_ms (fresh cluster), or
  // safe_mode_timeout_ms elapses. When false, locations are served immediately.
  bool with_safe_mode = true;
  double safe_mode_check_period_ms = 200;
  int safe_mode_report_frac_pct = 60;
  double safe_mode_timeout_ms = 5000;
  double safe_mode_grace_ms = 400;
};

// The three NameNode modules, for composition on a caller-owned ProgramBuilder.
const Module& NnNamespaceModule();
const Module& NnFailureDetectorModule();
const Module& NnSafeModeModule();

// Composes the modules selected by `options` into the NameNode program and runs the
// analyzer. Aborts on error — the modules are compiled in, so failure is a code bug.
Program BoomFsNnProgram(const NnProgramOptions& options = {});

}  // namespace boom

#endif  // SRC_BOOMFS_NN_PROGRAM_H_
