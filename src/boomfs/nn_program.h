// The BOOM-FS NameNode as an Overlog program (the paper's core artifact for BOOM-FS).
//
// All file-system *metadata* lives in Overlog tables on the NameNode — the directory tree
// (`file`), the fully-qualified path index (`fqpath`, a recursive view), chunk ownership
// (`fchunk`), and DataNode liveness/locations (`datanode`, `hb_chunk`). Every namespace
// operation is a handful of rules over those tables; chunk placement is a bottomk aggregate
// over DataNode load; failure detection and re-replication are a timer plus six rules.
//
// The program is composed from three modules on a ProgramBuilder (see overlog/module.h):
//   nn_namespace         the core metadata + client protocol (paper revision F1)
//   nn_failure_detector  liveness + re-replication (the availability revision)
//   nn_safe_mode         deferred location serving after a (re)start
// with typed parameters (rep_factor, hb_timeout_ms, ...) instead of string substitution.
//
// Robustness extensions (all still declarative):
//   - dn_corrupt retracts the (chunk, datanode) location of a quarantined replica, so reads
//     stop landing on it and the re-replication rules heal the count.
//   - "abandon" detaches + tombstones a chunk whose write never completed.
//   - Safe mode: after a (re)start the NameNode answers namespace reads but defers
//     locations / re-replication until enough chunk reports arrive (or a timeout passes).

#ifndef SRC_BOOMFS_NN_PROGRAM_H_
#define SRC_BOOMFS_NN_PROGRAM_H_

#include <string>
#include <utility>
#include <vector>

#include "src/overlog/ast.h"
#include "src/overlog/module.h"

namespace boom {

struct NnProgramOptions {
  int replication_factor = 3;
  double heartbeat_timeout_ms = 2000;
  double failure_check_period_ms = 500;
  // When false, the failure-detector / re-replication rules are omitted (the paper's initial
  // BOOM-FS revision F1 vs the availability revision).
  bool with_failure_detector = true;
  // Safe mode: start with location serving and re-replication deferred; exit once
  // safe_mode_report_frac_pct percent of owned chunks have a reported location, the
  // namespace has stayed empty for safe_mode_grace_ms (fresh cluster), or
  // safe_mode_timeout_ms elapses. When false, locations are served immediately.
  bool with_safe_mode = true;
  double safe_mode_check_period_ms = 200;
  int safe_mode_report_frac_pct = 60;
  double safe_mode_timeout_ms = 5000;
  double safe_mode_grace_ms = 400;
  // Rename support ("rename" command, files only). Off by default: the core module set
  // (and with it the frozen golden program texts) is byte-identical without it.
  bool with_rename = false;
  // Tombstone GC: expire dead_chunk tombstones after gc_tombstone_ms so a churning
  // NameNode has bounded state. Off by default for the same golden-stability reason.
  bool with_gc = false;
  double gc_check_period_ms = 1000;
  double gc_tombstone_ms = 10000;
};

// The NameNode modules, for composition on a caller-owned ProgramBuilder.
const Module& NnNamespaceModule();
const Module& NnFailureDetectorModule();
const Module& NnSafeModeModule();
const Module& NnRenameModule();
const Module& NnGcModule();
// The admission-control module (the NameNode's front door — runs on a separate gateway
// node so admitted work still pays the NameNode's service time).
const Module& NnAdmissionModule();

// Composes the modules selected by `options` into the NameNode program and runs the
// analyzer. Aborts on error — the modules are compiled in, so failure is a code bug.
Program BoomFsNnProgram(const NnProgramOptions& options = {});

// SLO-aware admission gateway in front of a NameNode: per-tenant token buckets over a
// sliding window, read-only brownout keyed off the NameNode's measured service backlog
// (svc_load) or the published perf_fixpoint profile, and load shedding that answers with
// a retryable ["overloaded", RetryAfterMs] payload. Reads (monotone) are always forwarded.
struct GatewayOptions {
  std::string namenode = "nn";
  // Client address -> tenant id (installed as adm_tenant facts; unlisted clients are
  // tenant 0).
  std::vector<std::pair<std::string, int64_t>> client_tenants;
  int64_t tenant_quota = 64;     // admitted writes per tenant per window
  double window_ms = 1000;
  double queue_bound_ms = 400;   // brownout enters above this NN backlog, exits below half
  double retry_after_ms = 500;   // hint carried in the shed response
  double fixpoint_budget_us = 50000;  // brownout via a published perf_fixpoint row
};

Program BoomFsGatewayProgram(const GatewayOptions& options = {});

}  // namespace boom

#endif  // SRC_BOOMFS_NN_PROGRAM_H_
