// The BOOM-FS NameNode as an Overlog program (the paper's core artifact for BOOM-FS).
//
// All file-system *metadata* lives in Overlog tables on the NameNode — the directory tree
// (`file`), the fully-qualified path index (`fqpath`, a recursive view), chunk ownership
// (`fchunk`), and DataNode liveness/locations (`datanode`, `hb_chunk`). Every namespace
// operation is a handful of rules over those tables; chunk placement is a bottomk aggregate
// over DataNode load; failure detection and re-replication are a timer plus six rules.

#ifndef SRC_BOOMFS_NN_PROGRAM_H_
#define SRC_BOOMFS_NN_PROGRAM_H_

#include <string>

namespace boom {

struct NnProgramOptions {
  int replication_factor = 3;
  double heartbeat_timeout_ms = 2000;
  double failure_check_period_ms = 500;
  // When false, the failure-detector / re-replication rules are omitted (the paper's initial
  // BOOM-FS revision F1 vs the availability revision).
  bool with_failure_detector = true;
};

// Returns the NameNode Overlog program text.
std::string BoomFsNnProgram(const NnProgramOptions& options = {});

}  // namespace boom

#endif  // SRC_BOOMFS_NN_PROGRAM_H_
