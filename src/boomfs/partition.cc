#include "src/boomfs/partition.h"

#include "src/base/strings.h"
#include "src/boomfs/protocol.h"

namespace boom {

std::string RouteByPath(const std::vector<std::string>& partitions, const std::string& cmd,
                        const std::string& path) {
  if (partitions.size() == 1) {
    return partitions[0];
  }
  // Files live on the partition that hashes their parent directory, so a directory's direct
  // children are colocated (the federated plane shares this key function — see
  // NsRoutingKey in protocol.h). Directories get a child-serving copy on their own
  // partition from the dual-homed Mkdir, making them valid parents exactly where their
  // children route. Chunk-location lookups can go anywhere (every partition hears every
  // DataNode); they hash the empty path.
  return partitions[static_cast<size_t>(
      RoutingPid(NsRoutingKey(cmd, path), static_cast<int>(partitions.size())))];
}

PartitionedFsHandles SetupPartitionedFs(Cluster& cluster,
                                        const PartitionedFsOptions& options) {
  PartitionedFsHandles handles;
  FsSetupOptions fs_opts;
  fs_opts.kind = options.kind;
  fs_opts.replication_factor = options.replication_factor;
  fs_opts.heartbeat_timeout_ms = 4000;

  for (int p = 0; p < options.num_partitions; ++p) {
    std::string nn = options.prefix + std::to_string(p);
    // Distinct per-partition id salts: N NameNodes mint over one shared DataNode pool, and
    // without disjoint id spaces two partitions can allocate the same chunk id (the chunk
    // reports then cross-wire — see ChunkIdsDisjointAcrossPartitions).
    fs_opts.id_salt = 0xA00 + static_cast<uint64_t>(p);
    AddNameNode(cluster, options.kind, nn, fs_opts);
    handles.partitions.push_back(std::move(nn));
  }

  // A shared DataNode pool reporting to every partition.
  for (int i = 0; i < options.num_datanodes; ++i) {
    std::string dn = options.prefix + "_dn" + std::to_string(i);
    DataNodeOptions dn_opts;
    dn_opts.namenode = handles.partitions[0];
    dn_opts.extra_namenodes.assign(handles.partitions.begin() + 1,
                                   handles.partitions.end());
    dn_opts.heartbeat_period_ms = options.heartbeat_period_ms;
    cluster.AddActor(std::make_unique<DataNode>(dn, dn_opts));
    handles.datanodes.push_back(std::move(dn));
  }

  std::vector<std::string> partitions = handles.partitions;
  for (int c = 0; c < options.num_clients; ++c) {
    FsClientOptions client_opts;
    client_opts.namenode = handles.partitions[0];
    client_opts.chunk_size = options.chunk_size;
    auto client = std::make_unique<FsClient>(options.prefix + "_client" + std::to_string(c),
                                             client_opts);
    client->SetRouter([partitions](const std::string& cmd, const std::string& path) {
      return RouteByPath(partitions, cmd, path);
    });
    handles.clients.push_back(client.get());
    cluster.AddActor(std::move(client));
  }
  return handles;
}

}  // namespace boom
