// Highly-available BOOM-FS (paper revision F2): NameNode metadata commands are sequenced
// through the Overlog Paxos program, and every replica applies the decided log to its own
// BOOM-FS tables. Clients retry against any replica; non-leaders forward to the leader.
//
// Replica engine = paxos.olg + boomfs_nn.olg + the bridge below, with a shared f_unique_id
// salt so ids minted while replaying the log agree across replicas.

#ifndef SRC_BOOMFS_HA_H_
#define SRC_BOOMFS_HA_H_

#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"

namespace boom {

struct HaFsOptions {
  int num_replicas = 3;
  std::string prefix = "nn";       // replicas are named <prefix>0 .. <prefix>N-1
  int num_datanodes = 4;
  int replication_factor = 3;
  double heartbeat_period_ms = 500;
  double heartbeat_timeout_ms = 2000;
  size_t chunk_size = 64 * 1024;
  double client_timeout_ms = 400;  // per-attempt timeout before rotating replicas
  int client_retries = 20;
  PaxosProgramOptions paxos;       // peers/my_index filled in by SetupHaFs
};

struct HaFsHandles {
  std::vector<std::string> replicas;
  std::vector<std::string> datanodes;
  FsClient* client = nullptr;  // owned by the cluster
};

// The bridge module: `extern` declarations name the relations it borrows from the Paxos
// and BOOM-FS programs installed on the same engine (verified at install time).
const Module& HaBridgeModule();

// The federated variant (src/boomfs/federation.h): same intake, but log replay of plain
// namespace commands is fenced by the partition seal table (`fed_sealed`, owned by
// nn_federation) — once an `xr_seal` command is in the replicated log, later plain
// commands for that partition never apply and never ack. Takes a `num_partitions`
// parameter to recompute the client's routing pid at replay.
const Module& FencedHaBridgeModule();

struct HaBridgeOptions {
  // Fence replayed commands on the federation partition seal. The default (off) builds
  // the standalone-HA bridge, byte-identical to the pre-federation program.
  bool fed_fence = false;
  int num_partitions = 0;  // required when fed_fence is set
};

// The bridge program: client requests -> Paxos commands -> replayed namespace requests.
Program HaBridgeProgram(const HaBridgeOptions& options = {});

HaFsHandles SetupHaFs(Cluster& cluster, const HaFsOptions& options);

}  // namespace boom

#endif  // SRC_BOOMFS_HA_H_
