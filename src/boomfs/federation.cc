#include "src/boomfs/federation.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/boomfs/datanode.h"
#include "src/boomfs/ha.h"
#include "src/boomfs/nn_program.h"
#include "src/boomfs/protocol.h"

namespace boom {

namespace {

// Federation layer on one NameNode replica (one member of one Paxos-replicated group).
//
// fed_request is the client-facing intake: ns_request's shape plus the partition id the
// client routed by and the map epoch its cache held. Owned + unfrozen partitions admit
// into the HA bridge (ha_request -> Paxos -> replayed ns_request); a partition this group
// does not own bounces with a stale-epoch response carrying the replica's whole map, so
// one round trip refreshes the client's cache; a frozen partition (mid-migration) sheds
// with a retryable ["overloaded", hint] answer.
//
// The replica's map view arrives as fed_map_update pushes from the partition-map service
// and is applied through a strict-epoch guard: a row only replaces a strictly older row
// and the global epoch only ratchets forward, so reordered or replayed updates can never
// roll routing back (this is also what terminates the semi-naive fixpoint — an admitted
// row never re-admits itself).
constexpr char kNnFederationModule[] = R"olg(
// Relations borrowed from the Paxos/BOOM-FS/HA-bridge programs on the same engine, plus
// the events fed from outside (clients send fed_request; the map service sends
// fed_map_update / fed_freeze / fed_unfreeze).
extern event ha_request(Addr, ReqId, Client, Cmd, Path, Arg);
extern event ns_request(Addr, ReqId, Client, Cmd, Path, Arg);
extern event ns_response(Addr, ReqId, Ok, Payload);
extern table file(FileId, ParentId, FName, IsDir) keys(0);
extern table fqpath(Path, FileId);
extern table fchunk(ChunkId, FileId) keys(0);
extern event fed_request(Addr, ReqId, Client, Cmd, Path, Arg, Pid, Epoch);
extern event fed_map_update(Addr, Pid, Epoch, Leader, Members, GlobalEpoch);
extern event fed_freeze(Addr, Pid);
extern event fed_unfreeze(Addr, Pid);

table fed_map(Pid, Epoch, Leader, Members) keys(0);
table fed_epoch(K, Epoch) keys(0);
table fed_owned(Pid) keys(0);
table fed_frozen(Pid) keys(0);
// Partitions this group has sealed (xr_seal in the replicated log — see protocol.h and
// the fenced HA bridge, which negates this table at log replay). Owned here; the bridge
// declares it extern.
table fed_sealed(Pid) keys(0);
event fed_apply(Pid, Epoch, Leader, Members);

// Strict-epoch map application. fa1/fa2 admit a row iff it is new or strictly newer;
// ownership is recomputed from the admitted member list (derived tables never
// auto-retract, so fa6's delete is explicit). fa3 lands the row @next: fa1 negates
// fed_map, so the admit/insert loop must be broken across a tick to stratify.
fa1 fed_apply(Pid, E, L, M) :- fed_map_update(@Me, Pid, E, L, M, _),
                               notin fed_map(Pid, _, _, _);
fa2 fed_apply(Pid, E, L, M) :- fed_map_update(@Me, Pid, E, L, M, _),
                               fed_map(Pid, Old, _, _), E > Old;
fa3 fed_map(Pid, E, L, M)@next :- fed_apply(Pid, E, L, M);
fa4 fed_epoch(1, G) :- fed_map_update(@Me, _, _, _, _, G), fed_epoch(1, Cur), G > Cur;
fa5 fed_owned(Pid) :- fed_apply(Pid, _, _, M), Me := f_me(),
                      In := list_contains(M, Me), In == true;
fa6 delete fed_owned(Pid) :- fed_apply(Pid, _, _, M), fed_owned(Pid), Me := f_me(),
                             In := list_contains(M, Me), In == false;

// Migration freeze: the frozen partition sheds (fr2) while its subtree is copied out; the
// rebalancer unfreezes only after the new assignment has been broadcast.
ff1 fed_frozen(Pid) :- fed_freeze(@Me, Pid);
ff2 delete fed_frozen(Pid) :- fed_unfreeze(@Me, Pid), fed_frozen(Pid);

// Intake gating. A sealed partition (xr_seal applied from the replicated log — the
// migration fence) sheds retryably like a frozen one (fr3, the fast path; the fenced HA
// bridge's replay gate is the correctness backstop for commands that slip past intake on
// a replica that has not applied the seal yet).
fr1 ha_request(@Me, R, Cl, Cm, P, A) :- fed_request(@Me, R, Cl, Cm, P, A, Pid, _),
                                        fed_owned(Pid), notin fed_frozen(Pid),
                                        notin fed_sealed(Pid);
fr2 ns_response(@Cl, R, false, Pay) :- fed_request(@Me, R, Cl, _, _, _, Pid, _),
                                       fed_frozen(Pid),
                                       Pay := ["overloaded", freeze_retry_ms];
fr3 ns_response(@Cl, R, false, Pay) :- fed_request(@Me, R, Cl, _, _, _, Pid, _),
                                       fed_sealed(Pid), fed_owned(Pid),
                                       notin fed_frozen(Pid),
                                       Pay := ["overloaded", freeze_retry_ms];

// Stale routing: the whole map rides the bounce. fm1 keeps it pre-aggregated into one
// list row (re-derived whenever fed_map changes) so fs1 is a single lookup; fs2 covers a
// replica that has no map at all yet (fresh restart before the anti-entropy tick).
table fed_map_rows(K, Rows) keys(0);
fm1 fed_map_rows(1, bottomk<4096, Row>) :- fed_map(Pid, E, L, M), Row := [Pid, E, L, M];
fs1 ns_response(@Cl, R, false, Pay) :- fed_request(@Me, R, Cl, _, _, _, Pid, _),
                                       notin fed_owned(Pid), notin fed_frozen(Pid),
                                       fed_epoch(1, G), fed_map_rows(1, Rows),
                                       Pay := ["stale_epoch", G, Rows];
fs2 ns_response(@Cl, R, false, Pay) :- fed_request(@Me, R, Cl, _, _, _, Pid, _),
                                       notin fed_owned(Pid), notin fed_frozen(Pid),
                                       fed_epoch(1, G), notin fed_map_rows(1, _),
                                       Rows := [], Pay := ["stale_epoch", G, Rows];

// --- cross-partition rename: the replicated two-phase protocol ---
// Client-driven: xr_intent (source) validates + marks moving + returns [FileId, chunks];
// the destination entry is made with an ordinary "create"; xr_addchunk (destination)
// adopts one already-allocated chunk id; xr_commit (source) drops the source entry and
// leaves a tombstone — deliberately with NO dn_delete / dead_chunk, the destination owns
// the bytes now. xr_abort (source) and xr_drop (destination) unwind a failed attempt.
event do_xintent(ReqId, Client, Path);
event do_xadd(ReqId, Client, Path, ChunkId);
event do_xcommit(ReqId, Client, Path);
event do_xabort(ReqId, Client, Path);
event do_xdrop(ReqId, Client, Path);
event xr_intent_ok(ReqId, Client, Path, FileId);
event xr_chunks(ReqId, Client, FileId, L);
event xr_adopt_ok(ReqId, Client, FileId, ChunkId);
event xr_commit_ok(ReqId, Client, Path, FileId);
event xr_drop_ok(ReqId, Client, Path, FileId);
table xr_moving(Path, FileId) keys(0);
table xr_tomb(Path, DoneMs) keys(0);

// Command dispatch off the replicated log (same pattern as the dp rules in boomfs_nn).
xd1 do_xintent(R, C, P) :- ns_request(@Me, R, C, "xr_intent", P, _);
xd2 do_xadd(R, C, P, Ch) :- ns_request(@Me, R, C, "xr_addchunk", P, Ch);
xd3 do_xcommit(R, C, P) :- ns_request(@Me, R, C, "xr_commit", P, _);
xd4 do_xabort(R, C, P) :- ns_request(@Me, R, C, "xr_abort", P, _);
xd5 do_xdrop(R, C, P) :- ns_request(@Me, R, C, "xr_drop", P, _);

// Intent: only files move. A path already moving admits only the same file again (an
// idempotent client retry), never a second competing rename. xi3 marks @next: xi1
// negates xr_moving, so the check/mark loop must be broken across a tick to stratify
// (two same-tick intents for one path both pass xi1, but they carry the same FileId, so
// the marks coincide).
xi1 xr_intent_ok(R, C, P, F) :- do_xintent(R, C, P), fqpath(P, F), file(F, _, _, false),
                                notin xr_moving(P, _);
xi2 xr_intent_ok(R, C, P, F) :- do_xintent(R, C, P), fqpath(P, F), file(F, _, _, false),
                                xr_moving(P, F);
xi3 xr_moving(P, F)@next :- xr_intent_ok(_, _, P, F);
xi4 xr_chunks(R, C, F, bottomk<1000000, Ch>) :- xr_intent_ok(R, C, _, F), fchunk(Ch, F);
xi5 ns_response(@C, R, true, Pay) :- xr_chunks(R, C, F, L), Pay := [F, L];
xi6 ns_response(@C, R, true, Pay) :- xr_intent_ok(R, C, _, F), notin fchunk(_, F),
                                     L := [], Pay := [F, L];
xi7 ns_response(@C, R, false, "xr_intent failed") :- do_xintent(R, C, _),
                                                     notin xr_intent_ok(R, _, _, _);

// Adoption at the destination: the id was minted by the source group (per-group id salts
// keep the spaces disjoint); adopting rather than re-minting keeps the DataNodes' stored
// bytes addressable under the destination entry.
xa1 xr_adopt_ok(R, C, F, Ch) :- do_xadd(R, C, P, Ch), fqpath(P, F), file(F, _, _, false);
xa2 fchunk(Ch, F) :- xr_adopt_ok(_, _, F, Ch);
xa3 ns_response(@C, R, true, nil) :- xr_adopt_ok(R, C, _, _);
xa4 ns_response(@C, R, false, "xr_addchunk failed") :- do_xadd(R, C, _, _),
                                                       notin xr_adopt_ok(R, _, _, _);

// Commit: tombstone the source.
xc1 xr_commit_ok(R, C, P, F) :- do_xcommit(R, C, P), xr_moving(P, F);
xc2 delete file(F, Par, N, D) :- xr_commit_ok(_, _, _, F), file(F, Par, N, D);
xc3 delete fqpath(P, F) :- xr_commit_ok(_, _, P, _), fqpath(P, F);
xc4 delete fchunk(Ch, F) :- xr_commit_ok(_, _, _, F), fchunk(Ch, F);
xc5 delete xr_moving(P, F) :- xr_commit_ok(_, _, P, F), xr_moving(P, F);
xc6 xr_tomb(P, T)@next :- xr_commit_ok(_, _, P, _), T := f_now();
xc7 ns_response(@C, R, true, nil) :- xr_commit_ok(R, C, _, _);
xc8 ns_response(@C, R, true, nil) :- do_xcommit(R, C, P), notin xr_moving(P, _),
                                     xr_tomb(P, _);
xc9 ns_response(@C, R, false, "xr_commit failed") :- do_xcommit(R, C, P),
                                                     notin xr_moving(P, _),
                                                     notin xr_tomb(P, _);

// Abort (source): release the intent. Always acked — releasing a non-existent intent is
// a no-op, which keeps client-side unwinding idempotent.
xb1 delete xr_moving(P, F) :- do_xabort(_, _, P), xr_moving(P, F);
xb2 ns_response(@C, R, true, nil) :- do_xabort(R, C, _);

// Drop (destination): remove a half-imported destination entry WITHOUT chunk GC — the
// source still references the adopted chunks until its commit lands.
xp1 xr_drop_ok(R, C, P, F) :- do_xdrop(R, C, P), fqpath(P, F), file(F, _, _, false);
xp2 delete file(F, Par, N, D) :- xr_drop_ok(_, _, _, F), file(F, Par, N, D);
xp3 delete fqpath(P, F) :- xr_drop_ok(_, _, P, _), fqpath(P, F);
xp4 delete fchunk(Ch, F) :- xr_drop_ok(_, _, _, F), fchunk(Ch, F);
xp5 ns_response(@C, R, true, nil) :- xr_drop_ok(R, C, _, _);
xp6 ns_response(@C, R, true, nil) :- do_xdrop(R, C, P), notin fqpath(P, _);

// --- partition seal (migration fence) ---
// xr_seal/xr_unseal ride the replicated log with the partition id in Arg, so the fence
// state is itself replicated and durable: a recovering replica rebuilds it by replay.
// se1 lands @next — the fenced bridge's replay gate and fr1/fr3 negate fed_sealed, so
// the insert must be broken across a tick to stratify. That is safe for the fence: the
// learner applies one log slot per tick, so any plain command in a later slot replays at
// least one tick after the seal's fed_sealed row is visible. Both commands are acked
// unconditionally (sealing a sealed partition and unsealing an open one are no-ops),
// which keeps the rebalancer's retries idempotent.
se1 fed_sealed(Pid)@next :- ns_request(@Me, _, _, "xr_seal", _, Pid);
se2 ns_response(@C, R, true, nil) :- ns_request(@Me, R, C, "xr_seal", _, _);
se3 delete fed_sealed(Pid) :- ns_request(@Me, _, _, "xr_unseal", _, Pid), fed_sealed(Pid);
se4 ns_response(@C, R, true, nil) :- ns_request(@Me, R, C, "xr_unseal", _, _);
)olg";

// The partition-map service: the sole authority for pid -> group assignment. Assignments
// (pm_assign) carry explicit epochs chosen by the coordinator; the service accepts only
// strictly newer ones, ratchets its global epoch, and broadcasts accepted rows to every
// registered replica. An anti-entropy timer rebroadcasts the whole map so replicas that
// missed an update (restart, dropped message) reconverge; the strict-epoch guard on the
// replica side makes rebroadcasts idempotent.
constexpr char kPartitionMapModule[] = R"olg(
extern event pm_assign(Addr, Pid, Leader, Members, Epoch);
extern event pm_freeze(Addr, Pid);
extern event pm_unfreeze(Addr, Pid);

table partition_map(Pid, Epoch, Leader, Members) keys(0);
table pm_epoch(K, Epoch) keys(0);
table pm_node(Addr) keys(0);
event fed_map_update(Addr, Pid, Epoch, Leader, Members, GlobalEpoch);
event fed_freeze(Addr, Pid);
event fed_unfreeze(Addr, Pid);

// Accept a strictly newer assignment; ratchet the global epoch; broadcast the new row.
// pa1/pa2 land the row @next (pa1 negates partition_map, so the admit/insert loop must
// be broken across a tick to stratify — same shape as fa1/fa3 on the replica side).
pa1 partition_map(Pid, E, L, M)@next :- pm_assign(@Me, Pid, L, M, E),
                                        notin partition_map(Pid, _, _, _);
pa2 partition_map(Pid, E, L, M)@next :- pm_assign(@Me, Pid, L, M, E),
                                        partition_map(Pid, Old, _, _), E > Old;
pa3 pm_epoch(1, E) :- pm_assign(@Me, _, _, _, E), pm_epoch(1, Cur), E > Cur;
pa4 fed_map_update(@N, Pid, E, L, M, E) :- pm_assign(@Me, Pid, L, M, E), pm_node(N);

// Freeze/unfreeze relays go to every replica (a non-owner that sheds while frozen is
// harmless: it simply answers retryable until the unfreeze lands).
pf1 fed_freeze(@N, Pid) :- pm_freeze(@Me, Pid), pm_node(N);
pf2 fed_unfreeze(@N, Pid) :- pm_unfreeze(@Me, Pid), pm_node(N);

// Anti-entropy: rebroadcast the full map + global epoch every period.
timer pm_tick(pm_rebroadcast_ms);
pb1 fed_map_update(@N, Pid, E, L, M, G) :- pm_tick(_), partition_map(Pid, E, L, M),
                                           pm_node(N), pm_epoch(1, G);
)olg";

// Removes a rule by name (chaos bug variants are built by deleting steps of a protocol).
void StripProgramRule(Program* program, const std::string& name) {
  for (auto it = program->rules.begin(); it != program->rules.end(); ++it) {
    if (it->name == name) {
      program->rules.erase(it);
      return;
    }
  }
  BOOM_CHECK(false) << "federation rule " << name << " not found";
}

Value MembersValue(const std::vector<std::string>& members) {
  ValueList list;
  list.reserve(members.size());
  for (const std::string& m : members) {
    list.push_back(Value(m));
  }
  return Value(std::move(list));
}

// Reads every row of `table` on `node` (empty when the node is dead or lacks the table).
std::vector<Tuple> ReadEngineTable(Cluster& cluster, const std::string& node,
                                   const std::string& table) {
  std::vector<Tuple> rows;
  if (!cluster.IsAlive(node)) {
    return rows;
  }
  Engine* engine = cluster.engine(node);
  if (engine == nullptr) {
    return rows;
  }
  const Table* t = engine->catalog().Find(table);
  if (t == nullptr) {
    return rows;
  }
  t->ForEach([&rows](const Tuple& row) { rows.push_back(row); });
  return rows;
}

}  // namespace

const Module& NnFederationModule() {
  static const Module* kModule = new Module{
      "nn_federation",
      kNnFederationModule,
      {ModuleParam::Required("freeze_retry_ms", ValueKind::kDouble)}};
  return *kModule;
}

const Module& PartitionMapModule() {
  static const Module* kModule = new Module{
      "partition_map",
      kPartitionMapModule,
      {ModuleParam::Required("pm_rebroadcast_ms", ValueKind::kDouble)}};
  return *kModule;
}

Program NnFederationProgram(const NnFederationProgramOptions& options) {
  ProgramBuilder builder("nn_federation");
  Status status =
      builder.Add(NnFederationModule(), {{"freeze_retry_ms", options.freeze_retry_ms}});
  BOOM_CHECK(status.ok()) << status.ToString();
  builder.AddFact("fed_epoch",
                  Tuple{Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(0))});
  for (const FedMapRow& row : options.initial_map) {
    builder.AddFact("fed_map", Tuple{Value(row.pid), Value(row.epoch), Value(row.leader),
                                     MembersValue(row.members)});
  }
  for (int64_t pid : options.owned_pids) {
    builder.AddFact("fed_owned", Tuple{Value(pid)});
  }
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Program PartitionMapProgram(const PartitionMapProgramOptions& options) {
  ProgramBuilder builder("partition_map");
  Status status =
      builder.Add(PartitionMapModule(), {{"pm_rebroadcast_ms", options.rebroadcast_ms}});
  BOOM_CHECK(status.ok()) << status.ToString();
  builder.AddFact("pm_epoch",
                  Tuple{Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(0))});
  for (const FedMapRow& row : options.initial_map) {
    builder.AddFact("partition_map",
                    Tuple{Value(row.pid), Value(row.epoch), Value(row.leader),
                          MembersValue(row.members)});
  }
  for (const std::string& node : options.nodes) {
    builder.AddFact("pm_node", Tuple{Value(node)});
  }
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

std::vector<std::string> FederatedFsHandles::AllReplicas() const {
  std::vector<std::string> all;
  for (const std::vector<std::string>& group : groups) {
    all.insert(all.end(), group.begin(), group.end());
  }
  return all;
}

FederatedFsHandles SetupFederatedFs(Cluster& cluster, const FederatedFsOptions& options) {
  BOOM_CHECK(options.num_groups > 0 && options.replicas_per_group > 0 &&
             options.num_partitions > 0)
      << "degenerate federation";
  FederatedFsHandles handles;
  handles.num_partitions = options.num_partitions;
  handles.pmap = options.prefix + "_pmap";

  for (int g = 0; g < options.num_groups; ++g) {
    std::vector<std::string> members;
    for (int r = 0; r < options.replicas_per_group; ++r) {
      members.push_back(options.prefix + "_g" + std::to_string(g) + "r" +
                        std::to_string(r));
    }
    handles.groups.push_back(std::move(members));
  }

  // Initial assignment: pid -> group round-robin, everything at epoch 0.
  std::vector<FedMapRow> initial_map;
  for (int64_t pid = 0; pid < options.num_partitions; ++pid) {
    int g = static_cast<int>(pid % options.num_groups);
    handles.pid_group.push_back(g);
    FedMapRow row;
    row.pid = pid;
    row.epoch = 0;
    row.leader = handles.groups[g][0];
    row.members = handles.groups[g];
    initial_map.push_back(std::move(row));
  }

  NnProgramOptions nn_prog;
  nn_prog.replication_factor = options.replication_factor;
  nn_prog.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  nn_prog.with_rename = true;
  Program fs_program = BoomFsNnProgram(nn_prog);
  // The fenced bridge: replayed plain commands for a sealed (migrated-away) partition
  // are dropped at every replica — the zombie-write fence (see ha.h).
  HaBridgeOptions bridge_opts;
  bridge_opts.fed_fence = true;
  bridge_opts.num_partitions = options.num_partitions;
  Program bridge_program = HaBridgeProgram(bridge_opts);

  for (int g = 0; g < options.num_groups; ++g) {
    const std::vector<std::string>& members = handles.groups[g];
    NnFederationProgramOptions fed_prog;
    fed_prog.freeze_retry_ms = options.freeze_retry_ms;
    fed_prog.initial_map = initial_map;
    for (int64_t pid = 0; pid < options.num_partitions; ++pid) {
      if (handles.pid_group[static_cast<size_t>(pid)] == g) {
        fed_prog.owned_pids.push_back(pid);
      }
    }
    Program fed_program = NnFederationProgram(fed_prog);
    for (const std::string& rule : options.federation_strip_rules) {
      StripProgramRule(&fed_program, rule);
    }
    for (int i = 0; i < options.replicas_per_group; ++i) {
      PaxosProgramOptions paxos = options.paxos;
      paxos.peers = members;
      paxos.my_index = i;
      Program paxos_program = PaxosProgram(paxos);
      auto init = [paxos_program, fs_program, bridge_program, fed_program](Engine& engine) {
        Status s = engine.Install(paxos_program);
        BOOM_CHECK(s.ok()) << "paxos install: " << s.ToString();
        s = engine.Install(fs_program);
        BOOM_CHECK(s.ok()) << "boomfs install: " << s.ToString();
        s = engine.Install(bridge_program);
        BOOM_CHECK(s.ok()) << "ha bridge install: " << s.ToString();
        s = engine.Install(fed_program);
        BOOM_CHECK(s.ok()) << "federation install: " << s.ToString();
      };
      // Group-salted ids: shared within a group (replicas replaying the same log mint
      // identical file/chunk ids), distinct across groups (no cross-partition chunk-id
      // collisions over the shared DataNode pool).
      cluster.AddOverlogNode(members[static_cast<size_t>(i)], init,
                             /*id_salt=*/0xF00 + static_cast<uint64_t>(g));
    }
  }

  PartitionMapProgramOptions pm_prog;
  pm_prog.rebroadcast_ms = options.pm_rebroadcast_ms;
  pm_prog.initial_map = initial_map;
  pm_prog.nodes = handles.AllReplicas();
  Program pm_program = PartitionMapProgram(pm_prog);
  cluster.AddOverlogNode(handles.pmap, [pm_program](Engine& engine) {
    Status s = engine.Install(pm_program);
    BOOM_CHECK(s.ok()) << "partition_map install: " << s.ToString();
  });

  // One shared DataNode pool heartbeating to every replica of every group: any group can
  // allocate chunks on any DataNode (the paper's shared storage tier under a partitioned
  // metadata tier).
  std::vector<std::string> all = handles.AllReplicas();
  for (int i = 0; i < options.num_datanodes; ++i) {
    std::string dn = options.prefix + "_dn" + std::to_string(i);
    DataNodeOptions dn_opts;
    dn_opts.namenode = all[0];
    dn_opts.extra_namenodes.assign(all.begin() + 1, all.end());
    dn_opts.heartbeat_period_ms = options.heartbeat_period_ms;
    cluster.AddActor(std::make_unique<DataNode>(dn, dn_opts));
    handles.datanodes.push_back(std::move(dn));
  }

  // Federated clients share one map cache seeded with the epoch-0 assignment; any
  // client's stale-epoch bounce refreshes routing for all of them.
  handles.cache = std::make_shared<FedMapCache>();
  for (const FedMapRow& row : initial_map) {
    handles.cache->ApplyRow(row.pid, row.epoch, row.leader, row.members);
  }
  for (int i = 0; i < options.num_clients; ++i) {
    FsClientOptions client_opts;
    client_opts.namenode = all[0];
    client_opts.chunk_size = options.chunk_size;
    client_opts.request_timeout_ms = options.client_timeout_ms;
    client_opts.max_retries = options.client_retries;
    client_opts.request_table = kFedRequest;
    auto client = std::make_unique<FsClient>(
        options.prefix + "_client" + std::to_string(i), client_opts);
    client->SetFedRouting(handles.cache, options.num_partitions);
    handles.clients.push_back(client.get());
    cluster.AddActor(std::move(client));
  }

  // Raw-op admin client for the rebalancer and tests: no routing, explicit targets only.
  FsClientOptions admin_opts;
  admin_opts.namenode = all[0];
  admin_opts.request_timeout_ms = options.client_timeout_ms;
  auto admin = std::make_unique<FsClient>(options.prefix + "_admin", admin_opts);
  handles.admin = admin.get();
  cluster.AddActor(std::move(admin));
  return handles;
}

std::string GroupLeader(Cluster& cluster, const std::vector<std::string>& members) {
  for (const std::string& m : members) {
    if (!cluster.IsAlive(m)) {
      continue;
    }
    for (const Tuple& row : ReadEngineTable(cluster, m, "leader")) {
      if (row.size() == 2 && row[1].is_string() && cluster.IsAlive(row[1].as_string())) {
        return row[1].as_string();
      }
    }
    // Election still converging (or the recorded leader is dead): any alive member
    // forwards ha_request to whoever wins.
    return m;
  }
  return "";
}

namespace {

// One online partition migration, driven as an asynchronous chain of scheduled steps and
// admin-client ops (RunUntil is not reentrant, so nothing here blocks the simulation).
class Rebalance : public std::enable_shared_from_this<Rebalance> {
 public:
  Rebalance(Cluster& cluster, FedRebalanceOptions opts, std::function<void(bool)> done)
      : cluster_(cluster), opts_(std::move(opts)), done_(std::move(done)) {
    BOOM_CHECK(opts_.admin != nullptr) << "rebalance needs an admin client";
  }

  void Start() {
    SendPm("pm_freeze");
    // Seal the partition in the SOURCE group's replicated log. The seal is the ordering
    // barrier that makes the snapshot complete: every command acked by the source
    // precedes the seal in the log, and every plain command after it is dropped at
    // replay — including one a crashed ex-leader re-proposes when it recovers after the
    // partition has already migrated away (the zombie-write fence).
    auto self = shared_from_this();
    Op(&opts_.source, kCmdXrSeal, "", Value(opts_.pid), [self](bool ok, const Value&) {
      if (!ok) {
        self->FailUnseal();
        return;
      }
      self->cluster_.ScheduleAfter(self->opts_.settle_ms, [self] { self->Snapshot(); });
    });
  }

 private:
  using OpCb = std::function<void(bool, const Value&)>;

  void SendPm(const std::string& table) {
    cluster_.Send(opts_.admin->address(), opts_.pmap, table,
                  Tuple{Value(opts_.pmap), Value(opts_.pid)});
  }

  void Fail() {
    // Abort: the map stays with the source group; unfreeze and report. Files already
    // committed to the destination are orphaned from routing — callers tracking per-path
    // state treat the whole partition as uncertain (see header).
    SendPm("pm_unfreeze");
    done_(false);
  }

  // Abort after the seal may have landed: reopen the source partition (best-effort —
  // unsealing an open partition is an acked no-op) so the still-owning source group can
  // serve it again, then unfreeze and report.
  void FailUnseal() {
    auto self = shared_from_this();
    Op(&opts_.source, kCmdXrUnseal, "", Value(opts_.pid),
       [self](bool, const Value&) { self->Fail(); });
  }

  // Snapshot the source group's committed namespace and compute what moves: entries the
  // partition serves (routing key = parent dir) plus child-serving directory copies
  // (routing key = the dir's own path), and every ancestor needed as scaffolding.
  void Snapshot() {
    std::string source = GroupLeader(cluster_, opts_.source);
    if (source.empty()) {
      FailUnseal();
      return;
    }
    // The seal op was acked by SOME replica; only snapshot a leader that has replayed up
    // to (at least) the seal, so every command the group ever acked for this partition
    // is already in the tables read below.
    bool sealed = false;
    for (const Tuple& row : ReadEngineTable(cluster_, source, "fed_sealed")) {
      if (!row.empty() && row[0].is_int() && row[0].as_int() == opts_.pid) {
        sealed = true;
      }
    }
    if (!sealed) {
      if (++seal_waits_ > opts_.op_retries) {
        FailUnseal();
        return;
      }
      auto self = shared_from_this();
      cluster_.ScheduleAfter(opts_.retry_ms, [self] { self->Snapshot(); });
      return;
    }
    std::map<int64_t, bool> is_dir;
    for (const Tuple& row : ReadEngineTable(cluster_, source, "file")) {
      if (row.size() == 4) {
        is_dir[row[0].as_int()] = row[3].Truthy();
      }
    }
    std::set<std::string> dir_set;
    std::vector<std::string> files;
    for (const Tuple& row : ReadEngineTable(cluster_, source, "fqpath")) {
      if (row.size() != 2 || !row[0].is_string()) {
        continue;
      }
      const std::string path = row[0].as_string();
      if (path == "/") {
        continue;
      }
      auto kind = is_dir.find(row[1].as_int());
      if (kind == is_dir.end()) {
        continue;  // mid-apply inconsistency; the settle window makes this rare
      }
      bool keyed_here = RoutingPid(PathDirname(path), opts_.num_partitions) == opts_.pid;
      bool child_copy =
          kind->second && RoutingPid(path, opts_.num_partitions) == opts_.pid;
      if (!keyed_here && !child_copy) {
        continue;
      }
      if (kind->second) {
        dir_set.insert(path);
      } else {
        files.push_back(path);
      }
    }
    std::set<std::string> all_dirs = dir_set;
    auto add_ancestors = [&all_dirs](const std::string& path) {
      for (std::string p = PathDirname(path); !p.empty() && p != "/"; p = PathDirname(p)) {
        all_dirs.insert(p);
      }
    };
    for (const std::string& f : files) {
      add_ancestors(f);
    }
    for (const std::string& d : dir_set) {
      add_ancestors(d);
    }
    dirs_.assign(all_dirs.begin(), all_dirs.end());
    std::sort(dirs_.begin(), dirs_.end(), [](const std::string& a, const std::string& b) {
      size_t da = static_cast<size_t>(std::count(a.begin(), a.end(), '/'));
      size_t db = static_cast<size_t>(std::count(b.begin(), b.end(), '/'));
      return da != db ? da < db : a < b;  // parents before children
    });
    std::sort(files.begin(), files.end());
    files_ = std::move(files);
    // Reopen the partition at the DESTINATION before importing: if an earlier migration
    // ever moved this pid away from `dest`, its seal is still in that group's replayed
    // state and would fence the plain mkdir/create imports below. (Unsealing a
    // never-sealed partition is an acked no-op.)
    auto self = shared_from_this();
    Op(&opts_.dest, kCmdXrUnseal, "", Value(opts_.pid), [self](bool ok, const Value&) {
      if (!ok) {
        self->FailUnseal();
        return;
      }
      self->NextDir();
    });
  }

  // One migration op with bounded retries. The target group's leader is re-resolved every
  // attempt, and ops ride ha_request (through Paxos), so the migration survives a
  // failover of either group and bypasses the frozen-partition intake gate.
  void Op(const std::vector<std::string>* group, const std::string& cmd,
          const std::string& path, Value arg, OpCb k) {
    OpAttempt(group, cmd, path, std::move(arg), 0, std::move(k));
  }

  void OpAttempt(const std::vector<std::string>* group, const std::string& cmd,
                 const std::string& path, Value arg, int attempt, OpCb k) {
    auto self = shared_from_this();
    std::string target = GroupLeader(cluster_, *group);
    if (target.empty()) {
      OpRetry(group, cmd, path, std::move(arg), attempt, std::move(k), Value());
      return;
    }
    opts_.admin->RawOp(
        cluster_, cmd, path, arg,
        [self, group, cmd, path, arg, attempt, k](bool ok, const Value& pay) {
          if (ok) {
            k(true, pay);
            return;
          }
          self->OpRetry(group, cmd, path, arg, attempt, k, pay);
        },
        target, "ha_request");
  }

  void OpRetry(const std::vector<std::string>* group, const std::string& cmd,
               const std::string& path, Value arg, int attempt, OpCb k,
               const Value& last) {
    if (attempt + 1 >= opts_.op_retries) {
      k(false, last);
      return;
    }
    auto self = shared_from_this();
    cluster_.ScheduleAfter(opts_.retry_ms, [self, group, cmd, path, arg, attempt, k] {
      self->OpAttempt(group, cmd, path, arg, attempt + 1, k);
    });
  }

  // Mkdir at the destination, treating already-exists (surfaced as "mkdir failed") as
  // success via an exists probe — re-runs after a partial earlier migration stay clean.
  void NextDir() {
    if (next_dir_ >= dirs_.size()) {
      NextFile();
      return;
    }
    const std::string path = dirs_[next_dir_];
    auto self = shared_from_this();
    Op(&opts_.dest, kCmdMkdir, path, Value(), [self, path](bool ok, const Value&) {
      if (ok) {
        ++self->next_dir_;
        self->NextDir();
        return;
      }
      self->Op(&self->opts_.dest, kCmdExists, path, Value(),
               [self](bool ok2, const Value& present) {
                 if (ok2 && present.Truthy()) {
                   ++self->next_dir_;
                   self->NextDir();
                   return;
                 }
                 self->FailUnseal();
               });
    });
  }

  // Move one file through the xr two-phase protocol: intent at the source, create+adopt
  // at the destination (same path — this is an ownership move), commit at the source.
  void NextFile() {
    if (next_file_ >= files_.size()) {
      Publish();
      return;
    }
    const std::string path = files_[next_file_];
    auto self = shared_from_this();
    Op(&opts_.source, kCmdXrIntent, path, Value(), [self, path](bool ok, const Value& pay) {
      if (!ok || !pay.is_list() || pay.as_list().size() != 2 ||
          !pay.as_list()[1].is_list()) {
        self->FailUnseal();
        return;
      }
      self->ImportFile(path, pay.as_list()[1].as_list());
    });
  }

  void ImportFile(const std::string& path, ValueList chunks) {
    auto self = shared_from_this();
    Op(&opts_.dest, kCmdCreate, path, Value(),
       [self, path, chunks](bool ok, const Value&) {
         if (ok) {
           self->AdoptChunk(path, chunks, 0);
           return;
         }
         // Possibly created by an earlier partial run; adoption is idempotent.
         self->Op(&self->opts_.dest, kCmdExists, path, Value(),
                  [self, path, chunks](bool ok2, const Value& present) {
                    if (ok2 && present.Truthy()) {
                      self->AdoptChunk(path, chunks, 0);
                      return;
                    }
                    self->FailUnseal();
                  });
       });
  }

  void AdoptChunk(const std::string& path, ValueList chunks, size_t index) {
    if (index >= chunks.size()) {
      CommitFile(path);
      return;
    }
    auto self = shared_from_this();
    Op(&opts_.dest, kCmdXrAddChunk, path, chunks[index],
       [self, path, chunks, index](bool ok, const Value&) {
         if (!ok) {
           self->FailUnseal();
           return;
         }
         self->AdoptChunk(path, chunks, index + 1);
       });
  }

  void CommitFile(const std::string& path) {
    auto self = shared_from_this();
    Op(&opts_.source, kCmdXrCommit, path, Value(), [self](bool ok, const Value&) {
      if (!ok) {
        self->FailUnseal();
        return;
      }
      ++self->next_file_;
      self->NextFile();
    });
  }

  // Publish the new assignment with a bumped epoch, then unfreeze after the broadcast has
  // outrun any straggler intake at the old group.
  void Publish() {
    int64_t epoch = 1;
    for (const Tuple& row : ReadEngineTable(cluster_, opts_.pmap, "pm_epoch")) {
      if (row.size() == 2 && row[1].is_numeric()) {
        epoch = row[1].as_int() + 1;
      }
    }
    cluster_.Send(opts_.admin->address(), opts_.pmap, "pm_assign",
                  Tuple{Value(opts_.pmap), Value(opts_.pid),
                        Value(GroupLeader(cluster_, opts_.dest)),
                        MembersValue(opts_.dest), Value(epoch)});
    auto self = shared_from_this();
    cluster_.ScheduleAfter(100, [self] {
      self->SendPm("pm_unfreeze");
      self->done_(true);
    });
  }

  Cluster& cluster_;
  FedRebalanceOptions opts_;
  std::function<void(bool)> done_;
  std::vector<std::string> dirs_;
  std::vector<std::string> files_;
  size_t next_dir_ = 0;
  size_t next_file_ = 0;
  int seal_waits_ = 0;  // Snapshot() polls of the source leader for the applied seal
};

}  // namespace

void StartRebalance(Cluster& cluster, const FedRebalanceOptions& options,
                    std::function<void(bool ok)> done) {
  auto job = std::make_shared<Rebalance>(cluster, options, std::move(done));
  job->Start();
}

bool RebalancePartitionSync(Cluster& cluster, FederatedFsHandles& handles, int64_t pid,
                            int dest_group, double timeout_ms) {
  BOOM_CHECK(dest_group >= 0 && dest_group < static_cast<int>(handles.groups.size()));
  // Current owner: the map service's row for `pid` (fall back to the recorded initial
  // assignment if the service is unreadable).
  int src_group = handles.pid_group[static_cast<size_t>(pid)];
  for (const Tuple& row : ReadEngineTable(cluster, handles.pmap, "partition_map")) {
    if (row.size() != 4 || row[0].as_int() != pid || !row[3].is_list() ||
        row[3].as_list().empty()) {
      continue;
    }
    const std::string& first = row[3].as_list()[0].as_string();
    for (size_t g = 0; g < handles.groups.size(); ++g) {
      if (!handles.groups[g].empty() && handles.groups[g][0] == first) {
        src_group = static_cast<int>(g);
      }
    }
  }
  FedRebalanceOptions opts;
  opts.pmap = handles.pmap;
  opts.source = handles.groups[static_cast<size_t>(src_group)];
  opts.dest = handles.groups[static_cast<size_t>(dest_group)];
  opts.pid = pid;
  opts.num_partitions = handles.num_partitions;
  opts.admin = handles.admin;
  bool finished = false;
  bool ok = false;
  StartRebalance(cluster, opts, [&finished, &ok](bool r) {
    finished = true;
    ok = r;
  });
  double deadline = cluster.now() + timeout_ms;
  while (!finished && cluster.now() < deadline) {
    cluster.RunUntil(cluster.now() + 5.0);
  }
  if (finished && ok) {
    handles.pid_group[static_cast<size_t>(pid)] = dest_group;
  }
  return finished && ok;
}

}  // namespace boom
