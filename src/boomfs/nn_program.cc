#include "src/boomfs/nn_program.h"

#include "src/base/logging.h"

namespace boom {

namespace {

// Core namespace module (paper revision F1). `rep_factor` is the chunk placement width.
constexpr char kNamespaceModule[] = R"olg(
/////////////////////////////////////////////////////////////////////////////
// File-system metadata: the entire NameNode state is relational.
/////////////////////////////////////////////////////////////////////////////
table file(FileId, ParentId, FName, IsDir) keys(0);
table fqpath(Path, FileId);
table fchunk(ChunkId, FileId) keys(0);
table datanode(Dn, LastHb) keys(0);
table hb_chunk(Dn, ChunkId);
table dn_load(Dn, Load) keys(0);
// Tombstones for removed chunks: a DataNode that was down during the rm would otherwise
// resurrect the chunk's location via its next full chunk report. Tombstones (not absence
// from fchunk) gate reports so an HA replica that is still replaying the command log never
// garbage-collects a chunk it merely has not heard of yet.
table dead_chunk(ChunkId) keys(0);
// Nonempty while the NameNode is in safe mode (seeded by the safe-mode extension; always
// empty when that extension is disabled, so the notin guards below are no-ops).
table safemode(On) keys(0);

// The root directory.
file(0, -1, "", true);
fqpath("/", 0);

// Fully-qualified paths: a recursive view over the directory tree.
fq1 fqpath(P, F) :- file(F, Par, Name, _), F != 0, fqpath(PPath, Par),
                    P := path_join(PPath, Name);

/////////////////////////////////////////////////////////////////////////////
// Client protocol events and command dispatch.
/////////////////////////////////////////////////////////////////////////////
event ns_request(Addr, ReqId, Client, Cmd, Path, Arg);
event ns_response(Addr, ReqId, Ok, Payload);

event do_mkdir(ReqId, Client, Path);
event do_create(ReqId, Client, Path);
event do_exists(ReqId, Client, Path);
event do_ls(ReqId, Client, Path);
event do_rm(ReqId, Client, Path);
event do_addchunk(ReqId, Client, Path);
event do_chunks(ReqId, Client, Path);
event do_locations(ReqId, Client, ChunkId);
event do_abandon(ReqId, Client, ChunkId);

dp1 do_mkdir(R, C, P)     :- ns_request(@Me, R, C, "mkdir", P, _);
dp2 do_create(R, C, P)    :- ns_request(@Me, R, C, "create", P, _);
dp3 do_exists(R, C, P)    :- ns_request(@Me, R, C, "exists", P, _);
dp4 do_ls(R, C, P)        :- ns_request(@Me, R, C, "ls", P, _);
dp5 do_rm(R, C, P)        :- ns_request(@Me, R, C, "rm", P, _);
dp6 do_addchunk(R, C, P)  :- ns_request(@Me, R, C, "addchunk", P, _);
dp7 do_chunks(R, C, P)    :- ns_request(@Me, R, C, "chunks", P, _);
dp8 do_locations(R, C, A) :- ns_request(@Me, R, C, "locations", _, A);
dp9 do_abandon(R, C, A)   :- ns_request(@Me, R, C, "abandon", _, A);

/////////////////////////////////////////////////////////////////////////////
// mkdir / create: insert under an existing parent directory unless the path
// already exists. State updates are deferred (@next), Dedalus-style, so the
// existence checks read the pre-request state.
/////////////////////////////////////////////////////////////////////////////
event mkdir_ok(ReqId, Client, ParentId, BName);
event mk_new(ParentId, BName);
mk1 mkdir_ok(R, C, Par, N) :- do_mkdir(R, C, P), D := path_dirname(P),
                              N := path_basename(P), N != "",
                              fqpath(D, Par), file(Par, _, _, true),
                              notin fqpath(P, _);
// mk1b collapses same-tick duplicate requests for one (parent, name) into a single set-
// semantics row, so two concurrent mkdirs of one path can never mint two file ids. Cross-
// tick duplicates are already rejected by mk1's fqpath guard (fqpath materializes in the
// same tick the file row lands).
mk1b mk_new(Par, N) :- mkdir_ok(_, _, Par, N);
mk2 file(Id, Par, N, true)@next :- mk_new(Par, N), Id := f_unique_id();
mk3 ns_response(@C, R, true, nil)  :- mkdir_ok(R, C, _, _);
mk4 ns_response(@C, R, false, "mkdir failed") :- do_mkdir(R, C, _),
                                                 notin mkdir_ok(R, _, _, _);

event create_ok(ReqId, Client, ParentId, BName);
event cr_new(ParentId, BName);
cr1 create_ok(R, C, Par, N) :- do_create(R, C, P), D := path_dirname(P),
                               N := path_basename(P), N != "",
                               fqpath(D, Par), file(Par, _, _, true),
                               notin fqpath(P, _);
cr1b cr_new(Par, N) :- create_ok(_, _, Par, N);
cr2 file(Id, Par, N, false)@next :- cr_new(Par, N), Id := f_unique_id();
cr3 ns_response(@C, R, true, nil) :- create_ok(R, C, _, _);
cr4 ns_response(@C, R, false, "create failed") :- do_create(R, C, _),
                                                  notin create_ok(R, _, _, _);

/////////////////////////////////////////////////////////////////////////////
// exists / ls
/////////////////////////////////////////////////////////////////////////////
ex1 ns_response(@C, R, true, true)  :- do_exists(R, C, P), fqpath(P, _);
ex2 ns_response(@C, R, true, false) :- do_exists(R, C, P), notin fqpath(P, _);

event do_ls2(ReqId, Client, DirId);
event ls_result(ReqId, Client, Names);
ls1 do_ls2(R, C, Dir) :- do_ls(R, C, P), fqpath(P, Dir), file(Dir, _, _, true);
ls2 ls_result(R, C, bottomk<1000000, N>) :- do_ls2(R, C, Dir), file(_, Dir, N, _);
ls3 ns_response(@C, R, true, Names) :- ls_result(R, C, Names);
ls4 ns_response(@C, R, true, L) :- do_ls2(R, C, Dir), notin file(_, Dir, _, _), L := [];
ls5 ns_response(@C, R, false, "no such directory") :- do_ls(R, C, _),
                                                      notin do_ls2(R, _, _);

/////////////////////////////////////////////////////////////////////////////
// rm: files and empty directories only; deletes cascade to the path index
// and chunk ownership at the tick boundary.
/////////////////////////////////////////////////////////////////////////////
event rm_ok(ReqId, Client, FileId);
rm1 rm_ok(R, C, F) :- do_rm(R, C, P), fqpath(P, F), F != 0, notin file(_, F, _, _);
rm2 delete file(F, Par, N, D) :- rm_ok(_, _, F), file(F, Par, N, D);
rm3 delete fqpath(P, F)       :- rm_ok(_, _, F), fqpath(P, F);
rm4 delete fchunk(Ch, F)      :- rm_ok(_, _, F), fchunk(Ch, F);
// Chunk garbage collection: tell every holder to drop the dead file's chunks, and forget
// their locations.
event dn_delete(Addr, ChunkId);
rm7 dn_delete(@Dn, Ch) :- rm_ok(_, _, F), fchunk(Ch, F), hb_chunk(Dn, Ch);
rm8 delete hb_chunk(Dn, Ch) :- rm_ok(_, _, F), fchunk(Ch, F), hb_chunk(Dn, Ch);
rm9 dead_chunk(Ch) :- rm_ok(_, _, F), fchunk(Ch, F);
rm5 ns_response(@C, R, true, nil) :- rm_ok(R, C, _);
rm6 ns_response(@C, R, false, "rm failed") :- do_rm(R, C, _), notin rm_ok(R, _, _);

/////////////////////////////////////////////////////////////////////////////
// addchunk: allocate a fresh chunk id and pick the rep_factor least-loaded
// live DataNodes (load = chunk count, a classic declarative placement policy).
/////////////////////////////////////////////////////////////////////////////
dl1 dn_load(Dn, count<C>) :- datanode(Dn, _), hb_chunk(Dn, C);

// Candidate targets per request: every live DataNode, with its chunk count as load — or 0
// when it holds nothing (dn_load has no row then; deletions of hb_chunk rows retract its
// groups, so the fallback must live at the consumer, evaluated per request).
event do_addchunk2(ReqId, Client, FileId);
event cand_dn(ReqId, Client, FileId, Dn, Load);
event addchunk_sel(ReqId, Client, FileId, Pairs);
event addchunk_ok(ReqId, Client, FileId, ChunkId, Dns);
ac0 do_addchunk2(R, C, F) :- do_addchunk(R, C, P), fqpath(P, F), file(F, _, _, false);
ac1a cand_dn(R, C, F, Dn, L) :- do_addchunk2(R, C, F), datanode(Dn, _), dn_load(Dn, L);
ac1b cand_dn(R, C, F, Dn, 0) :- do_addchunk2(R, C, F), datanode(Dn, _),
                                notin dn_load(Dn, _);
ac1 addchunk_sel(R, C, F, bottomk<rep_factor, Pair>) :- cand_dn(R, C, F, Dn, L),
                                                        Pair := [L, Dn];
ac2 addchunk_ok(R, C, F, Ch, Dns) :- addchunk_sel(R, C, F, Pairs),
                                     list_len(Pairs) > 0,
                                     Ch := f_unique_id(),
                                     Dns := list_project(Pairs, 1);
ac3 fchunk(Ch, F) :- addchunk_ok(_, _, F, Ch, _);
ac4 ns_response(@C, R, true, Payload) :- addchunk_ok(R, C, _, Ch, Dns),
                                         Payload := [Ch, Dns];
ac5 ns_response(@C, R, false, "addchunk failed") :- do_addchunk(R, C, _),
                                                    notin addchunk_ok(R, _, _, _, _);

/////////////////////////////////////////////////////////////////////////////
// abandon: a client whose every replica write failed gives the allocated chunk
// id back. Detach it from the file, tombstone it, and GC any replica that did
// land. Idempotent: abandoning an unknown chunk succeeds (the retry that
// follows a lost abandon response must not wedge the writer).
/////////////////////////////////////////////////////////////////////////////
event abandon_ok(ReqId, Client, ChunkId);
ab1 abandon_ok(R, C, Ch) :- do_abandon(R, C, Ch), fchunk(Ch, _);
ab2 delete fchunk(Ch, F)    :- abandon_ok(_, _, Ch), fchunk(Ch, F);
ab3 dn_delete(@Dn, Ch)      :- abandon_ok(_, _, Ch), hb_chunk(Dn, Ch);
ab4 delete hb_chunk(Dn, Ch) :- abandon_ok(_, _, Ch), hb_chunk(Dn, Ch);
ab5 dead_chunk(Ch) :- abandon_ok(_, _, Ch);
ab6 ns_response(@C, R, true, nil) :- abandon_ok(R, C, _);
ab7 ns_response(@C, R, true, nil) :- do_abandon(R, C, Ch), notin fchunk(Ch, _);

/////////////////////////////////////////////////////////////////////////////
// chunks / locations: read-side metadata lookups.
/////////////////////////////////////////////////////////////////////////////
event chunks_ok(ReqId, Client, FileId);
event chunk_list(ReqId, Client, L);
ch1 chunks_ok(R, C, F) :- do_chunks(R, C, P), fqpath(P, F), file(F, _, _, false);
ch2 chunk_list(R, C, bottomk<1000000, Ch>) :- chunks_ok(R, C, F), fchunk(Ch, F);
ch3 ns_response(@C, R, true, L) :- chunk_list(R, C, L);
ch4 ns_response(@C, R, true, L) :- chunks_ok(R, C, F), notin fchunk(_, F), L := [];
ch5 ns_response(@C, R, false, "no such file") :- do_chunks(R, C, _),
                                                 notin chunks_ok(R, _, _);

// Locations are not served in safe mode: the location table is still being rebuilt from
// chunk reports, and answering from a partial view would steer clients at replicas the
// NameNode merely has not heard from (clients back off and retry on "safe mode").
event loc_list(ReqId, Client, L);
lo1 loc_list(R, C, bottomk<100, Dn>) :- do_locations(R, C, Ch), hb_chunk(Dn, Ch),
                                        datanode(Dn, _), notin safemode(_);
lo2 ns_response(@C, R, true, L) :- loc_list(R, C, L);
lo3 ns_response(@C, R, false, "no locations") :- do_locations(R, C, Ch),
                                                 notin hb_chunk(_, Ch),
                                                 notin safemode(_);
lo4 ns_response(@C, R, false, "safe mode") :- do_locations(R, C, _), safemode(_);

/////////////////////////////////////////////////////////////////////////////
// DataNode control plane: heartbeats and chunk reports.
/////////////////////////////////////////////////////////////////////////////
event dn_heartbeat(Addr, Dn);
event dn_chunk_report(Addr, Dn, ChunkId);
hb1 datanode(Dn, T) :- dn_heartbeat(_, Dn), T := f_now();
hb2 hb_chunk(Dn, Ch) :- dn_chunk_report(_, Dn, Ch);
// Distributed GC: a report of a tombstoned chunk means the DataNode missed the rm-time
// dn_delete (it was down or the message was lost) — tell it again, and retract the
// location row in the same timestep instead of resurrecting it. (A delete rule, not a
// `notin dead_chunk` guard on hb2: the guard would close a negation cycle through the
// dn_load aggregate and the addchunk placement rules.)
hb3 dn_delete(@Dn, Ch) :- dn_chunk_report(_, Dn, Ch), dead_chunk(Ch);
hb4 delete hb_chunk(Dn, Ch) :- dn_chunk_report(_, Dn, Ch), dead_chunk(Ch),
                               hb_chunk(Dn, Ch);

// Corrupt-replica quarantine: a DataNode that found a replica failing its checksum has
// already dropped the bytes; retract the location so reads stop landing there. The
// re-replication rules see the lowered count and heal from a healthy copy.
event dn_corrupt(Addr, Dn, ChunkId);
cq1 delete hb_chunk(Dn, Ch) :- dn_corrupt(_, Dn, Ch), hb_chunk(Dn, Ch);
)olg";

// Availability extension: failure detection + re-replication (toward revision F2).
constexpr char kFailureDetectorModule[] = R"olg(
// ---- availability extension: failure detection + re-replication ----

timer dn_check(fd_check_ms);
event dn_dead(Dn);
fd1 dn_dead(Dn) :- dn_check(_), datanode(Dn, T), f_now() - T > hb_timeout_ms;
fd2 delete datanode(Dn, T) :- dn_dead(Dn), datanode(Dn, T);
fd3 delete hb_chunk(Dn, Ch) :- dn_dead(Dn), hb_chunk(Dn, Ch);

// Re-replicate chunks whose live replica count dropped below the target. A chunk with zero
// live replicas is lost (nothing to copy from).
table chunk_rep(ChunkId, N) keys(0);
event under_rep(ChunkId);
event repl_sel(ChunkId, Pairs);
table repl_src(ChunkId, Src) keys(0);
event replicate_cmd(Addr, ChunkId, Dest);
event repl_cand(ChunkId, Dn, Load);
rr1 chunk_rep(Ch, count<Dn>) :- fchunk(Ch, _), hb_chunk(Dn, Ch);
rr2 under_rep(Ch) :- dn_check(_), chunk_rep(Ch, N), N < rep_factor, N > 0,
                     notin safemode(_);
// Candidate targets: loaded DataNodes not already holding the chunk, plus chunk-less ones
// (which have no dn_load row at all).
rr2a repl_cand(Ch, Dn, L) :- under_rep(Ch), datanode(Dn, _), dn_load(Dn, L),
                             notin hb_chunk(Dn, Ch);
rr2b repl_cand(Ch, Dn, 0) :- under_rep(Ch), datanode(Dn, _), notin dn_load(Dn, _);
rr3 repl_sel(Ch, bottomk<1, Pair>) :- repl_cand(Ch, Dn, L), Pair := [L, Dn];
rr4 repl_src(Ch, min<Dn>) :- under_rep(Ch), hb_chunk(Dn, Ch);
rr5 replicate_cmd(@Src, Ch, Dest) :- repl_sel(Ch, Pairs), list_len(Pairs) > 0,
                                     repl_src(Ch, Src),
                                     Dest := list_get(list_project(Pairs, 1), 0);
)olg";

// Safe-mode extension: after a (re)start the NameNode defers location serving and
// re-replication until it has heard about enough of its chunks.
constexpr char kSafeModeModule[] = R"olg(
// ---- safe mode: defer the data plane until the location table is warm ----

// In safe mode from the first tick; the namespace rules above are unaffected.
safemode(1);
timer sm_check(sm_check_ms);
// First sm_check stamps the epoch start (f_now-based, so it is correct after a failover
// restart too — an absolute deadline computed at program-load time would not be).
table sm_start(T) keys(0);
// Chunks some DataNode has reported since this start (reports arrive before the fchunk
// log finishes replaying in HA, hence a table rather than a per-tick join on hb_chunk).
table sm_reported(ChunkId) keys(0);
event sm_total(Me, N);
event sm_seen(Me, N);
event sm_exit(Me);
smr sm_reported(Ch) :- dn_chunk_report(_, _, Ch);
sma sm_start(T)@next :- sm_check(_), notin sm_start(_), T := f_now();
sm1 sm_total(Me, count<Ch>) :- sm_check(Me), safemode(_), fchunk(Ch, _);
sm2 sm_seen(Me, count<Ch>)  :- sm_check(Me), safemode(_), sm_reported(Ch), fchunk(Ch, _);
// Exit when sm_frac_pct percent of owned chunks have a reported location...
sm3 sm_exit(Me) :- sm_total(Me, Tot), sm_seen(Me, Seen), Seen * 100 >= Tot * sm_frac_pct;
// ...or the namespace owns no chunks at all (fresh cluster / empty log) after a short
// grace period that covers HA log replay...
sm4 sm_exit(Me) :- sm_check(Me), safemode(_), notin fchunk(_, _), sm_start(T),
                   f_now() - T > sm_grace_ms;
// ...or unconditionally after the timeout (better to serve a partial view than none).
sm5 sm_exit(Me) :- sm_check(Me), safemode(_), sm_start(T), f_now() - T > sm_timeout_ms;
sm6 delete safemode(On) :- sm_exit(_), safemode(On);
sm7 delete sm_reported(Ch) :- sm_exit(_), sm_reported(Ch);
)olg";

// Rename extension: move a file to a new path. Files only — moving a directory would
// leave every descendant's materialized fqpath stale, so directories keep their paths for
// the lifetime of the namespace (HDFS-style metadata workloads rename files, not trees).
constexpr char kRenameModule[] = R"olg(
// ---- rename: move a file (not a directory) to a fresh path ----
event do_rename(ReqId, Client, Path, NewPath);
event rename_ok(ReqId, Client, FileId, NewParent, NewName);
rn0 do_rename(R, C, P, NP) :- ns_request(@Me, R, C, "rename", P, NP);
// Valid when the source is an existing file, the destination parent is a directory, and
// the destination path is free. Existence checks read pre-request state, like mk1/cr1.
rn1 rename_ok(R, C, F, NPar, NN) :- do_rename(R, C, P, NP), fqpath(P, F),
                                    file(F, _, _, false),
                                    D := path_dirname(NP),
                                    NN := path_basename(NP), NN != "",
                                    fqpath(D, NPar), file(NPar, _, _, true),
                                    notin fqpath(NP, _);
rn2 delete file(F, Par, N, IsD) :- rename_ok(_, _, F, _, _), file(F, Par, N, IsD);
rn3 delete fqpath(P, F)         :- rename_ok(_, _, F, _, _), fqpath(P, F);
// Re-inserting the file row under its new parent lets fq1 re-derive the new fqpath; the
// file keeps its id, so chunk ownership (fchunk is keyed on the chunk) survives the move.
rn4 file(F, NPar, NN, false)@next :- rename_ok(_, _, F, NPar, NN);
rn5 ns_response(@C, R, true, nil) :- rename_ok(R, C, _, _, _);
rn6 ns_response(@C, R, false, "rename failed") :- do_rename(R, C, _, _),
                                                  notin rename_ok(R, _, _, _, _);
)olg";

// Tombstone GC extension: dead_chunk rows protect against resurrection-by-chunk-report
// only while a DataNode could still be holding a stale replica; after gc_tombstone_ms
// (chosen to exceed any plausible down-time plus a report period) they are pure garbage.
// Tombstones are stamped from the same events that mint them (rm9/ab5) — stamping from
// dead_chunk itself would put the rule's head in its own negation support.
constexpr char kGcModule[] = R"olg(
// ---- tombstone GC: bound dead_chunk growth under sustained churn ----
table tomb_born(ChunkId, BornMs) keys(0);
timer gc_check(gc_check_ms);
gc1a tomb_born(Ch, T) :- rm_ok(_, _, F), fchunk(Ch, F), T := f_now();
gc1b tomb_born(Ch, T) :- abandon_ok(_, _, Ch), T := f_now();
gc2 delete dead_chunk(Ch) :- gc_check(_), dead_chunk(Ch), tomb_born(Ch, T),
                             f_now() - T > gc_tombstone_ms;
gc3 delete tomb_born(Ch, T) :- gc_check(_), tomb_born(Ch, T),
                               f_now() - T > gc_tombstone_ms;
)olg";

// Admission-control module: installed alone on a gateway node (program "boomfs_gw"), not
// composed into the NameNode — a self-addressed head would bypass the simulator's
// busy-server service charge, making admitted work free. The gateway forwards admitted
// requests over the network to the real NameNode, which replies to the client directly.
constexpr char kAdmissionModule[] = R"olg(
/////////////////////////////////////////////////////////////////////////////
// SLO-aware admission control: per-tenant windowed write quotas, read-only
// brownout under backlog, and load shedding with a retry-after hint.
/////////////////////////////////////////////////////////////////////////////
table adm_target(Nn) keys(0);
table adm_tenant(Client, Tenant) keys(0);
table adm_write(Cmd) keys(0);
// Writes admitted in the current quota window, and the per-tenant count over them.
table adm_win_w(ReqId, Tenant) keys(0);
table adm_used(Tenant, N) keys(0);
table brownout(On) keys(0);
// The engine's published fixpoint profile (declared eagerly so bo3 can read it; the
// engine reuses this declaration when PublishProfile runs).
table perf_fixpoint(Tick, NowMs, Rounds, Derivs, WallUs) keys(0);

// The non-monotone commands: everything else is a monotone read, served even browned out.
adm_write("mkdir");
adm_write("create");
adm_write("rm");
adm_write("addchunk");
adm_write("abandon");
adm_write("rename");

timer adm_reset(adm_window_ms);

event ns_ingress(Addr, ReqId, Client, Cmd, Path, Arg);
event svc_load(Addr, BacklogMs);
event ns_request(Addr, ReqId, Client, Cmd, Path, Arg);
event ns_response(Addr, ReqId, Ok, Payload);
event req_t(ReqId, Client, Cmd, Path, Arg, Tenant);
event adm_deny(ReqId, Client, Tenant);

// Tenant resolution: the configured mapping, else tenant 0.
at1 req_t(R, C, Cmd, P, A, T) :- ns_ingress(@Me, R, C, Cmd, P, A), adm_tenant(C, T);
at2 req_t(R, C, Cmd, P, A, 0) :- ns_ingress(@Me, R, C, Cmd, P, A),
                                 notin adm_tenant(C, _);

// Reads are monotone: always forwarded (the graceful-degradation guarantee).
ar1 ns_request(@Nn, R, C, Cmd, P, A) :- req_t(R, C, Cmd, P, A, _),
                                        notin adm_write(Cmd), adm_target(Nn);

// Writes pay admission: shed when the tenant's window quota is spent or the plane is
// browned out. (ady1/ady2 are the retry-storm bug-variant strip targets.)
ady1 adm_deny(R, C, T) :- req_t(R, C, Cmd, _, _, T), adm_write(Cmd),
                          adm_used(T, N), N >= adm_quota;
ady2 adm_deny(R, C, T) :- req_t(R, C, Cmd, _, _, T), adm_write(Cmd), brownout(_);

aw1 ns_request(@Nn, R, C, Cmd, P, A) :- req_t(R, C, Cmd, P, A, _), adm_write(Cmd),
                                        notin adm_deny(R, _, _), adm_target(Nn);
// Window accounting lands @next so the per-tick admit set is not re-judged against the
// count it is itself producing.
aw2 adm_win_w(R, T)@next :- req_t(R, _, Cmd, _, _, T), adm_write(Cmd),
                            notin adm_deny(R, _, _);
au1 adm_used(T, count<R>) :- adm_win_w(R, T);
aw3 delete adm_win_w(R, T) :- adm_reset(_), adm_win_w(R, T);

// Shed path: a cheap local rejection carrying the retry-after hint.
ash1 ns_response(@C, R, false, Pay) :- adm_deny(R, C, _),
                                       Pay := ["overloaded", adm_retry_ms];

// Brownout with hysteresis: enter when the NameNode's sampled service backlog exceeds
// the bound, exit once it drains below half. bo3 is the perf_fixpoint hook — a published
// profile tick that blew its budget also trips the brownout.
bo1 brownout(1) :- svc_load(_, Ms), Ms > adm_queue_bound_ms;
bo2 delete brownout(On) :- svc_load(_, Ms), brownout(On), 2 * Ms < adm_queue_bound_ms;
bo3 brownout(1) :- perf_fixpoint(_, _, _, _, W), W > adm_fixpoint_budget_us;
)olg";

}  // namespace

const Module& NnNamespaceModule() {
  static const Module* kModule = new Module{
      "nn_namespace",
      kNamespaceModule,
      {ModuleParam::Required("rep_factor", ValueKind::kInt)},
  };
  return *kModule;
}

const Module& NnFailureDetectorModule() {
  static const Module* kModule = new Module{
      "nn_failure_detector",
      kFailureDetectorModule,
      {ModuleParam::Required("rep_factor", ValueKind::kInt),
       ModuleParam::Required("hb_timeout_ms", ValueKind::kDouble),
       ModuleParam::Required("fd_check_ms", ValueKind::kDouble)},
  };
  return *kModule;
}

const Module& NnSafeModeModule() {
  static const Module* kModule = new Module{
      "nn_safe_mode",
      kSafeModeModule,
      {ModuleParam::Required("sm_check_ms", ValueKind::kDouble),
       ModuleParam::Required("sm_frac_pct", ValueKind::kInt),
       ModuleParam::Required("sm_timeout_ms", ValueKind::kDouble),
       ModuleParam::Required("sm_grace_ms", ValueKind::kDouble)},
  };
  return *kModule;
}

const Module& NnRenameModule() {
  static const Module* kModule = new Module{"nn_rename", kRenameModule, {}};
  return *kModule;
}

const Module& NnGcModule() {
  static const Module* kModule = new Module{
      "nn_gc",
      kGcModule,
      {ModuleParam::Required("gc_check_ms", ValueKind::kDouble),
       ModuleParam::Required("gc_tombstone_ms", ValueKind::kDouble)},
  };
  return *kModule;
}

const Module& NnAdmissionModule() {
  static const Module* kModule = new Module{
      "nn_admission",
      kAdmissionModule,
      {ModuleParam::Required("adm_quota", ValueKind::kInt),
       ModuleParam::Required("adm_window_ms", ValueKind::kDouble),
       ModuleParam::Required("adm_queue_bound_ms", ValueKind::kDouble),
       ModuleParam::Required("adm_retry_ms", ValueKind::kDouble),
       ModuleParam::Required("adm_fixpoint_budget_us", ValueKind::kDouble)},
  };
  return *kModule;
}

Program BoomFsNnProgram(const NnProgramOptions& options) {
  ProgramBuilder builder("boomfs_nn");
  // Protocol inputs arrive over the network (clients, DataNodes); nothing in the program
  // produces them.
  builder.WithExternalInputs(
      {"ns_request", "dn_heartbeat", "dn_chunk_report", "dn_corrupt"});
  Status status =
      builder.Add(NnNamespaceModule(), {{"rep_factor", options.replication_factor}});
  BOOM_CHECK(status.ok()) << status.ToString();
  if (options.with_failure_detector) {
    status = builder.Add(NnFailureDetectorModule(),
                         {{"rep_factor", options.replication_factor},
                          {"hb_timeout_ms", options.heartbeat_timeout_ms},
                          {"fd_check_ms", options.failure_check_period_ms}});
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  if (options.with_safe_mode) {
    status = builder.Add(NnSafeModeModule(),
                         {{"sm_check_ms", options.safe_mode_check_period_ms},
                          {"sm_frac_pct", options.safe_mode_report_frac_pct},
                          {"sm_timeout_ms", options.safe_mode_timeout_ms},
                          {"sm_grace_ms", options.safe_mode_grace_ms}});
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  if (options.with_rename) {
    status = builder.Add(NnRenameModule());
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  if (options.with_gc) {
    status = builder.Add(NnGcModule(), {{"gc_check_ms", options.gc_check_period_ms},
                                        {"gc_tombstone_ms", options.gc_tombstone_ms}});
    BOOM_CHECK(status.ok()) << status.ToString();
  }
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

Program BoomFsGatewayProgram(const GatewayOptions& options) {
  ProgramBuilder builder("boomfs_gw");
  builder.WithExternalInputs({"ns_ingress", "svc_load"});
  Status status = builder.Add(
      NnAdmissionModule(),
      {{"adm_quota", options.tenant_quota},
       {"adm_window_ms", options.window_ms},
       {"adm_queue_bound_ms", options.queue_bound_ms},
       {"adm_retry_ms", options.retry_after_ms},
       {"adm_fixpoint_budget_us", options.fixpoint_budget_us}});
  BOOM_CHECK(status.ok()) << status.ToString();
  builder.AddFact("adm_target", Tuple{Value(options.namenode)});
  for (const auto& [client, tenant] : options.client_tenants) {
    builder.AddFact("adm_tenant", Tuple{Value(client), Value(tenant)});
  }
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

}  // namespace boom
