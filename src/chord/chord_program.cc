#include "src/chord/chord_program.h"

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace boom {

namespace {

// The ring-interval tests are spelled out inline (Overlog has no macros): K in (My, S] for
// routing, X in (A, B) open for pointer adoption — both with wraparound.
constexpr char kRingModule[] = R"olg(
table node_id(K, Id) keys(0);
table successor(K, Addr, Id) keys(0);
table predecessor(K, Addr, Id) keys(0);
timer stab_t(stab_ms);
node_id(1, my_node_id);
// The bootstrap starts as a one-node ring (its own successor); everyone else starts with
// the successor unknown until the join lookup answers.
successor(1, succ0_addr, succ0_id);

event find_succ(Addr, Key, ReplyTo, Tag, Hops);
event found_succ(Addr, Tag, Key, OwnerAddr, OwnerId, Hops);
event get_pred(Addr, From);
event pred_reply(Addr, PredAddr, PredId);
event notify_msg(Addr, From, FromId);

predecessor(1, "", -1);

/////////////////////////////////////////////////////////////////////////////
// Join: ask the bootstrap node who owns our own id; that owner is our
// successor. (Fires once, at install, via the node_id seed.)
/////////////////////////////////////////////////////////////////////////////
j1 find_succ(@B, MyId, Me, "join", 0) :- node_id(1, MyId), B := boot_addr,
                                         Me := f_me(), B != Me;
j2 successor(1, OA, OI)@next :- found_succ(@Me, "join", _, OA, OI, _);

/////////////////////////////////////////////////////////////////////////////
// Lookup routing: if the key falls in (my id, successor id] (mod the ring),
// the successor owns it; otherwise forward to the successor.
/////////////////////////////////////////////////////////////////////////////
rt1 found_succ(@R, Tag, K, SA, SI, H) :-
        find_succ(@Me, K, R, Tag, H), node_id(1, MyId), successor(1, SA, SI), SA != "",
        ((MyId < SI && K > MyId && K <= SI) ||
         (MyId >= SI && (K > MyId || K <= SI)));
rt2 find_succ(@SA, K, R, Tag, H2) :-
        find_succ(@Me, K, R, Tag, H), node_id(1, MyId), successor(1, SA, SI), SA != "",
        !((MyId < SI && K > MyId && K <= SI) ||
          (MyId >= SI && (K > MyId || K <= SI))),
        H2 := H + 1;

/////////////////////////////////////////////////////////////////////////////
// Stabilization (Chord's four classic steps): periodically ask the successor
// for its predecessor; adopt it if it sits between us; then notify the
// successor so it can adopt us as predecessor.
/////////////////////////////////////////////////////////////////////////////
st1 get_pred(@SA, Me) :- stab_t(_), successor(1, SA, _), SA != "", Me := f_me();
st2 pred_reply(@F, PA, PI) :- get_pred(@Me, F), predecessor(1, PA, PI);
st3 successor(1, PA, PI)@next :-
        pred_reply(@Me, PA, PI), PA != "", node_id(1, MyId), successor(1, SA, SI),
        PA != SA,
        ((MyId < SI && PI > MyId && PI < SI) ||
         (MyId >= SI && (PI > MyId || PI < SI)));
st4 notify_msg(@SA, Me, MyId) :- stab_t(_), successor(1, SA, _), SA != "",
                                 Me := f_me(), SA != Me, node_id(1, MyId);
nt1 predecessor(1, F, FI)@next :- notify_msg(@Me, F, FI), predecessor(1, "", _);
nt2 predecessor(1, F, FI)@next :-
        notify_msg(@Me, F, FI), predecessor(1, PA, PI), PA != "", PA != F,
        node_id(1, MyId),
        ((PI < MyId && FI > PI && FI < MyId) ||
         (PI >= MyId && (FI > PI || FI < MyId)));
)olg";

}  // namespace

int64_t ChordId(const std::string& address, int64_t id_space) {
  return static_cast<int64_t>(Fnv1a64(address) % static_cast<uint64_t>(id_space));
}

const Module& ChordRingModule() {
  static const Module* kModule = new Module{
      "chord_ring",
      kRingModule,
      {ModuleParam::Required("boot_addr", ValueKind::kString),
       ModuleParam::Required("stab_ms", ValueKind::kDouble),
       ModuleParam::Required("my_node_id", ValueKind::kInt),
       ModuleParam::Required("succ0_addr", ValueKind::kString),
       ModuleParam::Required("succ0_id", ValueKind::kInt)},
  };
  return *kModule;
}

Program ChordProgram(const std::string& address, const ChordOptions& options) {
  int64_t id = ChordId(address, options.id_space);
  bool is_bootstrap = address == options.bootstrap;
  ProgramBuilder builder("chord");
  Status status = builder.Add(
      ChordRingModule(),
      {{"boot_addr", Value(options.bootstrap)},
       {"stab_ms", options.stabilize_period_ms},
       {"my_node_id", id},
       {"succ0_addr", is_bootstrap ? Value(address) : Value(std::string())},
       {"succ0_id", is_bootstrap ? Value(id) : Value(int64_t{-1})}});
  BOOM_CHECK(status.ok()) << status.ToString();
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

void SetupChordRing(Cluster& cluster, const std::vector<std::string>& addresses,
                    const ChordOptions& options) {
  BOOM_CHECK(!addresses.empty());
  ChordOptions opts = options;
  if (opts.bootstrap.empty()) {
    opts.bootstrap = addresses[0];
  }
  for (const std::string& address : addresses) {
    Program program = ChordProgram(address, opts);
    cluster.AddOverlogNode(address, [program](Engine& engine) {
      Status status = engine.Install(program);
      BOOM_CHECK(status.ok()) << "chord install failed: " << status.ToString();
    });
  }
}

std::string SuccessorOf(Cluster& cluster, const std::string& address) {
  Engine* engine = cluster.engine(address);
  if (engine == nullptr) {
    return "";
  }
  const Tuple* row = engine->catalog().Get("successor").LookupByKey(Tuple{Value(1)});
  return row == nullptr ? "" : (*row)[1].as_string();
}

std::string LookupSync(Cluster& cluster, const std::string& via, int64_t key, int* hops_out,
                       double timeout_ms) {
  Engine* engine = cluster.engine(via);
  BOOM_CHECK(engine != nullptr);
  static int64_t tag_counter = 0;
  std::string tag = "lk" + std::to_string(++tag_counter);
  std::string owner;
  int hops = -1;
  bool done = false;
  engine->AddWatch("found_succ", [&](const std::string&, const Tuple& t, bool inserted) {
    if (inserted && t[1] == Value(tag)) {
      owner = t[3].as_string();
      hops = static_cast<int>(t[5].as_int());
      done = true;
    }
  });
  cluster.Send(via, via, "find_succ",
               Tuple{Value(via), Value(key), Value(via), Value(tag), Value(int64_t{0})});
  double deadline = cluster.now() + timeout_ms;
  while (!done && cluster.now() < deadline) {
    cluster.RunUntil(cluster.now() + 5.0);
  }
  if (hops_out != nullptr) {
    *hops_out = hops;
  }
  return done ? owner : "";
}

}  // namespace boom
