// Chord in Overlog — the original declarative-networking showpiece (P2 implemented a full
// Chord DHT in 47 rules; the BOOM papers cite it as the lineage's proof of concept). This
// module provides a compact Chord: ring membership with successor/predecessor pointers,
// join through a bootstrap node, periodic stabilization, and key lookup routed around the
// ring. It demonstrates that the engine generalizes beyond the BOOM systems.

#ifndef SRC_CHORD_CHORD_PROGRAM_H_
#define SRC_CHORD_CHORD_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/overlog/ast.h"
#include "src/overlog/module.h"
#include "src/sim/cluster.h"

namespace boom {

struct ChordOptions {
  std::string bootstrap;        // address of the first ring member
  double stabilize_period_ms = 300;
  int64_t id_space = 1 << 16;   // ring ids are hash(addr) % id_space
};

// Ring id of a node address.
int64_t ChordId(const std::string& address, int64_t id_space = 1 << 16);

// The ring-maintenance module (typed parameters: boot_addr, stab_ms, my_node_id,
// succ0_addr, succ0_id), for composition on a caller-owned ProgramBuilder.
const Module& ChordRingModule();

// The per-node Overlog program (module + per-node parameter bindings), analyzed.
Program ChordProgram(const std::string& address, const ChordOptions& options);

// Creates `addresses.size()` Overlog nodes running Chord (addresses[0] is bootstrap).
void SetupChordRing(Cluster& cluster, const std::vector<std::string>& addresses,
                    const ChordOptions& options = {});

// Reads a node's current successor pointer ("" while joining).
std::string SuccessorOf(Cluster& cluster, const std::string& address);

// Issues a lookup for `key` at `via` and runs the cluster until the answer arrives.
// Returns the owner address (empty on timeout) and stores the hop count.
std::string LookupSync(Cluster& cluster, const std::string& via, int64_t key,
                       int* hops_out = nullptr, double timeout_ms = 10000);

}  // namespace boom

#endif  // SRC_CHORD_CHORD_PROGRAM_H_
