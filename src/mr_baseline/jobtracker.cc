#include "src/mr_baseline/jobtracker.h"

#include <algorithm>
#include <limits>

#include "src/base/logging.h"
#include "src/boommr/mr_protocol.h"

namespace boom {

void HadoopJobTracker::OnStart(Cluster& cluster) {
  ++start_epoch_;
  ArmTrackerCheck(cluster);
}

void HadoopJobTracker::ArmTrackerCheck(Cluster& cluster) {
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.tracker_check_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    CheckTrackerFailures(cluster);
    ArmTrackerCheck(cluster);
  });
}

void HadoopJobTracker::CheckTrackerFailures(Cluster& cluster) {
  std::vector<std::string> dead;
  for (const auto& [tracker, last_hb] : tracker_last_hb_) {
    if (cluster.now() - last_hb > options_.tracker_timeout_ms) {
      dead.push_back(tracker);
    }
  }
  for (const std::string& tracker : dead) {
    tracker_last_hb_.erase(tracker);
    // Fail the tracker's running attempts; non-speculative ones requeue their task.
    for (auto& [id, attempt] : attempts_) {
      if (!attempt.running || attempt.tracker != tracker) {
        continue;
      }
      attempt.running = false;
      attempt.end_ms = -1;
      if (attempt.speculative) {
        --speculative_running_;
        continue;
      }
      auto job_it = jobs_.find(attempt.job);
      if (job_it == jobs_.end()) {
        continue;
      }
      auto& tasks = attempt.is_map ? job_it->second.map_tasks : job_it->second.reduce_tasks;
      auto task_it = tasks.find(attempt.task);
      if (task_it != tasks.end() && task_it->second.status == TaskStatus::kRunning) {
        task_it->second.status = TaskStatus::kPending;
      }
    }
  }
}

void HadoopJobTracker::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kMrSubmit) {
    // (JT, JobId, Client, NumMaps, NumReduces)
    JobState& job = jobs_[msg.tuple[1].as_int()];
    job.client = msg.tuple[2].as_string();
    job.submit_ms = cluster.now();
    job.num_maps = static_cast<int>(msg.tuple[3].as_int());
    job.num_reduces = static_cast<int>(msg.tuple[4].as_int());
    CheckJobDone(cluster, msg.tuple[1].as_int());  // zero-task jobs complete immediately
    return;
  }
  if (msg.table == kMrTask) {
    // (JT, JobId, TaskId, Type)
    JobState& job = jobs_[msg.tuple[1].as_int()];
    int64_t task = msg.tuple[2].as_int();
    if (msg.tuple[3].as_string() == kTaskMap) {
      job.map_tasks[task];
    } else {
      job.reduce_tasks[task];
    }
    return;
  }
  if (msg.table == kTtHb) {
    HandleHeartbeat(msg, cluster);
    return;
  }
  if (msg.table == kTtProgress) {
    // (JT, TT, JobId, TaskId, AttemptId, Progress)
    auto it = attempts_.find(msg.tuple[4].as_int());
    if (it != attempts_.end() && it->second.running) {
      it->second.progress = msg.tuple[5].as_double();
    }
    return;
  }
  if (msg.table == kTtDone) {
    // (JT, TT, JobId, TaskId, AttemptId, Type)
    int64_t job_id = msg.tuple[2].as_int();
    int64_t task_id = msg.tuple[3].as_int();
    int64_t attempt_id = msg.tuple[4].as_int();
    bool is_map = msg.tuple[5].as_string() == kTaskMap;
    auto attempt_it = attempts_.find(attempt_id);
    if (attempt_it != attempts_.end() && attempt_it->second.running) {
      attempt_it->second.running = false;
      attempt_it->second.end_ms = cluster.now();
      if (attempt_it->second.speculative) {
        --speculative_running_;
      }
    }
    auto job_it = jobs_.find(job_id);
    if (job_it == jobs_.end()) {
      return;
    }
    JobState& job = job_it->second;
    auto& tasks = is_map ? job.map_tasks : job.reduce_tasks;
    auto task_it = tasks.find(task_id);
    if (task_it == tasks.end() || task_it->second.status == TaskStatus::kDone) {
      return;
    }
    task_it->second.status = TaskStatus::kDone;
    (is_map ? job.maps_done : job.reduces_done)++;
    CheckJobDone(cluster, job_id);
    return;
  }
  BOOM_LOG(Warning) << "HadoopJobTracker: unknown message " << msg.table;
}

bool HadoopJobTracker::PickFifo(bool maps, int64_t* job_out, int64_t* task_out) {
  // Oldest running job first (scan in submit order).
  std::vector<std::pair<double, int64_t>> order;
  for (const auto& [id, job] : jobs_) {
    if (!job.done) {
      order.emplace_back(job.submit_ms, id);
    }
  }
  std::sort(order.begin(), order.end());
  for (const auto& [submit, id] : order) {
    JobState& job = jobs_[id];
    if (!maps && job.maps_done < job.num_maps) {
      continue;  // reduce barrier: all maps must finish first
    }
    auto& tasks = maps ? job.map_tasks : job.reduce_tasks;
    for (auto& [task_id, state] : tasks) {
      if (state.status == TaskStatus::kPending) {
        *job_out = id;
        *task_out = task_id;
        return true;
      }
    }
  }
  return false;
}

bool HadoopJobTracker::PickLate(bool maps, double now, int64_t* job_out, int64_t* task_out) {
  if (options_.policy != MrPolicy::kLate ||
      speculative_running_ >= options_.speculative_cap) {
    return false;
  }
  // Average progress rate across running attempts.
  // Average rate over running *and* finished attempts: with only stragglers left running,
  // comparing against the fleet's historical rate is what identifies them as slow.
  double rate_sum = 0;
  int rate_n = 0;
  for (const auto& [id, attempt] : attempts_) {
    if (attempt.running && attempt.progress > 0) {
      rate_sum += attempt.progress / (now - attempt.start_ms + 1.0);
      ++rate_n;
    } else if (!attempt.running && attempt.end_ms >= 0) {
      rate_sum += 1.0 / (attempt.end_ms - attempt.start_ms + 1.0);
      ++rate_n;
    }
  }
  if (rate_n == 0) {
    return false;
  }
  double avg_rate = rate_sum / rate_n;

  double best_time_left = -1;
  for (const auto& [id, attempt] : attempts_) {
    if (!attempt.running || attempt.speculative || attempt.is_map != maps ||
        attempt.progress <= 0 || attempt.progress >= 1.0) {
      continue;
    }
    JobState& job = jobs_[attempt.job];
    auto& tasks = maps ? job.map_tasks : job.reduce_tasks;
    auto task_it = tasks.find(attempt.task);
    if (task_it == tasks.end() || task_it->second.status != TaskStatus::kRunning ||
        task_it->second.speculated) {
      continue;
    }
    double rate = attempt.progress / (now - attempt.start_ms + 1.0);
    if (rate >= avg_rate * options_.slow_task_fraction) {
      continue;  // not slow enough to speculate
    }
    double time_left = (1.0 - attempt.progress) / (rate + 1e-6);
    if (time_left > best_time_left) {
      best_time_left = time_left;
      *job_out = attempt.job;
      *task_out = attempt.task;
    }
  }
  return best_time_left >= 0;
}

void HadoopJobTracker::Launch(Cluster& cluster, const std::string& tracker, int64_t job_id,
                              int64_t task_id, bool is_map, bool speculative) {
  JobState& job = jobs_[job_id];
  auto& tasks = is_map ? job.map_tasks : job.reduce_tasks;
  TaskState& task = tasks[task_id];
  if (speculative) {
    task.speculated = true;
    ++speculative_running_;
  } else {
    task.status = TaskStatus::kRunning;
  }
  int64_t attempt_id = next_attempt_++;
  attempts_[attempt_id] =
      AttemptState{job_id, task_id, tracker, is_map, speculative, cluster.now()};
  cluster.Send(address(), tracker, kAssign,
               Tuple{Value(tracker), Value(job_id), Value(task_id), Value(attempt_id),
                     Value(is_map ? kTaskMap : kTaskReduce), Value(speculative)});
}

void HadoopJobTracker::HandleHeartbeat(const Message& msg, Cluster& cluster) {
  // (JT, TT, FreeMap, FreeReduce)
  const std::string& tracker = msg.tuple[1].as_string();
  tracker_last_hb_[tracker] = cluster.now();
  bool free_map = msg.tuple[2].as_int() > 0;
  bool free_reduce = msg.tuple[3].as_int() > 0;
  double now = cluster.now();

  for (bool maps : {true, false}) {
    if ((maps && !free_map) || (!maps && !free_reduce)) {
      continue;
    }
    int64_t job, task;
    if (PickFifo(maps, &job, &task)) {
      Launch(cluster, tracker, job, task, maps, /*speculative=*/false);
    } else if (PickLate(maps, now, &job, &task)) {
      Launch(cluster, tracker, job, task, maps, /*speculative=*/true);
    }
  }
}

void HadoopJobTracker::CheckJobDone(Cluster& cluster, int64_t job_id) {
  JobState& job = jobs_[job_id];
  if (job.done || job.maps_done < job.num_maps || job.reduces_done < job.num_reduces) {
    return;
  }
  job.done = true;
  cluster.Send(address(), job.client, kMrJobDone,
               Tuple{Value(job.client), Value(job_id), Value(cluster.now())});
}

}  // namespace boom
