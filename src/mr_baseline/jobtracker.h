// HadoopJobTracker: the imperative comparator for BOOM-MR. Same protocol, same FIFO and
// LATE policies, written as conventional C++ state machines — the "Hadoop" side of the
// paper's MapReduce experiments.

#ifndef SRC_MR_BASELINE_JOBTRACKER_H_
#define SRC_MR_BASELINE_JOBTRACKER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/boommr/jt_program.h"
#include "src/sim/cluster.h"

namespace boom {

struct HadoopJtOptions {
  MrPolicy policy = MrPolicy::kFifo;
  int speculative_cap = 10;
  double slow_task_fraction = 0.5;
  double tracker_check_period_ms = 1000;
  double tracker_timeout_ms = 3000;
};

class HadoopJobTracker : public Actor {
 public:
  HadoopJobTracker(std::string address, HadoopJtOptions options)
      : Actor(std::move(address)), options_(std::move(options)) {}

  void OnStart(Cluster& cluster) override;
  void OnMessage(const Message& msg, Cluster& cluster) override;

 private:
  enum class TaskStatus { kPending, kRunning, kDone };
  struct TaskState {
    TaskStatus status = TaskStatus::kPending;
    bool speculated = false;
  };
  struct AttemptState {
    int64_t job;
    int64_t task;
    std::string tracker;
    bool is_map;
    bool speculative;
    double start_ms;
    double progress = 0;
    double end_ms = -1;
    bool running = true;
  };
  struct JobState {
    std::string client;
    double submit_ms;
    int num_maps;
    int num_reduces;
    int maps_done = 0;
    int reduces_done = 0;
    bool done = false;
    std::map<int64_t, TaskState> map_tasks;
    std::map<int64_t, TaskState> reduce_tasks;
  };

  void HandleHeartbeat(const Message& msg, Cluster& cluster);
  // FIFO pick: pending task of the oldest running job. Returns false when none.
  bool PickFifo(bool maps, int64_t* job_out, int64_t* task_out);
  // LATE pick: slow running task with the longest estimated time to end.
  bool PickLate(bool maps, double now, int64_t* job_out, int64_t* task_out);
  void Launch(Cluster& cluster, const std::string& tracker, int64_t job, int64_t task,
              bool is_map, bool speculative);
  void CheckJobDone(Cluster& cluster, int64_t job);
  void ArmTrackerCheck(Cluster& cluster);
  void CheckTrackerFailures(Cluster& cluster);

  HadoopJtOptions options_;
  std::map<int64_t, JobState> jobs_;           // job id -> state (FIFO order by submit time)
  std::map<int64_t, AttemptState> attempts_;   // attempt id -> state
  std::map<std::string, double> tracker_last_hb_;
  int64_t next_attempt_ = 1;
  int speculative_running_ = 0;
  uint64_t start_epoch_ = 0;
};

}  // namespace boom

#endif  // SRC_MR_BASELINE_JOBTRACKER_H_
