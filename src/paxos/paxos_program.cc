#include "src/paxos/paxos_program.h"

#include "src/base/logging.h"

namespace boom {

namespace {

constexpr char kCoreModule[] = R"olg(
/////////////////////////////////////////////////////////////////////////////
// Membership and constants (facts appended per replica by PaxosProgram).
/////////////////////////////////////////////////////////////////////////////
table paxos_peer(Peer) keys(0);
table quorum(K, Q) keys(0);

/////////////////////////////////////////////////////////////////////////////
// Timers.
/////////////////////////////////////////////////////////////////////////////
timer px_ping_t(ping_ms);
timer px_tick(tick_ms);
timer px_sync_t(sync_ms);

/////////////////////////////////////////////////////////////////////////////
// Leader election: lowest-addressed live replica. Liveness from pings; the
// event-aggregate -> @next-table pattern keeps `leader` stable between timer
// ticks.
/////////////////////////////////////////////////////////////////////////////
event px_ping(Addr, From);
table peer_alive(Peer, LastSeen) keys(0);
event live_peer(Peer);
event leader_now(K, Addr);
table leader(K, Addr) keys(0);

el1 px_ping(@P, Me) :- px_ping_t(_), paxos_peer(P), Me := f_me();
el2 peer_alive(F, T) :- px_ping(_, F), T := f_now();
el3 live_peer(P) :- px_ping_t(_), peer_alive(P, T), f_now() - T < lead_timeout_ms;
el4 live_peer(Me) :- px_ping_t(_), Me := f_me();
el5 leader_now(1, min<P>) :- live_peer(P);
el6 leader(1, L)@next :- leader_now(1, L);

/////////////////////////////////////////////////////////////////////////////
// Proposer state.
/////////////////////////////////////////////////////////////////////////////
table my_ballot(K, Bal) keys(0);
table phase1_done(K, Bal) keys(0);
table next_slot(K, S) keys(0);
table request_q(ReqKey, Cmd) keys(0);   // dedup memory: every command ever seen
table pending_req(ReqKey, Cmd) keys(0); // work queue: not yet assigned to a slot
table proposal(Slot, Bal, Cmd) keys(0, 1);

my_ballot(1, my_idx);
phase1_done(1, -1);
next_slot(1, 0);

/////////////////////////////////////////////////////////////////////////////
// Client commands enter through px_request; each gets a queue key.
/////////////////////////////////////////////////////////////////////////////
// The queue key is a hash of the command, NOT f_unique_id(): replicas replaying the log must
// keep their id counters aligned, and hashing also dedupes client retries of the same
// command.
event px_request(Addr, Cmd);
q1 request_q(R, C)@next :- px_request(@Me, C), R := hash(to_string(C));
q2 pending_req(R, C)@next :- px_request(@Me, C), R := hash(to_string(C)),
                             notin request_q(R, _);

/////////////////////////////////////////////////////////////////////////////
// Phase 1 (once per ballot): the leader prepares until a quorum promises.
/////////////////////////////////////////////////////////////////////////////
event prepare(Addr, From, Bal);
event promise(Addr, From, Bal);
event promise_acc(Addr, From, Bal, Slot, AccBal, AccCmd);
event px_nack(Addr, From, PromisedBal);
table promise_log(Bal, From) keys(0, 1);
table promise_acc_log(Bal, From, Slot, AccBal, AccCmd) keys(0, 1, 2);
table promise_cnt(Bal, N) keys(0);

p1a prepare(@P, Me, B) :- px_tick(_), leader(1, L), Me := f_me(), L == Me,
                          my_ballot(1, B), phase1_done(1, DB), DB != B,
                          paxos_peer(P);
p1b promise_log(B, F) :- promise(_, F, B);
p1c promise_acc_log(B, F, S, AB, AC) :- promise_acc(_, F, B, S, AB, AC);
p1d promise_cnt(B, count<F>) :- promise_log(B, F);
p1e phase1_done(1, B)@next :- promise_cnt(B, N), quorum(1, Q), N >= Q, my_ballot(1, B);

// Ballot bump on rejection: next round that still encodes our index.
p1f my_ballot(1, NB)@next :- px_nack(_, _, PB), my_ballot(1, B), PB >= B,
                             NB := (PB / n_peers + 1) * n_peers + my_idx;

/////////////////////////////////////////////////////////////////////////////
// New-leader recovery: re-propose the highest-ballot accepted value of every
// slot reported during phase 1, and move next_slot past everything seen.
/////////////////////////////////////////////////////////////////////////////
table recover_hi(Slot, MaxAB) keys(0);
table max_seen_slot(K, S) keys(0);
event phase1_won(Bal);

// quorum_promised fires in the same tick that phase1_done is scheduled, so the recovery
// proposals and the next_slot bump land together with phase1_done — picks can never race a
// recovered slot.
event quorum_promised(Bal);
table decided_cmd(Cmd) keys(0);
// Forward declarations (defined with the phase-2 rules below; identical re-declaration is a
// no-op).
event decide(Addr, Slot, Cmd);
table decided(Slot, Cmd) keys(0);
r0 quorum_promised(B) :- promise_cnt(B, N), quorum(1, Q), N >= Q, my_ballot(1, B);
r1 recover_hi(S, max<AB>) :- promise_acc_log(B, _, S, AB, _), my_ballot(1, B);
r2 phase1_won(B) :- phase1_done(1, B), my_ballot(1, B);
r3 proposal(S, B, C)@next :- quorum_promised(B), recover_hi(S, AB),
                             promise_acc_log(B, _, S, AB, C), notin decided(S, _);
r4 max_seen_slot(1, max<S>) :- promise_acc_log(_, _, S, _, _);
r5 next_slot(1, S + 1)@next :- quorum_promised(_), max_seen_slot(1, S), next_slot(1, S0),
                               S >= S0;
r7 decided_cmd(C) :- decided(_, C);
// A new ballot orphans slot assignments whose accepts were rejected under the old ballot:
// re-queue everything not yet decided so the new leader re-picks it into fresh slots.
// (The phase-1 recovery above re-proposes anything a quorum may have accepted; commands in
// both sets can land in two slots — at-least-once, deduplicated by the application layer.)
r6 pending_req(R, C)@next :- phase1_won(_), request_q(R, C), notin decided_cmd(C);

/////////////////////////////////////////////////////////////////////////////
// Slot assignment: the leader drains one queued command per paxos tick into
// the next slot (declarative serialization of the log).
/////////////////////////////////////////////////////////////////////////////
event best_req(K, R);
event pick(ReqKey, Cmd, Slot, Bal);

s1 best_req(1, min<R>) :- px_tick(_), leader(1, L), L == f_me(),
                          my_ballot(1, B), phase1_done(1, B),
                          pending_req(R, _);
s2 pick(R, C, S, B) :- best_req(1, R), pending_req(R, C), next_slot(1, S), my_ballot(1, B);
s3 delete pending_req(R, C) :- pick(R, _, _, _), pending_req(R, C);
s4 next_slot(1, S + 1)@next :- pick(_, _, S, _);
s5 proposal(S, B, C)@next :- pick(_, C, S, B);

/////////////////////////////////////////////////////////////////////////////
// Phase 2: send accepts; acceptors ack iff the ballot is current; a quorum
// of acks decides the slot, and the decision is broadcast to all replicas.
/////////////////////////////////////////////////////////////////////////////
event accept_req(Addr, From, Slot, Bal, Cmd);
event accept_ack(Addr, From, Slot, Bal);
table accept_log(Slot, Bal, From) keys(0, 1, 2);
table accept_cnt(Slot, Bal, N) keys(0, 1);
event decide(Addr, Slot, Cmd);
table decided(Slot, Cmd) keys(0);

p2a accept_req(@P, Me, S, B, C) :- proposal(S, B, C), phase1_done(1, B),
                                   paxos_peer(P), Me := f_me();
p2b accept_log(S, B, F) :- accept_ack(_, F, S, B);
p2c accept_cnt(S, B, count<F>) :- accept_log(S, B, F);
p2d decide(@P, S, C) :- accept_cnt(S, B, N), quorum(1, Q), N >= Q,
                        proposal(S, B, C), paxos_peer(P);
p2e decided(S, C) :- decide(_, S, C);

/////////////////////////////////////////////////////////////////////////////
// Acceptor: single global promised ballot; per-slot accepted values.
/////////////////////////////////////////////////////////////////////////////
table promised(K, Bal) keys(0);
table accepted(Slot, Bal, Cmd) keys(0);
promised(1, -1);

// SAFETY-CRITICAL ORDER: the accepted-value stream (a1) must be *sent before* the promise
// (a2). Links are FIFO, and rules in one stratum emit in program order, so the proposer is
// guaranteed to have every accepted entry by the time the promise completes its quorum —
// otherwise it could win phase 1 without learning a possibly-chosen value and overwrite a
// decided slot.
a1 promise_acc(@F, Me, B, S, AB, AC) :- prepare(@Me, F, B), promised(1, PB), B >= PB,
                                        accepted(S, AB, AC);
a2 promise(@F, Me, B) :- prepare(@Me, F, B), promised(1, PB), B >= PB;
a3 promised(1, B)@next :- prepare(_, _, B), promised(1, PB), B > PB;
a4 px_nack(@F, Me, PB) :- prepare(@Me, F, B), promised(1, PB), B < PB;
a5 accepted(S, B, C)@next :- accept_req(_, _, S, B, C), promised(1, PB), B >= PB;
a6 accept_ack(@F, Me, S, B) :- accept_req(@Me, F, S, B, _), promised(1, PB), B >= PB;
a7 promised(1, B)@next :- accept_req(_, _, S, B, _), promised(1, PB), B > PB;
a8 px_nack(@F, Me, PB) :- accept_req(@Me, F, _, B, _), promised(1, PB), B < PB;

/////////////////////////////////////////////////////////////////////////////
// Learner: apply decided commands in strict slot order.
/////////////////////////////////////////////////////////////////////////////
table applied_upto(K, S) keys(0);
event apply_cmd(Slot, Cmd);
applied_upto(1, -1);

// Bind S by arithmetic *before* the decided atom: both semi-naive variants then reach
// decided through its primary-key index instead of scanning the whole log.
l1 apply_cmd(S, C) :- applied_upto(1, S0), S := S0 + 1, decided(S, C);
l2 applied_upto(1, S)@next :- apply_cmd(S, _);

/////////////////////////////////////////////////////////////////////////////
// Learner anti-entropy. Decide messages are broadcast once, at decision time:
// a replica that was down or partitioned misses them, and with no client
// traffic nothing triggers phase-1 recovery — it can rejoin, win the election
// back (lowest live address), and serve a stale state machine forever. Each
// replica periodically advertises its applied watermark; any peer re-sends the
// decided slots just above it (a bounded window per round, so a laggard
// streams back instead of being flooded).
/////////////////////////////////////////////////////////////////////////////
event px_sync_req(Addr, From, Upto);

sy1 px_sync_req(@P, Me, S0) :- px_sync_t(_), applied_upto(1, S0), paxos_peer(P),
                               Me := f_me(), P != Me;
sy2 decide(@F, S, C) :- px_sync_req(@Me, F, S0), Hi := S0 + 64, decided(S, C),
                        S > S0, S <= Hi;
)olg";

}  // namespace

const Module& PaxosCoreModule() {
  static const Module* kModule = new Module{
      "paxos_core",
      kCoreModule,
      {ModuleParam::Required("ping_ms", ValueKind::kDouble),
       ModuleParam::Required("tick_ms", ValueKind::kDouble),
       ModuleParam::Required("sync_ms", ValueKind::kDouble),
       ModuleParam::Required("lead_timeout_ms", ValueKind::kDouble),
       ModuleParam::Required("my_idx", ValueKind::kInt),
       ModuleParam::Required("n_peers", ValueKind::kInt)},
  };
  return *kModule;
}

Program PaxosProgram(const PaxosProgramOptions& options) {
  BOOM_CHECK(!options.peers.empty());
  BOOM_CHECK(options.my_index >= 0 &&
             static_cast<size_t>(options.my_index) < options.peers.size());
  ProgramBuilder builder("paxos");
  // px_request arrives from clients (or the HA bridge); apply_cmd is consumed by the
  // replicated application from C++ (or by a bridge program's rules).
  builder.WithExternalInputs({"px_request"});
  builder.analyzer_options().external_outputs.insert("apply_cmd");
  Status status =
      builder.Add(PaxosCoreModule(),
                  {{"ping_ms", options.ping_period_ms},
                   {"tick_ms", options.tick_period_ms},
                   {"sync_ms", options.sync_period_ms},
                   {"lead_timeout_ms", options.lead_timeout_ms},
                   {"my_idx", options.my_index},
                   {"n_peers", static_cast<int>(options.peers.size())}});
  BOOM_CHECK(status.ok()) << status.ToString();
  for (const std::string& peer : options.peers) {
    builder.AddFact("paxos_peer", Tuple({Value(peer)}));
  }
  int64_t quorum = static_cast<int64_t>(options.peers.size()) / 2 + 1;
  builder.AddFact("quorum", Tuple({Value(1), Value(quorum)}));
  Result<Program> program = builder.Build();
  BOOM_CHECK(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

}  // namespace boom
