// Multi-Paxos as an Overlog program — the paper's availability revision (F2): BOOM-FS
// NameNode state updates become a Paxos-replicated log of namespace commands, and the whole
// consensus protocol is a page of rules.
//
// Design (global-ballot multi-Paxos):
//   - Leader election: replicas ping each other on a timer; the lowest-addressed live
//     replica is leader (min<> aggregate over live peers).
//   - Phase 1 runs once per (leader, ballot) across all log slots; promises stream back the
//     acceptor's accepted entries so a new leader can re-propose unfinished commands.
//   - Client commands queue in `request_q`; the leader drains one per paxos tick into the
//     next log slot (this serializes slot assignment declaratively).
//   - Phase 2 per slot; a majority of accept acks decides the slot; `decide` is broadcast
//     and each replica applies decided commands in strict slot order (`apply_cmd`).
//
// Ballot uniqueness: ballot = round * num_peers + replica_index.
//
// The protocol is one module (PaxosCoreModule) with typed parameters (ping_ms, tick_ms,
// lead_timeout_ms, my_idx, n_peers); membership facts (paxos_peer, quorum) are appended by
// PaxosProgram via ProgramBuilder::AddFact.

#ifndef SRC_PAXOS_PAXOS_PROGRAM_H_
#define SRC_PAXOS_PAXOS_PROGRAM_H_

#include <string>
#include <vector>

#include "src/overlog/ast.h"
#include "src/overlog/module.h"

namespace boom {

struct PaxosProgramOptions {
  std::vector<std::string> peers;  // all replica addresses, including this node
  int my_index = 0;                // this node's position in `peers`
  double ping_period_ms = 200;     // leader-election heartbeat
  double lead_timeout_ms = 1000;   // peer considered dead after this silence
  double tick_period_ms = 10;      // proposer drain rate (one command per tick)
  double sync_period_ms = 200;     // learner anti-entropy: applied-watermark advert period
};

// The consensus protocol module, for composition on a caller-owned ProgramBuilder.
const Module& PaxosCoreModule();

// Composes the Paxos program for one replica (protocol module + membership facts) and runs
// the analyzer. Aborts on error — the module is compiled in, so failure is a code bug.
Program PaxosProgram(const PaxosProgramOptions& options);

}  // namespace boom

#endif  // SRC_PAXOS_PAXOS_PROGRAM_H_
