// Multi-Paxos as an Overlog program — the paper's availability revision (F2): BOOM-FS
// NameNode state updates become a Paxos-replicated log of namespace commands, and the whole
// consensus protocol is a page of rules.
//
// Design (global-ballot multi-Paxos):
//   - Leader election: replicas ping each other on a timer; the lowest-addressed live
//     replica is leader (min<> aggregate over live peers).
//   - Phase 1 runs once per (leader, ballot) across all log slots; promises stream back the
//     acceptor's accepted entries so a new leader can re-propose unfinished commands.
//   - Client commands queue in `request_q`; the leader drains one per paxos tick into the
//     next log slot (this serializes slot assignment declaratively).
//   - Phase 2 per slot; a majority of accept acks decides the slot; `decide` is broadcast
//     and each replica applies decided commands in strict slot order (`apply_cmd`).
//
// Ballot uniqueness: ballot = round * num_peers + replica_index.

#ifndef SRC_PAXOS_PAXOS_PROGRAM_H_
#define SRC_PAXOS_PAXOS_PROGRAM_H_

#include <string>
#include <vector>

namespace boom {

struct PaxosProgramOptions {
  std::vector<std::string> peers;  // all replica addresses, including this node
  int my_index = 0;                // this node's position in `peers`
  double ping_period_ms = 200;     // leader-election heartbeat
  double lead_timeout_ms = 1000;   // peer considered dead after this silence
  double tick_period_ms = 10;      // proposer drain rate (one command per tick)
};

// Returns the Paxos Overlog program text for one replica.
std::string PaxosProgram(const PaxosProgramOptions& options);

}  // namespace boom

#endif  // SRC_PAXOS_PAXOS_PROGRAM_H_
