#include "src/overlog/catalog.h"

#include <algorithm>

#include "src/base/logging.h"

namespace boom {

Status Catalog::Declare(const TableDef& def) {
  auto it = tables_.find(def.name);
  if (it != tables_.end()) {
    const TableDef& existing = it->second->def();
    if (existing.arity() != def.arity() || existing.key_columns != def.key_columns ||
        existing.kind != def.kind || existing.ttl_ms != def.ttl_ms) {
      return AlreadyExists("conflicting redefinition of table " + def.name);
    }
    return Status::Ok();
  }
  auto inserted = tables_.emplace(def.name, std::make_unique<Table>(def));
  Table* table = inserted.first->second.get();
  auto by_name = [](const Table* a, const Table* b) { return a->name() < b->name(); };
  if (def.ttl_ms > 0) {
    ttl_tables_.insert(
        std::upper_bound(ttl_tables_.begin(), ttl_tables_.end(), table, by_name), table);
  }
  if (def.kind == TableKind::kEvent) {
    event_tables_.insert(
        std::upper_bound(event_tables_.begin(), event_tables_.end(), table, by_name), table);
  }
  return Status::Ok();
}

Table* Catalog::Find(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table& Catalog::Get(const std::string& name) {
  Table* t = Find(name);
  BOOM_CHECK(t != nullptr) << "unknown table " << name;
  return *t;
}

const Table& Catalog::Get(const std::string& name) const {
  const Table* t = Find(name);
  BOOM_CHECK(t != nullptr) << "unknown table " << name;
  return *t;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void Catalog::ClearEvents() {
  for (Table* table : event_tables_) {
    table->Clear();
  }
}

}  // namespace boom
