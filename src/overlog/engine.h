// Engine: one node's Overlog runtime.
//
// Follows JOL/P2 timestep semantics. External inputs (network tuples, client requests, timer
// firings) queue in an inbox. Tick(now) then:
//   0. expires soft-state (ttl) rows that were not refreshed,
//   1. fires due timers (as events),
//   2. applies the inbox (including @next derivations deferred from the previous step),
//   3. runs each stratum to a semi-naive fixpoint (aggregates maintained incrementally where
//      eligible, otherwise recomputed at stratum entry when their inputs changed),
//   4. applies deletions derived by `delete` rules,
//   5. clears event tables and returns tuples destined for other nodes.
//
// Multiple programs can be installed on one engine (e.g. Paxos + BOOM-FS on a NameNode
// replica); rules are recompiled and stratified over the union.

#ifndef SRC_OVERLOG_ENGINE_H_
#define SRC_OVERLOG_ENGINE_H_

#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/thread_pool.h"
#include "src/overlog/analyzer.h"
#include "src/overlog/builtins.h"
#include "src/overlog/catalog.h"
#include "src/overlog/eval.h"
#include "src/overlog/parser.h"
#include "src/overlog/planner.h"

namespace boom {

struct EngineOptions {
  std::string address = "local";
  uint64_t seed = 1;
  // Safety valve: a tick aborts (with an error) after this many fixpoint rounds.
  size_t max_rounds_per_tick = 100000;
  // f_unique_id() salt; defaults to a hash of the address. Replicated state machines that
  // replay an identical command log set the same salt on every replica so minted ids agree.
  std::optional<uint64_t> id_salt;
  // Ablation switches (benchmarks only): fall back to full recomputation strategies.
  bool disable_incremental_aggregates = false;
  bool disable_aggregate_version_skip = false;
  // Ablation/validation switch: fixpoint rounds scan every rule in the stratum instead of
  // only those whose driver tables received deltas. Must derive identical fixpoints (see
  // engine_test DirtySchedulingMatchesExhaustive).
  bool disable_dirty_rule_scheduling = false;
  // Intra-fixpoint rule parallelism: conflict-free runs of dirty rules in a fixpoint round
  // evaluate concurrently on worker_threads-1 pool threads plus the engine thread, each
  // into a private derivation buffer; buffers are applied in program order, so fixpoint
  // results, send order, watch order, and profile counts are bit-identical to a serial run.
  // 1 = serial, today's exact code path. Engines hosted by a parallel Cluster keep this at
  // 1 — the cluster parallelizes across nodes instead of nesting pools.
  size_t worker_threads = 1;
  // Ablation switch (benchmarks only): keep the pool configured but evaluate every rule on
  // the engine thread, serially.
  bool disable_parallel_fixpoint = false;
  // Profile-guided cost-based optimizer (DESIGN.md §13). Off by default: the default path
  // compiles the classic greedy most-bound-first plans and stays byte-identical to every
  // pinned trace. When on: rule bodies are ordered by a cardinality cost model seeded from
  // live table stats, chosen probe indexes are pre-warmed after each (re)compile, identical
  // body prefixes across rules evaluate once per fixpoint round into a shared binding cache
  // (serial fixpoint only), and tables maintain cached secondary indexes incrementally
  // across replace/erase. Re-planning happens deterministically at tick boundaries when
  // observed row counts drift (see replan_* below), so runs stay byte-identical per seed.
  bool enable_optimizer = false;
  // Re-plan at a tick boundary when some table's row count and the count recorded at plan
  // time differ by more than replan_drift_factor (and the larger side has at least
  // replan_min_rows rows — tiny tables re-order for free anyway and would thrash).
  double replan_drift_factor = 4.0;
  uint64_t replan_min_rows = 64;
  // Shared-prefix evaluation materializes the canonical prefix bindings into a per-round
  // cache; that only pays off when the driver delta is large enough to amortize the copy.
  // Below this many driver rows, group members evaluate directly — the fixpoint is
  // identical either way (enforced by the `optimizer` equivalence tests), and the decision
  // reads only the round's delta snapshot, so it is deterministic per seed.
  uint64_t shared_prefix_min_delta_rows = 8;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const std::string& address() const { return options_.address; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  BuiltinRegistry& builtins() { return builtins_; }
  std::mt19937_64& rng() { return rng_; }
  double now() const { return now_ms_; }

  // Parses and installs a program. Tables declared by earlier programs are visible.
  Status InstallSource(std::string_view source, std::map<std::string, Value> consts = {});
  Status Install(Program program);
  const std::vector<Program>& programs() const { return programs_; }

  // Advisory analyzer report for each installed program (parallel to programs()). Run with
  // strict_events off: at engine level an event with no in-program producer may be fed by
  // the host, so it is only a warning here.
  const std::vector<AnalyzerReport>& analyzer_reports() const { return analyzer_reports_; }

  // Queues an external tuple (message arrival, client request). Applied on the next Tick.
  Status Enqueue(const std::string& table, Tuple tuple);
  bool HasQueuedInput() const { return !inbox_.empty(); }

  // Earliest pending timer deadline, or +inf when no timers are installed.
  double NextTimerDeadline() const;

  struct Send {
    std::string dest;
    std::string table;
    Tuple tuple;
  };
  struct TickResult {
    std::vector<Send> sends;
    std::vector<std::string> errors;
    size_t derivations = 0;
    size_t rounds = 0;
  };

  // Runs one timestep at virtual time `now_ms` (must be non-decreasing).
  TickResult Tick(double now_ms);

  // Watch callback: fired when a tuple is inserted into (or deleted from) `table` during a
  // tick, including event derivations. `inserted` is false for deletions.
  using WatchFn = std::function<void(const std::string& table, const Tuple&, bool inserted)>;
  void AddWatch(const std::string& table, WatchFn fn);

  struct Stats {
    uint64_t ticks = 0;
    uint64_t derivations = 0;
    uint64_t messages_sent = 0;
    uint64_t tuples_enqueued = 0;
    // Conflict-free rule batches dispatched to the worker pool. Always 0 when
    // worker_threads == 1 or disable_parallel_fixpoint is set; tests use it to prove the
    // parallel path actually ran (a serial-vs-serial comparison proves nothing).
    uint64_t parallel_batches = 0;
    // Cost-based optimizer (all 0 unless enable_optimizer):
    uint64_t replans = 0;              // drift-triggered deterministic re-plans
    uint64_t shared_prefix_evals = 0;  // canonical prefix evaluations (cache fills)
    uint64_t shared_prefix_hits = 0;   // member evaluations served from the cache
  };
  const Stats& stats() const { return stats_; }

  // Rule/stratum introspection (used by tests and the monitoring layer).
  const CompiledProgram& compiled() const { return compiled_; }

  // Human-readable dump of the current compiled plan: per-rule variant orderings (with cost
  // estimates under the optimizer), chosen warm indexes, and shared-prefix groups. Backs
  // `olgrun --explain`.
  std::string ExplainPlan() const;

  // --- per-rule profiling ---
  //
  // When enabled, every rule evaluation is timed and counted; per-tick fixpoint summaries
  // are kept for the most recent ticks. When disabled (the default), the eval loops pay one
  // predictable branch per rule and nothing else.

  struct RuleProfile {
    std::string program;
    std::string rule;
    uint64_t evals = 0;             // evaluation calls (delta rounds / agg recomputations)
    uint64_t tuples = 0;            // derivations produced across all ticks
    uint64_t max_tuples_per_tick = 0;
    double wall_us = 0;             // cumulative wall-clock evaluation time
  };
  struct FixpointProfile {
    uint64_t tick = 0;       // stats().ticks value for this tick (1-based)
    double now_ms = 0;       // virtual time of the tick
    uint64_t rounds = 0;     // semi-naive rounds across strata
    uint64_t derivations = 0;
    double wall_us = 0;      // wall-clock time of the whole tick
  };

  void EnableProfiling(bool on = true) { profile_ = on; }
  bool profiling() const { return profile_; }
  // Cumulative per-rule counters, keyed by "<program>:<rule>"; sorted by key.
  const std::map<std::string, RuleProfile>& rule_profiles() const { return rule_profiles_; }
  // Per-tick summaries, oldest first, bounded to the most recent kMaxFixpointProfiles.
  const std::deque<FixpointProfile>& fixpoint_profiles() const { return fixpoint_profiles_; }
  void ResetProfile();

  // Publishes the current profile into the Overlog tables
  //   perf_rule(@Program, Rule, Evals, Tuples, MaxTuplesPerTick, WallUs)  keys(0,1)
  //   perf_fixpoint(@Tick, NowMs, Rounds, Derivs, WallUs)                 keys(0)
  // declaring them on first use, so monitoring rewrites and invariants can query the
  // profile like any other relation. Publication is explicit (not automatic each tick): a
  // rule that reads perf_* must not re-trigger the profiling it observes, which an
  // every-tick feedback loop would. Rows are enqueued and land on the next Tick.
  Status PublishProfile();

  static constexpr size_t kMaxFixpointProfiles = 256;

 private:
  struct TimerState {
    std::string name;
    double period_ms;
    double next_deadline;
  };
  // Running accumulator for one aggregate position of one group (incremental aggregates).
  struct AggAccum {
    int64_t count = 0;
    bool sum_is_int = true;
    int64_t sum_i = 0;
    double sum_d = 0;
    bool has_minmax = false;
    Value min;
    Value max;

    void Fold(const Value& v);
    Value Finish(AggKind kind) const;
  };

  struct AggState {
    // group key -> last derived head tuple (local groups only).
    std::map<Tuple, Tuple> last_output;
    // last tuple sent per destination+group, to suppress duplicate sends.
    std::map<Tuple, Tuple> last_sent;
    // Sum of input-table versions at the last recomputation (skip when unchanged).
    bool has_input_version = false;
    uint64_t input_version_sum = 0;
    // Incremental path: group key -> one accumulator per aggregate head position.
    std::map<Tuple, std::vector<AggAccum>> accum;
  };

  Status Recompile();
  // Optimizer support: snapshots per-table stats (rows, per-column distinct counts, probe
  // hit ratios) for the planner's cost model. Deterministic per seed: derived only from
  // table contents and monotone counters.
  void HarvestPlannerStats(std::unordered_map<std::string, TableStats>* stats) const;
  // Returns true when some table's row count has drifted past the re-plan threshold since
  // the current plan was produced.
  bool PlanDrifted() const;
  void RecordRuleEval(const CompiledRule& rule, uint64_t tuples, double wall_us,
                      std::map<std::string, uint64_t>& tick_tuples);
  void FireWatches(const std::string& table, const Tuple& tuple, bool inserted);
  // Inserts locally; appends to tick_new_ on change; fires watches. Returns true if new.
  bool ApplyLocalInsert(const std::string& table, const Tuple& tuple);

  EngineOptions options_;
  Catalog catalog_;
  BuiltinRegistry builtins_;
  std::mt19937_64 rng_;
  EvalContext ctx_;
  Evaluator evaluator_;
  // Owned fixpoint worker pool (worker_threads > 1 only). Worker evaluators are private
  // scratch, one per batch slot, created lazily and reused across ticks.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Evaluator>> worker_evaluators_;

  std::vector<Program> programs_;
  std::vector<AnalyzerReport> analyzer_reports_;
  CompiledProgram compiled_;
  std::vector<TimerState> timers_;
  std::map<std::string, std::vector<WatchFn>> watches_;
  std::map<std::string, AggState> agg_state_;  // keyed by rule name

  std::vector<std::pair<std::string, Tuple>> inbox_;
  // Tuples newly inserted this tick. Keyed lookups only on the hot path; the per-round delta
  // snapshot in Tick copies into an ordered map, so iteration order here never leaks into
  // evaluation order (determinism).
  std::unordered_map<std::string, std::vector<Tuple>> tick_new_;

  // Optimizer: per-table row counts recorded when the current plan was produced; the
  // re-plan drift check compares live counts against these at tick entry. Table pointers
  // (stable for the catalog's lifetime) rather than names: the check runs every tick and
  // must not pay per-table map lookups.
  std::vector<std::pair<const Table*, uint64_t>> planned_rows_;

  double now_ms_ = 0;
  bool needs_seed_ = false;
  uint64_t id_counter_ = 0;
  Stats stats_;

  bool profile_ = false;
  std::map<std::string, RuleProfile> rule_profiles_;  // keyed by "<program>:<rule>"
  std::deque<FixpointProfile> fixpoint_profiles_;
};

}  // namespace boom

#endif  // SRC_OVERLOG_ENGINE_H_
