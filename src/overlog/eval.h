// Evaluator: executes compiled rule variants against the catalog, producing derivations.
//
// The Engine drives semi-naive evaluation by calling EvalFromRows with each rule variant and
// the delta tuples of that variant's driver table. Aggregate rules are recomputed in full via
// EvalAggregate. Runtime expression errors (e.g. division by zero) drop the offending binding
// and are recorded in errors() — they never abort a tick, matching P2/JOL behaviour.

#ifndef SRC_OVERLOG_EVAL_H_
#define SRC_OVERLOG_EVAL_H_

#include <string>
#include <vector>

#include "src/overlog/builtins.h"
#include "src/overlog/catalog.h"
#include "src/overlog/planner.h"

namespace boom {

struct Derivation {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  std::string table;
  Tuple tuple;
  bool remote = false;
  bool next = false;  // @next rule: apply at the following timestep
  std::string dest;   // when remote
};

// Evaluates an expression under rule bindings. Exposed for tests. Call-argument vectors for
// kCall nodes come from a depth-indexed thread-local scratch pool, so steady-state
// evaluation does not allocate per call.
Result<Value> EvalExpr(const Expr& expr, const std::vector<Value>& slots,
                       const std::unordered_map<std::string, int>& slot_of,
                       const BuiltinRegistry& builtins, const EvalContext& ctx);

class Evaluator {
 public:
  Evaluator(Catalog* catalog, const BuiltinRegistry* builtins, const EvalContext* ctx)
      : catalog_(catalog), builtins_(builtins), ctx_(ctx) {}

  // Drives `variant` from the given driver rows.
  void EvalFromRows(const CompiledRule& rule, const CompiledVariant& variant,
                    const std::vector<Tuple>& driver_rows, std::vector<Derivation>* out);

  // Drives the rule's full variant from the driver table's current contents; for driverless
  // rules the body is evaluated once.
  void EvalFull(const CompiledRule& rule, std::vector<Derivation>* out);

  // Common-subplan sharing (cost-based optimizer, serial fixpoint only): evaluates the
  // group's canonical prefix (driver + kAtom steps, canonical slot numbering) over the
  // driver delta rows, appending one canonical binding vector per satisfied prefix binding.
  // The bindings are copies, safe to cache across member evaluations within a round.
  void EvalPrefix(const SharedPrefixGroup& group, const std::vector<Tuple>& driver_rows,
                  std::vector<std::vector<Value>>* bindings);

  // Continues a member variant from cached canonical bindings: loads each binding into the
  // member rule's slots via `slot_map` (canonical slot -> member slot) and runs the
  // remaining steps [prefix_steps..). Emissions are byte-identical to EvalFromRows over the
  // same bindings.
  void EvalFromPrefixBindings(const CompiledRule& rule, const CompiledVariant& variant,
                              size_t prefix_steps, const std::vector<int>& slot_map,
                              const std::vector<std::vector<Value>>& bindings,
                              std::vector<Derivation>* out);

  // Recomputes an aggregate rule from scratch: one head tuple per group.
  void EvalAggregate(const CompiledRule& rule, std::vector<Tuple>* head_rows);

  // For incremental aggregates: evaluates the (single-atom) body over just `driver_rows`
  // and returns one (group key, agg input values) pair per satisfied binding.
  void EvalAggBindings(const CompiledRule& rule, const std::vector<Tuple>& driver_rows,
                       std::vector<std::pair<Tuple, std::vector<Value>>>* out);

  const std::vector<std::string>& errors() const { return errors_; }
  void ClearErrors() { errors_.clear(); }
  // Parallel fixpoint: folds a worker evaluator's errors into this one, respecting the
  // cap. Workers record into private evaluators during a rule batch; the engine merges in
  // program order, so the combined list is byte-identical to a serial run's.
  void MergeErrors(const Evaluator& other) {
    for (const std::string& e : other.errors_) {
      if (errors_.size() >= kMaxErrors) {
        break;
      }
      errors_.push_back(e);
    }
  }

  // Runtime errors recorded per tick are capped: a pathological program (e.g. division by
  // zero in a hot rule) should not turn every tick into an allocation storm.
  static constexpr size_t kMaxErrors = 64;

 private:
  struct AggGroup {
    std::vector<std::vector<Value>> agg_inputs;  // one vector per aggregate head arg
  };

  void RecordError(const Status& status);

  // Binds `row` against `atom` (driver position): checks constants and repeated variables,
  // writes first-binding slots. Returns false on mismatch.
  bool BindAtomRow(const CompiledAtom& atom, const Tuple& row, std::vector<Value>* slots);

  // Recursing join over variant.steps[step_idx..]; calls Emit at the end of each complete
  // binding.
  template <typename EmitFn>
  void JoinSteps(const CompiledRule& rule, const CompiledVariant& variant, size_t step_idx,
                 std::vector<Value>* slots, EmitFn&& emit);

  void EmitHead(const CompiledRule& rule, const std::vector<Value>& slots,
                std::vector<Derivation>* out);

  // Reusable per-join-depth probe buffer (JoinSteps recursion frames never share a depth,
  // so indexing by step keeps the buffers disjoint). EnsureProbeDepth is called before
  // recursion starts so the outer vector never reallocates while a frame holds a reference.
  void EnsureProbeDepth(size_t n) {
    if (probe_scratch_.size() < n) {
      probe_scratch_.resize(n);
    }
  }
  std::vector<Value>& ProbeScratch(size_t depth) {
    probe_scratch_[depth].clear();
    return probe_scratch_[depth];
  }

  Catalog* catalog_;
  const BuiltinRegistry* builtins_;
  const EvalContext* ctx_;
  std::vector<std::string> errors_;
  // Scratch buffers: allocated once, reused by every rule evaluation. The evaluator is not
  // reentrant (Eval* methods never call each other), so a single set is safe.
  std::vector<std::vector<Value>> probe_scratch_;
  std::vector<Value> slots_scratch_;
  std::vector<Value> head_scratch_;
};

}  // namespace boom

#endif  // SRC_OVERLOG_EVAL_H_
