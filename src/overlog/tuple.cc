#include "src/overlog/tuple.h"

namespace boom {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < vals_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    if (vals_[i].is_string()) {
      out += "\"" + vals_[i].as_string() + "\"";
    } else {
      out += vals_[i].ToString();
    }
  }
  out += ")";
  return out;
}

}  // namespace boom
