#include "src/overlog/tuple.h"

namespace boom {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < size(); ++i) {
    const Value& v = (*this)[i];
    if (i > 0) {
      out += ", ";
    }
    if (v.is_string()) {
      out += "\"" + v.as_string() + "\"";
    } else {
      out += v.ToString();
    }
  }
  out += ")";
  return out;
}

}  // namespace boom
