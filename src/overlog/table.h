// Table: a materialized Overlog relation with primary-key semantics and lazily built
// secondary hash indexes.
//
// Overlog tables declare a primary key (subset of columns). Inserting a tuple whose key is
// already present replaces the old row (update-in-place semantics, as in P2/JOL). Tables with
// no declared key treat every column as the key, i.e. plain set semantics.
//
// Event tables hold tuples for a single engine timestep; the Engine clears them between ticks.

#ifndef SRC_OVERLOG_TABLE_H_
#define SRC_OVERLOG_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/tuple.h"

namespace boom {

enum class TableKind {
  kTable,  // persistent across timesteps
  kEvent,  // cleared at the end of each timestep
};

struct TableDef {
  std::string name;
  std::vector<std::string> columns;  // column names (for diagnostics; arity = size)
  std::vector<size_t> key_columns;   // empty => all columns form the key
  TableKind kind = TableKind::kTable;
  // Soft state (P2-style): rows older than this expire unless refreshed by re-insertion.
  // 0 = permanent.
  double ttl_ms = 0;

  size_t arity() const { return columns.size(); }
  // Effective key: declared keys, or all columns when none declared.
  std::vector<size_t> EffectiveKey() const;
};

// Secondary index: projection of selected columns -> rows having that projection.
// TupleHash/TupleEq are transparent, so probes can use a TupleView (values + precomputed
// hash) without materializing a Tuple.
using Index = std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash, TupleEq>;

class Table {
 public:
  explicit Table(TableDef def);

  const TableDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  uint64_t version() const { return version_; }

  enum class InsertOutcome {
    kInserted,   // new key
    kReplaced,   // existing key, different row
    kUnchanged,  // identical row already present
  };

  // Inserts or replaces by primary key. Tuple arity must match the declaration. `now_ms`
  // stamps the row for TTL expiry (ignored for permanent tables).
  InsertOutcome Insert(Tuple tuple, double now_ms = 0);

  // Removes the exact tuple if present (key match with identical payload).
  bool Erase(const Tuple& tuple);
  // Removes whatever row currently holds this primary key.
  bool EraseByKey(const Tuple& key);

  // Returns the row with this primary key, or nullptr. The pointer is stable until the next
  // mutation of that key.
  const Tuple* LookupByKey(const Tuple& key) const;
  bool Contains(const Tuple& tuple) const;

  // Snapshot of all rows (copy; used where mutation during iteration is possible).
  std::vector<Tuple> Rows() const;

  // Visits all rows without copying. Callers must not mutate the table during the visit.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, row] : rows_) {
      fn(row);
    }
  }

  // Returns rows whose projection on `cols` equals `probe`, via a lazily built and cached
  // hash index. The returned pointers (and the returned vector itself) are valid until the
  // next table mutation; capture probe_generation() before use and call AssertProbeFresh()
  // to enforce that in debug builds.
  const std::vector<const Tuple*>& Probe(const std::vector<size_t>& cols, const Tuple& probe);
  // Precomputed-hash probe path: no Tuple is materialized and the hash is computed once by
  // the caller (TupleView::Of), not re-derived per hash-map operation.
  const std::vector<const Tuple*>& Probe(const std::vector<size_t>& cols,
                                         const TupleView& probe);

  // Builds (or catches up) the secondary index on `cols` now. After this — and until the
  // next table mutation — Probe(cols, ...) is write-free: the cached index is built, its
  // epoch matches, and the insert-log catch-up loop has nothing to fold in. The parallel
  // fixpoint warms every (table, probe_cols) pair a rule batch will touch on the engine
  // thread before dispatching, so worker-side probes are pure reads.
  void WarmIndex(const std::vector<size_t>& cols) { GetIndex(cols); }

  // Generation token for probe-result validity: changes on every mutation that can move or
  // drop rows out of cached indexes (insert, replace, erase, clear, TTL expiry).
  uint64_t probe_generation() const { return version_; }
  // Aborts when the table has mutated since `generation` was captured — i.e. a Probe result
  // taken at that generation is stale. Callers gate this behind debug builds.
  void AssertProbeFresh(uint64_t generation) const;

  void Clear();

  // Soft state: removes rows stamped before `cutoff_ms`, returning the expired rows.
  std::vector<Tuple> ExpireOlderThan(double cutoff_ms);

  // Extracts the primary key projection from a full row.
  Tuple KeyOf(const Tuple& tuple) const { return tuple.Project(effective_key_); }

  // Ablation switch (benchmarks only): when true, every probe rebuilds its index from
  // scratch instead of catching up from the insert log.
  static void SetDisableIndexCatchupForBenchmarks(bool disable);

  // --- optimizer support -------------------------------------------------------------

  // Optimizer mode: maintain cached secondary indexes incrementally across replace/erase
  // instead of bumping mutation_epoch_ (which forces a full O(table) rebuild on the next
  // probe of every cached index). Post-mutation bucket order differs from the rebuild
  // order, which is observable in derivation order, so this is only switched on together
  // with the cost-based optimizer (EngineOptions::enable_optimizer) — never on the default
  // byte-stable path. Clear() and ExpireOlderThan() keep full-rebuild semantics.
  void set_incremental_index_maintenance(bool on) { incremental_maintenance_ = on; }
  bool incremental_index_maintenance() const { return incremental_maintenance_; }

  // Cost-model statistic: exact count of distinct values in column `col` by full scan.
  // Order-independent (set-based), so the result is deterministic regardless of hash-map
  // iteration order — required for byte-identical re-planning per seed.
  uint64_t DistinctCount(size_t col) const;

  // Runtime counters for perf_table / the metrics registry. Atomic (relaxed) because the
  // parallel fixpoint probes warmed indexes from worker threads.
  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  uint64_t probe_hits() const { return probe_hits_.load(std::memory_order_relaxed); }
  uint64_t index_rebuilds() const {
    return index_rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  struct CachedIndex {
    bool built = false;
    uint64_t epoch = 0;     // full rebuild needed when != mutation_epoch_
    size_t log_pos = 0;     // prefix of insert_log_ already folded in
    Index index;
  };

  const Index& GetIndex(const std::vector<size_t>& cols);

  // Incremental-maintenance helper: brings every cached index fully up to date (folding the
  // insert log; dropping stale-epoch entries), then removes `row` — identified by address —
  // from each bucket keyed by its current projection. Leaves insert_log_ empty with every
  // surviving index at log_pos 0. Callers must invoke this while `row` still holds its old
  // payload, and must NOT bump mutation_epoch_ afterwards (no dangling pointers remain).
  void RemoveRowFromIndexes(const Tuple* row);
  // Appends `row` (already holding its new payload) to every cached index bucket.
  void AddRowToIndexes(const Tuple* row);

  TableDef def_;
  std::vector<size_t> effective_key_;
  bool key_is_whole_row_;
  std::unordered_map<Tuple, Tuple, TupleHash> rows_;  // key projection -> full row
  std::unordered_map<Tuple, double, TupleHash> row_time_;  // TTL tables only
  std::map<std::vector<size_t>, CachedIndex> indexes_;
  uint64_t version_ = 0;
  // Index maintenance: plain inserts append here (stable pointers into rows_), so cached
  // indexes catch up in O(delta). Replacements/erases bump mutation_epoch_, forcing a full
  // rebuild (stale pointers would otherwise dangle).
  std::vector<const Tuple*> insert_log_;
  uint64_t mutation_epoch_ = 0;
  std::vector<const Tuple*> empty_result_;
  bool incremental_maintenance_ = false;
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> probe_hits_{0};
  std::atomic<uint64_t> index_rebuilds_{0};
};

}  // namespace boom

#endif  // SRC_OVERLOG_TABLE_H_
