// Recursive-descent parser for the Overlog surface syntax.
//
// Conventions (following P2/JOL usage):
//   - Identifiers starting with an uppercase letter are variables; `_` is a wildcard.
//   - Lowercase identifiers name tables, builtin functions (calls require parens), or
//     declared constants.
//   - Declarations must precede use. Tables declared by previously installed programs can be
//     referenced by passing them in ParserOptions::known_tables, or declared in-source as
//     `extern table t(...)` / `extern event e(...)` (schema expectations for relations owned
//     elsewhere; collected into Program::externs).

#ifndef SRC_OVERLOG_PARSER_H_
#define SRC_OVERLOG_PARSER_H_

#include <map>
#include <set>
#include <string>

#include "src/base/status.h"
#include "src/overlog/ast.h"

namespace boom {

struct ParserOptions {
  // Tables declared outside this program text (e.g. by already-installed programs).
  std::set<std::string> known_tables;
  // Externally supplied named constants, usable as lowercase identifiers.
  std::map<std::string, Value> consts;
  // When nonempty, a body term of the form `name(...)` where `name` is neither a table nor
  // in this set is a parse error (catches typo'd predicates early).
  std::set<std::string> known_functions;
};

Result<Program> ParseProgram(std::string_view source, const ParserOptions& options = {});

}  // namespace boom

#endif  // SRC_OVERLOG_PARSER_H_
