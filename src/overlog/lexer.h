// Tokenizer for the Overlog surface syntax.

#ifndef SRC_OVERLOG_LEXER_H_
#define SRC_OVERLOG_LEXER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/value.h"

namespace boom {

enum class TokenKind {
  kIdent,    // file, Path, f_now (variables and names are distinguished by case in the parser)
  kInt,      // 42
  kDouble,   // 2.5
  kString,   // "abc" (escapes: \" \\ \n \t)
  kLParen,   // (
  kRParen,   // )
  kLBracket, // [
  kRBracket, // ]
  kComma,    // ,
  kSemi,     // ;
  kAt,       // @
  kTurnstile,  // :-
  kAssign,     // :=
  kEq,       // ==
  kNe,       // !=
  kLe,       // <=
  kGe,       // >=
  kLt,       // <
  kGt,       // >
  kPlus,     // +
  kMinus,    // -
  kStar,     // *
  kSlash,    // /
  kPercent,  // %
  kAnd,      // &&
  kOr,       // ||
  kBang,     // !
  kEquals,   // =
  kUnderscore,  // _
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // identifier text / raw literal
  Value literal;      // kInt/kDouble/kString payload
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

// Tokenizes the whole input. Comments: // line and /* block */.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace boom

#endif  // SRC_OVERLOG_LEXER_H_
