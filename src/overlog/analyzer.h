// Static program analysis for Overlog (the `olglint` pass).
//
// The planner already rejects programs it cannot compile, but only rule-by-rule and only at
// install time, deep inside an engine. This pass checks a whole Program — typically one
// assembled by ProgramBuilder from modules — before it ever reaches an engine, and reports
// *all* problems at once with stable diagnostic codes:
//
//   error   duplicate-rule        two rules share a name (profiling/tracing key collision)
//   error   duplicate-timer       two timers share a name (the event would fire twice)
//   error   redeclaration-conflict one relation declared twice with different schemas
//   error   undeclared-table      a rule or fact references an unknown relation
//   error   arity-mismatch        atom/head/fact width differs from the declaration
//   error   unbound-head-var      a head variable no body term binds
//   error   unsafe-negation       a negated atom over variables nothing binds
//   error   unbound-condition     a condition/assignment whose inputs are never bound
//   error   unstratifiable        negation/aggregation cycle with no @next deferral
//   error*  no-producer           an event no rule, timer, fact, or extern source feeds
//   warning unread-table          a relation that is written but never read
//   advisory wants-index          a join probes a column set no declared key covers; the
//                                 engine will build (and on churn rebuild) a secondary index
//   advisory shared-prefix        two or more rules start with the same join prefix; the
//                                 cost-based optimizer can evaluate it once and share it
//
// (* no-producer demotes to a warning when AnalyzerOptions::strict_events is false — the
// engine runs it that way, since hosts may legitimately Enqueue events from C++.)
//
// Advisories never affect ok(); they are performance hints surfaced by olglint and consumed
// by people, not machines.
//
// `extern` declarations are the escape hatch for relations owned outside the rule set: they
// carry the expected schema, satisfy undeclared-table, and are exempt from the producer and
// reader checks.

#ifndef SRC_OVERLOG_ANALYZER_H_
#define SRC_OVERLOG_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "src/overlog/ast.h"

namespace boom {

enum class DiagnosticSeverity { kError, kWarning, kAdvisory };

struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  std::string code;     // stable kebab-case id, e.g. "unbound-head-var"
  std::string message;  // human-readable detail (no location prefix)
  std::string program;  // program name the diagnostic is about
  std::string rule;     // offending rule name; empty for program-level diagnostics
  int line = 0;         // 1-based source line when known (0 otherwise)

  // "error[unbound-head-var] boomfs_nn:ac1 (line 42): ..."
  std::string ToString() const;
};

struct AnalyzerOptions {
  // Relations declared by other programs already installed on the target engine. Schemas
  // are unknown here, so only existence is assumed (arity goes unchecked).
  std::set<std::string> external_tables;
  // Events fed by the host from C++ (Enqueue/network): exempt from no-producer.
  std::set<std::string> external_inputs;
  // Relations read by the host from C++ (watches, direct catalog reads): exempt from the
  // unread-table warning.
  std::set<std::string> external_outputs;
  // When true (ProgramBuilder/olglint), an event with no producing rule, timer, fact, or
  // extern marking is an error; when false (Engine::Recompile), it is a warning.
  bool strict_events = true;
  // Emit unread-table warnings (on by default).
  bool warn_unread = true;
  // Emit performance advisories (wants-index, shared-prefix; on by default).
  bool advisories = true;
};

struct AnalyzerReport {
  std::vector<Diagnostic> diagnostics;

  bool ok() const;  // true when no diagnostic is an error
  size_t num_errors() const;
  size_t num_warnings() const;
  size_t num_advisories() const;
  // All diagnostics, one per line, errors first, then warnings, then advisories.
  std::string ToString() const;
};

AnalyzerReport AnalyzeProgram(const Program& program, const AnalyzerOptions& options = {});

}  // namespace boom

#endif  // SRC_OVERLOG_ANALYZER_H_
