// Catalog: the set of named tables owned by one Engine instance (one logical node).

#ifndef SRC_OVERLOG_CATALOG_H_
#define SRC_OVERLOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/table.h"

namespace boom {

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates a table. Re-declaring an existing table with an identical definition is a no-op;
  // a conflicting redefinition is an error.
  Status Declare(const TableDef& def);

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }

  // nullptr when not declared.
  Table* Find(const std::string& name);
  const Table* Find(const std::string& name) const;

  // Aborts if not declared; use when the planner has already validated the program.
  Table& Get(const std::string& name);
  const Table& Get(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  // Tables with a TTL, sorted by name (the order TableNames-based iteration used). Cached at
  // Declare time so the engine's per-tick expiry pass doesn't allocate every table name.
  const std::vector<Table*>& TtlTables() const { return ttl_tables_; }

  // Clears all tables of kind kEvent (end-of-timestep semantics). Uses a Declare-time cache
  // of event tables, so ticks don't scan the whole catalog.
  void ClearEvents();

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<Table*> ttl_tables_;    // sorted by name
  std::vector<Table*> event_tables_;  // sorted by name
};

}  // namespace boom

#endif  // SRC_OVERLOG_CATALOG_H_
