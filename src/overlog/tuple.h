// Tuple: an immutable row of Values with a precomputed hash.

#ifndef SRC_OVERLOG_TUPLE_H_
#define SRC_OVERLOG_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/overlog/value.h"

namespace boom {

class Tuple {
 public:
  Tuple() : hash_(EmptyHash()) {}
  explicit Tuple(std::vector<Value> vals) : vals_(std::move(vals)) { hash_ = ComputeHash(); }
  Tuple(std::initializer_list<Value> vals) : vals_(vals) { hash_ = ComputeHash(); }

  size_t size() const { return vals_.size(); }
  bool empty() const { return vals_.empty(); }
  const Value& at(size_t i) const { return vals_[i]; }
  const Value& operator[](size_t i) const { return vals_[i]; }
  const std::vector<Value>& values() const { return vals_; }

  size_t hash() const { return hash_; }

  bool operator==(const Tuple& other) const {
    if (hash_ != other.hash_ || vals_.size() != other.vals_.size()) {
      return false;
    }
    for (size_t i = 0; i < vals_.size(); ++i) {
      if (!(vals_[i] == other.vals_[i])) {
        return false;
      }
    }
    return true;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    size_t n = std::min(vals_.size(), other.vals_.size());
    for (size_t i = 0; i < n; ++i) {
      if (vals_[i] < other.vals_[i]) {
        return true;
      }
      if (other.vals_[i] < vals_[i]) {
        return false;
      }
    }
    return vals_.size() < other.vals_.size();
  }

  // Projects the given columns into a new tuple (used for keys and join probes).
  Tuple Project(const std::vector<size_t>& cols) const {
    std::vector<Value> out;
    out.reserve(cols.size());
    for (size_t c : cols) {
      out.push_back(vals_[c]);
    }
    return Tuple(std::move(out));
  }

  // "(1, "foo", 3.5)"
  std::string ToString() const;

 private:
  static size_t EmptyHash() { return 0x12345678; }
  size_t ComputeHash() const {
    size_t h = EmptyHash();
    for (const Value& v : vals_) {
      h = HashCombine(h, v.Hash());
    }
    return h;
  }

  std::vector<Value> vals_;
  size_t hash_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.hash(); }
};

}  // namespace boom

#endif  // SRC_OVERLOG_TUPLE_H_
