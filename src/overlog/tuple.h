// Tuple: a row of Values with a cached hash and copy-on-write storage.
//
// Copying a Tuple is a refcount bump: the engine's delta pipeline (derive -> store -> delta
// snapshot -> send) passes each row through several containers, and none of those hops
// should allocate. The hash is computed lazily on first use and cached in the shared rep;
// in-place mutation via set() clones the rep if shared and invalidates the cache.
//
// TupleView is a non-owning (values + precomputed hash) probe key: tuple-keyed hash maps
// declared with TupleHash/TupleEq support heterogeneous lookup, so the evaluator's join
// probes never materialize a Tuple (no allocation on the probe path).
//
// Thread-compatibility note: the refcount and lazy hash cache are deliberately NOT atomic —
// Tuples follow the engine's single-threaded discipline (one Engine per thread, nothing
// crosses threads), and non-atomic counts keep copies to a plain increment. A Tuple (or any
// copy sharing its storage) must never be touched from two threads.

#ifndef SRC_OVERLOG_TUPLE_H_
#define SRC_OVERLOG_TUPLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/overlog/value.h"

namespace boom {

// Hash of a contiguous Value range; the seed and combine steps match Tuple::hash() exactly,
// so a TupleView built from the same values hashes like the materialized Tuple.
inline size_t HashValueRange(const Value* data, size_t n) {
  size_t h = 0x12345678;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, data[i].Hash());
  }
  return h;
}

class Tuple {
 public:
  Tuple() = default;  // empty tuple: no rep allocated
  explicit Tuple(std::vector<Value> vals) : rep_(NewRepMove(vals.data(), vals.size())) {}
  Tuple(std::initializer_list<Value> vals) : rep_(NewRepCopy(vals.begin(), vals.size())) {}
  // Copies a contiguous range (used with reusable scratch buffers; Value copies are cheap —
  // scalars or refcount bumps).
  Tuple(const Value* data, size_t n) : rep_(NewRepCopy(data, n)) {}

  Tuple(const Tuple& other) : rep_(other.rep_) {
    if (rep_ != nullptr) {
      ++rep_->refs;
    }
  }
  Tuple(Tuple&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Tuple& operator=(const Tuple& other) {
    if (other.rep_ != nullptr) {
      ++other.rep_->refs;  // before Release, for self-assignment
    }
    Release(rep_);
    rep_ = other.rep_;
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      Release(rep_);
      rep_ = other.rep_;
      other.rep_ = nullptr;
    }
    return *this;
  }
  ~Tuple() { Release(rep_); }

  size_t size() const { return rep_ == nullptr ? 0 : rep_->size; }
  bool empty() const { return size() == 0; }
  const Value& at(size_t i) const { return rep_->vals()[i]; }
  const Value& operator[](size_t i) const { return rep_->vals()[i]; }
  const Value* data() const { return rep_ == nullptr ? nullptr : rep_->vals(); }

  // Replaces column `i`. Clones the storage when shared (copy-on-write) and invalidates the
  // cached hash.
  void set(size_t i, Value v) {
    if (rep_->refs > 1) {
      Rep* clone = NewRepCopy(rep_->vals(), rep_->size);
      Release(rep_);
      rep_ = clone;
    }
    rep_->vals()[i] = std::move(v);
    rep_->hash_valid = false;
  }

  size_t hash() const {
    if (rep_ == nullptr) {
      return kEmptyHash;
    }
    if (!rep_->hash_valid) {
      rep_->hash = HashValueRange(rep_->vals(), rep_->size);
      rep_->hash_valid = true;
    }
    return rep_->hash;
  }
  // Whether the hash cache is populated (tests). Shared across copies with the rep.
  bool hash_cached() const { return rep_ == nullptr || rep_->hash_valid; }
  // Whether this tuple shares storage with another (tests).
  bool shares_storage_with(const Tuple& other) const {
    return rep_ != nullptr && rep_ == other.rep_;
  }

  bool operator==(const Tuple& other) const {
    if (rep_ == other.rep_) {
      return true;  // shared storage (or both empty)
    }
    if (size() != other.size()) {
      return false;
    }
    if (rep_ != nullptr && other.rep_ != nullptr && rep_->hash_valid &&
        other.rep_->hash_valid && rep_->hash != other.rep_->hash) {
      return false;
    }
    for (size_t i = 0; i < size(); ++i) {
      if (!(rep_->vals()[i] == other.rep_->vals()[i])) {
        return false;
      }
    }
    return true;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    if (rep_ == other.rep_) {
      return false;
    }
    size_t n = std::min(size(), other.size());
    for (size_t i = 0; i < n; ++i) {
      if ((*this)[i] < other[i]) {
        return true;
      }
      if (other[i] < (*this)[i]) {
        return false;
      }
    }
    return size() < other.size();
  }

  // Projects the given columns into a new tuple (used for keys and join probes). An identity
  // projection (all columns, in order — e.g. the effective key of a set-semantics table)
  // shares storage with this tuple instead of allocating.
  Tuple Project(const std::vector<size_t>& cols) const {
    if (cols.size() == size()) {
      bool identity = true;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] != i) {
          identity = false;
          break;
        }
      }
      if (identity) {
        return *this;
      }
    }
    Tuple out;
    out.rep_ = AllocRep(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) {
      new (out.rep_->vals() + i) Value(rep_->vals()[cols[i]]);
    }
    return out;
  }

  // "(1, "foo", 3.5)"
  std::string ToString() const;

 private:
  static constexpr size_t kEmptyHash = 0x12345678;  // == HashValueRange(nullptr, 0)

  // Header of the single heap block holding a tuple's values: {Rep, Value[size]}. The
  // refcount is NOT atomic (see the thread-compatibility note above).
  struct Rep {
    uint32_t refs;
    uint32_t size;
    mutable size_t hash;
    mutable bool hash_valid;

    Value* vals() { return reinterpret_cast<Value*>(this + 1); }
    const Value* vals() const { return reinterpret_cast<const Value*>(this + 1); }
  };
  static_assert(sizeof(Rep) % alignof(Value) == 0,
                "Value payload must start aligned after the Rep header");

  // One allocation for header + values; the caller placement-constructs all `n` values.
  static Rep* AllocRep(size_t n) {
    if (n == 0) {
      return nullptr;
    }
    Rep* rep = static_cast<Rep*>(::operator new(sizeof(Rep) + n * sizeof(Value)));
    rep->refs = 1;
    rep->size = static_cast<uint32_t>(n);
    rep->hash = 0;
    rep->hash_valid = false;
    return rep;
  }
  static Rep* NewRepCopy(const Value* data, size_t n) {
    Rep* rep = AllocRep(n);
    for (size_t i = 0; i < n; ++i) {
      new (rep->vals() + i) Value(data[i]);
    }
    return rep;
  }
  static Rep* NewRepMove(Value* data, size_t n) {
    Rep* rep = AllocRep(n);
    for (size_t i = 0; i < n; ++i) {
      new (rep->vals() + i) Value(std::move(data[i]));
    }
    return rep;
  }
  static void Release(Rep* rep) {
    if (rep == nullptr || --rep->refs != 0) {
      return;
    }
    Value* v = rep->vals();
    for (size_t i = rep->size; i > 0; --i) {
      v[i - 1].~Value();
    }
    ::operator delete(rep);
  }

  Rep* rep_ = nullptr;
};

// Non-owning probe key: a Value range plus its precomputed hash. The referenced values must
// outlive the view (typical use: an evaluator scratch buffer during one probe).
struct TupleView {
  const Value* data = nullptr;
  size_t size = 0;
  size_t hash = 0;

  static TupleView Of(const Value* data, size_t n) {
    return TupleView{data, n, HashValueRange(data, n)};
  }
};

struct TupleHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const { return t.hash(); }
  size_t operator()(const TupleView& v) const { return v.hash; }
};

struct TupleEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  bool operator()(const TupleView& v, const Tuple& t) const { return Eq(v, t); }
  bool operator()(const Tuple& t, const TupleView& v) const { return Eq(v, t); }
  bool operator()(const TupleView& a, const TupleView& b) const {
    if (a.size != b.size) {
      return false;
    }
    for (size_t i = 0; i < a.size; ++i) {
      if (!(a.data[i] == b.data[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  static bool Eq(const TupleView& v, const Tuple& t) {
    if (v.size != t.size()) {
      return false;
    }
    for (size_t i = 0; i < v.size; ++i) {
      if (!(v.data[i] == t[i])) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace boom

#endif  // SRC_OVERLOG_TUPLE_H_
