// Tuple: a row of Values with a cached hash and copy-on-write storage.
//
// Copying a Tuple is a refcount bump: the engine's delta pipeline (derive -> store -> delta
// snapshot -> send) passes each row through several containers, and none of those hops
// should allocate. The hash is computed lazily on first use and cached in the shared rep;
// in-place mutation via set() clones the rep if shared and invalidates the cache.
//
// TupleView is a non-owning (values + precomputed hash) probe key: tuple-keyed hash maps
// declared with TupleHash/TupleEq support heterogeneous lookup, so the evaluator's join
// probes never materialize a Tuple (no allocation on the probe path).
//
// Thread-compatibility note: the refcount field is an atomic, but in the default
// (single-threaded) mode it is manipulated with plain relaxed load/store pairs — the
// compiler emits the same unsynchronized increment the engine has always paid, so serial
// performance is unchanged. Tuple::EnableConcurrentMode() flips a sticky process-wide flag
// that switches refcounting to real fetch_add/fetch_sub; the thread pools' owners (parallel
// Cluster / parallel Engine) enable it in their constructors, strictly before any worker
// thread exists, so every tuple that can cross threads is counted atomically. The lazy hash
// cache uses release/acquire atomics unconditionally (free on x86): concurrent readers may
// both compute the hash, but they compute the same value, so the race is benign and clean
// under TSan.

#ifndef SRC_OVERLOG_TUPLE_H_
#define SRC_OVERLOG_TUPLE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/overlog/value.h"

namespace boom {

// Hash of a contiguous Value range; the seed and combine steps match Tuple::hash() exactly,
// so a TupleView built from the same values hashes like the materialized Tuple.
inline size_t HashValueRange(const Value* data, size_t n) {
  size_t h = 0x12345678;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, data[i].Hash());
  }
  return h;
}

class Tuple {
 public:
  Tuple() = default;  // empty tuple: no rep allocated
  explicit Tuple(std::vector<Value> vals) : rep_(NewRepMove(vals.data(), vals.size())) {}
  Tuple(std::initializer_list<Value> vals) : rep_(NewRepCopy(vals.begin(), vals.size())) {}
  // Copies a contiguous range (used with reusable scratch buffers; Value copies are cheap —
  // scalars or refcount bumps).
  Tuple(const Value* data, size_t n) : rep_(NewRepCopy(data, n)) {}

  // Sticky switch to thread-safe refcounting. Must be called before any thread that shares
  // tuples is spawned; there is deliberately no way back (a tuple created in concurrent
  // mode may outlive the pool that motivated the switch).
  static void EnableConcurrentMode() {
    concurrent_mode_.store(true, std::memory_order_relaxed);
  }
  static bool concurrent_mode() {
    return concurrent_mode_.load(std::memory_order_relaxed);
  }

  Tuple(const Tuple& other) : rep_(other.rep_) {
    if (rep_ != nullptr) {
      IncRef(rep_);
    }
  }
  Tuple(Tuple&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Tuple& operator=(const Tuple& other) {
    if (other.rep_ != nullptr) {
      IncRef(other.rep_);  // before Release, for self-assignment
    }
    Release(rep_);
    rep_ = other.rep_;
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      Release(rep_);
      rep_ = other.rep_;
      other.rep_ = nullptr;
    }
    return *this;
  }
  ~Tuple() { Release(rep_); }

  size_t size() const { return rep_ == nullptr ? 0 : rep_->size; }
  bool empty() const { return size() == 0; }
  const Value& at(size_t i) const { return rep_->vals()[i]; }
  const Value& operator[](size_t i) const { return rep_->vals()[i]; }
  const Value* data() const { return rep_ == nullptr ? nullptr : rep_->vals(); }

  // Replaces column `i`. Clones the storage when shared (copy-on-write) and invalidates the
  // cached hash.
  void set(size_t i, Value v) {
    if (rep_->refs.load(std::memory_order_acquire) > 1) {
      Rep* clone = NewRepCopy(rep_->vals(), rep_->size);
      Release(rep_);
      rep_ = clone;
    }
    // Exclusive owner here (refs == 1 means no other thread can observe this rep).
    rep_->vals()[i] = std::move(v);
    rep_->hash_valid.store(false, std::memory_order_relaxed);
  }

  size_t hash() const {
    if (rep_ == nullptr) {
      return kEmptyHash;
    }
    if (rep_->hash_valid.load(std::memory_order_acquire)) {
      return rep_->hash.load(std::memory_order_relaxed);
    }
    // Concurrent fillers compute the same value; publish hash before the valid flag.
    size_t h = HashValueRange(rep_->vals(), rep_->size);
    rep_->hash.store(h, std::memory_order_relaxed);
    rep_->hash_valid.store(true, std::memory_order_release);
    return h;
  }
  // Whether the hash cache is populated (tests). Shared across copies with the rep.
  bool hash_cached() const {
    return rep_ == nullptr || rep_->hash_valid.load(std::memory_order_acquire);
  }
  // Whether this tuple shares storage with another (tests).
  bool shares_storage_with(const Tuple& other) const {
    return rep_ != nullptr && rep_ == other.rep_;
  }

  bool operator==(const Tuple& other) const {
    if (rep_ == other.rep_) {
      return true;  // shared storage (or both empty)
    }
    if (size() != other.size()) {
      return false;
    }
    if (rep_ != nullptr && other.rep_ != nullptr &&
        rep_->hash_valid.load(std::memory_order_acquire) &&
        other.rep_->hash_valid.load(std::memory_order_acquire) &&
        rep_->hash.load(std::memory_order_relaxed) !=
            other.rep_->hash.load(std::memory_order_relaxed)) {
      return false;
    }
    for (size_t i = 0; i < size(); ++i) {
      if (!(rep_->vals()[i] == other.rep_->vals()[i])) {
        return false;
      }
    }
    return true;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    if (rep_ == other.rep_) {
      return false;
    }
    size_t n = std::min(size(), other.size());
    for (size_t i = 0; i < n; ++i) {
      if ((*this)[i] < other[i]) {
        return true;
      }
      if (other[i] < (*this)[i]) {
        return false;
      }
    }
    return size() < other.size();
  }

  // Projects the given columns into a new tuple (used for keys and join probes). An identity
  // projection (all columns, in order — e.g. the effective key of a set-semantics table)
  // shares storage with this tuple instead of allocating.
  Tuple Project(const std::vector<size_t>& cols) const {
    if (cols.size() == size()) {
      bool identity = true;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] != i) {
          identity = false;
          break;
        }
      }
      if (identity) {
        return *this;
      }
    }
    Tuple out;
    out.rep_ = AllocRep(cols.size());
    for (size_t i = 0; i < cols.size(); ++i) {
      new (out.rep_->vals() + i) Value(rep_->vals()[cols[i]]);
    }
    return out;
  }

  // "(1, "foo", 3.5)"
  std::string ToString() const;

 private:
  static constexpr size_t kEmptyHash = 0x12345678;  // == HashValueRange(nullptr, 0)

  // Header of the single heap block holding a tuple's values: {Rep, Value[size]}. The
  // refcount is an atomic manipulated non-atomically in serial mode (see the
  // thread-compatibility note above).
  struct Rep {
    std::atomic<uint32_t> refs{1};
    uint32_t size = 0;
    mutable std::atomic<size_t> hash{0};
    mutable std::atomic<bool> hash_valid{false};

    Value* vals() { return reinterpret_cast<Value*>(this + 1); }
    const Value* vals() const { return reinterpret_cast<const Value*>(this + 1); }
  };
  static_assert(sizeof(Rep) % alignof(Value) == 0,
                "Value payload must start aligned after the Rep header");
  static_assert(std::atomic<uint32_t>::is_always_lock_free &&
                    std::atomic<size_t>::is_always_lock_free,
                "Rep header atomics must be lock-free");

  // Refcount ops: real RMW atomics in concurrent mode; plain load/store pairs (the
  // single-threaded increment the compiler has always emitted) otherwise.
  static void IncRef(Rep* rep) {
    if (concurrent_mode()) {
      rep->refs.fetch_add(1, std::memory_order_relaxed);
    } else {
      rep->refs.store(rep->refs.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    }
  }
  // Decrements; returns true when this was the last reference.
  static bool DecRefToZero(Rep* rep) {
    if (concurrent_mode()) {
      return rep->refs.fetch_sub(1, std::memory_order_acq_rel) == 1;
    }
    uint32_t prev = rep->refs.load(std::memory_order_relaxed);
    rep->refs.store(prev - 1, std::memory_order_relaxed);
    return prev == 1;
  }

  // One allocation for header + values; the caller placement-constructs all `n` values.
  static Rep* AllocRep(size_t n) {
    if (n == 0) {
      return nullptr;
    }
    void* raw = ::operator new(sizeof(Rep) + n * sizeof(Value));
    Rep* rep = new (raw) Rep;
    rep->size = static_cast<uint32_t>(n);
    return rep;
  }
  static Rep* NewRepCopy(const Value* data, size_t n) {
    Rep* rep = AllocRep(n);
    for (size_t i = 0; i < n; ++i) {
      new (rep->vals() + i) Value(data[i]);
    }
    return rep;
  }
  static Rep* NewRepMove(Value* data, size_t n) {
    Rep* rep = AllocRep(n);
    for (size_t i = 0; i < n; ++i) {
      new (rep->vals() + i) Value(std::move(data[i]));
    }
    return rep;
  }
  static void Release(Rep* rep) {
    if (rep == nullptr || !DecRefToZero(rep)) {
      return;
    }
    Value* v = rep->vals();
    for (size_t i = rep->size; i > 0; --i) {
      v[i - 1].~Value();
    }
    ::operator delete(rep);
  }

  static inline std::atomic<bool> concurrent_mode_{false};

  Rep* rep_ = nullptr;
};

// Non-owning probe key: a Value range plus its precomputed hash. The referenced values must
// outlive the view (typical use: an evaluator scratch buffer during one probe).
struct TupleView {
  const Value* data = nullptr;
  size_t size = 0;
  size_t hash = 0;

  static TupleView Of(const Value* data, size_t n) {
    return TupleView{data, n, HashValueRange(data, n)};
  }
};

struct TupleHash {
  using is_transparent = void;
  size_t operator()(const Tuple& t) const { return t.hash(); }
  size_t operator()(const TupleView& v) const { return v.hash; }
};

struct TupleEq {
  using is_transparent = void;
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
  bool operator()(const TupleView& v, const Tuple& t) const { return Eq(v, t); }
  bool operator()(const Tuple& t, const TupleView& v) const { return Eq(v, t); }
  bool operator()(const TupleView& a, const TupleView& b) const {
    if (a.size != b.size) {
      return false;
    }
    for (size_t i = 0; i < a.size; ++i) {
      if (!(a.data[i] == b.data[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  static bool Eq(const TupleView& v, const Tuple& t) {
    if (v.size != t.size()) {
      return false;
    }
    for (size_t i = 0; i < v.size; ++i) {
      if (!(v.data[i] == t[i])) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace boom

#endif  // SRC_OVERLOG_TUPLE_H_
